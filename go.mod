module mccmesh

go 1.24
