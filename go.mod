module mccmesh

go 1.23
