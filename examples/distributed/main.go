// distributed shows the information model as pure message passing on the
// discrete-event simulator: distributed labelling, identification and
// boundary construction, feasibility detection and hop-by-hop routing, with
// the message counts the overhead experiment (E4) aggregates.
package main

import (
	"fmt"

	"mccmesh"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/protocol"
	"mccmesh/internal/region"
)

func main() {
	m := mccmesh.NewCube(9)
	r := mccmesh.NewRand(7)
	s, d := mccmesh.At(0, 0, 0), mccmesh.At(8, 8, 8)
	mccmesh.InjectClustered(m, r, 4, 6, s, d)
	fmt.Printf("mesh %v with %d clustered faults\n\n", m.Dims(), m.FaultCount())

	orient := grid.OrientationOf(s, d)

	// 1. Distributed labelling: each node learns only from its neighbours.
	lr := protocol.RunLabeling(m, orient)
	fmt.Printf("labelling protocol   : %d label messages, quiescent at t=%d\n",
		lr.Stats.ByKind[protocol.KindLabel], lr.Stats.FinalTime)

	// The centralised computation agrees node for node (checked in the tests);
	// we use it below to drive the remaining phases.
	lab := labeling.Compute(m, orient)
	cs := region.FindMCCs(lab)
	fmt.Printf("fault regions        : %d MCCs, %d healthy nodes absorbed\n", cs.Len(), cs.TotalNonFaulty())

	// 2. Identification + boundary construction.
	info := protocol.RunInformationModel(m, lab, cs)
	fmt.Printf("identification       : %d messages (%d regions completed)\n", info.IdentifyMessages, len(info.Completed))
	fmt.Printf("boundary construction: %d messages, records stored on %d nodes\n", info.BoundaryMessages, len(info.Records))

	// 3. Feasibility detection from the source.
	det := protocol.RunDetection3D(m, lab, s, d)
	fmt.Printf("detection            : feasible=%v, %d forward + %d reply hops\n", det.Feasible, det.ForwardHops, det.ReplyHops)

	// 4. Hop-by-hop routing with node-local records.
	res := protocol.RunRouting(m, lab, cs, info.Records, s, d)
	fmt.Printf("routing              : delivered=%v minimal=%v in %d hops (distance %d)\n",
		res.Delivered, res.Minimal, res.Hops, mccmesh.Distance(s, d))
}
