// traffic demonstrates the continuous-traffic workload engine through the
// public facade: one instrumented run with mid-run fault injection and a
// tuned hotspot pattern, followed by a small parallel throughput sweep —
// MCC vs the rectangular-block baseline — expressed as a scenario.
package main

import (
	"context"
	"fmt"

	"mccmesh"
)

func main() {
	// --- One instrumented run with mid-run fault injection ---------------
	m := mccmesh.New3D(8, 8, 8)
	mccmesh.InjectUniform(m, mccmesh.NewRand(1), 25)
	engine, err := mccmesh.NewTrafficEngine(m, "mcc", "hotspot", mccmesh.TrafficOptions{
		Rate:   0.02,
		Warmup: 50,
		Window: 300,
		// The hotspot knobs are plain library options now, same as the CLI's.
		PatternParams: map[string]any{"fraction": 0.15},
		// A board dies at t=150: five adjacent routers fail at once.
		Faults: []mccmesh.FaultEvent{{At: 150, Inject: mccmesh.ClusteredInjector(1, 5)}},
	})
	if err != nil {
		panic(err)
	}
	res := engine.Run(7)

	fmt.Printf("continuous hotspot traffic on 8x8x8, 25 static faults + 5 injected at t=150 (MCC model):\n")
	fmt.Printf("  injected %d packets, delivered %d (%.1f%%), stuck %d, lost in flight %d\n",
		res.Injected, res.Delivered, 100*res.DeliveredRatio(), res.Stuck, res.Lost)
	fmt.Printf("  throughput %.4f deliveries/node/tick (offered rate %.4f)\n", res.Throughput(), res.Rate)
	fmt.Printf("  latency ticks: mean %.1f, p50 %d, p95 %d, p99 %d\n\n",
		res.Latency.Mean(), res.Latency.Percentile(0.50), res.Latency.Percentile(0.95), res.Latency.Percentile(0.99))

	// --- A parallel sweep: MCC vs rectangular blocks ---------------------
	sc, err := mccmesh.NewScenario(
		mccmesh.WithCube(8),
		mccmesh.WithFaultCounts(25),
		mccmesh.WithModels("mcc", "rfb"),
		mccmesh.WithPatterns("uniform", "transpose"),
		mccmesh.WithRates(0.01, 0.02),
		mccmesh.WithWarmup(50),
		mccmesh.WithWindow(150),
		mccmesh.WithTrials(4),
		mccmesh.WithSeed(20050506),
		mccmesh.WithWorkers(0), // GOMAXPROCS; any value yields the identical table
	)
	if err != nil {
		panic(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Table.Render())
}
