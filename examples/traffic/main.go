// traffic demonstrates the continuous-traffic workload engine: sustained
// uniform-random traffic on a faulty 3-D mesh under the MCC information model,
// with a second wave of faults injected while packets are in flight, followed
// by a small parallel throughput sweep comparing MCC with the
// rectangular-block baseline.
package main

import (
	"fmt"

	"mccmesh/internal/core"
	"mccmesh/internal/experiments"
	"mccmesh/internal/fault"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/traffic"
)

func main() {
	// --- One instrumented run with mid-run fault injection ---------------
	m := mesh.New3D(8, 8, 8)
	fault.Uniform{Count: 25}.Inject(m, rng.New(1))
	model, _ := traffic.ModelByName("mcc", core.NewModel(m))
	engine := traffic.NewEngine(m, model, traffic.Uniform{}, traffic.Options{
		Rate:   0.02,
		Warmup: 50,
		Window: 300,
		// A board dies at t=150: five adjacent routers fail at once.
		Faults: []traffic.FaultEvent{{At: 150, Inject: fault.Clustered{Clusters: 1, Size: 5}}},
	})
	res := engine.Run(7)

	fmt.Printf("continuous traffic on 8x8x8, 25 static faults + 5 injected at t=150 (MCC model):\n")
	fmt.Printf("  injected %d packets, delivered %d (%.1f%%), stuck %d, lost in flight %d\n",
		res.Injected, res.Delivered, 100*res.DeliveredRatio(), res.Stuck, res.Lost)
	fmt.Printf("  throughput %.4f deliveries/node/tick (offered rate %.4f)\n", res.Throughput(), res.Rate)
	fmt.Printf("  latency ticks: mean %.1f, p50 %d, p95 %d, p99 %d\n\n",
		res.Latency.Mean(), res.Latency.Percentile(0.50), res.Latency.Percentile(0.95), res.Latency.Percentile(0.99))

	// --- A parallel sweep: MCC vs rectangular blocks ---------------------
	cfg := experiments.DefaultConfig()
	cfg.Dim = 8
	tc := experiments.TrafficConfig{
		Patterns: []string{"uniform", "transpose"},
		Models:   []string{"mcc", "rfb"},
		Rates:    []float64{0.01, 0.02},
		Faults:   25,
		Trials:   4,
		Warmup:   50,
		Window:   150,
		Workers:  0, // GOMAXPROCS; any value yields the identical table
	}
	table, err := experiments.E7Throughput(cfg, tc)
	if err != nil {
		panic(err)
	}
	fmt.Println(table.Render())
}
