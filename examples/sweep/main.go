// sweep runs a miniature version of the paper's evaluation — the two
// headline tables (healthy-node absorption and minimal-routing success rate)
// on a small mesh — expressed as two declarative scenarios that differ only
// in their measure. cmd/mcc bench runs the full sweeps.
package main

import (
	"context"
	"fmt"

	"mccmesh"
)

func main() {
	for _, measure := range []string{mccmesh.MeasureAbsorption, mccmesh.MeasureSuccess} {
		sc, err := mccmesh.NewScenario(
			mccmesh.WithCube(8),
			mccmesh.WithFaultCounts(5, 15, 30, 50),
			mccmesh.WithMeasure(measure),
			mccmesh.WithTrials(10),
			mccmesh.WithPairs(6),
			mccmesh.WithMinDistance(10),
			mccmesh.WithSeed(20050500),
		)
		if err != nil {
			panic(err)
		}
		rep, err := sc.Run(context.Background())
		if err != nil {
			panic(err)
		}
		fmt.Println(rep.Table.Render())
	}
}
