// sweep runs a miniature version of the paper's evaluation: the two headline
// tables (healthy-node absorption and minimal-routing success rate) on a small
// mesh so it finishes in a few seconds. cmd/mccbench runs the full sweeps.
package main

import (
	"fmt"

	"mccmesh/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Dim = 8
	cfg.FaultCounts = []int{5, 15, 30, 50}
	cfg.Trials = 10
	cfg.Pairs = 6

	fmt.Println(experiments.E1NonFaultyInclusion(cfg).Render())
	fmt.Println(experiments.E2SuccessRate(cfg).Render())
}
