// scenario demonstrates the declarative scenario API: the whole experiment —
// mesh, clustered faults, a mid-run fault schedule, two information models,
// two traffic patterns, two injection rates — lives in spec.json, and this
// program just loads, runs and prints it. `go run ./cmd/mcc run -spec
// examples/scenario/spec.json` is the flagless equivalent.
package main

import (
	"context"
	"fmt"
	"os"

	"mccmesh"
)

func main() {
	f, err := os.Open("examples/scenario/spec.json")
	if err != nil {
		// Allow running from the example's own directory too.
		f, err = os.Open("spec.json")
	}
	if err != nil {
		panic(err)
	}
	defer f.Close()

	sc, err := mccmesh.LoadScenario(f)
	if err != nil {
		panic(err)
	}
	sc.Observe(func(ev mccmesh.ScenarioEvent) {
		if !ev.Done {
			fmt.Printf("  cell %d/%d: %s\n", ev.Cell+1, ev.Total, ev.Label)
		}
	})

	spec := sc.Spec()
	fmt.Printf("running scenario %q: %s mesh, %d trials per cell\n", spec.Name, spec.Mesh, spec.Trials)
	rep, err := sc.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Println(rep.Table.Render())

	// The report also carries raw per-cell values for programmatic use.
	best := rep.Cells[0]
	for _, c := range rep.Cells {
		if c.Values["throughput"] > best.Values["throughput"] {
			best = c
		}
	}
	fmt.Printf("best cell: %s over %s at rate %.3f -> %.4f deliveries/node/tick\n",
		best.Pattern, best.Model, best.Rate, best.Values["throughput"])
}
