// Figure 5: the paper's worked 3-D example. The eight faults of Figure 5(a)
// produce, under the rectangular-faulty-block model, one large block that
// swallows 72 healthy nodes; under the MCC model (Figure 5(b)) they produce
// two small regions that absorb only the two healthy nodes (5,5,5) and
// (5,5,7).
package main

import (
	"fmt"

	"mccmesh"
	"mccmesh/internal/block"
	"mccmesh/internal/viz"
)

func main() {
	m := mccmesh.New3D(10, 10, 10)
	faults := []mccmesh.Point{
		mccmesh.At(5, 5, 6), mccmesh.At(6, 5, 5), mccmesh.At(5, 6, 5),
		mccmesh.At(6, 7, 5), mccmesh.At(7, 6, 5), mccmesh.At(5, 4, 7),
		mccmesh.At(4, 5, 7), mccmesh.At(7, 8, 4),
	}
	m.AddFaults(faults...)

	model := mccmesh.NewModel(m)
	orient := mccmesh.OrientationOf(mccmesh.At(0, 0, 0), mccmesh.At(9, 9, 9))
	l := model.Labeling(orient)
	cs := model.Regions(orient)

	fmt.Println("Figure 5 fault set:", faults)
	fmt.Printf("labelling: %d faulty, %d useless, %d can't-reach\n",
		l.Count(mccmesh.Faulty), l.Count(mccmesh.Useless), l.Count(mccmesh.CantReach))
	for _, c := range cs.Components {
		fmt.Printf("  %v\n", c)
	}

	rfb := model.Blocks(block.BoundingBox)
	fmt.Printf("\nMCC model absorbs %d healthy nodes; the RFB baseline absorbs %d (block %v)\n",
		cs.TotalNonFaulty(), rfb.TotalNonFaulty(), rfb.Blocks[0].Bounds)

	fmt.Println("\nSlices of the labelling (compare with Figure 5(b)):")
	fmt.Print(viz.Slices(l, viz.Overlay{}))
	fmt.Println(viz.Legend())

	// Routing across the fault region: the paper's point is that minimal paths
	// survive because the MCC regions are so small.
	s, d := mccmesh.At(3, 3, 3), mccmesh.At(8, 8, 8)
	trace, err := model.Route(s, d)
	if err != nil {
		fmt.Println("routing failed:", err)
		return
	}
	fmt.Printf("\nrouted %v -> %v in %d hops despite the fault cluster\n", s, d, trace.Hops())
}
