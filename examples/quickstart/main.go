// Quickstart: build a 3-D mesh, inject faults, construct the MCC
// fault-information model, check minimal-path feasibility and route a message.
package main

import (
	"fmt"
	"log"

	"mccmesh"
)

func main() {
	// A 10x10x10 mesh with 40 uniformly random faulty nodes (the corners stay
	// healthy so the example endpoints always exist).
	m := mccmesh.NewCube(10)
	r := mccmesh.NewRand(42)
	s := mccmesh.At(0, 0, 0)
	d := mccmesh.At(9, 9, 9)
	mccmesh.InjectUniform(m, r, 40, s, d)

	model := mccmesh.NewModel(m)
	fmt.Printf("mesh %v with %d faults\n", m.Dims(), m.FaultCount())
	fmt.Printf("MCC fault regions: %d, healthy nodes absorbed: %d\n",
		model.Regions(mccmesh.OrientationOf(s, d)).Len(),
		model.AbsorbedHealthyNodes(mccmesh.OrientationOf(s, d)))

	// Feasibility check at the source (Theorem 2 of the paper).
	if !model.Feasible(s, d) {
		log.Fatalf("no minimal path from %v to %v exists with this fault pattern", s, d)
	}

	// Fully adaptive minimal routing under the MCC model (Algorithm 6).
	trace, err := model.Route(s, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %v -> %v in %d hops (distance %d)\n", s, d, trace.Hops(), mccmesh.Distance(s, d))
	fmt.Printf("first hops: %v ...\n", trace.Path[:4])

	// The same request, fully distributed: detection messages followed by a
	// hop-by-hop routing message that consults only node-local records.
	feasible, hops := model.FeasibleByDetection(s, d)
	res := model.RouteDistributed(s, d)
	fmt.Printf("distributed detection: feasible=%v using %d message hops\n", feasible, hops)
	fmt.Printf("distributed routing  : delivered=%v minimal=%v in %d hops\n", res.Delivered, res.Minimal, res.Hops)
}
