// routing2d walks through the 2-D machinery of Section 3 of the paper: the
// labelling, the MCC corners, the boundary information and the two detection
// messages of the feasibility check, then routes around the fault regions.
package main

import (
	"fmt"

	"mccmesh"
	"mccmesh/internal/feasibility"
	"mccmesh/internal/protocol"
	"mccmesh/internal/viz"
)

func main() {
	m := mccmesh.New2D(14, 14)
	// Two staircase fault clusters reminiscent of Figure 3.
	m.AddFaults(
		mccmesh.At(5, 8, 0), mccmesh.At(6, 8, 0), mccmesh.At(6, 7, 0),
		mccmesh.At(9, 4, 0), mccmesh.At(10, 4, 0), mccmesh.At(10, 3, 0),
	)
	s, d := mccmesh.At(0, 0, 0), mccmesh.At(13, 13, 0)

	model := mccmesh.NewModel(m)
	orient := mccmesh.OrientationOf(s, d)
	l := model.Labeling(orient)
	cs := model.Regions(orient)

	fmt.Printf("2-D mesh %v with %d faults -> %d MCCs, %d healthy nodes absorbed\n",
		m.Dims(), m.FaultCount(), cs.Len(), cs.TotalNonFaulty())
	for _, c := range cs.Components {
		corners := cs.Corners2D(c)
		fmt.Printf("  %v initialization corner %v, opposite corner %v\n", c, corners.Initialization, corners.Opposite)
	}

	// The source's feasibility check: two detection messages (Algorithm 3).
	det := feasibility.Detect2D(l, s, d)
	fmt.Printf("\nfeasibility check at %v: feasible=%v using %d detection hops\n", s, det.Feasible, det.Hops)

	// The same check as real messages over the simulated network.
	dres := protocol.RunDetection2D(m, l, s, d)
	fmt.Printf("distributed detection: feasible=%v (%d forward, %d reply hops)\n",
		dres.Feasible, dres.ForwardHops, dres.ReplyHops)

	// Boundary construction distributes the MCC records; then the routing
	// message finds its way with node-local information only.
	info := protocol.RunInformationModel(m, l, cs)
	fmt.Printf("information model: %d identify + %d boundary messages, records on %d nodes\n",
		info.IdentifyMessages, info.BoundaryMessages, len(info.Records))
	res := protocol.RunRouting(m, l, cs, info.Records, s, d)
	fmt.Printf("distributed routing: delivered=%v minimal=%v in %d hops\n\n", res.Delivered, res.Minimal, res.Hops)

	fmt.Print(viz.Mesh2D(l, viz.Overlay{Path: res.Path}))
	fmt.Println(viz.Legend())
}
