// Package mccmesh is a from-scratch reproduction of "A New Fault Information
// Model for Fault-Tolerant Adaptive and Minimal Routing in 3-D Meshes"
// (Jiang, Wu, Wang; ICPP 2005).
//
// It provides, for 2-D and 3-D mesh-connected multicomputers with faulty
// nodes:
//
//   - the Minimal-Connected-Component (MCC) fault-information model: the
//     useless / can't-reach labelling, the extraction of fault regions, their
//     2-D sections, corners, edges and boundary information;
//   - the sufficient and necessary condition for the existence of a minimal
//     (shortest) path between a source and a destination, both as a geometric
//     check and as the paper's distributed detection procedure;
//   - fully adaptive minimal routing driven by pluggable fault-information
//     providers (MCC, rectangular faulty blocks, labels only, local greedy,
//     omniscient oracle);
//   - a discrete-event simulator and the distributed protocols (labelling,
//     identification, boundary construction, detection, routing) that realise
//     the information model with neighbour-to-neighbour messages only;
//   - a continuous-traffic workload engine (uniform-random, transpose,
//     bit-reversal, hotspot and nearest-neighbour patterns) with mid-run fault
//     injection, throughput/latency-percentile measurement and a parallel
//     sweep runner whose results are bit-identical at any worker count; and
//   - an experiment harness that regenerates the paper's evaluation (fault
//     region size and minimal-routing success rate versus the rectangular
//     faulty-block baselines) plus supporting ablations and a sustained-load
//     throughput study; and
//   - a declarative scenario API: one JSON-serialisable spec (mesh, faults,
//     models, workload, measure, seed) validated against pluggable component
//     registries, built with NewScenario's functional options or loaded with
//     LoadScenario, and runnable to a structured Report that is bit-identical
//     at any worker count. The `mcc` CLI speaks the same spec format.
//
// The root package is a thin facade over the implementation packages in
// internal/; see README.md for a tour and examples/ for runnable programs.
package mccmesh
