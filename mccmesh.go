package mccmesh

import (
	"mccmesh/internal/block"
	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/feasibility"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
	"mccmesh/internal/protocol"
	"mccmesh/internal/region"
	"mccmesh/internal/registry"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
	"mccmesh/internal/traffic"
)

// Re-exported core types. The implementation lives in internal/; these
// aliases form the public API surface used by the examples and the command
// line tools.
type (
	// Point is a node coordinate (Z is 0 in 2-D meshes).
	Point = grid.Point
	// Box is an inclusive axis-aligned box of nodes.
	Box = grid.Box
	// Orientation is the per-axis travel direction from a source toward a
	// destination.
	Orientation = grid.Orientation
	// Mesh is a 2-D or 3-D mesh with a mutable fault set.
	Mesh = mesh.Mesh
	// Model is the MCC fault-information model over one mesh.
	Model = core.Model
	// Labeling holds the useless / can't-reach labels for one orientation.
	Labeling = labeling.Labeling
	// Status is a node label (Safe, Faulty, Useless, CantReach).
	Status = labeling.Status
	// ComponentSet is the set of MCC fault regions of one labelling.
	ComponentSet = region.ComponentSet
	// Component is a single MCC.
	Component = region.Component
	// BlockRegions is the rectangular-faulty-block baseline model.
	BlockRegions = block.Regions
	// Trace is the outcome of one routing attempt.
	Trace = routing.Trace
	// RouteResult is the outcome of one distributed (message-level) routing
	// attempt.
	RouteResult = protocol.RouteResult
	// DetectionResult is the outcome of the distributed feasibility check.
	DetectionResult = protocol.DetectionResult
	// Rand is the deterministic random source used by the fault injectors.
	Rand = rng.Rand
	// Injector places faults on a mesh.
	Injector = fault.Injector
	// TrafficEngine runs continuous packet streams over a faulty mesh.
	TrafficEngine = traffic.Engine
	// TrafficOptions configure one traffic run (rate, warmup, window, fault
	// schedule).
	TrafficOptions = traffic.Options
	// TrafficResult aggregates one traffic run (throughput, latency
	// percentiles, loss accounting).
	TrafficResult = traffic.Result
	// TrafficPattern chooses each injected packet's destination.
	TrafficPattern = traffic.Pattern
	// TrafficModel adapts a fault-information model to continuous traffic.
	TrafficModel = traffic.InfoModel
	// FaultEvent schedules a mid-run fault injection.
	FaultEvent = traffic.FaultEvent
)

// Node label values.
const (
	Safe      = labeling.Safe
	Faulty    = labeling.Faulty
	Useless   = labeling.Useless
	CantReach = labeling.CantReach
)

// New2D returns a fault-free 2-D mesh with the given extents.
func New2D(x, y int) *Mesh { return mesh.New2D(x, y) }

// New3D returns a fault-free 3-D mesh with the given extents.
func New3D(x, y, z int) *Mesh { return mesh.New3D(x, y, z) }

// NewCube returns a k × k × k 3-D mesh.
func NewCube(k int) *Mesh { return mesh.NewCube(k) }

// NewModel wraps a mesh in the MCC fault-information model.
func NewModel(m *Mesh) *Model { return core.NewModel(m) }

// NewRand returns a deterministic random source for fault injection.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// At is a convenience constructor for node coordinates.
func At(x, y, z int) Point { return Point{X: x, Y: y, Z: z} }

// InjectUniform marks n distinct uniformly random nodes faulty, never touching
// the protected nodes, and returns the chosen points.
func InjectUniform(m *Mesh, r *Rand, n int, protected ...Point) []Point {
	return fault.Uniform{Count: n, Protected: protected}.Inject(m, r)
}

// InjectClustered injects `clusters` clusters of `size` adjacent faults each.
func InjectClustered(m *Mesh, r *Rand, clusters, size int, protected ...Point) []Point {
	return fault.Clustered{Clusters: clusters, Size: size, Protected: protected}.Inject(m, r)
}

// UniformInjector returns an injector that places n uniformly random faults —
// for FaultEvent schedules and other deferred injections.
func UniformInjector(n int, protected ...Point) Injector {
	return fault.Uniform{Count: n, Protected: protected}
}

// ClusteredInjector returns an injector that grows `clusters` clusters of
// `size` adjacent faults — for FaultEvent schedules and other deferred
// injections.
func ClusteredInjector(clusters, size int, protected ...Point) Injector {
	return fault.Clustered{Clusters: clusters, Size: size, Protected: protected}
}

// BuildInjector resolves a fault injector by registry name with parameters,
// e.g. BuildInjector("rate", Params{"p": 0.02}); see FaultInjectorNames.
func BuildInjector(name string, params Params) (Injector, error) {
	return fault.Build(name, registry.Args(params))
}

// OrientationOf returns the orientation of travel from s to d.
func OrientationOf(s, d Point) Orientation { return grid.OrientationOf(s, d) }

// Distance returns the Manhattan (routing) distance between two nodes.
func Distance(a, b Point) int { return grid.Manhattan(a, b) }

// MinimalPathExists is the ground-truth check: does any minimal path from s to
// d avoid every faulty node?
func MinimalPathExists(m *Mesh, s, d Point) bool {
	return minimal.Exists(m, minimal.AvoidFaulty(m), s, d)
}

// FindMinimalPath returns one minimal fault-free path from s to d, or nil if
// none exists.
func FindMinimalPath(m *Mesh, s, d Point) []Point {
	return minimal.Path(m, minimal.AvoidFaulty(m), s, d)
}

// Feasible reports whether the MCC model admits a minimal path from s to d
// (Theorem 1 / Theorem 2 of the paper).
func Feasible(m *Mesh, s, d Point) bool {
	return NewModel(m).Feasible(s, d)
}

// Route routes from s to d under the MCC model (feasibility check at the
// source followed by fully adaptive minimal routing).
func Route(m *Mesh, s, d Point) (*Trace, error) {
	return NewModel(m).Route(s, d)
}

// GroundTruthFeasible is an alias of MinimalPathExists kept for symmetry with
// the experiment tables.
func GroundTruthFeasible(m *Mesh, s, d Point) bool { return MinimalPathExists(m, s, d) }

// Detect runs the paper's distributed feasibility detection from the source
// and returns the verdict together with the number of detection-message hops.
func Detect(m *Mesh, s, d Point) (bool, int) {
	return NewModel(m).FeasibleByDetection(s, d)
}

// AbsorbedHealthyNodes returns how many healthy nodes the MCC model absorbs
// into fault regions for the orientation of travel from s to d.
func AbsorbedHealthyNodes(m *Mesh, s, d Point) int {
	return NewModel(m).AbsorbedHealthyNodes(grid.OrientationOf(s, d))
}

// Theorem exposes the feasibility condition on an existing component set (for
// callers that manage their own Model caches).
func Theorem(cs *ComponentSet, s, d Point) bool { return feasibility.Theorem(cs, s, d) }

// NewTrafficEngine returns a continuous-traffic engine over m. The model and
// pattern are resolved by name (see TrafficModelNames and TrafficPatternNames)
// and parameterised by opts.PatternParams — e.g. {"fraction": 0.2} tunes the
// hotspot pattern exactly as the CLI's -hotspot flag does.
func NewTrafficEngine(m *Mesh, model, pattern string, opts TrafficOptions) (*TrafficEngine, error) {
	im, err := traffic.BuildModel(model, core.NewModel(m), nil)
	if err != nil {
		return nil, err
	}
	p, err := traffic.BuildPattern(pattern, m, registry.Args(opts.PatternParams))
	if err != nil {
		return nil, err
	}
	return traffic.NewEngine(m, im, p, opts), nil
}

// TrafficPatternNames lists the built-in traffic pattern names.
func TrafficPatternNames() []string { return traffic.PatternNames() }

// TrafficModelNames lists the information-model names usable for traffic.
func TrafficModelNames() []string { return traffic.ModelNames() }

// RunTrafficTrials shards deterministic traffic trials across workers (<= 0
// selects GOMAXPROCS); results are bit-identical at any worker count.
func RunTrafficTrials(workers, trials int, seed uint64, fn func(trial int, seed uint64) *TrafficResult) []*TrafficResult {
	return traffic.RunTrials(workers, trials, seed, fn)
}
