// Command mccsim is a deprecated alias for `mcc sim`, kept as a shim for one
// release.
package main

import (
	"os"

	"mccmesh/internal/cli"
)

func main() { os.Exit(cli.Main(append([]string{"sim"}, os.Args[1:]...))) }
