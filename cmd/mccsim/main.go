// Command mccsim runs a single fault-tolerant routing scenario: it builds a
// mesh, injects faults, constructs the MCC fault-information model, checks
// feasibility and routes a message, reporting what every information model
// would have done.
//
// Example:
//
//	mccsim -dims 10x10x10 -faults 60 -seed 7 -pairs 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mccmesh/internal/block"
	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

func main() {
	var (
		dims    = flag.String("dims", "10x10x10", "mesh dimensions, e.g. 16x16 or 10x10x10")
		faults  = flag.Int("faults", 50, "number of uniform random node faults")
		cluster = flag.Int("cluster", 0, "if > 0, inject this many clusters of -clustersize faults instead")
		csize   = flag.Int("clustersize", 5, "faults per cluster when -cluster is used")
		seed    = flag.Uint64("seed", 1, "random seed")
		pairs   = flag.Int("pairs", 3, "number of source/destination pairs to route")
		minDist = flag.Int("mindist", 8, "minimum Manhattan distance between pairs")
	)
	flag.Parse()

	m, err := parseMesh(*dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mccsim:", err)
		os.Exit(2)
	}
	r := rng.New(*seed)
	var injector fault.Injector
	if *cluster > 0 {
		injector = fault.Clustered{Clusters: *cluster, Size: *csize}
	} else {
		injector = fault.Uniform{Count: *faults}
	}
	injector.Inject(m, r)

	model := core.NewModel(m)
	fmt.Printf("mesh %v: %d nodes, %d faulty (%s)\n", m.Dims(), m.NodeCount(), m.FaultCount(), injector.Name())
	sum := model.Summarize(grid.PositiveOrientation)
	fmt.Printf("MCC model (+X,+Y,+Z): %d regions, %d healthy nodes absorbed (largest region %d nodes)\n",
		sum.Regions, sum.AbsorbedHealthy, sum.LargestRegion)
	fmt.Printf("RFB baseline        : %d healthy nodes absorbed\n", model.Blocks(block.BoundingBox).TotalNonFaulty())

	routed := 0
	for routed < *pairs {
		s := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		if grid.Manhattan(s, d) < *minDist || m.IsFaulty(s) || m.IsFaulty(d) {
			continue
		}
		if model.Labeling(grid.OrientationOf(s, d)).Unsafe(s) || model.Labeling(grid.OrientationOf(s, d)).Unsafe(d) {
			continue
		}
		routed++
		fmt.Printf("\npair %d: %v -> %v (distance %d)\n", routed, s, d, grid.Manhattan(s, d))
		feasible := model.Feasible(s, d)
		detect, hops := model.FeasibleByDetection(s, d)
		fmt.Printf("  feasibility: theorem=%v detection=%v (%d detection hops)\n", feasible, detect, hops)
		for _, provider := range []string{core.ProviderMCC, core.ProviderRFB, core.ProviderLabels, core.ProviderLocal} {
			tr, err := model.RouteWith(provider, s, d)
			switch {
			case err != nil:
				fmt.Printf("  %-12s: not attempted (%v)\n", provider, err)
			case tr.Succeeded():
				fmt.Printf("  %-12s: delivered in %d hops (minimal), min candidates %d\n", provider, tr.Hops(), tr.MinAdaptivity())
			default:
				fmt.Printf("  %-12s: FAILED (%v)\n", provider, tr.Err)
			}
		}
		if feasible {
			res := model.RouteDistributed(s, d)
			fmt.Printf("  %-12s: delivered=%v minimal=%v, %d routing-message hops\n", "distributed", res.Delivered, res.Minimal, res.Hops)
		}
	}
}

func parseMesh(s string) (*mesh.Mesh, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf("invalid -dims %q (want AxB or AxBxC)", s)
	}
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("invalid -dims %q: %q is not a valid extent", s, p)
		}
		vals[i] = v
	}
	if len(vals) == 2 {
		return mesh.New2D(vals[0], vals[1]), nil
	}
	return mesh.New3D(vals[0], vals[1], vals[2]), nil
}
