// Command mccviz renders a fault configuration, its MCC labelling and
// (optionally) a routed path as ASCII art, slice by slice.
//
// Example:
//
//	mccviz -dims 12x12 -faults 12 -seed 3 -route 0,0,0:11,11,0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mccmesh/internal/block"
	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/viz"
)

func main() {
	var (
		dims   = flag.String("dims", "12x12", "mesh dimensions, e.g. 12x12 or 8x8x8")
		faults = flag.Int("faults", 10, "number of uniform random node faults")
		seed   = flag.Uint64("seed", 1, "random seed")
		route  = flag.String("route", "", "optional route request sx,sy,sz:dx,dy,dz")
		blocks = flag.Bool("blocks", false, "overlay the rectangular-faulty-block baseline")
	)
	flag.Parse()

	m, err := parseMesh(*dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mccviz:", err)
		os.Exit(2)
	}
	fault.Uniform{Count: *faults}.Inject(m, rng.New(*seed))
	model := core.NewModel(m)

	ov := viz.Overlay{}
	if *blocks {
		ov.Blocks = model.Blocks(block.BoundingBox)
	}
	orient := grid.PositiveOrientation
	if *route != "" {
		s, d, err := parseRoute(*route)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mccviz:", err)
			os.Exit(2)
		}
		orient = grid.OrientationOf(s, d)
		ov.Source, ov.Destination = &s, &d
		if tr, err := model.Route(s, d); err == nil && tr.Succeeded() {
			ov.Path = tr.Path
			fmt.Printf("routed %v -> %v in %d hops\n\n", s, d, tr.Hops())
		} else {
			fmt.Printf("no minimal path from %v to %v under the MCC model\n\n", s, d)
		}
	}
	l := model.Labeling(orient)
	fmt.Print(viz.Slices(l, ov))
	fmt.Println(viz.Legend())
	sum := model.Summarize(orient)
	fmt.Printf("faults=%d regions=%d absorbed(MCC)=%d absorbed(RFB)=%d\n",
		sum.Faults, sum.Regions, sum.AbsorbedHealthy, sum.RFBAbsorbed)
}

func parseMesh(s string) (*mesh.Mesh, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf("invalid -dims %q", s)
	}
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("invalid extent %q in -dims", p)
		}
		vals[i] = v
	}
	if len(vals) == 2 {
		return mesh.New2D(vals[0], vals[1]), nil
	}
	return mesh.New3D(vals[0], vals[1], vals[2]), nil
}

func parseRoute(s string) (grid.Point, grid.Point, error) {
	halves := strings.Split(s, ":")
	if len(halves) != 2 {
		return grid.Point{}, grid.Point{}, fmt.Errorf("invalid -route %q (want sx,sy,sz:dx,dy,dz)", s)
	}
	parse := func(h string) (grid.Point, error) {
		parts := strings.Split(h, ",")
		if len(parts) != 2 && len(parts) != 3 {
			return grid.Point{}, fmt.Errorf("invalid coordinate %q", h)
		}
		var vals [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return grid.Point{}, fmt.Errorf("invalid coordinate %q", h)
			}
			vals[i] = v
		}
		return grid.Point{X: vals[0], Y: vals[1], Z: vals[2]}, nil
	}
	sPt, err := parse(halves[0])
	if err != nil {
		return grid.Point{}, grid.Point{}, err
	}
	dPt, err := parse(halves[1])
	if err != nil {
		return grid.Point{}, grid.Point{}, err
	}
	return sPt, dPt, nil
}
