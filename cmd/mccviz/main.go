// Command mccviz is a deprecated alias for `mcc viz`, kept as a shim for one
// release.
package main

import (
	"os"

	"mccmesh/internal/cli"
)

func main() { os.Exit(cli.Main(append([]string{"viz"}, os.Args[1:]...))) }
