// Command mcctraffic runs the continuous-traffic workload engine: it sweeps
// traffic patterns × information models × injection rates on a faulty mesh and
// prints a throughput/latency table. Trials are sharded deterministically
// across parallel workers, so the table is bit-identical for any -workers
// value.
//
// Example:
//
//	mcctraffic -dim 10 -faults 50 -patterns uniform,transpose,hotspot \
//	           -models mcc,rfb -rates 0.005,0.01,0.02 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mccmesh/internal/experiments"
	"mccmesh/internal/traffic"
)

func main() {
	var (
		dim       = flag.Int("dim", 10, "mesh edge length")
		twoD      = flag.Bool("2d", false, "use a 2-D mesh instead of 3-D")
		faults    = flag.Int("faults", 50, "static fault count injected before traffic starts")
		clustered = flag.Bool("clustered", false, "inject clustered faults instead of uniform random faults")
		csize     = flag.Int("clustersize", 5, "faults per cluster when -clustered is set")
		seed      = flag.Uint64("seed", 20050500, "random seed")
		patterns  = flag.String("patterns", "uniform,transpose,hotspot", "comma separated traffic patterns ("+strings.Join(traffic.PatternNames(), ", ")+")")
		models    = flag.String("models", "mcc,rfb", "comma separated information models ("+strings.Join(traffic.ModelNames(), ", ")+")")
		rates     = flag.String("rates", "0.005,0.01,0.02", "comma separated injection rates (packets per node per tick)")
		trials    = flag.Int("trials", 5, "fault configurations per sweep cell")
		warmup    = flag.Int("warmup", 50, "warmup ticks before measurement")
		window    = flag.Int("window", 200, "measurement window in ticks")
		workers   = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS); any value gives identical tables")
		hotFrac   = flag.Float64("hotspot", 0, "hotspot traffic fraction (0 = pattern default)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Dim = *dim
	cfg.TwoD = *twoD
	cfg.Seed = *seed
	cfg.Clustered = *clustered
	cfg.ClusterSize = *csize

	tc := experiments.TrafficConfig{
		Patterns:        splitList(*patterns),
		Models:          splitList(*models),
		Faults:          *faults,
		Trials:          *trials,
		Warmup:          *warmup,
		Window:          *window,
		Workers:         *workers,
		HotspotFraction: *hotFrac,
	}
	if *trials < 1 {
		fmt.Fprintln(os.Stderr, "mcctraffic: -trials must be at least 1")
		os.Exit(2)
	}
	for _, part := range splitList(*rates) {
		v, err := strconv.ParseFloat(part, 64)
		// The inverted comparison rejects NaN, which satisfies neither bound.
		if err != nil || !(v > 0 && v <= 1) {
			fmt.Fprintf(os.Stderr, "mcctraffic: invalid rate %q (want a value in (0,1])\n", part)
			os.Exit(2)
		}
		tc.Rates = append(tc.Rates, v)
	}
	if len(tc.Patterns) == 0 || len(tc.Models) == 0 || len(tc.Rates) == 0 {
		fmt.Fprintln(os.Stderr, "mcctraffic: -patterns, -models and -rates must each name at least one entry")
		os.Exit(2)
	}
	if *hotFrac < 0 || *hotFrac > 1 {
		fmt.Fprintln(os.Stderr, "mcctraffic: -hotspot must be in [0,1]")
		os.Exit(2)
	}

	table, err := experiments.E7Throughput(cfg, tc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcctraffic:", err)
		os.Exit(2)
	}
	if *csv {
		fmt.Print(table.CSV())
	} else {
		fmt.Println(table.Render())
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
