// Command mcctraffic is a deprecated alias for `mcc run` (the traffic
// measure), kept as a shim for one release.
package main

import (
	"os"

	"mccmesh/internal/cli"
)

func main() { os.Exit(cli.Main(append([]string{"run"}, os.Args[1:]...))) }
