// Command mcc is the consolidated CLI of the workbench: one binary whose
// subcommands (run, bench, sim, proto, viz, list) all parse and emit the same
// declarative scenario spec. See `mcc help` and the README's "Scenario files"
// section.
//
// Examples:
//
//	mcc run -spec specs/smoke.json -workers 8
//	mcc run -measure absorption -dim 10 -faults 10,50,100
//	mcc bench -exp e7 -dump-spec > e7.json
//	mcc list
package main

import (
	"os"

	"mccmesh/internal/cli"
)

func main() { os.Exit(cli.Main(os.Args[1:])) }
