// Command mccproto is a deprecated alias for `mcc proto`, kept as a shim for
// one release.
package main

import (
	"os"

	"mccmesh/internal/cli"
)

func main() { os.Exit(cli.Main(append([]string{"proto"}, os.Args[1:]...))) }
