// Command mccproto runs the distributed protocols of the information model
// over the discrete-event simulator and reports their message costs: the
// labelling exchange, the identification and boundary construction, the
// feasibility detection and the hop-by-hop routing.
//
// Example:
//
//	mccproto -dims 10x10x10 -faults 40 -seed 2 -pairs 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/protocol"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
)

func main() {
	var (
		dims   = flag.String("dims", "10x10x10", "mesh dimensions, e.g. 16x16 or 10x10x10")
		faults = flag.Int("faults", 40, "number of uniform random node faults")
		seed   = flag.Uint64("seed", 1, "random seed")
		pairs  = flag.Int("pairs", 3, "number of routing requests to simulate")
	)
	flag.Parse()

	m, err := parseMesh(*dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mccproto:", err)
		os.Exit(2)
	}
	r := rng.New(*seed)
	fault.Uniform{Count: *faults}.Inject(m, r)
	orient := grid.PositiveOrientation

	lr := protocol.RunLabeling(m, orient)
	fmt.Printf("distributed labelling : %d label messages, settled at t=%d\n",
		lr.Stats.ByKind[protocol.KindLabel], lr.Stats.FinalTime)

	lab := labeling.Compute(m, orient)
	cs := region.FindMCCs(lab)
	info := protocol.RunInformationModel(m, lab, cs)
	fmt.Printf("information model     : %d MCCs, %d identify messages, %d boundary messages, records on %d nodes\n",
		cs.Len(), info.IdentifyMessages, info.BoundaryMessages, len(info.Records))

	routed := 0
	for routed < *pairs {
		s := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		if grid.Manhattan(s, d) < m.Dims().X || m.IsFaulty(s) || m.IsFaulty(d) {
			continue
		}
		pairLab := labeling.Compute(m, grid.OrientationOf(s, d))
		if pairLab.Unsafe(s) || pairLab.Unsafe(d) {
			continue
		}
		routed++
		var det *protocol.DetectionResult
		if m.Is2D() {
			det = protocol.RunDetection2D(m, pairLab, s, d)
		} else {
			det = protocol.RunDetection3D(m, pairLab, s, d)
		}
		fmt.Printf("pair %d %v -> %v: detection feasible=%v (%d forward + %d reply hops)\n",
			routed, s, d, det.Feasible, det.ForwardHops, det.ReplyHops)
		if !det.Feasible {
			continue
		}
		pairCS := region.FindMCCs(pairLab)
		pairInfo := protocol.RunInformationModel(m, pairLab, pairCS)
		res := protocol.RunRouting(m, pairLab, pairCS, pairInfo.Records, s, d)
		fmt.Printf("        routing: delivered=%v minimal=%v in %d hops\n", res.Delivered, res.Minimal, res.Hops)
	}
}

func parseMesh(s string) (*mesh.Mesh, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf("invalid -dims %q", s)
	}
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("invalid extent %q in -dims", p)
		}
		vals[i] = v
	}
	if len(vals) == 2 {
		return mesh.New2D(vals[0], vals[1]), nil
	}
	return mesh.New3D(vals[0], vals[1], vals[2]), nil
}
