// Command mccbench regenerates the paper's evaluation tables (and the
// supporting ablations) described in DESIGN.md §4 and records them in
// EXPERIMENTS.md format.
//
// Example:
//
//	mccbench -exp e1,e2 -dim 10 -trials 30 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mccmesh/internal/experiments"
	"mccmesh/internal/stats"
)

func main() {
	var (
		exps      = flag.String("exp", "all", "comma separated experiments to run: e1..e7 or all")
		dim       = flag.Int("dim", 10, "mesh edge length")
		twoD      = flag.Bool("2d", false, "use a 2-D mesh instead of 3-D")
		trials    = flag.Int("trials", 30, "fault configurations per data point")
		pairs     = flag.Int("pairs", 10, "source/destination pairs per configuration")
		seed      = flag.Uint64("seed", 20050500, "random seed")
		faultsF   = flag.String("faults", "", "comma separated fault counts (default depends on the mesh size)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		clustered = flag.Bool("clustered", false, "inject clustered faults instead of uniform random faults")
		csize     = flag.Int("clustersize", 5, "faults per cluster when -clustered is set")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Dim = *dim
	cfg.TwoD = *twoD
	cfg.Trials = *trials
	cfg.Pairs = *pairs
	cfg.Seed = *seed
	cfg.Clustered = *clustered
	cfg.ClusterSize = *csize
	if *faultsF != "" {
		cfg.FaultCounts = nil
		for _, part := range strings.Split(*faultsF, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "mccbench: invalid fault count %q\n", part)
				os.Exit(2)
			}
			cfg.FaultCounts = append(cfg.FaultCounts, v)
		}
	}

	mid := cfg.FaultCounts[len(cfg.FaultCounts)/2]
	run := map[string]func() *stats.Table{
		"e1": func() *stats.Table { return experiments.E1NonFaultyInclusion(cfg) },
		"e2": func() *stats.Table { return experiments.E2SuccessRate(cfg) },
		"e3": func() *stats.Table { return experiments.E3SuccessByDistance(cfg, mid) },
		"e4": func() *stats.Table { return experiments.E4MessageOverhead(cfg) },
		"e5": func() *stats.Table { return experiments.E5RegionAblation(cfg) },
		"e6": func() *stats.Table { return experiments.E6Adaptivity(cfg, mid) },
		"e7": func() *stats.Table {
			tc := experiments.DefaultTrafficConfig()
			tc.Faults = mid
			tc.Trials = cfg.Trials
			table, err := experiments.E7Throughput(cfg, tc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mccbench:", err)
				os.Exit(2)
			}
			return table
		},
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7"}

	want := map[string]bool{}
	if *exps == "all" {
		for _, k := range order {
			want[k] = true
		}
	} else {
		for _, part := range strings.Split(*exps, ",") {
			k := strings.ToLower(strings.TrimSpace(part))
			if _, ok := run[k]; !ok {
				fmt.Fprintf(os.Stderr, "mccbench: unknown experiment %q (want e1..e7 or all)\n", part)
				os.Exit(2)
			}
			want[k] = true
		}
	}

	for _, k := range order {
		if !want[k] {
			continue
		}
		table := run[k]()
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Println(table.Render())
		}
	}
}
