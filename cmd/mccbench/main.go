// Command mccbench is a deprecated alias for `mcc bench`, kept as a shim for
// one release.
package main

import (
	"os"

	"mccmesh/internal/cli"
)

func main() { os.Exit(cli.Main(append([]string{"bench"}, os.Args[1:]...))) }
