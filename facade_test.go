package mccmesh

import "testing"

// The facade tests exercise the public API exactly as the examples do.

func TestFacadeQuickstartFlow(t *testing.T) {
	m := NewCube(8)
	r := NewRand(11)
	s, d := At(0, 0, 0), At(7, 7, 7)
	placed := InjectUniform(m, r, 20, s, d)
	if len(placed) != 20 || m.FaultCount() != 20 {
		t.Fatalf("injection placed %d faults", len(placed))
	}

	model := NewModel(m)
	if model.Feasible(s, d) != MinimalPathExists(m, s, d) {
		t.Error("facade feasibility disagrees with ground truth")
	}
	if !model.Feasible(s, d) {
		t.Skip("fault pattern blocks the corner pair for this seed")
	}
	tr, err := model.Route(s, d)
	if err != nil || !tr.Succeeded() {
		t.Fatalf("route failed: %v %v", err, tr)
	}
	if tr.Hops() != Distance(s, d) {
		t.Errorf("path length %d, want %d", tr.Hops(), Distance(s, d))
	}
}

func TestFacadeHelpers(t *testing.T) {
	m := New2D(6, 6)
	m.AddFaults(At(2, 2, 0))
	if !Feasible(m, At(0, 0, 0), At(5, 5, 0)) {
		t.Error("single fault cannot block a 6x6 corner pair")
	}
	path := FindMinimalPath(m, At(0, 0, 0), At(5, 5, 0))
	if len(path) != Distance(At(0, 0, 0), At(5, 5, 0))+1 {
		t.Errorf("path length %d", len(path))
	}
	if !GroundTruthFeasible(m, At(0, 0, 0), At(5, 5, 0)) {
		t.Error("ground truth wrong")
	}
	ok, hops := Detect(m, At(0, 0, 0), At(5, 5, 0))
	if !ok || hops <= 0 {
		t.Errorf("detection wrong: %v %d", ok, hops)
	}
	if AbsorbedHealthyNodes(m, At(0, 0, 0), At(5, 5, 0)) != 0 {
		t.Error("one isolated fault absorbs nothing")
	}
	if OrientationOf(At(3, 3, 0), At(0, 5, 0)).SX != -1 {
		t.Error("orientation wrong")
	}
}

func TestFacadeRouteHelper(t *testing.T) {
	m := New3D(6, 6, 6)
	r := NewRand(3)
	InjectClustered(m, r, 2, 4, At(0, 0, 0), At(5, 5, 5))
	tr, err := Route(m, At(0, 0, 0), At(5, 5, 5))
	if err != nil {
		t.Skipf("pair infeasible for this seed: %v", err)
	}
	if !tr.Succeeded() {
		t.Fatalf("route failed: %v", tr.Err)
	}
}

func TestFacadeStatusConstants(t *testing.T) {
	if Safe.Unsafe() || !Faulty.Unsafe() || !Useless.Unsafe() || !CantReach.Unsafe() {
		t.Error("status constants wired incorrectly")
	}
}

func TestFacadeTrafficFlow(t *testing.T) {
	m := NewCube(6)
	InjectUniform(m, NewRand(5), 10)
	e, err := NewTrafficEngine(m, "mcc", "uniform", TrafficOptions{Rate: 0.02, Warmup: 10, Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(5)
	if res.Injected == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	if res.Lost != 0 {
		t.Errorf("packets lost with a static fault set: %+v", res)
	}
	if _, err := NewTrafficEngine(m, "nope", "uniform", TrafficOptions{}); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := NewTrafficEngine(m, "mcc", "nope", TrafficOptions{}); err == nil {
		t.Error("unknown pattern should error")
	}
	if len(TrafficPatternNames()) == 0 || len(TrafficModelNames()) == 0 {
		t.Error("name listings should be non-empty")
	}
}

func TestFacadeTrafficTrialsDeterministic(t *testing.T) {
	trial := func(_ int, seed uint64) *TrafficResult {
		m := NewCube(5)
		InjectUniform(m, NewRand(seed), 6)
		e, err := NewTrafficEngine(m, "mcc", "uniform", TrafficOptions{Rate: 0.03, Warmup: 10, Window: 40})
		if err != nil {
			panic(err)
		}
		return e.Run(seed)
	}
	a := RunTrafficTrials(1, 6, 3, trial)
	b := RunTrafficTrials(4, 6, 3, trial)
	for i := range a {
		if a[i].Delivered != b[i].Delivered || a[i].Injected != b[i].Injected {
			t.Fatalf("trial %d differs between worker counts", i)
		}
	}
}
