package mccmesh

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// The facade tests exercise the public API exactly as the examples do.

func TestFacadeQuickstartFlow(t *testing.T) {
	m := NewCube(8)
	r := NewRand(11)
	s, d := At(0, 0, 0), At(7, 7, 7)
	placed := InjectUniform(m, r, 20, s, d)
	if len(placed) != 20 || m.FaultCount() != 20 {
		t.Fatalf("injection placed %d faults", len(placed))
	}

	model := NewModel(m)
	if model.Feasible(s, d) != MinimalPathExists(m, s, d) {
		t.Error("facade feasibility disagrees with ground truth")
	}
	if !model.Feasible(s, d) {
		t.Skip("fault pattern blocks the corner pair for this seed")
	}
	tr, err := model.Route(s, d)
	if err != nil || !tr.Succeeded() {
		t.Fatalf("route failed: %v %v", err, tr)
	}
	if tr.Hops() != Distance(s, d) {
		t.Errorf("path length %d, want %d", tr.Hops(), Distance(s, d))
	}
}

func TestFacadeHelpers(t *testing.T) {
	m := New2D(6, 6)
	m.AddFaults(At(2, 2, 0))
	if !Feasible(m, At(0, 0, 0), At(5, 5, 0)) {
		t.Error("single fault cannot block a 6x6 corner pair")
	}
	path := FindMinimalPath(m, At(0, 0, 0), At(5, 5, 0))
	if len(path) != Distance(At(0, 0, 0), At(5, 5, 0))+1 {
		t.Errorf("path length %d", len(path))
	}
	if !GroundTruthFeasible(m, At(0, 0, 0), At(5, 5, 0)) {
		t.Error("ground truth wrong")
	}
	ok, hops := Detect(m, At(0, 0, 0), At(5, 5, 0))
	if !ok || hops <= 0 {
		t.Errorf("detection wrong: %v %d", ok, hops)
	}
	if AbsorbedHealthyNodes(m, At(0, 0, 0), At(5, 5, 0)) != 0 {
		t.Error("one isolated fault absorbs nothing")
	}
	if OrientationOf(At(3, 3, 0), At(0, 5, 0)).SX != -1 {
		t.Error("orientation wrong")
	}
}

func TestFacadeRouteHelper(t *testing.T) {
	m := New3D(6, 6, 6)
	r := NewRand(3)
	InjectClustered(m, r, 2, 4, At(0, 0, 0), At(5, 5, 5))
	tr, err := Route(m, At(0, 0, 0), At(5, 5, 5))
	if err != nil {
		t.Skipf("pair infeasible for this seed: %v", err)
	}
	if !tr.Succeeded() {
		t.Fatalf("route failed: %v", tr.Err)
	}
}

func TestFacadeStatusConstants(t *testing.T) {
	if Safe.Unsafe() || !Faulty.Unsafe() || !Useless.Unsafe() || !CantReach.Unsafe() {
		t.Error("status constants wired incorrectly")
	}
}

func TestFacadeTrafficFlow(t *testing.T) {
	m := NewCube(6)
	InjectUniform(m, NewRand(5), 10)
	e, err := NewTrafficEngine(m, "mcc", "uniform", TrafficOptions{Rate: 0.02, Warmup: 10, Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(5)
	if res.Injected == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	if res.Lost != 0 {
		t.Errorf("packets lost with a static fault set: %+v", res)
	}
	if _, err := NewTrafficEngine(m, "nope", "uniform", TrafficOptions{}); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := NewTrafficEngine(m, "mcc", "nope", TrafficOptions{}); err == nil {
		t.Error("unknown pattern should error")
	}
	if len(TrafficPatternNames()) == 0 || len(TrafficModelNames()) == 0 {
		t.Error("name listings should be non-empty")
	}
}

func TestFacadeScenarioFlow(t *testing.T) {
	var events int
	sc, err := NewScenario(
		WithCube(6),
		WithFaults("uniform"),
		WithFaultCounts(8),
		WithModels("mcc", "rfb"),
		WithPattern("hotspot", Params{"fraction": 0.2}),
		WithRates(0.02),
		WithWarmup(10),
		WithWindow(50),
		WithSeed(11),
		WithTrials(2),
		WithObserver(func(ScenarioEvent) { events++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 || len(rep.Table.Rows) != 2 {
		t.Fatalf("expected 2 cells (1 pattern x 2 models x 1 rate): %d", len(rep.Cells))
	}
	if events != 4 {
		t.Errorf("observer saw %d events, want 4", events)
	}

	// The spec round-trips through LoadScenario and reproduces the report.
	var buf bytes.Buffer
	if err := sc.WriteSpec(&buf); err != nil {
		t.Fatal(err)
	}
	sc2, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sc2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Table.CSV() != rep2.Table.CSV() {
		t.Error("LoadScenario(WriteSpec(sc)) produced a different table")
	}
}

func TestFacadeScenarioErrors(t *testing.T) {
	if _, err := NewScenario(WithCube(6), WithPatterns("hotpsot")); err == nil || !strings.Contains(err.Error(), `did you mean "hotspot"?`) {
		t.Errorf("typo should be suggested: %v", err)
	}
	if _, err := LoadScenario(strings.NewReader(`{"mesh": {"x": 5`)); err == nil {
		t.Error("truncated spec should error")
	}
}

func TestFacadeTrafficEnginePatternParams(t *testing.T) {
	m := NewCube(6)
	InjectUniform(m, NewRand(5), 10)
	// The hotspot fraction is a library-level knob now, not just a CLI flag.
	e, err := NewTrafficEngine(m, "mcc", "hotspot", TrafficOptions{
		Rate: 0.02, Warmup: 10, Window: 60,
		PatternParams: map[string]any{"fraction": 0.5, "target": []any{0, 0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := e.Run(5); res.Delivered == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	_, err = NewTrafficEngine(m, "mcc", "hotspot", TrafficOptions{
		PatternParams: map[string]any{"fractoin": 0.5},
	})
	if err == nil || !strings.Contains(err.Error(), `did you mean "fraction"?`) {
		t.Errorf("bad parameter should be suggested: %v", err)
	}
	if _, err := NewTrafficEngine(m, "mcc", "hotspot", TrafficOptions{
		PatternParams: map[string]any{"fraction": 1.5},
	}); err == nil {
		t.Error("out-of-range fraction should error")
	}
}

func TestFacadeRegisterTrafficPattern(t *testing.T) {
	RegisterTrafficPattern(TrafficPatternEntry{
		Name: "facade-test-corner",
		Doc:  "everything goes to the origin corner",
		New: func(m *Mesh, _ RegistryArgs) (TrafficPattern, error) {
			return cornerPattern{}, nil
		},
	})
	found := false
	for _, name := range TrafficPatternNames() {
		if name == "facade-test-corner" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered pattern not listed")
	}
	// Usable by name through the facade engine and through a scenario.
	m := NewCube(5)
	e, err := NewTrafficEngine(m, "mcc", "facade-test-corner", TrafficOptions{Rate: 0.03, Warmup: 5, Window: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res := e.Run(3); res.Delivered == 0 {
		t.Fatalf("custom pattern carried no traffic: %+v", res)
	}
	sc, err := NewScenario(WithCube(5), WithPatterns("facade-test-corner"), WithWindow(30), WithTrials(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// cornerPattern is the custom pattern registered by the facade test.
type cornerPattern struct{}

func (cornerPattern) Name() string { return "facade-test-corner" }
func (cornerPattern) Dest(_ *Rand, m *Mesh, src Point) (Point, bool) {
	d := At(0, 0, 0)
	if src == d || m.IsFaulty(d) {
		return Point{}, false
	}
	return d, true
}

func TestFacadeTrafficTrialsDeterministic(t *testing.T) {
	trial := func(_ int, seed uint64) *TrafficResult {
		m := NewCube(5)
		InjectUniform(m, NewRand(seed), 6)
		e, err := NewTrafficEngine(m, "mcc", "uniform", TrafficOptions{Rate: 0.03, Warmup: 10, Window: 40})
		if err != nil {
			panic(err)
		}
		return e.Run(seed)
	}
	a := RunTrafficTrials(1, 6, 3, trial)
	b := RunTrafficTrials(4, 6, 3, trial)
	for i := range a {
		if a[i].Delivered != b[i].Delivered || a[i].Injected != b[i].Injected {
			t.Fatalf("trial %d differs between worker counts", i)
		}
	}
}

// TestFacadeChurnScenario drives the fault-churn surface end to end through
// the facade: a scenario with a stochastic fail/repair timeline must run,
// churn, and stay bit-identical across worker counts.
func TestFacadeChurnScenario(t *testing.T) {
	build := func(workers int) *Scenario {
		sc, err := NewScenario(
			WithCube(7),
			WithFaults("uniform"),
			WithFaultCounts(12),
			WithFaultTimeline(25, 60, "region", Params{"size": 3}),
			WithModels("mcc"),
			WithPatterns("uniform"),
			WithRates(0.02),
			WithWarmup(20),
			WithWindow(160),
			WithSeed(5),
			WithTrials(2),
			WithWorkers(workers),
		)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	repA, err := build(1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	repB, err := build(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if repA.Table.CSV() != repB.Table.CSV() {
		t.Fatalf("churn scenario not worker-count invariant:\n%s\n%s", repA.Table.CSV(), repB.Table.CSV())
	}
	if v, ok := repA.Cells[0].Values["failures"]; !ok || v == 0 {
		t.Fatalf("churn scenario reported no failures: %+v", repA.Cells[0].Values)
	}
	if v, ok := repA.Cells[0].Values["repairs"]; !ok || v == 0 {
		t.Fatalf("churn scenario reported no repairs: %+v", repA.Cells[0].Values)
	}
}
