package mccmesh

// This file is the facade of the declarative scenario API: one Spec (or one
// chain of functional options) describes a whole experiment — mesh, fault
// workload, information models, traffic workload, measurement — and Run
// produces a structured Report, bit-identically at any worker count. The
// implementation lives in internal/scenario; the component registries live in
// internal/traffic and internal/fault and are extensible through the
// Register* helpers below.

import (
	"io"

	"mccmesh/internal/fault"
	"mccmesh/internal/registry"
	"mccmesh/internal/scenario"
	"mccmesh/internal/traffic"
)

// Scenario API types, re-exported from internal/scenario.
type (
	// Scenario is a validated, runnable experiment description; see
	// NewScenario and LoadScenario.
	Scenario = scenario.Scenario
	// ScenarioSpec is the JSON-serialisable experiment description.
	ScenarioSpec = scenario.Spec
	// ScenarioOption configures NewScenario; see the With* functions.
	ScenarioOption = scenario.Option
	// Report is the structured outcome of Scenario.Run: the rendered table
	// plus one cell of raw values per sweep point.
	Report = scenario.Report
	// ReportCell is one sweep point of a Report.
	ReportCell = scenario.Cell
	// ScenarioEvent is one progress notification streamed to an Observer.
	ScenarioEvent = scenario.Event
	// Observer receives per-cell progress during Scenario.Run.
	Observer = scenario.Observer
	// CellTelemetry is one cell's merged counter snapshot in
	// Report.Telemetry (telemetry-enabled runs only).
	CellTelemetry = scenario.CellTelemetry
	// TraceRecord is one sampled packet trace from Report.Traces
	// (tracing-enabled runs only).
	TraceRecord = scenario.TraceRecord
	// Params carries component parameters for the With* options, e.g.
	// Params{"fraction": 0.2}.
	Params = scenario.Params
	// MeshSpec, SpecComponent, SpecComponents, FaultSpec, ScheduledFault,
	// WorkloadSpec and MeasureSpec are the Spec building blocks.
	// (SpecComponent is scenario.Component renamed: the facade already uses
	// Component for a single MCC fault region.)
	MeshSpec       = scenario.MeshSpec
	SpecComponent  = scenario.Component
	SpecComponents = scenario.Components
	FaultSpec      = scenario.FaultSpec
	ScheduledFault = scenario.ScheduledFault
	WorkloadSpec   = scenario.WorkloadSpec
	MeasureSpec    = scenario.MeasureSpec
)

// Measure kinds accepted by WithMeasure / MeasureSpec.Kind, one per
// experiment of the evaluation harness ("e1".."e7" work as aliases).
const (
	MeasureAbsorption = scenario.MeasureAbsorption
	MeasureSuccess    = scenario.MeasureSuccess
	MeasureDistance   = scenario.MeasureDistance
	MeasureOverhead   = scenario.MeasureOverhead
	MeasureAblation   = scenario.MeasureAblation
	MeasureAdaptivity = scenario.MeasureAdaptivity
	MeasureTraffic    = scenario.MeasureTraffic
)

// NewScenario builds a runnable scenario from functional options, validating
// every component name and parameter against the registries before anything
// runs. The zero scenario (no options) is a single-trial uniform-traffic run
// under the MCC model — every option below overrides one aspect:
//
// Topology:
//   - WithMesh(x, y, z)   — a 3-D mesh with the given extents
//   - WithMesh2D(x, y)    — a 2-D mesh
//   - WithCube(k)         — a k × k × k mesh
//
// Fault workload (names resolve in the fault-injector registry: uniform,
// clustered, rate, links, block):
//   - WithFaults(name, params...)            — the static injector, e.g.
//     WithFaults("clustered", Params{"size": 5})
//   - WithFaultCounts(counts...)             — the fault-count sweep (one
//     table row per count for routing measures; the first count is the
//     traffic measure's static fault set)
//   - WithFaultSchedule(at, name, params...) — inject more faults at a
//     simulated tick while traffic is in flight
//   - WithFaultTimeline(mttf, mttr, shape, params...) — stochastic fault
//     churn: failure groups arrive with mean gap mttf and are repaired
//     after a mean delay mttr, e.g.
//     WithFaultTimeline(30, 70, "region", Params{"size": 4})
//
// Information models (registry: mcc, rfb, fb-rule, oracle, labels, local):
//   - WithModels(names...)        — the models under test
//   - WithModel(name, params...)  — append one parameterised model
//
// Traffic workload (registry: uniform, transpose, bitrev, hotspot, neighbor):
//   - WithPatterns(names...)       — the patterns to sweep
//   - WithPattern(name, params...) — append one parameterised pattern, e.g.
//     WithPattern("hotspot", Params{"fraction": 0.2})
//   - WithRates(rates...)          — injection rates (packets/node/tick)
//
// Measurement (registry: absorption, success, distance, overhead, ablation,
// adaptivity, traffic — aka e1..e7):
//   - WithMeasure(kind)    — what to measure
//   - WithPairs(n)         — source/destination pairs per trial (routing)
//   - WithMinDistance(d)   — minimum Manhattan distance between pairs
//   - WithWarmup(ticks)    — unmeasured traffic warmup
//   - WithWindow(ticks)    — traffic measurement window
//
// Reproducibility:
//   - WithSeed(seed)     — every trial seed derives from it
//   - WithTrials(n)      — fault configurations per sweep cell
//
// Execution resources (the spec's exec block; digest-excluded, so none of
// these changes a scenario's identity, and results are bit-identical for any
// setting):
//   - WithWorkers(n)     — parallel trial workers (<= 0 → GOMAXPROCS)
//   - WithShards(n)      — spatial shards per trial: the mesh splits into n
//     slabs simulated on parallel cores with conservative barrier
//     synchronisation (<= 1 → sequential)
//   - WithTimeout(secs)  — wall-clock budget for the whole run; on expiry
//     the completed cells are kept and the rest marked TIMEOUT
//
// Observation:
//   - WithObserver(f)    — stream per-cell progress events
//   - WithTelemetry()    — collect hot-path counters into Report.Telemetry
//     and stream per-trial Progress events to the observer
//   - WithTracing(n)     — sample one packet in n for hop-by-hop tracing
//     (implies WithTelemetry; n <= 0 → 64)
//   - WithName(s)        — label the scenario
//   - WithSpec(spec)     — start from a full ScenarioSpec, then patch
//
// The resulting scenario runs with Run(ctx), which returns a *Report whose
// Table is the experiment table and whose Cells carry the raw per-cell
// values. The same description round-trips through JSON: Scenario.WriteSpec
// emits the spec file format that LoadScenario (and `mcc run -spec`)
// accepts.
func NewScenario(opts ...ScenarioOption) (*Scenario, error) {
	return scenario.Build(opts...)
}

// LoadScenario reads a JSON scenario spec (see NewScenario and the README's
// "Scenario files" section) and returns the validated scenario. Unknown
// fields, unknown component names and bad parameters are rejected with
// actionable errors.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// Functional options for NewScenario, re-exported from internal/scenario.
// See NewScenario for the catalogue.
func WithName(name string) ScenarioOption          { return scenario.WithName(name) }
func WithMesh(x, y, z int) ScenarioOption          { return scenario.WithMesh(x, y, z) }
func WithMesh2D(x, y int) ScenarioOption           { return scenario.WithMesh2D(x, y) }
func WithCube(k int) ScenarioOption                { return scenario.WithCube(k) }
func WithFaultCounts(counts ...int) ScenarioOption { return scenario.WithFaultCounts(counts...) }
func WithModels(names ...string) ScenarioOption    { return scenario.WithModels(names...) }
func WithPatterns(names ...string) ScenarioOption  { return scenario.WithPatterns(names...) }
func WithRates(rates ...float64) ScenarioOption    { return scenario.WithRates(rates...) }
func WithMeasure(kind string) ScenarioOption       { return scenario.WithMeasure(kind) }
func WithPairs(pairs int) ScenarioOption           { return scenario.WithPairs(pairs) }
func WithMinDistance(d int) ScenarioOption         { return scenario.WithMinDistance(d) }
func WithWarmup(ticks int) ScenarioOption          { return scenario.WithWarmup(ticks) }
func WithWindow(ticks int) ScenarioOption          { return scenario.WithWindow(ticks) }
func WithSeed(seed uint64) ScenarioOption          { return scenario.WithSeed(seed) }
func WithTrials(trials int) ScenarioOption         { return scenario.WithTrials(trials) }
func WithWorkers(workers int) ScenarioOption       { return scenario.WithWorkers(workers) }
func WithShards(shards int) ScenarioOption         { return scenario.WithShards(shards) }
func WithTimeout(secs float64) ScenarioOption      { return scenario.WithTimeout(secs) }
func WithObserver(f Observer) ScenarioOption       { return scenario.WithObserver(f) }
func WithTelemetry() ScenarioOption                { return scenario.WithTelemetry() }
func WithTracing(n int) ScenarioOption             { return scenario.WithTracing(n) }
func WithSpec(spec ScenarioSpec) ScenarioOption    { return scenario.WithSpec(spec) }

// WithFaults selects the static fault injector by registry name.
func WithFaults(name string, params ...Params) ScenarioOption {
	return scenario.WithFaults(name, params...)
}

// WithFaultSchedule injects the named fault workload at a simulated tick.
func WithFaultSchedule(at int, name string, params ...Params) ScenarioOption {
	return scenario.WithFaultSchedule(at, name, params...)
}

// WithFaultTimeline runs a stochastic fault-churn process (failure groups
// arriving with mean gap mttf ticks, each repaired after a mean delay of
// mttr ticks) while traffic is in flight. shape names the failure shape in
// the fault-injector registry ("point", "region", ...; "" = point).
func WithFaultTimeline(mttf, mttr float64, shape string, params ...Params) ScenarioOption {
	return scenario.WithFaultTimeline(mttf, mttr, shape, params...)
}

// WithModel appends one parameterised information model.
func WithModel(name string, params ...Params) ScenarioOption {
	return scenario.WithModel(name, params...)
}

// WithPattern appends one parameterised traffic pattern.
func WithPattern(name string, params ...Params) ScenarioOption {
	return scenario.WithPattern(name, params...)
}

// Registry surface: the types needed to register third-party components in
// one line.
type (
	// RegistryArgs carries decoded component parameters into constructors.
	RegistryArgs = registry.Args
	// RegistryParam documents one parameter of a component's schema.
	RegistryParam = registry.Param
	// TrafficPatternEntry registers a traffic pattern (RegisterTrafficPattern).
	TrafficPatternEntry = registry.Entry[traffic.PatternCtor]
	// TrafficModelEntry registers an information model (RegisterTrafficModel).
	TrafficModelEntry = registry.Entry[traffic.ModelCtor]
	// FaultInjectorEntry registers a fault injector (RegisterFaultInjector).
	FaultInjectorEntry = registry.Entry[fault.Ctor]
)

// RegisterTrafficPattern adds a traffic pattern to the registry consulted by
// scenario specs, NewTrafficEngine and the CLI:
//
//	mccmesh.RegisterTrafficPattern(mccmesh.TrafficPatternEntry{
//		Name: "ring",
//		New: func(m *mccmesh.Mesh, _ mccmesh.RegistryArgs) (mccmesh.TrafficPattern, error) { ... },
//	})
//
// It panics if the name is already taken.
func RegisterTrafficPattern(e TrafficPatternEntry) { traffic.Patterns.Register(e) }

// RegisterTrafficModel adds an information model to the registry consulted by
// scenario specs, NewTrafficEngine and the CLI. It panics if the name is
// already taken.
func RegisterTrafficModel(e TrafficModelEntry) { traffic.Models.Register(e) }

// RegisterFaultInjector adds a fault injector to the registry consulted by
// scenario specs and the CLI. It panics if the name is already taken.
func RegisterFaultInjector(e FaultInjectorEntry) { fault.Injectors.Register(e) }

// FaultInjectorNames lists the registered fault-injector names.
func FaultInjectorNames() []string { return fault.Names() }

// ScenarioMeasureNames lists the registered measure kinds.
func ScenarioMeasureNames() []string { return scenario.Measures.Names() }
