package mccmesh

// Benchmarks regenerating every figure and evaluation table of the paper, one
// benchmark per artifact of the DESIGN.md §4 index. The table benchmarks
// (BenchmarkTableE*) run reduced sweeps; `mcc bench` runs the full ones.

import (
	"testing"

	"mccmesh/internal/block"
	"mccmesh/internal/core"
	"mccmesh/internal/experiments"
	"mccmesh/internal/fault"
	"mccmesh/internal/feasibility"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/protocol"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
	"mccmesh/internal/traffic"
)

func bench2DMesh(seed uint64, k, faults int) *mesh.Mesh {
	m := mesh.New2D(k, k)
	fault.Uniform{Count: faults, Protected: []grid.Point{{}, {X: k - 1, Y: k - 1}}}.Inject(m, rng.New(seed))
	return m
}

func bench3DMesh(seed uint64, k, faults int) *mesh.Mesh {
	m := mesh.New3D(k, k, k)
	fault.Uniform{Count: faults, Protected: []grid.Point{{}, {X: k - 1, Y: k - 1, Z: k - 1}}}.Inject(m, rng.New(seed))
	return m
}

// --- Figure benchmarks -------------------------------------------------------

// BenchmarkFigure1Labeling2D: the 2-D labelling procedure of Algorithm 1
// (Figure 1's useless / can't-reach definitions) on a 32x32 mesh with 5% faults.
func BenchmarkFigure1Labeling2D(b *testing.B) {
	m := bench2DMesh(1, 32, 51)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		labeling.Compute(m, grid.PositiveOrientation)
	}
}

// BenchmarkFigure2Identification2D: the identification process of Figure 2 as
// messages over the simulator.
func BenchmarkFigure2Identification2D(b *testing.B) {
	m := bench2DMesh(2, 24, 30)
	l := labeling.Compute(m, grid.PositiveOrientation)
	cs := region.FindMCCs(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		protocol.RunInformationModel(m, l, cs)
	}
}

// BenchmarkFigure3Boundary2D: boundary construction plus forbidden-region
// merging (Figure 3) — geometric part only.
func BenchmarkFigure3Boundary2D(b *testing.B) {
	m := bench2DMesh(3, 24, 30)
	l := labeling.Compute(m, grid.PositiveOrientation)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cs := region.FindMCCs(l)
		for _, c := range cs.Components {
			cs.Corners2D(c)
			cs.EdgeNodes(c)
		}
	}
}

// BenchmarkFigure4Feasibility2D: the two-detection-message feasibility check
// of Figure 4.
func BenchmarkFigure4Feasibility2D(b *testing.B) {
	m := bench2DMesh(4, 32, 80)
	s, d := grid.Point{}, grid.Point{X: 31, Y: 31}
	l := labeling.Compute(m, grid.OrientationOf(s, d))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		feasibility.Detect2D(l, s, d)
	}
}

// BenchmarkFigure5Regions3D: labelling plus MCC extraction on the 3-D mesh
// scale of Figure 5.
func BenchmarkFigure5Regions3D(b *testing.B) {
	m := bench3DMesh(5, 10, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := labeling.Compute(m, grid.PositiveOrientation)
		region.FindMCCs(l)
	}
}

// BenchmarkFigure6Sections3D: section, corner and edge extraction of the 3-D
// identification process (Figure 6).
func BenchmarkFigure6Sections3D(b *testing.B) {
	m := bench3DMesh(6, 10, 60)
	l := labeling.Compute(m, grid.PositiveOrientation)
	cs := region.FindMCCs(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range cs.Components {
			cs.Edges(c)
		}
	}
}

// BenchmarkFigure7Feasibility3D: the three RMP-surface sweeps of Figure 7.
func BenchmarkFigure7Feasibility3D(b *testing.B) {
	m := bench3DMesh(7, 10, 60)
	s, d := grid.Point{}, grid.Point{X: 9, Y: 9, Z: 9}
	l := labeling.Compute(m, grid.OrientationOf(s, d))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		feasibility.Detect3D(l, s, d)
	}
}

// BenchmarkFigure8Routing3D: fully adaptive minimal routing under the MCC
// model (Figure 8).
func BenchmarkFigure8Routing3D(b *testing.B) {
	m := bench3DMesh(8, 10, 60)
	s, d := grid.Point{}, grid.Point{X: 9, Y: 9, Z: 9}
	l := labeling.Compute(m, grid.OrientationOf(s, d))
	cs := region.FindMCCs(l)
	if !feasibility.Theorem(cs, s, d) {
		b.Skip("benchmark fault pattern blocks the corner pair")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		provider := &routing.MCC{Set: cs}
		tr := routing.New(m, provider, nil).Route(s, d)
		if !tr.Succeeded() {
			b.Fatal("routing failed")
		}
	}
}

// BenchmarkDistributedLabeling3D measures the message-passing labelling
// protocol (the practical implementation stressed in the introduction).
func BenchmarkDistributedLabeling3D(b *testing.B) {
	m := bench3DMesh(9, 8, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		protocol.RunLabeling(m, grid.PositiveOrientation)
	}
}

// BenchmarkBlockBaseline3D measures the rectangular-faulty-block construction
// used as the comparison point.
func BenchmarkBlockBaseline3D(b *testing.B) {
	m := bench3DMesh(10, 10, 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		block.Build(m, block.BoundingBox)
		block.Build(m, block.ConvexityRule)
	}
}

// --- Evaluation-table benchmarks ---------------------------------------------

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Dim = 8
	cfg.FaultCounts = []int{10, 30}
	cfg.Trials = 3
	cfg.Pairs = 3
	return cfg
}

// BenchmarkTableE1 regenerates table E1 (healthy nodes absorbed by fault
// regions, MCC vs RFB) on a reduced sweep.
func BenchmarkTableE1(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E1NonFaultyInclusion(cfg)
	}
}

// BenchmarkTableE2 regenerates table E2 (minimal-routing success rate per
// information model) on a reduced sweep.
func BenchmarkTableE2(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E2SuccessRate(cfg)
	}
}

// BenchmarkTableE3 regenerates table E3 (success rate vs distance).
func BenchmarkTableE3(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E3SuccessByDistance(cfg, 30)
	}
}

// BenchmarkTableE4 regenerates table E4 (information-model message overhead).
func BenchmarkTableE4(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E4MessageOverhead(cfg)
	}
}

// BenchmarkTableE5 regenerates table E5 (region-size ablation).
func BenchmarkTableE5(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E5RegionAblation(cfg)
	}
}

// BenchmarkTableE6 regenerates table E6 (routing adaptivity).
func BenchmarkTableE6(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.E6Adaptivity(cfg, 30)
	}
}

// --- Continuous-traffic benchmarks -------------------------------------------

// benchTrafficEngine measures one continuous-traffic trial: geometric
// injection clocking, per-hop information-model consultation and latency
// accounting, for the given model.
func benchTrafficEngine(b *testing.B, model string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := bench3DMesh(11, 8, 30)
		im, err := traffic.ModelByName(model, core.NewModel(m))
		if err != nil {
			b.Fatal(err)
		}
		e := traffic.NewEngine(m, im, traffic.Uniform{}, traffic.Options{Rate: 0.02, Warmup: 20, Window: 100})
		if res := e.Run(uint64(i)); res.Delivered == 0 {
			b.Fatal("no traffic delivered")
		}
	}
}

// BenchmarkTrafficEngineMCC runs the workload engine under the paper's MCC
// information model.
func BenchmarkTrafficEngineMCC(b *testing.B) { benchTrafficEngine(b, "mcc") }

// BenchmarkTrafficEngineLocal runs the workload engine under the stateless
// local-greedy floor (the engine-overhead baseline).
func BenchmarkTrafficEngineLocal(b *testing.B) { benchTrafficEngine(b, "local") }

// BenchmarkTrafficSweepParallel measures the deterministic parallel sweep
// runner end to end: 8 trials sharded across GOMAXPROCS workers.
func BenchmarkTrafficSweepParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results := traffic.RunTrials(0, 8, uint64(i), func(_ int, seed uint64) *traffic.Result {
			m := mesh.New3D(8, 8, 8)
			fault.Uniform{Count: 30}.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
			im, err := traffic.ModelByName("mcc", core.NewModel(m))
			if err != nil {
				panic(err)
			}
			e := traffic.NewEngine(m, im, traffic.Uniform{}, traffic.Options{Rate: 0.02, Warmup: 20, Window: 100})
			return e.Run(seed)
		})
		if traffic.Collect(results).Delivered == 0 {
			b.Fatal("sweep delivered nothing")
		}
	}
}
