// Package telemetry is the instrumentation layer of the simulator stack: a
// fixed-slot counter registry (dense IDs, one int64 slice per engine instance,
// no atomics — the same index-first discipline as the event core) plus a
// ring-buffer sink for sampled packet traces.
//
// The layer is zero-overhead when disabled: every Sink method is safe on a nil
// receiver and compiles to a single predicted nil-check branch, so
// instrumented hot paths cost nothing until a caller actually installs a sink.
// Sinks are deliberately not goroutine-safe — each trial owns its own Sink,
// exactly as each trial owns its own mesh and engine, and the sweep layer
// merges per-trial sinks in trial order so the totals are bit-identical at any
// worker count.
package telemetry

import (
	"encoding/json"
	"fmt"

	"mccmesh/internal/rng"
)

// CounterID is the dense index of one counter in a Sink. The IDs are a closed
// set: instrumentation points across simnet, routing, labeling and traffic
// address their slot directly, with no registration step and no hashing.
type CounterID uint8

// The counter registry. Gauges (max-tracked values) are marked as such; all
// other slots are monotone counts.
const (
	// SimHeapEvents counts events pushed to the calendar queue's far-future
	// binary-heap fallback (distant timers, control callbacks).
	SimHeapEvents CounterID = iota
	// SimHeapMigrations counts heap→ring migrations as the clock advances.
	SimHeapMigrations
	// SimBucketReuses counts per-tick bucket arrays recycled from the drained
	// free-list (event-pool recycling; a low count next to a high event count
	// means the ring is allocating fresh buckets).
	SimBucketReuses
	// SimBucketPeak is a gauge: the maximum per-tick bucket occupancy seen.
	SimBucketPeak

	// FieldHits counts reachability-field cache hits on the per-hop path.
	FieldHits
	// FieldColdBuilds counts fields built from scratch (new destination).
	FieldColdBuilds
	// FieldRebuilds counts in-place rebuilds of an existing field (epoch
	// stale after a fault change, or box widening for a new source).
	FieldRebuilds
	// FieldEvictions counts FIFO evictions from a full field cache.
	FieldEvictions
	// FieldEpochBumps counts O(1) cache invalidations (fault churn).
	FieldEpochBumps
	// DecisionHits counts per-hop routing decisions answered entirely from
	// the memoised reachability field — an epoch check plus at most three
	// bit probes, the hop fast path.
	DecisionHits
	// DecisionBuilds counts decision misses resolved through a field lookup:
	// they run when a destination's field is first consulted after an epoch
	// bump, outside its current box, or cold, and pair one-to-one with the
	// builds that result.
	DecisionBuilds

	// RelabelAddNodes totals the label promotions performed by incremental
	// AddFaults fixpoints (the relabelled-set size of fault injections).
	RelabelAddNodes
	// RelabelRemoveNodes totals the nodes demoted by incremental RemoveFaults
	// wavefronts (the relabelled-set size of repairs).
	RelabelRemoveNodes

	// PacketsInjected / PacketsDelivered / PacketsStuck / PacketsLost mirror
	// the engine's packet accounting per trial.
	PacketsInjected
	PacketsDelivered
	PacketsStuck
	PacketsLost

	// ChurnFailures / ChurnRepairs count the fault-churn timeline events;
	// ChurnFailedNodes / ChurnRepairedNodes the nodes they touched.
	ChurnFailures
	ChurnRepairs
	ChurnFailedNodes
	ChurnRepairedNodes

	// TracesSampled counts packets selected for hop tracing; TracesEvicted
	// counts sampled traces overwritten in the ring before they finished.
	TracesSampled
	TracesEvicted

	// ServerJobsSubmitted / ServerJobsCompleted / ServerJobsFailed /
	// ServerJobsCancelled count the job lifecycle of the scenario-execution
	// daemon (`mcc serve`); ServerCacheHits counts submissions answered from
	// the spec-digest result cache without recompute.
	ServerJobsSubmitted
	ServerJobsCompleted
	ServerJobsFailed
	ServerJobsCancelled
	ServerCacheHits
	// ServerQueueDepth is a gauge: the maximum number of jobs waiting for a
	// worker at any point of the server's lifetime.
	ServerQueueDepth
	// ServerTopoClones counts meshes cloned from the shared-topology pool's
	// immutable prototypes (per-trial mutable copies over shared tables).
	ServerTopoClones
	// ServerPanics counts panics recovered at the job-runner boundary: each
	// one failed its job with a captured stack instead of killing the daemon.
	ServerPanics
	// ServerTimeouts counts jobs sealed TIMEOUT by their wall-clock deadline.
	ServerTimeouts
	// ServerRetriesObserved counts submissions that announced themselves as
	// client retries (the X-Mcc-Retry header `mcc submit -retries` sends).
	ServerRetriesObserved
	// ServerJobsReplayed counts jobs resubmitted from the crash-safe journal
	// on daemon restart (`mcc serve -state`).
	ServerJobsReplayed
	// ServerJobsEvicted counts queued jobs sealed EVICTED by a graceful drain
	// so their clients could resubmit elsewhere.
	ServerJobsEvicted

	// NumCounters is the Sink slot count, not a counter.
	NumCounters
)

// counterNames are the stable external names, indexed by CounterID; they key
// every JSON snapshot and counter table.
var counterNames = [NumCounters]string{
	SimHeapEvents:       "simnet.heap_events",
	SimHeapMigrations:   "simnet.heap_migrations",
	SimBucketReuses:     "simnet.bucket_reuses",
	SimBucketPeak:       "simnet.bucket_peak",
	FieldHits:           "routing.field_hits",
	FieldColdBuilds:     "routing.field_cold_builds",
	FieldRebuilds:       "routing.field_rebuilds",
	FieldEvictions:      "routing.field_evictions",
	FieldEpochBumps:     "routing.epoch_bumps",
	DecisionHits:        "routing.decision_hits",
	DecisionBuilds:      "routing.decision_builds",
	RelabelAddNodes:     "labeling.relabel_add_nodes",
	RelabelRemoveNodes:  "labeling.relabel_remove_nodes",
	PacketsInjected:     "traffic.injected",
	PacketsDelivered:    "traffic.delivered",
	PacketsStuck:        "traffic.stuck",
	PacketsLost:         "traffic.lost",
	ChurnFailures:       "churn.failures",
	ChurnRepairs:        "churn.repairs",
	ChurnFailedNodes:    "churn.failed_nodes",
	ChurnRepairedNodes:  "churn.repaired_nodes",
	TracesSampled:       "trace.sampled",
	TracesEvicted:       "trace.evicted",
	ServerJobsSubmitted: "server.jobs_submitted",
	ServerJobsCompleted: "server.jobs_completed",
	ServerJobsFailed:    "server.jobs_failed",
	ServerJobsCancelled: "server.jobs_cancelled",
	ServerCacheHits:     "server.cache_hits",
	ServerQueueDepth:    "server.queue_depth",
	ServerTopoClones:    "server.topo_clones",

	ServerPanics:          "server.panics",
	ServerTimeouts:        "server.timeouts",
	ServerRetriesObserved: "server.retries_observed",
	ServerJobsReplayed:    "server.jobs_replayed",
	ServerJobsEvicted:     "server.jobs_evicted",
}

// String returns the stable external name of the counter.
func (id CounterID) String() string {
	if id < NumCounters {
		return counterNames[id]
	}
	return "telemetry.unknown"
}

// gauge reports whether the slot merges by max instead of by sum.
func (id CounterID) gauge() bool { return id == SimBucketPeak || id == ServerQueueDepth }

// Sink is one trial's counter slice. The zero value is ready to use; a nil
// *Sink is the disabled state — every method nil-checks and returns, so
// instrumented code never guards its calls.
type Sink struct {
	c [NumCounters]int64
}

// NewSink returns an empty enabled sink.
func NewSink() *Sink { return &Sink{} }

// Inc adds one to a counter. No-op on a nil sink.
func (s *Sink) Inc(id CounterID) {
	if s == nil {
		return
	}
	s.c[id]++
}

// Add adds delta to a counter. No-op on a nil sink.
func (s *Sink) Add(id CounterID, delta int64) {
	if s == nil {
		return
	}
	s.c[id] += delta
}

// Max raises a gauge to v when v exceeds it. No-op on a nil sink.
func (s *Sink) Max(id CounterID, v int64) {
	if s == nil {
		return
	}
	if v > s.c[id] {
		s.c[id] = v
	}
}

// Get returns a counter's value; zero on a nil sink.
func (s *Sink) Get(id CounterID) int64 {
	if s == nil {
		return 0
	}
	return s.c[id]
}

// Merge folds another sink into this one: counts sum, gauges take the max.
// No-op when either side is nil.
func (s *Sink) Merge(other *Sink) {
	if s == nil || other == nil {
		return
	}
	for id := CounterID(0); id < NumCounters; id++ {
		if id.gauge() {
			if other.c[id] > s.c[id] {
				s.c[id] = other.c[id]
			}
		} else {
			s.c[id] += other.c[id]
		}
	}
}

// Snapshot returns the non-zero counters keyed by their stable names — the
// JSON form of a sink. Nil on a nil or all-zero sink.
func (s *Sink) Snapshot() map[string]int64 {
	if s == nil {
		return nil
	}
	var out map[string]int64
	for id := CounterID(0); id < NumCounters; id++ {
		if s.c[id] != 0 {
			if out == nil {
				out = make(map[string]int64, 8)
			}
			out[counterNames[id]] = s.c[id]
		}
	}
	return out
}

// Instrumentable is implemented by components that can thread a sink through
// to their internals (models hand it to their labellings and providers, the
// engine hands it to the simulator). Passing nil detaches instrumentation.
type Instrumentable interface {
	SetTelemetry(*Sink)
}

// HopSource classifies where one forwarding decision came from.
type HopSource uint8

const (
	// HopDirect is a decision that needed no reachability field (stateless
	// providers, label lookups).
	HopDirect HopSource = iota
	// HopCacheHit consulted a memoised reachability field.
	HopCacheHit
	// HopColdBuild built or rebuilt a reachability field for the decision.
	HopColdBuild
	// HopFallback took the Point-based provider fallback (a provider without
	// the dense-ID fast path).
	HopFallback
	// HopDecisionHit answered the whole hop with decision probes into the
	// memoised reachability field — no per-direction provider consultation
	// at all.
	HopDecisionHit
)

// String returns the stable external name of the hop source.
func (h HopSource) String() string {
	switch h {
	case HopCacheHit:
		return "cache-hit"
	case HopColdBuild:
		return "cold-build"
	case HopFallback:
		return "fallback"
	case HopDecisionHit:
		return "decision-hit"
	default:
		return "direct"
	}
}

// MarshalJSON encodes the hop source as its name.
func (h HopSource) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON decodes a hop-source name (the MarshalJSON inverse, so dumped
// traces can be read back by analysis tooling).
func (h *HopSource) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for _, s := range []HopSource{HopDirect, HopCacheHit, HopColdBuild, HopFallback, HopDecisionHit} {
		if s.String() == name {
			*h = s
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown hop source %q", name)
}

// Trace outcome statuses.
const (
	StatusDelivered = "delivered"
	StatusStuck     = "stuck"
	StatusLost      = "lost"
)

// Hop is one forwarding decision of a traced packet: the node that made it
// (dense mesh ID) and where the decision came from.
type Hop struct {
	Node   int32     `json:"node"`
	Source HopSource `json:"source"`
}

// Trace is the recorded life of one sampled packet. Node identities are dense
// mesh IDs; times are simulated ticks. Deliver is -1 when the packet never
// reached its destination (Status says why).
type Trace struct {
	Packet  int    `json:"packet"`
	Src     int32  `json:"src"`
	Dst     int32  `json:"dst"`
	Inject  int64  `json:"inject"`
	Deliver int64  `json:"deliver"`
	Status  string `json:"status"`
	Hops    []Hop  `json:"hops"`
}

// TraceSink records the hop sequence of a deterministic 1-in-N packet sample
// into a fixed ring: the most recent `capacity` sampled packets survive, older
// unfinished ones are counted as evicted. Sampling is keyed off a derived rng
// stream, not a shared counter, so the sample — and with it every recorded
// trace — is bit-identical at any worker count.
type TraceSink struct {
	key   uint64
	every uint64
	ring  []Trace
	next  int
	sink  *Sink
}

// NewTraceSink returns a trace sink sampling one packet in every (by packet
// id, keyed by key) with room for capacity traces. every < 1 is clamped to 1
// (trace everything); capacity < 1 to 1.
func NewTraceSink(key uint64, every, capacity int, sink *Sink) *TraceSink {
	if every < 1 {
		every = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &TraceSink{key: key, every: uint64(every), ring: make([]Trace, capacity), sink: sink}
}

// Sampled reports whether the packet with the given id is in the sample. The
// decision is a pure function of (key, id). Safe on a nil sink (false).
func (t *TraceSink) Sampled(packet int) bool {
	if t == nil {
		return false
	}
	return rng.Derive(t.key, uint64(packet))%t.every == 0
}

// Begin opens a trace slot for a sampled packet and returns it. The slot must
// be carried alongside the packet and passed back to Hop/Finish together with
// the packet id — the ring may recycle the slot for a newer packet, and the id
// check keeps a stale holder from corrupting the newer trace.
func (t *TraceSink) Begin(packet int, src, dst int32, inject int64) int32 {
	slot := t.next % len(t.ring)
	tr := &t.ring[slot]
	if tr.Hops != nil && tr.Status == "" {
		t.sink.Inc(TracesEvicted)
	}
	hops := tr.Hops[:0]
	if hops == nil {
		hops = make([]Hop, 0, 16)
	}
	*tr = Trace{Packet: packet, Src: src, Dst: dst, Inject: inject, Deliver: -1, Hops: hops}
	t.next++
	t.sink.Inc(TracesSampled)
	return int32(slot)
}

// Hop appends one forwarding decision to an open trace. Stale slots (recycled
// for a newer packet) are ignored.
func (t *TraceSink) Hop(slot int32, packet int, node int32, src HopSource) {
	tr := &t.ring[slot]
	if tr.Packet != packet {
		return
	}
	tr.Hops = append(tr.Hops, Hop{Node: node, Source: src})
}

// Finish closes a trace with its outcome. deliver is the delivery tick, or -1
// for packets that never arrived. Stale slots are ignored.
func (t *TraceSink) Finish(slot int32, packet int, deliver int64, status string) {
	tr := &t.ring[slot]
	if tr.Packet != packet {
		return
	}
	tr.Deliver = deliver
	tr.Status = status
}

// Close marks every still-open trace as lost (its packet was dropped by a
// dying node, or the ring outlived the run). Safe on a nil sink.
func (t *TraceSink) Close() {
	if t == nil {
		return
	}
	for i := range t.ring {
		if t.ring[i].Hops != nil && t.ring[i].Status == "" {
			t.ring[i].Status = StatusLost
		}
	}
}

// Traces returns the recorded traces in packet-id order (sampled packets
// begin in id order and the ring preserves insertion order across wraps).
// Safe on a nil sink (nil).
func (t *TraceSink) Traces() []Trace {
	if t == nil {
		return nil
	}
	out := make([]Trace, 0, len(t.ring))
	start := 0
	if t.next > len(t.ring) {
		start = t.next % len(t.ring)
	}
	for i := 0; i < len(t.ring); i++ {
		tr := t.ring[(start+i)%len(t.ring)]
		if tr.Hops != nil {
			out = append(out, tr)
		}
	}
	return out
}
