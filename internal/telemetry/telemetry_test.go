package telemetry

import (
	"encoding/json"
	"testing"
)

func TestNilSinkIsInert(t *testing.T) {
	var s *Sink
	s.Inc(FieldHits)
	s.Add(PacketsInjected, 7)
	s.Max(SimBucketPeak, 9)
	s.Merge(NewSink())
	if got := s.Get(FieldHits); got != 0 {
		t.Errorf("nil sink Get = %d, want 0", got)
	}
	if snap := s.Snapshot(); snap != nil {
		t.Errorf("nil sink Snapshot = %v, want nil", snap)
	}
}

func TestSinkCountersAndSnapshot(t *testing.T) {
	s := NewSink()
	s.Inc(FieldHits)
	s.Inc(FieldHits)
	s.Add(PacketsInjected, 5)
	s.Max(SimBucketPeak, 3)
	s.Max(SimBucketPeak, 2) // lower value must not shrink the gauge
	if got := s.Get(FieldHits); got != 2 {
		t.Errorf("FieldHits = %d, want 2", got)
	}
	snap := s.Snapshot()
	want := map[string]int64{
		"routing.field_hits": 2,
		"traffic.injected":   5,
		"simnet.bucket_peak": 3,
	}
	if len(snap) != len(want) {
		t.Fatalf("Snapshot = %v, want %v", snap, want)
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("Snapshot[%q] = %d, want %d", k, snap[k], v)
		}
	}
}

func TestMergeSumsCountsAndMaxesGauges(t *testing.T) {
	a, b := NewSink(), NewSink()
	a.Add(FieldColdBuilds, 3)
	a.Max(SimBucketPeak, 10)
	b.Add(FieldColdBuilds, 4)
	b.Max(SimBucketPeak, 6)
	a.Merge(b)
	if got := a.Get(FieldColdBuilds); got != 7 {
		t.Errorf("merged FieldColdBuilds = %d, want 7", got)
	}
	if got := a.Get(SimBucketPeak); got != 10 {
		t.Errorf("merged SimBucketPeak = %d, want 10 (gauge takes max)", got)
	}
}

func TestEveryCounterHasAName(t *testing.T) {
	seen := make(map[string]CounterID, NumCounters)
	for id := CounterID(0); id < NumCounters; id++ {
		name := id.String()
		if name == "" || name == "telemetry.unknown" {
			t.Errorf("counter %d has no name", id)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("counters %d and %d share the name %q", prev, id, name)
		}
		seen[name] = id
	}
}

func TestTraceSamplingIsDeterministic(t *testing.T) {
	a := NewTraceSink(42, 8, 4, nil)
	b := NewTraceSink(42, 8, 4, nil)
	c := NewTraceSink(43, 8, 4, nil)
	same, diff := true, false
	for id := 0; id < 4096; id++ {
		if a.Sampled(id) != b.Sampled(id) {
			same = false
		}
		if a.Sampled(id) != c.Sampled(id) {
			diff = true
		}
	}
	if !same {
		t.Error("identical keys must produce identical samples")
	}
	if !diff {
		t.Error("different keys should produce different samples")
	}
	var nilSink *TraceSink
	if nilSink.Sampled(0) {
		t.Error("nil trace sink must sample nothing")
	}
}

func TestTraceRingRecordsAndEvicts(t *testing.T) {
	s := NewSink()
	ts := NewTraceSink(1, 1, 2, s)
	// Packet 0: full life cycle.
	slot0 := ts.Begin(0, 5, 9, 10)
	ts.Hop(slot0, 0, 5, HopColdBuild)
	ts.Hop(slot0, 0, 6, HopCacheHit)
	ts.Finish(slot0, 0, 14, StatusDelivered)
	// Packets 1 and 2 overflow the 2-slot ring: packet 2 recycles packet 0's
	// slot (finished, so nothing counts as evicted) and packet 1 never
	// finishes — Close must mark it lost.
	slot1 := ts.Begin(1, 7, 9, 11)
	slot2 := ts.Begin(2, 8, 9, 12)
	ts.Hop(slot1, 1, 7, HopDirect)
	ts.Hop(slot2, 2, 8, HopFallback)
	ts.Finish(slot2, 2, 15, StatusStuck)
	if got := s.Get(TracesSampled); got != 3 {
		t.Errorf("TracesSampled = %d, want 3", got)
	}
	ts.Close()
	traces := ts.Traces()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2 (ring capacity)", len(traces))
	}
	if traces[0].Packet >= traces[1].Packet {
		t.Errorf("traces out of packet order: %d then %d", traces[0].Packet, traces[1].Packet)
	}
	for _, tr := range traces {
		if tr.Status == "" {
			t.Errorf("trace %d left without a status after Close", tr.Packet)
		}
	}
}

func TestTraceStaleSlotGuard(t *testing.T) {
	ts := NewTraceSink(1, 1, 1, nil)
	slot0 := ts.Begin(0, 1, 2, 0)
	slot1 := ts.Begin(1, 3, 4, 1)            // recycles the only slot
	ts.Hop(slot0, 0, 9, HopDirect)           // stale: must not touch packet 1
	ts.Finish(slot0, 0, 99, StatusDelivered) // stale: ditto
	ts.Hop(slot1, 1, 3, HopDirect)
	ts.Finish(slot1, 1, 5, StatusDelivered)
	traces := ts.Traces()
	if len(traces) != 1 || traces[0].Packet != 1 {
		t.Fatalf("ring should hold exactly packet 1, got %+v", traces)
	}
	if len(traces[0].Hops) != 1 || traces[0].Hops[0].Node != 3 || traces[0].Deliver != 5 {
		t.Errorf("stale writes leaked into packet 1's trace: %+v", traces[0])
	}
}

func TestHopSourceJSON(t *testing.T) {
	out, err := json.Marshal(Hop{Node: 3, Source: HopCacheHit})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"node":3,"source":"cache-hit"}` {
		t.Errorf("hop JSON = %s", out)
	}
	var h Hop
	if err := json.Unmarshal(out, &h); err != nil {
		t.Fatal(err)
	}
	if h.Node != 3 || h.Source != HopCacheHit {
		t.Errorf("round-trip = %+v", h)
	}
	if err := json.Unmarshal([]byte(`{"source":"warp"}`), &h); err == nil {
		t.Error("unknown hop source must fail to decode")
	}
}
