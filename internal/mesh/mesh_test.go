package mesh

import (
	"testing"
	"testing/quick"

	"mccmesh/internal/grid"
)

func TestDims(t *testing.T) {
	d := Dims{4, 5, 6}
	if d.Nodes() != 120 {
		t.Errorf("Nodes = %d", d.Nodes())
	}
	if d.Is2D() {
		t.Error("3-D dims reported as 2-D")
	}
	if !(Dims{4, 5, 1}).Is2D() {
		t.Error("2-D dims not recognised")
	}
	if (Dims{0, 1, 1}).Valid() {
		t.Error("zero extent should be invalid")
	}
}

func TestIndexPointRoundTrip(t *testing.T) {
	m := New3D(4, 5, 6)
	for i := 0; i < m.NodeCount(); i++ {
		p := m.Point(i)
		if m.Index(p) != i {
			t.Fatalf("round trip failed at %d -> %v", i, p)
		}
		if !m.InBounds(p) {
			t.Fatalf("point %v out of bounds", p)
		}
	}
}

func TestInBounds(t *testing.T) {
	m := New3D(3, 3, 3)
	if m.InBounds(grid.Point{X: 3, Y: 0, Z: 0}) || m.InBounds(grid.Point{X: -1, Y: 0, Z: 0}) {
		t.Error("out-of-range point reported in bounds")
	}
	if !m.InBounds(grid.Point{X: 2, Y: 2, Z: 2}) {
		t.Error("corner reported out of bounds")
	}
}

func TestFaults(t *testing.T) {
	m := New2D(5, 5)
	p := grid.Point{X: 2, Y: 3}
	m.SetFaulty(p, true)
	if !m.IsFaulty(p) || m.FaultCount() != 1 {
		t.Error("fault not recorded")
	}
	m.SetFaulty(p, true) // idempotent
	if m.FaultCount() != 1 {
		t.Error("duplicate fault changed the count")
	}
	m.SetFaulty(p, false)
	if m.IsFaulty(p) || m.FaultCount() != 0 {
		t.Error("fault not cleared")
	}
	m.AddFaults(grid.Point{X: 1, Y: 1}, grid.Point{X: 2, Y: 2})
	if len(m.Faults()) != 2 {
		t.Error("Faults() wrong")
	}
	m.ClearFaults()
	if m.FaultCount() != 0 {
		t.Error("ClearFaults failed")
	}
}

func TestIsFaultyOutOfBounds(t *testing.T) {
	m := New2D(3, 3)
	if m.IsFaulty(grid.Point{X: -1, Y: 0}) {
		t.Error("out-of-bounds nodes are not faulty")
	}
	if m.IsHealthy(grid.Point{X: -1, Y: 0}) {
		t.Error("out-of-bounds nodes are not healthy either")
	}
}

func TestNeighbors(t *testing.T) {
	m := New3D(3, 3, 3)
	center := grid.Point{X: 1, Y: 1, Z: 1}
	if got := len(m.Neighbors(nil, center)); got != 6 {
		t.Errorf("interior degree = %d, want 6", got)
	}
	corner := grid.Point{X: 0, Y: 0, Z: 0}
	if got := len(m.Neighbors(nil, corner)); got != 3 {
		t.Errorf("corner degree = %d, want 3", got)
	}
	if m.Degree(corner) != 3 {
		t.Error("Degree disagrees with Neighbors")
	}

	m2 := New2D(3, 3)
	if got := len(m2.Neighbors(nil, grid.Point{X: 1, Y: 1})); got != 4 {
		t.Errorf("2-D interior degree = %d, want 4", got)
	}
}

func TestNeighborDirection(t *testing.T) {
	m := New2D(3, 3)
	if _, ok := m.Neighbor(grid.Point{X: 0, Y: 0}, grid.XNeg); ok {
		t.Error("neighbour off the mesh reported present")
	}
	q, ok := m.Neighbor(grid.Point{X: 0, Y: 0}, grid.XPos)
	if !ok || q != (grid.Point{X: 1, Y: 0}) {
		t.Error("+X neighbour wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New2D(4, 4)
	m.SetFaulty(grid.Point{X: 1, Y: 1}, true)
	c := m.Clone()
	c.SetFaulty(grid.Point{X: 2, Y: 2}, true)
	if m.FaultCount() != 1 || c.FaultCount() != 2 {
		t.Error("clone is not independent")
	}
}

func TestDiameter(t *testing.T) {
	if New3D(8, 8, 8).Diameter() != 21 {
		t.Error("3-D diameter wrong")
	}
	if New2D(8, 8).Diameter() != 14 {
		t.Error("2-D diameter wrong")
	}
}

func TestHealthyNodes(t *testing.T) {
	m := New2D(3, 3)
	m.SetFaulty(grid.Point{X: 0, Y: 0}, true)
	if got := len(m.HealthyNodes()); got != 8 {
		t.Errorf("HealthyNodes = %d, want 8", got)
	}
}

func TestNeighborsAreAtDistanceOne(t *testing.T) {
	m := New3D(5, 4, 3)
	f := func(xi, yi, zi uint8) bool {
		p := grid.Point{X: int(xi) % 5, Y: int(yi) % 4, Z: int(zi) % 3}
		for _, q := range m.Neighbors(nil, p) {
			if grid.Manhattan(p, q) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAxesDirections(t *testing.T) {
	if len(New2D(3, 3).Axes()) != 2 || len(New3D(3, 3, 3).Axes()) != 3 {
		t.Error("Axes wrong")
	}
	if len(New2D(3, 3).Directions()) != 4 || len(New3D(3, 3, 3).Directions()) != 6 {
		t.Error("Directions wrong")
	}
}

func TestNeighborTableMatchesGeometry(t *testing.T) {
	for _, m := range []*Mesh{New2D(4, 3), New3D(3, 4, 5)} {
		for i := 0; i < m.NodeCount(); i++ {
			p := m.Point(i)
			if got := m.ID(p); got != int32(i) {
				t.Fatalf("ID(%v) = %d, want %d", p, got, i)
			}
			for _, d := range grid.Directions3D {
				q := grid.Step(p, d)
				want := NoNeighbor
				if m.InBounds(q) {
					want = int32(m.Index(q))
				}
				if got := m.NeighborID(int32(i), d); got != want {
					t.Errorf("NeighborID(%v, %v) = %d, want %d", p, d, got, want)
				}
			}
		}
		if m.ID(grid.Point{X: -1}) != NoNeighbor {
			t.Error("ID of an out-of-bounds point must be NoNeighbor")
		}
	}
}

func TestFaultBitset(t *testing.T) {
	m := New3D(5, 5, 5) // 125 nodes spans two bitset words
	pts := []grid.Point{{}, {X: 4, Y: 4, Z: 4}, {X: 2, Y: 3, Z: 1}, {X: 0, Y: 0, Z: 3}}
	m.AddFaults(pts...)
	if m.FaultCount() != len(pts) {
		t.Fatalf("FaultCount = %d, want %d", m.FaultCount(), len(pts))
	}
	for _, p := range pts {
		if !m.IsFaulty(p) || !m.FaultyAt(m.Index(p)) {
			t.Errorf("%v should be faulty", p)
		}
	}
	// Double-set must not double-count.
	m.SetFaulty(pts[0], true)
	if m.FaultCount() != len(pts) {
		t.Errorf("idempotent SetFaulty changed the count to %d", m.FaultCount())
	}
	c := m.Clone()
	m.SetFaulty(pts[1], false)
	if m.FaultCount() != len(pts)-1 || !c.IsFaulty(pts[1]) {
		t.Error("Clone must not share fault state")
	}
	m.ClearFaults()
	if m.FaultCount() != 0 || m.IsFaulty(pts[2]) {
		t.Error("ClearFaults left residue")
	}
}
