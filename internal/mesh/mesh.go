// Package mesh implements the k-ary 2-D / 3-D mesh-connected topology the
// paper targets: nodes addressed by integer coordinates, links between nodes
// whose addresses differ by one in exactly one dimension, and a mutable set of
// faulty nodes. Link faults are modelled, as in the paper, by disabling the
// adjacent nodes (see package fault).
package mesh

import (
	"fmt"

	"mccmesh/internal/grid"
)

// Dims describes the extent of a mesh along each axis. A 2-D mesh has Z == 1.
type Dims struct {
	X, Y, Z int
}

// String implements fmt.Stringer.
func (d Dims) String() string {
	if d.Z <= 1 {
		return fmt.Sprintf("%dx%d", d.X, d.Y)
	}
	return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z)
}

// Nodes returns the total number of nodes in a mesh with these dimensions.
func (d Dims) Nodes() int { return d.X * d.Y * d.Z }

// Is2D reports whether the dimensions describe a 2-D mesh.
func (d Dims) Is2D() bool { return d.Z <= 1 }

// Valid reports whether every extent is at least 1 (and at least 2 on the
// first two axes, the minimum for a mesh to have links).
func (d Dims) Valid() bool { return d.X >= 1 && d.Y >= 1 && d.Z >= 1 }

// Mesh is a k-ary 2-D or 3-D mesh with per-node fault status.
//
// The zero value is not usable; construct meshes with New2D or New3D.
type Mesh struct {
	dims   Dims
	faulty []bool
	nfault int
}

// New3D returns a fault-free 3-D mesh with the given extents.
func New3D(x, y, z int) *Mesh {
	return newMesh(Dims{x, y, z})
}

// New2D returns a fault-free 2-D mesh with the given extents.
func New2D(x, y int) *Mesh {
	return newMesh(Dims{x, y, 1})
}

// NewCube returns a k × k × k 3-D mesh.
func NewCube(k int) *Mesh {
	return New3D(k, k, k)
}

func newMesh(d Dims) *Mesh {
	if !d.Valid() {
		panic(fmt.Sprintf("mesh: invalid dimensions %v", d))
	}
	return &Mesh{
		dims:   d,
		faulty: make([]bool, d.Nodes()),
	}
}

// Dims returns the mesh dimensions.
func (m *Mesh) Dims() Dims { return m.dims }

// Is2D reports whether the mesh is two-dimensional (Z extent 1).
func (m *Mesh) Is2D() bool { return m.dims.Is2D() }

// Axes returns the active axes of the mesh: {X,Y} for 2-D, {X,Y,Z} for 3-D.
func (m *Mesh) Axes() []grid.Axis {
	if m.Is2D() {
		return grid.Axes2D
	}
	return grid.Axes3D
}

// Directions returns the neighbouring directions of the mesh: four in 2-D,
// six in 3-D.
func (m *Mesh) Directions() []grid.Direction {
	if m.Is2D() {
		return grid.Directions2D
	}
	return grid.Directions3D
}

// NodeCount returns the total number of nodes.
func (m *Mesh) NodeCount() int { return m.dims.Nodes() }

// FaultCount returns the number of faulty nodes.
func (m *Mesh) FaultCount() int { return m.nfault }

// Bounds returns the inclusive box of valid coordinates.
func (m *Mesh) Bounds() grid.Box {
	return grid.Box{Min: grid.Point{}, Max: grid.Point{X: m.dims.X - 1, Y: m.dims.Y - 1, Z: m.dims.Z - 1}}
}

// InBounds reports whether p is a valid node address.
func (m *Mesh) InBounds(p grid.Point) bool {
	return p.X >= 0 && p.X < m.dims.X &&
		p.Y >= 0 && p.Y < m.dims.Y &&
		p.Z >= 0 && p.Z < m.dims.Z
}

// Index returns the dense index of p. It panics if p is out of bounds.
func (m *Mesh) Index(p grid.Point) int {
	if !m.InBounds(p) {
		panic(fmt.Sprintf("mesh: point %v out of bounds for %v", p, m.dims))
	}
	return p.X + m.dims.X*(p.Y+m.dims.Y*p.Z)
}

// Point is the inverse of Index.
func (m *Mesh) Point(idx int) grid.Point {
	x := idx % m.dims.X
	idx /= m.dims.X
	y := idx % m.dims.Y
	z := idx / m.dims.Y
	return grid.Point{X: x, Y: y, Z: z}
}

// SetFaulty marks p as faulty (true) or healthy (false).
func (m *Mesh) SetFaulty(p grid.Point, faulty bool) {
	idx := m.Index(p)
	if m.faulty[idx] == faulty {
		return
	}
	m.faulty[idx] = faulty
	if faulty {
		m.nfault++
	} else {
		m.nfault--
	}
}

// AddFaults marks every listed point faulty.
func (m *Mesh) AddFaults(pts ...grid.Point) {
	for _, p := range pts {
		m.SetFaulty(p, true)
	}
}

// IsFaulty reports whether p is a faulty node. Out-of-bounds points are not
// faulty (they simply do not exist).
func (m *Mesh) IsFaulty(p grid.Point) bool {
	if !m.InBounds(p) {
		return false
	}
	return m.faulty[m.Index(p)]
}

// IsHealthy reports whether p is an in-bounds, non-faulty node.
func (m *Mesh) IsHealthy(p grid.Point) bool {
	return m.InBounds(p) && !m.faulty[m.Index(p)]
}

// FaultyAt reports the fault flag by dense index.
func (m *Mesh) FaultyAt(idx int) bool { return m.faulty[idx] }

// Faults returns the coordinates of all faulty nodes in index order.
func (m *Mesh) Faults() []grid.Point {
	out := make([]grid.Point, 0, m.nfault)
	for i, f := range m.faulty {
		if f {
			out = append(out, m.Point(i))
		}
	}
	return out
}

// ClearFaults removes every fault.
func (m *Mesh) ClearFaults() {
	for i := range m.faulty {
		m.faulty[i] = false
	}
	m.nfault = 0
}

// Clone returns a deep copy of the mesh.
func (m *Mesh) Clone() *Mesh {
	c := &Mesh{dims: m.dims, faulty: make([]bool, len(m.faulty)), nfault: m.nfault}
	copy(c.faulty, m.faulty)
	return c
}

// Neighbors appends to dst the in-bounds neighbours of p (regardless of fault
// status) and returns the extended slice. The order follows
// Directions3D/Directions2D.
func (m *Mesh) Neighbors(dst []grid.Point, p grid.Point) []grid.Point {
	for _, d := range m.Directions() {
		q := grid.Step(p, d)
		if m.InBounds(q) {
			dst = append(dst, q)
		}
	}
	return dst
}

// Neighbor returns the neighbour of p in direction d and whether it exists.
func (m *Mesh) Neighbor(p grid.Point, d grid.Direction) (grid.Point, bool) {
	q := grid.Step(p, d)
	return q, m.InBounds(q)
}

// Degree returns the number of in-bounds neighbours of p.
func (m *Mesh) Degree(p grid.Point) int {
	n := 0
	for _, d := range m.Directions() {
		if m.InBounds(grid.Step(p, d)) {
			n++
		}
	}
	return n
}

// ForEach calls fn for every node of the mesh in index order.
func (m *Mesh) ForEach(fn func(grid.Point)) {
	for i := range m.faulty {
		fn(m.Point(i))
	}
}

// HealthyNodes returns all non-faulty node coordinates in index order.
func (m *Mesh) HealthyNodes() []grid.Point {
	out := make([]grid.Point, 0, m.NodeCount()-m.nfault)
	for i, f := range m.faulty {
		if !f {
			out = append(out, m.Point(i))
		}
	}
	return out
}

// Diameter returns the network diameter (k-1)*n of the mesh.
func (m *Mesh) Diameter() int {
	d := (m.dims.X - 1) + (m.dims.Y - 1)
	if !m.Is2D() {
		d += m.dims.Z - 1
	}
	return d
}
