// Package mesh implements the k-ary 2-D / 3-D mesh-connected topology the
// paper targets: nodes addressed by integer coordinates, links between nodes
// whose addresses differ by one in exactly one dimension, and a mutable set of
// faulty nodes. Link faults are modelled, as in the paper, by disabling the
// adjacent nodes (see package fault).
//
// Internally the mesh is index-first: every node has a dense int32 ID (its
// row-major index), the topology is precomputed as a per-node neighbour table
// of IDs, fault status lives in a bitset, and the ID → coordinate mapping is a
// table lookup. The grid.Point API remains the public face; the hot paths of
// package simnet and the traffic engine run entirely on the dense IDs.
package mesh

import (
	"fmt"

	"mccmesh/internal/grid"
)

// NoNeighbor marks a missing neighbour in the dense neighbour table: the
// direction leaves the mesh.
const NoNeighbor int32 = -1

// Dims describes the extent of a mesh along each axis. A 2-D mesh has Z == 1.
type Dims struct {
	X, Y, Z int
}

// String implements fmt.Stringer.
func (d Dims) String() string {
	if d.Z <= 1 {
		return fmt.Sprintf("%dx%d", d.X, d.Y)
	}
	return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z)
}

// Nodes returns the total number of nodes in a mesh with these dimensions.
func (d Dims) Nodes() int { return d.X * d.Y * d.Z }

// Is2D reports whether the dimensions describe a 2-D mesh.
func (d Dims) Is2D() bool { return d.Z <= 1 }

// Valid reports whether every extent is at least 1 (and at least 2 on the
// first two axes, the minimum for a mesh to have links).
func (d Dims) Valid() bool { return d.X >= 1 && d.Y >= 1 && d.Z >= 1 }

// Mesh is a k-ary 2-D or 3-D mesh with per-node fault status.
//
// The zero value is not usable; construct meshes with New2D or New3D.
type Mesh struct {
	dims Dims
	// faulty is a bitset over dense node IDs (bit i = node i is faulty).
	faulty []uint64
	nfault int
	// points maps dense node ID to coordinates (the inverse of Index).
	points []grid.Point
	// nbr is the neighbour table: nbr[id*6+d] is the dense ID of the
	// neighbour of node id in direction d, or NoNeighbor. The table depends
	// only on the topology, never on fault status, so it is immutable after
	// construction.
	nbr []int32
}

// New3D returns a fault-free 3-D mesh with the given extents.
func New3D(x, y, z int) *Mesh {
	return newMesh(Dims{x, y, z})
}

// New2D returns a fault-free 2-D mesh with the given extents.
func New2D(x, y int) *Mesh {
	return newMesh(Dims{x, y, 1})
}

// NewCube returns a k × k × k 3-D mesh.
func NewCube(k int) *Mesh {
	return New3D(k, k, k)
}

func newMesh(d Dims) *Mesh {
	if !d.Valid() {
		panic(fmt.Sprintf("mesh: invalid dimensions %v", d))
	}
	n := d.Nodes()
	m := &Mesh{
		dims:   d,
		faulty: make([]uint64, (n+63)/64),
		points: make([]grid.Point, n),
		nbr:    make([]int32, n*grid.NumDirections),
	}
	for i := 0; i < n; i++ {
		x := i % d.X
		rest := i / d.X
		m.points[i] = grid.Point{X: x, Y: rest % d.Y, Z: rest / d.Y}
	}
	for i := 0; i < n; i++ {
		p := m.points[i]
		for dir := 0; dir < grid.NumDirections; dir++ {
			q := grid.Step(p, grid.Direction(dir))
			if m.InBounds(q) {
				m.nbr[i*grid.NumDirections+dir] = int32(q.X + d.X*(q.Y+d.Y*q.Z))
			} else {
				m.nbr[i*grid.NumDirections+dir] = NoNeighbor
			}
		}
	}
	return m
}

// Dims returns the mesh dimensions.
func (m *Mesh) Dims() Dims { return m.dims }

// Is2D reports whether the mesh is two-dimensional (Z extent 1).
func (m *Mesh) Is2D() bool { return m.dims.Is2D() }

// Axes returns the active axes of the mesh: {X,Y} for 2-D, {X,Y,Z} for 3-D.
func (m *Mesh) Axes() []grid.Axis {
	if m.Is2D() {
		return grid.Axes2D
	}
	return grid.Axes3D
}

// Directions returns the neighbouring directions of the mesh: four in 2-D,
// six in 3-D.
func (m *Mesh) Directions() []grid.Direction {
	if m.Is2D() {
		return grid.Directions2D
	}
	return grid.Directions3D
}

// NodeCount returns the total number of nodes.
func (m *Mesh) NodeCount() int { return len(m.points) }

// FaultCount returns the number of faulty nodes.
func (m *Mesh) FaultCount() int { return m.nfault }

// Bounds returns the inclusive box of valid coordinates.
func (m *Mesh) Bounds() grid.Box {
	return grid.Box{Min: grid.Point{}, Max: grid.Point{X: m.dims.X - 1, Y: m.dims.Y - 1, Z: m.dims.Z - 1}}
}

// InBounds reports whether p is a valid node address.
func (m *Mesh) InBounds(p grid.Point) bool {
	return p.X >= 0 && p.X < m.dims.X &&
		p.Y >= 0 && p.Y < m.dims.Y &&
		p.Z >= 0 && p.Z < m.dims.Z
}

// Index returns the dense index of p. It panics if p is out of bounds.
func (m *Mesh) Index(p grid.Point) int {
	if !m.InBounds(p) {
		panic(fmt.Sprintf("mesh: point %v out of bounds for %v", p, m.dims))
	}
	return p.X + m.dims.X*(p.Y+m.dims.Y*p.Z)
}

// ID returns the dense node ID of p, or NoNeighbor when p is out of bounds.
// It is the non-panicking form of Index used on the simulator's fast path.
func (m *Mesh) ID(p grid.Point) int32 {
	if !m.InBounds(p) {
		return NoNeighbor
	}
	return int32(p.X + m.dims.X*(p.Y+m.dims.Y*p.Z))
}

// Point is the inverse of Index: a table lookup, not arithmetic.
func (m *Mesh) Point(idx int) grid.Point { return m.points[idx] }

// NeighborID returns the dense ID of the neighbour of node id in direction d,
// or NoNeighbor when that direction leaves the mesh. The underlying table is
// precomputed once per topology; fault status is not consulted.
func (m *Mesh) NeighborID(id int32, d grid.Direction) int32 {
	return m.nbr[int(id)*grid.NumDirections+int(d)]
}

// SetFaulty marks p as faulty (true) or healthy (false).
func (m *Mesh) SetFaulty(p grid.Point, faulty bool) {
	idx := m.Index(p)
	word, bit := idx>>6, uint64(1)<<(idx&63)
	if m.faulty[word]&bit != 0 == faulty {
		return
	}
	if faulty {
		m.faulty[word] |= bit
		m.nfault++
	} else {
		m.faulty[word] &^= bit
		m.nfault--
	}
}

// AddFaults marks every listed point faulty.
func (m *Mesh) AddFaults(pts ...grid.Point) {
	for _, p := range pts {
		m.SetFaulty(p, true)
	}
}

// RemoveFaults clears the fault bit of every listed point — the repair half of
// the fault-churn cycle. Points that are healthy already are left untouched.
func (m *Mesh) RemoveFaults(pts ...grid.Point) {
	for _, p := range pts {
		m.SetFaulty(p, false)
	}
}

// IsFaulty reports whether p is a faulty node. Out-of-bounds points are not
// faulty (they simply do not exist).
func (m *Mesh) IsFaulty(p grid.Point) bool {
	if !m.InBounds(p) {
		return false
	}
	return m.FaultyAt(p.X + m.dims.X*(p.Y+m.dims.Y*p.Z))
}

// IsHealthy reports whether p is an in-bounds, non-faulty node.
func (m *Mesh) IsHealthy(p grid.Point) bool {
	return m.InBounds(p) && !m.IsFaulty(p)
}

// FaultyAt reports the fault flag by dense index.
func (m *Mesh) FaultyAt(idx int) bool {
	return m.faulty[idx>>6]&(uint64(1)<<(idx&63)) != 0
}

// FaultyWords exposes the fault bitset (bit i = node i is faulty) for
// word-level consumers — the routing decision-mask sweep reads 64 nodes'
// status at a time from it. Callers must not mutate the returned slice, and
// must not hold it across SetFaulty calls that could be concurrent.
func (m *Mesh) FaultyWords() []uint64 { return m.faulty }

// Faults returns the coordinates of all faulty nodes in index order.
func (m *Mesh) Faults() []grid.Point {
	out := make([]grid.Point, 0, m.nfault)
	for i := range m.points {
		if m.FaultyAt(i) {
			out = append(out, m.points[i])
		}
	}
	return out
}

// ClearFaults removes every fault.
func (m *Mesh) ClearFaults() {
	for i := range m.faulty {
		m.faulty[i] = 0
	}
	m.nfault = 0
}

// Clone returns a deep copy of the mesh. The immutable topology tables
// (points, neighbour IDs) are shared; the fault bitset is copied.
func (m *Mesh) Clone() *Mesh {
	c := &Mesh{dims: m.dims, faulty: make([]uint64, len(m.faulty)), nfault: m.nfault, points: m.points, nbr: m.nbr}
	copy(c.faulty, m.faulty)
	return c
}

// Neighbors appends to dst the in-bounds neighbours of p (regardless of fault
// status) and returns the extended slice. The order follows
// Directions3D/Directions2D.
func (m *Mesh) Neighbors(dst []grid.Point, p grid.Point) []grid.Point {
	for _, d := range m.Directions() {
		q := grid.Step(p, d)
		if m.InBounds(q) {
			dst = append(dst, q)
		}
	}
	return dst
}

// Neighbor returns the neighbour of p in direction d and whether it exists.
func (m *Mesh) Neighbor(p grid.Point, d grid.Direction) (grid.Point, bool) {
	q := grid.Step(p, d)
	return q, m.InBounds(q)
}

// Degree returns the number of in-bounds neighbours of p.
func (m *Mesh) Degree(p grid.Point) int {
	n := 0
	base := m.Index(p) * grid.NumDirections
	for _, d := range m.Directions() {
		if m.nbr[base+int(d)] != NoNeighbor {
			n++
		}
	}
	return n
}

// ForEach calls fn for every node of the mesh in index order.
func (m *Mesh) ForEach(fn func(grid.Point)) {
	for _, p := range m.points {
		fn(p)
	}
}

// HealthyNodes returns all non-faulty node coordinates in index order.
func (m *Mesh) HealthyNodes() []grid.Point {
	out := make([]grid.Point, 0, m.NodeCount()-m.nfault)
	for i, p := range m.points {
		if !m.FaultyAt(i) {
			out = append(out, p)
		}
	}
	return out
}

// Diameter returns the network diameter (k-1)*n of the mesh.
func (m *Mesh) Diameter() int {
	d := (m.dims.X - 1) + (m.dims.Y - 1)
	if !m.Is2D() {
		d += m.dims.Z - 1
	}
	return d
}
