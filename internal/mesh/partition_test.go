package mesh

import "testing"

// TestSlabPartitionCoversExactly pins the partition invariants every sharded
// run depends on: the slabs are non-empty, contiguous, ascending, aligned to
// whole layers, and concatenate to exactly [0, NodeCount).
func TestSlabPartitionCoversExactly(t *testing.T) {
	cases := []struct {
		name   string
		m      *Mesh
		shards int
		stride int32 // layer size: slab boundaries must be multiples of it
	}{
		{"3d-even", New3D(8, 8, 8), 4, 64},
		{"3d-uneven", New3D(10, 10, 10), 3, 100},
		{"3d-one-layer-each", New3D(4, 4, 6), 6, 16},
		{"2d", New2D(16, 5), 2, 16},
		{"single", New3D(5, 5, 5), 1, 25},
	}
	for _, tc := range cases {
		slabs := SlabPartition(tc.m, tc.shards)
		if len(slabs) != tc.shards {
			t.Errorf("%s: got %d slabs, want %d", tc.name, len(slabs), tc.shards)
			continue
		}
		var next int32
		for i, s := range slabs {
			if s.Lo != next {
				t.Errorf("%s: slab %d starts at %d, want %d (gap or overlap)", tc.name, i, s.Lo, next)
			}
			if s.Len() <= 0 {
				t.Errorf("%s: slab %d is empty (%+v)", tc.name, i, s)
			}
			if s.Lo%tc.stride != 0 || s.Hi%tc.stride != 0 {
				t.Errorf("%s: slab %d = %+v not aligned to the %d-node layer stride", tc.name, i, s, tc.stride)
			}
			next = s.Hi
		}
		if int(next) != tc.m.NodeCount() {
			t.Errorf("%s: slabs end at %d, want NodeCount %d", tc.name, next, tc.m.NodeCount())
		}
	}
}

// TestSlabPartitionBalanced: layer counts differ by at most one across slabs.
func TestSlabPartitionBalanced(t *testing.T) {
	m := New3D(6, 6, 11)
	slabs := SlabPartition(m, 4)
	minLen, maxLen := slabs[0].Len(), slabs[0].Len()
	for _, s := range slabs[1:] {
		if s.Len() < minLen {
			minLen = s.Len()
		}
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if layer := 36; maxLen-minLen > layer {
		t.Errorf("slab sizes range %d..%d nodes; want within one %d-node layer", minLen, maxLen, layer)
	}
}

// TestSlabPartitionClampsToLayers: a request beyond the layer count yields one
// slab per layer, never an empty slab (callers size pools from the result).
func TestSlabPartitionClampsToLayers(t *testing.T) {
	m := New3D(4, 4, 3)
	if got := len(SlabPartition(m, 16)); got != 3 {
		t.Errorf("16-way split of a 3-layer mesh gave %d slabs, want 3", got)
	}
	m2 := New2D(9, 4)
	if got := len(SlabPartition(m2, 0)); got != 1 {
		t.Errorf("0-way split gave %d slabs, want 1", got)
	}
}

// TestIDRangeContains exercises the half-open boundary semantics.
func TestIDRangeContains(t *testing.T) {
	r := IDRange{Lo: 10, Hi: 20}
	for id, want := range map[int32]bool{9: false, 10: true, 19: true, 20: false} {
		if got := r.Contains(id); got != want {
			t.Errorf("Contains(%d) = %v, want %v", id, got, want)
		}
	}
	if r.Len() != 10 {
		t.Errorf("Len() = %d, want 10", r.Len())
	}
}
