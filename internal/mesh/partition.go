package mesh

// Spatial partitioning for sharded simulation: the mesh is split into slabs of
// whole layers perpendicular to its last axis. Node IDs are row-major
// (idx = x + X*(y + Y*z)), so a run of consecutive layers is exactly one
// contiguous dense-ID interval — a shard's membership test is two compares and
// its node set needs no per-node table.

// IDRange is a half-open interval [Lo, Hi) of dense node IDs.
type IDRange struct {
	Lo, Hi int32
}

// Contains reports whether the dense ID falls inside the range.
func (r IDRange) Contains(id int32) bool { return id >= r.Lo && id < r.Hi }

// Len returns the number of IDs in the range.
func (r IDRange) Len() int { return int(r.Hi - r.Lo) }

// SlabPartition splits the mesh into at most shards contiguous slabs of whole
// layers: Z-layers of X*Y nodes for a 3-D mesh, Y-rows of X nodes for a 2-D
// mesh. Layers are distributed as evenly as possible (slab sizes differ by at
// most one layer), every slab is non-empty, and concatenating the returned
// ranges in order covers [0, NodeCount) exactly. When the mesh has fewer
// layers than requested shards, the effective shard count is the layer count —
// callers size their worker pools from len(result), not from the request.
func SlabPartition(m *Mesh, shards int) []IDRange {
	layers, stride := m.dims.Z, m.dims.X*m.dims.Y
	if m.Is2D() {
		layers, stride = m.dims.Y, m.dims.X
	}
	if shards > layers {
		shards = layers
	}
	if shards < 1 {
		shards = 1
	}
	out := make([]IDRange, shards)
	for i := range out {
		lo := i * layers / shards
		hi := (i + 1) * layers / shards
		out[i] = IDRange{Lo: int32(lo * stride), Hi: int32(hi * stride)}
	}
	return out
}
