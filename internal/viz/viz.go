// Package viz renders meshes, labels, fault regions and routing paths as
// ASCII art, one Z slice at a time. It backs the mccviz command and the
// examples; the symbols follow the paper's figures:
//
//	.  safe node          F  faulty node
//	u  useless node       c  can't-reach node
//	#  rectangular-faulty-block node (when a block overlay is supplied)
//	*  node on the rendered path
//	S  source             D  destination
package viz

import (
	"fmt"
	"strings"

	"mccmesh/internal/block"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
)

// Overlay optionally decorates a rendering.
type Overlay struct {
	// Path marks nodes with '*' (endpoints with 'S'/'D').
	Path []grid.Point
	// Source and Destination are marked even without a path.
	Source, Destination *grid.Point
	// Blocks marks nodes inside rectangular faulty blocks with '#' unless a
	// stronger symbol applies.
	Blocks *block.Regions
}

// Slice renders the z = level slice of a labelling as ASCII art with the Y
// axis growing upward (as in the paper's figures).
func Slice(l *labeling.Labeling, level int, ov Overlay) string {
	m := l.Mesh()
	dims := m.Dims()
	onPath := make(map[grid.Point]bool, len(ov.Path))
	for _, p := range ov.Path {
		onPath[p] = true
	}
	var b strings.Builder
	if !m.Is2D() {
		fmt.Fprintf(&b, "z = %d\n", level)
	}
	for y := dims.Y - 1; y >= 0; y-- {
		fmt.Fprintf(&b, "%3d ", y)
		for x := 0; x < dims.X; x++ {
			p := grid.Point{X: x, Y: y, Z: level}
			b.WriteByte(symbol(l, p, ov, onPath))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	b.WriteString("    ")
	for x := 0; x < dims.X; x++ {
		b.WriteString(fmt.Sprintf("%-2d", x%10))
	}
	b.WriteByte('\n')
	return b.String()
}

func symbol(l *labeling.Labeling, p grid.Point, ov Overlay, onPath map[grid.Point]bool) byte {
	if ov.Source != nil && *ov.Source == p {
		return 'S'
	}
	if ov.Destination != nil && *ov.Destination == p {
		return 'D'
	}
	if len(ov.Path) > 0 {
		if ov.Path[0] == p {
			return 'S'
		}
		if ov.Path[len(ov.Path)-1] == p {
			return 'D'
		}
		if onPath[p] {
			return '*'
		}
	}
	switch l.Status(p) {
	case labeling.Faulty:
		return 'F'
	case labeling.Useless:
		return 'u'
	case labeling.CantReach:
		return 'c'
	}
	if ov.Blocks != nil && ov.Blocks.Contains(p) {
		return '#'
	}
	return '.'
}

// Mesh2D renders a 2-D mesh labelling (the only slice there is).
func Mesh2D(l *labeling.Labeling, ov Overlay) string {
	return Slice(l, 0, ov)
}

// Slices renders every Z level that contains at least one non-safe symbol,
// which keeps 3-D dumps readable.
func Slices(l *labeling.Labeling, ov Overlay) string {
	m := l.Mesh()
	if m.Is2D() {
		return Mesh2D(l, ov)
	}
	interesting := make(map[int]bool)
	m.ForEach(func(p grid.Point) {
		if l.Status(p) != labeling.Safe {
			interesting[p.Z] = true
		}
	})
	for _, p := range ov.Path {
		interesting[p.Z] = true
	}
	if ov.Source != nil {
		interesting[ov.Source.Z] = true
	}
	if ov.Destination != nil {
		interesting[ov.Destination.Z] = true
	}
	var b strings.Builder
	for z := 0; z < m.Dims().Z; z++ {
		if interesting[z] {
			b.WriteString(Slice(l, z, ov))
			b.WriteByte('\n')
		}
	}
	if b.Len() == 0 {
		return Slice(l, 0, ov)
	}
	return b.String()
}

// Legend returns the symbol legend.
func Legend() string {
	return ". safe   F faulty   u useless   c can't-reach   # faulty block   * path   S source   D destination"
}
