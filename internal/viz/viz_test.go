package viz

import (
	"strings"
	"testing"

	"mccmesh/internal/block"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
)

func TestMesh2DSymbols(t *testing.T) {
	m := mesh.New2D(6, 6)
	m.AddFaults(grid.Point{X: 2, Y: 3}, grid.Point{X: 3, Y: 2})
	l := labeling.Compute(m, grid.PositiveOrientation)
	s := grid.Point{X: 0, Y: 0}
	d := grid.Point{X: 5, Y: 5}
	out := Mesh2D(l, Overlay{Source: &s, Destination: &d})
	if !strings.Contains(out, "F") {
		t.Error("faulty symbol missing")
	}
	if !strings.Contains(out, "u") {
		t.Error("useless symbol missing: (2,2) is wedged")
	}
	if !strings.Contains(out, "c") {
		t.Error("can't-reach symbol missing: (3,3) is wedged")
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, "D") {
		t.Error("endpoint markers missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // 6 rows + axis line
		t.Errorf("expected 7 lines, got %d", len(lines))
	}
}

func TestSlicePath(t *testing.T) {
	m := mesh.New2D(5, 5)
	l := labeling.Compute(m, grid.PositiveOrientation)
	path := []grid.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}
	out := Mesh2D(l, Overlay{Path: path})
	if !strings.Contains(out, "S") || !strings.Contains(out, "D") || !strings.Contains(out, "*") {
		t.Errorf("path rendering missing markers:\n%s", out)
	}
}

func TestSlicesSelectsInterestingLevels(t *testing.T) {
	m := mesh.New3D(6, 6, 6)
	m.AddFaults(grid.Point{X: 2, Y: 2, Z: 3})
	l := labeling.Compute(m, grid.PositiveOrientation)
	out := Slices(l, Overlay{})
	if !strings.Contains(out, "z = 3") {
		t.Error("slice with the fault not rendered")
	}
	if strings.Contains(out, "z = 5") {
		t.Error("empty slice should be skipped")
	}
}

func TestSlicesFaultFreeFallsBack(t *testing.T) {
	m := mesh.New3D(4, 4, 4)
	l := labeling.Compute(m, grid.PositiveOrientation)
	if Slices(l, Overlay{}) == "" {
		t.Error("fault-free rendering should fall back to one slice")
	}
}

func TestBlockOverlay(t *testing.T) {
	m := mesh.New2D(8, 8)
	m.AddFaults(grid.Point{X: 2, Y: 2}, grid.Point{X: 3, Y: 3})
	l := labeling.Compute(m, grid.PositiveOrientation)
	blocks := block.Build(m, block.BoundingBox)
	out := Mesh2D(l, Overlay{Blocks: blocks})
	if !strings.Contains(out, "#") {
		t.Errorf("block overlay missing:\n%s", out)
	}
}

func TestLegend(t *testing.T) {
	if !strings.Contains(Legend(), "faulty") {
		t.Error("legend incomplete")
	}
}
