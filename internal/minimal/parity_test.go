package minimal

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

// mapReachability is the pre-refactor reference: the same monotone sweep
// computed into a map[grid.Point]bool, Point arithmetic everywhere. The
// bitset Field must agree with it cell for cell.
func mapReachability(m *mesh.Mesh, avoid Avoid, s, d grid.Point) map[grid.Point]bool {
	orient := grid.OrientationOf(s, d)
	reach := make(map[grid.Point]bool)
	axes := m.Axes()
	dc := orient.Canon(s, d)
	for cz := dc.Z; cz >= 0; cz-- {
		for cy := dc.Y; cy >= 0; cy-- {
			for cx := dc.X; cx >= 0; cx-- {
				c := grid.Point{X: cx, Y: cy, Z: cz}
				p := orient.Uncanon(s, c)
				if avoid(p) {
					continue
				}
				if p == d {
					reach[p] = true
					continue
				}
				for _, a := range axes {
					if c.Axis(a) >= dc.Axis(a) {
						continue
					}
					if reach[orient.Ahead(p, a)] {
						reach[p] = true
						break
					}
				}
			}
		}
	}
	return reach
}

// TestFieldMatchesMapReference pins the bitset field (built through the
// Point, ID and reuse entry points) to the map-backed reference on randomized
// fault sets with golden seeds, over every cell of the box and the ID-based
// accessors.
func TestFieldMatchesMapReference(t *testing.T) {
	shapes := []func() *mesh.Mesh{
		func() *mesh.Mesh { return mesh.New2D(9, 7) },
		func() *mesh.Mesh { return mesh.NewCube(6) },
	}
	for _, mk := range shapes {
		for _, seed := range []uint64{3, 17, 55} {
			m := mk()
			r := rng.New(seed)
			for i := 0; i < m.NodeCount()/10; i++ {
				m.SetFaulty(m.Point(r.Intn(m.NodeCount())), true)
			}
			avoid := AvoidFaulty(m)
			avoidID := AvoidFaultyID(m)
			var reused *Field
			for trial := 0; trial < 24; trial++ {
				s := m.Point(r.Intn(m.NodeCount()))
				d := m.Point(r.Intn(m.NodeCount()))
				want := mapReachability(m, avoid, s, d)

				fields := map[string]*Field{
					"Reachability":   Reachability(m, avoid, s, d),
					"ReachabilityID": ReachabilityID(m, avoidID, s, d),
				}
				reused = ReachabilityIDInto(reused, m, avoidID, s, d)
				fields["ReachabilityIDInto"] = reused

				box := grid.BoxOf(s, d)
				for name, f := range fields {
					m.ForEach(func(p grid.Point) {
						got := f.CanReach(p)
						if got != want[p] {
							t.Fatalf("seed=%d %s: CanReach(%v) = %v, map reference %v (s=%v d=%v)", seed, name, p, got, want[p], s, d)
						}
						if gotID := f.CanReachID(m.ID(p)); gotID != got {
							t.Fatalf("seed=%d %s: CanReachID(%v) = %v disagrees with CanReach = %v", seed, name, p, gotID, got)
						}
						if box.Contains(p) && f.CanReachCovered(p) != got {
							t.Fatalf("seed=%d %s: CanReachCovered(%v) disagrees with CanReach", seed, name, p)
						}
					})
					// Points outside the box report false, as before.
					outside := grid.Point{X: -1, Y: 0, Z: 0}
					if f.CanReach(outside) {
						t.Fatalf("seed=%d %s: out-of-box point reported reachable", seed, name)
					}
				}
			}
		}
	}
}
