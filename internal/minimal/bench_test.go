package minimal_test

// Benchmarks for the reachability-field sweep, the kernel under every
// field-backed routing provider. The corner-to-corner 16^3 case is the
// worst-case box of the PERFORMANCE.md reference mesh; the Into variant
// measures the storage-reuse path the routing epoch caches take when they
// rebuild a field after a fault injection.

import (
	"testing"

	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
	"mccmesh/internal/rng"
)

func benchMesh() (*mesh.Mesh, grid.Point, grid.Point) {
	m := mesh.NewCube(16)
	fault.Uniform{
		Count:     120,
		Protected: []grid.Point{{X: 0, Y: 0, Z: 0}, {X: 15, Y: 15, Z: 15}},
	}.Inject(m, rng.New(7))
	return m, grid.Point{X: 0, Y: 0, Z: 0}, grid.Point{X: 15, Y: 15, Z: 15}
}

// BenchmarkReachability16 is the Point-addressed sweep (the API the
// ground-truth checks and the protocol layer use).
func BenchmarkReachability16(b *testing.B) {
	m, s, d := benchMesh()
	avoid := minimal.AvoidFaulty(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if minimal.Reachability(m, avoid, s, d) == nil {
			b.Fatal("nil field")
		}
	}
}

// BenchmarkReachabilityID16 is the ID-addressed sweep the routing providers
// build their fields with: one bitset read per obstacle test.
func BenchmarkReachabilityID16(b *testing.B) {
	m, s, d := benchMesh()
	avoid := minimal.AvoidFaultyID(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if minimal.ReachabilityID(m, avoid, s, d) == nil {
			b.Fatal("nil field")
		}
	}
}

// BenchmarkReachabilityIDInto16 is the rebuild-in-place path the epoch caches
// take after a fault injection: same sweep, zero allocations.
func BenchmarkReachabilityIDInto16(b *testing.B) {
	m, s, d := benchMesh()
	avoid := minimal.AvoidFaultyID(m)
	f := minimal.ReachabilityID(m, avoid, s, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		minimal.ReachabilityIDInto(f, m, avoid, s, d)
	}
}
