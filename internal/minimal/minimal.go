// Package minimal provides ground-truth computations about minimal (shortest,
// i.e. monotone) paths in a mesh: existence of a monotone path between two
// nodes that avoids an arbitrary obstacle set, extraction of one such path,
// and the full reachability field used by the oracle routing provider.
//
// A routing path from s to d is minimal exactly when every hop moves toward d,
// so minimal paths coincide with monotone lattice paths inside the box spanned
// by s and d. These routines are the reference the MCC model is validated
// against: by the paper's "ultimate fault region" property, a minimal path
// avoiding faults exists iff one avoiding all MCC (unsafe) nodes exists.
//
// # Fast path
//
// The reachability Field is a flat bitset over box-local indices. The sweep
// that fills it runs on dense node IDs — obstacle tests through AvoidID are a
// single array access for the callers that matter (labelings, fault bitsets,
// block tables) — and the per-hop query CanReachID goes from a node ID to a
// bit test without constructing a Point. ReachabilityIDInto rebuilds a field
// in place, reusing the previous bitset storage, which the routing providers'
// epoch caches lean on under fault churn.
package minimal

import (
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// Avoid reports whether a node must not be used by a path. Implementations
// typically close over a labelling, a fault set or a single fault component.
type Avoid func(grid.Point) bool

// AvoidID is the index-first form of Avoid: the node is named by its dense
// mesh ID. The reachability sweep and the routing providers use it so that an
// obstacle test is one array access instead of a Point→index conversion.
type AvoidID func(id int32) bool

// AvoidNone permits every node.
func AvoidNone(grid.Point) bool { return false }

// AvoidFaulty returns an Avoid that rejects exactly the faulty nodes of m.
func AvoidFaulty(m *mesh.Mesh) Avoid {
	return func(p grid.Point) bool { return m.IsFaulty(p) }
}

// AvoidFaultyID returns an AvoidID that rejects exactly the faulty nodes of m.
func AvoidFaultyID(m *mesh.Mesh) AvoidID {
	return func(id int32) bool { return m.FaultyAt(int(id)) }
}

// Exists reports whether a monotone path from s to d exists inside the mesh
// that avoids every node rejected by avoid. The endpoints themselves must be
// acceptable to avoid; otherwise Exists returns false (unless s == d and s is
// acceptable).
func Exists(m *mesh.Mesh, avoid Avoid, s, d grid.Point) bool {
	f := Reachability(m, avoid, s, d)
	return f.CanReach(s)
}

// Field is the monotone-reachability field toward a fixed destination within
// the box spanned by a source and destination: for every node p in the box,
// whether a monotone path p → d avoiding the obstacle set exists. Membership
// is stored as a flat bitset over box-local indices.
type Field struct {
	m      *mesh.Mesh
	orient grid.Orientation
	box    grid.Box
	d      grid.Point
	words  []uint64 // bitset over box-local indices
	dims   [3]int
}

// Reachability computes the monotone-reachability field toward d over the box
// spanned by s and d, treating avoid-rejected nodes as obstacles.
func Reachability(m *mesh.Mesh, avoid Avoid, s, d grid.Point) *Field {
	return ReachabilityIDInto(nil, m, func(id int32) bool { return avoid(m.Point(int(id))) }, s, d)
}

// ReachabilityID is Reachability with an ID-addressed obstacle set.
func ReachabilityID(m *mesh.Mesh, avoid AvoidID, s, d grid.Point) *Field {
	return ReachabilityIDInto(nil, m, avoid, s, d)
}

// ReachabilityIDInto computes the field like ReachabilityID but reuses f's
// struct and bitset storage when f is non-nil (growing it only if the new box
// needs more words). Callers that rebuild fields under fault churn — the
// routing providers' epoch caches — use it to keep rebuilds allocation-free.
// The returned pointer is f when f was non-nil.
func ReachabilityIDInto(f *Field, m *mesh.Mesh, avoid AvoidID, s, d grid.Point) *Field {
	orient := grid.OrientationOf(s, d)
	box := grid.BoxOf(s, d)
	if f == nil {
		f = &Field{}
	}
	f.m = m
	f.orient = orient
	f.box = box
	f.d = d
	f.dims = [3]int{
		box.Max.X - box.Min.X + 1,
		box.Max.Y - box.Min.Y + 1,
		box.Max.Z - box.Min.Z + 1,
	}
	nbits := f.dims[0] * f.dims[1] * f.dims[2]
	nwords := (nbits + 63) / 64
	if cap(f.words) < nwords {
		f.words = make([]uint64, nwords)
	} else {
		f.words = f.words[:nwords]
		for i := range f.words {
			f.words[i] = 0
		}
	}

	dims := m.Dims()
	// Mesh-ID delta of one forward X step, and the box-local index deltas of a
	// forward step per axis. Forward on an axis moves the coordinate by the
	// orientation sign, so the deltas carry that sign. Only the X deltas are
	// stepped incrementally; row starts recompute from coordinates.
	meshDX := orient.SX
	locDX := orient.SX
	locDY := orient.SY * f.dims[0]
	locDZ := orient.SZ * f.dims[0] * f.dims[1]

	is2D := m.Is2D()
	// Process points in decreasing order of remaining distance to d, so each
	// node's forward neighbours are already resolved. Iterating the canonical
	// coordinates from the destination backwards achieves this.
	dc := orient.Canon(s, d) // componentwise ≥ 0
	for cz := dc.Z; cz >= 0; cz-- {
		for cy := dc.Y; cy >= 0; cy-- {
			// Mesh ID and box-local index at cx = cy-row start (canonical
			// (dc.X, cy, cz)); stepping cx down moves both by their X delta.
			p := orient.Uncanon(s, grid.Point{X: dc.X, Y: cy, Z: cz})
			id := p.X + dims.X*(p.Y+dims.Y*p.Z)
			loc := (p.X - box.Min.X) + f.dims[0]*((p.Y-box.Min.Y)+f.dims[1]*(p.Z-box.Min.Z))
			for cx := dc.X; cx >= 0; cx, id, loc = cx-1, id-meshDX, loc-locDX {
				if avoid(int32(id)) {
					continue
				}
				if cx == dc.X && cy == dc.Y && cz == dc.Z {
					// p == d: the destination reaches itself.
					f.words[loc>>6] |= 1 << uint(loc&63)
					continue
				}
				ok := false
				if cx < dc.X {
					q := loc + locDX
					ok = f.words[q>>6]&(1<<uint(q&63)) != 0
				}
				if !ok && cy < dc.Y {
					q := loc + locDY
					ok = f.words[q>>6]&(1<<uint(q&63)) != 0
				}
				if !ok && !is2D && cz < dc.Z {
					q := loc + locDZ
					ok = f.words[q>>6]&(1<<uint(q&63)) != 0
				}
				if ok {
					f.words[loc>>6] |= 1 << uint(loc&63)
				}
			}
		}
	}
	return f
}

// ReachabilityWordsInto computes the field like ReachabilityIDInto but takes
// the obstacle set as a bitset over dense node IDs (bit set = avoid) instead
// of a predicate, which lets the sweep run a whole box row at a time: extract
// the row's free bits and the already-resolved forward-Y/Z neighbour rows as
// words, then resolve the X recurrence ok(x) = free(x) ∧ (seed(x) ∨ ok(x±1))
// with a logarithmic shift-propagate cascade — six shift/mask steps per row
// instead of a predicate call and three bit probes per cell. Boxes wider than
// 64 nodes (beyond every mesh in the evaluation) fall back to the per-node
// sweep through a bitset-reading predicate.
//
// The providers' avoid sets are all natively bitsets — the mesh fault words
// for the oracle, the labelling's unsafe words for MCC, the block table's
// membership words for RFB — so this is the build path behind the direction
// masks of the per-hop decision memoisation.
func ReachabilityWordsInto(f *Field, m *mesh.Mesh, avoid []uint64, s, d grid.Point) *Field {
	orient := grid.OrientationOf(s, d)
	box := grid.BoxOf(s, d)
	w := box.Max.X - box.Min.X + 1
	if w > 64 {
		return ReachabilityIDInto(f, m, func(id int32) bool {
			return avoid[id>>6]&(1<<uint(id&63)) != 0
		}, s, d)
	}
	if f == nil {
		f = &Field{}
	}
	f.m = m
	f.orient = orient
	f.box = box
	f.d = d
	f.dims = [3]int{w, box.Max.Y - box.Min.Y + 1, box.Max.Z - box.Min.Z + 1}
	nbits := w * f.dims[1] * f.dims[2]
	nwords := (nbits + 63) / 64
	if cap(f.words) < nwords {
		f.words = make([]uint64, nwords)
	} else {
		f.words = f.words[:nwords]
	}
	// Every bit below nbits is overwritten row by row; only the tail of the
	// last word needs clearing, so recycled storage cannot leak garbage bits
	// to word-level consumers of the finished bitset.
	if t := uint(nbits & 63); t != 0 {
		f.words[nwords-1] &= 1<<t - 1
	}

	dims := m.Dims()
	locDY := orient.SY * w
	locDZ := orient.SZ * w * f.dims[1]
	rowMask := ^uint64(0)
	if w < 64 {
		rowMask = 1<<uint(w) - 1
	}
	dxBit := uint64(1) << uint(d.X-box.Min.X)
	// Rows in decreasing order of remaining distance to d, as in the per-node
	// sweep: the forward-Y and forward-Z neighbour rows are always resolved
	// before the rows that read them.
	dc := orient.Canon(s, d)
	for cz := dc.Z; cz >= 0; cz-- {
		for cy := dc.Y; cy >= 0; cy-- {
			p := orient.Uncanon(s, grid.Point{X: dc.X, Y: cy, Z: cz})
			idRow := box.Min.X + dims.X*(p.Y+dims.Y*p.Z)
			locRow := w * ((p.Y - box.Min.Y) + f.dims[1]*(p.Z-box.Min.Z))
			free := ^bitsRange(avoid, idRow, w) & rowMask
			// seed(x): reachable through a forward Y or Z step (or being the
			// destination itself); the X recurrence then extends each seed
			// through runs of free cells toward the source side.
			var seed uint64
			if cy < dc.Y {
				seed = bitsRange(f.words, locRow+locDY, w)
			}
			if cz < dc.Z {
				seed |= bitsRange(f.words, locRow+locDZ, w)
			}
			if cy == dc.Y && cz == dc.Z {
				seed |= dxBit
			}
			r := seed & free
			run := free
			if orient.SX >= 0 {
				// d on the high-x side: ok(x) looks at ok(x+1), so set bits
				// propagate downward. run(x) tracks "free on [x, x+k)".
				r |= (r >> 1) & run
				run &= run >> 1
				r |= (r >> 2) & run
				run &= run >> 2
				r |= (r >> 4) & run
				run &= run >> 4
				r |= (r >> 8) & run
				run &= run >> 8
				r |= (r >> 16) & run
				run &= run >> 16
				r |= (r >> 32) & run
			} else {
				r |= (r << 1) & run
				run &= run << 1
				r |= (r << 2) & run
				run &= run << 2
				r |= (r << 4) & run
				run &= run << 4
				r |= (r << 8) & run
				run &= run << 8
				r |= (r << 16) & run
				run &= run << 16
				r |= (r << 32) & run
			}
			setBitsRange(f.words, locRow, w, r)
		}
	}
	return f
}

// setBitsRange writes v's low n bits into bits [start, start+n) of the
// bitset, leaving every other bit untouched. start must be non-negative and
// n at most 64.
func setBitsRange(words []uint64, start, n int, v uint64) {
	m := ^uint64(0)
	if n < 64 {
		m = 1<<uint(n) - 1
		v &= m
	}
	w, off := start>>6, uint(start&63)
	words[w] = words[w]&^(m<<off) | v<<off
	if off != 0 && int(off)+n > 64 {
		sh := 64 - off
		words[w+1] = words[w+1]&^(m>>sh) | v>>sh
	}
}

func (f *Field) index(p grid.Point) int {
	x := p.X - f.box.Min.X
	y := p.Y - f.box.Min.Y
	z := p.Z - f.box.Min.Z
	return x + f.dims[0]*(y+f.dims[1]*z)
}

func (f *Field) at(p grid.Point) bool {
	if !f.box.Contains(p) {
		return false
	}
	i := f.index(p)
	return f.words[i>>6]&(1<<uint(i&63)) != 0
}

// CanReach reports whether a monotone path from p to the field's destination
// exists. Points outside the field's box cannot be on any minimal path and
// report false.
func (f *Field) CanReach(p grid.Point) bool { return f.at(p) }

// CanReachID is CanReach addressed by dense node ID, for callers that hold
// IDs rather than Points. (The routing providers' per-hop path holds the
// Point already and goes through Covers + CanReachCovered instead.)
func (f *Field) CanReachID(id int32) bool {
	return f.at(f.m.Point(int(id)))
}

// CanReachCovered is CanReach without the box check: the caller must have
// established Covers(p). The routing providers' caches verify coverage once
// per lookup and then skip re-verifying it per bit test.
func (f *Field) CanReachCovered(p grid.Point) bool {
	i := f.index(p)
	return f.words[i>>6]&(1<<uint(i&63)) != 0
}

// bitsRange extracts bits [start, start+n) of a bitset as the low n bits of a
// word, zero-filling positions outside the bitset (including negative starts,
// which the negative-orientation neighbour shifts produce at box edges).
// n must be at most 64.
func bitsRange(words []uint64, start, n int) uint64 {
	if n <= 0 {
		return 0
	}
	if start < 0 {
		if start+n <= 0 {
			return 0
		}
		return bitsRange(words, 0, start+n) << uint(-start)
	}
	if start >= len(words)*64 {
		return 0
	}
	w, off := start>>6, uint(start&63)
	out := words[w] >> off
	if off != 0 && w+1 < len(words) {
		out |= words[w+1] << (64 - off)
	}
	if n < 64 {
		out &= 1<<uint(n) - 1
	}
	return out
}

// Words returns the number of 64-bit words currently backing the field's
// bitset (a sizing hint for storage arenas).
func (f *Field) Words() int { return len(f.words) }

// BitWords exposes the field's bitset words (box-local row-major indexing,
// row width the box's X extent). The routing decision fast path probes
// neighbour bits in place through this view. Callers must not mutate the
// slice, and must treat it as stale after the next build into this field.
func (f *Field) BitWords() []uint64 { return f.words }

// PrepareStorage hands the field a words buffer to use for its next build:
// ReachabilityIDInto reuses the buffer as long as its capacity suffices. The
// routing caches carve these from arena chunks so cold builds don't allocate
// per field.
func (f *Field) PrepareStorage(words []uint64) { f.words = words[:0] }

// Covers reports whether p lies inside the field's box, i.e. whether the
// field can answer CanReach(p) affirmatively at all.
func (f *Field) Covers(p grid.Point) bool { return f.box.Contains(p) }

// Destination returns the destination the field was computed for.
func (f *Field) Destination() grid.Point { return f.d }

// Orientation returns the travel orientation of the field.
func (f *Field) Orientation() grid.Orientation { return f.orient }

// Box returns the box the field spans.
func (f *Field) Box() grid.Box { return f.box }

// Path returns one monotone path from s to d avoiding the obstacles the field
// was built with, or nil if none exists. The path includes both endpoints.
func Path(m *mesh.Mesh, avoid Avoid, s, d grid.Point) []grid.Point {
	f := Reachability(m, avoid, s, d)
	if !f.CanReach(s) {
		return nil
	}
	axes := m.Axes()
	path := []grid.Point{s}
	cur := s
	for cur != d {
		moved := false
		for _, a := range axes {
			if cur.Axis(a) == d.Axis(a) {
				continue
			}
			q := f.orient.Ahead(cur, a)
			if f.CanReach(q) {
				cur = q
				path = append(path, cur)
				moved = true
				break
			}
		}
		if !moved {
			// Unreachable by construction of the field; guard against bugs.
			return nil
		}
	}
	return path
}

// IsMinimalPath reports whether path is a valid minimal path from s to d over
// the mesh: consecutive hops are mesh neighbours, every hop strictly reduces
// the distance to d, no node is rejected by avoid, and the endpoints match.
func IsMinimalPath(m *mesh.Mesh, avoid Avoid, s, d grid.Point, path []grid.Point) bool {
	if len(path) == 0 || path[0] != s || path[len(path)-1] != d {
		return false
	}
	if len(path) != grid.Manhattan(s, d)+1 {
		return false
	}
	for i, p := range path {
		if !m.InBounds(p) || avoid(p) {
			return false
		}
		if i == 0 {
			continue
		}
		if grid.Manhattan(path[i-1], p) != 1 {
			return false
		}
		if grid.Manhattan(p, d) != grid.Manhattan(path[i-1], d)-1 {
			return false
		}
	}
	return true
}

// CountPaths returns the number of distinct monotone paths from s to d that
// avoid the obstacle set, saturating at the given cap (use cap <= 0 for no
// cap). It is used by the adaptivity experiment (E6).
func CountPaths(m *mesh.Mesh, avoid Avoid, s, d grid.Point, cap int) int {
	orient := grid.OrientationOf(s, d)
	box := grid.BoxOf(s, d)
	dims := [3]int{box.Max.X - box.Min.X + 1, box.Max.Y - box.Min.Y + 1, box.Max.Z - box.Min.Z + 1}
	counts := make([]int, dims[0]*dims[1]*dims[2])
	index := func(p grid.Point) int {
		return (p.X - box.Min.X) + dims[0]*((p.Y-box.Min.Y)+dims[1]*(p.Z-box.Min.Z))
	}
	sat := func(v int) int {
		if cap > 0 && v > cap {
			return cap
		}
		return v
	}
	axes := m.Axes()
	dc := orient.Canon(s, d)
	for cz := dc.Z; cz >= 0; cz-- {
		for cy := dc.Y; cy >= 0; cy-- {
			for cx := dc.X; cx >= 0; cx-- {
				c := grid.Point{X: cx, Y: cy, Z: cz}
				p := orient.Uncanon(s, c)
				if avoid(p) {
					continue
				}
				if p == d {
					counts[index(p)] = 1
					continue
				}
				total := 0
				for _, a := range axes {
					if c.Axis(a) >= dc.Axis(a) {
						continue
					}
					q := orient.Ahead(p, a)
					total = sat(total + counts[index(q)])
				}
				counts[index(p)] = total
			}
		}
	}
	return counts[index(s)]
}
