// Package minimal provides ground-truth computations about minimal (shortest,
// i.e. monotone) paths in a mesh: existence of a monotone path between two
// nodes that avoids an arbitrary obstacle set, extraction of one such path,
// and the full reachability field used by the oracle routing provider.
//
// A routing path from s to d is minimal exactly when every hop moves toward d,
// so minimal paths coincide with monotone lattice paths inside the box spanned
// by s and d. These routines are the reference the MCC model is validated
// against: by the paper's "ultimate fault region" property, a minimal path
// avoiding faults exists iff one avoiding all MCC (unsafe) nodes exists.
//
// # Fast path
//
// The reachability Field is a flat bitset over box-local indices. The sweep
// that fills it runs on dense node IDs — obstacle tests through AvoidID are a
// single array access for the callers that matter (labelings, fault bitsets,
// block tables) — and the per-hop query CanReachID goes from a node ID to a
// bit test without constructing a Point. ReachabilityIDInto rebuilds a field
// in place, reusing the previous bitset storage, which the routing providers'
// epoch caches lean on under fault churn.
package minimal

import (
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// Avoid reports whether a node must not be used by a path. Implementations
// typically close over a labelling, a fault set or a single fault component.
type Avoid func(grid.Point) bool

// AvoidID is the index-first form of Avoid: the node is named by its dense
// mesh ID. The reachability sweep and the routing providers use it so that an
// obstacle test is one array access instead of a Point→index conversion.
type AvoidID func(id int32) bool

// AvoidNone permits every node.
func AvoidNone(grid.Point) bool { return false }

// AvoidFaulty returns an Avoid that rejects exactly the faulty nodes of m.
func AvoidFaulty(m *mesh.Mesh) Avoid {
	return func(p grid.Point) bool { return m.IsFaulty(p) }
}

// AvoidFaultyID returns an AvoidID that rejects exactly the faulty nodes of m.
func AvoidFaultyID(m *mesh.Mesh) AvoidID {
	return func(id int32) bool { return m.FaultyAt(int(id)) }
}

// Exists reports whether a monotone path from s to d exists inside the mesh
// that avoids every node rejected by avoid. The endpoints themselves must be
// acceptable to avoid; otherwise Exists returns false (unless s == d and s is
// acceptable).
func Exists(m *mesh.Mesh, avoid Avoid, s, d grid.Point) bool {
	f := Reachability(m, avoid, s, d)
	return f.CanReach(s)
}

// Field is the monotone-reachability field toward a fixed destination within
// the box spanned by a source and destination: for every node p in the box,
// whether a monotone path p → d avoiding the obstacle set exists. Membership
// is stored as a flat bitset over box-local indices.
type Field struct {
	m      *mesh.Mesh
	orient grid.Orientation
	box    grid.Box
	d      grid.Point
	words  []uint64 // bitset over box-local indices
	dims   [3]int
}

// Reachability computes the monotone-reachability field toward d over the box
// spanned by s and d, treating avoid-rejected nodes as obstacles.
func Reachability(m *mesh.Mesh, avoid Avoid, s, d grid.Point) *Field {
	return ReachabilityIDInto(nil, m, func(id int32) bool { return avoid(m.Point(int(id))) }, s, d)
}

// ReachabilityID is Reachability with an ID-addressed obstacle set.
func ReachabilityID(m *mesh.Mesh, avoid AvoidID, s, d grid.Point) *Field {
	return ReachabilityIDInto(nil, m, avoid, s, d)
}

// ReachabilityIDInto computes the field like ReachabilityID but reuses f's
// struct and bitset storage when f is non-nil (growing it only if the new box
// needs more words). Callers that rebuild fields under fault churn — the
// routing providers' epoch caches — use it to keep rebuilds allocation-free.
// The returned pointer is f when f was non-nil.
func ReachabilityIDInto(f *Field, m *mesh.Mesh, avoid AvoidID, s, d grid.Point) *Field {
	orient := grid.OrientationOf(s, d)
	box := grid.BoxOf(s, d)
	if f == nil {
		f = &Field{}
	}
	f.m = m
	f.orient = orient
	f.box = box
	f.d = d
	f.dims = [3]int{
		box.Max.X - box.Min.X + 1,
		box.Max.Y - box.Min.Y + 1,
		box.Max.Z - box.Min.Z + 1,
	}
	nbits := f.dims[0] * f.dims[1] * f.dims[2]
	nwords := (nbits + 63) / 64
	if cap(f.words) < nwords {
		f.words = make([]uint64, nwords)
	} else {
		f.words = f.words[:nwords]
		for i := range f.words {
			f.words[i] = 0
		}
	}

	dims := m.Dims()
	// Mesh-ID delta of one forward X step, and the box-local index deltas of a
	// forward step per axis. Forward on an axis moves the coordinate by the
	// orientation sign, so the deltas carry that sign. Only the X deltas are
	// stepped incrementally; row starts recompute from coordinates.
	meshDX := orient.SX
	locDX := orient.SX
	locDY := orient.SY * f.dims[0]
	locDZ := orient.SZ * f.dims[0] * f.dims[1]

	is2D := m.Is2D()
	// Process points in decreasing order of remaining distance to d, so each
	// node's forward neighbours are already resolved. Iterating the canonical
	// coordinates from the destination backwards achieves this.
	dc := orient.Canon(s, d) // componentwise ≥ 0
	for cz := dc.Z; cz >= 0; cz-- {
		for cy := dc.Y; cy >= 0; cy-- {
			// Mesh ID and box-local index at cx = cy-row start (canonical
			// (dc.X, cy, cz)); stepping cx down moves both by their X delta.
			p := orient.Uncanon(s, grid.Point{X: dc.X, Y: cy, Z: cz})
			id := p.X + dims.X*(p.Y+dims.Y*p.Z)
			loc := (p.X - box.Min.X) + f.dims[0]*((p.Y-box.Min.Y)+f.dims[1]*(p.Z-box.Min.Z))
			for cx := dc.X; cx >= 0; cx, id, loc = cx-1, id-meshDX, loc-locDX {
				if avoid(int32(id)) {
					continue
				}
				if cx == dc.X && cy == dc.Y && cz == dc.Z {
					// p == d: the destination reaches itself.
					f.words[loc>>6] |= 1 << uint(loc&63)
					continue
				}
				ok := false
				if cx < dc.X {
					q := loc + locDX
					ok = f.words[q>>6]&(1<<uint(q&63)) != 0
				}
				if !ok && cy < dc.Y {
					q := loc + locDY
					ok = f.words[q>>6]&(1<<uint(q&63)) != 0
				}
				if !ok && !is2D && cz < dc.Z {
					q := loc + locDZ
					ok = f.words[q>>6]&(1<<uint(q&63)) != 0
				}
				if ok {
					f.words[loc>>6] |= 1 << uint(loc&63)
				}
			}
		}
	}
	return f
}

func (f *Field) index(p grid.Point) int {
	x := p.X - f.box.Min.X
	y := p.Y - f.box.Min.Y
	z := p.Z - f.box.Min.Z
	return x + f.dims[0]*(y+f.dims[1]*z)
}

func (f *Field) at(p grid.Point) bool {
	if !f.box.Contains(p) {
		return false
	}
	i := f.index(p)
	return f.words[i>>6]&(1<<uint(i&63)) != 0
}

// CanReach reports whether a monotone path from p to the field's destination
// exists. Points outside the field's box cannot be on any minimal path and
// report false.
func (f *Field) CanReach(p grid.Point) bool { return f.at(p) }

// CanReachID is CanReach addressed by dense node ID, for callers that hold
// IDs rather than Points. (The routing providers' per-hop path holds the
// Point already and goes through Covers + CanReachCovered instead.)
func (f *Field) CanReachID(id int32) bool {
	return f.at(f.m.Point(int(id)))
}

// CanReachCovered is CanReach without the box check: the caller must have
// established Covers(p). The routing providers' caches verify coverage once
// per lookup and then skip re-verifying it per bit test.
func (f *Field) CanReachCovered(p grid.Point) bool {
	i := f.index(p)
	return f.words[i>>6]&(1<<uint(i&63)) != 0
}

// Words returns the number of 64-bit words currently backing the field's
// bitset (a sizing hint for storage arenas).
func (f *Field) Words() int { return len(f.words) }

// PrepareStorage hands the field a words buffer to use for its next build:
// ReachabilityIDInto reuses the buffer as long as its capacity suffices. The
// routing caches carve these from arena chunks so cold builds don't allocate
// per field.
func (f *Field) PrepareStorage(words []uint64) { f.words = words[:0] }

// Covers reports whether p lies inside the field's box, i.e. whether the
// field can answer CanReach(p) affirmatively at all.
func (f *Field) Covers(p grid.Point) bool { return f.box.Contains(p) }

// Destination returns the destination the field was computed for.
func (f *Field) Destination() grid.Point { return f.d }

// Orientation returns the travel orientation of the field.
func (f *Field) Orientation() grid.Orientation { return f.orient }

// Box returns the box the field spans.
func (f *Field) Box() grid.Box { return f.box }

// Path returns one monotone path from s to d avoiding the obstacles the field
// was built with, or nil if none exists. The path includes both endpoints.
func Path(m *mesh.Mesh, avoid Avoid, s, d grid.Point) []grid.Point {
	f := Reachability(m, avoid, s, d)
	if !f.CanReach(s) {
		return nil
	}
	axes := m.Axes()
	path := []grid.Point{s}
	cur := s
	for cur != d {
		moved := false
		for _, a := range axes {
			if cur.Axis(a) == d.Axis(a) {
				continue
			}
			q := f.orient.Ahead(cur, a)
			if f.CanReach(q) {
				cur = q
				path = append(path, cur)
				moved = true
				break
			}
		}
		if !moved {
			// Unreachable by construction of the field; guard against bugs.
			return nil
		}
	}
	return path
}

// IsMinimalPath reports whether path is a valid minimal path from s to d over
// the mesh: consecutive hops are mesh neighbours, every hop strictly reduces
// the distance to d, no node is rejected by avoid, and the endpoints match.
func IsMinimalPath(m *mesh.Mesh, avoid Avoid, s, d grid.Point, path []grid.Point) bool {
	if len(path) == 0 || path[0] != s || path[len(path)-1] != d {
		return false
	}
	if len(path) != grid.Manhattan(s, d)+1 {
		return false
	}
	for i, p := range path {
		if !m.InBounds(p) || avoid(p) {
			return false
		}
		if i == 0 {
			continue
		}
		if grid.Manhattan(path[i-1], p) != 1 {
			return false
		}
		if grid.Manhattan(p, d) != grid.Manhattan(path[i-1], d)-1 {
			return false
		}
	}
	return true
}

// CountPaths returns the number of distinct monotone paths from s to d that
// avoid the obstacle set, saturating at the given cap (use cap <= 0 for no
// cap). It is used by the adaptivity experiment (E6).
func CountPaths(m *mesh.Mesh, avoid Avoid, s, d grid.Point, cap int) int {
	orient := grid.OrientationOf(s, d)
	box := grid.BoxOf(s, d)
	dims := [3]int{box.Max.X - box.Min.X + 1, box.Max.Y - box.Min.Y + 1, box.Max.Z - box.Min.Z + 1}
	counts := make([]int, dims[0]*dims[1]*dims[2])
	index := func(p grid.Point) int {
		return (p.X - box.Min.X) + dims[0]*((p.Y-box.Min.Y)+dims[1]*(p.Z-box.Min.Z))
	}
	sat := func(v int) int {
		if cap > 0 && v > cap {
			return cap
		}
		return v
	}
	axes := m.Axes()
	dc := orient.Canon(s, d)
	for cz := dc.Z; cz >= 0; cz-- {
		for cy := dc.Y; cy >= 0; cy-- {
			for cx := dc.X; cx >= 0; cx-- {
				c := grid.Point{X: cx, Y: cy, Z: cz}
				p := orient.Uncanon(s, c)
				if avoid(p) {
					continue
				}
				if p == d {
					counts[index(p)] = 1
					continue
				}
				total := 0
				for _, a := range axes {
					if c.Axis(a) >= dc.Axis(a) {
						continue
					}
					q := orient.Ahead(p, a)
					total = sat(total + counts[index(q)])
				}
				counts[index(p)] = total
			}
		}
	}
	return counts[index(s)]
}
