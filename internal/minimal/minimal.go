// Package minimal provides ground-truth computations about minimal (shortest,
// i.e. monotone) paths in a mesh: existence of a monotone path between two
// nodes that avoids an arbitrary obstacle set, extraction of one such path,
// and the full reachability field used by the oracle routing provider.
//
// A routing path from s to d is minimal exactly when every hop moves toward d,
// so minimal paths coincide with monotone lattice paths inside the box spanned
// by s and d. These routines are the reference the MCC model is validated
// against: by the paper's "ultimate fault region" property, a minimal path
// avoiding faults exists iff one avoiding all MCC (unsafe) nodes exists.
package minimal

import (
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// Avoid reports whether a node must not be used by a path. Implementations
// typically close over a labelling, a fault set or a single fault component.
type Avoid func(grid.Point) bool

// AvoidNone permits every node.
func AvoidNone(grid.Point) bool { return false }

// AvoidFaulty returns an Avoid that rejects exactly the faulty nodes of m.
func AvoidFaulty(m *mesh.Mesh) Avoid {
	return func(p grid.Point) bool { return m.IsFaulty(p) }
}

// Exists reports whether a monotone path from s to d exists inside the mesh
// that avoids every node rejected by avoid. The endpoints themselves must be
// acceptable to avoid; otherwise Exists returns false (unless s == d and s is
// acceptable).
func Exists(m *mesh.Mesh, avoid Avoid, s, d grid.Point) bool {
	f := Reachability(m, avoid, s, d)
	return f.CanReach(s)
}

// Field is the monotone-reachability field toward a fixed destination within
// the box spanned by a source and destination: for every node p in the box,
// whether a monotone path p → d avoiding the obstacle set exists.
type Field struct {
	m      *mesh.Mesh
	orient grid.Orientation
	box    grid.Box
	d      grid.Point
	reach  []bool
	dims   [3]int
}

// Reachability computes the monotone-reachability field toward d over the box
// spanned by s and d, treating avoid-rejected nodes as obstacles.
func Reachability(m *mesh.Mesh, avoid Avoid, s, d grid.Point) *Field {
	orient := grid.OrientationOf(s, d)
	box := grid.BoxOf(s, d)
	f := &Field{
		m:      m,
		orient: orient,
		box:    box,
		d:      d,
		dims: [3]int{
			box.Max.X - box.Min.X + 1,
			box.Max.Y - box.Min.Y + 1,
			box.Max.Z - box.Min.Z + 1,
		},
	}
	f.reach = make([]bool, f.dims[0]*f.dims[1]*f.dims[2])

	axes := m.Axes()
	// Process points in decreasing order of remaining distance to d, so each
	// node's forward neighbours are already resolved. Iterating the canonical
	// coordinates from the destination backwards achieves this.
	dc := orient.Canon(s, d) // componentwise ≥ 0
	for cz := dc.Z; cz >= 0; cz-- {
		for cy := dc.Y; cy >= 0; cy-- {
			for cx := dc.X; cx >= 0; cx-- {
				c := grid.Point{X: cx, Y: cy, Z: cz}
				p := orient.Uncanon(s, c)
				if avoid(p) {
					continue
				}
				if p == d {
					f.set(p, true)
					continue
				}
				ok := false
				for _, a := range axes {
					if c.Axis(a) >= dc.Axis(a) {
						continue // already aligned with d on this axis
					}
					q := orient.Ahead(p, a)
					if f.at(q) {
						ok = true
						break
					}
				}
				f.set(p, ok)
			}
		}
	}
	return f
}

func (f *Field) index(p grid.Point) int {
	x := p.X - f.box.Min.X
	y := p.Y - f.box.Min.Y
	z := p.Z - f.box.Min.Z
	return x + f.dims[0]*(y+f.dims[1]*z)
}

func (f *Field) at(p grid.Point) bool {
	if !f.box.Contains(p) {
		return false
	}
	return f.reach[f.index(p)]
}

func (f *Field) set(p grid.Point, v bool) { f.reach[f.index(p)] = v }

// CanReach reports whether a monotone path from p to the field's destination
// exists. Points outside the field's box cannot be on any minimal path and
// report false.
func (f *Field) CanReach(p grid.Point) bool { return f.at(p) }

// Destination returns the destination the field was computed for.
func (f *Field) Destination() grid.Point { return f.d }

// Orientation returns the travel orientation of the field.
func (f *Field) Orientation() grid.Orientation { return f.orient }

// Path returns one monotone path from s to d avoiding the obstacles the field
// was built with, or nil if none exists. The path includes both endpoints.
func Path(m *mesh.Mesh, avoid Avoid, s, d grid.Point) []grid.Point {
	f := Reachability(m, avoid, s, d)
	if !f.CanReach(s) {
		return nil
	}
	axes := m.Axes()
	path := []grid.Point{s}
	cur := s
	for cur != d {
		moved := false
		for _, a := range axes {
			if cur.Axis(a) == d.Axis(a) {
				continue
			}
			q := f.orient.Ahead(cur, a)
			if f.CanReach(q) {
				cur = q
				path = append(path, cur)
				moved = true
				break
			}
		}
		if !moved {
			// Unreachable by construction of the field; guard against bugs.
			return nil
		}
	}
	return path
}

// IsMinimalPath reports whether path is a valid minimal path from s to d over
// the mesh: consecutive hops are mesh neighbours, every hop strictly reduces
// the distance to d, no node is rejected by avoid, and the endpoints match.
func IsMinimalPath(m *mesh.Mesh, avoid Avoid, s, d grid.Point, path []grid.Point) bool {
	if len(path) == 0 || path[0] != s || path[len(path)-1] != d {
		return false
	}
	if len(path) != grid.Manhattan(s, d)+1 {
		return false
	}
	for i, p := range path {
		if !m.InBounds(p) || avoid(p) {
			return false
		}
		if i == 0 {
			continue
		}
		if grid.Manhattan(path[i-1], p) != 1 {
			return false
		}
		if grid.Manhattan(p, d) != grid.Manhattan(path[i-1], d)-1 {
			return false
		}
	}
	return true
}

// CountPaths returns the number of distinct monotone paths from s to d that
// avoid the obstacle set, saturating at the given cap (use cap <= 0 for no
// cap). It is used by the adaptivity experiment (E6).
func CountPaths(m *mesh.Mesh, avoid Avoid, s, d grid.Point, cap int) int {
	orient := grid.OrientationOf(s, d)
	box := grid.BoxOf(s, d)
	dims := [3]int{box.Max.X - box.Min.X + 1, box.Max.Y - box.Min.Y + 1, box.Max.Z - box.Min.Z + 1}
	counts := make([]int, dims[0]*dims[1]*dims[2])
	index := func(p grid.Point) int {
		return (p.X - box.Min.X) + dims[0]*((p.Y-box.Min.Y)+dims[1]*(p.Z-box.Min.Z))
	}
	sat := func(v int) int {
		if cap > 0 && v > cap {
			return cap
		}
		return v
	}
	axes := m.Axes()
	dc := orient.Canon(s, d)
	for cz := dc.Z; cz >= 0; cz-- {
		for cy := dc.Y; cy >= 0; cy-- {
			for cx := dc.X; cx >= 0; cx-- {
				c := grid.Point{X: cx, Y: cy, Z: cz}
				p := orient.Uncanon(s, c)
				if avoid(p) {
					continue
				}
				if p == d {
					counts[index(p)] = 1
					continue
				}
				total := 0
				for _, a := range axes {
					if c.Axis(a) >= dc.Axis(a) {
						continue
					}
					q := orient.Ahead(p, a)
					total = sat(total + counts[index(q)])
				}
				counts[index(p)] = total
			}
		}
	}
	return counts[index(s)]
}
