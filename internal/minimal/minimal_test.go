package minimal

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

func TestExistsFaultFree(t *testing.T) {
	m := mesh.New3D(6, 6, 6)
	if !Exists(m, AvoidNone, grid.Point{}, grid.Point{X: 5, Y: 5, Z: 5}) {
		t.Error("fault-free mesh must always have a minimal path")
	}
	if !Exists(m, AvoidNone, grid.Point{X: 5, Y: 0, Z: 3}, grid.Point{X: 0, Y: 5, Z: 0}) {
		t.Error("minimal path must exist for mixed orientations too")
	}
}

func TestExistsSameNode(t *testing.T) {
	m := mesh.New2D(4, 4)
	p := grid.Point{X: 2, Y: 2}
	if !Exists(m, AvoidNone, p, p) {
		t.Error("a node can always reach itself")
	}
	if Exists(m, func(q grid.Point) bool { return q == p }, p, p) {
		t.Error("an avoided endpoint is unreachable")
	}
}

func TestExistsBlockedWall(t *testing.T) {
	m := mesh.New2D(6, 6)
	// A full anti-diagonal wall inside the routing box blocks every monotone
	// path from (0,0) to (4,4).
	for i := 0; i <= 4; i++ {
		m.SetFaulty(grid.Point{X: i, Y: 4 - i}, true)
	}
	if Exists(m, AvoidFaulty(m), grid.Point{}, grid.Point{X: 4, Y: 4}) {
		t.Error("anti-diagonal wall should block every monotone path")
	}
	// The wall also seals off destinations on the source side of its tips:
	// (5,0) sits behind the faulty (4,0) along y = 0.
	if Exists(m, AvoidFaulty(m), grid.Point{}, grid.Point{X: 5, Y: 0}) {
		t.Error("(5,0) must be unreachable: the wall reaches the y=0 row")
	}
	// The wall spans the entire anti-diagonal x+y = 4, so every destination
	// beyond it is blocked too.
	if Exists(m, AvoidFaulty(m), grid.Point{}, grid.Point{X: 5, Y: 5}) {
		t.Error("(5,5) must be blocked: the wall spans the full anti-diagonal")
	}
	// Destinations on the near side of the wall stay reachable.
	if !Exists(m, AvoidFaulty(m), grid.Point{}, grid.Point{X: 1, Y: 2}) {
		t.Error("(1,2) lies before the wall and must be reachable")
	}
}

func TestPathProperties(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		m := mesh.New3D(7, 7, 7)
		for i := 0; i < 15; i++ {
			m.SetFaulty(m.Point(r.Intn(m.NodeCount())), true)
		}
		s := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		if m.IsFaulty(s) || m.IsFaulty(d) {
			continue
		}
		avoid := AvoidFaulty(m)
		path := Path(m, avoid, s, d)
		if path == nil {
			if Exists(m, avoid, s, d) {
				t.Fatalf("Exists true but Path nil for %v -> %v", s, d)
			}
			continue
		}
		if !IsMinimalPath(m, avoid, s, d, path) {
			t.Fatalf("Path returned an invalid minimal path %v for %v -> %v", path, s, d)
		}
	}
}

func TestIsMinimalPathRejects(t *testing.T) {
	m := mesh.New2D(5, 5)
	s, d := grid.Point{}, grid.Point{X: 2, Y: 1}
	good := []grid.Point{{}, {X: 1}, {X: 2}, {X: 2, Y: 1}}
	if !IsMinimalPath(m, AvoidNone, s, d, good) {
		t.Error("valid path rejected")
	}
	detour := []grid.Point{{}, {Y: 1}, {}, {X: 1}, {X: 2}, {X: 2, Y: 1}}
	if IsMinimalPath(m, AvoidNone, s, d, detour) {
		t.Error("detour accepted as minimal")
	}
	gap := []grid.Point{{}, {X: 2}, {X: 2, Y: 1}}
	if IsMinimalPath(m, AvoidNone, s, d, gap) {
		t.Error("path with a 2-hop jump accepted")
	}
	wrongEnd := []grid.Point{{}, {X: 1}, {X: 1, Y: 1}}
	if IsMinimalPath(m, AvoidNone, s, d, wrongEnd) {
		t.Error("path ending elsewhere accepted")
	}
	if IsMinimalPath(m, AvoidNone, s, d, nil) {
		t.Error("empty path accepted")
	}
}

func TestReachabilityMatchesExists(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		m := mesh.New2D(9, 9)
		for i := 0; i < 12; i++ {
			m.SetFaulty(m.Point(r.Intn(m.NodeCount())), true)
		}
		s := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		f := Reachability(m, AvoidFaulty(m), s, d)
		// Every point the field claims reachable must indeed have a path.
		grid.BoxOf(s, d).ForEach(func(p grid.Point) {
			if f.CanReach(p) != Exists(m, AvoidFaulty(m), p, d) {
				t.Fatalf("field and Exists disagree at %v (s=%v d=%v)", p, s, d)
			}
		})
	}
}

func TestCountPathsFaultFree(t *testing.T) {
	m := mesh.New2D(6, 6)
	// Number of monotone paths in a fault-free grid is the binomial
	// coefficient C(dx+dy, dx).
	got := CountPaths(m, AvoidNone, grid.Point{}, grid.Point{X: 3, Y: 2}, 0)
	if got != 10 {
		t.Errorf("CountPaths = %d, want 10", got)
	}
	if CountPaths(m, AvoidNone, grid.Point{}, grid.Point{X: 0, Y: 0}, 0) != 1 {
		t.Error("trivial path count should be 1")
	}
}

func TestCountPathsBlocked(t *testing.T) {
	m := mesh.New2D(6, 6)
	for i := 0; i <= 3; i++ {
		m.SetFaulty(grid.Point{X: i, Y: 3 - i}, true)
	}
	if CountPaths(m, AvoidFaulty(m), grid.Point{}, grid.Point{X: 3, Y: 3}, 0) != 0 {
		t.Error("blocked pair should have zero paths")
	}
}

func TestCountPathsCap(t *testing.T) {
	m := mesh.New2D(12, 12)
	got := CountPaths(m, AvoidNone, grid.Point{}, grid.Point{X: 10, Y: 10}, 1000)
	if got != 1000 {
		t.Errorf("capped count = %d, want saturation at 1000", got)
	}
}

func TestExistsRespectsAvoidOnEndpoints(t *testing.T) {
	m := mesh.New2D(4, 4)
	s, d := grid.Point{}, grid.Point{X: 3, Y: 3}
	if Exists(m, func(p grid.Point) bool { return p == d }, s, d) {
		t.Error("avoided destination must be unreachable")
	}
	if Exists(m, func(p grid.Point) bool { return p == s }, s, d) {
		t.Error("avoided source must not start a path")
	}
}

func TestPathMixedOrientation(t *testing.T) {
	m := mesh.New3D(6, 6, 6)
	s := grid.Point{X: 5, Y: 0, Z: 5}
	d := grid.Point{X: 0, Y: 5, Z: 0}
	path := Path(m, AvoidNone, s, d)
	if !IsMinimalPath(m, AvoidNone, s, d, path) {
		t.Fatal("mixed-orientation path invalid")
	}
}
