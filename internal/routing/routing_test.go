package routing

import (
	"errors"
	"testing"

	"mccmesh/internal/block"
	"mccmesh/internal/feasibility"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/meshtest"
	"mccmesh/internal/minimal"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
)

func mccProvider(m *mesh.Mesh, s, d grid.Point) (*MCC, *region.ComponentSet) {
	l := labeling.Compute(m, grid.OrientationOf(s, d))
	cs := region.FindMCCs(l)
	return &MCC{Set: cs}, cs
}

func TestRouteFaultFree(t *testing.T) {
	m := mesh.New3D(6, 6, 6)
	s, d := grid.Point{}, grid.Point{X: 5, Y: 4, Z: 3}
	for _, policy := range []Policy{LargestOffsetFirst{}, DimensionOrder{}, Seeded{Seed: 1}} {
		p, _ := mccProvider(m, s, d)
		r := New(m, p, policy)
		tr := r.Route(s, d)
		if !tr.Succeeded() {
			t.Fatalf("policy %s: route failed: %v", policy.Name(), tr.Err)
		}
		if tr.Hops() != grid.Manhattan(s, d) {
			t.Fatalf("policy %s: path length %d, want %d", policy.Name(), tr.Hops(), grid.Manhattan(s, d))
		}
		if !minimal.IsMinimalPath(m, minimal.AvoidFaulty(m), s, d, tr.Path) {
			t.Fatalf("policy %s: path is not a valid minimal path", policy.Name())
		}
	}
}

func TestCandidateDirsMatchesRouteDecisions(t *testing.T) {
	m := mesh.New3D(6, 6, 6)
	m.AddFaults(grid.Point{X: 1, Y: 0, Z: 0}, grid.Point{X: 2, Y: 1, Z: 1})
	s, d := grid.Point{}, grid.Point{X: 5, Y: 5, Z: 5}
	orient := grid.OrientationOf(s, d)
	p, _ := mccProvider(m, s, d)
	tr := New(m, p, nil).Route(s, d)
	if !tr.Succeeded() {
		t.Fatalf("route failed: %v", tr.Err)
	}
	// Replaying CandidateDirs along the delivered path must reproduce the
	// candidate counts the Router recorded.
	replay := &MCC{Set: p.Set}
	for i, u := range tr.Path[:len(tr.Path)-1] {
		dirs := CandidateDirs(m, replay, orient, u, d, nil)
		if len(dirs) != tr.Candidates[i] {
			t.Fatalf("hop %d at %v: CandidateDirs found %d candidates, trace recorded %d", i, u, len(dirs), tr.Candidates[i])
		}
	}
	// At the destination there is nothing left to do.
	if dirs := CandidateDirs(m, replay, orient, d, d, nil); len(dirs) != 0 {
		t.Errorf("CandidateDirs at the destination = %v, want none", dirs)
	}
}

func TestInvalidateCachesDropsStaleFields(t *testing.T) {
	m := mesh.New3D(5, 5, 5)
	s, d := grid.Point{}, grid.Point{X: 4, Y: 4, Z: 4}
	o := &Oracle{Mesh: m}
	v := grid.Point{X: 1}
	if !o.Allowed(s, v, d) {
		t.Fatal("fault-free step should be allowed")
	}
	// Wall off the destination's approach through (1,0,0) region: make every
	// neighbour of v faulty except s so no minimal path through v survives.
	m.AddFaults(grid.Point{X: 2}, grid.Point{X: 1, Y: 1}, grid.Point{X: 1, Z: 1})
	// The stale cached field still says yes; stateless providers are immune.
	InvalidateCaches(o, LocalGreedy{})
	if o.Allowed(s, v, d) {
		t.Error("after invalidation the oracle must see the new faults")
	}
}

func TestRouteToSelf(t *testing.T) {
	m := mesh.New2D(4, 4)
	p, _ := mccProvider(m, grid.Point{X: 1, Y: 1}, grid.Point{X: 1, Y: 1})
	tr := New(m, p, nil).Route(grid.Point{X: 1, Y: 1}, grid.Point{X: 1, Y: 1})
	if !tr.Succeeded() || tr.Hops() != 0 {
		t.Error("routing to self should trivially succeed with zero hops")
	}
}

func TestRouteFaultyEndpoint(t *testing.T) {
	m := mesh.New2D(4, 4)
	m.AddFaults(grid.Point{X: 3, Y: 3})
	p, _ := mccProvider(m, grid.Point{}, grid.Point{X: 3, Y: 3})
	tr := New(m, p, nil).Route(grid.Point{}, grid.Point{X: 3, Y: 3})
	if !errors.Is(tr.Err, ErrEndpointFaulty) {
		t.Errorf("expected ErrEndpointFaulty, got %v", tr.Err)
	}
}

// TestMCCRoutingAlwaysMinimalWhenFeasible is invariant I6: whenever the
// feasibility check passes, the MCC-information routing delivers a minimal,
// fault-free path — for every selection policy.
func TestMCCRoutingAlwaysMinimalWhenFeasible(t *testing.T) {
	r := rng.New(99)
	policies := []Policy{LargestOffsetFirst{}, DimensionOrder{}, Seeded{Seed: 77}}
	routed := 0
	for trial := 0; trial < 120; trial++ {
		var m *mesh.Mesh
		if trial%2 == 0 {
			m = meshtest.Random2D(r, 10, 5+r.Intn(20))
		} else {
			m = meshtest.Random3D(r, 7, 5+r.Intn(40))
		}
		s, d, ok := meshtest.SafePair(r, m, 4)
		if !ok {
			continue
		}
		provider, cs := mccProvider(m, s, d)
		if !feasibility.Theorem(cs, s, d) {
			continue
		}
		routed++
		for _, policy := range policies {
			provider.cache.invalidate() // reset cache between policies
			tr := New(m, provider, policy).Route(s, d)
			if !tr.Succeeded() {
				t.Fatalf("trial %d policy %s: route failed despite feasibility: %v", trial, policy.Name(), tr.Err)
			}
			if !minimal.IsMinimalPath(m, minimal.AvoidFaulty(m), s, d, tr.Path) {
				t.Fatalf("trial %d policy %s: path not minimal/fault-free", trial, policy.Name())
			}
		}
	}
	if routed < 30 {
		t.Fatalf("only %d feasible pairs routed; generator too restrictive", routed)
	}
}

// TestOracleNeverWorseThanMCC: the oracle succeeds exactly when the MCC model
// does (ultimacy), and both match ground-truth feasibility.
func TestOracleMatchesMCC(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 60; trial++ {
		m := meshtest.Random3D(r, 7, 10+r.Intn(40))
		s, d, ok := meshtest.SafePair(r, m, 4)
		if !ok {
			continue
		}
		provider, cs := mccProvider(m, s, d)
		feasible := feasibility.GroundTruth(cs, s, d)

		oracleTrace := New(m, &Oracle{Mesh: m}, nil).Route(s, d)
		mccTrace := New(m, provider, nil).Route(s, d)
		if oracleTrace.Succeeded() != feasible {
			t.Fatalf("trial %d: oracle success=%v, feasible=%v", trial, oracleTrace.Succeeded(), feasible)
		}
		if mccTrace.Succeeded() != feasible {
			t.Fatalf("trial %d: mcc success=%v, feasible=%v", trial, mccTrace.Succeeded(), feasible)
		}
	}
}

// TestBlockProviderNeverBeatsMCC: the RFB model's success implies the MCC
// model's success (its fault regions are supersets), never the other way
// around.
func TestBlockProviderNeverBeatsMCC(t *testing.T) {
	r := rng.New(11)
	blockWins := 0
	for trial := 0; trial < 60; trial++ {
		m := meshtest.Random3D(r, 7, 10+r.Intn(40))
		s, d, ok := meshtest.SafePair(r, m, 4)
		if !ok {
			continue
		}
		provider, cs := mccProvider(m, s, d)
		regions := block.Build(m, block.BoundingBox)
		if regions.Contains(s) || regions.Contains(d) {
			continue // the block model cannot even represent this pair
		}
		blockTrace := New(m, &Block{Regions: regions}, nil).Route(s, d)
		mccTrace := New(m, provider, nil).Route(s, d)
		_ = cs
		if blockTrace.Succeeded() && !mccTrace.Succeeded() {
			blockWins++
		}
	}
	if blockWins != 0 {
		t.Errorf("the RFB provider succeeded where the MCC provider failed in %d trials", blockWins)
	}
}

// TestLocalGreedyCanFail demonstrates why fault information matters: the
// purely local router walks into a dead end that the MCC router avoids.
func TestLocalGreedyCanFail(t *testing.T) {
	m := mesh.New2D(10, 10)
	// A concave pocket around (4,4): entering it forces a detour.
	m.AddFaults(
		grid.Point{X: 5, Y: 4}, grid.Point{X: 5, Y: 5}, grid.Point{X: 4, Y: 5},
	)
	s, d := grid.Point{X: 4, Y: 0}, grid.Point{X: 6, Y: 8}
	// Largest-offset routing climbs column 4 straight into the pocket at
	// (4,4), where both preferred neighbours are faulty.
	trGreedy := New(m, LocalGreedy{}, LargestOffsetFirst{}).Route(s, d)
	provider, _ := mccProvider(m, s, d)
	trMCC := New(m, provider, LargestOffsetFirst{}).Route(s, d)
	if !trMCC.Succeeded() {
		t.Fatalf("MCC routing should succeed: %v", trMCC.Err)
	}
	if !minimal.IsMinimalPath(m, minimal.AvoidFaulty(m), s, d, trMCC.Path) {
		t.Fatal("MCC path is not minimal")
	}
	if trGreedy.Succeeded() {
		t.Fatal("local greedy routing should dead-end in the pocket")
	}
	if !errors.Is(trGreedy.Err, ErrNoCandidate) {
		t.Errorf("expected ErrNoCandidate, got %v", trGreedy.Err)
	}
}

func TestLabeledProviderAvoidsUnsafe(t *testing.T) {
	m := mesh.New2D(10, 10)
	m.AddFaults(grid.Point{X: 3, Y: 4}, grid.Point{X: 4, Y: 3})
	s, d := grid.Point{}, grid.Point{X: 8, Y: 8}
	l := labeling.Compute(m, grid.OrientationOf(s, d))
	tr := New(m, &Labeled{Labeling: l}, nil).Route(s, d)
	if !tr.Succeeded() {
		t.Fatalf("route failed: %v", tr.Err)
	}
	for _, p := range tr.Path {
		if l.Unsafe(p) {
			t.Errorf("labels-only route visited unsafe node %v", p)
		}
	}
}

func TestRecordsProviderWithFullInformation(t *testing.T) {
	// When every node holds every record, the Records provider behaves like
	// the global MCC provider.
	r := rng.New(21)
	for trial := 0; trial < 30; trial++ {
		m := meshtest.Random2D(r, 10, 5+r.Intn(18))
		s, d, ok := meshtest.SafePair(r, m, 4)
		if !ok {
			continue
		}
		l := labeling.Compute(m, grid.OrientationOf(s, d))
		cs := region.FindMCCs(l)
		if !feasibility.Theorem(cs, s, d) {
			continue
		}
		perNode := make(map[int][]int, m.NodeCount())
		all := make([]int, len(cs.Components))
		for i := range cs.Components {
			all[i] = i
		}
		for i := 0; i < m.NodeCount(); i++ {
			perNode[i] = all
		}
		rec := &Records{Set: cs, PerNode: perNode, CarryAlong: true}
		tr := New(m, rec, nil).Route(s, d)
		if !tr.Succeeded() {
			t.Fatalf("trial %d: records routing failed: %v", trial, tr.Err)
		}
		if !minimal.IsMinimalPath(m, minimal.AvoidFaulty(m), s, d, tr.Path) {
			t.Fatalf("trial %d: records path not minimal", trial)
		}
	}
}

func TestTraceAccounting(t *testing.T) {
	m := mesh.New2D(6, 6)
	p, _ := mccProvider(m, grid.Point{}, grid.Point{X: 3, Y: 2})
	tr := New(m, p, nil).Route(grid.Point{}, grid.Point{X: 3, Y: 2})
	if len(tr.Candidates) != tr.Hops() {
		t.Errorf("candidate counts (%d) should match hops (%d)", len(tr.Candidates), tr.Hops())
	}
	if tr.MinAdaptivity() < 1 {
		t.Error("fault-free route should always have at least one candidate")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{LargestOffsetFirst{}, DimensionOrder{}, Seeded{}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
	for _, pr := range []Provider{&Oracle{}, &MCC{}, &Records{}, LocalGreedy{}, &Labeled{}} {
		if pr.Name() == "" {
			t.Errorf("%T has empty name", pr)
		}
	}
}

func TestSeededPolicyDeterministic(t *testing.T) {
	p := Seeded{Seed: 5}
	dirs := []grid.Direction{grid.XPos, grid.YPos, grid.ZPos}
	a := p.Pick(grid.Point{X: 1}, grid.Point{X: 5, Y: 5, Z: 5}, dirs)
	b := p.Pick(grid.Point{X: 1}, grid.Point{X: 5, Y: 5, Z: 5}, dirs)
	if a != b {
		t.Error("seeded policy must be deterministic")
	}
	if a < 0 || a >= len(dirs) {
		t.Error("pick out of range")
	}
}
