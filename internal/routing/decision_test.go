package routing_test

// Parity tests for the packed-decision fast path: for every built-in
// DecisionProvider, CandidateMaskID must agree bit for bit with the reference
// decision assembled from per-direction AllowedID consultations — on fresh
// fault sets, after incremental fault additions and after repairs, at every
// point of the epoch lifecycle (cold slot, warm slot, stale slot).

import (
	"fmt"
	"math/bits"
	"testing"

	"mccmesh/internal/block"
	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
)

// referenceMask assembles the decision mask the slow way: the healthy forward
// directions from u toward d, filtered through per-direction AllowedID — the
// exact set CandidateDirsID would collect.
func referenceMask(m *mesh.Mesh, prov routing.IDProvider, u int32, uPt grid.Point, d int32, dPt grid.Point) uint8 {
	var mk uint8
	for _, a := range m.Axes() {
		delta := dPt.Axis(a) - uPt.Axis(a)
		if delta == 0 {
			continue
		}
		dir := grid.DirectionOf(a, grid.Sign(delta))
		v := m.NeighborID(u, dir)
		if v == mesh.NoNeighbor || m.FaultyAt(int(v)) {
			continue
		}
		if prov.AllowedID(u, v, d) {
			mk |= 1 << uint(dir)
		}
	}
	return mk
}

// checkParity compares CandidateMaskID against referenceMask over count
// random (u, d) pairs of healthy nodes. Each pair is checked twice in a row,
// so both the miss path (cold or stale slot) and the immediately-warm hit
// path of the caching providers are exercised on the same query.
func checkParity(t *testing.T, m *mesh.Mesh, prov routing.DecisionProvider, r *rng.Rand, count int, stage string) {
	t.Helper()
	for n := 0; n < count; n++ {
		u := int32(r.Intn(m.NodeCount()))
		d := int32(r.Intn(m.NodeCount()))
		if u == d || m.FaultyAt(int(u)) || m.FaultyAt(int(d)) {
			continue
		}
		uPt, dPt := m.Point(int(u)), m.Point(int(d))
		want := referenceMask(m, prov, u, uPt, d, dPt)
		for pass := 0; pass < 2; pass++ {
			got := prov.CandidateMaskID(m, u, uPt, d, dPt)
			if got != want {
				t.Fatalf("%s/%s pass %d: CandidateMaskID(%v -> %v) = %06b, per-direction AllowedID gives %06b",
					stage, prov.Name(), pass, uPt, dPt, bits.Reverse8(got)>>2, bits.Reverse8(want)>>2)
			}
		}
	}
}

// TestDecisionMaskParity runs every built-in DecisionProvider through fresh,
// post-addition and post-repair fault states over several random seeds. The
// caching providers take the same incremental update path the traffic engine
// uses (AddFaults/RemoveFaults + Refresh + InvalidateCache); the Block
// provider, whose snapshot has no in-place refresh, is rebuilt wholesale.
func TestDecisionMaskParity(t *testing.T) {
	for _, seed := range []uint64{2, 19, 101} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			m := mesh.NewCube(10)
			placed := fault.Uniform{Count: 60}.Inject(m, rng.New(seed))
			lab := labeling.Compute(m, grid.PositiveOrientation)
			set := region.FindMCCs(lab)

			oracle := &routing.Oracle{Mesh: m}
			mcc := &routing.MCC{Set: set}
			labeled := &routing.Labeled{Labeling: lab}
			cached := []routing.DecisionProvider{oracle, mcc}
			blockProvs := func() []routing.DecisionProvider {
				return []routing.DecisionProvider{
					&routing.Block{Regions: block.Build(m, block.BoundingBox)},
					&routing.Block{Regions: block.Build(m, block.ConvexityRule)},
				}
			}

			r := rng.New(seed * 7)
			stageAll := func(stage string, provs ...routing.DecisionProvider) {
				for _, p := range provs {
					checkParity(t, m, p, r, 300, stage)
				}
			}
			all := append([]routing.DecisionProvider{labeled, routing.LocalGreedy{}}, cached...)
			stageAll("fresh", append(all, blockProvs()...)...)

			// Incremental fault additions, one node at a time.
			for i := 0; i < 4; i++ {
				var p grid.Point
				for {
					idx := r.Intn(m.NodeCount())
					if !m.FaultyAt(idx) {
						p = m.Point(idx)
						break
					}
				}
				m.SetFaulty(p, true)
				placed = append(placed, p)
				lab.AddFaults([]grid.Point{p})
				set.Refresh()
				routing.InvalidateCaches(oracle, mcc)
			}
			stageAll("after-add", append(all, blockProvs()...)...)

			// Repair a batch through the removal path.
			repaired := placed[:len(placed)/2]
			m.RemoveFaults(repaired...)
			lab.RemoveFaults(repaired)
			set.Refresh()
			routing.InvalidateCaches(oracle, mcc)
			stageAll("after-repair", append(all, blockProvs()...)...)
		})
	}
}
