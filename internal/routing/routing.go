// Package routing implements the fully adaptive minimal routing engine of the
// paper (Algorithm 3 step 2 in 2-D, Algorithm 6 step 2 in 3-D) on top of
// pluggable fault-information providers.
//
// At every node the engine computes the preferred (forward) directions, asks
// the information provider which of them must be excluded — in the paper's
// terms, directions whose neighbour lies in the forbidden region of an MCC
// whose critical region contains the destination — and then applies a
// selection policy ("any fully adaptive and minimal routing process") to pick
// one of the remaining candidates.
//
// Providers range from the omniscient oracle, through the per-MCC model
// (the paper's contribution), the rectangular-faulty-block baselines, down to
// a purely local greedy router, so the experiments can compare them on equal
// footing.
package routing

import (
	"errors"
	"fmt"
	"math/bits"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// Provider supplies the fault information consulted at each routing step.
type Provider interface {
	// Allowed reports whether forwarding from u to its neighbour v is
	// permitted when routing toward d. v is always a preferred (forward)
	// neighbour of u.
	Allowed(u, v, d grid.Point) bool
	// Name identifies the provider in tables and traces.
	Name() string
}

// IDProvider is the index-first fast path of Provider: the same decision,
// addressed by dense mesh node IDs, with no Point construction or map lookup
// on the way. Every built-in provider except Records implements it; the
// traffic engine type-asserts once per provider and falls back to Allowed for
// third-party providers that don't.
type IDProvider interface {
	Provider
	// AllowedID is Allowed with u, v and d given as dense node IDs.
	AllowedID(u, v, d int32) bool
}

// DecisionProvider is the packed-decision fast path of IDProvider: one call
// answers the entire hop. The returned mask has bit i set exactly when
// grid.Direction(i) is an allowed candidate forwarding direction from u
// toward d — the same set CandidateDirsID collects from per-direction
// AllowedID consultations, folded into one byte.
//
// The field-cache providers (Oracle, MCC, Block) answer from the memoised
// reachability field of the destination: while the fault epoch is stable, a
// hop is one slot read plus at most three bit probes, with no per-direction
// interface calls. Stateless providers (LocalGreedy, Labeled) compute it on
// the fly, which
// still collapses the per-direction interface calls into one. Every built-in
// IDProvider implements it; the traffic engine type-asserts once per provider
// and falls back to CandidateDirsID for third-party providers that don't.
type DecisionProvider interface {
	IDProvider
	// CandidateMaskID returns the packed candidate-direction mask for a hop
	// from u toward d. m is the routing mesh (used by stateless providers for
	// the neighbour and fault tables; caching providers consult their own
	// snapshot's mesh). u/uPt and d/dPt name the same nodes in both
	// addressings, exactly as in CandidateDirsID.
	CandidateMaskID(m *mesh.Mesh, u int32, uPt grid.Point, d int32, dPt grid.Point) uint8
}

// AppendMaskDirs appends the directions set in mask to dst, in direction-enum
// order — the order CandidateDirsID produces (at most one direction per axis,
// axes in X, Y, Z order), so selection policies see identical candidate
// slices on either path.
func AppendMaskDirs(dst []grid.Direction, mask uint8) []grid.Direction {
	for mask != 0 {
		d := bits.TrailingZeros8(mask)
		mask &= mask - 1
		dst = append(dst, grid.Direction(d))
	}
	return dst
}

// healthyForwardMask packs the preferred (forward) directions from u toward d
// whose neighbour exists and is healthy — the provider-independent part of a
// hop decision. On the minimal paths the engine routes, the per-axis sign of
// d-u equals the packet orientation's sign wherever the axis is unresolved,
// so the mask needs no orientation input.
func healthyForwardMask(m *mesh.Mesh, u int32, uPt, dPt grid.Point) uint8 {
	var mk uint8
	for _, a := range m.Axes() {
		delta := dPt.Axis(a) - uPt.Axis(a)
		if delta == 0 {
			continue
		}
		dir := grid.DirectionOf(a, grid.Sign(delta))
		if v := m.NeighborID(u, dir); v != mesh.NoNeighbor && !m.FaultyAt(int(v)) {
			mk |= 1 << uint(dir)
		}
	}
	return mk
}

// Policy picks one direction among the allowed candidate directions.
type Policy interface {
	// Pick returns the index of the chosen candidate in dirs. dirs is never
	// empty.
	Pick(u, d grid.Point, dirs []grid.Direction) int
	// Name identifies the policy.
	Name() string
}

// Errors returned by Route.
var (
	// ErrNoCandidate is returned when every preferred direction is excluded —
	// the information model could not keep the route minimal.
	ErrNoCandidate = errors.New("routing: no candidate forwarding direction")
	// ErrEndpointFaulty is returned when the source or destination is faulty.
	ErrEndpointFaulty = errors.New("routing: source or destination is faulty")
	// ErrTooManyHops guards against livelock bugs.
	ErrTooManyHops = errors.New("routing: exceeded the minimal hop budget")
)

// Trace records one routing attempt.
type Trace struct {
	// Path is the sequence of visited nodes, starting at the source. On
	// failure it ends at the node where the route got stuck.
	Path []grid.Point
	// Candidates[i] is the number of allowed forwarding directions at hop i;
	// it measures the adaptivity left to the selection policy (experiment E6).
	Candidates []int
	// Err is nil on success.
	Err error
}

// Succeeded reports whether the attempt delivered the message minimally.
func (t *Trace) Succeeded() bool { return t.Err == nil }

// Hops returns the number of hops taken.
func (t *Trace) Hops() int {
	if len(t.Path) == 0 {
		return 0
	}
	return len(t.Path) - 1
}

// MinAdaptivity returns the smallest candidate count observed along the path,
// or 0 if the path is empty.
func (t *Trace) MinAdaptivity() int {
	if len(t.Candidates) == 0 {
		return 0
	}
	m := t.Candidates[0]
	for _, c := range t.Candidates[1:] {
		if c < m {
			m = c
		}
	}
	return m
}

// Router runs minimal adaptive routing over a mesh with a fixed provider and
// policy.
type Router struct {
	Mesh     *mesh.Mesh
	Provider Provider
	Policy   Policy
}

// New returns a Router. A nil policy defaults to LargestOffsetFirst.
func New(m *mesh.Mesh, p Provider, policy Policy) *Router {
	if policy == nil {
		policy = LargestOffsetFirst{}
	}
	return &Router{Mesh: m, Provider: p, Policy: policy}
}

// Route attempts to deliver a message from s to d along a minimal path.
func (r *Router) Route(s, d grid.Point) *Trace {
	t := &Trace{Path: []grid.Point{s}}
	if r.Mesh.IsFaulty(s) || r.Mesh.IsFaulty(d) {
		t.Err = ErrEndpointFaulty
		return t
	}
	orient := grid.OrientationOf(s, d)
	cur := s
	budget := grid.Manhattan(s, d)
	var dirs []grid.Direction
	for hop := 0; cur != d; hop++ {
		if hop > budget {
			t.Err = ErrTooManyHops
			return t
		}
		dirs = CandidateDirs(r.Mesh, r.Provider, orient, cur, d, dirs[:0])
		t.Candidates = append(t.Candidates, len(dirs))
		if len(dirs) == 0 {
			t.Err = fmt.Errorf("%w at %v toward %v (provider %s)", ErrNoCandidate, cur, d, r.Provider.Name())
			return t
		}
		pick := r.Policy.Pick(cur, d, dirs)
		cur = grid.Step(cur, dirs[pick])
		t.Path = append(t.Path, cur)
	}
	return t
}

// CandidateDirs appends to dst the allowed forwarding directions from cur
// toward d: the preferred (forward) directions of the orientation whose
// neighbour is in bounds, healthy and permitted by the provider. It is the
// per-hop core of Route, shared with the continuous-traffic engine, which
// forwards packets hop by hop without a Router.
func CandidateDirs(m *mesh.Mesh, prov Provider, orient grid.Orientation, cur, d grid.Point, dst []grid.Direction) []grid.Direction {
	for _, a := range m.Axes() {
		if cur.Axis(a) == d.Axis(a) {
			continue
		}
		dir := orient.Forward(a)
		v := grid.Step(cur, dir)
		if !m.InBounds(v) || m.IsFaulty(v) {
			continue
		}
		if prov.Allowed(cur, v, d) {
			dst = append(dst, dir)
		}
	}
	return dst
}

// CandidateDirsID is the index-first CandidateDirs: the neighbour step is a
// table lookup (mesh.NeighborID), the fault check a bitset read, and the
// provider consultation goes through AllowedID — no Point is built anywhere
// on the hop. cur/curPt and d/dPt name the same nodes in both addressings;
// the caller (the traffic engine) already holds both.
func CandidateDirsID(m *mesh.Mesh, prov IDProvider, orient grid.Orientation, cur int32, curPt grid.Point, d int32, dPt grid.Point, dst []grid.Direction) []grid.Direction {
	for _, a := range m.Axes() {
		if curPt.Axis(a) == dPt.Axis(a) {
			continue
		}
		dir := orient.Forward(a)
		v := m.NeighborID(cur, dir)
		if v == mesh.NoNeighbor || m.FaultyAt(int(v)) {
			continue
		}
		if prov.AllowedID(cur, v, d) {
			dst = append(dst, dir)
		}
	}
	return dst
}

// --- Selection policies -----------------------------------------------------

// LargestOffsetFirst picks the candidate direction whose axis has the largest
// remaining offset toward the destination — a common fully adaptive minimal
// selection that balances the remaining freedom.
type LargestOffsetFirst struct{}

// Name implements Policy.
func (LargestOffsetFirst) Name() string { return "largest-offset" }

// Pick implements Policy.
func (LargestOffsetFirst) Pick(u, d grid.Point, dirs []grid.Direction) int {
	best, bestOff := 0, -1
	for i, dir := range dirs {
		a := dir.Axis()
		off := d.Axis(a) - u.Axis(a)
		if off < 0 {
			off = -off
		}
		if off > bestOff {
			best, bestOff = i, off
		}
	}
	return best
}

// DimensionOrder picks candidates in fixed X, Y, Z order (e-cube-like tie
// breaking); useful as a deterministic reference policy.
type DimensionOrder struct{}

// Name implements Policy.
func (DimensionOrder) Name() string { return "dimension-order" }

// Pick implements Policy.
func (DimensionOrder) Pick(_, _ grid.Point, dirs []grid.Direction) int {
	best := 0
	for i, dir := range dirs {
		if dir.Axis() < dirs[best].Axis() {
			best = i
		}
	}
	return best
}

// Seeded is a deterministic pseudo-random policy: it hashes the current node
// and destination to spread traffic across candidates without carrying state.
type Seeded struct {
	Seed uint64
}

// Name implements Policy.
func (Seeded) Name() string { return "seeded" }

// Pick implements Policy.
func (s Seeded) Pick(u, d grid.Point, dirs []grid.Direction) int {
	h := s.Seed ^ 0x9e3779b97f4a7c15
	mix := func(v int) {
		h ^= uint64(uint32(v)) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	mix(u.X)
	mix(u.Y)
	mix(u.Z)
	mix(d.X)
	mix(d.Y)
	mix(d.Z)
	return int(h % uint64(len(dirs)))
}
