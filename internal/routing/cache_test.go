package routing

// White-box tests for the epoch-versioned, destination-ID-indexed field
// cache: epoch invalidation must be lazy and exact, eviction must drop one
// entry (never the whole cache) and never change answers.

import (
	"testing"

	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
)

// TestFieldCacheEpochInvalidation: after a fault injection flows through the
// incremental update path (AddFaults + Refresh + InvalidateCache), every
// decision must match a provider built from scratch over the same mesh —
// and stale entries must be rebuilt in place, reusing their Field storage.
func TestFieldCacheEpochInvalidation(t *testing.T) {
	m := mesh.NewCube(8)
	fault.Uniform{Count: 20}.Inject(m, rng.New(3))
	lab := labeling.Compute(m, grid.PositiveOrientation)
	set := region.FindMCCs(lab)
	prov := &MCC{Set: set}

	// Warm the cache over a query set.
	type q struct{ u, v, d grid.Point }
	var queries []q
	r := rng.New(9)
	for len(queries) < 200 {
		u := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		if u == d || m.IsFaulty(u) || m.IsFaulty(d) {
			continue
		}
		orient := grid.OrientationOf(u, d)
		for _, a := range m.Axes() {
			if u.Axis(a) == d.Axis(a) {
				continue
			}
			if v, ok := m.Neighbor(u, orient.Forward(a)); ok && !m.IsFaulty(v) {
				queries = append(queries, q{u, v, d})
			}
		}
	}
	for _, qq := range queries {
		prov.Allowed(qq.u, qq.v, qq.d)
	}

	// Remember the field pointer of a destination we know is cached.
	probe := queries[0]
	probeID := m.ID(probe.d)
	before := prov.cache.slots[probeID].field
	if before == nil {
		t.Fatal("probe destination not cached after warmup")
	}

	// Inject a fault and push it through the incremental path.
	var injected grid.Point
	for {
		idx := r.Intn(m.NodeCount())
		if !m.FaultyAt(idx) {
			injected = m.Point(idx)
			m.SetFaulty(injected, true)
			break
		}
	}
	lab.AddFaults([]grid.Point{injected})
	set.Refresh()
	prov.InvalidateCache()

	// Every answer must now match a from-scratch provider.
	freshSet := region.FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	fresh := &MCC{Set: freshSet}
	for _, qq := range queries {
		if qq.v == injected || qq.u == injected || qq.d == injected {
			continue // the query premise (healthy endpoints) changed
		}
		got := prov.Allowed(qq.u, qq.v, qq.d)
		want := fresh.Allowed(qq.u, qq.v, qq.d)
		if got != want {
			t.Fatalf("after epoch invalidation: Allowed(%v, %v, %v) = %v, fresh provider says %v",
				qq.u, qq.v, qq.d, got, want)
		}
	}
	// The probe's slot must have been rebuilt in place: same Field object,
	// fresh epoch — that is the storage reuse the epoch scheme buys.
	if probe.d != injected {
		after := prov.cache.slots[probeID].field
		if after == nil {
			t.Fatal("probe destination dropped instead of rebuilt")
		}
		if after != before {
			t.Errorf("stale field was reallocated, not rebuilt in place")
		}
		if prov.cache.slots[probeID].epoch != prov.cache.epoch {
			t.Errorf("probe slot not stamped with the current epoch")
		}
	}
}

// TestFieldCacheEvictsOneEntry: filling a provider with more destinations
// than fieldCacheMax must evict oldest entries one at a time — the live count
// stays at the cap, early destinations are gone, late ones survive — and
// evicted destinations still answer correctly (they just rebuild).
func TestFieldCacheEvictsOneEntry(t *testing.T) {
	m := mesh.NewCube(17) // 4913 nodes > fieldCacheMax
	o := &Oracle{Mesh: m}
	n := m.NodeCount()
	if n <= fieldCacheMax {
		t.Fatalf("test mesh too small to overflow the cache: %d <= %d", n, fieldCacheMax)
	}
	// Touch every node as a destination, with the neighbouring source so each
	// field is tiny.
	for idx := 0; idx < n; idx++ {
		d := m.Point(idx)
		u, ok := m.Neighbor(d, grid.XPos)
		if !ok {
			u, _ = m.Neighbor(d, grid.XNeg)
		}
		if !o.Allowed(u, u, d) {
			t.Fatalf("fault-free mesh: Allowed(%v, %v, %v) must hold", u, u, d)
		}
	}
	live := 0
	for _, s := range o.cache.slots {
		if s.field != nil {
			live++
		}
	}
	if live != fieldCacheMax {
		t.Fatalf("live entries = %d, want exactly the cap %d (one-at-a-time eviction)", live, fieldCacheMax)
	}
	// The first destinations were evicted, the last ones survived.
	firstID := int32(0)
	if o.cache.slots[firstID].field != nil {
		t.Errorf("oldest destination still cached after overflow")
	}
	if o.cache.slots[n-1].field == nil {
		t.Errorf("newest destination missing from the cache")
	}
	// An evicted destination still answers, and re-caches.
	d := m.Point(0)
	u, _ := m.Neighbor(d, grid.XPos)
	if !o.Allowed(u, u, d) {
		t.Fatalf("evicted destination answers wrong after rebuild")
	}
	if o.cache.slots[0].field == nil {
		t.Errorf("evicted destination was not re-cached on demand")
	}
}

// TestFieldCacheEpochInvalidationOnRepair is the repair-side mirror of
// TestFieldCacheEpochInvalidation: after a fault repair flows through the
// incremental update path (labeling.RemoveFaults + Refresh + InvalidateCache),
// every decision must match a provider built from scratch over the repaired
// mesh. Repairs *open* directions that were excluded before, so a stale field
// that survived the epoch bump would be visible as an over-restrictive answer.
func TestFieldCacheEpochInvalidationOnRepair(t *testing.T) {
	m := mesh.NewCube(8)
	placed := fault.Uniform{Count: 30}.Inject(m, rng.New(5))
	lab := labeling.Compute(m, grid.PositiveOrientation)
	set := region.FindMCCs(lab)
	prov := &MCC{Set: set}

	type q struct{ u, v, d grid.Point }
	var queries []q
	r := rng.New(17)
	for len(queries) < 200 {
		u := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		if u == d || m.IsFaulty(u) || m.IsFaulty(d) {
			continue
		}
		orient := grid.OrientationOf(u, d)
		for _, a := range m.Axes() {
			if u.Axis(a) == d.Axis(a) {
				continue
			}
			if v, ok := m.Neighbor(u, orient.Forward(a)); ok && !m.IsFaulty(v) {
				queries = append(queries, q{u, v, d})
			}
		}
	}
	for _, qq := range queries {
		prov.Allowed(qq.u, qq.v, qq.d)
	}

	// Repair a third of the faults through the incremental path.
	repaired := placed[:len(placed)/3]
	m.RemoveFaults(repaired...)
	lab.RemoveFaults(repaired)
	set.Refresh()
	prov.InvalidateCache()

	freshSet := region.FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	fresh := &MCC{Set: freshSet}
	for _, qq := range queries {
		got := prov.Allowed(qq.u, qq.v, qq.d)
		want := fresh.Allowed(qq.u, qq.v, qq.d)
		if got != want {
			t.Fatalf("after repair invalidation: Allowed(%v, %v, %v) = %v, fresh provider says %v",
				qq.u, qq.v, qq.d, got, want)
		}
	}

	// The oracle takes the same epoch bump on repair; check it against a fresh
	// oracle over the repaired mesh (the live mesh is its source of truth).
	o := &Oracle{Mesh: m}
	for _, qq := range queries {
		o.Allowed(qq.u, qq.v, qq.d)
	}
	m.RemoveFaults(placed[len(placed)/3 : 2*len(placed)/3]...)
	o.InvalidateCache()
	freshO := &Oracle{Mesh: m}
	for _, qq := range queries {
		if got, want := o.Allowed(qq.u, qq.v, qq.d), freshO.Allowed(qq.u, qq.v, qq.d); got != want {
			t.Fatalf("oracle after repair: Allowed(%v, %v, %v) = %v, fresh oracle says %v", qq.u, qq.v, qq.d, got, want)
		}
	}
}
