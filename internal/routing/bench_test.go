package routing_test

// Benchmarks for the per-hop provider decision, with and without fault churn.
// The churn variants model the traffic engine's steady state around a mid-run
// fault injection: the labelling absorbs the new fault incrementally, the
// component set refreshes in place, the provider takes an O(1) epoch bump,
// and the next queries rebuild only the fields they actually touch.

import (
	"testing"

	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
)

// benchQueries returns a deterministic query mix over healthy node IDs:
// (u, v, d) triples with v a forward neighbour of u toward d.
type benchState struct {
	m    *mesh.Mesh
	lab  *labeling.Labeling
	set  *region.ComponentSet
	prov *routing.MCC
	u, v []int32
	d    []int32
	uP   []grid.Point
	vP   []grid.Point
	dP   []grid.Point
}

func newBenchState(tb testing.TB) *benchState {
	m := mesh.NewCube(16)
	fault.Uniform{Count: 120}.Inject(m, rng.New(11))
	lab := labeling.Compute(m, grid.PositiveOrientation)
	set := region.FindMCCs(lab)
	st := &benchState{m: m, lab: lab, set: set, prov: &routing.MCC{Set: set}}
	r := rng.New(23)
	for len(st.u) < 4096 {
		ui := int32(r.Intn(m.NodeCount()))
		di := int32(r.Intn(m.NodeCount()))
		uP, dP := m.Point(int(ui)), m.Point(int(di))
		if m.FaultyAt(int(ui)) || m.FaultyAt(int(di)) || ui == di {
			continue
		}
		orient := grid.OrientationOf(uP, dP)
		var vi int32 = mesh.NoNeighbor
		for _, a := range m.Axes() {
			if uP.Axis(a) == dP.Axis(a) {
				continue
			}
			if q := m.NeighborID(ui, orient.Forward(a)); q != mesh.NoNeighbor && !m.FaultyAt(int(q)) {
				vi = q
				break
			}
		}
		if vi == mesh.NoNeighbor {
			continue
		}
		st.u = append(st.u, ui)
		st.v = append(st.v, vi)
		st.d = append(st.d, di)
		st.uP = append(st.uP, uP)
		st.vP = append(st.vP, m.Point(int(vi)))
		st.dP = append(st.dP, dP)
	}
	return st
}

// churn injects one extra fault and pushes it through the incremental update
// path the traffic engine uses: relabel, refresh, epoch bump.
func (st *benchState) churn(r *rng.Rand) {
	for {
		idx := r.Intn(st.m.NodeCount())
		if st.m.FaultyAt(idx) {
			continue
		}
		p := st.m.Point(idx)
		st.m.SetFaulty(p, true)
		st.lab.AddFaults([]grid.Point{p})
		st.set.Refresh()
		st.prov.InvalidateCache()
		return
	}
}

// BenchmarkMCCAllowed16 is the Point-addressed decision on a static fault set.
func BenchmarkMCCAllowed16(b *testing.B) {
	st := newBenchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 4095
		st.prov.Allowed(st.uP[k], st.vP[k], st.dP[k])
	}
}

// BenchmarkMCCAllowedID16 is the dense-ID decision on a static fault set —
// the path the traffic engine's per-hop loop takes.
func BenchmarkMCCAllowedID16(b *testing.B) {
	st := newBenchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 4095
		st.prov.AllowedID(st.u[k], st.v[k], st.d[k])
	}
}

// BenchmarkMCCAllowedIDChurn16 interleaves fault injections with the query
// stream: every 2048 decisions a node dies, the model updates incrementally,
// and the epoch cache rebuilds fields lazily as destinations are revisited.
func BenchmarkMCCAllowedIDChurn16(b *testing.B) {
	st := newBenchState(b)
	r := rng.New(31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2048 == 2047 && st.m.FaultCount() < st.m.NodeCount()/8 {
			st.churn(r)
		}
		k := i & 4095
		st.prov.AllowedID(st.u[k], st.v[k], st.d[k])
	}
}
