package routing_test

// Benchmarks for the per-hop provider decision, with and without fault churn.
// The churn variants model the traffic engine's steady state around a mid-run
// fault injection: the labelling absorbs the new fault incrementally, the
// component set refreshes in place, the provider takes an O(1) epoch bump,
// and the next queries rebuild only the fields they actually touch.

import (
	"testing"

	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
)

// benchQueries returns a deterministic query mix over healthy node IDs:
// (u, v, d) triples with v a forward neighbour of u toward d.
type benchState struct {
	m    *mesh.Mesh
	lab  *labeling.Labeling
	set  *region.ComponentSet
	prov *routing.MCC
	// provs is the per-orientation provider array the decision benchmarks
	// index with oi, mirroring the traffic engine: all sources feeding one
	// provider approach their destinations from the same octant, so octant
	// field builds converge instead of thrashing between opposite corners.
	provs [8]*routing.MCC
	u, v  []int32
	d     []int32
	oi    []uint8 // orientation index of each query
	uP    []grid.Point
	vP    []grid.Point
	dP    []grid.Point
}

func newBenchState(tb testing.TB) *benchState {
	m := mesh.NewCube(16)
	fault.Uniform{Count: 120}.Inject(m, rng.New(11))
	lab := labeling.Compute(m, grid.PositiveOrientation)
	set := region.FindMCCs(lab)
	st := &benchState{m: m, lab: lab, set: set, prov: &routing.MCC{Set: set}}
	for i := range st.provs {
		st.provs[i] = &routing.MCC{Set: set}
	}
	r := rng.New(23)
	for len(st.u) < 4096 {
		ui := int32(r.Intn(m.NodeCount()))
		di := int32(r.Intn(m.NodeCount()))
		uP, dP := m.Point(int(ui)), m.Point(int(di))
		if m.FaultyAt(int(ui)) || m.FaultyAt(int(di)) || ui == di {
			continue
		}
		orient := grid.OrientationOf(uP, dP)
		var vi int32 = mesh.NoNeighbor
		for _, a := range m.Axes() {
			if uP.Axis(a) == dP.Axis(a) {
				continue
			}
			if q := m.NeighborID(ui, orient.Forward(a)); q != mesh.NoNeighbor && !m.FaultyAt(int(q)) {
				vi = q
				break
			}
		}
		if vi == mesh.NoNeighbor {
			continue
		}
		st.u = append(st.u, ui)
		st.v = append(st.v, vi)
		st.d = append(st.d, di)
		st.oi = append(st.oi, uint8(orient.Index()))
		st.uP = append(st.uP, uP)
		st.vP = append(st.vP, m.Point(int(vi)))
		st.dP = append(st.dP, dP)
	}
	return st
}

// churn injects one extra fault and pushes it through the incremental update
// path the traffic engine uses: relabel, refresh, epoch bump.
func (st *benchState) churn(r *rng.Rand) {
	for {
		idx := r.Intn(st.m.NodeCount())
		if st.m.FaultyAt(idx) {
			continue
		}
		p := st.m.Point(idx)
		st.m.SetFaulty(p, true)
		st.lab.AddFaults([]grid.Point{p})
		st.set.Refresh()
		st.prov.InvalidateCache()
		for _, pr := range st.provs {
			pr.InvalidateCache()
		}
		return
	}
}

// BenchmarkMCCAllowed16 is the Point-addressed decision on a static fault set.
func BenchmarkMCCAllowed16(b *testing.B) {
	st := newBenchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 4095
		st.prov.Allowed(st.uP[k], st.vP[k], st.dP[k])
	}
}

// BenchmarkMCCAllowedID16 is the dense-ID decision on a static fault set —
// the path the traffic engine's per-hop loop takes.
func BenchmarkMCCAllowedID16(b *testing.B) {
	st := newBenchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 4095
		st.prov.AllowedID(st.u[k], st.v[k], st.d[k])
	}
}

// BenchmarkMCCAllowedIDChurn16 interleaves fault injections with the query
// stream: every 2048 decisions a node dies, the model updates incrementally,
// and the epoch cache rebuilds fields lazily as destinations are revisited.
func BenchmarkMCCAllowedIDChurn16(b *testing.B) {
	st := newBenchState(b)
	r := rng.New(31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2048 == 2047 && st.m.FaultCount() < st.m.NodeCount()/8 {
			st.churn(r)
		}
		k := i & 4095
		st.prov.AllowedID(st.u[k], st.v[k], st.d[k])
	}
}

// BenchmarkMCCDecisionHit16 is the steady-state per-hop decision: every
// destination's field is already built for the current epoch, so each
// CandidateMaskID call is the pure fast path — one slot read plus up to
// three bit probes. This is the cost the traffic engine pays for the vast
// majority of hops between fault events.
func BenchmarkMCCDecisionHit16(b *testing.B) {
	st := newBenchState(b)
	for k := range st.u {
		st.provs[st.oi[k]].CandidateMaskID(st.m, st.u[k], st.uP[k], st.d[k], st.dP[k])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 4095
		st.provs[st.oi[k]].CandidateMaskID(st.m, st.u[k], st.uP[k], st.d[k], st.dP[k])
	}
}

// BenchmarkMCCDecisionBuild16 is the decision miss path: the epoch is bumped
// before every call, so each decision resolves through an in-place field
// rebuild (the first query after any fault event pays this, once per
// destination).
func BenchmarkMCCDecisionBuild16(b *testing.B) {
	st := newBenchState(b)
	for k := range st.u {
		st.provs[st.oi[k]].CandidateMaskID(st.m, st.u[k], st.uP[k], st.d[k], st.dP[k])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pr := range st.provs {
			pr.InvalidateCache()
		}
		k := i & 4095
		st.provs[st.oi[k]].CandidateMaskID(st.m, st.u[k], st.uP[k], st.d[k], st.dP[k])
	}
}

// BenchmarkMCCDecisionChurn16 drives the decision path through sustained
// fault churn: an incremental fault injection (relabel, refresh, epoch bump)
// every 2048 decisions. The query stream cycles through 4096 distinct
// destinations, so every revisit lands in a fresh epoch and rebuilds — this
// measures the lazy-rebuild regime, the worst case the engine approaches
// only around fault events (its hit ratio between events is what
// BenchmarkMCCDecisionHit16 measures).
func BenchmarkMCCDecisionChurn16(b *testing.B) {
	st := newBenchState(b)
	r := rng.New(31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2048 == 2047 && st.m.FaultCount() < st.m.NodeCount()/8 {
			st.churn(r)
		}
		k := i & 4095
		st.provs[st.oi[k]].CandidateMaskID(st.m, st.u[k], st.uP[k], st.d[k], st.dP[k])
	}
}
