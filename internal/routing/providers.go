package routing

import (
	"mccmesh/internal/block"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
	"mccmesh/internal/region"
	"mccmesh/internal/telemetry"
)

// CacheInvalidator is implemented by providers that memoise reachability
// fields derived from fault information. Invalidation is an O(1) epoch bump:
// cached fields go stale lazily and are rebuilt in place (reusing their bitset
// storage) the next time their destination is routed to.
//
// For the Oracle the live mesh is the source of truth, so an epoch bump alone
// is always correct. For MCC and Block the provider reads a snapshot (the
// ComponentSet / Regions); bumping their cache is correct only when that
// snapshot has itself been brought up to date — region.ComponentSet.Refresh
// updates an MCC set in place, which is how the traffic models apply mid-run
// faults without rebuilding providers. A Block snapshot has no in-place
// refresh; after mesh mutations it must be rebuilt wholesale, so invalidating
// a Block provider's cache alone is not sufficient.
type CacheInvalidator interface {
	// InvalidateCache marks every memoised reachability field stale so the
	// next Allowed call recomputes it from the current fault information.
	InvalidateCache()
}

// InvalidateCaches invalidates each provider that memoises fault information;
// stateless providers are left untouched.
func InvalidateCaches(provs ...Provider) {
	for _, p := range provs {
		if inv, ok := p.(CacheInvalidator); ok {
			inv.InvalidateCache()
		}
	}
}

// fieldCacheMax bounds the number of live reachability fields per provider.
// On overflow the oldest entry is evicted (FIFO); eviction order cannot
// affect results, only speed. 4096 fields cover every destination of the
// reference 16³ mesh; larger meshes recycle.
const fieldCacheMax = 4096

// fieldCache memoises reachability fields per destination, indexed by the
// destination's dense node ID — no map, no hashing on the per-hop path.
// CanReach(v) for a point inside a field's box depends only on the cells
// between v and the destination — never on the source the field was built
// from — so reusing a field across packets (and across sources) is exact, not
// approximate.
//
// Invalidation is epoch-based: invalidate bumps the cache epoch, and entries
// stamped with an older epoch are rebuilt in place — reusing their bitset
// storage — when their destination is next looked up. A mid-run fault
// injection therefore costs O(1) immediately and O(affected destinations)
// over time, instead of the wholesale rebuild the map-backed cache paid.
type fieldCache struct {
	epoch uint32
	slots []fieldSlot // indexed by destination node ID
	order []int32     // FIFO of destinations holding a field
	head  int         // consumed prefix of order
	spare []*minimal.Field

	// slab and arena chunk the allocation of cold builds: Field structs come
	// from slab, their bitset words are carved from arena, so populating the
	// cache costs O(1) allocations per few hundred destinations instead of
	// two per destination.
	slab  []minimal.Field
	arena []uint64

	// tel receives cache counters (hits, cold builds, rebuilds, evictions,
	// epoch bumps, decision hits/builds); nil — the default — costs one
	// predicted branch per hook.
	tel *telemetry.Sink
}

// fieldSlot is one destination's cache entry: the memoised reachability field
// plus a flattened view of it — the bitset words and the box geometry as
// int32s — that the per-hop decision fast path reads without touching the
// Field struct. The view is restamped on every (re)build, so it always
// matches the live field even when a same-epoch AllowedID lookup widens the
// box. Geometry is stored as min corner plus extents so the in-box check is
// three subtract-and-unsigned-compare pairs whose results double as the
// box-local coordinates of the bit probes, and as int32s so the whole slot is
// one 64-byte cache line: a decision() hit touches exactly one line of the
// slot array plus one to three field words.
type fieldSlot struct {
	field            *minimal.Field
	words            []uint64
	epoch            uint32
	minX, minY, minZ int32
	boxW, boxH, boxD int32
}

// lookup returns a current-epoch field for destination d that covers v,
// building (or rebuilding in place) one when needed. build must fill f (which
// may be nil) with the reachability field toward dst from src and return it.
func (c *fieldCache) lookup(m *mesh.Mesh, u, v, d grid.Point, dID int32, build func(f *minimal.Field, src, dst grid.Point) *minimal.Field) *minimal.Field {
	if c.slots == nil {
		c.epoch = 1
		c.slots = make([]fieldSlot, m.NodeCount())
	}
	s := &c.slots[dID]
	if s.field != nil && s.epoch == c.epoch && s.field.Covers(v) {
		c.tel.Inc(telemetry.FieldHits)
		return s.field
	}
	// Build over the whole octant behind u rather than just BoxOf(u, d):
	// every later source approaching d from the same side is then covered by
	// the one build, so a destination slot builds once per epoch instead of
	// widening toward that same converged box one source at a time (each
	// widening being a full rebuild). Enlarging the box is exact — each
	// cell's value depends only on the cells between it and d.
	src := octantSource(m.Dims(), u, d)
	reuse := s.field
	if reuse != nil && s.epoch == c.epoch {
		// Live field that doesn't cover v: widen the box so the old coverage
		// and the new source both fit, when d stays a corner of the union.
		// This stops two sources with the same destination from rebuilding
		// the field back and forth (e.g. axes resolved at the first build's
		// source that a later source approaches from either side).
		if wide, ok := widenSource(reuse.Box(), src, d); ok {
			src = wide
		}
	}
	if reuse == nil {
		c.tel.Inc(telemetry.FieldColdBuilds)
		if len(c.order)-c.head >= fieldCacheMax {
			c.evictOldest()
		}
		if k := len(c.spare); k > 0 {
			reuse = c.spare[k-1]
			c.spare = c.spare[:k-1]
		} else {
			reuse = c.newField(src, d)
		}
		c.order = append(c.order, dID)
	} else {
		c.tel.Inc(telemetry.FieldRebuilds)
	}
	f := build(reuse, src, d)
	s.field = f
	s.epoch = c.epoch
	// Restamp the decision view: the build may have widened the box or grown
	// the bitset storage, and the probes index the live words directly.
	box := f.Box()
	s.words = f.BitWords()
	s.minX, s.minY, s.minZ = int32(box.Min.X), int32(box.Min.Y), int32(box.Min.Z)
	s.boxW = int32(box.Max.X - box.Min.X + 1)
	s.boxH = int32(box.Max.Y - box.Min.Y + 1)
	s.boxD = int32(box.Max.Z - box.Min.Z + 1)
	return f
}

// decision answers a hop from the memoised reachability field — the per-hop
// fast path: one epoch compare, one box check and at most three bit probes
// into the field's bitset (the forward neighbour on each unresolved axis; a
// set bit means the neighbour still reaches d, and since every provider's
// obstacle set contains the faults, it also means the neighbour is healthy).
// A miss (no field built this epoch, or u outside its box) falls to
// decisionMask. Probing the field directly instead of a precomputed byte
// table keeps the hot working set at the fields themselves — an eighth the
// footprint of one byte per node — which is what the per-hop latency is
// bound by.
func (c *fieldCache) decision(uPt, dPt grid.Point, d int32) (uint8, bool) {
	if c.slots == nil {
		return 0, false
	}
	s := &c.slots[d]
	if s.epoch != c.epoch {
		return 0, false
	}
	x := int32(uPt.X) - s.minX
	y := int32(uPt.Y) - s.minY
	z := int32(uPt.Z) - s.minZ
	if uint32(x) >= uint32(s.boxW) || uint32(y) >= uint32(s.boxH) || uint32(z) >= uint32(s.boxD) {
		return 0, false
	}
	c.tel.Inc(telemetry.DecisionHits)
	return s.dirMask(uPt, dPt, x, y, z), true
}

// dirMask probes the forward neighbour's field bit on each axis still
// unresolved toward d and packs the answers into a direction mask (bit
// grid.Direction). (x, y, z) are u's box-local coordinates, already
// bounds-checked. Each probe stays inside the box: a nonzero delta means d
// lies strictly beyond u on that axis, and d's plane bounds the box, so the
// one-step neighbour is between them. Zero-delta axes contribute no bit,
// which matches the field's geometry — u then sits on d's corner plane where
// a forward step would leave the box.
//
// The probes are branchless: which side of u the destination lies on varies
// packet to packet, so sign branches here would mispredict constantly. Each
// axis derives a step of -1, 0 or +1 rows/planes from the delta's sign bits,
// probes loc+step (loc itself when the axis is resolved — always in range)
// and nulls the resolved-axis bit with the nonzero mask.
func (s *fieldSlot) dirMask(uPt, dPt grid.Point, x, y, z int32) uint8 {
	words := s.words
	loc := x + s.boxW*(y+s.boxH*z)
	probe := func(delta, stride int32, axisShift uint32) uint8 {
		neg := uint32(delta) >> 31
		nz := uint32(delta|-delta) >> 31
		n := loc + int32(nz)*(1-2*int32(neg))*stride
		bit := uint8(words[n>>6]>>(uint32(n)&63)) & uint8(nz)
		return bit << (axisShift + neg)
	}
	mk := probe(int32(dPt.X-uPt.X), 1, uint32(grid.XPos))
	mk |= probe(int32(dPt.Y-uPt.Y), s.boxW, uint32(grid.YPos))
	mk |= probe(int32(dPt.Z-uPt.Z), s.boxW*s.boxH, uint32(grid.ZPos))
	return mk
}

// decisionMask is the miss path of decision: resolve a current-epoch field
// covering u through the ordinary lookup — building or rebuilding it in
// place when stale, widening its box when u lies outside — which also
// restamps the slot's decision view, then answer the hop with the same bit
// probes the fast path uses. Every later hop toward d from inside the box is
// then a decision() hit until the next epoch bump.
func (c *fieldCache) decisionMask(m *mesh.Mesh, uPt grid.Point, d int32, dPt grid.Point, build func(f *minimal.Field, src, dst grid.Point) *minimal.Field) uint8 {
	c.lookup(m, uPt, uPt, dPt, d, build)
	c.tel.Inc(telemetry.DecisionBuilds)
	s := &c.slots[d]
	x := int32(uPt.X) - s.minX
	y := int32(uPt.Y) - s.minY
	z := int32(uPt.Z) - s.minZ
	return s.dirMask(uPt, dPt, x, y, z)
}

// covered returns the live field for destination dID when it covers v, nil
// otherwise — the branch the per-hop fast path takes on a cache hit, with no
// closure and no second box check (CanReachCovered pairs with it).
func (c *fieldCache) covered(dID int32, v grid.Point) *minimal.Field {
	if c.slots == nil {
		return nil
	}
	s := &c.slots[dID]
	if s.field != nil && s.epoch == c.epoch && s.field.Covers(v) {
		c.tel.Inc(telemetry.FieldHits)
		return s.field
	}
	return nil
}

// newField takes a Field struct from the slab and carves its bitset storage
// from the arena, sized for BoxOf(src, d) rounded up to a power of two so
// box-widening rebuilds usually fit in place.
func (c *fieldCache) newField(src, d grid.Point) *minimal.Field {
	if len(c.slab) == 0 {
		c.slab = make([]minimal.Field, 256)
	}
	f := &c.slab[0]
	c.slab = c.slab[1:]
	nwords := (grid.BoxOf(src, d).Volume() + 63) / 64
	capW := 1
	for capW < nwords {
		capW <<= 1
	}
	if len(c.arena) < capW {
		n := 4096
		if n < capW {
			n = capW
		}
		c.arena = make([]uint64, n)
	}
	f.PrepareStorage(c.arena[:0:capW])
	c.arena = c.arena[capW:]
	return f
}

// evictOldest drops the least-recently-inserted live field, parking its
// storage for reuse. The slot's epoch is zeroed so the decision fast path
// cannot answer from a view whose words the parked field will overwrite for
// another destination (epochs start at 1 and only increase).
func (c *fieldCache) evictOldest() {
	c.tel.Inc(telemetry.FieldEvictions)
	for c.head < len(c.order) {
		id := c.order[c.head]
		c.head++
		if s := &c.slots[id]; s.field != nil {
			if len(c.spare) < 8 {
				c.spare = append(c.spare, s.field)
			}
			s.field = nil
			s.words = nil
			s.epoch = 0
			break
		}
	}
	if c.head >= fieldCacheMax {
		c.order = append(c.order[:0], c.order[c.head:]...)
		c.head = 0
	}
}

// octantSource returns the far corner of u's octant behind d: the source
// whose box with d covers every node approaching d from u's side on each
// unresolved axis. Axes already resolved at u stay flat — a later source on
// either side of such an axis still widens the box, with d staying a corner.
func octantSource(dims mesh.Dims, u, d grid.Point) grid.Point {
	pick := func(uc, dc, hi int) int {
		switch {
		case uc < dc:
			return 0
		case uc > dc:
			return hi
		default:
			return dc
		}
	}
	return grid.Point{
		X: pick(u.X, d.X, dims.X-1),
		Y: pick(u.Y, d.Y, dims.Y-1),
		Z: pick(u.Z, d.Z, dims.Z-1),
	}
}

// widenSource returns the source corner of the union of box and BoxOf(u, d),
// provided d remains a corner of that union (always true for per-orientation
// providers, whose sources all lie in the octant behind d; false for the
// oracle when sources from opposite octants mix).
func widenSource(box grid.Box, u, d grid.Point) (grid.Point, bool) {
	un := box.Union(grid.BoxOf(u, d))
	var src grid.Point
	pick := func(dc, lo, hi int) (int, bool) {
		switch dc {
		case lo:
			return hi, true
		case hi:
			return lo, true
		default:
			return 0, false
		}
	}
	var ok bool
	if src.X, ok = pick(d.X, un.Min.X, un.Max.X); !ok {
		return grid.Point{}, false
	}
	if src.Y, ok = pick(d.Y, un.Min.Y, un.Max.Y); !ok {
		return grid.Point{}, false
	}
	if src.Z, ok = pick(d.Z, un.Min.Z, un.Max.Z); !ok {
		return grid.Point{}, false
	}
	return src, true
}

// invalidate marks every cached field stale (O(1); rebuilds happen lazily).
func (c *fieldCache) invalidate() {
	c.tel.Inc(telemetry.FieldEpochBumps)
	c.epoch++
}

// Oracle is the omniscient provider: it permits a step exactly when a
// minimal path from the neighbour to the destination avoiding all faulty
// nodes still exists. It realises the theoretical optimum every model is
// measured against.
type Oracle struct {
	Mesh *mesh.Mesh

	cache fieldCache
}

// Name implements Provider.
func (o *Oracle) Name() string { return "oracle" }

// InvalidateCache implements CacheInvalidator.
func (o *Oracle) InvalidateCache() { o.cache.invalidate() }

// SetTelemetry implements telemetry.Instrumentable.
func (o *Oracle) SetTelemetry(s *telemetry.Sink) { o.cache.tel = s }

func (o *Oracle) field(u, v, d grid.Point, dID int32) *minimal.Field {
	// The oracle's obstacle set is exactly the mesh's fault bitset, consumed
	// word-level by the row-at-a-time sweep.
	return o.cache.lookup(o.Mesh, u, v, d, dID, func(f *minimal.Field, src, dst grid.Point) *minimal.Field {
		return minimal.ReachabilityWordsInto(f, o.Mesh, o.Mesh.FaultyWords(), src, dst)
	})
}

// Allowed implements Provider.
func (o *Oracle) Allowed(u, v, d grid.Point) bool {
	dID := o.Mesh.ID(d)
	if f := o.cache.covered(dID, v); f != nil {
		return f.CanReachCovered(v)
	}
	return o.field(u, v, d, dID).CanReach(v)
}

// AllowedID implements IDProvider.
func (o *Oracle) AllowedID(u, v, d int32) bool {
	m := o.Mesh
	vP := m.Point(int(v))
	if f := o.cache.covered(d, vP); f != nil {
		return f.CanReachCovered(vP)
	}
	return o.field(m.Point(int(u)), vP, m.Point(int(d)), d).CanReach(vP)
}

// CandidateMaskID implements DecisionProvider.
func (o *Oracle) CandidateMaskID(_ *mesh.Mesh, _ int32, uPt grid.Point, d int32, dPt grid.Point) uint8 {
	if b, ok := o.cache.decision(uPt, dPt, d); ok {
		return b
	}
	return o.cache.decisionMask(o.Mesh, uPt, d, dPt, func(f *minimal.Field, src, dst grid.Point) *minimal.Field {
		return minimal.ReachabilityWordsInto(f, o.Mesh, o.Mesh.FaultyWords(), src, dst)
	})
}

// MCC is the paper's fault-information provider backed by globally known MCC
// boundary information: a preferred neighbour v is excluded when it is unsafe
// or when the (merged) forbidden regions of the MCCs block every monotone v→d
// path — the destination being in the critical region and v in the forbidden
// region of the merged records. The merged information is exactly "the union
// of the fault regions", so the provider consults a cached reachability field
// over the unsafe set.
type MCC struct {
	Set *region.ComponentSet

	cache fieldCache
}

// Name implements Provider.
func (p *MCC) Name() string { return "mcc" }

// InvalidateCache implements CacheInvalidator. It is correct on its own only
// when p.Set has been refreshed in place (region.ComponentSet.Refresh after
// labeling.AddFaults); see CacheInvalidator.
func (p *MCC) InvalidateCache() { p.cache.invalidate() }

// SetTelemetry implements telemetry.Instrumentable.
func (p *MCC) SetTelemetry(s *telemetry.Sink) { p.cache.tel = s }

func (p *MCC) field(u, v, d grid.Point, dID int32) *minimal.Field {
	return p.cache.lookup(p.Set.Mesh, u, v, d, dID, func(f *minimal.Field, src, dst grid.Point) *minimal.Field {
		return p.Set.UnionFieldInto(f, src, dst)
	})
}

// Allowed implements Provider.
func (p *MCC) Allowed(u, v, d grid.Point) bool {
	if p.Set.Labeling != nil && p.Set.Labeling.Unsafe(v) {
		// v is inside a fault region; the paper never forwards into an MCC.
		// The destination itself is permitted so that routes can terminate
		// even if the destination is a labelled (healthy) node.
		if v != d {
			return false
		}
	}
	dID := p.Set.Mesh.ID(d)
	if f := p.cache.covered(dID, v); f != nil {
		return f.CanReachCovered(v)
	}
	return p.field(u, v, d, dID).CanReach(v)
}

// AllowedID implements IDProvider.
func (p *MCC) AllowedID(u, v, d int32) bool {
	if v != d && p.Set.Labeling != nil && p.Set.Labeling.UnsafeAt(int(v)) {
		return false
	}
	m := p.Set.Mesh
	vP := m.Point(int(v))
	if f := p.cache.covered(d, vP); f != nil {
		return f.CanReachCovered(vP)
	}
	return p.field(m.Point(int(u)), vP, m.Point(int(d)), d).CanReach(vP)
}

// CandidateMaskID implements DecisionProvider. The unsafe-node pre-check of
// AllowedID is subsumed by the field: the union reachability field is built
// over the unsafe set, so an unsafe neighbour's bit is already clear.
func (p *MCC) CandidateMaskID(_ *mesh.Mesh, _ int32, uPt grid.Point, d int32, dPt grid.Point) uint8 {
	if b, ok := p.cache.decision(uPt, dPt, d); ok {
		return b
	}
	return p.cache.decisionMask(p.Set.Mesh, uPt, d, dPt, func(f *minimal.Field, src, dst grid.Point) *minimal.Field {
		return p.Set.UnionFieldInto(f, src, dst)
	})
}

// Records is the boundary-information provider: each node holds only the MCC
// records deposited on it by the boundary-construction protocol, and routing
// decisions consult the records of the current node (plus the records already
// collected along the path, which a real message carries in its header). This
// models the paper's limited-global-information regime.
type Records struct {
	Set *region.ComponentSet
	// PerNode maps a node index to the IDs of the components whose records are
	// stored at that node.
	PerNode map[int][]int
	// CarryAlong controls whether records seen earlier on the path remain
	// usable (the routing message accumulates them); the paper's messages do.
	CarryAlong bool

	carried map[int]bool
}

// Name implements Provider.
func (p *Records) Name() string { return "mcc-boundary" }

// Reset clears the record set carried by the current message.
func (p *Records) Reset() { p.carried = nil }

// Allowed implements Provider.
func (p *Records) Allowed(u, v, d grid.Point) bool {
	if p.Set.Labeling != nil && p.Set.Labeling.Unsafe(v) && v != d {
		return false
	}
	if p.carried == nil {
		p.carried = make(map[int]bool)
	}
	uIdx := p.Set.Mesh.Index(u)
	known := p.PerNode[uIdx]
	if p.CarryAlong {
		for _, id := range known {
			p.carried[id] = true
		}
		known = known[:0:0]
		for id := range p.carried {
			known = append(known, id)
		}
	}
	if len(known) == 0 {
		return true
	}
	// The records known here act together, exactly like the merged forbidden
	// regions the boundary construction produces: v is excluded when the union
	// of the known regions blocks every monotone v→d path.
	avoid := func(q grid.Point) bool {
		for _, id := range known {
			c := p.Set.Components[id]
			if c.Has(q) && !c.Has(d) {
				return true
			}
		}
		return false
	}
	return minimal.Exists(p.Set.Mesh, avoid, v, d)
}

// Block is the rectangular-faulty-block baseline provider: the routing avoids
// every node inside a fault block and excludes a step when the union of the
// blocks closes off every monotone path from the neighbour to the destination
// (the block model's own boundary information, given the same merging
// treatment as the MCC model for a fair comparison).
type Block struct {
	Regions *block.Regions

	cache    fieldCache
	scratchW []uint64 // destination-carve-out copy of the avoid bitset
}

// Name implements Provider.
func (p *Block) Name() string { return "rfb-" + p.Regions.Model.String() }

// SetTelemetry implements telemetry.Instrumentable.
func (p *Block) SetTelemetry(s *telemetry.Sink) { p.cache.tel = s }

// buildField fills f with the union reachability field over the block set.
// When the destination sits inside a block (healthy but swallowed by the
// coarse model), its bit is carved out of a scratch copy of the avoid bitset
// so routes can at least try to terminate.
func (p *Block) buildField(f *minimal.Field, src, dst grid.Point, dID int32) *minimal.Field {
	avoid := p.Regions.AvoidWords()
	if p.Regions.Contains(dst) {
		if cap(p.scratchW) < len(avoid) {
			p.scratchW = make([]uint64, len(avoid))
		}
		w := p.scratchW[:len(avoid)]
		copy(w, avoid)
		w[dID>>6] &^= 1 << uint(dID&63)
		avoid = w
	}
	return minimal.ReachabilityWordsInto(f, p.Regions.Mesh, avoid, src, dst)
}

func (p *Block) field(u, v, d grid.Point, dID int32) *minimal.Field {
	return p.cache.lookup(p.Regions.Mesh, u, v, d, dID, func(f *minimal.Field, src, dst grid.Point) *minimal.Field {
		return p.buildField(f, src, dst, dID)
	})
}

// Allowed implements Provider.
func (p *Block) Allowed(u, v, d grid.Point) bool {
	if p.Regions.Contains(v) && v != d {
		return false
	}
	dID := p.Regions.Mesh.ID(d)
	if f := p.cache.covered(dID, v); f != nil {
		return f.CanReachCovered(v)
	}
	return p.field(u, v, d, dID).CanReach(v)
}

// AllowedID implements IDProvider.
func (p *Block) AllowedID(u, v, d int32) bool {
	if v != d && p.Regions.ContainsID(v) {
		return false
	}
	m := p.Regions.Mesh
	vP := m.Point(int(v))
	if f := p.cache.covered(d, vP); f != nil {
		return f.CanReachCovered(vP)
	}
	return p.field(m.Point(int(u)), vP, m.Point(int(d)), d).CanReach(vP)
}

// CandidateMaskID implements DecisionProvider. As with MCC, the
// inside-a-block pre-check is subsumed by the avoid set the field is built
// over (with the same destination carve-out as AllowedID's v == d escape).
func (p *Block) CandidateMaskID(_ *mesh.Mesh, _ int32, uPt grid.Point, d int32, dPt grid.Point) uint8 {
	if b, ok := p.cache.decision(uPt, dPt, d); ok {
		return b
	}
	return p.cache.decisionMask(p.Regions.Mesh, uPt, d, dPt, func(f *minimal.Field, src, dst grid.Point) *minimal.Field {
		return p.buildField(f, src, dst, d)
	})
}

// LocalGreedy is the floor baseline: it only knows the fault status of the
// current node's neighbours and therefore accepts any healthy preferred
// neighbour. It can run into dead ends, which count as routing failures.
type LocalGreedy struct{}

// Name implements Provider.
func (LocalGreedy) Name() string { return "local-greedy" }

// Allowed implements Provider.
func (LocalGreedy) Allowed(_, _, _ grid.Point) bool { return true }

// AllowedID implements IDProvider.
func (LocalGreedy) AllowedID(_, _, _ int32) bool { return true }

// CandidateMaskID implements DecisionProvider: with no fault information
// beyond the neighbours, the decision is exactly the healthy forward set.
func (LocalGreedy) CandidateMaskID(m *mesh.Mesh, u int32, uPt grid.Point, _ int32, dPt grid.Point) uint8 {
	return healthyForwardMask(m, u, uPt, dPt)
}

// Labeled avoids any unsafe node but applies no region reasoning: it shows the
// value of the forbidden/critical rule on top of the raw labelling.
type Labeled struct {
	Labeling *labeling.Labeling
}

// Name implements Provider.
func (p *Labeled) Name() string { return "labels-only" }

// Allowed implements Provider.
func (p *Labeled) Allowed(_, v, d grid.Point) bool {
	return v == d || !p.Labeling.Unsafe(v)
}

// AllowedID implements IDProvider.
func (p *Labeled) AllowedID(_, v, d int32) bool {
	return v == d || !p.Labeling.UnsafeAt(int(v))
}

// CandidateMaskID implements DecisionProvider: the healthy forward set minus
// unsafe neighbours (the destination excepted), computed on the fly — the
// labelling carries no per-destination state worth memoising.
func (p *Labeled) CandidateMaskID(m *mesh.Mesh, u int32, uPt grid.Point, d int32, dPt grid.Point) uint8 {
	var mk uint8
	for _, a := range m.Axes() {
		delta := dPt.Axis(a) - uPt.Axis(a)
		if delta == 0 {
			continue
		}
		dir := grid.DirectionOf(a, grid.Sign(delta))
		v := m.NeighborID(u, dir)
		if v == mesh.NoNeighbor || m.FaultyAt(int(v)) {
			continue
		}
		if v != d && p.Labeling.UnsafeAt(int(v)) {
			continue
		}
		mk |= 1 << uint(dir)
	}
	return mk
}
