package routing

import (
	"mccmesh/internal/block"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
	"mccmesh/internal/region"
)

// CacheInvalidator is implemented by providers that memoise reachability
// fields derived from the live mesh (currently only Oracle). Providers built
// over a precomputed snapshot — MCC's ComponentSet, Block's Regions —
// deliberately do not implement it: dropping their field cache would still
// leave the snapshot stale, so after mesh mutations they must be rebuilt
// wholesale (as the traffic engine's information models do).
type CacheInvalidator interface {
	// InvalidateCache drops memoised fault information so the next Allowed
	// call recomputes it from the current mesh state.
	InvalidateCache()
}

// InvalidateCaches invalidates each provider that memoises fault information;
// stateless providers are left untouched.
func InvalidateCaches(provs ...Provider) {
	for _, p := range provs {
		if inv, ok := p.(CacheInvalidator); ok {
			inv.InvalidateCache()
		}
	}
}

// fieldCache memoises reachability fields per destination. CanReach(v) for a
// point inside a field's box depends only on the cells between v and the
// destination — never on the source the field was built from — so reusing a
// field across packets (and across sources) is exact, not approximate. The
// single-slot caches this replaces were exact too but thrashed as soon as two
// packets with different destinations interleaved, which is the steady state
// of the traffic engine; keying by destination removes the per-hop rebuild
// from the forwarding fast path.
type fieldCache struct {
	entries map[grid.Point]fieldEntry
}

type fieldEntry struct {
	src   grid.Point
	field *minimal.Field
}

// fieldCacheMax bounds the per-provider cache; on overflow the cache is
// cleared wholesale (eviction order cannot affect results, only speed).
const fieldCacheMax = 1024

// lookup returns the cached field for destination d if it covers v, building
// one from (u, d) otherwise.
func (c *fieldCache) lookup(u, v, d grid.Point, build func(u, d grid.Point) *minimal.Field) *minimal.Field {
	if e, ok := c.entries[d]; ok && grid.BoxOf(e.src, d).Contains(v) {
		return e.field
	}
	if c.entries == nil {
		c.entries = make(map[grid.Point]fieldEntry, 16)
	} else if len(c.entries) >= fieldCacheMax {
		clear(c.entries)
	}
	f := build(u, d)
	c.entries[d] = fieldEntry{src: u, field: f}
	return f
}

// invalidate drops every cached field.
func (c *fieldCache) invalidate() { c.entries = nil }

// Oracle is the omniscient provider: it permits a step exactly when a
// minimal path from the neighbour to the destination avoiding all faulty
// nodes still exists. It realises the theoretical optimum every model is
// measured against.
type Oracle struct {
	Mesh *mesh.Mesh

	cache fieldCache
}

// Name implements Provider.
func (o *Oracle) Name() string { return "oracle" }

// InvalidateCache implements CacheInvalidator.
func (o *Oracle) InvalidateCache() { o.cache.invalidate() }

// Allowed implements Provider.
func (o *Oracle) Allowed(u, v, d grid.Point) bool {
	return o.cache.lookup(u, v, d, func(u, d grid.Point) *minimal.Field {
		return minimal.Reachability(o.Mesh, minimal.AvoidFaulty(o.Mesh), u, d)
	}).CanReach(v)
}

// MCC is the paper's fault-information provider backed by globally known MCC
// boundary information: a preferred neighbour v is excluded when it is unsafe
// or when the (merged) forbidden regions of the MCCs block every monotone v→d
// path — the destination being in the critical region and v in the forbidden
// region of the merged records. The merged information is exactly "the union
// of the fault regions", so the provider consults a cached reachability field
// over the unsafe set.
type MCC struct {
	Set *region.ComponentSet

	cache fieldCache
}

// Name implements Provider.
func (p *MCC) Name() string { return "mcc" }

// Allowed implements Provider.
func (p *MCC) Allowed(u, v, d grid.Point) bool {
	if p.Set.Labeling != nil && p.Set.Labeling.Unsafe(v) {
		// v is inside a fault region; the paper never forwards into an MCC.
		// The destination itself is permitted so that routes can terminate
		// even if the destination is a labelled (healthy) node.
		if v != d {
			return false
		}
	}
	return p.cache.lookup(u, v, d, p.Set.UnionField).CanReach(v)
}

// Records is the boundary-information provider: each node holds only the MCC
// records deposited on it by the boundary-construction protocol, and routing
// decisions consult the records of the current node (plus the records already
// collected along the path, which a real message carries in its header). This
// models the paper's limited-global-information regime.
type Records struct {
	Set *region.ComponentSet
	// PerNode maps a node index to the IDs of the components whose records are
	// stored at that node.
	PerNode map[int][]int
	// CarryAlong controls whether records seen earlier on the path remain
	// usable (the routing message accumulates them); the paper's messages do.
	CarryAlong bool

	carried map[int]bool
}

// Name implements Provider.
func (p *Records) Name() string { return "mcc-boundary" }

// Reset clears the record set carried by the current message.
func (p *Records) Reset() { p.carried = nil }

// Allowed implements Provider.
func (p *Records) Allowed(u, v, d grid.Point) bool {
	if p.Set.Labeling != nil && p.Set.Labeling.Unsafe(v) && v != d {
		return false
	}
	if p.carried == nil {
		p.carried = make(map[int]bool)
	}
	uIdx := p.Set.Mesh.Index(u)
	known := p.PerNode[uIdx]
	if p.CarryAlong {
		for _, id := range known {
			p.carried[id] = true
		}
		known = known[:0:0]
		for id := range p.carried {
			known = append(known, id)
		}
	}
	if len(known) == 0 {
		return true
	}
	// The records known here act together, exactly like the merged forbidden
	// regions the boundary construction produces: v is excluded when the union
	// of the known regions blocks every monotone v→d path.
	avoid := func(q grid.Point) bool {
		for _, id := range known {
			c := p.Set.Components[id]
			if c.Has(q) && !c.Has(d) {
				return true
			}
		}
		return false
	}
	return minimal.Exists(p.Set.Mesh, avoid, v, d)
}

// Block is the rectangular-faulty-block baseline provider: the routing avoids
// every node inside a fault block and excludes a step when the union of the
// blocks closes off every monotone path from the neighbour to the destination
// (the block model's own boundary information, given the same merging
// treatment as the MCC model for a fair comparison).
type Block struct {
	Regions *block.Regions

	cache fieldCache
}

// Name implements Provider.
func (p *Block) Name() string { return "rfb-" + p.Regions.Model.String() }

// Allowed implements Provider.
func (p *Block) Allowed(u, v, d grid.Point) bool {
	if p.Regions.Contains(v) && v != d {
		return false
	}
	return p.cache.lookup(u, v, d, func(u, d grid.Point) *minimal.Field {
		avoid := p.Regions.Avoid()
		if p.Regions.Contains(d) {
			// The destination sits inside a block (it is healthy but the
			// coarse model swallowed it); carve it out so routes can at least
			// try to terminate.
			inner := avoid
			avoid = func(q grid.Point) bool { return q != d && inner(q) }
		}
		return minimal.Reachability(p.Regions.Mesh, avoid, u, d)
	}).CanReach(v)
}

// LocalGreedy is the floor baseline: it only knows the fault status of the
// current node's neighbours and therefore accepts any healthy preferred
// neighbour. It can run into dead ends, which count as routing failures.
type LocalGreedy struct{}

// Name implements Provider.
func (LocalGreedy) Name() string { return "local-greedy" }

// Allowed implements Provider.
func (LocalGreedy) Allowed(_, _, _ grid.Point) bool { return true }

// Labeled avoids any unsafe node but applies no region reasoning: it shows the
// value of the forbidden/critical rule on top of the raw labelling.
type Labeled struct {
	Labeling *labeling.Labeling
}

// Name implements Provider.
func (p *Labeled) Name() string { return "labels-only" }

// Allowed implements Provider.
func (p *Labeled) Allowed(_, v, d grid.Point) bool {
	return v == d || !p.Labeling.Unsafe(v)
}
