package grid

import "fmt"

// Box is an axis-aligned, inclusive box of lattice points: all p with
// Min ≤ p ≤ Max componentwise. A Box with Min > Max on any axis is empty.
type Box struct {
	Min, Max Point
}

// BoxOf returns the smallest box containing both p and q.
func BoxOf(p, q Point) Box {
	return Box{
		Min: Point{min2(p.X, q.X), min2(p.Y, q.Y), min2(p.Z, q.Z)},
		Max: Point{max2(p.X, q.X), max2(p.Y, q.Y), max2(p.Z, q.Z)},
	}
}

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("[%d:%d, %d:%d, %d:%d]", b.Min.X, b.Max.X, b.Min.Y, b.Max.Y, b.Min.Z, b.Max.Z)
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Contains reports whether p lies inside the box.
func (b Box) Contains(p Point) bool {
	return b.Min.X <= p.X && p.X <= b.Max.X &&
		b.Min.Y <= p.Y && p.Y <= b.Max.Y &&
		b.Min.Z <= p.Z && p.Z <= b.Max.Z
}

// Volume returns the number of lattice points in the box.
func (b Box) Volume() int {
	if b.Empty() {
		return 0
	}
	return (b.Max.X - b.Min.X + 1) * (b.Max.Y - b.Min.Y + 1) * (b.Max.Z - b.Min.Z + 1)
}

// Extend returns the smallest box containing b and p.
func (b Box) Extend(p Point) Box {
	if b.Empty() {
		return Box{Min: p, Max: p}
	}
	return Box{
		Min: Point{min2(b.Min.X, p.X), min2(b.Min.Y, p.Y), min2(b.Min.Z, p.Z)},
		Max: Point{max2(b.Max.X, p.X), max2(b.Max.Y, p.Y), max2(b.Max.Z, p.Z)},
	}
}

// Union returns the smallest box containing both boxes.
func (b Box) Union(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return Box{
		Min: Point{min2(b.Min.X, o.Min.X), min2(b.Min.Y, o.Min.Y), min2(b.Min.Z, o.Min.Z)},
		Max: Point{max2(b.Max.X, o.Max.X), max2(b.Max.Y, o.Max.Y), max2(b.Max.Z, o.Max.Z)},
	}
}

// Intersects reports whether the two boxes share at least one point.
func (b Box) Intersects(o Box) bool {
	if b.Empty() || o.Empty() {
		return false
	}
	return b.Min.X <= o.Max.X && o.Min.X <= b.Max.X &&
		b.Min.Y <= o.Max.Y && o.Min.Y <= b.Max.Y &&
		b.Min.Z <= o.Max.Z && o.Min.Z <= b.Max.Z
}

// Gap returns the L∞ gap between the two boxes: 0 if they intersect or touch,
// otherwise the smallest Chebyshev distance between any pair of points.
func (b Box) Gap(o Box) int {
	gx := axisGap(b.Min.X, b.Max.X, o.Min.X, o.Max.X)
	gy := axisGap(b.Min.Y, b.Max.Y, o.Min.Y, o.Max.Y)
	gz := axisGap(b.Min.Z, b.Max.Z, o.Min.Z, o.Max.Z)
	return max3(gx, gy, gz)
}

func axisGap(aMin, aMax, bMin, bMax int) int {
	if aMax < bMin {
		return bMin - aMax
	}
	if bMax < aMin {
		return aMin - bMax
	}
	return 0
}

// Clamp returns p clamped into the box.
func (b Box) Clamp(p Point) Point {
	return Point{
		X: clamp(p.X, b.Min.X, b.Max.X),
		Y: clamp(p.Y, b.Min.Y, b.Max.Y),
		Z: clamp(p.Z, b.Min.Z, b.Max.Z),
	}
}

// ForEach calls fn for every point in the box in x-fastest order.
func (b Box) ForEach(fn func(Point)) {
	if b.Empty() {
		return
	}
	for z := b.Min.Z; z <= b.Max.Z; z++ {
		for y := b.Min.Y; y <= b.Max.Y; y++ {
			for x := b.Min.X; x <= b.Max.X; x++ {
				fn(Point{x, y, z})
			}
		}
	}
}

// Points returns all points of the box in x-fastest order.
func (b Box) Points() []Point {
	pts := make([]Point, 0, b.Volume())
	b.ForEach(func(p Point) { pts = append(pts, p) })
	return pts
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
