package grid

import "fmt"

// Axis identifies one of the three mesh dimensions.
type Axis int

// The three axes of a 3-D mesh. 2-D meshes use AxisX and AxisY only.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// Axes3D lists all axes of a 3-D mesh in canonical order.
var Axes3D = []Axis{AxisX, AxisY, AxisZ}

// Axes2D lists the axes of a 2-D mesh in canonical order.
var Axes2D = []Axis{AxisX, AxisY}

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "X"
	case AxisY:
		return "Y"
	case AxisZ:
		return "Z"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Direction is a signed axis: one of the (up to) six neighbouring directions
// of a mesh node.
type Direction int

// The six directions of a 3-D mesh, named after the paper's +X, -X, ... form.
const (
	XPos Direction = iota
	XNeg
	YPos
	YNeg
	ZPos
	ZNeg
	numDirections
)

// NumDirections is the number of distinct directions in a 3-D mesh.
const NumDirections = int(numDirections)

// Directions3D lists all six directions of a 3-D mesh.
var Directions3D = []Direction{XPos, XNeg, YPos, YNeg, ZPos, ZNeg}

// Directions2D lists the four directions of a 2-D mesh.
var Directions2D = []Direction{XPos, XNeg, YPos, YNeg}

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case XPos:
		return "+X"
	case XNeg:
		return "-X"
	case YPos:
		return "+Y"
	case YNeg:
		return "-Y"
	case ZPos:
		return "+Z"
	case ZNeg:
		return "-Z"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Axis returns the axis the direction moves along.
func (d Direction) Axis() Axis {
	switch d {
	case XPos, XNeg:
		return AxisX
	case YPos, YNeg:
		return AxisY
	default:
		return AxisZ
	}
}

// Positive reports whether the direction increases its axis coordinate.
func (d Direction) Positive() bool {
	return d == XPos || d == YPos || d == ZPos
}

// Opposite returns the direction pointing the other way along the same axis.
func (d Direction) Opposite() Direction {
	switch d {
	case XPos:
		return XNeg
	case XNeg:
		return XPos
	case YPos:
		return YNeg
	case YNeg:
		return YPos
	case ZPos:
		return ZNeg
	default:
		return ZPos
	}
}

// Delta returns the unit step vector of the direction.
func (d Direction) Delta() Point {
	switch d {
	case XPos:
		return Point{1, 0, 0}
	case XNeg:
		return Point{-1, 0, 0}
	case YPos:
		return Point{0, 1, 0}
	case YNeg:
		return Point{0, -1, 0}
	case ZPos:
		return Point{0, 0, 1}
	default:
		return Point{0, 0, -1}
	}
}

// DirectionOf returns the direction along axis a with the given sign.
// sign must be +1 or -1.
func DirectionOf(a Axis, sign int) Direction {
	pos := sign > 0
	switch a {
	case AxisX:
		if pos {
			return XPos
		}
		return XNeg
	case AxisY:
		if pos {
			return YPos
		}
		return YNeg
	default:
		if pos {
			return ZPos
		}
		return ZNeg
	}
}

// Step returns p moved one hop in direction d.
func Step(p Point, d Direction) Point {
	return p.Add(d.Delta())
}
