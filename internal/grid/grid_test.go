package grid

import (
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	cases := []struct {
		p, q Point
		want int
	}{
		{Point{0, 0, 0}, Point{0, 0, 0}, 0},
		{Point{1, 2, 3}, Point{1, 2, 3}, 0},
		{Point{0, 0, 0}, Point{3, 4, 5}, 12},
		{Point{5, 0, 2}, Point{0, 7, 2}, 12},
		{Point{-2, 0, 0}, Point{2, 0, 0}, 4},
	}
	for _, c := range cases {
		if got := Manhattan(c.p, c.q); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := Manhattan(c.q, c.p); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d (symmetry)", c.q, c.p, got, c.want)
		}
	}
}

func TestChebyshev(t *testing.T) {
	if got := Chebyshev(Point{1, 2, 3}, Point{4, 0, 3}); got != 3 {
		t.Errorf("Chebyshev = %d, want 3", got)
	}
}

func TestPointAxisRoundTrip(t *testing.T) {
	p := Point{3, -1, 7}
	for _, a := range Axes3D {
		q := p.WithAxis(a, 42)
		if q.Axis(a) != 42 {
			t.Errorf("WithAxis(%v) not reflected by Axis", a)
		}
		for _, b := range Axes3D {
			if b != a && q.Axis(b) != p.Axis(b) {
				t.Errorf("WithAxis(%v) modified axis %v", a, b)
			}
		}
	}
}

func TestDominates(t *testing.T) {
	if !Dominates(Point{0, 0, 0}, Point{1, 2, 3}) {
		t.Error("origin should dominate positive point")
	}
	if Dominates(Point{1, 0, 0}, Point{0, 5, 5}) {
		t.Error("should not dominate when one axis decreases")
	}
}

func TestDirectionBasics(t *testing.T) {
	for _, d := range Directions3D {
		if d.Opposite().Opposite() != d {
			t.Errorf("%v: opposite of opposite is not identity", d)
		}
		if d.Opposite().Axis() != d.Axis() {
			t.Errorf("%v: opposite changes axis", d)
		}
		if d.Positive() == d.Opposite().Positive() {
			t.Errorf("%v: opposite has same sign", d)
		}
		delta := d.Delta()
		sum := delta.X + delta.Y + delta.Z
		if sum != 1 && sum != -1 {
			t.Errorf("%v: delta %v is not a unit step", d, delta)
		}
		if DirectionOf(d.Axis(), sign(d)) != d {
			t.Errorf("DirectionOf(%v, %d) != %v", d.Axis(), sign(d), d)
		}
	}
}

func sign(d Direction) int {
	if d.Positive() {
		return 1
	}
	return -1
}

func TestStep(t *testing.T) {
	p := Point{2, 2, 2}
	if got := Step(p, XPos); got != (Point{3, 2, 2}) {
		t.Errorf("Step +X = %v", got)
	}
	if got := Step(p, ZNeg); got != (Point{2, 2, 1}) {
		t.Errorf("Step -Z = %v", got)
	}
}

func TestBoxOfContains(t *testing.T) {
	b := BoxOf(Point{3, 1, 2}, Point{0, 4, 2})
	if b.Min != (Point{0, 1, 2}) || b.Max != (Point{3, 4, 2}) {
		t.Fatalf("BoxOf wrong: %v", b)
	}
	if !b.Contains(Point{2, 2, 2}) || b.Contains(Point{2, 2, 3}) {
		t.Error("Contains wrong")
	}
	if b.Volume() != 4*4*1 {
		t.Errorf("Volume = %d", b.Volume())
	}
	count := 0
	b.ForEach(func(Point) { count++ })
	if count != b.Volume() {
		t.Errorf("ForEach visited %d points, want %d", count, b.Volume())
	}
}

func TestBoxEmpty(t *testing.T) {
	b := Box{Min: Point{1, 0, 0}, Max: Point{0, 0, 0}}
	if !b.Empty() || b.Volume() != 0 {
		t.Error("expected empty box")
	}
	ext := b.Extend(Point{5, 5, 5})
	if ext.Min != (Point{5, 5, 5}) || ext.Max != (Point{5, 5, 5}) {
		t.Errorf("Extend of empty box = %v", ext)
	}
}

func TestBoxGap(t *testing.T) {
	a := Box{Min: Point{0, 0, 0}, Max: Point{2, 2, 0}}
	b := Box{Min: Point{3, 0, 0}, Max: Point{5, 2, 0}}
	if g := a.Gap(b); g != 1 {
		t.Errorf("abutting boxes gap = %d, want 1", g)
	}
	c := Box{Min: Point{2, 2, 0}, Max: Point{4, 4, 0}}
	if g := a.Gap(c); g != 0 {
		t.Errorf("overlapping boxes gap = %d, want 0", g)
	}
	far := Box{Min: Point{10, 10, 10}, Max: Point{11, 11, 11}}
	if g := a.Gap(far); g != 10 {
		t.Errorf("far boxes gap = %d, want 10", g)
	}
}

func TestBoxUnionIntersects(t *testing.T) {
	a := Box{Min: Point{0, 0, 0}, Max: Point{1, 1, 1}}
	b := Box{Min: Point{3, 3, 3}, Max: Point{4, 4, 4}}
	u := a.Union(b)
	if !u.Contains(Point{2, 2, 2}) {
		t.Error("union should cover the gap")
	}
	if a.Intersects(b) {
		t.Error("disjoint boxes should not intersect")
	}
	if !a.Intersects(u) {
		t.Error("box should intersect its union")
	}
}

func TestOrientationOf(t *testing.T) {
	o := OrientationOf(Point{5, 5, 5}, Point{2, 8, 5})
	if o.SX != -1 || o.SY != 1 || o.SZ != 1 {
		t.Errorf("OrientationOf = %+v", o)
	}
	if !o.Valid() {
		t.Error("orientation should be valid")
	}
	if o.Forward(AxisX) != XNeg || o.Backward(AxisX) != XPos {
		t.Error("forward/backward on X wrong")
	}
}

func TestOrientationIndexRoundTrip(t *testing.T) {
	for i := 0; i < 8; i++ {
		o := OrientationFromIndex(i)
		if o.Index() != i {
			t.Errorf("index round trip failed for %d: %+v", i, o)
		}
	}
	if len(AllOrientations3D()) != 8 || len(AllOrientations2D()) != 4 {
		t.Error("orientation enumeration sizes wrong")
	}
}

func TestOrientationCanonRoundTrip(t *testing.T) {
	f := func(sx, sy, sz bool, srcX, srcY, srcZ, pX, pY, pZ int8) bool {
		o := PositiveOrientation
		if sx {
			o.SX = -1
		}
		if sy {
			o.SY = -1
		}
		if sz {
			o.SZ = -1
		}
		src := Point{int(srcX), int(srcY), int(srcZ)}
		p := Point{int(pX), int(pY), int(pZ)}
		return o.Uncanon(src, o.Canon(src, p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrientationCanonAhead(t *testing.T) {
	// Moving "ahead" in mesh coordinates must increase the canonical
	// coordinate by exactly one on that axis and leave the others unchanged.
	for _, o := range AllOrientations3D() {
		src := Point{4, 4, 4}
		p := Point{6, 2, 5}
		for _, a := range Axes3D {
			q := o.Ahead(p, a)
			cp, cq := o.Canon(src, p), o.Canon(src, q)
			if cq.Axis(a) != cp.Axis(a)+1 {
				t.Errorf("orientation %v axis %v: canonical did not advance", o, a)
			}
		}
	}
}

func TestSignClamp(t *testing.T) {
	if Sign(-3) != -1 || Sign(0) != 0 || Sign(9) != 1 {
		t.Error("Sign wrong")
	}
	b := Box{Min: Point{0, 0, 0}, Max: Point{5, 5, 5}}
	if b.Clamp(Point{-3, 9, 2}) != (Point{0, 5, 2}) {
		t.Error("Clamp wrong")
	}
}
