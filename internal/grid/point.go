// Package grid provides the integer-lattice geometry shared by every other
// package in the repository: points, boxes, axes, directions, orientations
// (the per-axis sign of travel from a source toward a destination) and small
// helpers for Manhattan distance and dominance tests.
//
// All algorithms in the paper are stated for a source at the origin and a
// destination with non-negative coordinates; Orientation generalises them to
// arbitrary source/destination placements without copying the mesh.
package grid

import "fmt"

// Point is a node coordinate in a 2-D or 3-D mesh. 2-D meshes use Z == 0.
type Point struct {
	X, Y, Z int
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%d,%d,%d)", p.X, p.Y, p.Z)
}

// Add returns the componentwise sum p+q.
func (p Point) Add(q Point) Point {
	return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z}
}

// Sub returns the componentwise difference p-q.
func (p Point) Sub(q Point) Point {
	return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z}
}

// Axis returns the coordinate of p along axis a.
func (p Point) Axis(a Axis) int {
	switch a {
	case AxisX:
		return p.X
	case AxisY:
		return p.Y
	default:
		return p.Z
	}
}

// WithAxis returns a copy of p with the coordinate along axis a replaced by v.
func (p Point) WithAxis(a Axis, v int) Point {
	switch a {
	case AxisX:
		p.X = v
	case AxisY:
		p.Y = v
	default:
		p.Z = v
	}
	return p
}

// Manhattan returns the L1 distance between p and q, the routing distance
// D(p,q) used throughout the paper.
func Manhattan(p, q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y) + abs(p.Z-q.Z)
}

// Chebyshev returns the L∞ distance between p and q.
func Chebyshev(p, q Point) int {
	return max3(abs(p.X-q.X), abs(p.Y-q.Y), abs(p.Z-q.Z))
}

// Dominates reports whether q is reachable from p using only non-negative
// moves, i.e. p ≤ q componentwise.
func Dominates(p, q Point) bool {
	return p.X <= q.X && p.Y <= q.Y && p.Z <= q.Z
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// Sign returns -1, 0 or 1 according to the sign of v.
func Sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}
