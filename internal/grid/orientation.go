package grid

import "fmt"

// Orientation is the per-axis sign of travel from a source toward a
// destination. The paper assumes the destination lies in the all-positive
// octant relative to the source; Orientation generalises every algorithm to
// the other octants (quadrants in 2-D) by re-labelling which physical
// direction counts as "+X", "+Y" and "+Z".
//
// The zero value is not valid; use OrientationOf or PositiveOrientation.
type Orientation struct {
	// SX, SY, SZ are each +1 or -1.
	SX, SY, SZ int
}

// PositiveOrientation is the canonical all-positive orientation used when the
// destination dominates the source, matching the paper's default setting.
var PositiveOrientation = Orientation{SX: 1, SY: 1, SZ: 1}

// OrientationOf returns the orientation of travel from s to d. Axes on which
// s and d agree default to the positive direction (no move is needed on them,
// so the choice does not affect minimal routing).
func OrientationOf(s, d Point) Orientation {
	o := Orientation{SX: Sign(d.X - s.X), SY: Sign(d.Y - s.Y), SZ: Sign(d.Z - s.Z)}
	if o.SX == 0 {
		o.SX = 1
	}
	if o.SY == 0 {
		o.SY = 1
	}
	if o.SZ == 0 {
		o.SZ = 1
	}
	return o
}

// Valid reports whether every sign is +1 or -1.
func (o Orientation) Valid() bool {
	ok := func(v int) bool { return v == 1 || v == -1 }
	return ok(o.SX) && ok(o.SY) && ok(o.SZ)
}

// String implements fmt.Stringer.
func (o Orientation) String() string {
	s := func(v int) string {
		if v >= 0 {
			return "+"
		}
		return "-"
	}
	return fmt.Sprintf("(%sX,%sY,%sZ)", s(o.SX), s(o.SY), s(o.SZ))
}

// Sign returns the orientation's sign along axis a.
func (o Orientation) Sign(a Axis) int {
	switch a {
	case AxisX:
		return o.SX
	case AxisY:
		return o.SY
	default:
		return o.SZ
	}
}

// Forward returns the "positive" direction of the orientation along axis a,
// i.e. the direction a minimal route moves on that axis.
func (o Orientation) Forward(a Axis) Direction {
	return DirectionOf(a, o.Sign(a))
}

// Backward returns the "negative" direction of the orientation along axis a.
func (o Orientation) Backward(a Axis) Direction {
	return DirectionOf(a, -o.Sign(a))
}

// Ahead returns p moved one hop forward (toward the destination) on axis a.
func (o Orientation) Ahead(p Point, a Axis) Point {
	return Step(p, o.Forward(a))
}

// Behind returns p moved one hop backward on axis a.
func (o Orientation) Behind(p Point, a Axis) Point {
	return Step(p, o.Backward(a))
}

// Index returns a stable index in [0,8) identifying the orientation
// (octant number). Useful for caching per-orientation labelings.
func (o Orientation) Index() int {
	idx := 0
	if o.SX < 0 {
		idx |= 1
	}
	if o.SY < 0 {
		idx |= 2
	}
	if o.SZ < 0 {
		idx |= 4
	}
	return idx
}

// OrientationFromIndex is the inverse of Orientation.Index.
func OrientationFromIndex(idx int) Orientation {
	o := PositiveOrientation
	if idx&1 != 0 {
		o.SX = -1
	}
	if idx&2 != 0 {
		o.SY = -1
	}
	if idx&4 != 0 {
		o.SZ = -1
	}
	return o
}

// AllOrientations3D lists the eight octant orientations of a 3-D mesh.
func AllOrientations3D() []Orientation {
	out := make([]Orientation, 8)
	for i := range out {
		out[i] = OrientationFromIndex(i)
	}
	return out
}

// AllOrientations2D lists the four quadrant orientations of a 2-D mesh
// (SZ fixed to +1).
func AllOrientations2D() []Orientation {
	out := make([]Orientation, 4)
	for i := range out {
		out[i] = OrientationFromIndex(i)
	}
	return out
}

// Canon maps a mesh point into the orientation's canonical frame anchored at
// src: the returned point has non-negative coordinates exactly for points in
// the "ahead" octant of src.
func (o Orientation) Canon(src, p Point) Point {
	return Point{
		X: (p.X - src.X) * o.SX,
		Y: (p.Y - src.Y) * o.SY,
		Z: (p.Z - src.Z) * o.SZ,
	}
}

// Uncanon maps a canonical-frame point back to mesh coordinates.
func (o Orientation) Uncanon(src, q Point) Point {
	return Point{
		X: src.X + q.X*o.SX,
		Y: src.Y + q.Y*o.SY,
		Z: src.Z + q.Z*o.SZ,
	}
}
