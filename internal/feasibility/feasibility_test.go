package feasibility

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/meshtest"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
)

func build(m *mesh.Mesh, s, d grid.Point) (*labeling.Labeling, *region.ComponentSet) {
	l := labeling.Compute(m, grid.OrientationOf(s, d))
	return l, region.FindMCCs(l)
}

func TestFaultFreeAlwaysFeasible(t *testing.T) {
	m := mesh.New3D(6, 6, 6)
	s, d := grid.Point{}, grid.Point{X: 5, Y: 5, Z: 5}
	l, cs := build(m, s, d)
	if !Theorem(cs, s, d) || !GroundTruth(cs, s, d) {
		t.Error("fault-free mesh must be feasible")
	}
	res := Detect3D(l, s, d)
	if !res.Feasible {
		t.Error("detection sweeps must succeed on a fault-free mesh")
	}
	if len(res.Traces) != 3 {
		t.Errorf("expected 3 sweep traces, got %d", len(res.Traces))
	}
}

// TestFigure4Infeasible reproduces Figure 4(a): an MCC wall cutting across the
// routing quadrant makes the +Y detection message overshoot x = xd, so the
// check answers NO.
func TestFigure4Infeasible(t *testing.T) {
	m := mesh.New2D(10, 10)
	// A wall spanning the columns 0..4 at y=5, forcing any route from (0,0)
	// toward (4,8) to leave the column range 0..4.
	for x := 0; x <= 4; x++ {
		m.SetFaulty(grid.Point{X: x, Y: 5}, true)
	}
	s, d := grid.Point{}, grid.Point{X: 4, Y: 8}
	l, cs := build(m, s, d)

	if Theorem(cs, s, d) {
		t.Error("theorem should report infeasible")
	}
	if GroundTruth(cs, s, d) {
		t.Error("ground truth should report infeasible")
	}
	res := Detect2D(l, s, d)
	if res.Feasible {
		t.Error("detection should report infeasible")
	}
	// The +X walker (second message) still succeeds; only the +Y walker fails.
	if len(res.Traces) != 2 {
		t.Fatalf("expected 2 walker traces, got %d", len(res.Traces))
	}
}

// TestFigure4Feasible reproduces Figure 4(b): the wall is short enough that
// both detection messages succeed and a minimal path exists.
func TestFigure4Feasible(t *testing.T) {
	m := mesh.New2D(10, 10)
	for x := 2; x <= 4; x++ {
		m.SetFaulty(grid.Point{X: x, Y: 5}, true)
	}
	s, d := grid.Point{}, grid.Point{X: 8, Y: 8}
	l, cs := build(m, s, d)
	if !Theorem(cs, s, d) || !GroundTruth(cs, s, d) {
		t.Error("pair should be feasible")
	}
	res := Detect2D(l, s, d)
	if !res.Feasible {
		t.Error("detection should report feasible")
	}
	if res.Hops == 0 {
		t.Error("detection hops should be counted")
	}
}

// TestFigure7DegenerateStrip exercises the narrow-strip case where two distant
// MCCs jointly block the route: the merged information (Theorem) and the
// detection walkers must both report infeasible.
func TestFigure7DegenerateStrip(t *testing.T) {
	m := mesh.New3D(8, 8, 8)
	// Route confined to the plane z=3 and the rows y∈{2,3}.
	s := grid.Point{X: 0, Y: 3, Z: 3}
	d := grid.Point{X: 6, Y: 2, Z: 3}
	m.AddFaults(grid.Point{X: 2, Y: 3, Z: 3}, grid.Point{X: 5, Y: 2, Z: 3})
	l, cs := build(m, s, d)
	if GroundTruth(cs, s, d) {
		t.Fatal("strip should be blocked")
	}
	if Theorem(cs, s, d) {
		t.Error("theorem must report infeasible for the jointly blocked strip")
	}
	if SingleMCCExplains(cs, s, d) {
		t.Error("no single MCC blocks this pair; only the merged information does")
	}
	if res := Detect3D(l, s, d); res.Feasible {
		t.Error("detection sweeps must report infeasible")
	}
}

// TestTheoremMatchesGroundTruth2D: property I5 in 2-D.
func TestTheoremMatchesGroundTruth2D(t *testing.T) {
	r := rng.New(42)
	checked := 0
	for trial := 0; trial < 150; trial++ {
		m := meshtest.Random2D(r, 10, 4+r.Intn(20))
		s, d, ok := meshtest.SafePair(r, m, 3)
		if !ok {
			continue
		}
		checked++
		_, cs := build(m, s, d)
		if Theorem(cs, s, d) != GroundTruth(cs, s, d) {
			t.Fatalf("trial %d: theorem != ground truth for %v -> %v", trial, s, d)
		}
	}
	if checked < 60 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

// TestDetect2DMatchesGroundTruth: the distributed detection walkers implement
// Theorem 1 exactly.
func TestDetect2DMatchesGroundTruth(t *testing.T) {
	r := rng.New(7)
	checked := 0
	for trial := 0; trial < 200; trial++ {
		m := meshtest.Random2D(r, 10, 4+r.Intn(22))
		s, d, ok := meshtest.SafePair(r, m, 3)
		if !ok {
			continue
		}
		checked++
		l, cs := build(m, s, d)
		want := GroundTruth(cs, s, d)
		got := Detect2D(l, s, d).Feasible
		if got != want {
			t.Fatalf("trial %d: detection=%v ground truth=%v for %v -> %v (faults %v)",
				trial, got, want, s, d, m.Faults())
		}
	}
	if checked < 80 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

// TestDetect3DMatchesGroundTruth: the three-surface sweep implements
// Theorem 2 exactly.
func TestDetect3DMatchesGroundTruth(t *testing.T) {
	r := rng.New(13)
	checked := 0
	for trial := 0; trial < 150; trial++ {
		m := meshtest.Random3D(r, 7, 5+r.Intn(45))
		s, d, ok := meshtest.SafePair(r, m, 4)
		if !ok {
			continue
		}
		checked++
		l, cs := build(m, s, d)
		want := GroundTruth(cs, s, d)
		got := Detect3D(l, s, d).Feasible
		if got != want {
			t.Fatalf("trial %d: detection=%v ground truth=%v for %v -> %v (faults %v)",
				trial, got, want, s, d, m.Faults())
		}
	}
	if checked < 60 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

// TestUnsafeAvoidableEqualsTheorem cross-checks the two formulations.
func TestUnsafeAvoidableEqualsTheorem(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		m := meshtest.Random3D(r, 6, 4+r.Intn(25))
		s, d, ok := meshtest.SafePair(r, m, 3)
		if !ok {
			continue
		}
		_, cs := build(m, s, d)
		if Theorem(cs, s, d) != UnsafeAvoidable(cs, s, d) {
			t.Fatalf("trial %d: Theorem and UnsafeAvoidable disagree", trial)
		}
	}
}

func TestCheckDelegatesToTheorem(t *testing.T) {
	m := mesh.New2D(6, 6)
	m.AddFaults(grid.Point{X: 2, Y: 2})
	s, d := grid.Point{}, grid.Point{X: 5, Y: 5}
	_, cs := build(m, s, d)
	if Check(cs, s, d) != Theorem(cs, s, d) {
		t.Error("Check must agree with Theorem")
	}
}
