// Package feasibility implements the paper's sufficient and necessary
// conditions for the existence of a minimal path in the presence of MCCs:
//
//   - Theorem 1 (2-D) and Theorem 2 (3-D), evaluated geometrically through the
//     per-MCC blocking relation of package region, and
//   - the operational detection procedures run by the source node: the two
//     detection-message walkers of Algorithm 3 step 1 in 2-D and the three
//     RMP-surface sweeps of Algorithm 6 step 1 in 3-D.
//
// The geometric check is the reference; the walkers are the distributed
// implementation (package protocol re-runs them hop by hop as real messages).
// Both are cross-checked against the ground-truth monotone-path existence of
// package minimal in the test suite.
package feasibility

import (
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/minimal"
	"mccmesh/internal/region"
)

// Result is the outcome of a feasibility check, with enough detail for the
// figures and for debugging disagreements between methods.
type Result struct {
	// Feasible reports whether a minimal path from the source to the
	// destination exists.
	Feasible bool
	// Traces holds, per detection message (2 in 2-D, 3 in 3-D), the nodes the
	// message visited. Empty for the geometric checks.
	Traces [][]grid.Point
	// Hops is the total number of hops taken by all detection messages.
	Hops int
}

// GroundTruth reports whether a minimal path from s to d avoiding all faulty
// nodes exists. By the MCC "ultimate fault region" property this coincides
// with the MCC-model feasibility whenever s and d are safe.
func GroundTruth(cs *region.ComponentSet, s, d grid.Point) bool {
	return minimal.Exists(cs.Mesh, minimal.AvoidFaulty(cs.Mesh), s, d)
}

// Theorem evaluates the paper's sufficient and necessary condition
// (Theorem 1 in 2-D, Theorem 2 in 3-D) geometrically: a minimal path exists
// exactly when the union of the fault regions — the information carried by the
// merged boundary records — leaves some monotone s→d path open. (Boundary
// construction merges the forbidden regions of MCCs whose boundaries touch,
// which is why the union, not any single MCC, is the right obstacle set.)
func Theorem(cs *region.ComponentSet, s, d grid.Point) bool {
	return !cs.BlockedByUnion(s, d)
}

// SingleMCCExplains reports whether a single MCC alone accounts for the
// infeasibility of the pair (used by the E5 analysis: how often the merged
// information is actually needed).
func SingleMCCExplains(cs *region.ComponentSet, s, d grid.Point) bool {
	return cs.BlockedByAny(s, d)
}

// UnsafeAvoidable reports whether a monotone path avoiding every unsafe node
// exists; it is the union-based restatement of the theorem and is used to
// cross-check the per-MCC formulation.
func UnsafeAvoidable(cs *region.ComponentSet, s, d grid.Point) bool {
	return !cs.BlockedByUnion(s, d)
}

// Detect2D runs the two detection-message walkers of Algorithm 3 step 1 over
// a 2-D labelling. The first walker prefers the forward Y direction and turns
// forward X around MCCs; it must reach the segment [0:xd, yd:yd]. The second
// prefers forward X and must reach [xd:xd, 0:yd]. Both must succeed for the
// routing to be feasible.
func Detect2D(l *labeling.Labeling, s, d grid.Point) Result {
	orient := grid.OrientationOf(s, d)
	res := Result{Feasible: true}
	for _, spec := range []struct{ prefer, detour grid.Axis }{
		{grid.AxisY, grid.AxisX},
		{grid.AxisX, grid.AxisY},
	} {
		ok, trace := walk2D(l, orient, s, d, spec.prefer, spec.detour)
		res.Traces = append(res.Traces, trace)
		res.Hops += len(trace) - 1
		if !ok {
			res.Feasible = false
		}
	}
	return res
}

// walk2D advances from s preferring the forward `prefer` axis, stepping along
// the forward `detour` axis when the preferred neighbour is unsafe, and never
// overshooting the destination's detour coordinate. It succeeds when the
// preferred coordinate reaches the destination's.
func walk2D(l *labeling.Labeling, orient grid.Orientation, s, d grid.Point, prefer, detour grid.Axis) (bool, []grid.Point) {
	cur := s
	trace := []grid.Point{s}
	dc := orient.Canon(s, d)
	cc := grid.Point{}
	maxHops := l.Mesh().NodeCount() + 1
	for hop := 0; hop < maxHops; hop++ {
		if cc.Axis(prefer) >= dc.Axis(prefer) {
			return true, trace
		}
		next := orient.Ahead(cur, prefer)
		if l.Safe(next) {
			cur = next
			cc = orient.Canon(s, cur)
			trace = append(trace, cur)
			continue
		}
		// Preferred direction blocked: detour forward along the other axis.
		if cc.Axis(detour) >= dc.Axis(detour) {
			return false, trace // would leave the region of minimal paths
		}
		side := orient.Ahead(cur, detour)
		if !l.Safe(side) {
			// Cannot happen when s is safe (safe-frontier lemma); treated as
			// failure for robustness.
			return false, trace
		}
		cur = side
		cc = orient.Canon(s, cur)
		trace = append(trace, cur)
	}
	return false, trace
}

// Detect3D runs the three RMP-surface sweeps of Algorithm 6 step 1 over a 3-D
// labelling. Each sweep floods two forward directions and may take detour
// steps along the remaining forward direction when blocked; it must reach the
// prescribed face of the region of minimal paths (RMP). All three must succeed.
func Detect3D(l *labeling.Labeling, s, d grid.Point) Result {
	orient := grid.OrientationOf(s, d)
	res := Result{Feasible: true}
	// Sweep definitions follow Algorithm 6: the (−X)-surface propagates +Y/+Z
	// with +X detours and must reach the y = yd face; (−Y) propagates +X/+Z
	// with +Y detours toward z = zd; (−Z) propagates +X/+Y with +Z detours
	// toward x = xd.
	sweeps := []struct {
		spread [2]grid.Axis
		detour grid.Axis
		target grid.Axis
	}{
		{[2]grid.Axis{grid.AxisY, grid.AxisZ}, grid.AxisX, grid.AxisY},
		{[2]grid.Axis{grid.AxisX, grid.AxisZ}, grid.AxisY, grid.AxisZ},
		{[2]grid.Axis{grid.AxisX, grid.AxisY}, grid.AxisZ, grid.AxisX},
	}
	for _, sw := range sweeps {
		ok, visited, hops := sweep3D(l, orient, s, d, sw.spread, sw.detour, sw.target)
		res.Traces = append(res.Traces, visited)
		res.Hops += hops
		if !ok {
			res.Feasible = false
		}
	}
	return res
}

// sweep3D floods from s across safe nodes of the box spanned by s and d.
// Moves along the two spread axes are always allowed; a move along the detour
// axis is allowed only from nodes whose spread-axis progress is blocked by an
// unsafe node (the "+X turn" of the paper). The sweep succeeds when it reaches
// a node whose coordinate along the target axis equals the destination's.
func sweep3D(l *labeling.Labeling, orient grid.Orientation, s, d grid.Point, spread [2]grid.Axis, detour, target grid.Axis) (bool, []grid.Point, int) {
	dc := orient.Canon(s, d)
	box := grid.BoxOf(s, d)
	visited := map[grid.Point]bool{s: true}
	queue := []grid.Point{s}
	var order []grid.Point
	hops := 0
	success := false
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		uc := orient.Canon(s, u)
		if uc.Axis(target) >= dc.Axis(target) {
			success = true
			// Keep flooding so the hop count reflects the full detection cost,
			// but the result is already known; stop early for efficiency.
			break
		}
		tryStep := func(a grid.Axis) {
			if uc.Axis(a) >= dc.Axis(a) {
				return
			}
			v := orient.Ahead(u, a)
			if !box.Contains(v) || visited[v] || !l.Safe(v) {
				return
			}
			visited[v] = true
			hops++
			queue = append(queue, v)
		}
		// Spread moves.
		blocked := false
		for _, a := range spread {
			if uc.Axis(a) < dc.Axis(a) {
				v := orient.Ahead(u, a)
				if !l.Safe(v) {
					blocked = true
				}
			}
			tryStep(a)
		}
		// Detour move only when a spread direction is blocked by an MCC.
		if blocked {
			tryStep(detour)
		}
	}
	return success, order, hops
}

// Check runs the appropriate feasibility procedure for the mesh
// dimensionality: the geometric Theorem check, which is exact. Use Detect2D /
// Detect3D for the operational (message-based) variants.
func Check(cs *region.ComponentSet, s, d grid.Point) bool {
	return Theorem(cs, s, d)
}
