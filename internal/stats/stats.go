// Package stats provides the small statistical and tabulation helpers the
// experiment harness uses: running summaries (mean, standard deviation,
// confidence intervals), integer histograms with exact percentiles (packet
// latencies) and plain-text / CSV table rendering.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary accumulates observations of one metric.
type Summary struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// AddBool records a boolean observation as 0/1 (for success rates).
func (s *Summary) AddBool(b bool) {
	if b {
		s.Add(1)
	} else {
		s.Add(0)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min and Max return the observed extremes (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (0 for fewer than two
// observations).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	variance := (s.sumSq - float64(s.n)*mean*mean) / float64(s.n-1)
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using the normal approximation.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// Histogram counts observations of a non-negative integer metric (hop counts,
// tick latencies). It stores exact per-value counts, so percentiles are exact
// rather than approximated, and merging shards is associative — the parallel
// sweep runner relies on both.
type Histogram struct {
	counts []int64
	n      int64
	sum    int64
}

// Add records one observation. It panics on negative values: the histogram is
// meant for counts and durations.
func (h *Histogram) Add(v int) { h.AddN(v, 1) }

// AddN records k observations of the value v.
func (h *Histogram) AddN(v int, k int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram value %d", v))
	}
	if k <= 0 {
		return
	}
	if v >= len(h.counts) {
		grown := make([]int64, v+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[v] += k
	h.n += k
	h.sum += int64(v) * k
}

// Merge folds every observation of o into h. Merging is order-independent, so
// shards combined in any order produce the same histogram.
func (h *Histogram) Merge(o *Histogram) {
	for v, c := range o.counts {
		if c > 0 {
			h.AddN(v, c)
		}
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() int {
	for v, c := range h.counts {
		if c > 0 {
			return v
		}
	}
	return 0
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// Percentile returns the nearest-rank p-th percentile for p in [0,1]: the
// smallest value v such that at least ceil(p*N) observations are ≤ v. It
// returns 0 when the histogram is empty.
func (h *Histogram) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for v, c := range h.counts {
		cum += c
		if cum >= rank {
			return v
		}
	}
	return len(h.counts) - 1
}

// Percentiles returns the nearest-rank percentile for each requested p.
func (h *Histogram) Percentiles(ps ...float64) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = h.Percentile(p)
	}
	return out
}

// Table is a simple named grid of cells used by the experiments and the CLI.
type Table struct {
	// Title appears above the rendered table.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes are printed below the table.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				b.WriteString(pad(cell, widths[i]))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(note)
		b.WriteString("\n")
	}
	return b.String()
}

// CSV returns the table as comma-separated values (no notes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteString(",")
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteString("\n")
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with a sensible number of decimals for table cells.
func F(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Pct formats a ratio in [0,1] as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
