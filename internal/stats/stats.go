// Package stats provides the small statistical and tabulation helpers the
// experiment harness uses: running summaries (mean, standard deviation,
// confidence intervals) and plain-text / CSV table rendering.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary accumulates observations of one metric.
type Summary struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// AddBool records a boolean observation as 0/1 (for success rates).
func (s *Summary) AddBool(b bool) {
	if b {
		s.Add(1)
	} else {
		s.Add(0)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min and Max return the observed extremes (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (0 for fewer than two
// observations).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	variance := (s.sumSq - float64(s.n)*mean*mean) / float64(s.n-1)
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using the normal approximation.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// Table is a simple named grid of cells used by the experiments and the CLI.
type Table struct {
	// Title appears above the rendered table.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes are printed below the table.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				b.WriteString(pad(cell, widths[i]))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(note)
		b.WriteString("\n")
	}
	return b.String()
}

// CSV returns the table as comma-separated values (no notes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteString(",")
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteString("\n")
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with a sensible number of decimals for table cells.
func F(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Pct formats a ratio in [0,1] as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
