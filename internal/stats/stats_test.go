package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Errorf("mean = %v n = %d", s.Mean(), s.N())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.StdDev()-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("stddev = %v", s.StdDev())
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive")
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.CI95() != 0 {
		t.Error("empty summary should report zeros")
	}
	s.Add(7)
	if s.Mean() != 7 || s.StdDev() != 0 {
		t.Error("single observation summary wrong")
	}
}

func TestSummaryAddBool(t *testing.T) {
	var s Summary
	s.AddBool(true)
	s.AddBool(true)
	s.AddBool(false)
	s.AddBool(false)
	if s.Mean() != 0.5 {
		t.Errorf("bool mean = %v", s.Mean())
	}
}

func TestSummaryMeanWithinBounds(t *testing.T) {
	f := func(raw []int16) bool {
		var s Summary
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			s.Add(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= lo-1e-6 && s.Mean() <= hi+1e-6 && s.Min() == lo && s.Max() == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	// Nearest-rank percentiles of 1..100 are the percentile itself.
	for _, p := range []float64{0.50, 0.95, 0.99} {
		want := int(p * 100)
		if got := h.Percentile(p); got != want {
			t.Errorf("p%v = %d, want %d", p*100, got, want)
		}
	}
	if got := h.Percentile(1); got != 100 {
		t.Errorf("p100 = %d", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %d (rank clamps to 1, so the minimum)", got)
	}
	ps := h.Percentiles(0.5, 0.95, 0.99)
	if ps[0] != 50 || ps[1] != 95 || ps[2] != 99 {
		t.Errorf("Percentiles = %v", ps)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramAddNAndMerge(t *testing.T) {
	var a, b Histogram
	a.AddN(3, 4)
	a.Add(10)
	b.AddN(3, 1)
	b.AddN(7, 2)

	var ab, ba Histogram
	ab.Merge(&a)
	ab.Merge(&b)
	ba.Merge(&b)
	ba.Merge(&a)
	if ab.N() != 8 || ba.N() != 8 {
		t.Fatalf("merged N = %d / %d", ab.N(), ba.N())
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 1} {
		if ab.Percentile(p) != ba.Percentile(p) {
			t.Errorf("merge order changed p%v: %d vs %d", p*100, ab.Percentile(p), ba.Percentile(p))
		}
	}
	if ab.Percentile(0.5) != 3 || ab.Max() != 10 {
		t.Errorf("p50 = %d max = %d", ab.Percentile(0.5), ab.Max())
	}
}

func TestHistogramSkewedPercentiles(t *testing.T) {
	// 999 fast observations and one slow outlier: p50/p95/p99 stay at the fast
	// value; only p99.95+ reaches the outlier (the property E7 relies on).
	var h Histogram
	h.AddN(5, 999)
	h.Add(500)
	if h.Percentile(0.5) != 5 || h.Percentile(0.99) != 5 {
		t.Errorf("p50/p99 = %d/%d", h.Percentile(0.5), h.Percentile(0.99))
	}
	if h.Percentile(1) != 500 {
		t.Errorf("p100 = %d", h.Percentile(1))
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) should panic")
		}
	}()
	var h Histogram
	h.Add(-1)
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("n=%d", 2)
	out := tab.Render()
	for _, want := range []string{"demo", "a", "bb", "333", "note: n=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, underline, header, separator, 2 rows... plus note
		// title, ===, header, ----, row, row, note = 7
		if len(lines) != 7 {
			t.Errorf("unexpected rendered line count %d:\n%s", len(lines), out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"x", "y"}}
	tab.AddRow("1", "hello, world")
	csv := tab.CSV()
	if !strings.Contains(csv, `"hello, world"`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
}

func TestFormatters(t *testing.T) {
	if F(3) != "3" {
		t.Errorf("F(3) = %q", F(3))
	}
	if F(3.14159) != "3.142" {
		t.Errorf("F(3.14159) = %q", F(3.14159))
	}
	if F(123.456) != "123.5" {
		t.Errorf("F(123.456) = %q", F(123.456))
	}
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct(0.5) = %q", Pct(0.5))
	}
}
