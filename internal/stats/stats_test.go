package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Errorf("mean = %v n = %d", s.Mean(), s.N())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.StdDev()-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("stddev = %v", s.StdDev())
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive")
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.CI95() != 0 {
		t.Error("empty summary should report zeros")
	}
	s.Add(7)
	if s.Mean() != 7 || s.StdDev() != 0 {
		t.Error("single observation summary wrong")
	}
}

func TestSummaryAddBool(t *testing.T) {
	var s Summary
	s.AddBool(true)
	s.AddBool(true)
	s.AddBool(false)
	s.AddBool(false)
	if s.Mean() != 0.5 {
		t.Errorf("bool mean = %v", s.Mean())
	}
}

func TestSummaryMeanWithinBounds(t *testing.T) {
	f := func(raw []int16) bool {
		var s Summary
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			s.Add(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= lo-1e-6 && s.Mean() <= hi+1e-6 && s.Min() == lo && s.Max() == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("n=%d", 2)
	out := tab.Render()
	for _, want := range []string{"demo", "a", "bb", "333", "note: n=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, underline, header, separator, 2 rows... plus note
		// title, ===, header, ----, row, row, note = 7
		if len(lines) != 7 {
			t.Errorf("unexpected rendered line count %d:\n%s", len(lines), out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"x", "y"}}
	tab.AddRow("1", "hello, world")
	csv := tab.CSV()
	if !strings.Contains(csv, `"hello, world"`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
}

func TestFormatters(t *testing.T) {
	if F(3) != "3" {
		t.Errorf("F(3) = %q", F(3))
	}
	if F(3.14159) != "3.142" {
		t.Errorf("F(3.14159) = %q", F(3.14159))
	}
	if F(123.456) != "123.5" {
		t.Errorf("F(123.456) = %q", F(123.456))
	}
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct(0.5) = %q", Pct(0.5))
	}
}
