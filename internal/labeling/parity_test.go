package labeling

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

// TestAddFaultsMatchesFullRecompute pins the incremental relabelling to the
// full recompute on randomized fault sequences: starting from a labelled
// mesh, absorbing each fault batch with AddFaults must agree with a
// from-scratch Compute over the final fault set on everything the rest of
// the system consumes — the unsafe set (what routing avoids), the faulty
// count and the absorbed-healthy count. The useless/can't-reach *split* of a
// node eligible for both labels is worklist-order dependent (the rules tie;
// Compute meets such a node in its global sweep, AddFaults from the new
// fault's neighbourhood), so per-label equality is asserted only through the
// sums. Golden seeds keep the sequences stable across runs.
func TestAddFaultsMatchesFullRecompute(t *testing.T) {
	type shape struct {
		name string
		make func() *mesh.Mesh
	}
	shapes := []shape{
		{"2d-12x9", func() *mesh.Mesh { return mesh.New2D(12, 9) }},
		{"3d-8x8x8", func() *mesh.Mesh { return mesh.NewCube(8) }},
		{"3d-10x6x4", func() *mesh.Mesh { return mesh.New3D(10, 6, 4) }},
	}
	for _, sh := range shapes {
		for _, seed := range []uint64{1, 7, 42, 20050507} {
			for _, border := range []BorderPolicy{BorderSafe, BorderBlocked} {
				probe := sh.make()
				var orients []grid.Orientation
				if probe.Is2D() {
					orients = grid.AllOrientations2D()
				} else {
					orients = grid.AllOrientations3D()
				}
				for _, orient := range orients {
					m := sh.make()
					r := rng.New(seed)
					opts := Options{Border: border}
					// Initial faults, then the incremental labelling under test.
					initial := randomFaults(m, r, m.NodeCount()/12)
					inc := Compute(m, orient, opts)
					// Three batches of mid-run faults, absorbed incrementally.
					for batch := 0; batch < 3; batch++ {
						pts := randomFaults(m, r, 1+r.Intn(6))
						inc.AddFaults(pts)

						full := Compute(m, orient, opts)
						for i := 0; i < m.NodeCount(); i++ {
							got, want := inc.StatusAt(i), full.StatusAt(i)
							if got.Unsafe() != want.Unsafe() || (got == Faulty) != (want == Faulty) {
								t.Fatalf("%s seed=%d %v %v batch %d: node %v labelled %v incrementally, %v by full recompute (initial %d faults)",
									sh.name, seed, border, orient, batch, m.Point(i), got, want, len(initial))
							}
						}
						if inc.Count(Safe) != full.Count(Safe) || inc.Count(Faulty) != full.Count(Faulty) ||
							inc.NonFaultyUnsafeCount() != full.NonFaultyUnsafeCount() {
							t.Fatalf("%s seed=%d %v %v batch %d: counts diverged: inc %d/%d/%d safe/faulty/absorbed, full %d/%d/%d",
								sh.name, seed, border, orient, batch,
								inc.Count(Safe), inc.Count(Faulty), inc.NonFaultyUnsafeCount(),
								full.Count(Safe), full.Count(Faulty), full.NonFaultyUnsafeCount())
						}
						assertFixpoint(t, inc)
					}
				}
			}
		}
	}
}

// TestRemoveFaultsMatchesFullRecompute pins the incremental un-relabelling to
// the full recompute on randomized add/remove interleavings: starting from a
// labelled mesh, each batch either injects fresh faults (absorbed with
// AddFaults) or repairs a random subset of the live ones (absorbed with
// RemoveFaults), and after every batch the incremental labelling must agree
// with a from-scratch Compute over the current fault set on everything the
// rest of the system consumes — the unsafe set, the faulty set and the
// absorbed-healthy count. As with AddFaults, the useless/can't-reach split of
// dual-eligible nodes is worklist-order dependent, so per-label equality is
// asserted only through the sums; assertFixpoint proves the incremental
// result is a valid fixpoint in its own right.
func TestRemoveFaultsMatchesFullRecompute(t *testing.T) {
	type shape struct {
		name string
		make func() *mesh.Mesh
	}
	shapes := []shape{
		{"2d-12x9", func() *mesh.Mesh { return mesh.New2D(12, 9) }},
		{"3d-8x8x8", func() *mesh.Mesh { return mesh.NewCube(8) }},
		{"3d-10x6x4", func() *mesh.Mesh { return mesh.New3D(10, 6, 4) }},
	}
	for _, sh := range shapes {
		for _, seed := range []uint64{1, 7, 42, 20050507} {
			for _, border := range []BorderPolicy{BorderSafe, BorderBlocked} {
				probe := sh.make()
				var orients []grid.Orientation
				if probe.Is2D() {
					orients = grid.AllOrientations2D()
				} else {
					orients = grid.AllOrientations3D()
				}
				for _, orient := range orients {
					m := sh.make()
					r := rng.New(seed)
					opts := Options{Border: border}
					randomFaults(m, r, m.NodeCount()/10)
					inc := Compute(m, orient, opts)
					for batch := 0; batch < 6; batch++ {
						if r.Intn(2) == 0 && m.FaultCount() > 0 {
							pts := repairRandomFaults(m, r, 1+r.Intn(5))
							inc.RemoveFaults(pts)
						} else {
							pts := randomFaults(m, r, 1+r.Intn(6))
							inc.AddFaults(pts)
						}

						full := Compute(m, orient, opts)
						for i := 0; i < m.NodeCount(); i++ {
							got, want := inc.StatusAt(i), full.StatusAt(i)
							if got.Unsafe() != want.Unsafe() || (got == Faulty) != (want == Faulty) {
								t.Fatalf("%s seed=%d %v %v batch %d: node %v labelled %v incrementally, %v by full recompute",
									sh.name, seed, border, orient, batch, m.Point(i), got, want)
							}
						}
						if inc.Count(Safe) != full.Count(Safe) || inc.Count(Faulty) != full.Count(Faulty) ||
							inc.NonFaultyUnsafeCount() != full.NonFaultyUnsafeCount() {
							t.Fatalf("%s seed=%d %v %v batch %d: counts diverged: inc %d/%d/%d safe/faulty/absorbed, full %d/%d/%d",
								sh.name, seed, border, orient, batch,
								inc.Count(Safe), inc.Count(Faulty), inc.NonFaultyUnsafeCount(),
								full.Count(Safe), full.Count(Faulty), full.NonFaultyUnsafeCount())
						}
						assertFixpoint(t, inc)
					}
				}
			}
		}
	}
}

// TestRemoveFaultsUndoesAddFaults checks the round trip: injecting a batch and
// repairing exactly the same batch must land back on the original unsafe set
// and counts (the labels themselves may shuffle between useless and
// can't-reach for dual-eligible nodes, as everywhere else).
func TestRemoveFaultsUndoesAddFaults(t *testing.T) {
	for _, seed := range []uint64{11, 501} {
		m := mesh.NewCube(8)
		r := rng.New(seed)
		randomFaults(m, r, 45)
		l := Compute(m, grid.PositiveOrientation)
		before := Compute(m, grid.PositiveOrientation)

		pts := randomFaults(m, r, 12)
		l.AddFaults(pts)
		m.RemoveFaults(pts...)
		l.RemoveFaults(pts)

		for i := 0; i < m.NodeCount(); i++ {
			if l.StatusAt(i).Unsafe() != before.StatusAt(i).Unsafe() {
				t.Fatalf("seed=%d: node %v unsafe=%v after add+remove round trip, want %v",
					seed, m.Point(i), l.StatusAt(i).Unsafe(), before.StatusAt(i).Unsafe())
			}
		}
		if l.Count(Faulty) != before.Count(Faulty) || l.NonFaultyUnsafeCount() != before.NonFaultyUnsafeCount() {
			t.Fatalf("seed=%d: counts not restored: faulty %d vs %d, absorbed %d vs %d",
				seed, l.Count(Faulty), before.Count(Faulty), l.NonFaultyUnsafeCount(), before.NonFaultyUnsafeCount())
		}
	}
}

// repairRandomFaults clears n random live faults on the mesh and returns them.
func repairRandomFaults(m *mesh.Mesh, r *rng.Rand, n int) []grid.Point {
	var pts []grid.Point
	for len(pts) < n && m.FaultCount() > 0 {
		idx := r.Intn(m.NodeCount())
		if !m.FaultyAt(idx) {
			continue
		}
		p := m.Point(idx)
		m.SetFaulty(p, false)
		pts = append(pts, p)
	}
	return pts
}

// assertFixpoint checks the labelling invariants the paper's rules demand of
// any valid result: every useless node has all forward neighbours blocked,
// every can't-reach node all backward neighbours, and every safe node fails
// both rules. (This is what makes the incremental result sound even when its
// useless/can't-reach split differs from a cold recompute's.)
func assertFixpoint(t *testing.T, l *Labeling) {
	t.Helper()
	m := l.Mesh()
	orient := l.Orientation()
	border := l.Options().Border == BorderBlocked
	blockedF := func(p grid.Point, a grid.Axis) bool {
		q := orient.Ahead(p, a)
		if !m.InBounds(q) {
			return border
		}
		s := l.Status(q)
		return s == Faulty || s == Useless
	}
	blockedB := func(p grid.Point, a grid.Axis) bool {
		q := orient.Behind(p, a)
		if !m.InBounds(q) {
			return border
		}
		s := l.Status(q)
		return s == Faulty || s == CantReach
	}
	all := func(pred func(grid.Point, grid.Axis) bool, p grid.Point) bool {
		for _, a := range m.Axes() {
			if !pred(p, a) {
				return false
			}
		}
		return true
	}
	m.ForEach(func(p grid.Point) {
		switch l.Status(p) {
		case Useless:
			if !all(blockedF, p) {
				t.Fatalf("fixpoint violated: %v labelled useless with an open forward neighbour", p)
			}
		case CantReach:
			if !all(blockedB, p) {
				t.Fatalf("fixpoint violated: %v labelled can't-reach with an open backward neighbour", p)
			}
		case Safe:
			if all(blockedF, p) || all(blockedB, p) {
				t.Fatalf("fixpoint violated: %v labelled safe but satisfies a promotion rule", p)
			}
		}
	})
}

// randomFaults marks n random healthy nodes faulty and returns them.
func randomFaults(m *mesh.Mesh, r *rng.Rand, n int) []grid.Point {
	var pts []grid.Point
	for len(pts) < n {
		idx := r.Intn(m.NodeCount())
		if m.FaultyAt(idx) {
			continue
		}
		p := m.Point(idx)
		m.SetFaulty(p, true)
		pts = append(pts, p)
	}
	return pts
}

// TestAddFaultsOnAbsorbedNode exercises the corner where a new fault lands on
// a node already absorbed as useless/can't-reach: the label flips to Faulty,
// the counts rebalance, and the neighbourhood is re-examined.
func TestAddFaultsOnAbsorbedNode(t *testing.T) {
	m := mesh.New2D(6, 6)
	// A pocket that makes (1,1) useless under the +X+Y orientation: both of
	// its forward neighbours are faulty.
	m.AddFaults(grid.Point{X: 2, Y: 1}, grid.Point{X: 1, Y: 2})
	l := Compute(m, grid.PositiveOrientation)
	if l.Status(grid.Point{X: 1, Y: 1}) != Useless {
		t.Fatalf("setup: (1,1) should be useless, got %v", l.Status(grid.Point{X: 1, Y: 1}))
	}
	// The fault lands on the absorbed node itself.
	p := grid.Point{X: 1, Y: 1}
	m.SetFaulty(p, true)
	l.AddFaults([]grid.Point{p})
	full := Compute(m, grid.PositiveOrientation)
	for i := 0; i < m.NodeCount(); i++ {
		if l.StatusAt(i) != full.StatusAt(i) {
			t.Fatalf("node %v: %v incrementally vs %v full", m.Point(i), l.StatusAt(i), full.StatusAt(i))
		}
	}
	if l.Count(Useless) != full.Count(Useless) || l.Count(Faulty) != full.Count(Faulty) {
		t.Fatalf("counts diverged: inc useless=%d faulty=%d, full useless=%d faulty=%d",
			l.Count(Useless), l.Count(Faulty), full.Count(Useless), full.Count(Faulty))
	}
}
