package labeling

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

// TestFigure1Staircase reproduces the flavour of Figure 1: diagonal faults in
// a 2-D mesh absorb the healthy nodes wedged between them.
func TestFigure1Staircase(t *testing.T) {
	m := mesh.New2D(10, 10)
	m.AddFaults(grid.Point{X: 3, Y: 6}, grid.Point{X: 4, Y: 5}, grid.Point{X: 5, Y: 4})
	l := Compute(m, grid.PositiveOrientation)

	// The pockets between diagonal faults on the source side become useless.
	for _, p := range []grid.Point{{X: 3, Y: 5}, {X: 4, Y: 4}, {X: 3, Y: 4}} {
		if got := l.Status(p); got != Useless {
			t.Errorf("node %v: status %v, want useless", p, got)
		}
	}
	if got := l.Count(Useless); got != 3 {
		t.Errorf("useless count = %d, want 3", got)
	}
	// The mirrored pockets on the destination side become can't-reach.
	if got := l.Count(CantReach); got != 3 {
		t.Errorf("can't-reach count = %d, want 3", got)
	}
	// Far away nodes stay safe.
	if !l.Safe(grid.Point{X: 0, Y: 0}) || !l.Safe(grid.Point{X: 9, Y: 9}) {
		t.Error("distant nodes should stay safe")
	}
}

// TestFigure1CantReach mirrors the staircase on the other side: nodes wedged
// behind the faults (toward the source) become can't-reach.
func TestFigure1CantReach(t *testing.T) {
	m := mesh.New2D(10, 10)
	m.AddFaults(grid.Point{X: 3, Y: 6}, grid.Point{X: 4, Y: 5}, grid.Point{X: 5, Y: 4})
	l := Compute(m, grid.PositiveOrientation)
	// (4,6) has -X neighbour (3,6) faulty and -Y neighbour (4,5) faulty.
	if got := l.Status(grid.Point{X: 4, Y: 6}); got != CantReach {
		t.Errorf("(4,6) status %v, want can't-reach", got)
	}
	if got := l.Status(grid.Point{X: 5, Y: 5}); got != CantReach {
		t.Errorf("(5,5) status %v, want can't-reach", got)
	}
}

// TestFigure5 reproduces the paper's 3-D worked example exactly: the fault set
// of Figure 5 labels (5,5,5) useless and (5,5,7) can't-reach and nothing else.
func TestFigure5(t *testing.T) {
	m := mesh.New3D(10, 10, 10)
	faults := []grid.Point{
		{X: 5, Y: 5, Z: 6}, {X: 6, Y: 5, Z: 5}, {X: 5, Y: 6, Z: 5},
		{X: 6, Y: 7, Z: 5}, {X: 7, Y: 6, Z: 5}, {X: 5, Y: 4, Z: 7},
		{X: 4, Y: 5, Z: 7}, {X: 7, Y: 8, Z: 4},
	}
	m.AddFaults(faults...)
	l := Compute(m, grid.PositiveOrientation)

	if got := l.Status(grid.Point{X: 5, Y: 5, Z: 5}); got != Useless {
		t.Errorf("(5,5,5) = %v, want useless", got)
	}
	if got := l.Status(grid.Point{X: 5, Y: 5, Z: 7}); got != CantReach {
		t.Errorf("(5,5,7) = %v, want can't-reach", got)
	}
	if got := l.Count(Useless); got != 1 {
		t.Errorf("useless count = %d, want 1", got)
	}
	if got := l.Count(CantReach); got != 1 {
		t.Errorf("can't-reach count = %d, want 1", got)
	}
	if got := l.Count(Faulty); got != len(faults) {
		t.Errorf("faulty count = %d, want %d", got, len(faults))
	}
	// The paper highlights the hole at (6,6,5): it must stay safe.
	if !l.Safe(grid.Point{X: 6, Y: 6, Z: 5}) {
		t.Error("(6,6,5) should remain safe (the hole of Figure 5)")
	}
	if got := l.NonFaultyUnsafeCount(); got != 2 {
		t.Errorf("non-faulty unsafe count = %d, want 2", got)
	}
}

// TestUselessRule3DNeedsAllThree checks the 3-D rule: two blocked forward
// neighbours are not enough (the +Z escape keeps the node safe).
func TestUselessRule3DNeedsAllThree(t *testing.T) {
	m := mesh.New3D(6, 6, 6)
	m.AddFaults(grid.Point{X: 3, Y: 2, Z: 2}, grid.Point{X: 2, Y: 3, Z: 2})
	l := Compute(m, grid.PositiveOrientation)
	if !l.Safe(grid.Point{X: 2, Y: 2, Z: 2}) {
		t.Error("node with a free +Z neighbour must stay safe in 3-D")
	}
	// Adding the +Z fault flips it.
	m.AddFaults(grid.Point{X: 2, Y: 2, Z: 3})
	l = Compute(m, grid.PositiveOrientation)
	if got := l.Status(grid.Point{X: 2, Y: 2, Z: 2}); got != Useless {
		t.Errorf("fully enclosed node = %v, want useless", got)
	}
}

func TestNoFaultsNoLabels(t *testing.T) {
	m := mesh.New3D(5, 5, 5)
	l := Compute(m, grid.PositiveOrientation)
	if l.UnsafeCount() != 0 {
		t.Errorf("fault-free mesh has %d unsafe nodes", l.UnsafeCount())
	}
	if l.Promotions() != 0 {
		t.Error("fault-free mesh should promote no nodes")
	}
}

func TestOrientationSymmetry(t *testing.T) {
	// A configuration that is useless for (+X,+Y) must be can't-reach for the
	// mirrored (-X,-Y) orientation, by symmetry of the definitions.
	m := mesh.New2D(8, 8)
	m.AddFaults(grid.Point{X: 4, Y: 5}, grid.Point{X: 5, Y: 4})
	pos := Compute(m, grid.Orientation{SX: 1, SY: 1, SZ: 1})
	neg := Compute(m, grid.Orientation{SX: -1, SY: -1, SZ: 1})
	p := grid.Point{X: 4, Y: 4}
	if pos.Status(p) != Useless {
		t.Fatalf("expected %v useless under (+X,+Y), got %v", p, pos.Status(p))
	}
	if neg.Status(p) != CantReach {
		t.Fatalf("expected %v can't-reach under (-X,-Y), got %v", p, neg.Status(p))
	}
}

func TestBorderPolicyDefaultSafe(t *testing.T) {
	m := mesh.New2D(6, 6)
	// A fault next to the +Y border: under the default policy the node between
	// the fault and the border stays safe.
	m.AddFaults(grid.Point{X: 3, Y: 5})
	l := Compute(m, grid.PositiveOrientation)
	if !l.Safe(grid.Point{X: 2, Y: 5}) {
		t.Error("border nodes must stay safe under BorderSafe")
	}
	lb := Compute(m, grid.PositiveOrientation, Options{Border: BorderBlocked})
	if lb.Status(grid.Point{X: 2, Y: 5}) != Useless {
		t.Error("BorderBlocked should absorb the node next to the border fault")
	}
}

// TestMonotonicity: adding a fault never removes unsafe labels (property I1).
func TestMonotonicity(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 30; trial++ {
		m := mesh.New3D(7, 7, 7)
		for i := 0; i < 10; i++ {
			m.SetFaulty(m.Point(r.Intn(m.NodeCount())), true)
		}
		before := Compute(m, grid.PositiveOrientation)
		// Add one more fault.
		var extra grid.Point
		for {
			extra = m.Point(r.Intn(m.NodeCount()))
			if !m.IsFaulty(extra) {
				break
			}
		}
		m.SetFaulty(extra, true)
		after := Compute(m, grid.PositiveOrientation)
		m.ForEach(func(p grid.Point) {
			if before.Unsafe(p) && !after.Unsafe(p) {
				t.Errorf("trial %d: node %v lost its unsafe label after adding fault %v", trial, p, extra)
			}
		})
	}
}

// TestRuleSoundness verifies that every label is justified by its definition
// (property I1) and the safe-frontier lemma (property I2) holds.
func TestRuleSoundness(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		var m *mesh.Mesh
		if trial%2 == 0 {
			m = mesh.New2D(12, 12)
		} else {
			m = mesh.New3D(8, 8, 8)
		}
		n := 5 + r.Intn(30)
		for i := 0; i < n; i++ {
			m.SetFaulty(m.Point(r.Intn(m.NodeCount())), true)
		}
		for _, orient := range []grid.Orientation{grid.PositiveOrientation, {SX: -1, SY: 1, SZ: -1}} {
			l := Compute(m, orient)
			m.ForEach(func(p grid.Point) {
				st := l.Status(p)
				switch st {
				case Faulty:
					if !m.IsFaulty(p) {
						t.Fatalf("non-faulty node labelled faulty at %v", p)
					}
				case Useless:
					for _, a := range m.Axes() {
						q := orient.Ahead(p, a)
						if !m.InBounds(q) {
							t.Fatalf("useless node %v at the border under BorderSafe", p)
						}
						if s := l.Status(q); s != Faulty && s != Useless {
							t.Fatalf("useless node %v has forward neighbour %v with status %v", p, q, s)
						}
					}
				case CantReach:
					for _, a := range m.Axes() {
						q := orient.Behind(p, a)
						if !m.InBounds(q) {
							t.Fatalf("can't-reach node %v at the border under BorderSafe", p)
						}
						if s := l.Status(q); s != Faulty && s != CantReach {
							t.Fatalf("can't-reach node %v has backward neighbour %v with status %v", p, q, s)
						}
					}
				case Safe:
					// Safe-frontier lemma: not all forward neighbours may be
					// faulty-or-useless, and the node directly ahead can never
					// be can't-reach.
					allBlocked := true
					for _, a := range m.Axes() {
						q := orient.Ahead(p, a)
						if !m.InBounds(q) {
							allBlocked = false
							continue
						}
						s := l.Status(q)
						if s == CantReach {
							t.Fatalf("safe node %v has a can't-reach forward neighbour %v", p, q)
						}
						if s == Safe {
							allBlocked = false
						}
					}
					if allBlocked {
						t.Fatalf("safe node %v has all forward neighbours faulty/useless", p)
					}
				}
			})
		}
	}
}

func TestComputeAll(t *testing.T) {
	m := mesh.New3D(5, 5, 5)
	m.AddFaults(grid.Point{X: 2, Y: 2, Z: 2})
	all := ComputeAll(m)
	count := 0
	for _, l := range all {
		if l != nil {
			count++
			if l.Count(Faulty) != 1 {
				t.Error("every orientation sees the same faults")
			}
		}
	}
	if count != 8 {
		t.Errorf("ComputeAll produced %d labelings, want 8", count)
	}
	m2 := mesh.New2D(5, 5)
	if got := nonNil(ComputeAll(m2)); got != 4 {
		t.Errorf("2-D ComputeAll produced %d labelings, want 4", got)
	}
}

func nonNil(ls []*Labeling) int {
	n := 0
	for _, l := range ls {
		if l != nil {
			n++
		}
	}
	return n
}

func TestStatusString(t *testing.T) {
	if Safe.String() != "safe" || Faulty.String() != "faulty" ||
		Useless.String() != "useless" || CantReach.String() != "cant-reach" {
		t.Error("Status.String wrong")
	}
	if Safe.Unsafe() || !Faulty.Unsafe() {
		t.Error("Unsafe() wrong")
	}
}

func TestInvalidOrientationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid orientation")
		}
	}()
	Compute(mesh.New2D(3, 3), grid.Orientation{})
}
