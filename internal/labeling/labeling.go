// Package labeling implements the node labelling procedures at the heart of
// the MCC fault-information model: Algorithm 1 of the paper for 2-D meshes and
// Algorithm 4 for 3-D meshes.
//
// Given a mesh with faulty nodes and an orientation (the signs of travel from
// the source toward the destination), every node receives one of four
// statuses:
//
//   - Faulty: the node itself failed.
//   - Useless: a healthy node all of whose forward neighbours (toward the
//     destination, on every active axis) are faulty or useless. Entering it
//     forces a backward move, so it can never appear on a minimal path.
//   - CantReach: a healthy node all of whose backward neighbours are faulty or
//     can't-reach. Entering it requires a backward move in the first place.
//   - Safe: everything else.
//
// Faulty, Useless and CantReach nodes are collectively "unsafe"; their
// connected components are the paper's minimal connected components (MCCs),
// extracted by package region.
package labeling

import (
	"fmt"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/telemetry"
)

// Status is the label of a node under the MCC model.
type Status uint8

// Node statuses, in the order used by the paper's labelling procedure.
const (
	Safe Status = iota
	Faulty
	Useless
	CantReach
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Safe:
		return "safe"
	case Faulty:
		return "faulty"
	case Useless:
		return "useless"
	case CantReach:
		return "cant-reach"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Unsafe reports whether the status marks a node as part of a fault region.
func (s Status) Unsafe() bool { return s != Safe }

// BorderPolicy controls how a missing neighbour (a node outside the mesh) is
// treated by the labelling rules.
type BorderPolicy uint8

const (
	// BorderSafe treats missing neighbours as safe. This is the default and
	// matches the paper's definition: a healthy node is absorbed into a fault
	// region only if using it would *definitely* force a detour, which a mesh
	// border alone never does (the destination cannot lie beyond the border).
	BorderSafe BorderPolicy = iota
	// BorderBlocked treats missing neighbours like faulty nodes, producing a
	// more conservative (larger) fault region. Provided for the E5 ablation.
	BorderBlocked
)

// String implements fmt.Stringer.
func (b BorderPolicy) String() string {
	if b == BorderBlocked {
		return "border-blocked"
	}
	return "border-safe"
}

// Options configure a labelling run.
type Options struct {
	Border BorderPolicy
}

// Labeling is the result of running the labelling procedure over a mesh for a
// fixed orientation. The status array is indexed by dense node ID; the
// worklist fixpoint runs entirely on IDs through the mesh's precomputed
// neighbour table. A Labeling can be updated in place after the fault set
// changes: AddFaults absorbs new faults and RemoveFaults absorbs repairs,
// both relabelling only the affected neighbourhood.
type Labeling struct {
	mesh    *mesh.Mesh
	orient  grid.Orientation
	opts    Options
	status  []Status
	counts  [4]int
	updated int // number of label promotions beyond the initial faulty marking

	queue []int32 // worklist scratch, reused across AddFaults calls

	// unsafeW is the unsafe set as a bitset over dense node IDs, rebuilt
	// lazily by UnsafeWords after any relabelling (wordsStale tracks that).
	unsafeW    []uint64
	wordsStale bool

	// tel receives incremental-relabel set sizes; nil — the default — costs a
	// predicted branch per AddFaults/RemoveFaults call, nothing per node.
	tel *telemetry.Sink
}

// SetTelemetry implements telemetry.Instrumentable.
func (l *Labeling) SetTelemetry(s *telemetry.Sink) { l.tel = s }

// Compute runs the labelling procedure (Algorithm 1 in 2-D, Algorithm 4 in
// 3-D) to its fixpoint and returns the resulting labelling.
func Compute(m *mesh.Mesh, orient grid.Orientation, opts ...Options) *Labeling {
	if !orient.Valid() {
		panic(fmt.Sprintf("labeling: invalid orientation %+v", orient))
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	l := &Labeling{
		mesh:   m,
		orient: orient,
		opts:   o,
		status: make([]Status, m.NodeCount()),
	}
	l.run()
	return l
}

func (l *Labeling) run() {
	m := l.mesh
	l.wordsStale = true
	// Step 1: label all faulty nodes faulty, everything else safe.
	l.counts = [4]int{}
	for i := 0; i < m.NodeCount(); i++ {
		if m.FaultyAt(i) {
			l.status[i] = Faulty
			l.counts[Faulty]++
		} else {
			l.status[i] = Safe
			l.counts[Safe]++
		}
	}

	// Seed: every healthy node must be examined once (a node can be useless
	// purely because of mesh borders under BorderBlocked, or because of
	// directly adjacent faults). The queue pops LIFO, so node N-1 goes first —
	// the order the map-backed implementation used.
	if cap(l.queue) < m.NodeCount() {
		l.queue = make([]int32, 0, m.NodeCount())
	}
	queue := l.queue[:0]
	for i := 0; i < m.NodeCount(); i++ {
		queue = append(queue, int32(i))
	}
	l.fixpoint(queue)
}

// fixpoint drains an ID worklist: whenever a node's label is promoted, its
// neighbours may now satisfy the Useless (resp. CantReach) rule, so only those
// need re-examination. Labels only move away from Safe, so each node is
// promoted at most once; the queue scratch is retained on l for reuse.
func (l *Labeling) fixpoint(queue []int32) {
	m := l.mesh
	axes := m.Axes()
	dirs := m.Directions()
	borderBlocked := l.opts.Border == BorderBlocked

	// blockedForward reports whether, for the purpose of the Useless rule, the
	// forward neighbour of id on axis a counts as blocked.
	blockedForward := func(id int32, a grid.Axis) bool {
		q := m.NeighborID(id, l.orient.Forward(a))
		if q == mesh.NoNeighbor {
			return borderBlocked
		}
		s := l.status[q]
		return s == Faulty || s == Useless
	}
	blockedBackward := func(id int32, a grid.Axis) bool {
		q := m.NeighborID(id, l.orient.Backward(a))
		if q == mesh.NoNeighbor {
			return borderBlocked
		}
		s := l.status[q]
		return s == Faulty || s == CantReach
	}
	enqueueAround := func(id int32) {
		for _, d := range dirs {
			if q := m.NeighborID(id, d); q != mesh.NoNeighbor {
				queue = append(queue, q)
			}
		}
	}

	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if l.status[id] != Safe {
			continue
		}
		useless := true
		for _, a := range axes {
			if !blockedForward(id, a) {
				useless = false
				break
			}
		}
		if useless {
			l.promote(id, Useless)
			enqueueAround(id)
			continue
		}
		cantReach := true
		for _, a := range axes {
			if !blockedBackward(id, a) {
				cantReach = false
				break
			}
		}
		if cantReach {
			l.promote(id, CantReach)
			enqueueAround(id)
		}
	}
	l.queue = queue[:0]
}

// promote moves a Safe node to an unsafe label, maintaining the counts.
func (l *Labeling) promote(id int32, s Status) {
	l.status[id] = s
	l.counts[Safe]--
	l.counts[s]++
	l.updated++
}

// AddFaults updates the labelling in place after the listed nodes turned
// faulty, relabelling only the affected neighbourhood: the new faults switch
// to Faulty and the worklist fixpoint reruns seeded from their neighbours,
// instead of recomputing the whole mesh. Adding faults can only promote
// labels (a node's forward/backward neighbours only become more blocked), so
// the incremental pass reaches the same fixpoint invariants as a full
// recompute: every labelled node satisfies its rule, every Safe node fails
// both — and with them the same unsafe set, faulty set and absorbed-healthy
// count (TestAddFaultsMatchesFullRecompute pins this on randomized fault
// sequences). The one seam order can show through is the useless vs
// can't-reach *split* of a node whose rules both fire: the label records
// which rule was checked first, and routing only ever consumes "unsafe". The
// mesh must already carry the new faults (mesh.SetFaulty first — the fault
// injectors do this); out-of-bounds points are ignored.
func (l *Labeling) AddFaults(pts []grid.Point) {
	m := l.mesh
	l.wordsStale = true
	queue := l.queue[:0]
	for _, p := range pts {
		id := m.ID(p)
		if id == mesh.NoNeighbor || l.status[id] == Faulty {
			continue
		}
		l.counts[l.status[id]]--
		l.counts[Faulty]++
		l.status[id] = Faulty
		// Every neighbour of a new fault may now satisfy a promotion rule —
		// including neighbours of previously useless/can't-reach nodes that
		// the fault just upgraded to Faulty.
		for _, d := range m.Directions() {
			if q := m.NeighborID(id, d); q != mesh.NoNeighbor {
				queue = append(queue, q)
			}
		}
	}
	u0 := l.updated
	l.fixpoint(queue)
	l.tel.Add(telemetry.RelabelAddNodes, int64(l.updated-u0))
}

// RemoveFaults updates the labelling in place after the listed nodes were
// repaired, un-relabelling only the affected neighbourhood. Repairing a fault
// can only *demote* labels (forward/backward neighbours only become less
// blocked), but demotions cascade the opposite way promotions do, so the
// incremental pass runs in two sweeps:
//
//  1. The repaired nodes flip back to Safe, and every useless / can't-reach
//     node reachable from them through chains of non-faulty unsafe nodes is
//     demoted to Safe as well. A label depends only on the labels of direct
//     mesh neighbours and the only Faulty→Safe flips are the repaired points
//     themselves, so any label the repair could invalidate lies inside this
//     link-connected neighbourhood — nothing outside it can change.
//  2. The standard worklist fixpoint reruns seeded with exactly the demoted
//     nodes, re-promoting the ones whose rules still fire (their labels may
//     have depended on faults that remain).
//
// The result satisfies the same fixpoint invariants as a full recompute over
// the reduced fault set — same unsafe set, faulty set and absorbed-healthy
// count (TestRemoveFaultsMatchesFullRecompute pins this on randomized
// add/remove interleavings) — with the same caveat as AddFaults: the useless
// vs can't-reach split of a dual-eligible node is worklist-order dependent,
// and routing only ever consumes "unsafe". The mesh must already carry the
// repairs (mesh.RemoveFaults first — the churn timeline does this);
// out-of-bounds points and points not labelled Faulty are ignored.
func (l *Labeling) RemoveFaults(pts []grid.Point) {
	m := l.mesh
	l.wordsStale = true
	dirs := m.Directions()
	queue := l.queue[:0]
	for _, p := range pts {
		id := m.ID(p)
		if id == mesh.NoNeighbor || l.status[id] != Faulty {
			continue
		}
		l.counts[Faulty]--
		l.counts[Safe]++
		l.status[id] = Safe
		queue = append(queue, id)
	}
	// Demotion wavefront: walk the link-connected non-faulty unsafe
	// neighbourhood of the repaired nodes, resetting it to Safe. The queue
	// doubles as the BFS frontier and the fixpoint seed — every demoted node
	// must be re-examined, and the fixpoint skips nothing that is Safe.
	for i := 0; i < len(queue); i++ {
		id := queue[i]
		for _, d := range dirs {
			q := m.NeighborID(id, d)
			if q == mesh.NoNeighbor {
				continue
			}
			if s := l.status[q]; s == Useless || s == CantReach {
				l.counts[s]--
				l.counts[Safe]++
				l.status[q] = Safe
				queue = append(queue, q)
			}
		}
	}
	l.tel.Add(telemetry.RelabelRemoveNodes, int64(len(queue)))
	l.fixpoint(queue)
}

// Mesh returns the mesh the labelling was computed over.
func (l *Labeling) Mesh() *mesh.Mesh { return l.mesh }

// Orientation returns the orientation the labelling was computed for.
func (l *Labeling) Orientation() grid.Orientation { return l.orient }

// Options returns the options used to compute the labelling.
func (l *Labeling) Options() Options { return l.opts }

// Status returns the label of p. Out-of-bounds points are reported Safe,
// consistent with the BorderSafe policy; callers that need strict bounds
// checking should consult the mesh first.
func (l *Labeling) Status(p grid.Point) Status {
	if !l.mesh.InBounds(p) {
		return Safe
	}
	return l.status[l.mesh.Index(p)]
}

// StatusAt returns the label by dense node index.
func (l *Labeling) StatusAt(idx int) Status { return l.status[idx] }

// UnsafeAt reports whether the node with dense index idx is faulty, useless
// or can't-reach — the per-hop fast path of the routing providers.
func (l *Labeling) UnsafeAt(idx int) bool { return l.status[idx] != Safe }

// AvoidUnsafeID returns an ID-addressed obstacle test rejecting exactly the
// unsafe nodes; it matches minimal.AvoidID and reads the status array
// directly.
func (l *Labeling) AvoidUnsafeID() func(id int32) bool {
	status := l.status
	return func(id int32) bool { return status[id] != Safe }
}

// UnsafeWords returns the unsafe set as a bitset over dense node IDs (bit set
// = unsafe), the word-level form of AvoidUnsafeID that the reachability sweep
// consumes a row at a time (minimal.ReachabilityWordsInto). The bitset is
// rebuilt lazily after a relabelling and must not be mutated or retained
// across AddFaults/RemoveFaults by the caller.
func (l *Labeling) UnsafeWords() []uint64 {
	if l.unsafeW != nil && !l.wordsStale {
		return l.unsafeW
	}
	n := (len(l.status) + 63) / 64
	if cap(l.unsafeW) < n {
		l.unsafeW = make([]uint64, n)
	} else {
		l.unsafeW = l.unsafeW[:n]
		for i := range l.unsafeW {
			l.unsafeW[i] = 0
		}
	}
	for i, s := range l.status {
		if s != Safe {
			l.unsafeW[i>>6] |= 1 << uint(i&63)
		}
	}
	l.wordsStale = false
	return l.unsafeW
}

// Unsafe reports whether p is faulty, useless or can't-reach.
func (l *Labeling) Unsafe(p grid.Point) bool {
	if !l.mesh.InBounds(p) {
		return false
	}
	return l.status[l.mesh.Index(p)].Unsafe()
}

// Safe reports whether p is in bounds and labelled safe.
func (l *Labeling) Safe(p grid.Point) bool {
	return l.mesh.InBounds(p) && l.status[l.mesh.Index(p)] == Safe
}

// Count returns the number of nodes carrying the given status.
func (l *Labeling) Count(s Status) int { return l.counts[s] }

// UnsafeCount returns the total number of unsafe nodes.
func (l *Labeling) UnsafeCount() int {
	return l.counts[Faulty] + l.counts[Useless] + l.counts[CantReach]
}

// NonFaultyUnsafeCount returns the number of healthy nodes absorbed into fault
// regions (the paper's first evaluation metric).
func (l *Labeling) NonFaultyUnsafeCount() int {
	return l.counts[Useless] + l.counts[CantReach]
}

// UnsafeNodes returns the coordinates of every unsafe node in index order.
func (l *Labeling) UnsafeNodes() []grid.Point {
	out := make([]grid.Point, 0, l.UnsafeCount())
	for i, s := range l.status {
		if s.Unsafe() {
			out = append(out, l.mesh.Point(i))
		}
	}
	return out
}

// Promotions returns how many healthy nodes were promoted to useless or
// can't-reach (diagnostic, used by the message-overhead experiment to bound
// the work a distributed implementation must do).
func (l *Labeling) Promotions() int { return l.updated }

// ComputeAll returns the labelling for every orientation of the mesh (four in
// 2-D, eight in 3-D), indexed by Orientation.Index.
func ComputeAll(m *mesh.Mesh, opts ...Options) []*Labeling {
	var orients []grid.Orientation
	if m.Is2D() {
		orients = grid.AllOrientations2D()
	} else {
		orients = grid.AllOrientations3D()
	}
	out := make([]*Labeling, 8)
	for _, o := range orients {
		out[o.Index()] = Compute(m, o, opts...)
	}
	return out
}
