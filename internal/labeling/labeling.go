// Package labeling implements the node labelling procedures at the heart of
// the MCC fault-information model: Algorithm 1 of the paper for 2-D meshes and
// Algorithm 4 for 3-D meshes.
//
// Given a mesh with faulty nodes and an orientation (the signs of travel from
// the source toward the destination), every node receives one of four
// statuses:
//
//   - Faulty: the node itself failed.
//   - Useless: a healthy node all of whose forward neighbours (toward the
//     destination, on every active axis) are faulty or useless. Entering it
//     forces a backward move, so it can never appear on a minimal path.
//   - CantReach: a healthy node all of whose backward neighbours are faulty or
//     can't-reach. Entering it requires a backward move in the first place.
//   - Safe: everything else.
//
// Faulty, Useless and CantReach nodes are collectively "unsafe"; their
// connected components are the paper's minimal connected components (MCCs),
// extracted by package region.
package labeling

import (
	"fmt"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// Status is the label of a node under the MCC model.
type Status uint8

// Node statuses, in the order used by the paper's labelling procedure.
const (
	Safe Status = iota
	Faulty
	Useless
	CantReach
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Safe:
		return "safe"
	case Faulty:
		return "faulty"
	case Useless:
		return "useless"
	case CantReach:
		return "cant-reach"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Unsafe reports whether the status marks a node as part of a fault region.
func (s Status) Unsafe() bool { return s != Safe }

// BorderPolicy controls how a missing neighbour (a node outside the mesh) is
// treated by the labelling rules.
type BorderPolicy uint8

const (
	// BorderSafe treats missing neighbours as safe. This is the default and
	// matches the paper's definition: a healthy node is absorbed into a fault
	// region only if using it would *definitely* force a detour, which a mesh
	// border alone never does (the destination cannot lie beyond the border).
	BorderSafe BorderPolicy = iota
	// BorderBlocked treats missing neighbours like faulty nodes, producing a
	// more conservative (larger) fault region. Provided for the E5 ablation.
	BorderBlocked
)

// String implements fmt.Stringer.
func (b BorderPolicy) String() string {
	if b == BorderBlocked {
		return "border-blocked"
	}
	return "border-safe"
}

// Options configure a labelling run.
type Options struct {
	Border BorderPolicy
}

// Labeling is the result of running the labelling procedure over a mesh for a
// fixed orientation.
type Labeling struct {
	mesh    *mesh.Mesh
	orient  grid.Orientation
	opts    Options
	status  []Status
	counts  [4]int
	rounds  int // number of fixpoint sweeps performed (diagnostic)
	updated int // number of label promotions beyond the initial faulty marking
}

// Compute runs the labelling procedure (Algorithm 1 in 2-D, Algorithm 4 in
// 3-D) to its fixpoint and returns the resulting labelling.
func Compute(m *mesh.Mesh, orient grid.Orientation, opts ...Options) *Labeling {
	if !orient.Valid() {
		panic(fmt.Sprintf("labeling: invalid orientation %+v", orient))
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	l := &Labeling{
		mesh:   m,
		orient: orient,
		opts:   o,
		status: make([]Status, m.NodeCount()),
	}
	l.run()
	return l
}

func (l *Labeling) run() {
	m := l.mesh
	// Step 1: label all faulty nodes faulty, everything else safe.
	for i := 0; i < m.NodeCount(); i++ {
		if m.FaultyAt(i) {
			l.status[i] = Faulty
		} else {
			l.status[i] = Safe
		}
	}

	axes := m.Axes()

	// blockedForward reports whether, for the purpose of the Useless rule, the
	// forward neighbour of p on axis a counts as blocked.
	blockedForward := func(p grid.Point, a grid.Axis) bool {
		q := l.orient.Ahead(p, a)
		if !m.InBounds(q) {
			return l.opts.Border == BorderBlocked
		}
		s := l.status[m.Index(q)]
		return s == Faulty || s == Useless
	}
	blockedBackward := func(p grid.Point, a grid.Axis) bool {
		q := l.orient.Behind(p, a)
		if !m.InBounds(q) {
			return l.opts.Border == BorderBlocked
		}
		s := l.status[m.Index(q)]
		return s == Faulty || s == CantReach
	}

	// Worklist fixpoint: whenever a node's label is promoted, its backward
	// (resp. forward) neighbours may now satisfy the Useless (resp. CantReach)
	// rule, so only those need re-examination.
	queue := make([]grid.Point, 0, m.FaultCount()*2)
	enqueueAround := func(p grid.Point) {
		for _, d := range m.Directions() {
			if q, ok := m.Neighbor(p, d); ok {
				queue = append(queue, q)
			}
		}
	}

	// Seed: every healthy node must be examined once (a node can be useless
	// purely because of mesh borders under BorderBlocked, or because of
	// directly adjacent faults).
	m.ForEach(func(p grid.Point) { queue = append(queue, p) })

	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		idx := m.Index(p)
		if l.status[idx] != Safe {
			continue
		}
		useless := true
		for _, a := range axes {
			if !blockedForward(p, a) {
				useless = false
				break
			}
		}
		if useless {
			l.status[idx] = Useless
			l.updated++
			enqueueAround(p)
			continue
		}
		cantReach := true
		for _, a := range axes {
			if !blockedBackward(p, a) {
				cantReach = false
				break
			}
		}
		if cantReach {
			l.status[idx] = CantReach
			l.updated++
			enqueueAround(p)
		}
	}

	for _, s := range l.status {
		l.counts[s]++
	}
}

// Mesh returns the mesh the labelling was computed over.
func (l *Labeling) Mesh() *mesh.Mesh { return l.mesh }

// Orientation returns the orientation the labelling was computed for.
func (l *Labeling) Orientation() grid.Orientation { return l.orient }

// Options returns the options used to compute the labelling.
func (l *Labeling) Options() Options { return l.opts }

// Status returns the label of p. Out-of-bounds points are reported Safe,
// consistent with the BorderSafe policy; callers that need strict bounds
// checking should consult the mesh first.
func (l *Labeling) Status(p grid.Point) Status {
	if !l.mesh.InBounds(p) {
		return Safe
	}
	return l.status[l.mesh.Index(p)]
}

// StatusAt returns the label by dense node index.
func (l *Labeling) StatusAt(idx int) Status { return l.status[idx] }

// Unsafe reports whether p is faulty, useless or can't-reach.
func (l *Labeling) Unsafe(p grid.Point) bool {
	if !l.mesh.InBounds(p) {
		return false
	}
	return l.status[l.mesh.Index(p)].Unsafe()
}

// Safe reports whether p is in bounds and labelled safe.
func (l *Labeling) Safe(p grid.Point) bool {
	return l.mesh.InBounds(p) && l.status[l.mesh.Index(p)] == Safe
}

// Count returns the number of nodes carrying the given status.
func (l *Labeling) Count(s Status) int { return l.counts[s] }

// UnsafeCount returns the total number of unsafe nodes.
func (l *Labeling) UnsafeCount() int {
	return l.counts[Faulty] + l.counts[Useless] + l.counts[CantReach]
}

// NonFaultyUnsafeCount returns the number of healthy nodes absorbed into fault
// regions (the paper's first evaluation metric).
func (l *Labeling) NonFaultyUnsafeCount() int {
	return l.counts[Useless] + l.counts[CantReach]
}

// UnsafeNodes returns the coordinates of every unsafe node in index order.
func (l *Labeling) UnsafeNodes() []grid.Point {
	out := make([]grid.Point, 0, l.UnsafeCount())
	for i, s := range l.status {
		if s.Unsafe() {
			out = append(out, l.mesh.Point(i))
		}
	}
	return out
}

// Promotions returns how many healthy nodes were promoted to useless or
// can't-reach (diagnostic, used by the message-overhead experiment to bound
// the work a distributed implementation must do).
func (l *Labeling) Promotions() int { return l.updated }

// ComputeAll returns the labelling for every orientation of the mesh (four in
// 2-D, eight in 3-D), indexed by Orientation.Index.
func ComputeAll(m *mesh.Mesh, opts ...Options) []*Labeling {
	var orients []grid.Orientation
	if m.Is2D() {
		orients = grid.AllOrientations2D()
	} else {
		orients = grid.AllOrientations3D()
	}
	out := make([]*Labeling, 8)
	for _, o := range orients {
		out[o.Index()] = Compute(m, o, opts...)
	}
	return out
}
