package protocol

import (
	"sort"

	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/nodeset"
	"mccmesh/internal/region"
	"mccmesh/internal/simnet"
)

// identMsg travels around an MCC perimeter collecting corner coordinates
// (Algorithm 2 step 2). Clockwise and counter-clockwise copies start at the
// initialization corner and meet at the opposite corner.
type identMsg struct {
	Component int
	Clockwise bool
	Corners   []grid.Point
	Returning bool
	Remaining []grid.Point // precomputed hop sequence to follow
}

// boundaryMsg propagates an MCC record along a boundary line, merging the
// forbidden-region information of any MCC it meets on the way
// (Algorithm 2 step 3 / Algorithm 5 step 4).
type boundaryMsg struct {
	// Components is the merged set of MCC IDs whose information this boundary
	// carries (the original MCC plus every MCC the boundary joined).
	Components []int
	// Walk is the walk axis (the boundary direction, travelled backward) and
	// Turn the axis used to route around intervening MCCs.
	Walk, Turn grid.Axis
}

// infoHandler runs the identification and boundary-construction protocols.
type infoHandler struct {
	lab    *labeling.Labeling
	cs     *region.ComponentSet
	orient grid.Orientation

	identDone map[int]int // component -> number of identification messages back at the corner
}

const recordsKey = "mcc-records"

func (h *infoHandler) Init(*simnet.Context) {}

func (h *infoHandler) Receive(ctx *simnet.Context, env *simnet.Envelope) {
	switch msg := env.Payload.(type) {
	case identMsg:
		h.stepIdentify(ctx, msg)
	case boundaryMsg:
		h.stepBoundary(ctx, msg)
	}
}

// stepIdentify forwards an identification message one hop along its
// precomputed perimeter itinerary, collecting corner coordinates on the
// outbound leg.
func (h *infoHandler) stepIdentify(ctx *simnet.Context, msg identMsg) {
	self := ctx.Self()
	if !msg.Returning && h.isCorner(self, msg.Component) {
		msg.Corners = append(append([]grid.Point(nil), msg.Corners...), self)
	}
	if len(msg.Remaining) == 0 {
		// Back at the initialization corner: the shape is stable once both
		// messages have returned.
		if h.identDone == nil {
			h.identDone = make(map[int]int)
		}
		h.identDone[msg.Component]++
		return
	}
	next := msg.Remaining[0]
	msg.Remaining = msg.Remaining[1:]
	if grid.Manhattan(self, next) == 1 {
		ctx.Send(next, KindIdentify, msg)
		return
	}
	// Perimeter steps across a convex corner are two hops (through the shared
	// safe neighbour); route through an intermediate node.
	mid := grid.Point{X: self.X, Y: next.Y, Z: self.Z}
	if !h.lab.Mesh().InBounds(mid) || h.lab.Unsafe(mid) {
		mid = grid.Point{X: next.X, Y: self.Y, Z: self.Z}
	}
	if !h.lab.Mesh().InBounds(mid) || grid.Manhattan(self, mid) != 1 {
		return // give up on this leg; the opposite message still covers the ring
	}
	msg.Remaining = append([]grid.Point{next}, msg.Remaining...)
	ctx.Send(mid, KindIdentify, msg)
}

func (h *infoHandler) isCorner(p grid.Point, comp int) bool {
	c := h.cs.Components[comp]
	// A corner has component members or edge nodes in two different
	// dimensions among its neighbours.
	dims := map[grid.Axis]bool{}
	for _, dir := range h.lab.Mesh().Directions() {
		q := grid.Step(p, dir)
		if c.Has(q) {
			dims[dir.Axis()] = true
		}
	}
	return len(dims) >= 2
}

// stepBoundary deposits the merged record at the current node and forwards the
// boundary message: backward along the walk axis while the next node is safe,
// turning backward along the turn axis to hug any MCC in the way (merging that
// MCC's information into the record).
func (h *infoHandler) stepBoundary(ctx *simnet.Context, msg boundaryMsg) {
	self := ctx.Self()
	h.deposit(ctx, msg.Components)

	m := h.lab.Mesh()
	walkDir := h.orient.Backward(msg.Walk)
	next := grid.Step(self, walkDir)
	if !m.InBounds(next) {
		return // reached the mesh edge
	}
	if h.lab.Safe(next) {
		ctx.Send(next, KindBoundary, msg)
		return
	}
	// The boundary line meets another MCC: merge its information and make a
	// turn along the turn axis to go around it (joining its boundary).
	if other := h.cs.ComponentOf(next); other != nil {
		msg.Components = mergeID(msg.Components, other.ID)
	}
	turnDir := h.orient.Backward(msg.Turn)
	side := grid.Step(self, turnDir)
	if !m.InBounds(side) || !h.lab.Safe(side) {
		return // wedged against the mesh edge or another region: stop here
	}
	ctx.Send(side, KindBoundary, msg)
}

func (h *infoHandler) deposit(ctx *simnet.Context, comps []int) {
	store := ctx.Store()
	existing, _ := store[recordsKey].([]int)
	for _, id := range comps {
		existing = mergeID(existing, id)
	}
	store[recordsKey] = existing
}

func mergeID(ids []int, id int) []int {
	for _, v := range ids {
		if v == id {
			return ids
		}
	}
	ids = append(append([]int(nil), ids...), id)
	sort.Ints(ids)
	return ids
}

// InfoResult is the outcome of running identification plus boundary
// construction for every MCC of a labelling.
type InfoResult struct {
	// Records maps dense node index to the component IDs whose (merged)
	// records ended up stored at that node.
	Records map[int][]int
	// IdentifyMessages and BoundaryMessages count the protocol messages.
	IdentifyMessages, BoundaryMessages int
	// Stats is the raw simulator accounting.
	Stats simnet.Stats
	// Completed lists the components whose two identification messages both
	// returned to the initialization corner (stable shape).
	Completed []int
}

// RunInformationModel runs the identification process and the boundary
// construction for every MCC of the labelling and returns the per-node record
// placement, ready to back a routing.Records provider.
//
// The identification itinerary (the perimeter ring) is precomputed during a
// setup phase — the paper's nodes learn it from their neighbours while
// labelling — and the messages then travel hop by hop through the simulator.
func RunInformationModel(m *mesh.Mesh, lab *labeling.Labeling, cs *region.ComponentSet) *InfoResult {
	h := &infoHandler{lab: lab, cs: cs, orient: lab.Orientation()}
	net := simnet.New(m, h)

	boundaryKinds := [][2]grid.Axis{} // {walk axis, turn axis}
	if m.Is2D() {
		boundaryKinds = [][2]grid.Axis{
			{grid.AxisY, grid.AxisX}, // Y boundary: down the column, turning -X
			{grid.AxisX, grid.AxisY}, // X boundary: along the row, turning -Y
		}
	} else {
		for _, kind := range region.CornerKinds {
			// The (+A-B)-boundary runs backward along A and hugs other MCCs by
			// turning backward along B.
			boundaryKinds = append(boundaryKinds, [2]grid.Axis{kind.Major, kind.Minor})
		}
	}

	for _, c := range cs.Components {
		// Identification: two counter-rotating messages around each perimeter.
		// In 2-D the perimeter is the component's edge-node ring; in 3-D each
		// XY section is identified separately (Algorithm 5 step 1).
		var rings [][]grid.Point
		if m.Is2D() {
			corners := cs.Corners2D(c)
			rings = append(rings, cs.PerimeterRing(c, corners.Initialization))
		} else {
			for _, sec := range cs.Sections(c, region.PlaneXY) {
				rings = append(rings, sectionRing(m, lab, sec))
			}
		}
		for _, ring := range rings {
			if len(ring) <= 1 {
				continue
			}
			forward := append(append([]grid.Point(nil), ring[1:]...), ring[0])
			backward := make([]grid.Point, 0, len(ring))
			for i := len(ring) - 1; i >= 1; i-- {
				backward = append(backward, ring[i])
			}
			backward = append(backward, ring[0])
			net.Post(ring[0], KindIdentify, identMsg{Component: c.ID, Clockwise: true, Remaining: forward})
			net.Post(ring[0], KindIdentify, identMsg{Component: c.ID, Clockwise: false, Remaining: backward})
		}

		// Boundary construction: one boundary per kind, starting at the edge
		// node(s) designated by the paper.
		starts := boundaryStarts(m, cs, c)
		for _, kind := range boundaryKinds {
			for _, start := range starts[kind[0]] {
				net.Post(start, KindBoundary, boundaryMsg{Components: []int{c.ID}, Walk: kind[0], Turn: kind[1]})
			}
		}
	}

	stats := mustRun(net)

	res := &InfoResult{
		Records:          make(map[int][]int),
		IdentifyMessages: stats.ByKind[KindIdentify],
		BoundaryMessages: stats.ByKind[KindBoundary],
		Stats:            stats,
	}
	for i := 0; i < m.NodeCount(); i++ {
		if recs, ok := net.Store(m.Point(i))[recordsKey].([]int); ok && len(recs) > 0 {
			res.Records[i] = recs
		}
	}
	for id, n := range h.identDone {
		if n >= 2 {
			res.Completed = append(res.Completed, id)
		}
	}
	sort.Ints(res.Completed)

	// Every edge node of an MCC also knows about it (the identification
	// messages pass through them); add those records so the routing provider
	// sees what the protocol distributed.
	for _, c := range cs.Components {
		for _, e := range cs.EdgeNodes(c) {
			idx := m.Index(e)
			res.Records[idx] = mergeID(res.Records[idx], c.ID)
		}
	}
	return res
}

// sectionRing returns the ordered walk of safe, in-plane nodes surrounding a
// 2-D section of a 3-D MCC — the itinerary of the section's identification
// messages.
func sectionRing(m *mesh.Mesh, lab *labeling.Labeling, sec *region.Section) []grid.Point {
	seen := nodeset.New(m.NodeCount())
	var edge []grid.Point
	a1, a2 := sec.Plane.Axes()
	for _, p := range sec.Nodes {
		for _, ax := range []grid.Axis{a1, a2} {
			for _, sign := range []int{1, -1} {
				q := p.WithAxis(ax, p.Axis(ax)+sign)
				if m.InBounds(q) && lab.Safe(q) && !seen.Has(m.ID(q)) {
					seen.Add(m.ID(q))
					edge = append(edge, q)
				}
			}
		}
	}
	if len(edge) == 0 {
		return nil
	}
	sort.Slice(edge, func(i, j int) bool { return m.Index(edge[i]) < m.Index(edge[j]) })
	// Greedy walk ordering, bridging diagonal steps across convex corners.
	adjacent := func(a, b grid.Point) bool {
		d := grid.Manhattan(a, b)
		if d == 1 {
			return true
		}
		if d == 2 && a.Axis(a1) != b.Axis(a1) && a.Axis(a2) != b.Axis(a2) {
			p1 := a.WithAxis(a1, b.Axis(a1))
			p2 := a.WithAxis(a2, b.Axis(a2))
			return sec.Has(p1) || sec.Has(p2)
		}
		return false
	}
	visited := nodeset.New(m.NodeCount())
	visited.Add(m.ID(edge[0]))
	order := []grid.Point{edge[0]}
	cur := edge[0]
	for {
		found := false
		for _, e := range edge {
			if !visited.Has(m.ID(e)) && adjacent(cur, e) {
				visited.Add(m.ID(e))
				order = append(order, e)
				cur = e
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	for _, e := range edge {
		if !visited.Has(m.ID(e)) {
			order = append(order, e)
		}
	}
	return order
}

// boundaryStarts returns, per walk axis, the safe nodes a boundary of that
// axis starts from: in 2-D the initialization corner; in 3-D the safe node
// just "behind" each section corner of the matching edge.
func boundaryStarts(m *mesh.Mesh, cs *region.ComponentSet, c *region.Component) map[grid.Axis][]grid.Point {
	orient := grid.PositiveOrientation
	if cs.Labeling != nil {
		orient = cs.Labeling.Orientation()
	}
	out := make(map[grid.Axis][]grid.Point)
	if m.Is2D() {
		corners := cs.Corners2D(c)
		if corners.Found {
			out[grid.AxisY] = []grid.Point{corners.Initialization}
			out[grid.AxisX] = []grid.Point{corners.Initialization}
		}
		return out
	}
	for _, kind := range region.CornerKinds {
		edge := cs.EdgeOfKind(c, kind)
		for _, corner := range edge.Nodes {
			// Start from the safe node one step backward along the walk axis
			// from the corner (outside the region, on the boundary line).
			start := orient.Behind(corner, kind.Major)
			for m.InBounds(start) && !cs.Labeling.Safe(start) {
				start = orient.Behind(start, kind.Major)
			}
			if m.InBounds(start) {
				out[kind.Major] = append(out[kind.Major], start)
			}
		}
	}
	return out
}
