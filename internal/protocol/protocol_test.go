package protocol

import (
	"testing"

	"mccmesh/internal/feasibility"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/meshtest"
	"mccmesh/internal/minimal"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
)

// TestDistributedLabelingMatchesCentralised is invariant I7: the purely local
// message protocol reaches exactly the labels of Algorithm 1/4.
func TestDistributedLabelingMatchesCentralised(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 30; trial++ {
		var m *mesh.Mesh
		if trial%2 == 0 {
			m = meshtest.Random2D(r, 10, 5+r.Intn(20))
		} else {
			m = meshtest.Random3D(r, 7, 5+r.Intn(40))
		}
		orient := grid.OrientationFromIndex(trial % 8)
		if m.Is2D() {
			orient.SZ = 1
		}
		want := labeling.Compute(m, orient)
		got := RunLabeling(m, orient)
		m.ForEach(func(p grid.Point) {
			if got.Status(m, p) != want.Status(p) {
				t.Fatalf("trial %d: node %v distributed=%v centralised=%v",
					trial, p, got.Status(m, p), want.Status(p))
			}
		})
		if got.Stats.Delivered == 0 && want.NonFaultyUnsafeCount() > 0 {
			t.Error("promotions require messages")
		}
	}
}

func TestDistributedLabelingMessageCountScales(t *testing.T) {
	m := mesh.New3D(8, 8, 8)
	few := RunLabeling(m, grid.PositiveOrientation)
	if few.Stats.ByKind[KindLabel] != 0 {
		t.Errorf("a fault-free mesh needs no label messages, got %d", few.Stats.ByKind[KindLabel])
	}
	m.AddFaults(
		grid.Point{X: 3, Y: 2, Z: 2}, grid.Point{X: 2, Y: 3, Z: 2}, grid.Point{X: 2, Y: 2, Z: 3},
	)
	some := RunLabeling(m, grid.PositiveOrientation)
	if some.Stats.ByKind[KindLabel] == 0 {
		t.Error("the enclosed node must announce its promotion")
	}
}

// TestDetection2DMatchesFeasibility: the message-based check agrees with the
// centralised walkers and with ground truth.
func TestDetection2DMatchesFeasibility(t *testing.T) {
	r := rng.New(23)
	checked := 0
	for trial := 0; trial < 80; trial++ {
		m := meshtest.Random2D(r, 10, 4+r.Intn(20))
		s, d, ok := meshtest.SafePair(r, m, 3)
		if !ok {
			continue
		}
		checked++
		lab := labeling.Compute(m, grid.OrientationOf(s, d))
		cs := region.FindMCCs(lab)
		want := feasibility.GroundTruth(cs, s, d)
		got := RunDetection2D(m, lab, s, d)
		if got.Feasible != want {
			t.Fatalf("trial %d: distributed detection=%v, ground truth=%v (s=%v d=%v)",
				trial, got.Feasible, want, s, d)
		}
		if want && got.ForwardHops == 0 && grid.Manhattan(s, d) > 1 {
			t.Error("successful detection should take forward hops")
		}
	}
	if checked < 30 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

func TestDetection3DMatchesFeasibility(t *testing.T) {
	r := rng.New(29)
	checked := 0
	for trial := 0; trial < 60; trial++ {
		m := meshtest.Random3D(r, 7, 5+r.Intn(40))
		s, d, ok := meshtest.SafePair(r, m, 4)
		if !ok {
			continue
		}
		checked++
		lab := labeling.Compute(m, grid.OrientationOf(s, d))
		cs := region.FindMCCs(lab)
		want := feasibility.GroundTruth(cs, s, d)
		got := RunDetection3D(m, lab, s, d)
		if got.Feasible != want {
			t.Fatalf("trial %d: distributed detection=%v, ground truth=%v (s=%v d=%v)",
				trial, got.Feasible, want, s, d)
		}
	}
	if checked < 25 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

func TestInformationModel2D(t *testing.T) {
	m := mesh.New2D(12, 12)
	m.AddFaults(grid.Point{X: 5, Y: 6}, grid.Point{X: 6, Y: 6}, grid.Point{X: 6, Y: 5})
	lab := labeling.Compute(m, grid.PositiveOrientation)
	cs := region.FindMCCs(lab)
	info := RunInformationModel(m, lab, cs)

	if info.IdentifyMessages == 0 {
		t.Error("identification messages expected")
	}
	if info.BoundaryMessages == 0 {
		t.Error("boundary messages expected")
	}
	if len(info.Completed) != cs.Len() {
		t.Errorf("identification completed for %d of %d components", len(info.Completed), cs.Len())
	}
	// The Y boundary runs down the column left of the MCC nose: records must
	// be present below the initialization corner.
	corners := cs.Corners2D(cs.Components[0])
	if !corners.Found {
		t.Fatal("corners not found")
	}
	below := grid.Point{X: corners.Initialization.X, Y: 1}
	if len(info.Records[m.Index(below)]) == 0 {
		t.Errorf("no record stored on the Y boundary at %v", below)
	}
	// Edge nodes always hold the record of their MCC.
	for _, e := range cs.EdgeNodes(cs.Components[0]) {
		if len(info.Records[m.Index(e)]) == 0 {
			t.Errorf("edge node %v holds no record", e)
		}
	}
}

func TestInformationModelMergesAcrossMCCs(t *testing.T) {
	m := mesh.New2D(14, 14)
	// Two stacked MCCs as in Figure 3: the lower one intercepts the upper
	// one's Y boundary, so the boundary records below the lower MCC must
	// mention both components.
	m.AddFaults(grid.Point{X: 6, Y: 9}, grid.Point{X: 7, Y: 9}) // upper MCC
	m.AddFaults(grid.Point{X: 5, Y: 4}, grid.Point{X: 6, Y: 4}) // lower MCC
	lab := labeling.Compute(m, grid.PositiveOrientation)
	cs := region.FindMCCs(lab)
	if cs.Len() != 2 {
		t.Fatalf("expected 2 MCCs, got %d", cs.Len())
	}
	info := RunInformationModel(m, lab, cs)
	merged := 0
	for _, recs := range info.Records {
		if len(recs) >= 2 {
			merged++
		}
	}
	if merged == 0 {
		t.Error("no node holds a merged record; boundary merging failed")
	}
}

// TestDistributedRoutingDeliversMinimal: with the records produced by the
// information model, the hop-by-hop routing delivers minimal paths for
// feasible pairs in 2-D meshes (the setting of Algorithm 3).
func TestDistributedRoutingDeliversMinimal2D(t *testing.T) {
	r := rng.New(41)
	routed, minimalCount := 0, 0
	for trial := 0; trial < 60; trial++ {
		m := meshtest.Random2D(r, 10, 4+r.Intn(14))
		s, d, ok := meshtest.SafePair(r, m, 4)
		if !ok {
			continue
		}
		lab := labeling.Compute(m, grid.OrientationOf(s, d))
		cs := region.FindMCCs(lab)
		if !feasibility.GroundTruth(cs, s, d) {
			continue
		}
		info := RunInformationModel(m, lab, cs)
		res := RunRouting(m, lab, cs, info.Records, s, d)
		routed++
		if !res.Delivered {
			t.Fatalf("trial %d: routing failed for feasible pair %v -> %v (stuck at %v)", trial, s, d, res.StuckAt)
		}
		if res.Minimal {
			minimalCount++
		}
		if !minimal.IsMinimalPath(m, minimal.AvoidFaulty(m), s, d, res.Path) {
			t.Fatalf("trial %d: delivered path is not a fault-free minimal path", trial)
		}
	}
	if routed < 20 {
		t.Fatalf("only %d feasible pairs routed", routed)
	}
	if minimalCount != routed {
		t.Errorf("only %d of %d delivered paths were minimal", minimalCount, routed)
	}
}

func TestDistributedRoutingDeliversMinimal3D(t *testing.T) {
	r := rng.New(43)
	routed := 0
	for trial := 0; trial < 40; trial++ {
		m := meshtest.Random3D(r, 7, 5+r.Intn(30))
		s, d, ok := meshtest.SafePair(r, m, 4)
		if !ok {
			continue
		}
		lab := labeling.Compute(m, grid.OrientationOf(s, d))
		cs := region.FindMCCs(lab)
		if !feasibility.GroundTruth(cs, s, d) {
			continue
		}
		info := RunInformationModel(m, lab, cs)
		res := RunRouting(m, lab, cs, info.Records, s, d)
		routed++
		if !res.Delivered {
			t.Fatalf("trial %d: routing failed for feasible pair %v -> %v (stuck at %v)", trial, s, d, res.StuckAt)
		}
		if !minimal.IsMinimalPath(m, minimal.AvoidFaulty(m), s, d, res.Path) {
			t.Fatalf("trial %d: delivered path is not a fault-free minimal path", trial)
		}
	}
	if routed < 15 {
		t.Fatalf("only %d feasible pairs routed", routed)
	}
}

func TestRunRoutingWithoutRecords(t *testing.T) {
	m := mesh.New2D(8, 8)
	lab := labeling.Compute(m, grid.PositiveOrientation)
	cs := region.FindMCCs(lab)
	res := RunRouting(m, lab, cs, nil, grid.Point{}, grid.Point{X: 5, Y: 5})
	if !res.Delivered || !res.Minimal {
		t.Error("fault-free routing must deliver minimally even without records")
	}
	if res.Hops != 10 {
		t.Errorf("hops = %d, want 10", res.Hops)
	}
}
