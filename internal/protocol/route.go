package protocol

import (
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
	"mccmesh/internal/region"
	"mccmesh/internal/simnet"
)

// routeMsg is a routing message being forwarded hop by hop
// (Algorithm 3/6 step 2). It carries the destination and the MCC records it
// has learned from the boundary nodes it crossed, mirroring the paper's
// routing messages.
type routeMsg struct {
	Source, Dest grid.Point
	Path         []grid.Point
	Known        []int
}

// routeHandler forwards routing messages using only node-local information:
// the node's own label, its neighbours' liveness and labels, and the MCC
// records stored at the node by the boundary construction.
type routeHandler struct {
	lab     *labeling.Labeling
	cs      *region.ComponentSet
	records map[int][]int
	orient  grid.Orientation

	delivered bool
	path      []grid.Point
	failedAt  *grid.Point
	hops      int
}

func (h *routeHandler) Init(*simnet.Context) {}

func (h *routeHandler) Receive(ctx *simnet.Context, env *simnet.Envelope) {
	msg, ok := env.Payload.(routeMsg)
	if !ok {
		return
	}
	self := ctx.Self()
	msg.Path = append(append([]grid.Point(nil), msg.Path...), self)

	// Pick up the records stored at this node.
	for _, id := range h.records[ctx.Mesh().Index(self)] {
		msg.Known = mergeID(msg.Known, id)
	}

	if self == msg.Dest {
		h.delivered = true
		h.path = msg.Path
		return
	}

	// The per-hop loop runs on dense node IDs: neighbour steps are table
	// lookups, fault and label checks are array reads, and the obstacle test
	// handed to the reachability sweep is ID-addressed component membership.
	m := ctx.Mesh()
	selfID := ctx.SelfID()
	destID := m.ID(msg.Dest)
	avoid := func(q int32) bool {
		for _, id := range msg.Known {
			c := h.cs.Components[id]
			if c.HasID(q) && !c.HasID(destID) {
				return true
			}
		}
		return false
	}
	var bestDir grid.Direction
	bestOff := -1
	for _, a := range m.Axes() {
		if self.Axis(a) == msg.Dest.Axis(a) {
			continue
		}
		dir := h.orient.Forward(a)
		vid := m.NeighborID(selfID, dir)
		if vid == mesh.NoNeighbor || m.FaultyAt(int(vid)) {
			continue
		}
		if vid != destID && h.lab.UnsafeAt(int(vid)) {
			continue
		}
		// Exclude the direction if the records known here say the forbidden
		// region behind v closes off the destination.
		if !minimal.ReachabilityID(m, avoid, m.Point(int(vid)), msg.Dest).CanReach(m.Point(int(vid))) {
			continue
		}
		off := msg.Dest.Axis(a) - self.Axis(a)
		if off < 0 {
			off = -off
		}
		if off > bestOff {
			bestDir, bestOff = dir, off
		}
	}
	if bestOff < 0 {
		h.failedAt = &self
		return
	}
	h.hops++
	ctx.SendDir(bestDir, KindRoute, msg)
}

// RouteResult is the outcome of one distributed routing attempt.
type RouteResult struct {
	// Delivered reports whether the message reached the destination.
	Delivered bool
	// Path is the node sequence the message followed (including endpoints)
	// when delivered.
	Path []grid.Point
	// Minimal reports whether the delivered path has length exactly D(s,d).
	Minimal bool
	// Hops counts the routing-message hops taken (successful or not).
	Hops int
	// StuckAt is the node where the routing ran out of candidates, if any.
	StuckAt *grid.Point
	// Stats is the raw simulator accounting.
	Stats simnet.Stats
}

// RunRouting forwards one routing message from s to d over the simulator,
// using the per-node records produced by RunInformationModel (Records may be
// nil, in which case only the labelling is available locally).
func RunRouting(m *mesh.Mesh, lab *labeling.Labeling, cs *region.ComponentSet, records map[int][]int, s, d grid.Point) *RouteResult {
	if records == nil {
		records = map[int][]int{}
	}
	h := &routeHandler{lab: lab, cs: cs, records: records, orient: grid.OrientationOf(s, d)}
	net := simnet.New(m, h)
	net.Post(s, KindRoute, routeMsg{Source: s, Dest: d})
	stats := mustRun(net)
	res := &RouteResult{
		Delivered: h.delivered,
		Path:      h.path,
		Hops:      h.hops,
		StuckAt:   h.failedAt,
		Stats:     stats,
	}
	if h.delivered {
		res.Minimal = len(h.path) == grid.Manhattan(s, d)+1
	}
	return res
}
