package protocol

import "mccmesh/internal/simnet"

// mustRun drains a protocol network to quiescence. The distributed protocols
// are bounded (every message makes progress on a finite mesh), so exhausting
// the simulator's event budget here is a protocol bug, not an overload
// condition — unlike the traffic engine, which surfaces the budget error to
// its caller, the protocol runners treat it as fatal.
func mustRun(net *simnet.Network) simnet.Stats {
	stats, err := net.Run()
	if err != nil {
		panic(err)
	}
	return stats
}
