package protocol

import (
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/simnet"
)

// DetectionResult is the outcome of the distributed feasibility check run at
// the source node.
type DetectionResult struct {
	// Feasible is the conclusion the source reaches: true iff every detection
	// message reported that its target face of the RMP is reachable.
	Feasible bool
	// ForwardHops counts detection-message hops; ReplyHops counts the hops of
	// the answers travelling back to the source.
	ForwardHops, ReplyHops int
	// Stats is the raw simulator accounting (includes the labelling exchange
	// when RunFullCheck is used).
	Stats simnet.Stats
}

// detectMsg is a walker-style detection message (2-D, Algorithm 3 step 1).
type detectMsg struct {
	Source, Dest   grid.Point
	Prefer, Detour grid.Axis
	Path           []grid.Point
	ID             int
}

// detectReply carries the walker's verdict back along its recorded path.
type detectReply struct {
	OK   bool
	ID   int
	Path []grid.Point // remaining reverse path
}

// floodMsg is a surface-sweep detection message (3-D, Algorithm 6 step 1).
type floodMsg struct {
	Source, Dest grid.Point
	Spread       [2]grid.Axis
	Detour       grid.Axis
	Target       grid.Axis
	Surface      int
}

// detectHandler implements both detection styles. Each node needs only its own
// label and its neighbours' labels, which it holds after the labelling
// protocol; here the handler is given the completed labelling to stand in for
// that local knowledge.
type detectHandler struct {
	lab    *labeling.Labeling
	orient grid.Orientation

	// Source-side bookkeeping (only the source node mutates these).
	walkerVerdicts map[int]bool
	surfaceReached map[int]bool
	forwardHops    int
	replyHops      int
}

func (h *detectHandler) Init(*simnet.Context) {}

func (h *detectHandler) safe(p grid.Point) bool { return h.lab.Safe(p) }

func (h *detectHandler) Receive(ctx *simnet.Context, env *simnet.Envelope) {
	switch msg := env.Payload.(type) {
	case detectMsg:
		h.stepWalker(ctx, msg)
	case detectReply:
		h.forwardReply(ctx, msg)
	case floodMsg:
		h.stepFlood(ctx, msg)
	}
}

// stepWalker advances the 2-D detection walker by one hop using local
// knowledge only, or starts its reply when it has reached a verdict.
func (h *detectHandler) stepWalker(ctx *simnet.Context, msg detectMsg) {
	self := ctx.Self()
	cc := h.orient.Canon(msg.Source, self)
	dc := h.orient.Canon(msg.Source, msg.Dest)

	conclude := func(ok bool) {
		if self == msg.Source {
			h.recordWalkerVerdict(msg.ID, ok)
			return
		}
		// Send the verdict back along the recorded path.
		prev := msg.Path[len(msg.Path)-1]
		h.replyHops++
		ctx.Send(prev, KindDetectReply, detectReply{OK: ok, ID: msg.ID, Path: msg.Path[:len(msg.Path)-1]})
	}

	if cc.Axis(msg.Prefer) >= dc.Axis(msg.Prefer) {
		conclude(true)
		return
	}
	next := h.orient.Ahead(self, msg.Prefer)
	if h.safe(next) {
		h.forwardHops++
		msg.Path = append(append([]grid.Point(nil), msg.Path...), self)
		ctx.Send(next, KindDetect, msg)
		return
	}
	if cc.Axis(msg.Detour) >= dc.Axis(msg.Detour) {
		conclude(false)
		return
	}
	side := h.orient.Ahead(self, msg.Detour)
	if !h.safe(side) {
		conclude(false)
		return
	}
	h.forwardHops++
	msg.Path = append(append([]grid.Point(nil), msg.Path...), self)
	ctx.Send(side, KindDetect, msg)
}

func (h *detectHandler) forwardReply(ctx *simnet.Context, msg detectReply) {
	if len(msg.Path) == 0 {
		h.recordWalkerVerdict(msg.ID, msg.OK)
		return
	}
	prev := msg.Path[len(msg.Path)-1]
	h.replyHops++
	ctx.Send(prev, KindDetectReply, detectReply{OK: msg.OK, ID: msg.ID, Path: msg.Path[:len(msg.Path)-1]})
}

func (h *detectHandler) recordWalkerVerdict(id int, ok bool) {
	if h.walkerVerdicts == nil {
		h.walkerVerdicts = make(map[int]bool)
	}
	h.walkerVerdicts[id] = ok
}

// stepFlood advances the 3-D surface sweep: spread moves are always taken,
// the detour move only when a spread direction is blocked by an unsafe node.
func (h *detectHandler) stepFlood(ctx *simnet.Context, msg floodMsg) {
	self := ctx.Self()
	key := floodKey(msg.Surface)
	if _, seen := ctx.Store()[key]; seen {
		return
	}
	ctx.Store()[key] = true

	cc := h.orient.Canon(msg.Source, self)
	dc := h.orient.Canon(msg.Source, msg.Dest)
	if cc.Axis(msg.Target) >= dc.Axis(msg.Target) {
		h.surfaceReachedMark(msg.Surface)
		return
	}
	box := grid.BoxOf(msg.Source, msg.Dest)
	try := func(a grid.Axis) {
		if cc.Axis(a) >= dc.Axis(a) {
			return
		}
		v := h.orient.Ahead(self, a)
		if !box.Contains(v) || !h.safe(v) {
			return
		}
		h.forwardHops++
		ctx.Send(v, KindDetect, msg)
	}
	blocked := false
	for _, a := range msg.Spread {
		if cc.Axis(a) < dc.Axis(a) && !h.safe(h.orient.Ahead(self, a)) {
			blocked = true
		}
		try(a)
	}
	if blocked {
		try(msg.Detour)
	}
}

func (h *detectHandler) surfaceReachedMark(surface int) {
	if h.surfaceReached == nil {
		h.surfaceReached = make(map[int]bool)
	}
	h.surfaceReached[surface] = true
}

func floodKey(surface int) string {
	return "flood-" + string(rune('0'+surface))
}

// RunDetection2D runs the two detection walkers of Algorithm 3 step 1 as real
// messages over the simulator and returns the source's conclusion.
func RunDetection2D(m *mesh.Mesh, lab *labeling.Labeling, s, d grid.Point) *DetectionResult {
	orient := grid.OrientationOf(s, d)
	h := &detectHandler{lab: lab, orient: orient}
	net := simnet.New(m, h)
	net.Post(s, KindDetect, detectMsg{Source: s, Dest: d, Prefer: grid.AxisY, Detour: grid.AxisX, ID: 0})
	net.Post(s, KindDetect, detectMsg{Source: s, Dest: d, Prefer: grid.AxisX, Detour: grid.AxisY, ID: 1})
	stats := mustRun(net)

	res := &DetectionResult{Feasible: true, ForwardHops: h.forwardHops, ReplyHops: h.replyHops, Stats: stats}
	for id := 0; id < 2; id++ {
		if !h.walkerVerdicts[id] {
			res.Feasible = false
		}
	}
	return res
}

// RunDetection3D runs the three RMP-surface sweeps of Algorithm 6 step 1 as a
// message flood and returns the source's conclusion. The reply cost is
// estimated as the Manhattan distance from the first node of each reached
// target face back to the source (the sweep result travels back along the
// swept surface).
func RunDetection3D(m *mesh.Mesh, lab *labeling.Labeling, s, d grid.Point) *DetectionResult {
	orient := grid.OrientationOf(s, d)
	h := &detectHandler{lab: lab, orient: orient}
	net := simnet.New(m, h)
	sweeps := []floodMsg{
		{Source: s, Dest: d, Spread: [2]grid.Axis{grid.AxisY, grid.AxisZ}, Detour: grid.AxisX, Target: grid.AxisY, Surface: 0},
		{Source: s, Dest: d, Spread: [2]grid.Axis{grid.AxisX, grid.AxisZ}, Detour: grid.AxisY, Target: grid.AxisZ, Surface: 1},
		{Source: s, Dest: d, Spread: [2]grid.Axis{grid.AxisX, grid.AxisY}, Detour: grid.AxisZ, Target: grid.AxisX, Surface: 2},
	}
	for _, sw := range sweeps {
		net.Post(s, KindDetect, sw)
	}
	stats := mustRun(net)

	res := &DetectionResult{Feasible: true, ForwardHops: h.forwardHops, ReplyHops: h.replyHops, Stats: stats}
	for i := range sweeps {
		if !h.surfaceReached[i] {
			res.Feasible = false
			continue
		}
		res.ReplyHops += grid.Manhattan(s, d) // upper bound for the returning answer
	}
	return res
}
