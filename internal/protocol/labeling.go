// Package protocol implements the paper's distributed information model on
// top of the simnet discrete-event simulator:
//
//   - the distributed labelling procedure (Algorithms 1 and 4), where every
//     node knows only its own health and its neighbours' liveness and learns
//     promotions through neighbour messages;
//   - the source feasibility-check detection messages (Algorithm 3 step 1 and
//     Algorithm 6 step 1);
//   - the MCC identification process (Algorithm 2 step 2) with its two
//     counter-rotating messages along the region perimeter; and
//   - boundary construction (Algorithm 2 step 3 / Algorithm 5 step 4), which
//     deposits MCC records along boundary lines and merges forbidden regions
//     when boundaries meet other MCCs.
//
// Every protocol reports the number of messages it exchanged, feeding the
// message-overhead experiment (E4), and its distributed result is checked
// against the centralised computation in the tests.
package protocol

import (
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/simnet"
)

// Message kinds used for statistics.
const (
	KindLabel       = "label"
	KindDetect      = "detect"
	KindDetectReply = "detect-reply"
	KindIdentify    = "identify"
	KindBoundary    = "boundary"
	KindRoute       = "route"
)

// labelState is the per-node state of the distributed labelling protocol.
type labelState struct {
	status   labeling.Status
	neighbor map[grid.Direction]labeling.Status
}

// labelMsg announces a node's (new) status to a neighbour.
type labelMsg struct {
	Status labeling.Status
}

// labelHandler runs the distributed labelling protocol.
type labelHandler struct {
	orient grid.Orientation
	border labeling.BorderPolicy
}

const labelStateKey = "label"

func (h *labelHandler) state(ctx *simnet.Context) *labelState {
	st, ok := ctx.Store()[labelStateKey].(*labelState)
	if !ok {
		st = &labelState{status: labeling.Safe, neighbor: make(map[grid.Direction]labeling.Status)}
		ctx.Store()[labelStateKey] = st
	}
	return st
}

// Init implements simnet.Handler: every healthy node learns its neighbours'
// liveness (local knowledge), evaluates the labelling rule once and announces
// a promotion if it fires immediately (e.g. a node wedged between faults).
func (h *labelHandler) Init(ctx *simnet.Context) {
	st := h.state(ctx)
	for _, dir := range ctx.Mesh().Directions() {
		if ctx.NeighborFaulty(dir) {
			st.neighbor[dir] = labeling.Faulty
		} else {
			st.neighbor[dir] = labeling.Safe
		}
	}
	h.evaluate(ctx, st)
}

// Receive implements simnet.Handler.
func (h *labelHandler) Receive(ctx *simnet.Context, env *simnet.Envelope) {
	msg, ok := env.Payload.(labelMsg)
	if !ok {
		return
	}
	st := h.state(ctx)
	dir := directionToward(ctx.Self(), env.From)
	st.neighbor[dir] = msg.Status
	h.evaluate(ctx, st)
}

// evaluate applies the labelling rule with purely local knowledge and
// broadcasts a promotion to the neighbours.
func (h *labelHandler) evaluate(ctx *simnet.Context, st *labelState) {
	if st.status != labeling.Safe {
		return
	}
	m := ctx.Mesh()
	blocked := func(a grid.Axis, forward bool, bad labeling.Status) bool {
		var dir grid.Direction
		if forward {
			dir = h.orient.Forward(a)
		} else {
			dir = h.orient.Backward(a)
		}
		q := grid.Step(ctx.Self(), dir)
		if !m.InBounds(q) {
			return h.border == labeling.BorderBlocked
		}
		s := st.neighbor[dir]
		return s == labeling.Faulty || s == bad
	}
	useless := true
	for _, a := range m.Axes() {
		if !blocked(a, true, labeling.Useless) {
			useless = false
			break
		}
	}
	if useless {
		st.status = labeling.Useless
		ctx.Broadcast(KindLabel, labelMsg{Status: labeling.Useless})
		return
	}
	cantReach := true
	for _, a := range m.Axes() {
		if !blocked(a, false, labeling.CantReach) {
			cantReach = false
			break
		}
	}
	if cantReach {
		st.status = labeling.CantReach
		ctx.Broadcast(KindLabel, labelMsg{Status: labeling.CantReach})
	}
}

func directionToward(from, to grid.Point) grid.Direction {
	switch {
	case to.X > from.X:
		return grid.XPos
	case to.X < from.X:
		return grid.XNeg
	case to.Y > from.Y:
		return grid.YPos
	case to.Y < from.Y:
		return grid.YNeg
	case to.Z > from.Z:
		return grid.ZPos
	default:
		return grid.ZNeg
	}
}

// LabelingResult is the outcome of the distributed labelling protocol.
type LabelingResult struct {
	// Statuses maps dense node index to the status the node itself concluded.
	Statuses []labeling.Status
	// Stats is the simulator's message accounting.
	Stats simnet.Stats
}

// Status returns the status node p concluded for itself.
func (r *LabelingResult) Status(m *mesh.Mesh, p grid.Point) labeling.Status {
	return r.Statuses[m.Index(p)]
}

// RunLabeling executes the distributed labelling protocol for one orientation
// and returns the per-node conclusions plus the message statistics.
func RunLabeling(m *mesh.Mesh, orient grid.Orientation, opts ...labeling.Options) *LabelingResult {
	border := labeling.BorderSafe
	if len(opts) > 0 {
		border = opts[0].Border
	}
	h := &labelHandler{orient: orient, border: border}
	net := simnet.New(m, h)
	stats := mustRun(net)

	res := &LabelingResult{
		Statuses: make([]labeling.Status, m.NodeCount()),
		Stats:    stats,
	}
	for i := 0; i < m.NodeCount(); i++ {
		p := m.Point(i)
		if m.FaultyAt(i) {
			res.Statuses[i] = labeling.Faulty
			continue
		}
		st, ok := net.Store(p)[labelStateKey].(*labelState)
		if ok {
			res.Statuses[i] = st.status
		}
	}
	return res
}
