package block

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/meshtest"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
)

func TestBoundingBoxSingleCluster(t *testing.T) {
	m := mesh.New2D(10, 10)
	// (3,3)-(4,3) form one cluster; (5,4) touches its bounding box diagonally,
	// so the two blocks merge into one rectangle.
	m.AddFaults(grid.Point{X: 3, Y: 3}, grid.Point{X: 4, Y: 3}, grid.Point{X: 5, Y: 4})
	r := Build(m, BoundingBox)
	if len(r.Blocks) != 1 {
		t.Fatalf("expected a single merged block, got %d", len(r.Blocks))
	}
	b := r.Blocks[0]
	want := grid.Box{Min: grid.Point{X: 3, Y: 3}, Max: grid.Point{X: 5, Y: 4}}
	if b.Bounds != want {
		t.Errorf("bounds = %v, want %v", b.Bounds, want)
	}
	if b.FaultyCount != 3 || b.NonFaulty() != want.Volume()-3 {
		t.Errorf("counts wrong: %+v", b)
	}
}

func TestBoundingBoxSeparatedByAFreeRow(t *testing.T) {
	m := mesh.New2D(10, 10)
	// A whole healthy row separates the clusters (gap 2), so the blocks stay
	// distinct.
	m.AddFaults(grid.Point{X: 3, Y: 3}, grid.Point{X: 4, Y: 3}, grid.Point{X: 4, Y: 5})
	r := Build(m, BoundingBox)
	if len(r.Blocks) != 2 {
		t.Fatalf("expected 2 blocks separated by a free row, got %d", len(r.Blocks))
	}
}

func TestBoundingBoxKeepsDistantBlocksSeparate(t *testing.T) {
	m := mesh.New3D(12, 12, 12)
	m.AddFaults(grid.Point{X: 2, Y: 2, Z: 2}, grid.Point{X: 9, Y: 9, Z: 9})
	r := Build(m, BoundingBox)
	if len(r.Blocks) != 2 {
		t.Fatalf("expected 2 blocks, got %d", len(r.Blocks))
	}
}

func TestBoundingBoxFigure5(t *testing.T) {
	// Figure 5(a): the seven clustered faults produce the rectangular block
	// RFB spanning x 4..7, y 4..8, z 4..7 once merged with the nearby
	// (7,8,4); the MCC model splits the same faults into much smaller regions.
	m := mesh.New3D(10, 10, 10)
	m.AddFaults(
		grid.Point{X: 5, Y: 5, Z: 6}, grid.Point{X: 6, Y: 5, Z: 5}, grid.Point{X: 5, Y: 6, Z: 5},
		grid.Point{X: 6, Y: 7, Z: 5}, grid.Point{X: 7, Y: 6, Z: 5}, grid.Point{X: 5, Y: 4, Z: 7},
		grid.Point{X: 4, Y: 5, Z: 7}, grid.Point{X: 7, Y: 8, Z: 4},
	)
	r := Build(m, BoundingBox)
	if len(r.Blocks) != 1 {
		t.Fatalf("expected the faults to merge into one RFB, got %d", len(r.Blocks))
	}
	b := r.Blocks[0]
	want := grid.Box{Min: grid.Point{X: 4, Y: 4, Z: 4}, Max: grid.Point{X: 7, Y: 8, Z: 7}}
	if b.Bounds != want {
		t.Errorf("RFB bounds = %v, want %v", b.Bounds, want)
	}
	// The paper's point: the RFB swallows far more healthy nodes than the MCC.
	l := labeling.Compute(m, grid.PositiveOrientation)
	cs := region.FindMCCs(l)
	if cs.TotalNonFaulty() >= b.NonFaulty() {
		t.Errorf("MCC absorbed %d healthy nodes, RFB %d; MCC must be strictly smaller",
			cs.TotalNonFaulty(), b.NonFaulty())
	}
}

func TestConvexityRule2DRectangles(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 25; trial++ {
		m := meshtest.Random2D(r, 12, 4+r.Intn(14))
		regions := Build(m, ConvexityRule)
		for _, b := range regions.Blocks {
			// In 2-D the convexity rule produces solid rectangles.
			if len(b.Nodes) != b.Bounds.Volume() {
				t.Fatalf("trial %d: block %v is not a solid rectangle (%d nodes, bounds volume %d)",
					trial, b.Bounds, len(b.Nodes), b.Bounds.Volume())
			}
		}
	}
}

func TestMCCContainedInConvexityBlocks(t *testing.T) {
	// Property I4: every node the MCC model marks unsafe is also inside a
	// convexity-rule fault block for the same faults (the MCC refines the
	// classical model).
	r := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		var m *mesh.Mesh
		if trial%2 == 0 {
			m = meshtest.Random2D(r, 12, 5+r.Intn(16))
		} else {
			m = meshtest.Random3D(r, 8, 5+r.Intn(30))
		}
		l := labeling.Compute(m, grid.PositiveOrientation)
		blocks := Build(m, ConvexityRule)
		m.ForEach(func(p grid.Point) {
			if l.Unsafe(p) && !blocks.Contains(p) {
				t.Fatalf("trial %d: node %v is MCC-unsafe but outside every convexity block", trial, p)
			}
		})
		if l.NonFaultyUnsafeCount() > blocks.TotalNonFaulty() {
			t.Fatalf("trial %d: MCC absorbed more healthy nodes (%d) than the block model (%d)",
				trial, l.NonFaultyUnsafeCount(), blocks.TotalNonFaulty())
		}
	}
}

func TestContainsAndBlockOf(t *testing.T) {
	m := mesh.New2D(8, 8)
	m.AddFaults(grid.Point{X: 2, Y: 2})
	r := Build(m, BoundingBox)
	if !r.Contains(grid.Point{X: 2, Y: 2}) {
		t.Error("fault not inside its own block")
	}
	if r.Contains(grid.Point{X: 7, Y: 7}) || r.BlockOf(grid.Point{X: 7, Y: 7}) != nil {
		t.Error("healthy distant node claimed by a block")
	}
	if r.BlockOf(grid.Point{X: -1, Y: 0}) != nil {
		t.Error("out-of-bounds point claimed by a block")
	}
}

func TestBlockedQueries(t *testing.T) {
	m := mesh.New2D(10, 10)
	m.AddFaults(grid.Point{X: 3, Y: 5}, grid.Point{X: 4, Y: 5}, grid.Point{X: 5, Y: 5})
	r := Build(m, BoundingBox)
	if len(r.Blocks) != 1 {
		t.Fatal("expected one block")
	}
	b := r.Blocks[0]
	if !r.Blocked(b, grid.Point{X: 4, Y: 2}, grid.Point{X: 4, Y: 9}) {
		t.Error("a column through the block must be blocked")
	}
	if r.Blocked(b, grid.Point{X: 0, Y: 0}, grid.Point{X: 9, Y: 9}) {
		t.Error("the corner-to-corner pair is not blocked by a 3-node wall")
	}
	if !r.BlockedByAny(grid.Point{X: 4, Y: 2}, grid.Point{X: 4, Y: 9}) {
		t.Error("BlockedByAny should agree with Blocked")
	}
	if r.BlockedByUnion(grid.Point{X: 0, Y: 0}, grid.Point{X: 9, Y: 9}) {
		t.Error("BlockedByUnion wrong for a clear pair")
	}
}

func TestTotals(t *testing.T) {
	m := mesh.New2D(10, 10)
	m.AddFaults(grid.Point{X: 1, Y: 1}, grid.Point{X: 2, Y: 2})
	r := Build(m, BoundingBox)
	if r.TotalNodes() != 4 || r.TotalNonFaulty() != 2 {
		t.Errorf("totals wrong: nodes=%d nonfaulty=%d", r.TotalNodes(), r.TotalNonFaulty())
	}
}

func TestModelString(t *testing.T) {
	if BoundingBox.String() == "" || ConvexityRule.String() == "" {
		t.Error("model names must not be empty")
	}
	if BoundingBox.String() == ConvexityRule.String() {
		t.Error("model names must differ")
	}
}
