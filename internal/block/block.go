// Package block implements the classical rectangular faulty-block (RFB) fault
// models the paper compares against.
//
// Two variants are provided:
//
//   - BoundingBox: faulty nodes are clustered into connected components, every
//     component is covered by its bounding box, and overlapping or adjacent
//     boxes are merged until the boxes are pairwise disjoint and non-adjacent.
//     This is the model drawn in Figure 5(a) of the paper and the usual
//     "rectangular faulty block" of the fault-tolerant routing literature.
//
//   - ConvexityRule: the orthogonal-convexity labelling used by Wu and
//     Boppana–Chalasani: a healthy node that has faulty/disabled neighbours in
//     two (or more) different dimensions is disabled, repeated to a fixpoint.
//     In 2-D the resulting regions are rectangles; in 3-D they are the usual
//     cuboid-ish fault blocks.
//
// Both expose the same Regions interface used by the routing baselines and the
// experiments.
package block

import (
	"fmt"
	"sort"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
)

// Model selects an RFB construction variant.
type Model int

const (
	// BoundingBox merges connected fault clusters into disjoint, non-adjacent
	// bounding boxes.
	BoundingBox Model = iota
	// ConvexityRule disables healthy nodes with faulty/disabled neighbours in
	// two or more different dimensions, to a fixpoint.
	ConvexityRule
)

// String implements fmt.Stringer.
func (m Model) String() string {
	if m == ConvexityRule {
		return "fb-rule"
	}
	return "rfb-bbox"
}

// Regions is the result of building rectangular faulty blocks over a mesh.
type Regions struct {
	// Mesh is the mesh the blocks were computed over.
	Mesh *mesh.Mesh
	// Model is the construction variant.
	Model Model
	// Blocks lists the fault blocks.
	Blocks []*Block

	inBlock []int    // node index -> block id or -1
	avoidW  []uint64 // lazily-built bitset form of inBlock (AvoidWords)
}

// Block is a single rectangular faulty block.
type Block struct {
	ID int
	// Bounds is the block extent. For the ConvexityRule model this is the
	// bounding box of the disabled component (which is rectangular in 2-D).
	Bounds grid.Box
	// Nodes lists the member nodes.
	Nodes []grid.Point
	// FaultyCount and DisabledCount break the membership down.
	FaultyCount, DisabledCount int
}

// Size returns the number of nodes in the block.
func (b *Block) Size() int { return len(b.Nodes) }

// NonFaulty returns the number of healthy nodes swallowed by the block.
func (b *Block) NonFaulty() int { return b.DisabledCount }

// String implements fmt.Stringer.
func (b *Block) String() string {
	return fmt.Sprintf("Block#%d{%v nodes=%d faulty=%d}", b.ID, b.Bounds, len(b.Nodes), b.FaultyCount)
}

// Build constructs the fault blocks of m under the chosen model.
func Build(m *mesh.Mesh, model Model) *Regions {
	switch model {
	case ConvexityRule:
		return buildConvexity(m)
	default:
		return buildBoundingBox(m)
	}
}

// --- Bounding-box model ---------------------------------------------------

func buildBoundingBox(m *mesh.Mesh) *Regions {
	// 1. Bounding boxes of connected fault clusters.
	var boxes []grid.Box
	visited := make([]bool, m.NodeCount())
	var stack []int
	for start := 0; start < m.NodeCount(); start++ {
		if !m.FaultyAt(start) || visited[start] {
			continue
		}
		box := grid.Box{Min: m.Point(start), Max: m.Point(start)}
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			p := m.Point(idx)
			box = box.Extend(p)
			for _, d := range m.Directions() {
				q, ok := m.Neighbor(p, d)
				if !ok {
					continue
				}
				qi := m.Index(q)
				if m.FaultyAt(qi) && !visited[qi] {
					visited[qi] = true
					stack = append(stack, qi)
				}
			}
		}
		boxes = append(boxes, box)
	}

	// 2. Merge boxes that overlap or touch (gap 0 means they share or abut a
	// node; merging keeps blocks disjoint and non-adjacent as the model
	// requires).
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(boxes) && !merged; i++ {
			for j := i + 1; j < len(boxes); j++ {
				if boxes[i].Gap(boxes[j]) <= 1 {
					boxes[i] = boxes[i].Union(boxes[j])
					boxes = append(boxes[:j], boxes[j+1:]...)
					merged = true
					break
				}
			}
		}
	}

	return regionsFromBoxes(m, BoundingBox, boxes)
}

func regionsFromBoxes(m *mesh.Mesh, model Model, boxes []grid.Box) *Regions {
	r := &Regions{Mesh: m, Model: model, inBlock: make([]int, m.NodeCount())}
	for i := range r.inBlock {
		r.inBlock[i] = -1
	}
	sort.Slice(boxes, func(i, j int) bool {
		if boxes[i].Min.Z != boxes[j].Min.Z {
			return boxes[i].Min.Z < boxes[j].Min.Z
		}
		if boxes[i].Min.Y != boxes[j].Min.Y {
			return boxes[i].Min.Y < boxes[j].Min.Y
		}
		return boxes[i].Min.X < boxes[j].Min.X
	})
	for _, box := range boxes {
		b := &Block{ID: len(r.Blocks), Bounds: box}
		box.ForEach(func(p grid.Point) {
			if !m.InBounds(p) {
				return
			}
			b.Nodes = append(b.Nodes, p)
			if m.IsFaulty(p) {
				b.FaultyCount++
			} else {
				b.DisabledCount++
			}
			r.inBlock[m.Index(p)] = b.ID
		})
		r.Blocks = append(r.Blocks, b)
	}
	return r
}

// --- Convexity-rule model ---------------------------------------------------

func buildConvexity(m *mesh.Mesh) *Regions {
	disabled := make([]bool, m.NodeCount())
	for i := 0; i < m.NodeCount(); i++ {
		disabled[i] = m.FaultyAt(i)
	}
	blockedAxes := func(p grid.Point) int {
		n := 0
		for _, a := range m.Axes() {
			hit := false
			for _, sign := range []int{1, -1} {
				q := p.WithAxis(a, p.Axis(a)+sign)
				if m.InBounds(q) && disabled[m.Index(q)] {
					hit = true
					break
				}
			}
			if hit {
				n++
			}
		}
		return n
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < m.NodeCount(); i++ {
			if disabled[i] {
				continue
			}
			if blockedAxes(m.Point(i)) >= 2 {
				disabled[i] = true
				changed = true
			}
		}
	}

	// Connected components of disabled nodes become the blocks.
	r := &Regions{Mesh: m, Model: ConvexityRule, inBlock: make([]int, m.NodeCount())}
	for i := range r.inBlock {
		r.inBlock[i] = -1
	}
	visited := make([]bool, m.NodeCount())
	var stack []int
	for start := 0; start < m.NodeCount(); start++ {
		if !disabled[start] || visited[start] {
			continue
		}
		b := &Block{ID: len(r.Blocks), Bounds: grid.Box{Min: m.Point(start), Max: m.Point(start)}}
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			p := m.Point(idx)
			b.Nodes = append(b.Nodes, p)
			b.Bounds = b.Bounds.Extend(p)
			if m.FaultyAt(idx) {
				b.FaultyCount++
			} else {
				b.DisabledCount++
			}
			r.inBlock[idx] = b.ID
			for _, d := range m.Directions() {
				q, ok := m.Neighbor(p, d)
				if !ok {
					continue
				}
				qi := m.Index(q)
				if disabled[qi] && !visited[qi] {
					visited[qi] = true
					stack = append(stack, qi)
				}
			}
		}
		sort.Slice(b.Nodes, func(i, j int) bool { return m.Index(b.Nodes[i]) < m.Index(b.Nodes[j]) })
		r.Blocks = append(r.Blocks, b)
	}
	return r
}

// --- Shared queries ---------------------------------------------------------

// Contains reports whether p lies inside any fault block.
func (r *Regions) Contains(p grid.Point) bool {
	return r.Mesh.InBounds(p) && r.inBlock[r.Mesh.Index(p)] >= 0
}

// ContainsID reports block membership by dense node ID (the index-first fast
// path of the routing baseline).
func (r *Regions) ContainsID(id int32) bool {
	return id >= 0 && r.inBlock[id] >= 0
}

// AvoidID returns an ID-addressed obstacle test rejecting every block node;
// it matches minimal.AvoidID and reads the block table directly.
func (r *Regions) AvoidID() func(id int32) bool {
	inBlock := r.inBlock
	return func(id int32) bool { return inBlock[id] >= 0 }
}

// AvoidWords returns the union of all blocks as a bitset over dense node IDs
// — the word-level form of AvoidID that the row-at-a-time reachability sweep
// consumes. Built once on first use: a Regions snapshot is immutable (fault
// changes rebuild it wholesale). The caller must not mutate the slice.
func (r *Regions) AvoidWords() []uint64 {
	if r.avoidW == nil {
		w := make([]uint64, (len(r.inBlock)+63)/64)
		for i, b := range r.inBlock {
			if b >= 0 {
				w[i>>6] |= 1 << uint(i&63)
			}
		}
		r.avoidW = w
	}
	return r.avoidW
}

// BlockOf returns the block containing p, or nil.
func (r *Regions) BlockOf(p grid.Point) *Block {
	if !r.Mesh.InBounds(p) {
		return nil
	}
	id := r.inBlock[r.Mesh.Index(p)]
	if id < 0 {
		return nil
	}
	return r.Blocks[id]
}

// Avoid returns a minimal.Avoid rejecting every block node.
func (r *Regions) Avoid() minimal.Avoid {
	return func(p grid.Point) bool { return r.Contains(p) }
}

// TotalNodes returns the total number of nodes across all blocks.
func (r *Regions) TotalNodes() int {
	n := 0
	for _, b := range r.Blocks {
		n += b.Size()
	}
	return n
}

// TotalNonFaulty returns the number of healthy nodes swallowed by blocks (the
// baseline side of the paper's first evaluation metric).
func (r *Regions) TotalNonFaulty() int {
	n := 0
	for _, b := range r.Blocks {
		n += b.NonFaulty()
	}
	return n
}

// Blocked reports whether block b alone blocks every monotone path from
// `from` to `to`.
func (r *Regions) Blocked(b *Block, from, to grid.Point) bool {
	if !r.Mesh.InBounds(from) || !r.Mesh.InBounds(to) {
		return true
	}
	if b.Bounds.Contains(from) || b.Bounds.Contains(to) {
		return true
	}
	if !b.Bounds.Intersects(grid.BoxOf(from, to)) {
		return false
	}
	avoid := func(p grid.Point) bool { return b.Bounds.Contains(p) }
	return !minimal.Exists(r.Mesh, avoid, from, to)
}

// BlockedByAny reports whether any single block blocks every monotone path
// from `from` to `to`.
func (r *Regions) BlockedByAny(from, to grid.Point) bool {
	for _, b := range r.Blocks {
		if r.Blocked(b, from, to) {
			return true
		}
	}
	return false
}

// BlockedByUnion reports whether the union of all blocks blocks every
// monotone path from `from` to `to`.
func (r *Regions) BlockedByUnion(from, to grid.Point) bool {
	return !minimal.Exists(r.Mesh, r.Avoid(), from, to)
}
