package experiments

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"mccmesh/internal/scenario"
)

// tinyConfig keeps the sweeps fast enough for the unit-test suite while still
// exercising every code path.
func tinyConfig() Config {
	return Config{
		Dim:         7,
		FaultCounts: []int{5, 20},
		Trials:      4,
		Pairs:       4,
		MinDistance: 6,
		Seed:        99,
	}
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage", cell)
	}
	return v
}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number", cell)
	}
	return v
}

func TestE1ShapeAndClaim(t *testing.T) {
	tab := E1NonFaultyInclusion(tinyConfig())
	if len(tab.Rows) != 2 {
		t.Fatalf("expected one row per fault count, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		mcc := parseF(t, row[2])
		rfb := parseF(t, row[4])
		rule := parseF(t, row[5])
		// The paper's headline claim: the MCC model absorbs no more healthy
		// nodes than either rectangular-block baseline.
		if mcc > rfb+1e-9 {
			t.Errorf("MCC (%v) absorbed more than RFB (%v)", mcc, rfb)
		}
		if mcc > rule+1e-9 {
			t.Errorf("MCC (%v) absorbed more than the rule-based blocks (%v)", mcc, rule)
		}
	}
}

func TestE2ShapeAndClaim(t *testing.T) {
	tab := E2SuccessRate(tinyConfig())
	if len(tab.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		mcc := parsePct(t, row[1])
		rfb := parsePct(t, row[2])
		optimal := parsePct(t, row[6])
		if mcc < rfb-1e-9 {
			t.Errorf("MCC success (%v%%) below RFB success (%v%%)", mcc, rfb)
		}
		if mcc > optimal+1e-9 {
			t.Errorf("MCC success (%v%%) above the optimum (%v%%)", mcc, optimal)
		}
		// The MCC model is exactly optimal (ultimacy); allow a tiny slack for
		// the percentage formatting.
		if optimal-mcc > 0.11 {
			t.Errorf("MCC success (%v%%) should match the optimum (%v%%)", mcc, optimal)
		}
	}
}

func TestE3Shape(t *testing.T) {
	tab := E3SuccessByDistance(tinyConfig(), 15)
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 distance buckets, got %d", len(tab.Rows))
	}
}

func TestE4MessageOverhead(t *testing.T) {
	tab := E4MessageOverhead(tinyConfig())
	if len(tab.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tab.Rows))
	}
	// More faults must not need fewer boundary messages on average... this is
	// stochastic, so only check the cells parse and the heavier row has some
	// traffic.
	heavy := tab.Rows[1]
	if parseF(t, heavy[2]) <= 0 {
		t.Error("identification messages should be positive with 20 faults")
	}
	if parseF(t, heavy[3]) <= 0 {
		t.Error("boundary messages should be positive with 20 faults")
	}
	if parseF(t, heavy[5]) <= 0 {
		t.Error("some nodes should hold records with 20 faults")
	}
}

func TestE5Ablation(t *testing.T) {
	tab := E5RegionAblation(tinyConfig())
	for _, row := range tab.Rows {
		safe := parseF(t, row[1])
		blocked := parseF(t, row[2])
		if safe > blocked+1e-9 {
			t.Errorf("border-safe labelling (%v) absorbed more than border-blocked (%v)", safe, blocked)
		}
	}
}

func TestE6Adaptivity(t *testing.T) {
	tab := E6Adaptivity(tinyConfig(), 15)
	if len(tab.Rows) != 3 {
		t.Fatalf("expected 3 metric rows, got %d", len(tab.Rows))
	}
	free := parseF(t, tab.Rows[0][1])
	mcc := parseF(t, tab.Rows[0][2])
	rfb := parseF(t, tab.Rows[0][3])
	if mcc > free+1e-9 {
		t.Errorf("MCC path count (%v) exceeds the fault-free count (%v)", mcc, free)
	}
	if rfb > mcc+1e-9 {
		t.Errorf("RFB path count (%v) exceeds the MCC count (%v); the coarser model cannot preserve more paths", rfb, mcc)
	}
}

// tinyTrafficConfig keeps E7 fast for the unit-test suite.
func tinyTrafficConfig() TrafficConfig {
	return TrafficConfig{
		Patterns: []string{"uniform", "transpose", "hotspot"},
		Models:   []string{"mcc", "rfb"},
		Rates:    []float64{0.01, 0.03},
		Faults:   12,
		Trials:   3,
		Warmup:   20,
		Window:   80,
		Workers:  1,
	}
}

func TestE7ShapeAndSanity(t *testing.T) {
	tab, err := E7Throughput(tinyConfig(), tinyTrafficConfig())
	if err != nil {
		t.Fatal(err)
	}
	tc := tinyTrafficConfig()
	want := len(tc.Patterns) * len(tc.Models) * len(tc.Rates)
	if len(tab.Rows) != want {
		t.Fatalf("expected %d rows (patterns x models x rates), got %d", want, len(tab.Rows))
	}
	for _, row := range tab.Rows {
		delivered := parsePct(t, row[3])
		if delivered <= 0 || delivered > 100 {
			t.Errorf("row %v: delivered ratio %v%% out of range", row[:3], delivered)
		}
		throughput := parseF(t, row[4])
		rate := parseF(t, row[2])
		if throughput <= 0 || throughput > rate*1.5 {
			t.Errorf("row %v: throughput %v implausible for rate %v", row[:3], throughput, rate)
		}
		p50, p95, p99 := parseF(t, row[6]), parseF(t, row[7]), parseF(t, row[8])
		if p50 > p95 || p95 > p99 {
			t.Errorf("row %v: percentiles not monotone: %v %v %v", row[:3], p50, p95, p99)
		}
	}
}

func TestE7BitIdenticalAcrossWorkerCounts(t *testing.T) {
	cfg := tinyConfig()
	tc := tinyTrafficConfig()
	tc.Workers = 1
	serial, err := E7Throughput(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	tc.Workers = 8
	parallel, err := E7Throughput(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if serial.CSV() != parallel.CSV() {
		t.Errorf("E7 tables differ between 1 and 8 workers:\n--- 1 worker\n%s\n--- 8 workers\n%s", serial.CSV(), parallel.CSV())
	}
}

func TestE7RejectsUnknownNames(t *testing.T) {
	cfg := tinyConfig()
	tc := tinyTrafficConfig()
	tc.Patterns = []string{"nope"}
	if _, err := E7Throughput(cfg, tc); err == nil {
		t.Error("unknown pattern should error")
	}
	tc = tinyTrafficConfig()
	tc.Models = []string{"nope"}
	if _, err := E7Throughput(cfg, tc); err == nil {
		t.Error("unknown model should error")
	}
}

func TestRunAll(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 2
	cfg.Pairs = 2
	tables := RunAll(cfg)
	if len(tables) != 7 {
		t.Fatalf("RunAll returned %d tables, want 7", len(tables))
	}
	for _, tab := range tables {
		if tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
			t.Errorf("table %q looks empty", tab.Title)
		}
		if !strings.Contains(tab.Render(), tab.Columns[0]) {
			t.Errorf("table %q render missing its header", tab.Title)
		}
	}
}

// TestE7SpecMatchesCheckedInFile pins specs/e7.json to the spec `mcc bench
// -exp e7 -dump-spec` produces with default flags, so the checked-in file is
// guaranteed to reproduce the E7 table.
func TestE7SpecMatchesCheckedInFile(t *testing.T) {
	cfg := DefaultConfig()
	tc := DefaultTrafficConfig()
	tc.Faults = cfg.FaultCounts[len(cfg.FaultCounts)/2]
	tc.Trials = cfg.Trials
	spec, err := SpecFor("e7", cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.WriteSpec(&buf); err != nil {
		t.Fatal(err)
	}
	checkedIn, err := os.ReadFile("../../specs/e7.json")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(checkedIn) {
		t.Errorf("specs/e7.json is stale; regenerate with `mcc bench -exp e7 -dump-spec`.\n--- code\n%s\n--- file\n%s", buf.String(), checkedIn)
	}
}

// TestSpecForRejectsUnknownExperiment keeps the bench -dump-spec error path
// actionable.
func TestSpecForRejectsUnknownExperiment(t *testing.T) {
	if _, err := SpecFor("e9", DefaultConfig(), DefaultTrafficConfig()); err == nil {
		t.Error("unknown experiment should error")
	}
	spec, err := SpecFor("e1", tinyConfig(), DefaultTrafficConfig())
	if err != nil || spec.Measure.Kind != scenario.MeasureAbsorption {
		t.Errorf("e1 alias: %v %v", spec.Measure.Kind, err)
	}
	if spec.Seed != tinyConfig().Seed {
		t.Errorf("e1 spec seed %d, want the unshifted config seed %d", spec.Seed, tinyConfig().Seed)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Dim <= 0 || len(cfg.FaultCounts) == 0 || cfg.Trials <= 0 {
		t.Error("default config incomplete")
	}
	if cfg.TwoD {
		t.Error("the paper's evaluation is on 3-D meshes")
	}
}

func TestClusteredWorkload(t *testing.T) {
	cfg := tinyConfig()
	cfg.Clustered = true
	cfg.ClusterSize = 4
	cfg.FaultCounts = []int{16}
	cfg.Trials = 3
	tab := E1NonFaultyInclusion(cfg)
	if !strings.Contains(tab.Title, "clustered") {
		t.Errorf("title should mention the clustered workload: %q", tab.Title)
	}
	if len(tab.Rows) != 1 {
		t.Fatal("expected one row")
	}
	// Clustered faults form larger regions; the MCC column must still not
	// exceed the RFB column.
	if parseF(t, tab.Rows[0][2]) > parseF(t, tab.Rows[0][4])+1e-9 {
		t.Error("MCC absorbed more than RFB under clustered faults")
	}
}

func TestConfig2D(t *testing.T) {
	cfg := tinyConfig()
	cfg.TwoD = true
	cfg.FaultCounts = []int{4}
	cfg.Trials = 2
	cfg.Pairs = 2
	tab := E1NonFaultyInclusion(cfg)
	if len(tab.Rows) != 1 {
		t.Fatal("2-D sweep should produce one row")
	}
	if !strings.Contains(tab.Title, "7x7 ") {
		t.Errorf("2-D title should mention the 7x7 mesh: %q", tab.Title)
	}
}
