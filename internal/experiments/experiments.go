// Package experiments is the evaluation harness described (but not
// tabulated) in the paper plus the supporting ablations, mapping one function
// to each experiment of DESIGN.md §4:
//
//	E1  NonFaultyInclusion  – healthy nodes absorbed by fault regions, MCC vs RFB
//	E2  SuccessRate         – minimal-routing success rate per information model
//	E3  SuccessByDistance   – success rate vs source–destination distance
//	E4  MessageOverhead     – messages used by the distributed information model
//	E5  RegionAblation      – region sizes per model variant and border policy
//	E6  Adaptivity          – routing flexibility left by each information model
//	E7  Throughput          – continuous-traffic throughput/latency per pattern,
//	                          information model and injection rate
//
// Since the declarative scenario API landed, every experiment here is a thin
// driver over package scenario: a Config (plus TrafficConfig for E7) is
// translated into a scenario.Spec — see SpecFor — and the spec is what
// actually runs. The same spec, serialised to JSON, reproduces any of these
// tables via `mcc run -spec file.json`, bit-identically at any worker count.
package experiments

import (
	"context"
	"fmt"

	"mccmesh/internal/scenario"
	"mccmesh/internal/stats"
)

// Config parameterises an experiment sweep.
type Config struct {
	// Dim is the mesh edge length (Dim³ nodes in 3-D, Dim² in 2-D).
	Dim int
	// TwoD selects 2-D meshes instead of 3-D.
	TwoD bool
	// FaultCounts is the sweep over the number of injected faults.
	FaultCounts []int
	// Trials is the number of random fault configurations per fault count.
	Trials int
	// Pairs is the number of source/destination pairs sampled per
	// configuration (routing experiments).
	Pairs int
	// MinDistance is the minimum Manhattan distance between sampled pairs.
	MinDistance int
	// Seed makes the sweep reproducible.
	Seed uint64
	// Clustered switches the workload from uniform random faults to clusters
	// of ClusterSize adjacent faults (spatially correlated failures), which is
	// the regime where fault regions actually form.
	Clustered   bool
	ClusterSize int
}

// DefaultConfig returns the configuration used for the tables in
// EXPERIMENTS.md: a 10×10×10 mesh, fault counts sweeping 1–15 % of the nodes.
func DefaultConfig() Config {
	return Config{
		Dim:         10,
		FaultCounts: []int{10, 25, 50, 75, 100, 150},
		Trials:      30,
		Pairs:       10,
		MinDistance: 10,
		Seed:        20050500, // ICPP 2005, paper #500
	}
}

// mesh returns the scenario topology of the configuration.
func (c Config) mesh() scenario.MeshSpec {
	if c.TwoD {
		return scenario.Square(c.Dim)
	}
	return scenario.Cube(c.Dim)
}

// inject returns the scenario fault injector of the configuration.
func (c Config) inject() scenario.Component {
	if c.Clustered {
		size := c.ClusterSize
		if size <= 0 {
			size = 5
		}
		return scenario.Component{Name: "clustered", Params: map[string]any{"size": size}}
	}
	return scenario.C("uniform")
}

// seedOffset fixes the per-experiment seed streams: experiment Ek draws from
// Config.Seed + (k-1), exactly as the pre-scenario harness did, so historical
// tables stay reproducible.
var seedOffset = map[string]uint64{
	scenario.MeasureAbsorption: 0,
	scenario.MeasureSuccess:    1,
	scenario.MeasureDistance:   2,
	scenario.MeasureOverhead:   3,
	scenario.MeasureAblation:   4,
	scenario.MeasureAdaptivity: 5,
	scenario.MeasureTraffic:    6,
}

// spec translates the configuration into a declarative scenario spec for the
// given measure, overriding the fault-count sweep when counts is non-nil.
func (c Config) spec(measure string, counts []int) scenario.Spec {
	if counts == nil {
		counts = c.FaultCounts
	}
	minDist := c.MinDistance
	if measure == scenario.MeasureDistance {
		// E3 spans all distances; it uses the measure's own floor, not the
		// config's pair filter, and the dumped spec records that.
		minDist = 2
	}
	return scenario.Spec{
		Mesh:   c.mesh(),
		Faults: scenario.FaultSpec{Inject: c.inject(), Counts: counts},
		Measure: scenario.MeasureSpec{
			Kind:        measure,
			Pairs:       c.Pairs,
			MinDistance: minDist,
		},
		Seed:   c.Seed + seedOffset[measure],
		Trials: c.Trials,
	}
}

// run executes a spec whose parameters came from a Config. The config
// surface cannot express an invalid spec, so failures are programming
// errors.
func run(spec scenario.Spec) *stats.Table {
	sc, err := scenario.New(spec)
	if err != nil {
		panic(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		panic(err)
	}
	return rep.Table
}

// E1NonFaultyInclusion reproduces the paper's first metric: the average
// number of non-faulty nodes included in fault regions, comparing the MCC
// model against the two rectangular-faulty-block baselines.
func E1NonFaultyInclusion(cfg Config) *stats.Table {
	return run(cfg.spec(scenario.MeasureAbsorption, nil))
}

// E2SuccessRate reproduces the paper's second metric: the percentage of
// source/destination pairs for which a minimal path can be routed, per
// information model.
func E2SuccessRate(cfg Config) *stats.Table {
	return run(cfg.spec(scenario.MeasureSuccess, nil))
}

// E3SuccessByDistance measures how the success rate degrades with the
// source/destination distance at a fixed fault count.
func E3SuccessByDistance(cfg Config, faults int) *stats.Table {
	return run(cfg.spec(scenario.MeasureDistance, []int{faults}))
}

// E4MessageOverhead measures the number of messages the distributed
// information model exchanges: labelling announcements, identification
// messages, boundary messages and the per-pair detection messages.
func E4MessageOverhead(cfg Config) *stats.Table {
	return run(cfg.spec(scenario.MeasureOverhead, nil))
}

// E5RegionAblation compares design choices: border policy, block model
// variants and how often a single MCC explains an infeasible pair.
func E5RegionAblation(cfg Config) *stats.Table {
	return run(cfg.spec(scenario.MeasureAblation, nil))
}

// E6Adaptivity measures the routing flexibility each information model
// preserves: the number of distinct minimal paths that avoid the model's
// fault regions, and the minimum number of allowed forwarding directions seen
// along an MCC route.
func E6Adaptivity(cfg Config, faults int) *stats.Table {
	return run(cfg.spec(scenario.MeasureAdaptivity, []int{faults}))
}

// TrafficConfig parameterises the E7 continuous-traffic experiment.
type TrafficConfig struct {
	// Patterns and Models name the traffic patterns and information models to
	// sweep (see traffic.PatternNames and traffic.ModelNames).
	Patterns []string
	Models   []string
	// Rates is the sweep over the per-node injection probability per tick.
	Rates []float64
	// Faults is the static fault count injected before traffic starts.
	Faults int
	// Trials is the number of fault configurations per sweep cell (E7 runs
	// many packets per trial, so it uses fewer trials than E1–E6).
	Trials int
	// Warmup and Window are the measurement timeline in ticks.
	Warmup, Window int
	// Workers shards trials across goroutines; <= 0 selects GOMAXPROCS. The
	// table is bit-identical for every worker count.
	Workers int
	// HotspotFraction tunes the hotspot pattern (0 selects its default).
	HotspotFraction float64
}

// DefaultTrafficConfig returns the E7 configuration used in EXPERIMENTS.md:
// three classic patterns, the MCC model against the rectangular-block
// baseline, and a rate sweep bracketing saturation.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{
		Patterns: []string{"uniform", "transpose", "hotspot"},
		Models:   []string{"mcc", "rfb"},
		Rates:    []float64{0.005, 0.01, 0.02},
		Faults:   30,
		Trials:   5,
		Warmup:   50,
		Window:   200,
	}
}

// TrafficSpec translates an E7 configuration into a declarative scenario
// spec. Dumped to JSON, it reproduces the E7 table via `mcc run -spec`.
func TrafficSpec(cfg Config, tc TrafficConfig) scenario.Spec {
	return scenario.Spec{
		Mesh:   cfg.mesh(),
		Faults: scenario.FaultSpec{Inject: cfg.inject(), Counts: []int{tc.Faults}},
		Models: scenario.ComponentsOf(tc.Models...),
		Workload: scenario.WorkloadSpec{
			Patterns: scenario.PatternComponents(tc.Patterns, tc.HotspotFraction),
			Rates:    tc.Rates,
		},
		Measure: scenario.MeasureSpec{
			Kind:   scenario.MeasureTraffic,
			Warmup: tc.Warmup,
			Window: tc.Window,
		},
		Seed:    cfg.Seed + seedOffset[scenario.MeasureTraffic],
		Trials:  tc.Trials,
		Workers: tc.Workers,
	}
}

// E7Throughput measures sustained-load behaviour: for each traffic pattern ×
// information model × injection rate it runs continuous traffic on freshly
// faulted meshes and reports accepted throughput (deliveries per node per
// tick), delivery ratio and latency percentiles. Trials are sharded across
// parallel workers with per-trial derived seeds, so the same configuration
// produces the same table at any worker count.
func E7Throughput(cfg Config, tc TrafficConfig) (*stats.Table, error) {
	sc, err := scenario.New(TrafficSpec(cfg, tc))
	if err != nil {
		return nil, err
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return rep.Table, nil
}

// SpecFor returns the declarative spec of the named experiment (e1..e7 or a
// measure name) under the given configuration — the bridge between the flag
// surface of `mcc bench` and spec files.
func SpecFor(exp string, cfg Config, tc TrafficConfig) (scenario.Spec, error) {
	e, err := scenario.Measures.Lookup(exp)
	if err != nil {
		return scenario.Spec{}, err
	}
	mid := 50
	if len(cfg.FaultCounts) > 0 {
		mid = cfg.FaultCounts[len(cfg.FaultCounts)/2]
	}
	switch e.Name {
	case scenario.MeasureTraffic:
		return TrafficSpec(cfg, tc), nil
	case scenario.MeasureDistance, scenario.MeasureAdaptivity:
		return cfg.spec(e.Name, []int{mid}), nil
	default:
		return cfg.spec(e.Name, nil), nil
	}
}

// RunAll executes every experiment with the given configuration and returns
// the tables in DESIGN.md order.
func RunAll(cfg Config) []*stats.Table {
	midFaults := 50
	if len(cfg.FaultCounts) > 0 {
		midFaults = cfg.FaultCounts[len(cfg.FaultCounts)/2]
	}
	tables := []*stats.Table{
		E1NonFaultyInclusion(cfg),
		E2SuccessRate(cfg),
		E3SuccessByDistance(cfg, midFaults),
		E4MessageOverhead(cfg),
		E5RegionAblation(cfg),
		E6Adaptivity(cfg, midFaults),
	}
	tc := DefaultTrafficConfig()
	tc.Faults = midFaults
	e7, err := E7Throughput(cfg, tc)
	if err != nil {
		// The default names are hardcoded against the traffic registries; a
		// mismatch is a programming error, not a runtime condition.
		panic(err)
	}
	return append(tables, e7)
}

// String renders the configuration compactly (used in logs and errors).
func (c Config) String() string {
	return fmt.Sprintf("Config{%s, faults=%v, trials=%d, pairs=%d, seed=%d}",
		c.mesh(), c.FaultCounts, c.Trials, c.Pairs, c.Seed)
}
