// Package experiments implements the simulation study described (but not
// tabulated) in the paper plus the supporting ablations, mapping one function
// to each experiment of DESIGN.md §4:
//
//	E1  NonFaultyInclusion  – healthy nodes absorbed by fault regions, MCC vs RFB
//	E2  SuccessRate         – minimal-routing success rate per information model
//	E3  SuccessByDistance   – success rate vs source–destination distance
//	E4  MessageOverhead     – messages used by the distributed information model
//	E5  RegionAblation      – region sizes per model variant and border policy
//	E6  Adaptivity          – routing flexibility left by each information model
//	E7  Throughput          – continuous-traffic throughput/latency per pattern,
//	                          information model and injection rate
//
// Every experiment consumes a Config, runs a deterministic seeded sweep and
// returns a stats.Table ready for printing or CSV export. E7 additionally
// shards its trials across parallel workers; its tables are bit-identical for
// any worker count.
package experiments

import (
	"fmt"

	"mccmesh/internal/block"
	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/feasibility"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
	"mccmesh/internal/protocol"
	"mccmesh/internal/region"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
	"mccmesh/internal/simnet"
	"mccmesh/internal/stats"
	"mccmesh/internal/traffic"
)

// Config parameterises an experiment sweep.
type Config struct {
	// Dim is the mesh edge length (Dim³ nodes in 3-D, Dim² in 2-D).
	Dim int
	// TwoD selects 2-D meshes instead of 3-D.
	TwoD bool
	// FaultCounts is the sweep over the number of injected faults.
	FaultCounts []int
	// Trials is the number of random fault configurations per fault count.
	Trials int
	// Pairs is the number of source/destination pairs sampled per
	// configuration (routing experiments).
	Pairs int
	// MinDistance is the minimum Manhattan distance between sampled pairs.
	MinDistance int
	// Seed makes the sweep reproducible.
	Seed uint64
	// Clustered switches the workload from uniform random faults to clusters
	// of ClusterSize adjacent faults (spatially correlated failures), which is
	// the regime where fault regions actually form.
	Clustered   bool
	ClusterSize int
}

// injector returns the fault workload for n faults under this configuration.
func (c Config) injector(n int) fault.Injector {
	if c.Clustered {
		size := c.ClusterSize
		if size <= 0 {
			size = 5
		}
		clusters := (n + size - 1) / size
		return fault.Clustered{Clusters: clusters, Size: size}
	}
	return fault.Uniform{Count: n}
}

func (c Config) workloadName() string {
	if c.Clustered {
		return "clustered"
	}
	return "uniform"
}

// DefaultConfig returns the configuration used for the tables in
// EXPERIMENTS.md: a 10×10×10 mesh, fault counts sweeping 1–15 % of the nodes.
func DefaultConfig() Config {
	return Config{
		Dim:         10,
		FaultCounts: []int{10, 25, 50, 75, 100, 150},
		Trials:      30,
		Pairs:       10,
		MinDistance: 10,
		Seed:        20050500, // ICPP 2005, paper #500
	}
}

func (c Config) newMesh() *mesh.Mesh {
	if c.TwoD {
		return mesh.New2D(c.Dim, c.Dim)
	}
	return mesh.New3D(c.Dim, c.Dim, c.Dim)
}

func (c Config) meshName() string {
	if c.TwoD {
		return fmt.Sprintf("%dx%d", c.Dim, c.Dim)
	}
	return fmt.Sprintf("%dx%dx%d", c.Dim, c.Dim, c.Dim)
}

// samplePair draws a healthy source/destination pair with the configured
// minimum distance whose endpoints are safe under the pair's labelling.
func samplePair(r *rng.Rand, m *mesh.Mesh, minDist int) (grid.Point, grid.Point, *labeling.Labeling, bool) {
	for attempt := 0; attempt < 500; attempt++ {
		s := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		if grid.Manhattan(s, d) < minDist || m.IsFaulty(s) || m.IsFaulty(d) {
			continue
		}
		l := labeling.Compute(m, grid.OrientationOf(s, d))
		if l.Safe(s) && l.Safe(d) {
			return s, d, l, true
		}
	}
	return grid.Point{}, grid.Point{}, nil, false
}

// E1 NonFaultyInclusion reproduces the paper's first metric: the average
// number of non-faulty nodes included in fault regions, comparing the MCC
// model against the two rectangular-faulty-block baselines.
func E1NonFaultyInclusion(cfg Config) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("E1: healthy nodes absorbed by fault regions (%s mesh, %s faults, %d trials)", cfg.meshName(), cfg.workloadName(), cfg.Trials),
		Columns: []string{"faults", "fault %", "MCC", "MCC regions", "RFB (bbox)", "FB (rule)", "MCC/RFB ratio"},
	}
	r := rng.New(cfg.Seed)
	for _, n := range cfg.FaultCounts {
		var mcc, mccRegions, rfb, rule stats.Summary
		for trial := 0; trial < cfg.Trials; trial++ {
			m := cfg.newMesh()
			cfg.injector(n).Inject(m, r)
			l := labeling.Compute(m, grid.PositiveOrientation)
			cs := region.FindMCCs(l)
			mcc.Add(float64(cs.TotalNonFaulty()))
			mccRegions.Add(float64(cs.Len()))
			rfb.Add(float64(block.Build(m, block.BoundingBox).TotalNonFaulty()))
			rule.Add(float64(block.Build(m, block.ConvexityRule).TotalNonFaulty()))
		}
		ratio := 0.0
		if rfb.Mean() > 0 {
			ratio = mcc.Mean() / rfb.Mean()
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			stats.Pct(float64(n)/float64(cfg.newMesh().NodeCount())),
			stats.F(mcc.Mean()),
			stats.F(mccRegions.Mean()),
			stats.F(rfb.Mean()),
			stats.F(rule.Mean()),
			stats.F(ratio),
		)
	}
	t.AddNote("MCC counts useless + can't-reach nodes for the (+X,+Y,+Z) orientation; the paper's claim is MCC ≪ RFB.")
	return t
}

// E2 SuccessRate reproduces the paper's second metric: the percentage of
// source/destination pairs for which a minimal path can be routed, per
// information model.
func E2SuccessRate(cfg Config) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("E2: minimal-routing success rate (%s mesh, %s faults, %d trials x %d pairs)",
			cfg.meshName(), cfg.workloadName(), cfg.Trials, cfg.Pairs),
		Columns: []string{"faults", "MCC model", "RFB (bbox)", "FB (rule)", "labels only", "local greedy", "optimal"},
	}
	r := rng.New(cfg.Seed + 1)
	for _, n := range cfg.FaultCounts {
		var mcc, rfb, rule, labelsOnly, greedy, optimal stats.Summary
		for trial := 0; trial < cfg.Trials; trial++ {
			m := cfg.newMesh()
			cfg.injector(n).Inject(m, r)
			bb := block.Build(m, block.BoundingBox)
			cr := block.Build(m, block.ConvexityRule)
			for pair := 0; pair < cfg.Pairs; pair++ {
				s, d, l, ok := samplePair(r, m, cfg.MinDistance)
				if !ok {
					continue
				}
				cs := region.FindMCCs(l)
				feasible := feasibility.GroundTruth(cs, s, d)
				optimal.AddBool(feasible)

				// MCC model: feasibility check + routing (Algorithm 6).
				if feasibility.Theorem(cs, s, d) {
					tr := routing.New(m, &routing.MCC{Set: cs}, nil).Route(s, d)
					mcc.AddBool(tr.Succeeded())
				} else {
					mcc.AddBool(false)
				}

				// Rectangular faulty-block baselines: succeed when the block
				// regions leave a monotone path open.
				rfb.AddBool(!bb.Contains(s) && !bb.Contains(d) && !bb.BlockedByUnion(s, d))
				rule.AddBool(!cr.Contains(s) && !cr.Contains(d) && !cr.BlockedByUnion(s, d))

				// Labels only: avoid unsafe nodes with no region reasoning.
				labelsOnly.AddBool(routing.New(m, &routing.Labeled{Labeling: l}, nil).Route(s, d).Succeeded())

				// Local greedy floor baseline.
				greedy.AddBool(routing.New(m, routing.LocalGreedy{}, nil).Route(s, d).Succeeded())
			}
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			stats.Pct(mcc.Mean()),
			stats.Pct(rfb.Mean()),
			stats.Pct(rule.Mean()),
			stats.Pct(labelsOnly.Mean()),
			stats.Pct(greedy.Mean()),
			stats.Pct(optimal.Mean()),
		)
	}
	t.AddNote("'optimal' is the fraction of pairs with any minimal fault-free path; the MCC model is expected to match it.")
	return t
}

// E3 SuccessByDistance measures how the success rate degrades with the
// source/destination distance at a fixed fault count.
func E3SuccessByDistance(cfg Config, faults int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("E3: success rate vs distance (%s mesh, %d faults)", cfg.meshName(), faults),
		Columns: []string{"distance bucket", "pairs", "MCC model", "RFB (bbox)", "local greedy"},
	}
	r := rng.New(cfg.Seed + 2)
	diameter := cfg.newMesh().Diameter()
	buckets := 4
	type acc struct{ mcc, rfb, greedy stats.Summary }
	accs := make([]acc, buckets)
	for trial := 0; trial < cfg.Trials*cfg.Pairs; trial++ {
		m := cfg.newMesh()
		cfg.injector(faults).Inject(m, r)
		bb := block.Build(m, block.BoundingBox)
		s, d, l, ok := samplePair(r, m, 2)
		if !ok {
			continue
		}
		dist := grid.Manhattan(s, d)
		bucket := (dist - 1) * buckets / diameter
		if bucket >= buckets {
			bucket = buckets - 1
		}
		cs := region.FindMCCs(l)
		accs[bucket].mcc.AddBool(feasibility.Theorem(cs, s, d))
		accs[bucket].rfb.AddBool(!bb.Contains(s) && !bb.Contains(d) && !bb.BlockedByUnion(s, d))
		accs[bucket].greedy.AddBool(routing.New(m, routing.LocalGreedy{}, nil).Route(s, d).Succeeded())
	}
	for i := range accs {
		lo := i*diameter/buckets + 1
		hi := (i + 1) * diameter / buckets
		cell := func(s *stats.Summary) string {
			if s.N() == 0 {
				return "n/a"
			}
			return stats.Pct(s.Mean())
		}
		t.AddRow(
			fmt.Sprintf("%d-%d", lo, hi),
			fmt.Sprintf("%d", accs[i].mcc.N()),
			cell(&accs[i].mcc),
			cell(&accs[i].rfb),
			cell(&accs[i].greedy),
		)
	}
	return t
}

// E4 MessageOverhead measures the number of messages the distributed
// information model exchanges: labelling announcements, identification
// messages, boundary messages and the per-pair detection messages.
func E4MessageOverhead(cfg Config) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("E4: information-model message overhead (%s mesh, %d trials)", cfg.meshName(), cfg.Trials),
		Columns: []string{"faults", "label msgs", "identify msgs", "boundary msgs", "detect msgs/pair", "info nodes"},
	}
	r := rng.New(cfg.Seed + 3)
	for _, n := range cfg.FaultCounts {
		var label, ident, bound, detect, coverage stats.Summary
		for trial := 0; trial < cfg.Trials; trial++ {
			m := cfg.newMesh()
			cfg.injector(n).Inject(m, r)
			orient := grid.PositiveOrientation
			lr := protocol.RunLabeling(m, orient)
			label.Add(float64(lr.Stats.ByKind[protocol.KindLabel]))

			l := labeling.Compute(m, orient)
			cs := region.FindMCCs(l)
			info := protocol.RunInformationModel(m, l, cs)
			ident.Add(float64(info.IdentifyMessages))
			bound.Add(float64(info.BoundaryMessages))
			coverage.Add(float64(len(info.Records)))

			s, d, lab, ok := samplePair(r, m, cfg.MinDistance)
			if !ok {
				continue
			}
			var det *protocol.DetectionResult
			if m.Is2D() {
				det = protocol.RunDetection2D(m, lab, s, d)
			} else {
				det = protocol.RunDetection3D(m, lab, s, d)
			}
			detect.Add(float64(det.ForwardHops + det.ReplyHops))
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			stats.F(label.Mean()),
			stats.F(ident.Mean()),
			stats.F(bound.Mean()),
			stats.F(detect.Mean()),
			stats.F(coverage.Mean()),
		)
	}
	t.AddNote("'info nodes' is the number of nodes holding at least one MCC record after boundary construction.")
	return t
}

// E5 RegionAblation compares design choices: border policy, block model
// variants and how often a single MCC explains an infeasible pair.
func E5RegionAblation(cfg Config) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("E5: region-size ablation (%s mesh, %d trials)", cfg.meshName(), cfg.Trials),
		Columns: []string{"faults", "MCC border-safe", "MCC border-blocked", "RFB (bbox)", "FB (rule)", "single-MCC infeasibility"},
	}
	r := rng.New(cfg.Seed + 4)
	for _, n := range cfg.FaultCounts {
		var safe, blocked, rfb, rule, single stats.Summary
		for trial := 0; trial < cfg.Trials; trial++ {
			m := cfg.newMesh()
			cfg.injector(n).Inject(m, r)
			lSafe := labeling.Compute(m, grid.PositiveOrientation)
			lBlocked := labeling.Compute(m, grid.PositiveOrientation, labeling.Options{Border: labeling.BorderBlocked})
			safe.Add(float64(lSafe.NonFaultyUnsafeCount()))
			blocked.Add(float64(lBlocked.NonFaultyUnsafeCount()))
			rfb.Add(float64(block.Build(m, block.BoundingBox).TotalNonFaulty()))
			rule.Add(float64(block.Build(m, block.ConvexityRule).TotalNonFaulty()))

			s, d, l, ok := samplePair(r, m, cfg.MinDistance)
			if !ok {
				continue
			}
			cs := region.FindMCCs(l)
			if !feasibility.GroundTruth(cs, s, d) {
				single.AddBool(feasibility.SingleMCCExplains(cs, s, d))
			}
		}
		singleCell := "n/a"
		if single.N() > 0 {
			singleCell = stats.Pct(single.Mean())
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			stats.F(safe.Mean()),
			stats.F(blocked.Mean()),
			stats.F(rfb.Mean()),
			stats.F(rule.Mean()),
			singleCell,
		)
	}
	t.AddNote("'single-MCC infeasibility' = among infeasible pairs, how often one MCC alone blocks (the rest need merged boundary information); n/a when no infeasible pair was sampled.")
	t.AddNote("border-blocked treats missing neighbours as faults; the far corner then satisfies the useless rule vacuously and the labels cascade across the mesh, which is exactly why the paper's definition (border-safe) is used everywhere else.")
	return t
}

// E6 Adaptivity measures the routing flexibility each information model
// preserves: the number of distinct minimal paths that avoid the model's
// fault regions, and the minimum number of allowed forwarding directions seen
// along an MCC route.
func E6Adaptivity(cfg Config, faults int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("E6: routing adaptivity (%s mesh, %d faults)", cfg.meshName(), faults),
		Columns: []string{"metric", "fault-free", "MCC model", "RFB (bbox)"},
	}
	r := rng.New(cfg.Seed + 5)
	const pathCap = 1_000_000
	var freePaths, mccPaths, rfbPaths, mccMinCand stats.Summary
	for trial := 0; trial < cfg.Trials*cfg.Pairs; trial++ {
		m := cfg.newMesh()
		cfg.injector(faults).Inject(m, r)
		s, d, l, ok := samplePair(r, m, cfg.MinDistance)
		if !ok {
			continue
		}
		cs := region.FindMCCs(l)
		if !feasibility.Theorem(cs, s, d) {
			continue
		}
		bb := block.Build(m, block.BoundingBox)
		freePaths.Add(float64(minimal.CountPaths(m, minimal.AvoidNone, s, d, pathCap)))
		mccPaths.Add(float64(minimal.CountPaths(m, func(p grid.Point) bool { return l.Unsafe(p) }, s, d, pathCap)))
		rfbPaths.Add(float64(minimal.CountPaths(m, bb.Avoid(), s, d, pathCap)))
		tr := routing.New(m, &routing.MCC{Set: cs}, nil).Route(s, d)
		if tr.Succeeded() {
			mccMinCand.Add(float64(tr.MinAdaptivity()))
		}
	}
	t.AddRow("distinct minimal paths (mean, capped)", stats.F(freePaths.Mean()), stats.F(mccPaths.Mean()), stats.F(rfbPaths.Mean()))
	t.AddRow("pairs measured", fmt.Sprintf("%d", freePaths.N()), fmt.Sprintf("%d", mccPaths.N()), fmt.Sprintf("%d", rfbPaths.N()))
	t.AddRow("min forwarding candidates on MCC route", "-", stats.F(mccMinCand.Mean()), "-")
	t.AddNote("path counts are capped at 1e6; the MCC column keeps more minimal paths alive than the RFB column.")
	return t
}

// TrafficConfig parameterises the E7 continuous-traffic experiment.
type TrafficConfig struct {
	// Patterns and Models name the traffic patterns and information models to
	// sweep (see traffic.PatternNames and traffic.ModelNames).
	Patterns []string
	Models   []string
	// Rates is the sweep over the per-node injection probability per tick.
	Rates []float64
	// Faults is the static fault count injected before traffic starts.
	Faults int
	// Trials is the number of fault configurations per sweep cell (E7 runs
	// many packets per trial, so it uses fewer trials than E1–E6).
	Trials int
	// Warmup and Window are the measurement timeline in ticks.
	Warmup, Window int
	// Workers shards trials across goroutines; <= 0 selects GOMAXPROCS. The
	// table is bit-identical for every worker count.
	Workers int
	// HotspotFraction tunes the hotspot pattern (0 selects its default).
	HotspotFraction float64
}

// DefaultTrafficConfig returns the E7 configuration used in EXPERIMENTS.md:
// three classic patterns, the MCC model against the rectangular-block
// baseline, and a rate sweep bracketing saturation.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{
		Patterns: []string{"uniform", "transpose", "hotspot"},
		Models:   []string{"mcc", "rfb"},
		Rates:    []float64{0.005, 0.01, 0.02},
		Faults:   30,
		Trials:   5,
		Warmup:   50,
		Window:   200,
	}
}

// E7Throughput measures sustained-load behaviour: for each traffic pattern ×
// information model × injection rate it runs continuous traffic on freshly
// faulted meshes and reports accepted throughput (deliveries per node per
// tick), delivery ratio and latency percentiles. Trials are sharded across
// parallel workers with per-trial derived seeds, so the same configuration
// produces the same table at any worker count.
func E7Throughput(cfg Config, tc TrafficConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("E7: continuous-traffic throughput/latency (%s mesh, %d faults, %d trials, warmup %d + window %d ticks)",
			cfg.meshName(), tc.Faults, tc.Trials, tc.Warmup, tc.Window),
		Columns: []string{"pattern", "model", "rate", "delivered", "throughput", "lat mean", "p50", "p95", "p99", "stuck", "lost"},
	}
	// Validate every name up front on a probe mesh so a typo fails fast
	// instead of panicking inside a worker goroutine.
	probe := cfg.newMesh()
	for _, name := range tc.Patterns {
		if _, err := traffic.PatternByName(name, probe, tc.HotspotFraction); err != nil {
			return nil, err
		}
	}
	for _, name := range tc.Models {
		if _, err := traffic.ModelByName(name, core.NewModel(probe)); err != nil {
			return nil, err
		}
	}
	cell := 0
	for _, patternName := range tc.Patterns {
		for _, modelName := range tc.Models {
			for _, rate := range tc.Rates {
				cellSeed := rng.Derive(cfg.Seed+6, uint64(cell))
				cell++
				results := traffic.RunTrials(tc.Workers, tc.Trials, cellSeed, func(_ int, seed uint64) *traffic.Result {
					m := cfg.newMesh()
					cfg.injector(tc.Faults).Inject(m, rng.New(rng.Derive(seed, 1<<48)))
					im, err := traffic.ModelByName(modelName, core.NewModel(m))
					if err != nil {
						panic(err)
					}
					pattern, err := traffic.PatternByName(patternName, m, tc.HotspotFraction)
					if err != nil {
						panic(err)
					}
					e := traffic.NewEngine(m, im, pattern, traffic.Options{
						Rate:   rate,
						Warmup: simnet.Time(tc.Warmup),
						Window: simnet.Time(tc.Window),
					})
					return e.Run(seed)
				})
				agg := traffic.Collect(results)
				t.AddRow(
					patternName,
					modelName,
					fmt.Sprintf("%.3f", rate),
					stats.Pct(agg.DeliveredRatio.Mean()),
					fmt.Sprintf("%.4f", agg.Throughput.Mean()),
					stats.F(agg.Latency.Mean()),
					fmt.Sprintf("%d", agg.Latency.Percentile(0.50)),
					fmt.Sprintf("%d", agg.Latency.Percentile(0.95)),
					fmt.Sprintf("%d", agg.Latency.Percentile(0.99)),
					fmt.Sprintf("%d", agg.Stuck),
					fmt.Sprintf("%d", agg.Lost),
				)
			}
		}
	}
	t.AddNote("throughput is measured deliveries per healthy node per tick; latency percentiles are over packets injected inside the window.")
	t.AddNote("'stuck' packets ran out of allowed forwarding directions; 'lost' packets were dropped by a node that died mid-flight.")
	return t, nil
}

// RunAll executes every experiment with the given configuration and returns
// the tables in DESIGN.md order.
func RunAll(cfg Config) []*stats.Table {
	midFaults := 50
	if len(cfg.FaultCounts) > 0 {
		midFaults = cfg.FaultCounts[len(cfg.FaultCounts)/2]
	}
	tables := []*stats.Table{
		E1NonFaultyInclusion(cfg),
		E2SuccessRate(cfg),
		E3SuccessByDistance(cfg, midFaults),
		E4MessageOverhead(cfg),
		E5RegionAblation(cfg),
		E6Adaptivity(cfg, midFaults),
	}
	tc := DefaultTrafficConfig()
	tc.Faults = midFaults
	e7, err := E7Throughput(cfg, tc)
	if err != nil {
		// The default names are hardcoded against the traffic registries; a
		// mismatch is a programming error, not a runtime condition.
		panic(err)
	}
	return append(tables, e7)
}
