package core

import (
	"testing"

	"mccmesh/internal/block"
	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

func figure5Model() *Model {
	m := mesh.New3D(10, 10, 10)
	m.AddFaults(
		grid.Point{X: 5, Y: 5, Z: 6}, grid.Point{X: 6, Y: 5, Z: 5}, grid.Point{X: 5, Y: 6, Z: 5},
		grid.Point{X: 6, Y: 7, Z: 5}, grid.Point{X: 7, Y: 6, Z: 5}, grid.Point{X: 5, Y: 4, Z: 7},
		grid.Point{X: 4, Y: 5, Z: 7}, grid.Point{X: 7, Y: 8, Z: 4},
	)
	return NewModel(m)
}

func TestModelSummarizeFigure5(t *testing.T) {
	mo := figure5Model()
	sum := mo.Summarize(grid.PositiveOrientation)
	if sum.Faults != 8 || sum.Regions != 2 || sum.AbsorbedHealthy != 2 || sum.LargestRegion != 9 {
		t.Errorf("summary wrong: %+v", sum)
	}
	if sum.RFBAbsorbed != 72 {
		t.Errorf("RFB absorbed %d healthy nodes, want 72", sum.RFBAbsorbed)
	}
}

func TestModelCachingAndInvalidate(t *testing.T) {
	mo := figure5Model()
	l1 := mo.Labeling(grid.PositiveOrientation)
	l2 := mo.Labeling(grid.PositiveOrientation)
	if l1 != l2 {
		t.Error("labelling should be cached")
	}
	r1 := mo.Regions(grid.PositiveOrientation)
	if r1 != mo.Regions(grid.PositiveOrientation) {
		t.Error("regions should be cached")
	}
	mo.Mesh().AddFaults(grid.Point{X: 1, Y: 1, Z: 1})
	mo.Invalidate()
	if mo.Labeling(grid.PositiveOrientation) == l1 {
		t.Error("Invalidate should drop the cache")
	}
	if mo.Labeling(grid.PositiveOrientation).Count(0 /* Safe */) == l1.Count(0) {
		// counts may coincide; just ensure the new fault is seen
	}
	if !mo.Mesh().IsFaulty(grid.Point{X: 1, Y: 1, Z: 1}) {
		t.Error("fault not recorded")
	}
}

func TestModelFeasibleAndRoute(t *testing.T) {
	mo := figure5Model()
	s, d := grid.Point{}, grid.Point{X: 9, Y: 9, Z: 9}
	if !mo.Feasible(s, d) {
		t.Fatal("Figure 5 faults cannot block the corner pair")
	}
	tr, err := mo.Route(s, d)
	if err != nil || !tr.Succeeded() {
		t.Fatalf("route failed: %v %v", err, tr)
	}
	if tr.Hops() != grid.Manhattan(s, d) {
		t.Errorf("hops = %d, want %d", tr.Hops(), grid.Manhattan(s, d))
	}
	if mo.Feasible(grid.Point{X: 5, Y: 5, Z: 6}, d) {
		t.Error("a faulty source can never be feasible")
	}
}

func TestModelRouteWithProviders(t *testing.T) {
	mo := figure5Model()
	s, d := grid.Point{X: 2, Y: 2, Z: 2}, grid.Point{X: 9, Y: 9, Z: 9}
	for _, provider := range []string{ProviderMCC, ProviderOracle, ProviderRFB, ProviderFBRule, ProviderLabels, ProviderLocal, ProviderBoundary} {
		tr, err := mo.RouteWith(provider, s, d)
		if err != nil {
			// The RFB provider may legitimately refuse if the coarse blocks
			// block the pair; every other provider must attempt the route.
			t.Errorf("provider %s returned error: %v", provider, err)
			continue
		}
		if !tr.Succeeded() && provider != ProviderLocal && provider != ProviderRFB && provider != ProviderFBRule {
			t.Errorf("provider %s failed: %v", provider, tr.Err)
		}
	}
	if _, err := mo.RouteWith("nonsense", s, d); err == nil {
		t.Error("unknown provider should be rejected")
	}
}

func TestModelRouteInfeasible(t *testing.T) {
	m := mesh.New2D(8, 8)
	// Wall across the whole routing box of (0,0)->(3,7).
	for x := 0; x <= 3; x++ {
		m.SetFaulty(grid.Point{X: x, Y: 4}, true)
	}
	mo := NewModel(m)
	if mo.Feasible(grid.Point{}, grid.Point{X: 3, Y: 7}) {
		t.Fatal("pair should be infeasible")
	}
	if _, err := mo.Route(grid.Point{}, grid.Point{X: 3, Y: 7}); err == nil {
		t.Error("Route must refuse infeasible pairs (the paper stops the routing at the source)")
	}
}

func TestModelDetectionAndDistributed(t *testing.T) {
	mo := figure5Model()
	s, d := grid.Point{}, grid.Point{X: 9, Y: 9, Z: 9}
	ok, hops := mo.FeasibleByDetection(s, d)
	if !ok || hops <= 0 {
		t.Errorf("detection: ok=%v hops=%d", ok, hops)
	}
	res := mo.RouteDistributed(s, d)
	if !res.Delivered || !res.Minimal {
		t.Errorf("distributed routing: %+v", res)
	}
	info := mo.BoundaryInformation(grid.PositiveOrientation)
	if info != mo.BoundaryInformation(grid.PositiveOrientation) {
		t.Error("boundary information should be cached")
	}
}

func TestModelMatchesGroundTruthOnRandomMeshes(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 15; trial++ {
		m := mesh.New3D(7, 7, 7)
		fault.Uniform{Count: 25, Protected: []grid.Point{{}, {X: 6, Y: 6, Z: 6}}}.Inject(m, r)
		mo := NewModel(m)
		s, d := grid.Point{}, grid.Point{X: 6, Y: 6, Z: 6}
		if mo.Labeling(grid.OrientationOf(s, d)).Unsafe(s) || mo.Labeling(grid.OrientationOf(s, d)).Unsafe(d) {
			continue
		}
		if mo.Feasible(s, d) != mo.MinimalPathExists(s, d) {
			t.Fatalf("trial %d: model feasibility disagrees with ground truth", trial)
		}
	}
}

func TestModelBlocksCaching(t *testing.T) {
	mo := figure5Model()
	if mo.Blocks(block.BoundingBox) != mo.Blocks(block.BoundingBox) {
		t.Error("blocks should be cached per variant")
	}
	if mo.Blocks(block.BoundingBox) == nil || mo.Blocks(block.ConvexityRule) == nil {
		t.Error("blocks missing")
	}
}

// TestModelRepairFaultsMatchesInvalidate drives the incremental repair path
// through randomized churn: after each batch of injections (ApplyFaults) or
// repairs (RepairFaults), the cached labellings and regions must agree with a
// model rebuilt from scratch — and the cached pointers must stay the same
// objects, which is what keeps live routing providers valid across churn.
func TestModelRepairFaultsMatchesInvalidate(t *testing.T) {
	m := mesh.NewCube(8)
	placed := fault.Uniform{Count: 35}.Inject(m, rng.New(7))
	mo := NewModel(m)
	// Warm every orientation's labelling and region set.
	for _, o := range grid.AllOrientations3D() {
		mo.Labeling(o)
		mo.Regions(o)
	}
	lab0 := mo.Labeling(grid.PositiveOrientation)
	cs0 := mo.Regions(grid.PositiveOrientation)

	r := rng.New(91)
	live := append([]grid.Point(nil), placed...)
	for batch := 0; batch < 6; batch++ {
		if batch%2 == 0 && len(live) > 3 {
			k := 1 + r.Intn(3)
			pts := append([]grid.Point(nil), live[:k]...)
			live = live[k:]
			m.RemoveFaults(pts...)
			mo.RepairFaults(pts)
		} else {
			pts := fault.Uniform{Count: 1 + r.Intn(4)}.Inject(m, r)
			live = append(live, pts...)
			mo.ApplyFaults(pts)
		}
		fresh := NewModel(m.Clone())
		for _, o := range grid.AllOrientations3D() {
			inc, full := mo.Labeling(o), fresh.Labeling(o)
			for i := 0; i < m.NodeCount(); i++ {
				if inc.StatusAt(i).Unsafe() != full.StatusAt(i).Unsafe() {
					t.Fatalf("batch %d %v: node %v unsafe=%v incrementally, %v rebuilt",
						batch, o, m.Point(i), inc.StatusAt(i).Unsafe(), full.StatusAt(i).Unsafe())
				}
			}
			if got, want := mo.Regions(o).Len(), fresh.Regions(o).Len(); got != want {
				t.Fatalf("batch %d %v: %d regions incrementally, %d rebuilt", batch, o, got, want)
			}
		}
	}
	if mo.Labeling(grid.PositiveOrientation) != lab0 || mo.Regions(grid.PositiveOrientation) != cs0 {
		t.Error("churn updates must mutate the cached labelling/region objects in place, not replace them")
	}
}
