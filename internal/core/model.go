// Package core ties the pieces of the MCC fault-information model together
// behind one orchestrating type, Model: it owns a mesh, computes and caches
// the per-orientation labellings and fault regions, answers feasibility
// queries and routes messages with any of the supported information providers.
// The public facade package (the repository root) re-exports this API.
package core

import (
	"fmt"

	"mccmesh/internal/block"
	"mccmesh/internal/feasibility"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
	"mccmesh/internal/protocol"
	"mccmesh/internal/region"
	"mccmesh/internal/routing"
	"mccmesh/internal/telemetry"
)

// Provider names accepted by Model.RouteWith.
const (
	ProviderMCC      = "mcc"
	ProviderOracle   = "oracle"
	ProviderRFB      = "rfb"
	ProviderFBRule   = "fb-rule"
	ProviderLabels   = "labels"
	ProviderLocal    = "local"
	ProviderBoundary = "boundary"
)

// Model is the MCC fault-information model over one mesh. It is not safe for
// concurrent use; clone the mesh and build separate models for parallel
// workloads.
type Model struct {
	m    *mesh.Mesh
	opts labeling.Options

	labelings [8]*labeling.Labeling
	regions   [8]*region.ComponentSet
	blocks    map[block.Model]*block.Regions
	info      [8]*protocol.InfoResult

	tel *telemetry.Sink
}

// SetTelemetry implements telemetry.Instrumentable: the sink is attached to
// every cached labelling and to labellings computed later.
func (mo *Model) SetTelemetry(s *telemetry.Sink) {
	mo.tel = s
	for _, l := range mo.labelings {
		if l != nil {
			l.SetTelemetry(s)
		}
	}
}

// NewModel wraps a mesh in a Model. Later fault changes on the mesh must be
// followed by Invalidate.
func NewModel(m *mesh.Mesh, opts ...labeling.Options) *Model {
	var o labeling.Options
	if len(opts) > 0 {
		o = opts[0]
	}
	return &Model{m: m, opts: o, blocks: make(map[block.Model]*block.Regions)}
}

// Mesh returns the underlying mesh.
func (mo *Model) Mesh() *mesh.Mesh { return mo.m }

// Invalidate drops every cached labelling and region set; call it after
// changing the mesh's fault set. When the change is purely additive (new
// faults on a live mesh) or purely subtractive (repairs), ApplyFaults /
// RepairFaults are the cheaper paths: they update the caches in place instead
// of dropping them.
func (mo *Model) Invalidate() {
	mo.labelings = [8]*labeling.Labeling{}
	mo.regions = [8]*region.ComponentSet{}
	mo.info = [8]*protocol.InfoResult{}
	mo.blocks = make(map[block.Model]*block.Regions)
}

// ApplyFaults incrementally absorbs newly injected faults (already marked on
// the mesh) into the cached fault information: each cached labelling relabels
// only the neighbourhood the new faults touch (labeling.AddFaults) and each
// cached region set re-extracts its components in place
// (region.ComponentSet.Refresh), so pointers handed out to routing providers
// stay valid. Block snapshots and protocol info have no incremental form and
// are dropped for lazy rebuild. Only fault *additions* are supported here;
// repairs go through RepairFaults, and after arbitrary edits call Invalidate.
func (mo *Model) ApplyFaults(pts []grid.Point) {
	for _, l := range mo.labelings {
		if l != nil {
			l.AddFaults(pts)
		}
	}
	mo.refreshDerived()
}

// RepairFaults is the inverse of ApplyFaults: it incrementally absorbs fault
// repairs (already cleared on the mesh, e.g. via mesh.RemoveFaults) into the
// cached fault information. Each cached labelling un-relabels only the
// repaired neighbourhood (labeling.RemoveFaults) and each cached region set
// re-extracts its components in place — repairs shrink, split or dissolve
// MCCs exactly as injections grow and merge them, and Refresh handles both.
// Block snapshots and protocol info are dropped for lazy rebuild, as in
// ApplyFaults.
func (mo *Model) RepairFaults(pts []grid.Point) {
	for _, l := range mo.labelings {
		if l != nil {
			l.RemoveFaults(pts)
		}
	}
	mo.refreshDerived()
}

// refreshDerived re-extracts the cached region sets in place and drops the
// caches that have no incremental form, after the labellings changed.
func (mo *Model) refreshDerived() {
	for _, cs := range mo.regions {
		if cs != nil {
			cs.Refresh()
		}
	}
	mo.info = [8]*protocol.InfoResult{}
	if len(mo.blocks) > 0 {
		mo.blocks = make(map[block.Model]*block.Regions)
	}
}

// Labeling returns the (cached) labelling for an orientation.
func (mo *Model) Labeling(orient grid.Orientation) *labeling.Labeling {
	idx := orient.Index()
	if mo.labelings[idx] == nil {
		mo.labelings[idx] = labeling.Compute(mo.m, orient, mo.opts)
		mo.labelings[idx].SetTelemetry(mo.tel)
	}
	return mo.labelings[idx]
}

// Regions returns the (cached) MCCs for an orientation.
func (mo *Model) Regions(orient grid.Orientation) *region.ComponentSet {
	idx := orient.Index()
	if mo.regions[idx] == nil {
		mo.regions[idx] = region.FindMCCs(mo.Labeling(orient))
	}
	return mo.regions[idx]
}

// Blocks returns the (cached) rectangular faulty blocks of the requested
// variant.
func (mo *Model) Blocks(variant block.Model) *block.Regions {
	if mo.blocks[variant] == nil {
		mo.blocks[variant] = block.Build(mo.m, variant)
	}
	return mo.blocks[variant]
}

// BoundaryInformation runs (and caches) the distributed information model for
// an orientation, returning the per-node record placement and message counts.
func (mo *Model) BoundaryInformation(orient grid.Orientation) *protocol.InfoResult {
	idx := orient.Index()
	if mo.info[idx] == nil {
		mo.info[idx] = protocol.RunInformationModel(mo.m, mo.Labeling(orient), mo.Regions(orient))
	}
	return mo.info[idx]
}

// Feasible reports whether a minimal path from s to d exists under the MCC
// model (Theorem 1 / Theorem 2). Both endpoints must be healthy.
func (mo *Model) Feasible(s, d grid.Point) bool {
	if mo.m.IsFaulty(s) || mo.m.IsFaulty(d) {
		return false
	}
	return feasibility.Theorem(mo.Regions(grid.OrientationOf(s, d)), s, d)
}

// FeasibleByDetection runs the distributed detection procedure instead of the
// geometric theorem and returns its verdict plus the number of message hops.
func (mo *Model) FeasibleByDetection(s, d grid.Point) (bool, int) {
	lab := mo.Labeling(grid.OrientationOf(s, d))
	if mo.m.Is2D() {
		res := protocol.RunDetection2D(mo.m, lab, s, d)
		return res.Feasible, res.ForwardHops + res.ReplyHops
	}
	res := protocol.RunDetection3D(mo.m, lab, s, d)
	return res.Feasible, res.ForwardHops + res.ReplyHops
}

// Route routes from s to d with the MCC information provider and the default
// policy, after checking feasibility at the source exactly as Algorithm 3/6
// prescribe.
func (mo *Model) Route(s, d grid.Point) (*routing.Trace, error) {
	return mo.RouteWith(ProviderMCC, s, d)
}

// RouteWith routes from s to d using the named information provider.
func (mo *Model) RouteWith(provider string, s, d grid.Point) (*routing.Trace, error) {
	orient := grid.OrientationOf(s, d)
	var p routing.Provider
	switch provider {
	case ProviderMCC:
		if !mo.Feasible(s, d) {
			return nil, fmt.Errorf("core: no minimal path from %v to %v under the MCC model", s, d)
		}
		p = &routing.MCC{Set: mo.Regions(orient)}
	case ProviderOracle:
		p = &routing.Oracle{Mesh: mo.m}
	case ProviderRFB:
		p = &routing.Block{Regions: mo.Blocks(block.BoundingBox)}
	case ProviderFBRule:
		p = &routing.Block{Regions: mo.Blocks(block.ConvexityRule)}
	case ProviderLabels:
		p = &routing.Labeled{Labeling: mo.Labeling(orient)}
	case ProviderLocal:
		p = routing.LocalGreedy{}
	case ProviderBoundary:
		info := mo.BoundaryInformation(orient)
		p = &routing.Records{Set: mo.Regions(orient), PerNode: info.Records, CarryAlong: true}
	default:
		return nil, fmt.Errorf("core: unknown provider %q", provider)
	}
	return routing.New(mo.m, p, nil).Route(s, d), nil
}

// RouteDistributed forwards a routing message hop by hop over the simulated
// network using only node-local records (the paper's full distributed mode).
func (mo *Model) RouteDistributed(s, d grid.Point) *protocol.RouteResult {
	orient := grid.OrientationOf(s, d)
	info := mo.BoundaryInformation(orient)
	return protocol.RunRouting(mo.m, mo.Labeling(orient), mo.Regions(orient), info.Records, s, d)
}

// MinimalPathExists is the ground-truth check (any minimal path avoiding the
// faulty nodes), independent of the information model.
func (mo *Model) MinimalPathExists(s, d grid.Point) bool {
	return minimal.Exists(mo.m, minimal.AvoidFaulty(mo.m), s, d)
}

// AbsorbedHealthyNodes returns the number of healthy nodes the MCC model
// absorbs for the given orientation (the paper's first evaluation metric).
func (mo *Model) AbsorbedHealthyNodes(orient grid.Orientation) int {
	return mo.Labeling(orient).NonFaultyUnsafeCount()
}

// Summary describes the model state for one orientation.
type Summary struct {
	Orientation     grid.Orientation
	Faults          int
	Regions         int
	AbsorbedHealthy int
	LargestRegion   int
	RFBAbsorbed     int
}

// Summarize returns the headline numbers for one orientation.
func (mo *Model) Summarize(orient grid.Orientation) Summary {
	cs := mo.Regions(orient)
	s := Summary{
		Orientation:     orient,
		Faults:          mo.m.FaultCount(),
		Regions:         cs.Len(),
		AbsorbedHealthy: cs.TotalNonFaulty(),
		RFBAbsorbed:     mo.Blocks(block.BoundingBox).TotalNonFaulty(),
	}
	if largest := cs.Largest(); largest != nil {
		s.LargestRegion = largest.Size()
	}
	return s
}
