// Package traffic is a continuous-traffic workload engine for faulty meshes:
// it layers streams of packets on the discrete-event simulator of package
// simnet, drives every forwarding decision through a pluggable
// fault-information provider from package routing, supports fault injection in
// the middle of a run, and measures saturation throughput and per-packet
// latency percentiles. A deterministic parallel sweep runner shards
// independent trials across workers with derived per-trial seeds, so results
// are bit-identical at any worker count.
//
// The engine moves the repository from the paper's one-shot routing attempts
// to the sustained-load regime of its target platform, a mesh-connected
// multicomputer serving continuous message traffic.
package traffic

import (
	"fmt"
	"math/bits"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/registry"
	"mccmesh/internal/rng"
)

// Pattern chooses the destination of each injected packet. Implementations
// must be deterministic given the generator state and must not retain state of
// their own, so a single value can serve every node of a trial.
type Pattern interface {
	// Dest returns the destination for a packet injected at src, or ok=false
	// when the pattern yields no valid destination this time (self-addressed,
	// faulty target); the engine then skips the injection.
	Dest(r *rng.Rand, m *mesh.Mesh, src grid.Point) (d grid.Point, ok bool)
	// Name identifies the pattern in tables.
	Name() string
}

// destAttempts bounds rejection sampling in the random patterns so a heavily
// faulted mesh cannot stall injection.
const destAttempts = 64

// Uniform sends each packet to a uniformly random healthy node other than the
// source — the classic uniform-random benchmark workload.
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(r *rng.Rand, m *mesh.Mesh, src grid.Point) (grid.Point, bool) {
	for i := 0; i < destAttempts; i++ {
		d := m.Point(r.Intn(m.NodeCount()))
		if d != src && !m.IsFaulty(d) {
			return d, true
		}
	}
	return grid.Point{}, false
}

// Transpose sends (x,y) to (y,x) in 2-D and rotates (x,y,z) to (y,z,x) in
// 3-D, scaling each coordinate when the extents differ. Nodes on the fixed
// locus of the map (and sources whose image is faulty) inject nothing, as is
// conventional for transpose workloads.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(_ *rng.Rand, m *mesh.Mesh, src grid.Point) (grid.Point, bool) {
	dims := m.Dims()
	var d grid.Point
	if m.Is2D() {
		d = grid.Point{X: scale(src.Y, dims.Y, dims.X), Y: scale(src.X, dims.X, dims.Y)}
	} else {
		d = grid.Point{
			X: scale(src.Y, dims.Y, dims.X),
			Y: scale(src.Z, dims.Z, dims.Y),
			Z: scale(src.X, dims.X, dims.Z),
		}
	}
	if d == src || m.IsFaulty(d) {
		return grid.Point{}, false
	}
	return d, true
}

// scale maps v from [0,from) onto [0,to), preserving the endpoints; it is the
// identity when the extents match.
func scale(v, from, to int) int {
	if from <= 1 {
		return 0
	}
	return v * (to - 1) / (from - 1)
}

// BitReversal sends each coordinate to its bit-reversed image within the
// axis's bit width (reduced modulo the extent for non-power-of-two meshes) —
// the adversarial workload for dimension-ordered networks.
type BitReversal struct{}

// Name implements Pattern.
func (BitReversal) Name() string { return "bitrev" }

// Dest implements Pattern.
func (BitReversal) Dest(_ *rng.Rand, m *mesh.Mesh, src grid.Point) (grid.Point, bool) {
	dims := m.Dims()
	d := grid.Point{
		X: bitrev(src.X, dims.X),
		Y: bitrev(src.Y, dims.Y),
		Z: bitrev(src.Z, dims.Z),
	}
	if d == src || m.IsFaulty(d) {
		return grid.Point{}, false
	}
	return d, true
}

// bitrev reverses v within the minimal bit width covering extent-1 and reduces
// the result modulo the extent so it stays on the mesh.
func bitrev(v, extent int) int {
	if extent <= 1 {
		return 0
	}
	width := bits.Len(uint(extent - 1))
	rev := int(bits.Reverse(uint(v)) >> (bits.UintSize - width))
	return rev % extent
}

// Hotspot sends a fraction of the traffic to one hot node and the rest
// uniformly — the canonical congestion workload. A faulty hotspot degrades to
// pure uniform traffic.
type Hotspot struct {
	// Target is the hot node. Use MeshCenter to aim at the middle of a mesh.
	Target grid.Point
	// Fraction in [0,1] is the share of packets addressed to Target.
	// Defaults to 0.1 when zero.
	Fraction float64
}

// MeshCenter returns the central node of m, the default hotspot target.
func MeshCenter(m *mesh.Mesh) grid.Point {
	d := m.Dims()
	return grid.Point{X: d.X / 2, Y: d.Y / 2, Z: d.Z / 2}
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

func (h Hotspot) fraction() float64 {
	if h.Fraction <= 0 {
		return 0.1
	}
	if h.Fraction > 1 {
		return 1
	}
	return h.Fraction
}

// Dest implements Pattern.
func (h Hotspot) Dest(r *rng.Rand, m *mesh.Mesh, src grid.Point) (grid.Point, bool) {
	if r.Float64() < h.fraction() && src != h.Target && m.IsHealthy(h.Target) {
		return h.Target, true
	}
	return Uniform{}.Dest(r, m, src)
}

// Neighbor sends each packet to a uniformly random healthy direct neighbour —
// the nearest-neighbour workload that stresses link bandwidth rather than the
// information model.
type Neighbor struct{}

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (Neighbor) Dest(r *rng.Rand, m *mesh.Mesh, src grid.Point) (grid.Point, bool) {
	dirs := m.Directions()
	// Reservoir-free: collect the healthy neighbours (at most 6) and pick one.
	var healthy [6]grid.Point
	n := 0
	for _, dir := range dirs {
		q, ok := m.Neighbor(src, dir)
		if ok && !m.IsFaulty(q) {
			healthy[n] = q
			n++
		}
	}
	if n == 0 {
		return grid.Point{}, false
	}
	return healthy[r.Intn(n)], true
}

// PatternCtor builds a pattern over a mesh from decoded spec parameters.
type PatternCtor func(m *mesh.Mesh, args registry.Args) (Pattern, error)

// Patterns is the traffic-pattern registry. Built-ins register below;
// third-party patterns register the same way:
//
//	traffic.Patterns.Register(registry.Entry[traffic.PatternCtor]{Name: "mine", New: ...})
var Patterns = registry.New[PatternCtor]("traffic pattern")

func init() {
	Patterns.Register(registry.Entry[PatternCtor]{
		Name: "uniform",
		Doc:  "each packet targets a uniformly random healthy node",
		New:  func(*mesh.Mesh, registry.Args) (Pattern, error) { return Uniform{}, nil },
	})
	Patterns.Register(registry.Entry[PatternCtor]{
		Name: "transpose",
		Doc:  "coordinate transpose (2-D) / rotation (3-D), scaled to the extents",
		New:  func(*mesh.Mesh, registry.Args) (Pattern, error) { return Transpose{}, nil },
	})
	Patterns.Register(registry.Entry[PatternCtor]{
		Name:    "bitrev",
		Aliases: []string{"bit-reversal"},
		Doc:     "per-axis bit-reversal, the adversarial dimension-ordered workload",
		New:     func(*mesh.Mesh, registry.Args) (Pattern, error) { return BitReversal{}, nil },
	})
	Patterns.Register(registry.Entry[PatternCtor]{
		Name: "hotspot",
		Doc:  "a fraction of the traffic converges on one hot node",
		Params: []registry.Param{
			{Name: "fraction", Kind: registry.Float, Doc: "share of packets addressed to the hot node", Default: 0.1},
			{Name: "target", Kind: registry.Point, Doc: "the hot node", Default: "mesh centre"},
		},
		New: func(m *mesh.Mesh, args registry.Args) (Pattern, error) {
			fraction, err := args.Float("fraction", 0)
			if err != nil {
				return nil, err
			}
			if fraction < 0 || fraction > 1 {
				return nil, fmt.Errorf("parameter %q: %v is not in [0,1]", "fraction", fraction)
			}
			target, err := args.PointAt("target", MeshCenter(m))
			if err != nil {
				return nil, err
			}
			if !m.InBounds(target) {
				return nil, fmt.Errorf("parameter %q: %v is outside the mesh", "target", target)
			}
			return Hotspot{Target: target, Fraction: fraction}, nil
		},
	})
	Patterns.Register(registry.Entry[PatternCtor]{
		Name:    "neighbor",
		Aliases: []string{"nearest-neighbor", "neighbour"},
		Doc:     "each packet targets a random healthy direct neighbour",
		New:     func(*mesh.Mesh, registry.Args) (Pattern, error) { return Neighbor{}, nil },
	})
}

// BuildPattern resolves a pattern by name, validates its parameters against
// the registered schema and constructs it over m.
func BuildPattern(name string, m *mesh.Mesh, args registry.Args) (Pattern, error) {
	e, err := Patterns.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	if err := e.CheckArgs(args); err != nil {
		return nil, fmt.Errorf("traffic: pattern %q: %w", e.Name, err)
	}
	return e.New(m, args)
}

// PatternByName returns the named built-in pattern. Hotspot aims at the mesh
// centre with the given fraction (0 selects the default). It is the
// positional-argument form of BuildPattern.
func PatternByName(name string, m *mesh.Mesh, hotspotFraction float64) (Pattern, error) {
	var args registry.Args
	if hotspotFraction != 0 {
		args = registry.Args{"fraction": hotspotFraction}
		if e, err := Patterns.Lookup(name); err == nil && e.CheckArgs(args) != nil {
			// The pattern takes no fraction parameter; the legacy signature
			// passed one to every pattern, so drop it rather than fail.
			args = nil
		}
	}
	return BuildPattern(name, m, args)
}

// PatternNames lists the registered pattern names accepted by PatternByName.
func PatternNames() []string { return Patterns.Names() }
