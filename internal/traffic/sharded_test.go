package traffic

// Parity tests for the sharded engine: a sharded trial must reproduce the
// sequential trial's Result bit for bit — counters, histograms, phase stats,
// event totals — at any shard count, with and without churn. These are the
// engine-level counterpart of the scenario-level golden tests.

import (
	"reflect"
	"testing"

	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

// shardedTrialEngine builds one trial engine over a fresh cube mesh, wired
// for `shards` shards (0 = sequential). Each call constructs its own mesh:
// churn mutates the mesh in place, so sequential and sharded runs must not
// share one.
func shardedTrialEngine(tb testing.TB, model string, side, faults, shards int, tl *fault.Timeline, seed uint64, telemetry bool) *Engine {
	tb.Helper()
	m := mesh.NewCube(side)
	if faults > 0 {
		fault.Uniform{Count: faults}.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
	}
	im, err := ModelByName(model, core.NewModel(m))
	if err != nil {
		tb.Fatal(err)
	}
	p, err := PatternByName("uniform", m, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return NewEngine(m, im, p, Options{
		Rate: 0.03, Warmup: 30, Window: 200, MaxEvents: 20_000_000,
		Timeline:  tl,
		Telemetry: telemetry,
		Shards:    shards,
		ShardModel: func() (InfoModel, error) {
			return ModelByName(model, core.NewModel(m))
		},
	})
}

// comparable strips the fields parity deliberately does not cover: Err is an
// interface (nil in these runs anyway), Telemetry contains queue-shape and
// model-cache counters that depend on the shard structure, Traces are off.
func comparable(r *Result) Result {
	c := *r
	c.Err = nil
	c.Telemetry = nil
	c.Traces = nil
	return c
}

func TestShardedParityStaticFaults(t *testing.T) {
	tl := (*fault.Timeline)(nil)
	want := shardedTrialEngine(t, "mcc", 8, 25, 0, tl, 42, false).Run(42)
	if want.Delivered == 0 {
		t.Fatal("sequential reference delivered nothing")
	}
	for _, shards := range []int{2, 3, 8} {
		got := shardedTrialEngine(t, "mcc", 8, 25, shards, tl, 42, false).Run(42)
		if !reflect.DeepEqual(comparable(got), comparable(want)) {
			t.Errorf("shards=%d diverges from sequential:\n got %+v\nwant %+v", shards, comparable(got), comparable(want))
		}
	}
}

func TestShardedParityChurn(t *testing.T) {
	for _, model := range []string{"mcc", "labels"} {
		tl := churnTimeline(200)
		want := shardedTrialEngine(t, model, 8, 25, 0, tl, 7, false).Run(7)
		if want.Failures == 0 || want.Repairs == 0 {
			t.Fatalf("%s: churn reference saw no failures/repairs: %+v", model, want)
		}
		if len(want.Phases) < 2 {
			t.Fatalf("%s: churn reference produced %d phases", model, len(want.Phases))
		}
		for _, shards := range []int{2, 4, 8} {
			got := shardedTrialEngine(t, model, 8, 25, shards, tl, 7, false).Run(7)
			if !reflect.DeepEqual(comparable(got), comparable(want)) {
				t.Errorf("%s shards=%d diverges from sequential:\n got %+v\nwant %+v",
					model, shards, comparable(got), comparable(want))
			}
		}
	}
}

// TestShardedParityScheduledFaults covers the Options.Faults path (scheduled
// injections, never repaired): the fault RNG streams and mid-run model
// invalidation must land identically under the barrier.
func TestShardedParityScheduledFaults(t *testing.T) {
	build := func(shards int) *Engine {
		m := mesh.NewCube(8)
		im, err := ModelByName("mcc", core.NewModel(m))
		if err != nil {
			t.Fatal(err)
		}
		p, err := PatternByName("uniform", m, 0)
		if err != nil {
			t.Fatal(err)
		}
		return NewEngine(m, im, p, Options{
			Rate: 0.03, Warmup: 20, Window: 150, MaxEvents: 20_000_000,
			Faults: []FaultEvent{
				{At: 60, Inject: fault.Uniform{Count: 10}},
				{At: 110, Inject: fault.Uniform{Count: 10}},
			},
			Shards: shards,
			ShardModel: func() (InfoModel, error) {
				return ModelByName("mcc", core.NewModel(m))
			},
		})
	}
	want := build(0).Run(13)
	if want.Lost == 0 {
		t.Logf("note: no packets lost despite mid-run faults (small mesh luck)")
	}
	for _, shards := range []int{2, 8} {
		got := build(shards).Run(13)
		if !reflect.DeepEqual(comparable(got), comparable(want)) {
			t.Errorf("shards=%d diverges from sequential:\n got %+v\nwant %+v", shards, comparable(got), comparable(want))
		}
	}
}

// TestShardedSemanticTelemetry pins the semantic telemetry counters — packet
// and churn totals — as shards-invariant. Queue-shape and model-cache
// counters are structural (each shard owns a queue and a model) and are
// deliberately not compared.
func TestShardedSemanticTelemetry(t *testing.T) {
	tl := churnTimeline(200)
	seqRes := shardedTrialEngine(t, "mcc", 8, 25, 0, tl, 9, true).Run(9)
	shRes := shardedTrialEngine(t, "mcc", 8, 25, 4, tl, 9, true).Run(9)
	if seqRes.Telemetry == nil || shRes.Telemetry == nil {
		t.Fatal("telemetry sink missing")
	}
	seq := seqRes.Telemetry.Snapshot()
	sh := shRes.Telemetry.Snapshot()
	for _, k := range []string{
		"traffic.injected", "traffic.delivered", "traffic.stuck", "traffic.lost",
		"churn.failures", "churn.repairs", "churn.failed_nodes", "churn.repaired_nodes",
	} {
		if seq[k] != sh[k] {
			t.Errorf("counter %s: sequential %d, sharded %d", k, seq[k], sh[k])
		}
	}
}

// TestShardedFallsBackSequential checks the guard rails: a mesh with a single
// layer cannot split, and tracing pins the sequential path, so both must
// produce the sequential result (and actually run — no nil Result escapes).
func TestShardedFallsBackSequential(t *testing.T) {
	m := mesh.New2D(16, 1) // one row: SlabPartition yields a single slab
	im, err := ModelByName("mcc", core.NewModel(m))
	if err != nil {
		t.Fatal(err)
	}
	p, err := PatternByName("uniform", m, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m, im, p, Options{
		Rate: 0.05, Warmup: 10, Window: 100,
		Shards: 8,
		ShardModel: func() (InfoModel, error) {
			return ModelByName("mcc", core.NewModel(m))
		},
	})
	res := e.Run(3)
	if res == nil || res.Err != nil {
		t.Fatalf("single-layer fallback failed: %+v", res)
	}
	if res.Injected == 0 {
		t.Fatal("fallback run injected nothing")
	}
}
