package traffic_test

// Benchmarks for the continuous-traffic hot path on the PERFORMANCE.md
// reference workload: a 16x16x16 mesh, ~3% uniform faults, hotspot traffic at
// rate 0.02. `go test -bench Hotspot -benchtime 3x ./internal/traffic` is the
// quick reproduction; `mcc bench -json BENCH_traffic.json` is the
// machine-readable one.

import (
	"testing"

	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/simnet"
	"mccmesh/internal/telemetry"
	"mccmesh/internal/traffic"
)

// benchEngine builds the reference workload for one trial.
func benchEngine(tb testing.TB, model string, seed uint64, window simnet.Time) *traffic.Engine {
	m := mesh.New3D(16, 16, 16)
	fault.Uniform{Count: 120}.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
	im, err := traffic.ModelByName(model, core.NewModel(m))
	if err != nil {
		tb.Fatal(err)
	}
	p, err := traffic.PatternByName("hotspot", m, 0.1)
	if err != nil {
		tb.Fatal(err)
	}
	return traffic.NewEngine(m, im, p, traffic.Options{
		Rate: 0.02, Warmup: 50, Window: window, MaxEvents: 50_000_000,
	})
}

// churnBenchEngine is benchEngine plus the reference churn timeline: region
// failures of three nodes arriving with MTTF 40 and repaired with MTTR 100 —
// the workload of the "churn" bench cell.
func churnBenchEngine(tb testing.TB, seed uint64, window simnet.Time) *traffic.Engine {
	m := mesh.New3D(16, 16, 16)
	fault.Uniform{Count: 120}.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
	im, err := traffic.ModelByName("mcc", core.NewModel(m))
	if err != nil {
		tb.Fatal(err)
	}
	p, err := traffic.PatternByName("hotspot", m, 0.1)
	if err != nil {
		tb.Fatal(err)
	}
	shape, err := fault.Build("region", map[string]any{"size": 3})
	if err != nil {
		tb.Fatal(err)
	}
	return traffic.NewEngine(m, im, p, traffic.Options{
		Rate: 0.02, Warmup: 50, Window: window, MaxEvents: 50_000_000,
		Timeline: &fault.Timeline{Until: int64(50 + window), MTTF: 40, MTTR: 100, Shape: shape},
	})
}

// BenchmarkHotspot16MCCChurn runs the headline workload under fault churn:
// the same mesh and traffic as BenchmarkHotspot16MCC with the reference
// timeline failing and repairing region clusters mid-run.
func BenchmarkHotspot16MCCChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := churnBenchEngine(b, 7, 500).Run(7)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if res.Delivered == 0 || res.Failures == 0 {
			b.Fatal("no traffic delivered or no churn fired")
		}
		b.ReportMetric(float64(res.Events), "events/op")
	}
}

func benchHotspot16(b *testing.B, model string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := benchEngine(b, model, 7, 500).Run(7)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if res.Delivered == 0 {
			b.Fatal("no traffic delivered")
		}
		b.ReportMetric(float64(res.Events), "events/op")
	}
}

// BenchmarkHotspot16MCC is the headline benchmark: the paper's MCC
// information model under hotspot load.
func BenchmarkHotspot16MCC(b *testing.B) { benchHotspot16(b, "mcc") }

// BenchmarkHotspot16Local isolates the event-core + engine overhead: the
// stateless local-greedy model makes no information-model queries beyond a
// constant-time check.
func BenchmarkHotspot16Local(b *testing.B) { benchHotspot16(b, "local") }

// benchHotspot32 is the sharding A/B workload: the 32x32x32 cell of the
// "shards4" bench spec (400 uniform faults, hotspot at rate 0.02, window
// 200), run sequentially (shards <= 1) or across slab shards. Both variants
// produce bit-identical results; only events/sec moves.
func benchHotspot32(b *testing.B, shards int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := mesh.New3D(32, 32, 32)
		fault.Uniform{Count: 400}.Inject(m, rng.New(rng.Derive(7, 1<<48)))
		im, err := traffic.ModelByName("mcc", core.NewModel(m))
		if err != nil {
			b.Fatal(err)
		}
		p, err := traffic.PatternByName("hotspot", m, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		e := traffic.NewEngine(m, im, p, traffic.Options{
			Rate: 0.02, Warmup: 50, Window: 200, MaxEvents: 100_000_000,
			Shards: shards,
			ShardModel: func() (traffic.InfoModel, error) {
				return traffic.ModelByName("mcc", core.NewModel(m))
			},
		})
		res := e.Run(7)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if res.Delivered == 0 {
			b.Fatal("no traffic delivered")
		}
		b.ReportMetric(float64(res.Events), "events/op")
	}
}

// BenchmarkHotspot32MCC is the sequential side of the sharding A/B.
func BenchmarkHotspot32MCC(b *testing.B) { benchHotspot32(b, 1) }

// BenchmarkHotspot32MCCShards4 runs the same trial across 4 slab shards —
// the Go-benchmark twin of the BENCH_traffic.json "shards4" cell (which is
// informational in `mcc bench -baseline`: parallel speed-up moves with the
// runner's cores, so it is tracked, never gated).
func BenchmarkHotspot32MCCShards4(b *testing.B) { benchHotspot32(b, 4) }

// BenchmarkHotspot16MCCTelemetry is BenchmarkHotspot16MCC with the telemetry
// counters live — the on/off pair that pins the instrumentation overhead
// (<5% events/s; see PERFORMANCE.md).
func BenchmarkHotspot16MCCTelemetry(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := mesh.New3D(16, 16, 16)
		fault.Uniform{Count: 120}.Inject(m, rng.New(rng.Derive(7, 1<<48)))
		im, err := traffic.ModelByName("mcc", core.NewModel(m))
		if err != nil {
			b.Fatal(err)
		}
		p, err := traffic.PatternByName("hotspot", m, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		e := traffic.NewEngine(m, im, p, traffic.Options{
			Rate: 0.02, Warmup: 50, Window: 500, MaxEvents: 50_000_000, Telemetry: true,
		})
		res := e.Run(7)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if res.Telemetry == nil || res.Telemetry.Get(telemetry.PacketsDelivered) == 0 {
			b.Fatal("telemetry sink missing or empty")
		}
		b.ReportMetric(float64(res.Events), "events/op")
	}
}
