package traffic_test

// Benchmarks for the continuous-traffic hot path on the PERFORMANCE.md
// reference workload: a 16x16x16 mesh, ~3% uniform faults, hotspot traffic at
// rate 0.02. `go test -bench Hotspot -benchtime 3x ./internal/traffic` is the
// quick reproduction; `mcc bench -json BENCH_traffic.json` is the
// machine-readable one.

import (
	"testing"

	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/simnet"
	"mccmesh/internal/traffic"
)

// benchEngine builds the reference workload for one trial.
func benchEngine(tb testing.TB, model string, seed uint64, window simnet.Time) *traffic.Engine {
	m := mesh.New3D(16, 16, 16)
	fault.Uniform{Count: 120}.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
	im, err := traffic.ModelByName(model, core.NewModel(m))
	if err != nil {
		tb.Fatal(err)
	}
	p, err := traffic.PatternByName("hotspot", m, 0.1)
	if err != nil {
		tb.Fatal(err)
	}
	return traffic.NewEngine(m, im, p, traffic.Options{
		Rate: 0.02, Warmup: 50, Window: window, MaxEvents: 50_000_000,
	})
}

func benchHotspot16(b *testing.B, model string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := benchEngine(b, model, 7, 500).Run(7)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if res.Delivered == 0 {
			b.Fatal("no traffic delivered")
		}
		b.ReportMetric(float64(res.Events), "events/op")
	}
}

// BenchmarkHotspot16MCC is the headline benchmark: the paper's MCC
// information model under hotspot load.
func BenchmarkHotspot16MCC(b *testing.B) { benchHotspot16(b, "mcc") }

// BenchmarkHotspot16Local isolates the event-core + engine overhead: the
// stateless local-greedy model makes no information-model queries beyond a
// constant-time check.
func BenchmarkHotspot16Local(b *testing.B) { benchHotspot16(b, "local") }
