package traffic

import (
	"reflect"
	"testing"

	"mccmesh/internal/telemetry"
)

func TestTelemetryDisabledByDefault(t *testing.T) {
	res := newTrialEngine(t, "mcc", 10, 3, Options{Rate: 0.02, Warmup: 10, Window: 40}).Run(3)
	if res.Telemetry != nil || res.Traces != nil {
		t.Errorf("telemetry off by default: Telemetry=%v Traces=%v", res.Telemetry, res.Traces)
	}
}

func TestTelemetryCountersMatchResult(t *testing.T) {
	opts := Options{Rate: 0.02, Warmup: 10, Window: 80, Telemetry: true}
	res := newTrialEngine(t, "mcc", 15, 9, opts).Run(9)
	tel := res.Telemetry
	if tel == nil {
		t.Fatal("Options.Telemetry did not produce a sink")
	}
	checks := []struct {
		id   telemetry.CounterID
		want int
	}{
		{telemetry.PacketsInjected, res.Injected},
		{telemetry.PacketsDelivered, res.Delivered},
		{telemetry.PacketsStuck, res.Stuck},
		{telemetry.PacketsLost, res.Lost},
	}
	for _, c := range checks {
		if got := tel.Get(c.id); got != int64(c.want) {
			t.Errorf("%v = %d, want %d", c.id, got, c.want)
		}
	}
	// The MCC model routes through the field cache, so a run with traffic must
	// have built fields, and — with repeated destinations — answered later
	// hops with decision probes into the memoised fields. FieldHits stays
	// near zero here by design: the decision fast path short-cuts the
	// per-direction field consultations it used to count.
	if tel.Get(telemetry.FieldColdBuilds) == 0 {
		t.Error("FieldColdBuilds = 0; the MCC provider should have built fields")
	}
	if tel.Get(telemetry.DecisionBuilds) == 0 {
		t.Error("DecisionBuilds = 0; the MCC provider should have resolved decision misses through builds")
	}
	if tel.Get(telemetry.DecisionHits) == 0 {
		t.Error("DecisionHits = 0; repeated destinations should hit the memoised decision path")
	}
}

func TestTelemetryTracesRecordHops(t *testing.T) {
	opts := Options{Rate: 0.03, Warmup: 10, Window: 80, TraceEvery: 4, TraceCap: 1024}
	res := newTrialEngine(t, "mcc", 15, 9, opts).Run(9)
	if res.Telemetry == nil {
		t.Fatal("tracing must imply telemetry")
	}
	if len(res.Traces) == 0 {
		t.Fatal("1-in-4 sampling over a full window produced no traces")
	}
	n := res.Telemetry.Get(telemetry.TracesSampled)
	if n == 0 || n < int64(len(res.Traces)) {
		t.Errorf("TracesSampled = %d, returned %d traces", n, len(res.Traces))
	}
	nodes := 6 * 6 * 6
	last := -1
	for _, tr := range res.Traces {
		if tr.Packet <= last {
			t.Fatalf("traces out of packet order: %d after %d", tr.Packet, last)
		}
		last = tr.Packet
		switch tr.Status {
		case telemetry.StatusDelivered:
			if tr.Deliver < tr.Inject || len(tr.Hops) == 0 {
				t.Errorf("delivered packet %d has no plausible hops: %+v", tr.Packet, tr)
			}
		case telemetry.StatusStuck, telemetry.StatusLost:
		default:
			t.Errorf("packet %d has status %q after Close", tr.Packet, tr.Status)
		}
		for _, h := range tr.Hops {
			if h.Node < 0 || int(h.Node) >= nodes {
				t.Errorf("packet %d hop node %d out of range", tr.Packet, h.Node)
			}
		}
	}
}

// TestTelemetryWorkersInvariance pins the tentpole determinism claim: counter
// snapshots and sampled traces are bit-identical at any -workers value,
// because sampling keys off the per-trial seed and trial results merge in
// trial order.
func TestTelemetryWorkersInvariance(t *testing.T) {
	sweep := func(workers int) *Aggregate {
		results := RunTrials(workers, 6, 77, func(trial int, seed uint64) *Result {
			opts := Options{Rate: 0.02, Warmup: 10, Window: 60, TraceEvery: 8}
			return newTrialEngine(t, "mcc", 12, seed, opts).Run(seed)
		})
		return Collect(results)
	}
	a, b := sweep(1), sweep(8)
	if a.Telemetry == nil || b.Telemetry == nil {
		t.Fatal("sweeps ran without telemetry")
	}
	if !reflect.DeepEqual(a.Telemetry.Snapshot(), b.Telemetry.Snapshot()) {
		t.Errorf("counter snapshots differ across worker counts:\n1: %v\n8: %v",
			a.Telemetry.Snapshot(), b.Telemetry.Snapshot())
	}
	// The invariance must not be vacuous for the per-hop decision counters:
	// the mcc model routes through the decision fast path, so both sweeps
	// must have recorded hits and builds (and the DeepEqual above then pins
	// them equal across worker counts).
	if a.Telemetry.Get(telemetry.DecisionHits) == 0 {
		t.Error("DecisionHits = 0 across the sweep; decision-counter invariance was vacuous")
	}
	if a.Telemetry.Get(telemetry.DecisionBuilds) == 0 {
		t.Error("DecisionBuilds = 0 across the sweep; decision-counter invariance was vacuous")
	}
}

// TestTelemetryTraceWorkersInvariance compares the per-trial traces directly:
// the same trial must emit byte-identical traces at any worker count.
func TestTelemetryTraceWorkersInvariance(t *testing.T) {
	run := func(workers int) [][]telemetry.Trace {
		results := RunTrials(workers, 4, 31, func(trial int, seed uint64) *Result {
			opts := Options{Rate: 0.03, Warmup: 10, Window: 60, TraceEvery: 4}
			return newTrialEngine(t, "mcc", 12, seed, opts).Run(seed)
		})
		out := make([][]telemetry.Trace, len(results))
		for i, r := range results {
			out[i] = r.Traces
		}
		return out
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Error("sampled traces differ across worker counts")
	}
	any := false
	for _, trs := range a {
		if len(trs) > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no trial produced traces; the invariance check was vacuous")
	}
}
