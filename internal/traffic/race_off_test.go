//go:build !race

package traffic_test

// raceEnabled reports that this test binary was built with -race, which
// instruments allocations and would break exact alloc accounting.
const raceEnabled = false
