package traffic

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

func TestUniformDestinationDistribution(t *testing.T) {
	m := mesh.New2D(4, 4)
	faulty := grid.Point{X: 3, Y: 3}
	m.AddFaults(faulty)
	src := grid.Point{}
	r := rng.New(1)
	counts := make(map[grid.Point]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		d, ok := Uniform{}.Dest(r, m, src)
		if !ok {
			t.Fatal("uniform pattern failed to find a destination")
		}
		if d == src || d == faulty {
			t.Fatalf("uniform drew invalid destination %v", d)
		}
		counts[d]++
	}
	eligible := m.NodeCount() - 2 // minus the source and the fault
	if len(counts) != eligible {
		t.Fatalf("uniform reached %d destinations, want %d", len(counts), eligible)
	}
	want := float64(draws) / float64(eligible)
	for d, c := range counts {
		if float64(c) < 0.7*want || float64(c) > 1.3*want {
			t.Errorf("destination %v drawn %d times, want about %.0f", d, c, want)
		}
	}
}

func TestTransposeMapping(t *testing.T) {
	m2 := mesh.New2D(5, 5)
	if d, ok := (Transpose{}).Dest(nil, m2, grid.Point{X: 1, Y: 3}); !ok || d != (grid.Point{X: 3, Y: 1}) {
		t.Errorf("2-D transpose of (1,3) = %v ok=%v, want (3,1)", d, ok)
	}
	if _, ok := (Transpose{}).Dest(nil, m2, grid.Point{X: 2, Y: 2}); ok {
		t.Error("diagonal nodes must skip injection under transpose")
	}
	m3 := mesh.New3D(4, 4, 4)
	if d, ok := (Transpose{}).Dest(nil, m3, grid.Point{X: 1, Y: 2, Z: 3}); !ok || d != (grid.Point{X: 2, Y: 3, Z: 1}) {
		t.Errorf("3-D transpose of (1,2,3) = %v ok=%v, want (2,3,1)", d, ok)
	}
	// A faulty image suppresses injection rather than rerouting it.
	m2.AddFaults(grid.Point{X: 3, Y: 1})
	if _, ok := (Transpose{}).Dest(nil, m2, grid.Point{X: 1, Y: 3}); ok {
		t.Error("transpose to a faulty node should skip")
	}
}

func TestTransposeScalesRectangularMeshes(t *testing.T) {
	m := mesh.New2D(8, 4)
	for x := 0; x < 8; x++ {
		for y := 0; y < 4; y++ {
			d, ok := (Transpose{}).Dest(nil, m, grid.Point{X: x, Y: y})
			if ok && !m.InBounds(d) {
				t.Fatalf("transpose of (%d,%d) = %v is off the mesh", x, y, d)
			}
		}
	}
	// The far corner must map to the far corner (endpoint preservation).
	d, ok := (Transpose{}).Dest(nil, m, grid.Point{X: 7, Y: 0})
	if !ok || d != (grid.Point{X: 0, Y: 3}) {
		t.Errorf("transpose of (7,0) on 8x4 = %v ok=%v, want (0,3)", d, ok)
	}
}

func TestBitReversalMapping(t *testing.T) {
	m := mesh.New2D(8, 8)
	// Within 3 bits: 1=001 -> 100=4, 3=011 -> 110=6.
	if d, ok := (BitReversal{}).Dest(nil, m, grid.Point{X: 1, Y: 3}); !ok || d != (grid.Point{X: 4, Y: 6}) {
		t.Errorf("bitrev of (1,3) = %v ok=%v, want (4,6)", d, ok)
	}
	// Palindromic coordinates map to themselves and skip.
	if _, ok := (BitReversal{}).Dest(nil, m, grid.Point{}); ok {
		t.Error("bitrev fixed point should skip injection")
	}
	// Non-power-of-two extents stay on the mesh.
	m6 := mesh.New3D(6, 6, 6)
	for x := 0; x < 6; x++ {
		d, ok := (BitReversal{}).Dest(nil, m6, grid.Point{X: x, Y: 5 - x, Z: x})
		if ok && !m6.InBounds(d) {
			t.Fatalf("bitrev left the mesh: %v", d)
		}
	}
}

func TestHotspotFraction(t *testing.T) {
	m := mesh.New2D(6, 6)
	h := Hotspot{Target: MeshCenter(m), Fraction: 0.25}
	r := rng.New(7)
	hot, total := 0, 20000
	for i := 0; i < total; i++ {
		d, ok := h.Dest(r, m, grid.Point{})
		if !ok {
			t.Fatal("hotspot failed to find a destination")
		}
		if d == h.Target {
			hot++
		}
	}
	frac := float64(hot) / float64(total)
	// The uniform share also hits the target 1/35 of the time, so expect
	// 0.25 + 0.75/35 ≈ 0.27.
	if frac < 0.24 || frac > 0.31 {
		t.Errorf("hotspot fraction = %.3f, want about 0.27", frac)
	}
	// A faulty hotspot degrades to uniform rather than failing.
	m.AddFaults(h.Target)
	for i := 0; i < 100; i++ {
		d, ok := h.Dest(r, m, grid.Point{})
		if !ok || d == h.Target {
			t.Fatal("faulty hotspot should fall back to uniform traffic")
		}
	}
}

func TestNeighborStaysLocal(t *testing.T) {
	m := mesh.New3D(4, 4, 4)
	m.AddFaults(grid.Point{X: 1})
	r := rng.New(3)
	src := grid.Point{}
	for i := 0; i < 1000; i++ {
		d, ok := (Neighbor{}).Dest(r, m, src)
		if !ok {
			t.Fatal("neighbor pattern failed on a mostly healthy mesh")
		}
		if grid.Manhattan(src, d) != 1 || m.IsFaulty(d) {
			t.Fatalf("neighbor drew %v (distance %d)", d, grid.Manhattan(src, d))
		}
	}
	// A fully isolated node skips injection.
	iso := mesh.New2D(3, 3)
	iso.AddFaults(grid.Point{X: 1}, grid.Point{Y: 1})
	if _, ok := (Neighbor{}).Dest(r, iso, grid.Point{}); ok {
		t.Error("isolated source should skip injection")
	}
}

func TestPatternByName(t *testing.T) {
	m := mesh.New3D(4, 4, 4)
	for _, name := range PatternNames() {
		p, err := PatternByName(name, m, 0)
		if err != nil {
			t.Errorf("PatternByName(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("pattern %q has empty name", name)
		}
	}
	if _, err := PatternByName("nope", m, 0); err == nil {
		t.Error("unknown pattern should error")
	}
}
