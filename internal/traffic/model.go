package traffic

import (
	"fmt"

	"mccmesh/internal/block"
	"mccmesh/internal/core"
	"mccmesh/internal/grid"
	"mccmesh/internal/registry"
	"mccmesh/internal/routing"
	"mccmesh/internal/telemetry"
)

// InfoModel adapts one fault-information model to continuous traffic: it hands
// out routing providers per travel orientation (reusing them across packets)
// and rebuilds its fault information when the engine injects faults mid-run.
type InfoModel interface {
	// Provider returns the provider consulted for packets travelling with the
	// given orientation. Providers are cached, so repeated calls are cheap.
	Provider(orient grid.Orientation) routing.Provider
	// Invalidate drops every cached labelling, region set and provider after
	// the mesh's fault set changed.
	Invalidate()
	// Name identifies the model in tables.
	Name() string
}

// FaultApplier is the incremental-update extension of InfoModel: the engine
// calls ApplyFaults with the nodes a mid-run fault event just marked faulty
// (already set on the mesh), and the model relabels only the affected
// neighbourhood — keeping its providers and their epoch caches alive —
// instead of recomputing the world. Models that cannot update incrementally
// simply don't implement it; the engine falls back to Invalidate.
type FaultApplier interface {
	ApplyFaults(pts []grid.Point)
}

// FaultRepairer is the repair-side counterpart of FaultApplier: the churn
// timeline calls RepairFaults with the nodes it just restored (already
// cleared on the mesh), and the model un-relabels only the repaired
// neighbourhood. As with FaultApplier, models without an incremental repair
// path simply don't implement it and the engine falls back to Invalidate.
type FaultRepairer interface {
	RepairFaults(pts []grid.Point)
}

// mccModel serves the paper's MCC information model, one provider per
// orientation (the labelling is orientation-specific).
type mccModel struct {
	model *core.Model
	provs [8]*routing.MCC
	tel   *telemetry.Sink
}

// NewMCCModel returns the MCC fault-information model over m.
func NewMCCModel(model *core.Model) InfoModel {
	return &mccModel{model: model}
}

func (im *mccModel) Name() string { return "mcc" }

func (im *mccModel) Provider(orient grid.Orientation) routing.Provider {
	idx := orient.Index()
	if im.provs[idx] == nil {
		im.provs[idx] = &routing.MCC{Set: im.model.Regions(orient)}
		im.provs[idx].SetTelemetry(im.tel)
	}
	return im.provs[idx]
}

// SetTelemetry implements telemetry.Instrumentable: the sink reaches the core
// model (labellings) and every cached or future provider's field cache.
func (im *mccModel) SetTelemetry(s *telemetry.Sink) {
	im.tel = s
	im.model.SetTelemetry(s)
	for _, p := range im.provs {
		if p != nil {
			p.SetTelemetry(s)
		}
	}
}

func (im *mccModel) Invalidate() {
	im.model.Invalidate()
	im.provs = [8]*routing.MCC{}
}

// ApplyFaults implements FaultApplier: the labellings relabel incrementally,
// the component sets refresh in place (so the cached providers keep pointing
// at live data), and each provider's field cache takes an O(1) epoch bump.
func (im *mccModel) ApplyFaults(pts []grid.Point) {
	im.model.ApplyFaults(pts)
	im.bumpCaches()
}

// RepairFaults implements FaultRepairer: the mirror of ApplyFaults through
// labeling.RemoveFaults — un-relabel the repaired neighbourhood, re-extract
// the regions in place, bump the provider field-cache epochs.
func (im *mccModel) RepairFaults(pts []grid.Point) {
	im.model.RepairFaults(pts)
	im.bumpCaches()
}

func (im *mccModel) bumpCaches() {
	for _, p := range im.provs {
		if p != nil {
			p.InvalidateCache()
		}
	}
}

// blockModel serves the rectangular-faulty-block baseline; the block set is
// orientation-independent, so one provider suffices.
type blockModel struct {
	model   *core.Model
	variant block.Model
	prov    *routing.Block
	tel     *telemetry.Sink
}

// NewBlockModel returns the rectangular-block baseline model over m.
func NewBlockModel(model *core.Model, variant block.Model) InfoModel {
	return &blockModel{model: model, variant: variant}
}

func (im *blockModel) Name() string { return "rfb-" + im.variant.String() }

func (im *blockModel) Provider(grid.Orientation) routing.Provider {
	if im.prov == nil {
		im.prov = &routing.Block{Regions: im.model.Blocks(im.variant)}
		im.prov.SetTelemetry(im.tel)
	}
	return im.prov
}

// SetTelemetry implements telemetry.Instrumentable.
func (im *blockModel) SetTelemetry(s *telemetry.Sink) {
	im.tel = s
	im.model.SetTelemetry(s)
	if im.prov != nil {
		im.prov.SetTelemetry(s)
	}
}

func (im *blockModel) Invalidate() {
	im.model.Invalidate()
	im.prov = nil
}

// ApplyFaults implements FaultApplier. Block snapshots have no incremental
// form, so the provider is dropped for a lazy wholesale rebuild; the shared
// core model still updates its labellings incrementally.
func (im *blockModel) ApplyFaults(pts []grid.Point) {
	im.model.ApplyFaults(pts)
	im.prov = nil
}

// RepairFaults implements FaultRepairer; as with ApplyFaults, the block
// snapshot is rebuilt wholesale while the shared core model repairs in place.
func (im *blockModel) RepairFaults(pts []grid.Point) {
	im.model.RepairFaults(pts)
	im.prov = nil
}

// oracleModel serves the omniscient provider (the theoretical optimum).
type oracleModel struct {
	model *core.Model
	prov  *routing.Oracle
	tel   *telemetry.Sink
}

// NewOracleModel returns the omniscient model over m.
func NewOracleModel(model *core.Model) InfoModel {
	return &oracleModel{model: model}
}

func (im *oracleModel) Name() string { return "oracle" }

func (im *oracleModel) Provider(grid.Orientation) routing.Provider {
	if im.prov == nil {
		im.prov = &routing.Oracle{Mesh: im.model.Mesh()}
		im.prov.SetTelemetry(im.tel)
	}
	return im.prov
}

// SetTelemetry implements telemetry.Instrumentable.
func (im *oracleModel) SetTelemetry(s *telemetry.Sink) {
	im.tel = s
	im.model.SetTelemetry(s)
	if im.prov != nil {
		im.prov.SetTelemetry(s)
	}
}

func (im *oracleModel) Invalidate() {
	// The oracle reads the live mesh; only its reachability cache is stale.
	// Guard the nil case: a fault event may fire before any packet asked for
	// the provider.
	if im.prov != nil {
		routing.InvalidateCaches(im.prov)
	}
}

// ApplyFaults implements FaultApplier: the oracle reads the live mesh, so an
// epoch bump on its field cache is all an incremental update needs.
func (im *oracleModel) ApplyFaults(pts []grid.Point) { im.Invalidate() }

// RepairFaults implements FaultRepairer: same as ApplyFaults — the live mesh
// is the source of truth either way.
func (im *oracleModel) RepairFaults(pts []grid.Point) { im.Invalidate() }

// labeledModel avoids unsafe nodes with no region reasoning.
type labeledModel struct {
	model *core.Model
	provs [8]*routing.Labeled
}

// NewLabeledModel returns the labels-only model over m.
func NewLabeledModel(model *core.Model) InfoModel {
	return &labeledModel{model: model}
}

func (im *labeledModel) Name() string { return "labels" }

// SetTelemetry implements telemetry.Instrumentable: Labeled providers have no
// field cache, but the core model's labellings count relabel set sizes.
func (im *labeledModel) SetTelemetry(s *telemetry.Sink) { im.model.SetTelemetry(s) }

func (im *labeledModel) Provider(orient grid.Orientation) routing.Provider {
	idx := orient.Index()
	if im.provs[idx] == nil {
		im.provs[idx] = &routing.Labeled{Labeling: im.model.Labeling(orient)}
	}
	return im.provs[idx]
}

func (im *labeledModel) Invalidate() {
	im.model.Invalidate()
	im.provs = [8]*routing.Labeled{}
}

// ApplyFaults implements FaultApplier: the cached providers read the
// labellings, which relabel in place.
func (im *labeledModel) ApplyFaults(pts []grid.Point) {
	im.model.ApplyFaults(pts)
}

// RepairFaults implements FaultRepairer: the labellings un-relabel in place.
func (im *labeledModel) RepairFaults(pts []grid.Point) {
	im.model.RepairFaults(pts)
}

// localModel is the stateless local-greedy floor baseline.
type localModel struct{}

// NewLocalModel returns the local-greedy floor baseline.
func NewLocalModel() InfoModel { return localModel{} }

func (localModel) Name() string                               { return "local" }
func (localModel) Provider(grid.Orientation) routing.Provider { return routing.LocalGreedy{} }
func (localModel) Invalidate()                                {}

// ModelCtor builds an information model over a core.Model from decoded spec
// parameters.
type ModelCtor func(model *core.Model, args registry.Args) (InfoModel, error)

// Models is the information-model registry. Built-ins register below;
// third-party models register the same way:
//
//	traffic.Models.Register(registry.Entry[traffic.ModelCtor]{Name: "mine", New: ...})
var Models = registry.New[ModelCtor]("information model")

func init() {
	register := func(name, doc string, build func(*core.Model) InfoModel) {
		Models.Register(registry.Entry[ModelCtor]{
			Name: name,
			Doc:  doc,
			New: func(model *core.Model, _ registry.Args) (InfoModel, error) {
				return build(model), nil
			},
		})
	}
	register(core.ProviderMCC, "the paper's minimal-connected-component model", NewMCCModel)
	register(core.ProviderRFB, "rectangular faulty blocks (bounding box)", func(m *core.Model) InfoModel {
		return NewBlockModel(m, block.BoundingBox)
	})
	register(core.ProviderFBRule, "rectangular faulty blocks (convexity rule)", func(m *core.Model) InfoModel {
		return NewBlockModel(m, block.ConvexityRule)
	})
	register(core.ProviderOracle, "omniscient reachability (theoretical optimum)", NewOracleModel)
	register(core.ProviderLabels, "avoid unsafe labels, no region reasoning", NewLabeledModel)
	register(core.ProviderLocal, "stateless local-greedy floor baseline", func(*core.Model) InfoModel {
		return NewLocalModel()
	})
}

// BuildModel resolves an information model by name, validates its parameters
// against the registered schema and constructs it over model.
func BuildModel(name string, model *core.Model, args registry.Args) (InfoModel, error) {
	e, err := Models.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	if err := e.CheckArgs(args); err != nil {
		return nil, fmt.Errorf("traffic: information model %q: %w", e.Name, err)
	}
	return e.New(model, args)
}

// ModelByName builds the named information model over a core.Model. Accepted
// names: mcc, rfb (bounding-box blocks), fb-rule (convexity-rule blocks),
// oracle, labels, local — plus anything registered in Models.
func ModelByName(name string, model *core.Model) (InfoModel, error) {
	return BuildModel(name, model, nil)
}

// ModelNames lists the information-model names accepted by ModelByName.
func ModelNames() []string { return Models.Names() }
