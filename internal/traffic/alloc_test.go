package traffic_test

import (
	"runtime"
	"testing"

	"mccmesh/internal/traffic"
)

// TestSteadyStateAllocsPerPacket guards the zero-alloc hot path: one
// steady-state packet hop — timer pop, injection draw, candidate-direction
// fill, policy pick, ref send, delivery — must not allocate. The whole-run
// budgets amortise the bounded per-run setup (node RNG table, context
// table, calendar buckets, packet-pool growth) over the delivered packets.
//
// The local cell runs a fresh engine: before the index-first refactor this
// workload allocated ~30 heap objects per delivered packet, so its 0.25
// ceiling has an order of magnitude of slack against accounting noise while
// still failing on any per-hop or per-packet allocation that sneaks back in.
//
// The mcc cell measures a second Run on the same engine: the information
// model — and with it the providers' field caches — persists across runs,
// so the first run builds every reachability field the steady state touches
// and the measured run answers every hop from the memoised decision fast
// path. With the fields slab- and arena-backed, that steady state allocates
// nothing per packet or per hop; the 0.01 ceiling only admits the bounded
// per-run setup amortised over the >= 10k deliveries the cell requires.
func TestSteadyStateAllocsPerPacket(t *testing.T) {
	if raceEnabled {
		t.Skip("-race instruments allocations; alloc accounting is only meaningful without it")
	}
	if testing.Short() {
		t.Skip("multi-second traffic run")
	}
	// Warm global state (registry lookups, lazy tables) out of the measurement.
	if res := benchEngine(t, "local", 11, 100).Run(11); res.Err != nil || res.Delivered == 0 {
		t.Fatalf("warmup run failed: delivered=%d err=%v", res.Delivered, res.Err)
	}

	measure := func(t *testing.T, e *traffic.Engine) float64 {
		t.Helper()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res := e.Run(11)
		runtime.ReadMemStats(&after)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Delivered < 10_000 {
			t.Fatalf("workload too small to be meaningful: delivered %d packets", res.Delivered)
		}
		perPacket := float64(after.Mallocs-before.Mallocs) / float64(res.Delivered)
		t.Logf("delivered %d packets over %d events, %.4f allocs/packet",
			res.Delivered, res.Events, perPacket)
		return perPacket
	}

	t.Run("local", func(t *testing.T) {
		if perPacket := measure(t, benchEngine(t, "local", 11, 500)); perPacket > 0.25 {
			t.Errorf("steady-state hot path allocates: %.4f allocs per delivered packet (want <= 0.25) — "+
				"a per-hop or per-packet allocation crept back into simnet or the engine", perPacket)
		}
	})

	t.Run("mcc", func(t *testing.T) {
		e := benchEngine(t, "mcc", 11, 500)
		if res := e.Run(11); res.Err != nil || res.Delivered == 0 {
			t.Fatalf("mcc warmup run failed: delivered=%d err=%v", res.Delivered, res.Err)
		}
		if perPacket := measure(t, e); perPacket > 0.01 {
			t.Errorf("mcc steady state allocates: %.4f allocs per delivered packet (want 0) — "+
				"the decision fast path, the field slab/arena, or the per-run setup regressed", perPacket)
		}
	})
}

// TestChurnAllocsPerPacket guards the fault-churn hot path: with a stochastic
// fail/repair timeline live, the per-packet path must stay allocation-free
// and the per-churn-event work (incremental relabel, in-place region refresh,
// epoch bumps, phase accounting) must amortise to well under one allocation
// per delivered packet — the budget the churn bench cell asserts too.
func TestChurnAllocsPerPacket(t *testing.T) {
	if raceEnabled {
		t.Skip("-race instruments allocations; alloc accounting is only meaningful without it")
	}
	if testing.Short() {
		t.Skip("multi-second traffic run")
	}
	if res := churnBenchEngine(t, 11, 100).Run(11); res.Err != nil || res.Delivered == 0 {
		t.Fatalf("warmup run failed: delivered=%d err=%v", res.Delivered, res.Err)
	}

	e := churnBenchEngine(t, 11, 500)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := e.Run(11)
	runtime.ReadMemStats(&after)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Delivered < 10_000 {
		t.Fatalf("workload too small to be meaningful: delivered %d packets", res.Delivered)
	}
	if res.Failures == 0 || res.Repairs == 0 {
		t.Fatalf("timeline did not churn: %d failures, %d repairs", res.Failures, res.Repairs)
	}
	perPacket := float64(after.Mallocs-before.Mallocs) / float64(res.Delivered)
	t.Logf("delivered %d packets over %d events with %d failures / %d repairs, %.4f allocs/packet",
		res.Delivered, res.Events, res.Failures, res.Repairs, perPacket)
	if perPacket > 1.0 {
		t.Errorf("churn hot path allocates: %.4f allocs per delivered packet (want < 1.0) — "+
			"per-event churn work stopped amortising or a per-hop allocation crept back in", perPacket)
	}
}
