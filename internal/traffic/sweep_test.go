package traffic

import (
	"reflect"
	"testing"

	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

// sweepTrial is a realistic trial body: fresh mesh, fresh faults, fresh model,
// one engine run.
func sweepTrial(trial int, seed uint64) *Result {
	m := mesh.New3D(5, 5, 5)
	fault.Uniform{Count: 8}.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
	im, err := ModelByName("mcc", core.NewModel(m))
	if err != nil {
		panic(err)
	}
	return NewEngine(m, im, Uniform{}, Options{Rate: 0.03, Warmup: 10, Window: 50}).Run(seed)
}

func TestRunTrialsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const trials = 12
	serial := RunTrials(1, trials, 99, sweepTrial)
	for _, workers := range []int{2, 4, 8} {
		parallel := RunTrials(workers, trials, 99, sweepTrial)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
	// GOMAXPROCS default (workers <= 0) must agree too.
	if auto := RunTrials(0, trials, 99, sweepTrial); !reflect.DeepEqual(serial, auto) {
		t.Fatal("results differ between 1 worker and GOMAXPROCS workers")
	}
}

func TestRunTrialsSeedsAreIndexDerived(t *testing.T) {
	seeds := RunTrials(3, 6, 7, func(trial int, seed uint64) uint64 { return seed })
	for i, s := range seeds {
		if want := rng.Derive(7, uint64(i)); s != want {
			t.Errorf("trial %d got seed %d, want Derive(7,%d)=%d", i, s, i, want)
		}
	}
	// Distinct trials must get distinct seeds.
	seen := make(map[uint64]bool)
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate trial seed")
		}
		seen[s] = true
	}
}

func TestRunTrialsEdgeCases(t *testing.T) {
	if got := RunTrials(4, 0, 1, func(int, uint64) int { return 1 }); len(got) != 0 {
		t.Errorf("0 trials returned %d results", len(got))
	}
	// More workers than trials must not deadlock or skip slots.
	got := RunTrials(16, 3, 1, func(trial int, _ uint64) int { return trial * trial })
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 4 {
		t.Errorf("trial ordering broken: %v", got)
	}
}

func TestCollectMergesDeterministically(t *testing.T) {
	results := RunTrials(4, 8, 123, sweepTrial)
	a := Collect(results)
	b := Collect(results)
	if !reflect.DeepEqual(a, b) {
		t.Error("Collect is not deterministic over the same inputs")
	}
	if a.Trials != 8 {
		t.Errorf("Trials = %d", a.Trials)
	}
	wantInjected := 0
	var wantLatency int64
	for _, r := range results {
		wantInjected += r.Injected
		wantLatency += r.Latency.N()
	}
	if a.Injected != wantInjected || a.Latency.N() != wantLatency {
		t.Errorf("aggregate totals wrong: %+v", a)
	}
	if a.Throughput.N() != 8 {
		t.Errorf("throughput summary has %d observations", a.Throughput.N())
	}
}
