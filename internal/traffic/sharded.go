package traffic

import (
	"fmt"

	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
	"mccmesh/internal/simnet"
	"mccmesh/internal/telemetry"
)

// Sharded execution of one trial. The mesh splits into contiguous slab shards
// (mesh.SlabPartition); each shard gets a private run state — its own packet
// pool, Result accumulators, provider cache and information-model instance —
// over a shared node RNG table, and a simnet.ShardedNetwork drives them under
// the per-tick barrier. Bit-identical parity with the sequential engine
// follows from three facts:
//
//   - every stream of randomness is per-node (injection gaps, destinations)
//     or stateless (the Seeded policy), and a node lives in exactly one
//     shard, so each stream is consumed in the same order as sequentially;
//   - the measured aggregates (counters, latency/hops histograms, per-phase
//     tallies) are order-independent sums over per-packet facts that depend
//     only on per-node event order, which the barrier protocol preserves;
//   - churn and fault callbacks run on the coordinator at the tick barrier,
//     before that tick's deliveries — the same "control first" order the
//     sequential queue gives setup-enqueued control events — so every shard
//     observes fault state change at identical points of the timeline.
//
// What is NOT preserved: packet ids (per-shard counters; only traces read
// them, and tracing pins the sequential path) and the queue-shape telemetry
// counters (each shard has its own calendar; sums differ from one big one).

// shardedRun is the coordinator state of one sharded trial: churn bookkeeping
// and the open measurement phase, mirroring the coordinator-owned subset of
// run. Phase delivery tallies stay distributed — each shard's deliver()
// accumulates its own phaseDelivered/phaseLatSum — and are summed (and reset)
// here when a phase closes.
type shardedRun struct {
	e       *Engine
	sn      *simnet.ShardedNetwork
	states  []*run
	res     *Result
	horizon simnet.Time

	groups [][]grid.Point

	phases       []PhaseStat
	phaseStart   simnet.Time
	phaseHealthy int
}

// runSharded executes one trial across shards. It returns nil when the mesh
// has too few layers to split at least two ways — the caller falls back to
// the sequential path.
func (e *Engine) runSharded(seed uint64) *Result {
	slabs := mesh.SlabPartition(e.mesh, e.opts.Shards)
	if len(slabs) < 2 {
		return nil
	}
	res := &Result{
		Model:        e.model.Name(),
		Pattern:      e.pattern.Name(),
		Rate:         e.opts.Rate,
		HealthyNodes: e.mesh.NodeCount() - e.mesh.FaultCount(),
		Warmup:       e.opts.Warmup,
		Window:       e.opts.Window,
	}
	// The shared randomness: one RNG stream per node (only that node's shard
	// draws from it) and one stateless policy — seeded exactly as the
	// sequential path seeds them.
	nodeRng := make([]rng.Rand, e.mesh.NodeCount())
	for i := range nodeRng {
		nodeRng[i].Seed(rng.Derive(seed, uint64(i)))
	}
	policy := e.opts.Policy
	if policy == nil {
		policy = routing.Seeded{Seed: rng.Derive(seed, 1<<40)}
	}
	var nextInject []simnet.Time
	if e.opts.Timeline != nil {
		nextInject = make([]simnet.Time, e.mesh.NodeCount())
	}
	states := make([]*run, len(slabs))
	handlers := make([]simnet.Handler, len(slabs))
	var sinks []*telemetry.Sink
	if e.opts.Telemetry {
		sinks = make([]*telemetry.Sink, len(slabs))
	}
	for s := range slabs {
		model, err := e.opts.ShardModel()
		if err != nil {
			res.Err = fmt.Errorf("traffic: building shard %d information model: %w", s, err)
			return res
		}
		st := &run{
			e:          e,
			model:      model,
			res:        &Result{},
			nodeRng:    nodeRng,
			policy:     policy,
			horizon:    e.opts.Warmup + e.opts.Window,
			pool:       make([]packet, 0, 1024),
			dirs:       make([]grid.Direction, 0, 6),
			nextInject: nextInject,
		}
		if e.opts.Timeline != nil {
			// Non-nil sentinel: deliver() gates its per-phase tallies on it.
			// The slices themselves stay coordinator-owned (sr.phases).
			st.phases = make([]PhaseStat, 0)
		}
		if sinks != nil {
			sinks[s] = telemetry.NewSink()
			st.tel = sinks[s]
			if inst, ok := model.(telemetry.Instrumentable); ok {
				inst.SetTelemetry(sinks[s])
			}
		}
		states[s] = st
		handlers[s] = st
	}
	sn := simnet.NewSharded(e.mesh, handlers, slabs, simnet.ShardedOptions{
		LinkDelay: e.opts.LinkDelay,
		MaxEvents: e.opts.MaxEvents,
		Telemetry: sinks,
		// A packet crossing a slab boundary moves between pools at the
		// barrier: copy the value into the destination pool, release the
		// source slot. Single-threaded on the coordinator.
		MigrateRef: func(from, to int, kind simnet.KindID, ref int32) int32 {
			src, dst := states[from], states[to]
			nref := dst.alloc()
			dst.pool[nref] = src.pool[ref]
			src.release(ref)
			return nref
		},
	})
	injectID, packetID := sn.Kind(kindInject), sn.Kind(kindPacket)
	for _, st := range states {
		st.injectID, st.packetID = injectID, packetID
	}
	sr := &shardedRun{e: e, sn: sn, states: states, res: res, horizon: e.opts.Warmup + e.opts.Window}
	for i := range e.opts.Faults {
		ev := e.opts.Faults[i]
		evRng := rng.New(rng.Derive(seed, uint64(1)<<32+uint64(i)))
		sn.At(ev.At, func() {
			placed := ev.Inject.Inject(e.mesh, evRng)
			for _, st := range states {
				st.applyFaults(placed)
			}
			if sr.phases != nil && len(placed) > 0 {
				sr.closePhase(sn.Now())
			}
		})
	}
	if tl := e.opts.Timeline; tl != nil {
		steps := tl.Program(rng.New(rng.Derive(seed, churnProgramSalt)))
		sr.groups = make([][]grid.Point, fault.Groups(steps))
		sr.phases = make([]PhaseStat, 0, len(steps)+1)
		sr.phaseStart = e.opts.Warmup
		sr.phaseHealthy = res.HealthyNodes
		for i := range steps {
			stp := steps[i]
			var placeRng *rng.Rand
			if !stp.Repair {
				placeRng = rng.New(rng.Derive(seed, churnPlaceSalt+uint64(stp.Group)))
			}
			sn.At(simnet.Time(stp.At), func() { sr.churnStep(stp, placeRng) })
		}
	}
	sim, err := sn.Run()
	res.Err = err
	res.FinalTime = sim.FinalTime
	res.Events = sim.Events
	for _, st := range states {
		sres := st.res
		res.Offered += sres.Offered
		res.Skipped += sres.Skipped
		res.Injected += sres.Injected
		res.Delivered += sres.Delivered
		res.Stuck += sres.Stuck
		res.MeasuredInjected += sres.MeasuredInjected
		res.MeasuredDelivered += sres.MeasuredDelivered
		res.Latency.Merge(&sres.Latency)
		res.Hops.Merge(&sres.Hops)
	}
	// Injected-in-A-lost-in-B is only visible globally: Lost must come from
	// the merged totals, never from per-shard differences.
	res.Lost = res.Injected - res.Delivered - res.Stuck
	if sr.phases != nil {
		end := sr.horizon
		if end < sr.phaseStart {
			end = sr.phaseStart
		}
		del, lat := sr.drainPhaseTallies()
		res.Phases = append(sr.phases, PhaseStat{
			Start: sr.phaseStart, End: end, Healthy: sr.phaseHealthy,
			Delivered: del, LatencySum: lat,
		})
	}
	if sinks != nil {
		merged := telemetry.NewSink()
		for _, sink := range sinks {
			merged.Merge(sink)
		}
		merged.Add(telemetry.PacketsInjected, int64(res.Injected))
		merged.Add(telemetry.PacketsDelivered, int64(res.Delivered))
		merged.Add(telemetry.PacketsStuck, int64(res.Stuck))
		merged.Add(telemetry.PacketsLost, int64(res.Lost))
		merged.Add(telemetry.ChurnFailures, int64(res.Failures))
		merged.Add(telemetry.ChurnRepairs, int64(res.Repairs))
		merged.Add(telemetry.ChurnFailedNodes, int64(res.FailedNodes))
		merged.Add(telemetry.ChurnRepairedNodes, int64(res.RepairedNodes))
		res.Telemetry = merged
	}
	return res
}

// churnStep is the coordinator counterpart of run.churnStep: same mesh
// mutation and counter updates, with the model change fanned out to every
// shard's private instance and the repaired nodes re-armed through their
// owning shard's context.
func (sr *shardedRun) churnStep(stp fault.Step, placeRng *rng.Rand) {
	now := sr.sn.Now()
	if stp.Repair {
		pts := sr.groups[stp.Group]
		if len(pts) == 0 {
			return // the failure placed nothing (saturated mesh)
		}
		sr.groups[stp.Group] = nil
		sr.e.mesh.RemoveFaults(pts...)
		for _, st := range sr.states {
			if fr, ok := st.model.(FaultRepairer); ok {
				fr.RepairFaults(pts)
			} else {
				st.model.Invalidate()
			}
			st.provs = [8]provEntry{}
		}
		sr.res.Repairs++
		sr.res.RepairedNodes += len(pts)
		// Same strict comparison as the sequential path: a timer delivering on
		// the repair tick itself survives (control runs before the tick's
		// deliveries in both modes), so only strictly-past timers re-arm.
		for _, p := range pts {
			id := sr.e.mesh.ID(p)
			st := sr.states[sr.sn.ShardOf(id)]
			if st.nextInject[id] < now {
				st.scheduleInjection(sr.sn.ContextOf(id))
			}
		}
	} else {
		placed := stp.Inject.Inject(sr.e.mesh, placeRng)
		if len(placed) == 0 {
			return
		}
		sr.groups[stp.Group] = placed
		for _, st := range sr.states {
			st.applyFaults(placed)
		}
		sr.res.Failures++
		sr.res.FailedNodes += len(placed)
	}
	sr.closePhase(now)
}

// closePhase mirrors run.closePhase branch for branch; the only difference is
// where the open phase's delivery tally lives (summed across shards, reset
// only when a PhaseStat is actually appended).
func (sr *shardedRun) closePhase(now simnet.Time) {
	healthy := sr.e.mesh.NodeCount() - sr.e.mesh.FaultCount()
	if now <= sr.e.opts.Warmup {
		sr.phaseHealthy = healthy
		return
	}
	if now >= sr.horizon {
		return
	}
	if now == sr.phaseStart {
		sr.phaseHealthy = healthy
		return
	}
	del, lat := sr.drainPhaseTallies()
	sr.phases = append(sr.phases, PhaseStat{
		Start: sr.phaseStart, End: now, Healthy: sr.phaseHealthy,
		Delivered: del, LatencySum: lat,
	})
	sr.phaseStart = now
	sr.phaseHealthy = healthy
}

// drainPhaseTallies sums and resets the per-shard open-phase accumulators.
func (sr *shardedRun) drainPhaseTallies() (del int, lat int64) {
	for _, st := range sr.states {
		del += st.phaseDelivered
		lat += st.phaseLatSum
		st.phaseDelivered, st.phaseLatSum = 0, 0
	}
	return del, lat
}
