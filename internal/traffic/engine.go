package traffic

import (
	"fmt"
	"math"

	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
	"mccmesh/internal/simnet"
	"mccmesh/internal/stats"
	"mccmesh/internal/telemetry"
)

// Envelope kinds used by the engine.
const (
	kindInject = "inject"
	kindPacket = "pkt"
)

// FaultEvent injects additional faults at a fixed simulated time, modelling
// nodes dying under load. The injector draws from a deterministic per-event
// generator, so fault schedules do not perturb the traffic streams.
type FaultEvent struct {
	At     simnet.Time
	Inject fault.Injector
}

// Options configure one engine run.
type Options struct {
	// Rate is the injection probability per healthy node per tick, i.e. the
	// offered load. Inter-arrival gaps are geometric with this success rate.
	Rate float64
	// Warmup is the tick count before measurement starts; packets injected
	// during warmup are routed but not measured.
	Warmup simnet.Time
	// Window is the measurement duration. Injection stops at Warmup+Window
	// and the run drains the in-flight packets.
	Window simnet.Time
	// Policy picks among allowed forwarding directions. Defaults to a Seeded
	// policy derived from the run seed.
	Policy routing.Policy
	// LinkDelay and MaxEvents are passed to the simulator.
	LinkDelay simnet.Time
	MaxEvents int
	// Faults is the dynamic fault schedule (injections only, never repaired).
	Faults []FaultEvent
	// Timeline is the stochastic fault-churn process: failure groups arrive
	// and are later repaired while traffic is in flight. Fault information
	// flows through the models' incremental FaultApplier / FaultRepairer
	// paths, nodes stop injecting while they are down and resume on repair,
	// and the measurement window is split into phases at every churn event
	// (Result.Phases).
	Timeline *fault.Timeline
	// PatternParams parameterises a pattern resolved by name (e.g.
	// {"fraction": 0.2, "target": [5, 5, 5]} for hotspot); see the Patterns
	// registry for each pattern's schema. It is consumed by callers that
	// build the pattern for the engine — the facade's NewTrafficEngine and
	// the scenario runner — and ignored when an explicit Pattern value is
	// passed to NewEngine.
	PatternParams map[string]any
	// Telemetry enables the counter sink for this run: the engine creates a
	// telemetry.Sink, threads it through the information model, the routing
	// field caches and the simulator queue, and returns it in
	// Result.Telemetry. Off by default — the disabled instrumentation costs
	// one predicted nil-check branch per hook.
	Telemetry bool
	// TraceEvery samples one packet in every TraceEvery for full hop-by-hop
	// tracing (0 disables tracing). Sampling is keyed off the per-trial seed
	// and the packet id, so the sampled set — and the traces themselves — are
	// identical at any worker count. Implies Telemetry.
	TraceEvery int
	// TraceCap bounds the trace ring buffer (default 256); older traces are
	// evicted when it overflows.
	TraceCap int
	// Shards splits the trial spatially into up to Shards slab shards (see
	// mesh.SlabPartition), each owning its own event queue and packet pool,
	// synchronised conservatively at a per-tick barrier. The measured results
	// are bit-identical to the sequential path at any shard count. 0 or 1 —
	// the default — runs the sequential engine with zero overhead; so does
	// tracing (TraceEvery > 0), because packet traces are defined over the
	// global delivery order a single queue provides. Requires ShardModel.
	Shards int
	// ShardModel builds one information model instance per shard: model state
	// (labellings, routing field caches) is not concurrency-safe, so each
	// shard routes against a private copy. Required when Shards > 1; when nil
	// the engine stays sequential.
	ShardModel func() (InfoModel, error)
}

// Result aggregates one engine run.
type Result struct {
	// Model, Pattern and Rate echo the run configuration.
	Model   string
	Pattern string
	Rate    float64
	// HealthyNodes is the healthy-node count at the start of the run (the
	// throughput normalisation base).
	HealthyNodes int
	// Warmup, Window and FinalTime describe the timeline; FinalTime includes
	// the post-horizon drain of in-flight packets.
	Warmup, Window, FinalTime simnet.Time
	// Offered counts injection attempts; Skipped those without a valid
	// destination; Injected the packets actually sent.
	Offered, Skipped, Injected int
	// Delivered, Stuck and Lost partition the injected packets: delivered to
	// their destination, stopped with no allowed forwarding direction, or
	// dropped because a node on their path (or their destination) died.
	Delivered, Stuck, Lost int
	// MeasuredInjected / MeasuredDelivered count the packets injected inside
	// the measurement window (and their deliveries, whenever they complete).
	MeasuredInjected, MeasuredDelivered int
	// Latency and Hops are histograms over the measured delivered packets, in
	// ticks and hops respectively.
	Latency stats.Histogram
	Hops    stats.Histogram
	// Events is the total number of simulator events processed.
	Events int
	// Failures and Repairs count the churn-timeline events that fired;
	// FailedNodes and RepairedNodes total the nodes they took down and
	// restored. All zero without Options.Timeline.
	Failures, Repairs          int
	FailedNodes, RepairedNodes int
	// Phases splits the measurement window at every churn event: per-phase
	// measured deliveries and latency, the per-phase resolution the churn
	// experiments read. Nil without Options.Timeline.
	Phases []PhaseStat
	// Err is non-nil when the simulator aborted the trial — today that means
	// the event budget ran out (errors.Is(Err, simnet.ErrEventBudget)). The
	// counters above cover the prefix that did run; sweep aggregation
	// (Collect) and the scenario report surface the failure per cell instead
	// of killing the process.
	Err error
	// Telemetry is the counter sink of the run, nil unless Options.Telemetry
	// (or tracing) was enabled.
	Telemetry *telemetry.Sink
	// Traces holds the sampled packet traces, nil unless Options.TraceEvery
	// was set.
	Traces []telemetry.Trace
}

// PhaseStat is the traffic measured between two consecutive churn events (or
// a churn event and a window edge): deliveries are assigned to the phase they
// complete in, so a phase shows the network as it was — post-failure
// degradation, post-repair recovery — at per-event resolution.
type PhaseStat struct {
	// Start and End bound the phase in simulated ticks; deliveries draining
	// after the measurement horizon land in the final phase.
	Start, End simnet.Time
	// Healthy is the healthy-node count at the phase start (the throughput
	// normalisation base of this phase).
	Healthy int
	// Delivered counts measured packets delivered inside the phase;
	// LatencySum totals their latencies in ticks.
	Delivered  int
	LatencySum int64
}

// Throughput returns the phase's deliveries per healthy node per tick.
func (p PhaseStat) Throughput() float64 {
	if p.End <= p.Start || p.Healthy == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.End-p.Start) / float64(p.Healthy)
}

// MeanLatency returns the mean latency of the phase's deliveries in ticks.
func (p PhaseStat) MeanLatency() float64 {
	if p.Delivered == 0 {
		return 0
	}
	return float64(p.LatencySum) / float64(p.Delivered)
}

// Throughput returns the accepted traffic: measured deliveries per healthy
// node per tick. At low load it tracks the injection rate; past saturation it
// flattens (or collapses for weak information models).
func (r *Result) Throughput() float64 {
	if r.Window <= 0 || r.HealthyNodes == 0 {
		return 0
	}
	return float64(r.MeasuredDelivered) / float64(r.Window) / float64(r.HealthyNodes)
}

// DeliveredRatio returns the fraction of injected packets that were delivered.
func (r *Result) DeliveredRatio() float64 {
	if r.Injected == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Injected)
}

// Engine runs continuous traffic over one mesh. It owns the mesh for the
// duration of Run: the fault schedule mutates it in place.
type Engine struct {
	mesh    *mesh.Mesh
	model   InfoModel
	pattern Pattern
	opts    Options
}

// NewEngine returns an engine over m using the given information model and
// traffic pattern.
func NewEngine(m *mesh.Mesh, model InfoModel, pattern Pattern, opts Options) *Engine {
	if opts.Rate <= 0 {
		opts.Rate = 0.01
	}
	if opts.Rate > 1 {
		opts.Rate = 1
	}
	if opts.Warmup < 0 {
		opts.Warmup = 0
	}
	if opts.Window <= 0 {
		opts.Window = 256
	}
	return &Engine{mesh: m, model: model, pattern: pattern, opts: opts}
}

// run is the per-Run state shared by the handler callbacks.
type run struct {
	e *Engine
	// model is the information model this state routes against: e.model in the
	// sequential engine, a private per-shard instance (Options.ShardModel) in
	// the sharded one.
	model   InfoModel
	res     *Result
	nodeRng []rng.Rand
	policy  routing.Policy
	horizon simnet.Time
	nextID  int

	// kinds are interned once per run so the hot path never touches strings.
	injectID, packetID simnet.KindID

	// provs caches the per-orientation provider and its one-time IDProvider
	// type assertion, so the per-hop loop neither re-asks the model nor
	// re-asserts. Fault events flush it (models may hand out new providers).
	provs [8]provEntry

	// pool holds every in-flight packet by value; envelopes carry pool
	// indices (simnet's Ref fast path) instead of boxed copies. free is the
	// free-list of released slots. Packets dropped inside the simulator (a
	// node on their path died) leak their slot until the run ends, which is
	// bounded by the fault schedule.
	pool []packet
	free []int32

	dirs []grid.Direction // scratch for CandidateDirs, cap 6

	// tel and trace are the run's telemetry sink and trace ring, both nil
	// unless enabled in Options.
	tel   *telemetry.Sink
	trace *telemetry.TraceSink

	// Churn-timeline state, nil/zero without Options.Timeline. groups records
	// the nodes each failure group took down so its repair restores exactly
	// them; nextInject tracks each node's pending injection-timer delivery
	// tick, so a repair can tell a timer chain broken by the failure (the
	// timer was dropped while the node was faulty) from one still in flight.
	groups     [][]grid.Point
	nextInject []simnet.Time
	// The open phase accumulator: closed into phases at every churn event
	// inside the measurement window and once more at the end of the run.
	phases         []PhaseStat
	phaseStart     simnet.Time
	phaseHealthy   int
	phaseDelivered int
	phaseLatSum    int64
}

// provEntry is one cached per-orientation provider; masked selects the
// packed-decision CandidateMaskID path (every built-in provider), fast the
// index-first AllowedID path, and the Provider field the Point fallback for
// third-party providers implementing neither.
type provEntry struct {
	prov   routing.Provider
	id     routing.IDProvider
	dec    routing.DecisionProvider
	fast   bool
	masked bool
}

// packet is the typed, pooled payload of one in-flight packet; the
// orientation is fixed at the source exactly as in Router.Route.
type packet struct {
	id     int
	src    grid.Point
	dst    grid.Point
	dstID  int32
	orient grid.Orientation
	inject simnet.Time
	hops   int
	// traceIdx is the packet's slot in the trace ring, -1 when untraced.
	traceIdx int32
}

// alloc reserves a pool slot, reusing a released one when available.
func (st *run) alloc() int32 {
	if n := len(st.free); n > 0 {
		ref := st.free[n-1]
		st.free = st.free[:n-1]
		return ref
	}
	st.pool = append(st.pool, packet{})
	return int32(len(st.pool) - 1)
}

// release returns a pool slot to the free-list.
func (st *run) release(ref int32) { st.free = append(st.free, ref) }

// Run executes one trial with the given seed and returns its measurements.
// Everything — injection gaps, destinations, tie-breaking, fault placement —
// derives deterministically from the seed, so identical seeds give identical
// results wherever the trial runs. A trial that exhausts the simulator's
// event budget reports the failure in Result.Err instead of panicking.
func (e *Engine) Run(seed uint64) *Result {
	if e.opts.Shards > 1 && e.opts.ShardModel != nil && e.opts.TraceEvery == 0 {
		if res := e.runSharded(seed); res != nil {
			return res
		}
		// nil: the mesh has too few layers to split — fall through sequential.
	}
	res := &Result{
		Model:        e.model.Name(),
		Pattern:      e.pattern.Name(),
		Rate:         e.opts.Rate,
		HealthyNodes: e.mesh.NodeCount() - e.mesh.FaultCount(),
		Warmup:       e.opts.Warmup,
		Window:       e.opts.Window,
	}
	st := &run{
		e:       e,
		model:   e.model,
		res:     res,
		nodeRng: make([]rng.Rand, e.mesh.NodeCount()),
		policy:  e.opts.Policy,
		horizon: e.opts.Warmup + e.opts.Window,
		pool:    make([]packet, 0, 1024),
		dirs:    make([]grid.Direction, 0, 6),
	}
	for i := range st.nodeRng {
		st.nodeRng[i].Seed(rng.Derive(seed, uint64(i)))
	}
	if st.policy == nil {
		st.policy = routing.Seeded{Seed: rng.Derive(seed, 1<<40)}
	}
	if e.opts.Telemetry || e.opts.TraceEvery > 0 {
		st.tel = telemetry.NewSink()
		if inst, ok := e.model.(telemetry.Instrumentable); ok {
			inst.SetTelemetry(st.tel)
		}
		if e.opts.TraceEvery > 0 {
			capacity := e.opts.TraceCap
			if capacity <= 0 {
				capacity = 256
			}
			st.trace = telemetry.NewTraceSink(rng.Derive(seed, traceSalt), e.opts.TraceEvery, capacity, st.tel)
		}
	}
	net := simnet.New(e.mesh, st, simnet.Options{LinkDelay: e.opts.LinkDelay, MaxEvents: e.opts.MaxEvents, Telemetry: st.tel})
	st.injectID = net.Kind(kindInject)
	st.packetID = net.Kind(kindPacket)
	for i, ev := range e.opts.Faults {
		evRng := rng.New(rng.Derive(seed, uint64(1)<<32+uint64(i)))
		net.At(ev.At, func() {
			placed := ev.Inject.Inject(e.mesh, evRng)
			// Models that can absorb the new faults incrementally keep their
			// labellings, regions and field caches alive; the rest recompute
			// lazily from scratch. Either way the cached provider table is
			// flushed — a model is free to hand out new providers after this.
			st.applyFaults(placed)
			// With a timeline also active, a scheduled injection is a phase
			// boundary too: the healthy-node base of the open phase changed.
			// It is not a timeline event, so Failures stays untouched.
			if st.phases != nil && len(placed) > 0 {
				st.closePhase(net.Now())
			}
		})
	}
	if tl := e.opts.Timeline; tl != nil {
		// The step stream (arrival times, repair pairings) derives from one
		// salted generator, each group's placement from its own — so the
		// schedule and the placements are independent deterministic streams.
		steps := tl.Program(rng.New(rng.Derive(seed, churnProgramSalt)))
		st.groups = make([][]grid.Point, fault.Groups(steps))
		st.nextInject = make([]simnet.Time, e.mesh.NodeCount())
		st.phases = make([]PhaseStat, 0, len(steps)+1)
		st.phaseStart = e.opts.Warmup
		st.phaseHealthy = res.HealthyNodes
		for i := range steps {
			stp := steps[i]
			var placeRng *rng.Rand
			if !stp.Repair {
				placeRng = rng.New(rng.Derive(seed, churnPlaceSalt+uint64(stp.Group)))
			}
			net.At(simnet.Time(stp.At), func() { st.churnStep(net, stp, placeRng) })
		}
	}
	sim, err := net.Run()
	res.Err = err
	res.FinalTime = sim.FinalTime
	res.Events = sim.Events
	res.Lost = res.Injected - res.Delivered - res.Stuck
	if st.phases != nil {
		// Close the open phase; drain deliveries past the horizon have
		// already been accumulated into it.
		end := st.horizon
		if end < st.phaseStart {
			end = st.phaseStart
		}
		res.Phases = append(st.phases, PhaseStat{
			Start: st.phaseStart, End: end, Healthy: st.phaseHealthy,
			Delivered: st.phaseDelivered, LatencySum: st.phaseLatSum,
		})
	}
	if st.tel != nil {
		// Packet and churn totals come from the Result at the end of the run
		// instead of per-packet increments: the hot path pays nothing for
		// counters the aggregates already carry.
		st.tel.Add(telemetry.PacketsInjected, int64(res.Injected))
		st.tel.Add(telemetry.PacketsDelivered, int64(res.Delivered))
		st.tel.Add(telemetry.PacketsStuck, int64(res.Stuck))
		st.tel.Add(telemetry.PacketsLost, int64(res.Lost))
		st.tel.Add(telemetry.ChurnFailures, int64(res.Failures))
		st.tel.Add(telemetry.ChurnRepairs, int64(res.Repairs))
		st.tel.Add(telemetry.ChurnFailedNodes, int64(res.FailedNodes))
		st.tel.Add(telemetry.ChurnRepairedNodes, int64(res.RepairedNodes))
		res.Telemetry = st.tel
	}
	if st.trace != nil {
		st.trace.Close()
		res.Traces = st.trace.Traces()
	}
	return res
}

// Derivation salts for the churn timeline's seed streams, disjoint from the
// per-node (dense IDs), policy (1<<40), fault-event (1<<32+i) and injector
// (1<<48) streams.
const (
	churnProgramSalt = uint64(1) << 41
	churnPlaceSalt   = uint64(1) << 42
	// traceSalt keys the packet-trace sampling stream (telemetry).
	traceSalt = uint64(1) << 43
)

// applyFaults pushes freshly placed faults through the model's incremental
// path (or a wholesale invalidation) and flushes the cached provider table.
func (st *run) applyFaults(placed []grid.Point) {
	if fa, ok := st.model.(FaultApplier); ok {
		fa.ApplyFaults(placed)
	} else {
		st.model.Invalidate()
	}
	st.provs = [8]provEntry{}
}

// churnStep executes one materialised timeline step: place a failure group or
// repair one, push the change through the model's incremental path, and close
// the current measurement phase.
func (st *run) churnStep(net *simnet.Network, stp fault.Step, placeRng *rng.Rand) {
	now := net.Now()
	if stp.Repair {
		pts := st.groups[stp.Group]
		if len(pts) == 0 {
			return // the failure placed nothing (saturated mesh)
		}
		st.groups[stp.Group] = nil
		st.e.mesh.RemoveFaults(pts...)
		if fr, ok := st.model.(FaultRepairer); ok {
			fr.RepairFaults(pts)
		} else {
			st.model.Invalidate()
		}
		st.provs = [8]provEntry{}
		st.res.Repairs++
		st.res.RepairedNodes += len(pts)
		// Restart the injection clock of every repaired node whose pending
		// timer was dropped while it was faulty (delivery tick strictly in
		// the past); a timer still in flight keeps the chain alive on its
		// own. A timer landing on the repair tick itself is never dropped —
		// churn callbacks were enqueued at setup, so they run before any
		// same-tick timer and the node is healthy by the time it delivers —
		// hence the strict comparison (<= would arm a second chain).
		for _, p := range pts {
			id := st.e.mesh.ID(p)
			if st.nextInject[id] < now {
				st.scheduleInjection(net.ContextOf(id))
			}
		}
	} else {
		placed := stp.Inject.Inject(st.e.mesh, placeRng)
		if len(placed) == 0 {
			return
		}
		st.groups[stp.Group] = placed
		st.applyFaults(placed)
		st.res.Failures++
		st.res.FailedNodes += len(placed)
	}
	st.closePhase(now)
}

// closePhase ends the open measurement phase at a churn event. Events at or
// before the warmup only rebase the first phase's healthy count; events at or
// past the horizon leave the final phase open (it closes when the run ends).
func (st *run) closePhase(now simnet.Time) {
	healthy := st.e.mesh.NodeCount() - st.e.mesh.FaultCount()
	if now <= st.e.opts.Warmup {
		st.phaseHealthy = healthy
		return
	}
	if now >= st.horizon {
		return
	}
	if now == st.phaseStart {
		// A second churn event on the same tick: merge the boundaries — the
		// next phase starts from the combined post-event state instead of
		// recording a zero-length phase.
		st.phaseHealthy = healthy
		return
	}
	st.phases = append(st.phases, PhaseStat{
		Start: st.phaseStart, End: now, Healthy: st.phaseHealthy,
		Delivered: st.phaseDelivered, LatencySum: st.phaseLatSum,
	})
	st.phaseStart = now
	st.phaseHealthy = healthy
	st.phaseDelivered = 0
	st.phaseLatSum = 0
}

// Init implements simnet.Handler: every healthy node schedules its first
// injection.
func (st *run) Init(ctx *simnet.Context) { st.scheduleInjection(ctx) }

// scheduleInjection draws a geometric inter-arrival gap for this node's next
// injection and arms a timer, unless the horizon has passed.
func (st *run) scheduleInjection(ctx *simnet.Context) {
	if ctx.Time() >= st.horizon {
		return
	}
	r := &st.nodeRng[ctx.SelfID()]
	gap := geometricGap(r, st.e.opts.Rate)
	if st.nextInject != nil {
		st.nextInject[ctx.SelfID()] = ctx.Time() + gap
	}
	ctx.AfterRef(gap, st.injectID, simnet.NoRef)
}

// geometricGap samples the tick count until the next success of a Bernoulli
// process with probability rate (at least 1).
func geometricGap(r *rng.Rand, rate float64) simnet.Time {
	if rate >= 1 {
		return 1
	}
	u := r.Float64()
	// Invert the geometric CDF; u is in [0,1), so both logs are negative and
	// the ratio is non-negative.
	gap := int64(math.Log1p(-u)/math.Log1p(-rate)) + 1
	if gap < 1 {
		gap = 1
	}
	return simnet.Time(gap)
}

// Receive implements simnet.Handler. It dispatches on the interned KindID;
// packet envelopes carry a pool reference, never a boxed payload.
func (st *run) Receive(ctx *simnet.Context, env *simnet.Envelope) {
	switch env.KindID {
	case st.injectID:
		st.inject(ctx)
		st.scheduleInjection(ctx)
	case st.packetID:
		ref := env.Ref
		if st.pool[ref].dstID == ctx.SelfID() {
			st.deliver(ctx, ref)
			return
		}
		st.forward(ctx, ref)
	default:
		panic(fmt.Sprintf("traffic: unexpected envelope kind %q", env.Kind))
	}
}

// inject generates one packet at this node if the run is still within the
// injection horizon and the pattern yields a destination.
func (st *run) inject(ctx *simnet.Context) {
	if ctx.Time() >= st.horizon {
		return
	}
	st.res.Offered++
	r := &st.nodeRng[ctx.SelfID()]
	self := ctx.Self()
	d, ok := st.e.pattern.Dest(r, ctx.Mesh(), self)
	if !ok {
		st.res.Skipped++
		return
	}
	ref := st.alloc()
	st.pool[ref] = packet{
		id:       st.nextID,
		src:      self,
		dst:      d,
		dstID:    int32(ctx.Mesh().Index(d)),
		orient:   grid.OrientationOf(self, d),
		inject:   ctx.Time(),
		traceIdx: -1,
	}
	if st.trace != nil && st.trace.Sampled(st.nextID) {
		pk := &st.pool[ref]
		pk.traceIdx = st.trace.Begin(pk.id, ctx.SelfID(), pk.dstID, int64(pk.inject))
	}
	st.nextID++
	st.res.Injected++
	if ctx.Time() >= st.e.opts.Warmup {
		st.res.MeasuredInjected++
	}
	st.forward(ctx, ref)
}

// forward advances a packet one hop using the information model, or records it
// as stuck when every preferred direction is excluded. The hop runs on dense
// node IDs end to end with no ID→Point→ID round-trip; for built-in providers
// it is one CandidateMaskID call — an epoch compare plus at most three bit
// probes into the destination's memoised field while the fault epoch is
// stable — with CandidateDirsID (per-direction AllowedID) and the Point-based
// CandidateDirs as the fallbacks for third-party providers.
func (st *run) forward(ctx *simnet.Context, ref int32) {
	pk := &st.pool[ref]
	pe := &st.provs[pk.orient.Index()]
	if pe.prov == nil {
		pe.prov = st.model.Provider(pk.orient)
		pe.id, pe.fast = pe.prov.(routing.IDProvider)
		pe.dec, pe.masked = pe.prov.(routing.DecisionProvider)
	}
	self := ctx.Self()
	// Hop-source classification is gated on the packet being traced, so the
	// untraced hot path pays nothing beyond the traceIdx compare.
	traced := st.trace != nil && pk.traceIdx >= 0
	var hits0, builds0, dhits0 int64
	if traced {
		hits0 = st.tel.Get(telemetry.FieldHits)
		builds0 = st.tel.Get(telemetry.FieldColdBuilds) + st.tel.Get(telemetry.FieldRebuilds) + st.tel.Get(telemetry.DecisionBuilds)
		dhits0 = st.tel.Get(telemetry.DecisionHits)
	}
	switch {
	case pe.masked:
		mk := pe.dec.CandidateMaskID(ctx.Mesh(), ctx.SelfID(), self, pk.dstID, pk.dst)
		st.dirs = routing.AppendMaskDirs(st.dirs[:0], mk)
	case pe.fast:
		st.dirs = routing.CandidateDirsID(ctx.Mesh(), pe.id, pk.orient, ctx.SelfID(), self, pk.dstID, pk.dst, st.dirs[:0])
	default:
		st.dirs = routing.CandidateDirs(ctx.Mesh(), pe.prov, pk.orient, self, pk.dst, st.dirs[:0])
	}
	if len(st.dirs) == 0 {
		st.res.Stuck++
		if traced {
			st.trace.Finish(pk.traceIdx, pk.id, -1, telemetry.StatusStuck)
		}
		st.release(ref)
		return
	}
	pick := st.policy.Pick(self, pk.dst, st.dirs)
	pk.hops++
	if traced {
		src := telemetry.HopDirect
		switch {
		case !pe.fast && !pe.masked:
			src = telemetry.HopFallback
		case st.tel.Get(telemetry.DecisionHits) > dhits0:
			src = telemetry.HopDecisionHit
		case st.tel.Get(telemetry.FieldColdBuilds)+st.tel.Get(telemetry.FieldRebuilds)+st.tel.Get(telemetry.DecisionBuilds) > builds0:
			src = telemetry.HopColdBuild
		case st.tel.Get(telemetry.FieldHits) > hits0:
			src = telemetry.HopCacheHit
		}
		st.trace.Hop(pk.traceIdx, pk.id, ctx.SelfID(), src)
	}
	ctx.SendRef(st.dirs[pick], st.packetID, ref)
}

// deliver records a completed packet and releases its pool slot.
func (st *run) deliver(ctx *simnet.Context, ref int32) {
	pk := &st.pool[ref]
	st.res.Delivered++
	if st.trace != nil && pk.traceIdx >= 0 {
		st.trace.Finish(pk.traceIdx, pk.id, int64(ctx.Time()), telemetry.StatusDelivered)
	}
	if pk.inject >= st.e.opts.Warmup {
		st.res.MeasuredDelivered++
		lat := ctx.Time() - pk.inject
		st.res.Latency.Add(int(lat))
		st.res.Hops.Add(pk.hops)
		if st.phases != nil {
			st.phaseDelivered++
			st.phaseLatSum += int64(lat)
		}
	}
	st.release(ref)
}
