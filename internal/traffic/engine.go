package traffic

import (
	"fmt"
	"math"

	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
	"mccmesh/internal/simnet"
	"mccmesh/internal/stats"
)

// Envelope kinds used by the engine.
const (
	kindInject = "inject"
	kindPacket = "pkt"
)

// FaultEvent injects additional faults at a fixed simulated time, modelling
// nodes dying under load. The injector draws from a deterministic per-event
// generator, so fault schedules do not perturb the traffic streams.
type FaultEvent struct {
	At     simnet.Time
	Inject fault.Injector
}

// Options configure one engine run.
type Options struct {
	// Rate is the injection probability per healthy node per tick, i.e. the
	// offered load. Inter-arrival gaps are geometric with this success rate.
	Rate float64
	// Warmup is the tick count before measurement starts; packets injected
	// during warmup are routed but not measured.
	Warmup simnet.Time
	// Window is the measurement duration. Injection stops at Warmup+Window
	// and the run drains the in-flight packets.
	Window simnet.Time
	// Policy picks among allowed forwarding directions. Defaults to a Seeded
	// policy derived from the run seed.
	Policy routing.Policy
	// LinkDelay and MaxEvents are passed to the simulator.
	LinkDelay simnet.Time
	MaxEvents int
	// Faults is the dynamic fault schedule.
	Faults []FaultEvent
	// PatternParams parameterises a pattern resolved by name (e.g.
	// {"fraction": 0.2, "target": [5, 5, 5]} for hotspot); see the Patterns
	// registry for each pattern's schema. It is consumed by callers that
	// build the pattern for the engine — the facade's NewTrafficEngine and
	// the scenario runner — and ignored when an explicit Pattern value is
	// passed to NewEngine.
	PatternParams map[string]any
}

// Result aggregates one engine run.
type Result struct {
	// Model, Pattern and Rate echo the run configuration.
	Model   string
	Pattern string
	Rate    float64
	// HealthyNodes is the healthy-node count at the start of the run (the
	// throughput normalisation base).
	HealthyNodes int
	// Warmup, Window and FinalTime describe the timeline; FinalTime includes
	// the post-horizon drain of in-flight packets.
	Warmup, Window, FinalTime simnet.Time
	// Offered counts injection attempts; Skipped those without a valid
	// destination; Injected the packets actually sent.
	Offered, Skipped, Injected int
	// Delivered, Stuck and Lost partition the injected packets: delivered to
	// their destination, stopped with no allowed forwarding direction, or
	// dropped because a node on their path (or their destination) died.
	Delivered, Stuck, Lost int
	// MeasuredInjected / MeasuredDelivered count the packets injected inside
	// the measurement window (and their deliveries, whenever they complete).
	MeasuredInjected, MeasuredDelivered int
	// Latency and Hops are histograms over the measured delivered packets, in
	// ticks and hops respectively.
	Latency stats.Histogram
	Hops    stats.Histogram
	// Events is the total number of simulator events processed.
	Events int
	// Err is non-nil when the simulator aborted the trial — today that means
	// the event budget ran out (errors.Is(Err, simnet.ErrEventBudget)). The
	// counters above cover the prefix that did run; sweep aggregation
	// (Collect) and the scenario report surface the failure per cell instead
	// of killing the process.
	Err error
}

// Throughput returns the accepted traffic: measured deliveries per healthy
// node per tick. At low load it tracks the injection rate; past saturation it
// flattens (or collapses for weak information models).
func (r *Result) Throughput() float64 {
	if r.Window <= 0 || r.HealthyNodes == 0 {
		return 0
	}
	return float64(r.MeasuredDelivered) / float64(r.Window) / float64(r.HealthyNodes)
}

// DeliveredRatio returns the fraction of injected packets that were delivered.
func (r *Result) DeliveredRatio() float64 {
	if r.Injected == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Injected)
}

// Engine runs continuous traffic over one mesh. It owns the mesh for the
// duration of Run: the fault schedule mutates it in place.
type Engine struct {
	mesh    *mesh.Mesh
	model   InfoModel
	pattern Pattern
	opts    Options
}

// NewEngine returns an engine over m using the given information model and
// traffic pattern.
func NewEngine(m *mesh.Mesh, model InfoModel, pattern Pattern, opts Options) *Engine {
	if opts.Rate <= 0 {
		opts.Rate = 0.01
	}
	if opts.Rate > 1 {
		opts.Rate = 1
	}
	if opts.Warmup < 0 {
		opts.Warmup = 0
	}
	if opts.Window <= 0 {
		opts.Window = 256
	}
	return &Engine{mesh: m, model: model, pattern: pattern, opts: opts}
}

// run is the per-Run state shared by the handler callbacks.
type run struct {
	e       *Engine
	res     *Result
	nodeRng []rng.Rand
	policy  routing.Policy
	horizon simnet.Time
	nextID  int

	// kinds are interned once per run so the hot path never touches strings.
	injectID, packetID simnet.KindID

	// provs caches the per-orientation provider and its one-time IDProvider
	// type assertion, so the per-hop loop neither re-asks the model nor
	// re-asserts. Fault events flush it (models may hand out new providers).
	provs [8]provEntry

	// pool holds every in-flight packet by value; envelopes carry pool
	// indices (simnet's Ref fast path) instead of boxed copies. free is the
	// free-list of released slots. Packets dropped inside the simulator (a
	// node on their path died) leak their slot until the run ends, which is
	// bounded by the fault schedule.
	pool []packet
	free []int32

	dirs []grid.Direction // scratch for CandidateDirs, cap 6
}

// provEntry is one cached per-orientation provider; fast selects the
// index-first AllowedID path (every built-in provider), the Provider field
// the Point fallback for third-party providers.
type provEntry struct {
	prov routing.Provider
	id   routing.IDProvider
	fast bool
}

// packet is the typed, pooled payload of one in-flight packet; the
// orientation is fixed at the source exactly as in Router.Route.
type packet struct {
	id     int
	src    grid.Point
	dst    grid.Point
	dstID  int32
	orient grid.Orientation
	inject simnet.Time
	hops   int
}

// alloc reserves a pool slot, reusing a released one when available.
func (st *run) alloc() int32 {
	if n := len(st.free); n > 0 {
		ref := st.free[n-1]
		st.free = st.free[:n-1]
		return ref
	}
	st.pool = append(st.pool, packet{})
	return int32(len(st.pool) - 1)
}

// release returns a pool slot to the free-list.
func (st *run) release(ref int32) { st.free = append(st.free, ref) }

// Run executes one trial with the given seed and returns its measurements.
// Everything — injection gaps, destinations, tie-breaking, fault placement —
// derives deterministically from the seed, so identical seeds give identical
// results wherever the trial runs. A trial that exhausts the simulator's
// event budget reports the failure in Result.Err instead of panicking.
func (e *Engine) Run(seed uint64) *Result {
	res := &Result{
		Model:        e.model.Name(),
		Pattern:      e.pattern.Name(),
		Rate:         e.opts.Rate,
		HealthyNodes: e.mesh.NodeCount() - e.mesh.FaultCount(),
		Warmup:       e.opts.Warmup,
		Window:       e.opts.Window,
	}
	st := &run{
		e:       e,
		res:     res,
		nodeRng: make([]rng.Rand, e.mesh.NodeCount()),
		policy:  e.opts.Policy,
		horizon: e.opts.Warmup + e.opts.Window,
		pool:    make([]packet, 0, 1024),
		dirs:    make([]grid.Direction, 0, 6),
	}
	for i := range st.nodeRng {
		st.nodeRng[i].Seed(rng.Derive(seed, uint64(i)))
	}
	if st.policy == nil {
		st.policy = routing.Seeded{Seed: rng.Derive(seed, 1<<40)}
	}
	net := simnet.New(e.mesh, st, simnet.Options{LinkDelay: e.opts.LinkDelay, MaxEvents: e.opts.MaxEvents})
	st.injectID = net.Kind(kindInject)
	st.packetID = net.Kind(kindPacket)
	for i, ev := range e.opts.Faults {
		evRng := rng.New(rng.Derive(seed, uint64(1)<<32+uint64(i)))
		net.At(ev.At, func() {
			placed := ev.Inject.Inject(e.mesh, evRng)
			// Models that can absorb the new faults incrementally keep their
			// labellings, regions and field caches alive; the rest recompute
			// lazily from scratch. Either way the cached provider table is
			// flushed — a model is free to hand out new providers after this.
			if fa, ok := e.model.(FaultApplier); ok {
				fa.ApplyFaults(placed)
			} else {
				e.model.Invalidate()
			}
			st.provs = [8]provEntry{}
		})
	}
	sim, err := net.Run()
	res.Err = err
	res.FinalTime = sim.FinalTime
	res.Events = sim.Events
	res.Lost = res.Injected - res.Delivered - res.Stuck
	return res
}

// Init implements simnet.Handler: every healthy node schedules its first
// injection.
func (st *run) Init(ctx *simnet.Context) { st.scheduleInjection(ctx) }

// scheduleInjection draws a geometric inter-arrival gap for this node's next
// injection and arms a timer, unless the horizon has passed.
func (st *run) scheduleInjection(ctx *simnet.Context) {
	if ctx.Time() >= st.horizon {
		return
	}
	r := &st.nodeRng[ctx.SelfID()]
	gap := geometricGap(r, st.e.opts.Rate)
	ctx.AfterRef(gap, st.injectID, simnet.NoRef)
}

// geometricGap samples the tick count until the next success of a Bernoulli
// process with probability rate (at least 1).
func geometricGap(r *rng.Rand, rate float64) simnet.Time {
	if rate >= 1 {
		return 1
	}
	u := r.Float64()
	// Invert the geometric CDF; u is in [0,1), so both logs are negative and
	// the ratio is non-negative.
	gap := int64(math.Log1p(-u)/math.Log1p(-rate)) + 1
	if gap < 1 {
		gap = 1
	}
	return simnet.Time(gap)
}

// Receive implements simnet.Handler. It dispatches on the interned KindID;
// packet envelopes carry a pool reference, never a boxed payload.
func (st *run) Receive(ctx *simnet.Context, env simnet.Envelope) {
	switch env.KindID {
	case st.injectID:
		st.inject(ctx)
		st.scheduleInjection(ctx)
	case st.packetID:
		ref := env.Ref
		if st.pool[ref].dstID == ctx.SelfID() {
			st.deliver(ctx, ref)
			return
		}
		st.forward(ctx, ref)
	default:
		panic(fmt.Sprintf("traffic: unexpected envelope kind %q", env.Kind))
	}
}

// inject generates one packet at this node if the run is still within the
// injection horizon and the pattern yields a destination.
func (st *run) inject(ctx *simnet.Context) {
	if ctx.Time() >= st.horizon {
		return
	}
	st.res.Offered++
	r := &st.nodeRng[ctx.SelfID()]
	self := ctx.Self()
	d, ok := st.e.pattern.Dest(r, ctx.Mesh(), self)
	if !ok {
		st.res.Skipped++
		return
	}
	ref := st.alloc()
	st.pool[ref] = packet{
		id:     st.nextID,
		src:    self,
		dst:    d,
		dstID:  int32(ctx.Mesh().Index(d)),
		orient: grid.OrientationOf(self, d),
		inject: ctx.Time(),
	}
	st.nextID++
	st.res.Injected++
	if ctx.Time() >= st.e.opts.Warmup {
		st.res.MeasuredInjected++
	}
	st.forward(ctx, ref)
}

// forward advances a packet one hop using the information model, or records it
// as stuck when every preferred direction is excluded. The hop runs on dense
// node IDs end to end — neighbour table, fault bitset, AllowedID — with no
// ID→Point→ID round-trip; the Point forms ride along for the axis compare and
// the policy, which already live in the context and the packet.
func (st *run) forward(ctx *simnet.Context, ref int32) {
	pk := &st.pool[ref]
	pe := &st.provs[pk.orient.Index()]
	if pe.prov == nil {
		pe.prov = st.e.model.Provider(pk.orient)
		pe.id, pe.fast = pe.prov.(routing.IDProvider)
	}
	self := ctx.Self()
	if pe.fast {
		st.dirs = routing.CandidateDirsID(ctx.Mesh(), pe.id, pk.orient, ctx.SelfID(), self, pk.dstID, pk.dst, st.dirs[:0])
	} else {
		st.dirs = routing.CandidateDirs(ctx.Mesh(), pe.prov, pk.orient, self, pk.dst, st.dirs[:0])
	}
	if len(st.dirs) == 0 {
		st.res.Stuck++
		st.release(ref)
		return
	}
	pick := st.policy.Pick(self, pk.dst, st.dirs)
	pk.hops++
	ctx.SendRef(st.dirs[pick], st.packetID, ref)
}

// deliver records a completed packet and releases its pool slot.
func (st *run) deliver(ctx *simnet.Context, ref int32) {
	pk := &st.pool[ref]
	st.res.Delivered++
	if pk.inject >= st.e.opts.Warmup {
		st.res.MeasuredDelivered++
		st.res.Latency.Add(int(ctx.Time() - pk.inject))
		st.res.Hops.Add(pk.hops)
	}
	st.release(ref)
}
