package traffic

import (
	"errors"
	"reflect"
	"testing"

	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/simnet"
)

// newTrialEngine builds a mesh with `faults` uniform faults drawn from the
// trial seed, wraps it in the named information model and returns an engine.
func newTrialEngine(t *testing.T, modelName string, faults int, seed uint64, opts Options) *Engine {
	t.Helper()
	m := mesh.New3D(6, 6, 6)
	if faults > 0 {
		fault.Uniform{Count: faults}.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
	}
	im, err := ModelByName(modelName, core.NewModel(m))
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(m, im, Uniform{}, opts)
}

func TestEngineFaultFreeDeliversEverything(t *testing.T) {
	opts := Options{Rate: 0.02, Warmup: 20, Window: 80}
	res := newTrialEngine(t, "mcc", 0, 11, opts).Run(11)
	if res.Injected == 0 || res.MeasuredDelivered == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	if res.Delivered != res.Injected || res.Stuck != 0 || res.Lost != 0 {
		t.Errorf("fault-free traffic must all deliver: %+v", res)
	}
	if res.Offered != res.Injected+res.Skipped {
		t.Errorf("offered %d != injected %d + skipped %d", res.Offered, res.Injected, res.Skipped)
	}
	if res.Latency.N() != int64(res.MeasuredDelivered) || res.Hops.N() != res.Latency.N() {
		t.Errorf("histogram counts out of sync with measured deliveries: %+v", res)
	}
	// With unit link delay and minimal routing, latency equals hop count.
	if res.Latency.Mean() != res.Hops.Mean() {
		t.Errorf("latency mean %v != hops mean %v under unit link delay", res.Latency.Mean(), res.Hops.Mean())
	}
	if p99 := res.Latency.Percentile(0.99); p99 > 15 {
		t.Errorf("p99 latency %d exceeds the 6x6x6 diameter", p99)
	}
	if tp := res.Throughput(); tp <= 0 || tp > opts.Rate*1.5 {
		t.Errorf("throughput %v implausible for offered rate %v", tp, opts.Rate)
	}
}

func TestEngineAccountingWithFaults(t *testing.T) {
	for _, name := range []string{"mcc", "rfb", "labels", "local", "oracle"} {
		res := newTrialEngine(t, name, 20, 5, Options{Rate: 0.02, Warmup: 20, Window: 80}).Run(5)
		// With a static fault set no node ever dies mid-run, so no packet can
		// be dropped in flight: every injected packet must be delivered or
		// stuck. (Lost is derived, so checking it alone would be circular.)
		if res.Lost != 0 {
			t.Errorf("%s: %d packets lost with a static fault set (delivered %d + stuck %d != injected %d)",
				name, res.Lost, res.Delivered, res.Stuck, res.Injected)
		}
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", name)
		}
	}
}

func TestEngineFaultEventBeforeFirstPacket(t *testing.T) {
	// A fault event at t=0 fires before any packet asks the model for a
	// provider; every model must invalidate cleanly from that state
	// (regression: the oracle once panicked on its nil cached provider).
	for _, name := range []string{"mcc", "rfb", "labels", "local", "oracle"} {
		m := mesh.New3D(5, 5, 5)
		im, err := ModelByName(name, core.NewModel(m))
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(m, im, Uniform{}, Options{
			Rate: 0.03, Warmup: 5, Window: 40,
			Faults: []FaultEvent{{At: 0, Inject: fault.Uniform{Count: 4}}},
		})
		res := e.Run(2)
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered after t=0 fault event", name)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() *Result {
		return newTrialEngine(t, "mcc", 15, 42, Options{Rate: 0.03, Warmup: 10, Window: 60}).Run(42)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestEngineDynamicFaultInjection(t *testing.T) {
	m := mesh.New3D(6, 6, 6)
	im, err := ModelByName("mcc", core.NewModel(m))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m, im, Uniform{}, Options{
		Rate: 0.05, Warmup: 10, Window: 120,
		Faults: []FaultEvent{
			{At: 40, Inject: fault.Uniform{Count: 8}},
			{At: 80, Inject: fault.Clustered{Clusters: 1, Size: 5}},
		},
	})
	res := e.Run(9)
	if m.FaultCount() != 13 {
		t.Fatalf("fault schedule placed %d faults, want 13", m.FaultCount())
	}
	if res.Injected != res.Delivered+res.Stuck+res.Lost {
		t.Errorf("accounting broken under dynamic faults: %+v", res)
	}
	// Packets in flight toward dying nodes (or re-routed into dead ends) must
	// show up as lost or stuck, not vanish.
	if res.Delivered == res.Injected {
		t.Log("note: every packet survived the fault events (possible but unusual)")
	}
	if res.MeasuredDelivered == 0 {
		t.Error("traffic collapsed entirely after fault injection")
	}
	// Determinism holds across fault-schedule runs too.
	m2 := mesh.New3D(6, 6, 6)
	im2, _ := ModelByName("mcc", core.NewModel(m2))
	e2 := NewEngine(m2, im2, Uniform{}, Options{
		Rate: 0.05, Warmup: 10, Window: 120,
		Faults: []FaultEvent{
			{At: 40, Inject: fault.Uniform{Count: 8}},
			{At: 80, Inject: fault.Clustered{Clusters: 1, Size: 5}},
		},
	})
	if res2 := e2.Run(9); !reflect.DeepEqual(res, res2) {
		t.Errorf("dynamic-fault runs diverged:\n%+v\n%+v", res, res2)
	}
}

func TestEngineStuckUnderLocalGreedy(t *testing.T) {
	// A concave fault wall reliably traps the local-greedy model; the MCC
	// model routes around it. Build a 2-D pocket open toward -X.
	build := func(name string) *Result {
		m := mesh.New2D(8, 8)
		m.AddFaults(
			grid.Point{X: 4, Y: 2}, grid.Point{X: 4, Y: 3}, grid.Point{X: 4, Y: 4},
			grid.Point{X: 3, Y: 4}, grid.Point{X: 2, Y: 4},
			grid.Point{X: 2, Y: 2}, grid.Point{X: 2, Y: 3},
		)
		im, err := ModelByName(name, core.NewModel(m))
		if err != nil {
			t.Fatal(err)
		}
		return NewEngine(m, im, Uniform{}, Options{Rate: 0.05, Warmup: 10, Window: 200}).Run(3)
	}
	greedy := build("local")
	mcc := build("mcc")
	if greedy.Stuck == 0 {
		t.Error("local greedy should hit dead ends inside the pocket")
	}
	if mcc.DeliveredRatio() < greedy.DeliveredRatio() {
		t.Errorf("MCC delivered %.3f < local greedy %.3f", mcc.DeliveredRatio(), greedy.DeliveredRatio())
	}
}

// TestEventBudgetSurfacesInResult: a trial that exhausts the simulator's
// event budget must come back as a Result with Err set (and the counters of
// the prefix that ran), not as a panic, and Collect must aggregate the
// failure.
func TestEventBudgetSurfacesInResult(t *testing.T) {
	e := newTrialEngine(t, "local", 0, 5, Options{Rate: 0.5, Window: 200, MaxEvents: 64})
	res := e.Run(5)
	if !errors.Is(res.Err, simnet.ErrEventBudget) {
		t.Fatalf("Result.Err = %v, want simnet.ErrEventBudget", res.Err)
	}
	if res.Events != 64 {
		t.Errorf("Events = %d, want exactly the budget 64", res.Events)
	}
	agg := Collect([]*Result{res, e.Run(6)})
	if agg.Failed == 0 || agg.Err == nil {
		t.Errorf("Collect must surface failed trials: %+v", agg)
	}
}
