package traffic

// Tests for the fault-churn timeline: stochastic fail/repair streams driven
// through the live engine, the incremental repair path against wholesale
// invalidation, and the determinism churn trials must keep at any worker
// count.

import (
	"reflect"
	"testing"

	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
)

// churnTimeline is the reference stochastic timeline of these tests.
func churnTimeline(until int64) *fault.Timeline {
	shape, err := fault.Build("region", map[string]any{"size": 3})
	if err != nil {
		panic(err)
	}
	return &fault.Timeline{Until: until, MTTF: 25, MTTR: 60, Shape: shape}
}

// churnEngine builds one churn trial over a fresh mesh.
func churnEngine(tb testing.TB, model string, tl *fault.Timeline, seed uint64) *Engine {
	tb.Helper()
	m := mesh.NewCube(8)
	fault.Uniform{Count: 25}.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
	im, err := ModelByName(model, core.NewModel(m))
	if err != nil {
		tb.Fatal(err)
	}
	p, err := PatternByName("uniform", m, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return NewEngine(m, im, p, Options{
		Rate: 0.02, Warmup: 40, Window: 260, MaxEvents: 20_000_000, Timeline: tl,
	})
}

// TestTimelineProgramDeterminism pins Program to its seed: identical
// (timeline, seed) pairs must yield identical step streams, failures must
// precede their repairs, and every step must respect the horizon.
func TestTimelineProgramDeterminism(t *testing.T) {
	tl := churnTimeline(300)
	a := tl.Program(rng.New(9))
	b := tl.Program(rng.New(9))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Program is not deterministic for a fixed seed")
	}
	if len(a) == 0 {
		t.Fatal("no steps materialised (mttf 25 over 300 ticks should arrive ~12 groups)")
	}
	failAt := map[int]int64{}
	for i, s := range a {
		if s.At < 0 || s.At >= 300 {
			t.Fatalf("step %d at %d escapes [0, 300)", i, s.At)
		}
		if i > 0 && a[i-1].At > s.At {
			t.Fatalf("steps out of order: %d after %d", s.At, a[i-1].At)
		}
		if s.Repair {
			ft, ok := failAt[s.Group]
			if !ok {
				t.Fatalf("repair of group %d precedes its failure", s.Group)
			}
			if s.At <= ft {
				t.Fatalf("group %d repaired at %d, failed at %d", s.Group, s.At, ft)
			}
		} else {
			if s.Inject == nil {
				t.Fatalf("failure step %d has no injector", i)
			}
			failAt[s.Group] = s.At
		}
	}
	if c := tl.Program(rng.New(10)); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestTimelineFixedEvents checks the deterministic entries: fail exactly the
// listed nodes at the listed tick, repair them after the listed delay.
func TestTimelineFixedEvents(t *testing.T) {
	target := grid.Point{X: 4, Y: 4, Z: 4}
	tl := &fault.Timeline{
		Until: 200,
		Fixed: []fault.FixedEvent{{At: 60, Inject: fault.Exact{Nodes: []grid.Point{target}}, RepairAfter: 80}},
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	steps := tl.Program(rng.New(1))
	if len(steps) != 2 || steps[0].Repair || !steps[1].Repair ||
		steps[0].At != 60 || steps[1].At != 140 || steps[0].Group != steps[1].Group {
		t.Fatalf("unexpected program for one fixed fail/repair pair: %+v", steps)
	}
}

// TestChurnEngineDeterminism: a churn trial must be a pure function of its
// seed — same seed, same full Result (counters, histograms, phases).
func TestChurnEngineDeterminism(t *testing.T) {
	tl := churnTimeline(300)
	a := churnEngine(t, "mcc", tl, 42).Run(42)
	b := churnEngine(t, "mcc", tl, 42).Run(42)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("churn trials failed: %v / %v", a.Err, b.Err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
	if a.Failures == 0 || a.Repairs == 0 {
		t.Fatalf("timeline did not churn: %d failures, %d repairs", a.Failures, a.Repairs)
	}
}

// invalidateOnly hides a model's incremental FaultApplier / FaultRepairer
// paths, forcing the engine onto wholesale Invalidate at every churn event.
type invalidateOnly struct{ im InfoModel }

func (w invalidateOnly) Provider(o grid.Orientation) routing.Provider { return w.im.Provider(o) }
func (w invalidateOnly) Invalidate()                                  { w.im.Invalidate() }
func (w invalidateOnly) Name() string                                 { return w.im.Name() }

// TestChurnIncrementalMatchesInvalidate is the engine-level parity proof: a
// churn trial whose model absorbs every failure and repair through the
// incremental paths (AddFaults / RemoveFaults / Refresh / epoch bumps) must
// be bit-identical to the same trial forced through wholesale invalidation
// and lazy recompute. Covers every information model with a provider cache.
func TestChurnIncrementalMatchesInvalidate(t *testing.T) {
	tl := churnTimeline(300)
	for _, model := range []string{"mcc", "rfb", "labels", "oracle"} {
		for _, seed := range []uint64{7, 20050507} {
			inc := churnEngine(t, model, tl, seed).Run(seed)

			m := mesh.NewCube(8)
			fault.Uniform{Count: 25}.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
			im, err := ModelByName(model, core.NewModel(m))
			if err != nil {
				t.Fatal(err)
			}
			p, err := PatternByName("uniform", m, 0)
			if err != nil {
				t.Fatal(err)
			}
			full := NewEngine(m, invalidateOnly{im}, p, Options{
				Rate: 0.02, Warmup: 40, Window: 260, MaxEvents: 20_000_000, Timeline: tl,
			}).Run(seed)

			if inc.Err != nil || full.Err != nil {
				t.Fatalf("%s seed=%d: churn trials failed: %v / %v", model, seed, inc.Err, full.Err)
			}
			// The model name differs through the wrapper only in identity, not
			// value; everything else must match exactly.
			full.Model = inc.Model
			if !reflect.DeepEqual(inc, full) {
				t.Fatalf("%s seed=%d: incremental churn diverged from invalidate-and-recompute:\n%+v\n%+v",
					model, seed, inc, full)
			}
		}
	}
}

// TestChurnRepairRestartsInjection: a repaired node must resume injecting.
// With repairs disabled (mttr 0) the same timeline produces strictly fewer
// injection attempts, because failed nodes stay silent for the rest of the
// run.
func TestChurnRepairRestartsInjection(t *testing.T) {
	withRepair := churnTimeline(400)
	noRepair := churnTimeline(400)
	noRepair.MTTR = 0
	a := churnEngine(t, "local", withRepair, 7).Run(7)
	b := churnEngine(t, "local", noRepair, 7).Run(7)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("churn trials failed: %v / %v", a.Err, b.Err)
	}
	if a.Repairs == 0 || b.Repairs != 0 {
		t.Fatalf("repair counts wrong: with=%d without=%d", a.Repairs, b.Repairs)
	}
	if a.Offered <= b.Offered {
		t.Fatalf("repairs did not restore injection capacity: %d offered with repair, %d without", a.Offered, b.Offered)
	}
}

// TestChurnPhases checks the phase ledger: phases tile [warmup, horizon]
// without gaps, every churn event inside the window opens a new phase, and
// the per-phase deliveries add up to the trial's measured deliveries.
func TestChurnPhases(t *testing.T) {
	tl := churnTimeline(300)
	res := churnEngine(t, "mcc", tl, 11).Run(11)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Phases) == 0 {
		t.Fatal("no phases recorded for a churn trial")
	}
	if res.Phases[0].Start != 40 {
		t.Fatalf("first phase starts at %d, want the warmup boundary 40", res.Phases[0].Start)
	}
	if last := res.Phases[len(res.Phases)-1]; last.End != 300 {
		t.Fatalf("last phase ends at %d, want the horizon 300", last.End)
	}
	sum := 0
	for i, ph := range res.Phases {
		if i > 0 && ph.Start != res.Phases[i-1].End {
			t.Fatalf("phase %d starts at %d, previous ended at %d", i, ph.Start, res.Phases[i-1].End)
		}
		if ph.Healthy <= 0 || ph.End <= ph.Start {
			t.Fatalf("degenerate phase %d: %+v", i, ph)
		}
		sum += ph.Delivered
	}
	if sum != res.MeasuredDelivered {
		t.Fatalf("phase deliveries sum to %d, trial measured %d", sum, res.MeasuredDelivered)
	}
}

// TestChurnSweepWorkersInvariance: churn trials sharded across workers must
// land bit-identically regardless of the worker count.
func TestChurnSweepWorkersInvariance(t *testing.T) {
	tl := churnTimeline(300)
	runAt := func(workers int) []*Result {
		return RunTrials(workers, 6, 99, func(_ int, seed uint64) *Result {
			return churnEngine(t, "mcc", tl, seed).Run(seed)
		})
	}
	one := runAt(1)
	eight := runAt(8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatal("churn sweep results differ between -workers 1 and -workers 8")
	}
}

// TestScheduledFaultsSplitPhases: when a legacy scheduled injection
// (Options.Faults) fires while a churn timeline is active, it must close the
// open phase and rebase the healthy-node count — otherwise every later
// phase's throughput would be normalised by a stale base.
func TestScheduledFaultsSplitPhases(t *testing.T) {
	m := mesh.NewCube(8)
	im, err := ModelByName("local", core.NewModel(m))
	if err != nil {
		t.Fatal(err)
	}
	p, err := PatternByName("uniform", m, 0)
	if err != nil {
		t.Fatal(err)
	}
	tl := &fault.Timeline{
		Until: 300,
		Fixed: []fault.FixedEvent{{At: 250, Inject: fault.Exact{Nodes: []grid.Point{{X: 1, Y: 1, Z: 1}}}}},
	}
	res := NewEngine(m, im, p, Options{
		Rate: 0.02, Warmup: 40, Window: 260, MaxEvents: 20_000_000,
		Faults:   []FaultEvent{{At: 120, Inject: fault.Uniform{Count: 16}}},
		Timeline: tl,
	}).Run(5)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("want 3 phases (warmup..120, 120..250, 250..horizon), got %+v", res.Phases)
	}
	if res.Phases[0].End != 120 || res.Phases[1].Start != 120 {
		t.Fatalf("scheduled injection did not split the phase: %+v", res.Phases)
	}
	if res.Phases[1].Healthy != res.Phases[0].Healthy-16 {
		t.Fatalf("healthy base not rebased across the scheduled injection: %+v", res.Phases)
	}
	if res.Failures != 1 {
		t.Fatalf("scheduled injections must not count as timeline failures: %d", res.Failures)
	}
}
