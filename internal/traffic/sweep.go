package traffic

import (
	"runtime"
	"sync"

	"mccmesh/internal/rng"
	"mccmesh/internal/stats"
	"mccmesh/internal/telemetry"
)

// RunTrials executes trials independent trials across workers goroutines and
// returns their results in trial order. Trial i always receives the seed
// rng.Derive(base, i) and lands in slot i regardless of which worker runs it,
// so the returned slice is bit-identical for any worker count — the
// deterministic-partitioning discipline of parallel sweep frameworks.
//
// workers <= 0 selects GOMAXPROCS. The fn must not share mutable state across
// trials; each call builds its own mesh, model and engine.
func RunTrials[T any](workers, trials int, base uint64, fn func(trial int, seed uint64) T) []T {
	if trials <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	out := make([]T, trials)
	if workers <= 1 {
		for i := range out {
			out[i] = fn(i, rng.Derive(base, uint64(i)))
		}
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Static round-robin sharding: no channel hand-off, no ordering
			// dependence, perfectly balanced for homogeneous trials.
			for i := w; i < trials; i += workers {
				out[i] = fn(i, rng.Derive(base, uint64(i)))
			}
		}(w)
	}
	wg.Wait()
	return out
}

// Aggregate summarises the results of a sweep cell (one pattern × model ×
// rate combination) across its trials.
type Aggregate struct {
	// Trials is the number of merged results.
	Trials int
	// Throughput and DeliveredRatio summarise the per-trial scalars.
	Throughput, DeliveredRatio stats.Summary
	// Latency and Hops merge the per-trial histograms of measured packets.
	Latency, Hops stats.Histogram
	// Injected, Delivered, Stuck and Lost total the packet counts.
	Injected, Delivered, Stuck, Lost int
	// Failures and Repairs total the churn-timeline events across trials;
	// FailedNodes and RepairedNodes the nodes they took down and restored.
	Failures, Repairs          int
	FailedNodes, RepairedNodes int
	// PhaseThroughput and PhaseLatency summarise the per-phase metrics across
	// every phase of every trial — the churn experiments' steady-state view.
	// Empty without a churn timeline.
	PhaseThroughput, PhaseLatency stats.Summary
	// Failed counts trials that aborted (Result.Err != nil); Err keeps the
	// first such error so callers can fail the sweep cell with a cause.
	Failed int
	Err    error
	// Telemetry merges the per-trial counter sinks (counts sum, gauges take
	// the max); nil when the trials ran without telemetry.
	Telemetry *telemetry.Sink
}

// Collect merges per-trial results in slice order (deterministic for any
// worker count, because RunTrials fixes the order).
func Collect(results []*Result) *Aggregate {
	agg := &Aggregate{Trials: len(results)}
	for _, r := range results {
		agg.Throughput.Add(r.Throughput())
		agg.DeliveredRatio.Add(r.DeliveredRatio())
		agg.Latency.Merge(&r.Latency)
		agg.Hops.Merge(&r.Hops)
		agg.Injected += r.Injected
		agg.Delivered += r.Delivered
		agg.Stuck += r.Stuck
		agg.Lost += r.Lost
		agg.Failures += r.Failures
		agg.Repairs += r.Repairs
		agg.FailedNodes += r.FailedNodes
		agg.RepairedNodes += r.RepairedNodes
		for _, ph := range r.Phases {
			agg.PhaseThroughput.Add(ph.Throughput())
			if ph.Delivered > 0 {
				agg.PhaseLatency.Add(ph.MeanLatency())
			}
		}
		if r.Err != nil {
			agg.Failed++
			if agg.Err == nil {
				agg.Err = r.Err
			}
		}
		if r.Telemetry != nil {
			if agg.Telemetry == nil {
				agg.Telemetry = telemetry.NewSink()
			}
			agg.Telemetry.Merge(r.Telemetry)
		}
	}
	return agg
}
