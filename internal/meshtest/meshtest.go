// Package meshtest provides shared helpers for randomised tests: small random
// fault configurations and safe source/destination sampling. It is used only
// from _test.go files but lives in a normal package so every test suite can
// share it.
package meshtest

import (
	"mccmesh/internal/fault"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

// Random2D returns a 2-D mesh of the given extent with n uniform random
// faults, never touching the four mesh corners (so a safe source/destination
// pair always exists in tests that need one).
func Random2D(r *rng.Rand, k, n int) *mesh.Mesh {
	m := mesh.New2D(k, k)
	inj := fault.Uniform{Count: n, Protected: corners(m)}
	inj.Inject(m, r)
	return m
}

// Random3D returns a 3-D mesh of the given extent with n uniform random
// faults, never touching the eight mesh corners.
func Random3D(r *rng.Rand, k, n int) *mesh.Mesh {
	m := mesh.New3D(k, k, k)
	inj := fault.Uniform{Count: n, Protected: corners(m)}
	inj.Inject(m, r)
	return m
}

func corners(m *mesh.Mesh) []grid.Point {
	b := m.Bounds()
	pts := []grid.Point{
		b.Min,
		{X: b.Max.X, Y: b.Min.Y, Z: b.Min.Z},
		{X: b.Min.X, Y: b.Max.Y, Z: b.Min.Z},
		{X: b.Max.X, Y: b.Max.Y, Z: b.Min.Z},
	}
	if !m.Is2D() {
		pts = append(pts,
			grid.Point{X: b.Min.X, Y: b.Min.Y, Z: b.Max.Z},
			grid.Point{X: b.Max.X, Y: b.Min.Y, Z: b.Max.Z},
			grid.Point{X: b.Min.X, Y: b.Max.Y, Z: b.Max.Z},
			b.Max,
		)
	}
	return pts
}

// SafePair samples a source/destination pair that is safe under the labelling
// computed for the orientation between them, with Manhattan distance at least
// minDist. It returns ok == false if no such pair was found within the attempt
// budget.
func SafePair(r *rng.Rand, m *mesh.Mesh, minDist int) (s, d grid.Point, ok bool) {
	for attempt := 0; attempt < 400; attempt++ {
		s = m.Point(r.Intn(m.NodeCount()))
		d = m.Point(r.Intn(m.NodeCount()))
		if grid.Manhattan(s, d) < minDist {
			continue
		}
		if m.IsFaulty(s) || m.IsFaulty(d) {
			continue
		}
		l := labeling.Compute(m, grid.OrientationOf(s, d))
		if l.Safe(s) && l.Safe(d) {
			return s, d, true
		}
	}
	return grid.Point{}, grid.Point{}, false
}
