// Package rng provides a small, deterministic pseudo-random number generator
// (splitmix64 seeded xoshiro256**) so that experiments and benchmarks produce
// identical streams across Go releases and platforms, which math/rand does not
// guarantee for its global source ordering.
package rng

// Rand is a deterministic PRNG. The zero value is not usable; construct with
// New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// mix64 is the splitmix64 finalizer shared by Seed and Derive.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed reinitialises the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		return mix64(sm)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling, with rejection to remove
	// modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomises the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns a pseudo-random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Split returns a new generator whose stream is independent of r's future
// output, for handing to parallel workers deterministically.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Derive maps a base seed and a stream index to an independent seed via two
// splitmix64 rounds. Unlike Split it is a pure function of (seed, stream), so
// parallel sweep runners can hand trial i the same generator no matter which
// worker runs it — the foundation of worker-count-independent results.
func Derive(seed, stream uint64) uint64 {
	return mix64(mix64(seed+0x9e3779b97f4a7c15) ^ (stream + 0xbf58476d1ce4e5b9))
}
