package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical values out of 100", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := New(1234)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d deviates more than 20%% from %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(5)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Error("shuffle lost elements")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(11)
	child := r.Split()
	if child == nil {
		t.Fatal("Split returned nil")
	}
	// The child stream should not be identical to the parent's continuation.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("child stream too correlated: %d matches", same)
	}
}

func TestBool(t *testing.T) {
	r := New(3)
	trueCount := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			trueCount++
		}
	}
	if trueCount < 4500 || trueCount > 5500 {
		t.Errorf("Bool heavily biased: %d/10000 true", trueCount)
	}
}

func TestDeriveIsPureAndSpread(t *testing.T) {
	if Derive(1, 2) != Derive(1, 2) {
		t.Error("Derive must be a pure function of (seed, stream)")
	}
	seen := make(map[uint64]bool)
	for stream := uint64(0); stream < 1000; stream++ {
		s := Derive(42, stream)
		if seen[s] {
			t.Fatalf("Derive collision at stream %d", stream)
		}
		seen[s] = true
	}
	if Derive(1, 0) == Derive(2, 0) {
		t.Error("different base seeds should derive different streams")
	}
}
