// Package region turns a labelling into fault regions: the minimal connected
// components (MCCs) of the paper, their geometry (edge nodes, corners,
// 2-D sections, edges of the 3-D polyhedron) and the per-component monotone
// blocking relation that realises the forbidden/critical region rules used by
// the routing algorithms.
package region

import (
	"fmt"

	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
)

// Component is one connected fault region: a maximal set of unsafe nodes
// connected through mesh links. Under the MCC labelling these are exactly the
// paper's minimal connected components. Membership queries go through the
// owning set's dense node→component array, not a per-component map.
type Component struct {
	// ID is the index of the component within its ComponentSet.
	ID int
	// Nodes lists the member coordinates in dense-index order.
	Nodes []grid.Point
	// Bounds is the bounding box of the member nodes.
	Bounds grid.Box
	// FaultyCount, UselessCount and CantReachCount break the membership down
	// by label.
	FaultyCount, UselessCount, CantReachCount int

	set *ComponentSet
}

// Size returns the number of nodes in the component.
func (c *Component) Size() int { return len(c.Nodes) }

// NonFaulty returns the number of healthy nodes absorbed by the component.
func (c *Component) NonFaulty() int { return c.UselessCount + c.CantReachCount }

// Has reports whether p belongs to the component.
func (c *Component) Has(p grid.Point) bool {
	m := c.set.Mesh
	return m.InBounds(p) && c.set.byNode[m.Index(p)] == c.ID
}

// HasID reports membership by dense node ID (the index-first fast path).
func (c *Component) HasID(id int32) bool {
	return id >= 0 && c.set.byNode[id] == c.ID
}

// Avoid returns a minimal.Avoid that rejects exactly this component's nodes.
func (c *Component) Avoid() minimal.Avoid {
	return c.Has
}

// String implements fmt.Stringer.
func (c *Component) String() string {
	return fmt.Sprintf("MCC#%d{nodes=%d faulty=%d useless=%d cantreach=%d bounds=%v}",
		c.ID, len(c.Nodes), c.FaultyCount, c.UselessCount, c.CantReachCount, c.Bounds)
}

// ComponentSet is the collection of fault regions of one labelling together
// with a node → component index for O(1) lookups. After the underlying
// labelling absorbed new faults (labeling.AddFaults) or repairs
// (labeling.RemoveFaults), Refresh re-extracts the components in place — same
// struct, same byNode array — so routing providers holding the set stay valid
// across mid-run fault churn.
type ComponentSet struct {
	// Mesh is the mesh the components were extracted from.
	Mesh *mesh.Mesh
	// Labeling is the labelling the components came from; nil for fault-only
	// clusters (FindFaultClusters).
	Labeling   *labeling.Labeling
	Components []*Component

	byNode []int // dense node index -> component ID, or -1

	member  func(idx int) bool           // membership rule, kept for Refresh
	count   func(*Component, grid.Point) // label accounting, kept for Refresh
	avoidID func(id int32) bool          // cached union obstacle test
	avoidW  []uint64                     // cached union obstacle bitset (fault-only sets)

	// Extraction storage, reused across Refresh calls so the per-churn-event
	// re-extraction allocates nothing in steady state: slab backs the
	// Component structs, arena backs every component's Nodes slice, sizes /
	// stack / adj are flood-fill scratch.
	slab  []Component
	arena []grid.Point
	sizes []int32
	stack []int32
	adj   []grid.Point
}

// Adjacent reports whether two nodes belong to the same fault region when both
// are unsafe: they differ by at most one in each coordinate and in at most two
// coordinates overall. This is 8-connectivity in 2-D and 18-connectivity
// (face + edge adjacency, but not corner adjacency) in 3-D, matching the
// paper's Figure 5, where the diagonally adjacent faults (6,7,5) and (7,6,5)
// belong to the large MCC while the corner-adjacent (7,8,4) forms its own.
//
// Edge-adjacent unsafe nodes must share a region because together they can
// pinch off minimal paths that neither blocks alone; corner-adjacent nodes in
// 3-D cannot.
func Adjacent(p, q grid.Point) bool {
	if p == q {
		return false
	}
	dx := abs(p.X - q.X)
	dy := abs(p.Y - q.Y)
	dz := abs(p.Z - q.Z)
	if dx > 1 || dy > 1 || dz > 1 {
		return false
	}
	return dx+dy+dz <= 2
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// adjacencyDeltas2D and adjacencyDeltas3D are the offsets of the MCC region
// adjacency (see Adjacent); adjacencyDeltas3D extends the 2-D set, so the 2-D
// deltas are its prefix. Package-level so adjacentPoints allocates nothing.
var (
	adjacencyDeltas2D = [][3]int{
		{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0},
		{1, 1, 0}, {1, -1, 0}, {-1, 1, 0}, {-1, -1, 0},
	}
	adjacencyDeltas3D = append(append([][3]int{}, adjacencyDeltas2D...),
		[3]int{0, 0, 1}, [3]int{0, 0, -1},
		[3]int{1, 0, 1}, [3]int{1, 0, -1}, [3]int{-1, 0, 1}, [3]int{-1, 0, -1},
		[3]int{0, 1, 1}, [3]int{0, 1, -1}, [3]int{0, -1, 1}, [3]int{0, -1, -1},
	)
)

// adjacentPoints appends to dst the in-bounds points adjacent to p under the
// MCC region adjacency.
func adjacentPoints(m *mesh.Mesh, dst []grid.Point, p grid.Point) []grid.Point {
	deltas := adjacencyDeltas3D
	if m.Is2D() {
		deltas = adjacencyDeltas2D
	}
	for _, d := range deltas {
		q := grid.Point{X: p.X + d[0], Y: p.Y + d[1], Z: p.Z + d[2]}
		if m.InBounds(q) {
			dst = append(dst, q)
		}
	}
	return dst
}

// FindMCCs extracts the connected components of unsafe nodes from a labelling
// under the MCC region adjacency (see Adjacent).
func FindMCCs(l *labeling.Labeling) *ComponentSet {
	return findComponents(l.Mesh(), func(idx int) bool { return l.StatusAt(idx).Unsafe() }, l, statusCounter(l))
}

// FindFaultClusters extracts the connected components of *faulty* nodes only,
// ignoring useless / can't-reach labels, under the same region adjacency.
// Used to seed the rectangular faulty-block baseline.
func FindFaultClusters(m *mesh.Mesh) *ComponentSet {
	return findComponents(m, m.FaultyAt, nil, func(c *Component, p grid.Point) { c.FaultyCount++ })
}

func statusCounter(l *labeling.Labeling) func(*Component, grid.Point) {
	return func(c *Component, p grid.Point) {
		switch l.Status(p) {
		case labeling.Faulty:
			c.FaultyCount++
		case labeling.Useless:
			c.UselessCount++
		case labeling.CantReach:
			c.CantReachCount++
		}
	}
}

func findComponents(m *mesh.Mesh, member func(idx int) bool, l *labeling.Labeling, count func(*Component, grid.Point)) *ComponentSet {
	set := &ComponentSet{
		Mesh:     m,
		Labeling: l,
		byNode:   make([]int, m.NodeCount()),
		member:   member,
		count:    count,
	}
	set.extract()
	return set
}

// extract (re)computes the components from the current membership rule into
// the set's existing storage. It runs in two passes so the steady-state churn
// path allocates nothing: the flood fill assigns component IDs, counts and
// bounds into the reusable slab, then the node sweep carves every component's
// Nodes slice out of the shared arena — in dense-index order by construction,
// so no sort is needed.
func (s *ComponentSet) extract() {
	m := s.Mesh
	n := m.NodeCount()
	s.avoidW = nil // byNode is about to change; rebuild the bitset on demand
	for i := range s.byNode {
		s.byNode[i] = -1
	}
	// Pass 1: flood-fill IDs, counts and bounds. Slab pointers are only taken
	// per fill (the slab cannot grow mid-fill), and handed out only after the
	// slab has reached its final length.
	s.slab = s.slab[:0]
	s.sizes = s.sizes[:0]
	total := 0
	stack, adj := s.stack, s.adj
	for start := 0; start < n; start++ {
		if !s.member(start) || s.byNode[start] != -1 {
			continue
		}
		id := len(s.slab)
		s.slab = append(s.slab, Component{
			ID:     id,
			set:    s,
			Bounds: grid.Box{Min: grid.Point{X: 1}, Max: grid.Point{}}, // empty
		})
		comp := &s.slab[id]
		size := int32(0)
		stack = append(stack[:0], int32(start))
		s.byNode[start] = id
		for len(stack) > 0 {
			idx := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			p := m.Point(idx)
			size++
			comp.Bounds = comp.Bounds.Extend(p)
			s.count(comp, p)
			adj = adjacentPoints(m, adj[:0], p)
			for _, q := range adj {
				qi := m.Index(q)
				if s.member(qi) && s.byNode[qi] == -1 {
					s.byNode[qi] = id
					stack = append(stack, int32(qi))
				}
			}
		}
		s.sizes = append(s.sizes, size)
		total += int(size)
	}
	s.stack, s.adj = stack[:0], adj[:0]
	// Pass 2: carve Nodes from the arena and fill them in index order.
	if cap(s.arena) < total {
		s.arena = make([]grid.Point, 0, total)
	}
	off := 0
	for i := range s.slab {
		size := int(s.sizes[i])
		s.slab[i].Nodes = s.arena[off : off : off+size]
		off += size
	}
	for idx := 0; idx < n; idx++ {
		if id := s.byNode[idx]; id >= 0 {
			c := &s.slab[id]
			c.Nodes = append(c.Nodes, m.Point(idx))
		}
	}
	s.Components = s.Components[:0]
	for i := range s.slab {
		s.Components = append(s.Components, &s.slab[i])
	}
}

// Refresh re-extracts the components after the underlying labelling (or fault
// set, for fault-only clusters) changed, mutating the set in place so that
// holders of the *ComponentSet — routing providers, cached models — see the
// new regions without being rebuilt. The re-extraction is direction-agnostic:
// fault injections that grow or merge components and repairs that shrink,
// split or dissolve them all land on the same canonical component list
// (components numbered in dense-index order of their first node). Components
// handed out before the call are invalidated.
func (s *ComponentSet) Refresh() { s.extract() }

// ComponentOf returns the component containing p, or nil if p is not part of
// any fault region.
func (s *ComponentSet) ComponentOf(p grid.Point) *Component {
	if !s.Mesh.InBounds(p) {
		return nil
	}
	id := s.byNode[s.Mesh.Index(p)]
	if id < 0 {
		return nil
	}
	return s.Components[id]
}

// Len returns the number of components.
func (s *ComponentSet) Len() int { return len(s.Components) }

// TotalNodes returns the total number of nodes across all components.
func (s *ComponentSet) TotalNodes() int {
	n := 0
	for _, c := range s.Components {
		n += c.Size()
	}
	return n
}

// TotalNonFaulty returns the number of healthy nodes absorbed across all
// components (the paper's first evaluation metric).
func (s *ComponentSet) TotalNonFaulty() int {
	n := 0
	for _, c := range s.Components {
		n += c.NonFaulty()
	}
	return n
}

// Largest returns the component with the most nodes, or nil if there is none.
func (s *ComponentSet) Largest() *Component {
	var best *Component
	for _, c := range s.Components {
		if best == nil || c.Size() > best.Size() {
			best = c
		}
	}
	return best
}
