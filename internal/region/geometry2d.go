package region

import (
	"sort"

	"mccmesh/internal/grid"
	"mccmesh/internal/nodeset"
)

// EdgeNodes returns the edge nodes of component c: the safe, in-bounds nodes
// adjacent (through a mesh link) to at least one node of c. They form the ring
// the identification messages of Algorithm 2 travel along.
func (s *ComponentSet) EdgeNodes(c *Component) []grid.Point {
	m := s.Mesh
	seen := nodeset.New(m.NodeCount())
	var out []grid.Point
	for _, p := range c.Nodes {
		for _, d := range m.Directions() {
			q, ok := m.Neighbor(p, d)
			if !ok || seen.Has(m.ID(q)) {
				continue
			}
			if s.isSafe(q) {
				seen.Add(m.ID(q))
				out = append(out, q)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return m.Index(out[i]) < m.Index(out[j]) })
	return out
}

func (s *ComponentSet) isSafe(p grid.Point) bool {
	if s.Labeling != nil {
		return s.Labeling.Safe(p)
	}
	return s.Mesh.InBounds(p) && s.ComponentOf(p) == nil
}

// Corner classification for 2-D MCCs (Section 3 of the paper).
type Corners2D struct {
	// Initialization is the corner with two edge nodes of the MCC in the
	// forward X and forward Y directions — the node the identification process
	// starts from. Missing (off-mesh) corners are reported by Found == false.
	Initialization grid.Point
	// Opposite is the corner with two edge nodes in the backward X and
	// backward Y directions, where the two identification messages meet.
	Opposite grid.Point
	// Found reports whether both corners exist inside the mesh.
	Found bool
}

// Corners2D locates the initialization and opposite corners of a 2-D MCC for
// the labelling's orientation. The initialization corner is diagonally
// "behind" (toward the source) the component's nose; the opposite corner is
// diagonally "ahead" of its far tip.
func (s *ComponentSet) Corners2D(c *Component) Corners2D {
	if s.Labeling == nil {
		return Corners2D{}
	}
	orient := s.Labeling.Orientation()
	m := s.Mesh

	// The nose of the MCC: the member minimising the canonical x+y (closest to
	// the source corner of its bounding box); the far tip maximises it.
	var nose, tip grid.Point
	noseKey, tipKey := int(^uint(0)>>1), -(int(^uint(0)>>1) - 1)
	anchor := grid.Point{} // canonicalisation anchor; any fixed point works
	for _, p := range c.Nodes {
		cp := orient.Canon(anchor, p)
		k := cp.X + cp.Y
		if k < noseKey || (k == noseKey && cp.X < orient.Canon(anchor, nose).X) {
			noseKey, nose = k, p
		}
		if k > tipKey || (k == tipKey && cp.X > orient.Canon(anchor, tip).X) {
			tipKey, tip = k, p
		}
	}

	init := orient.Behind(orient.Behind(nose, grid.AxisX), grid.AxisY)
	opp := orient.Ahead(orient.Ahead(tip, grid.AxisX), grid.AxisY)
	res := Corners2D{Initialization: init, Opposite: opp}
	res.Found = m.InBounds(init) && s.isSafe(init) && m.InBounds(opp) && s.isSafe(opp)
	return res
}

// IntermediateCorners2D returns the corner nodes of the MCC perimeter other
// than the initialization and opposite corners: safe nodes with two edge nodes
// or two unsafe nodes of the same MCC in different dimensions. These are the
// nodes whose coordinates the identification messages record to describe the
// MCC's shape.
func (s *ComponentSet) IntermediateCorners2D(c *Component) []grid.Point {
	m := s.Mesh
	corners := s.Corners2D(c)
	edgeNodes := s.EdgeNodes(c)
	edgeSet := nodeset.FromPoints(m, edgeNodes)
	edge := func(p grid.Point) bool { return edgeSet.Has(m.ID(p)) }
	isMember := func(p grid.Point) bool { return c.Has(p) }

	seen := nodeset.New(m.NodeCount())
	var out []grid.Point
	consider := func(p grid.Point) {
		if seen.Has(m.ID(p)) || !s.isSafe(p) {
			return
		}
		if corners.Found && (p == corners.Initialization || p == corners.Opposite) {
			return
		}
		countEdgeX, countEdgeY := false, false
		countMemX, countMemY := false, false
		for _, d := range grid.Directions2D {
			q, ok := m.Neighbor(p, d)
			if !ok {
				continue
			}
			if d.Axis() == grid.AxisX {
				countEdgeX = countEdgeX || edge(q)
				countMemX = countMemX || isMember(q)
			} else {
				countEdgeY = countEdgeY || edge(q)
				countMemY = countMemY || isMember(q)
			}
		}
		if (countEdgeX && countEdgeY) || (countMemX && countMemY) {
			seen.Add(m.ID(p))
			out = append(out, p)
		}
	}
	for _, e := range edgeNodes {
		consider(e)
		for _, d := range grid.Directions2D {
			if q, ok := m.Neighbor(e, d); ok {
				consider(q)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return m.Index(out[i]) < m.Index(out[j]) })
	return out
}

// PerimeterRing returns the closed ring of safe edge nodes around a 2-D
// component, ordered as a walk (each consecutive pair is a mesh link or a
// diagonal step across a concave corner is bridged through its shared safe
// node). The identification messages of Algorithm 2 traverse this ring in the
// two directions. The ring is returned starting at `start` if start is an
// edge node; otherwise at the lexicographically smallest edge node.
//
// For components touching the mesh border the "ring" may be an open chain;
// the returned slice is then the chain from one border contact to the other.
func (s *ComponentSet) PerimeterRing(c *Component, start grid.Point) []grid.Point {
	edges := s.EdgeNodes(c)
	if len(edges) == 0 {
		return nil
	}
	m := s.Mesh
	edgeSet := nodeset.FromPoints(m, edges)
	if !edgeSet.Has(m.ID(start)) {
		start = edges[0]
	}

	// Adjacency between edge nodes: two edge nodes are consecutive on the
	// perimeter if they are mesh neighbours, or diagonal neighbours that share
	// an adjacent member of c (a convex corner of the region).
	adjacent := func(a, b grid.Point) bool {
		d := grid.Manhattan(a, b)
		if d == 1 {
			return true
		}
		if d == 2 && a.X != b.X && a.Y != b.Y && a.Z == b.Z {
			// Diagonal in the XY plane: bridged if one of the two shared
			// orthogonal neighbours is a member of c.
			p1 := grid.Point{X: a.X, Y: b.Y, Z: a.Z}
			p2 := grid.Point{X: b.X, Y: a.Y, Z: a.Z}
			return c.Has(p1) || c.Has(p2)
		}
		return false
	}

	// Greedy walk: depth-first traversal preferring unvisited neighbours,
	// producing a perimeter ordering. MCC perimeters are simple cycles (or
	// chains at the border), so the walk is well defined.
	visited := nodeset.New(m.NodeCount())
	visited.Add(m.ID(start))
	order := []grid.Point{start}
	cur := start
	for {
		var next grid.Point
		found := false
		for _, e := range edges {
			if visited.Has(m.ID(e)) || !adjacent(cur, e) {
				continue
			}
			next, found = e, true
			break
		}
		if !found {
			break
		}
		visited.Add(m.ID(next))
		order = append(order, next)
		cur = next
	}
	// If some edge nodes were not reached (disconnected perimeter pieces at
	// the border), append them in index order so callers still see every edge
	// node exactly once.
	if len(order) < len(edges) {
		for _, e := range edges {
			if !visited.Has(m.ID(e)) {
				order = append(order, e)
				visited.Add(m.ID(e))
			}
		}
	}
	return order
}
