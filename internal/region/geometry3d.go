package region

import (
	"sort"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/nodeset"
)

// Plane identifies the orientation of a 2-D section of a 3-D fault region.
type Plane int

// The three section planes used by the 3-D identification process.
const (
	// PlaneXY is a section of constant Z.
	PlaneXY Plane = iota
	// PlaneYZ is a section of constant X.
	PlaneYZ
	// PlaneXZ is a section of constant Y.
	PlaneXZ
)

// String implements fmt.Stringer.
func (p Plane) String() string {
	switch p {
	case PlaneXY:
		return "XY"
	case PlaneYZ:
		return "YZ"
	default:
		return "XZ"
	}
}

// FixedAxis returns the axis held constant across the plane.
func (p Plane) FixedAxis() grid.Axis {
	switch p {
	case PlaneXY:
		return grid.AxisZ
	case PlaneYZ:
		return grid.AxisX
	default:
		return grid.AxisY
	}
}

// Axes returns the two in-plane axes in canonical order.
func (p Plane) Axes() (grid.Axis, grid.Axis) {
	switch p {
	case PlaneXY:
		return grid.AxisX, grid.AxisY
	case PlaneYZ:
		return grid.AxisY, grid.AxisZ
	default:
		return grid.AxisX, grid.AxisZ
	}
}

// Planes lists the three section planes.
var Planes = []Plane{PlaneXY, PlaneYZ, PlaneXZ}

// Section is one connected 2-D cross-section of a 3-D fault region on a fixed
// plane (Section 4 of the paper). A single MCC can have several sections on
// the same plane level (e.g. either side of a concavity).
type Section struct {
	// Component is the MCC the section belongs to.
	Component *Component
	// Plane is the section plane.
	Plane Plane
	// Level is the coordinate of the fixed axis.
	Level int
	// Nodes lists the member nodes in index order.
	Nodes []grid.Point
	// Bounds is the bounding box of the section.
	Bounds grid.Box

	mesh *mesh.Mesh
}

// Has reports whether p belongs to the section: a binary search over the
// index-sorted node list, so a Section retains no per-mesh storage.
func (s *Section) Has(p grid.Point) bool {
	if !s.Bounds.Contains(p) {
		return false
	}
	want := s.mesh.Index(p)
	i := sort.Search(len(s.Nodes), func(i int) bool { return s.mesh.Index(s.Nodes[i]) >= want })
	return i < len(s.Nodes) && s.Nodes[i] == p
}

// Size returns the number of nodes in the section.
func (s *Section) Size() int { return len(s.Nodes) }

// Sections returns the 2-D sections of component c on the given plane,
// ordered by level then by first node index. Each section is a connected
// component (through in-plane links) of c's nodes on one level of the plane.
func (s *ComponentSet) Sections(c *Component, plane Plane) []*Section {
	m := s.Mesh
	fixed := plane.FixedAxis()
	a1, a2 := plane.Axes()

	// Group nodes by level.
	byLevel := make(map[int][]grid.Point)
	for _, p := range c.Nodes {
		lv := p.Axis(fixed)
		byLevel[lv] = append(byLevel[lv], p)
	}
	levels := make([]int, 0, len(byLevel))
	for lv := range byLevel {
		levels = append(levels, lv)
	}
	sort.Ints(levels)

	var out []*Section
	visited := nodeset.New(m.NodeCount())
	for _, lv := range levels {
		nodes := byLevel[lv]
		inLevel := nodeset.FromPoints(m, nodes)
		for _, start := range nodes {
			if visited.Has(m.ID(start)) {
				continue
			}
			sec := &Section{
				Component: c,
				Plane:     plane,
				Level:     lv,
				mesh:      m,
				Bounds:    grid.Box{Min: grid.Point{X: 1}, Max: grid.Point{}},
			}
			stack := []grid.Point{start}
			visited.Add(m.ID(start))
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				sec.Nodes = append(sec.Nodes, p)
				sec.Bounds = sec.Bounds.Extend(p)
				// In-plane connectivity includes diagonal adjacency
				// (8-connectivity), matching the region adjacency restricted
				// to the plane: Figure 5 draws the z=5 section as one region
				// with a hole even though two of its faults only touch
				// diagonally.
				for _, d1 := range []int{-1, 0, 1} {
					for _, d2 := range []int{-1, 0, 1} {
						if d1 == 0 && d2 == 0 {
							continue
						}
						q := p.WithAxis(a1, p.Axis(a1)+d1).WithAxis(a2, p.Axis(a2)+d2)
						qid := m.ID(q)
						if qid != mesh.NoNeighbor && inLevel.Has(qid) && !visited.Has(qid) {
							visited.Add(qid)
							stack = append(stack, q)
						}
					}
				}
			}
			sort.Slice(sec.Nodes, func(i, j int) bool { return m.Index(sec.Nodes[i]) < m.Index(sec.Nodes[j]) })
			out = append(out, sec)
		}
	}
	return out
}

// CornerKind names the six section-corner kinds of the 3-D identification
// process: a (+A−B)-corner is the node of the section with the maximum
// (forward-most) coordinate along axis A and, among those, the minimum
// (backward-most) coordinate along axis B.
type CornerKind struct {
	Major grid.Axis // the "+A" axis
	Minor grid.Axis // the "−B" axis
}

// String implements fmt.Stringer.
func (k CornerKind) String() string { return "(+" + k.Major.String() + "-" + k.Minor.String() + ")" }

// CornerKinds lists the six corner kinds and, implicitly, the six edge kinds
// of an MCC in a 3-D mesh.
var CornerKinds = []CornerKind{
	{grid.AxisY, grid.AxisX},
	{grid.AxisX, grid.AxisY},
	{grid.AxisX, grid.AxisZ},
	{grid.AxisZ, grid.AxisX},
	{grid.AxisY, grid.AxisZ},
	{grid.AxisZ, grid.AxisY},
}

// PlaneForCorner returns the section plane a corner kind lives on: the plane
// spanned by the corner's two axes.
func PlaneForCorner(k CornerKind) Plane {
	has := func(a grid.Axis) bool { return k.Major == a || k.Minor == a }
	switch {
	case has(grid.AxisX) && has(grid.AxisY):
		return PlaneXY
	case has(grid.AxisY) && has(grid.AxisZ):
		return PlaneYZ
	default:
		return PlaneXZ
	}
}

// SectionCorner returns the (+Major−Minor)-corner of a section under the
// labelling's orientation: the member with the forward-most coordinate along
// Major and, among those, the backward-most coordinate along Minor.
func (s *ComponentSet) SectionCorner(sec *Section, kind CornerKind) grid.Point {
	orient := grid.PositiveOrientation
	if s.Labeling != nil {
		orient = s.Labeling.Orientation()
	}
	best := sec.Nodes[0]
	for _, p := range sec.Nodes[1:] {
		pm := p.Axis(kind.Major) * orient.Sign(kind.Major)
		bm := best.Axis(kind.Major) * orient.Sign(kind.Major)
		switch {
		case pm > bm:
			best = p
		case pm == bm:
			pn := p.Axis(kind.Minor) * orient.Sign(kind.Minor)
			bn := best.Axis(kind.Minor) * orient.Sign(kind.Minor)
			if pn < bn {
				best = p
			}
		}
	}
	return best
}

// Edge is one of the six edges of a 3-D MCC: the chain of same-kind section
// corners across consecutive levels of the corner's plane (Section 4,
// "edge identification" / "edge construction").
type Edge struct {
	Component *Component
	Kind      CornerKind
	// Nodes lists the edge nodes (one per section, ordered by the fixed axis
	// of the corner's plane). Sections on the same level each contribute one
	// node; they are ordered by index within the level.
	Nodes []grid.Point
}

// Edges returns the six edges of component c.
func (s *ComponentSet) Edges(c *Component) []*Edge {
	out := make([]*Edge, 0, len(CornerKinds))
	for _, kind := range CornerKinds {
		plane := PlaneForCorner(kind)
		sections := s.Sections(c, plane)
		e := &Edge{Component: c, Kind: kind}
		for _, sec := range sections {
			e.Nodes = append(e.Nodes, s.SectionCorner(sec, kind))
		}
		out = append(out, e)
	}
	return out
}

// EdgeOfKind returns the edge of the requested kind.
func (s *ComponentSet) EdgeOfKind(c *Component, kind CornerKind) *Edge {
	plane := PlaneForCorner(kind)
	e := &Edge{Component: c, Kind: kind}
	for _, sec := range s.Sections(c, plane) {
		e.Nodes = append(e.Nodes, s.SectionCorner(sec, kind))
	}
	return e
}
