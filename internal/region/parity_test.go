package region

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

// TestComponentHasMatchesMapReference pins the array-backed membership
// (byNode through Component.Has/HasID) to the map-backed semantics the
// pre-refactor Component carried, on randomized fault sets with golden seeds:
// a point is a member exactly when it appears in the component's node list.
func TestComponentHasMatchesMapReference(t *testing.T) {
	for _, seed := range []uint64{2, 13, 99} {
		m := mesh.NewCube(7)
		r := rng.New(seed)
		for i := 0; i < 30; i++ {
			idx := r.Intn(m.NodeCount())
			m.SetFaulty(m.Point(idx), true)
		}
		l := labeling.Compute(m, grid.PositiveOrientation)
		cs := FindMCCs(l)
		for _, c := range cs.Components {
			members := make(map[grid.Point]bool, len(c.Nodes))
			for _, p := range c.Nodes {
				members[p] = true
			}
			m.ForEach(func(p grid.Point) {
				if got, want := c.Has(p), members[p]; got != want {
					t.Fatalf("seed=%d MCC#%d: Has(%v) = %v, map reference says %v", seed, c.ID, p, got, want)
				}
				if got := c.HasID(m.ID(p)); got != members[p] {
					t.Fatalf("seed=%d MCC#%d: HasID(%v) = %v, map reference says %v", seed, c.ID, p, got, members[p])
				}
			})
			// Out-of-bounds points are never members (the map reference
			// trivially agreed).
			if c.Has(grid.Point{X: -1, Y: 0, Z: 0}) || c.HasID(mesh.NoNeighbor) {
				t.Fatalf("seed=%d MCC#%d: out-of-bounds point reported as member", seed, c.ID)
			}
		}
	}
}

// TestRefreshMatchesRebuild pins the in-place Refresh to a from-scratch
// FindMCCs after incremental fault additions: same components (nodes, bounds,
// counts), same node→component mapping, same union-field answers — while the
// *ComponentSet pointer (what routing providers hold) stays the same.
func TestRefreshMatchesRebuild(t *testing.T) {
	for _, seed := range []uint64{5, 21, 77} {
		m := mesh.NewCube(7)
		r := rng.New(seed)
		for i := 0; i < 25; i++ {
			m.SetFaulty(m.Point(r.Intn(m.NodeCount())), true)
		}
		l := labeling.Compute(m, grid.PositiveOrientation)
		cs := FindMCCs(l)
		for batch := 0; batch < 3; batch++ {
			var pts []grid.Point
			for len(pts) < 4 {
				idx := r.Intn(m.NodeCount())
				if m.FaultyAt(idx) {
					continue
				}
				p := m.Point(idx)
				m.SetFaulty(p, true)
				pts = append(pts, p)
			}
			l.AddFaults(pts)
			cs.Refresh()

			fresh := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
			if cs.Len() != fresh.Len() {
				t.Fatalf("seed=%d batch %d: Refresh found %d components, rebuild %d", seed, batch, cs.Len(), fresh.Len())
			}
			for i, c := range cs.Components {
				f := fresh.Components[i]
				if len(c.Nodes) != len(f.Nodes) || c.Bounds != f.Bounds || c.FaultyCount != f.FaultyCount ||
					c.NonFaulty() != f.NonFaulty() {
					t.Fatalf("seed=%d batch %d: component %d diverged:\nrefresh %v\nrebuild %v", seed, batch, i, c, f)
				}
				for j := range c.Nodes {
					if c.Nodes[j] != f.Nodes[j] {
						t.Fatalf("seed=%d batch %d: component %d node %d: %v vs %v", seed, batch, i, j, c.Nodes[j], f.Nodes[j])
					}
				}
			}
			m.ForEach(func(p grid.Point) {
				a, b := cs.ComponentOf(p), fresh.ComponentOf(p)
				if (a == nil) != (b == nil) || (a != nil && a.ID != b.ID) {
					t.Fatalf("seed=%d batch %d: ComponentOf(%v) diverged", seed, batch, p)
				}
			})
			// Union-field answers must agree between the refreshed set and a
			// cold rebuild (the question routing actually asks).
			for trial := 0; trial < 32; trial++ {
				s := m.Point(r.Intn(m.NodeCount()))
				d := m.Point(r.Intn(m.NodeCount()))
				if cs.BlockedByUnion(s, d) != fresh.BlockedByUnion(s, d) {
					t.Fatalf("seed=%d batch %d: BlockedByUnion(%v, %v) diverged after Refresh", seed, batch, s, d)
				}
			}
		}
	}
}

// TestRefreshAfterChurnMatchesRebuild drives Refresh through randomized
// add/remove interleavings — the fault-churn regime — so the re-extraction
// handles every component transition: growth and merges on injection,
// shrinks, splits and outright dissolution on repair. After each batch the
// in-place Refresh must match a cold FindMCCs over a fresh labelling on
// component structure, node→component mapping and union-field answers.
func TestRefreshAfterChurnMatchesRebuild(t *testing.T) {
	for _, seed := range []uint64{3, 29, 20050507} {
		m := mesh.NewCube(7)
		r := rng.New(seed)
		for i := 0; i < 40; i++ {
			m.SetFaulty(m.Point(r.Intn(m.NodeCount())), true)
		}
		l := labeling.Compute(m, grid.PositiveOrientation)
		cs := FindMCCs(l)
		for batch := 0; batch < 8; batch++ {
			if r.Intn(2) == 0 && m.FaultCount() > 4 {
				// Repair a random handful of live faults.
				var pts []grid.Point
				for len(pts) < 4 {
					idx := r.Intn(m.NodeCount())
					if !m.FaultyAt(idx) {
						continue
					}
					p := m.Point(idx)
					m.SetFaulty(p, false)
					pts = append(pts, p)
				}
				l.RemoveFaults(pts)
			} else {
				var pts []grid.Point
				for len(pts) < 4 {
					idx := r.Intn(m.NodeCount())
					if m.FaultyAt(idx) {
						continue
					}
					p := m.Point(idx)
					m.SetFaulty(p, true)
					pts = append(pts, p)
				}
				l.AddFaults(pts)
			}
			cs.Refresh()

			fresh := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
			if cs.Len() != fresh.Len() {
				t.Fatalf("seed=%d batch %d: Refresh found %d components, rebuild %d", seed, batch, cs.Len(), fresh.Len())
			}
			for i, c := range cs.Components {
				f := fresh.Components[i]
				if len(c.Nodes) != len(f.Nodes) || c.Bounds != f.Bounds || c.FaultyCount != f.FaultyCount ||
					c.NonFaulty() != f.NonFaulty() {
					t.Fatalf("seed=%d batch %d: component %d diverged:\nrefresh %v\nrebuild %v", seed, batch, i, c, f)
				}
				for j := range c.Nodes {
					if c.Nodes[j] != f.Nodes[j] {
						t.Fatalf("seed=%d batch %d: component %d node %d: %v vs %v", seed, batch, i, j, c.Nodes[j], f.Nodes[j])
					}
				}
			}
			m.ForEach(func(p grid.Point) {
				a, b := cs.ComponentOf(p), fresh.ComponentOf(p)
				if (a == nil) != (b == nil) || (a != nil && a.ID != b.ID) {
					t.Fatalf("seed=%d batch %d: ComponentOf(%v) diverged", seed, batch, p)
				}
			})
			for trial := 0; trial < 32; trial++ {
				s := m.Point(r.Intn(m.NodeCount()))
				d := m.Point(r.Intn(m.NodeCount()))
				if cs.BlockedByUnion(s, d) != fresh.BlockedByUnion(s, d) {
					t.Fatalf("seed=%d batch %d: BlockedByUnion(%v, %v) diverged after churn Refresh", seed, batch, s, d)
				}
			}
		}
	}
}
