package region

import (
	"mccmesh/internal/grid"
	"mccmesh/internal/minimal"
)

// Blocked reports whether the single component c, considered alone, blocks
// every minimal (monotone) path from `from` to `to`. This is the exact
// semantics behind the paper's forbidden/critical region rule: a routing
// step into a node v is excluded when the destination lies in the critical
// region of an MCC and v lies in its forbidden region — equivalently, when
// that MCC alone already blocks every monotone v→destination path.
func (s *ComponentSet) Blocked(c *Component, from, to grid.Point) bool {
	if !s.Mesh.InBounds(from) || !s.Mesh.InBounds(to) {
		return true
	}
	if c.Has(from) || c.Has(to) {
		return true
	}
	// Fast reject: a component entirely outside the routing box can never
	// block a monotone path.
	if !c.Bounds.Intersects(grid.BoxOf(from, to)) {
		return false
	}
	return !minimal.Exists(s.Mesh, c.Avoid(), from, to)
}

// BlockedByAny reports whether any single component of the set, on its own,
// blocks every monotone path from `from` to `to`.
//
// This is a sufficient condition for infeasibility but not a necessary one:
// two well-separated MCCs can jointly pinch off a narrow routing box that
// neither blocks alone. The paper handles exactly this case by *merging*
// forbidden regions when a boundary intersects another MCC (Algorithm 2 step 3
// and Algorithm 5 step 4); the merged information is equivalent to blocking by
// the union of all regions, which BlockedByUnion computes. BlockedByAny is
// kept as an analysis helper (e.g. to measure how often a single MCC explains
// an infeasible pair).
func (s *ComponentSet) BlockedByAny(from, to grid.Point) bool {
	for _, c := range s.Components {
		if s.Blocked(c, from, to) {
			return true
		}
	}
	return false
}

// BlockedByUnion reports whether the union of all components blocks every
// monotone path from `from` to `to`. This is the information the paper's
// merged boundary records encode, and — by the MCC ultimacy property — it
// coincides with blocking by the faulty nodes alone whenever the endpoints are
// safe.
func (s *ComponentSet) BlockedByUnion(from, to grid.Point) bool {
	return !minimal.ReachabilityWordsInto(nil, s.Mesh, s.UnionAvoidWords(), from, to).CanReach(from)
}

// UnionField returns the monotone-reachability field toward `to` over the box
// spanned by `from` and `to`, avoiding every unsafe node. Routing providers
// cache it so that one field answers every step of a route.
func (s *ComponentSet) UnionField(from, to grid.Point) *minimal.Field {
	return s.UnionFieldInto(nil, from, to)
}

// UnionFieldInto is UnionField reusing f's storage when f is non-nil (see
// minimal.ReachabilityIDInto); the routing providers' epoch caches use it to
// rebuild fields without allocating after a fault injection. The obstacle set
// is the word-level union bitset, so the sweep runs a box row at a time
// (minimal.ReachabilityWordsInto) instead of one status read per cell.
func (s *ComponentSet) UnionFieldInto(f *minimal.Field, from, to grid.Point) *minimal.Field {
	return minimal.ReachabilityWordsInto(f, s.Mesh, s.UnionAvoidWords(), from, to)
}

// unionAvoidID returns (building once) the ID-addressed obstacle test for the
// union of all fault regions. It stays valid across Refresh: the labelling is
// updated in place and byNode is reused.
func (s *ComponentSet) unionAvoidID() func(id int32) bool {
	if s.avoidID == nil {
		if s.Labeling != nil {
			s.avoidID = s.Labeling.AvoidUnsafeID()
		} else {
			byNode := s.byNode
			s.avoidID = func(id int32) bool { return byNode[id] >= 0 }
		}
	}
	return s.avoidID
}

// UnionAvoidWords returns the union of all fault regions as a bitset over
// dense node IDs — the word-level form of unionAvoidID that the row-at-a-time
// reachability sweep consumes. Labelled sets delegate to the labelling's
// lazily-maintained unsafe bitset; fault-only cluster sets derive one from
// byNode, invalidated by Refresh. The caller must not mutate or retain the
// slice across Refresh.
func (s *ComponentSet) UnionAvoidWords() []uint64 {
	if s.Labeling != nil {
		return s.Labeling.UnsafeWords()
	}
	if s.avoidW == nil {
		w := make([]uint64, (len(s.byNode)+63)/64)
		for i, b := range s.byNode {
			if b >= 0 {
				w[i>>6] |= 1 << uint(i&63)
			}
		}
		s.avoidW = w
	}
	return s.avoidW
}

// InForbidden reports whether node v lies in the forbidden region of component
// c with respect to destination d: moving onto v while the destination is in
// c's critical region dooms the route to a detour around c. The membership is
// destination-relative, exactly as used by Algorithm 3/6 step 2.
func (s *ComponentSet) InForbidden(c *Component, v, d grid.Point) bool {
	if !s.Mesh.InBounds(v) || c.Has(v) {
		return true
	}
	return s.Blocked(c, v, d)
}

// InCritical reports whether destination d lies in the critical region of
// component c as seen from a current node u: c stands between u and d in the
// sense that some monotone u→d path meets c's bounding box and c restricts
// which forward steps keep the route minimal.
func (s *ComponentSet) InCritical(c *Component, u, d grid.Point) bool {
	if c.Has(d) {
		return false
	}
	if !c.Bounds.Intersects(grid.BoxOf(u, d)) {
		return false
	}
	// d is critical w.r.t. c when at least one forward neighbour of u is
	// blocked by c alone while u itself is not (yet) blocked.
	if s.Blocked(c, u, d) {
		return false
	}
	orient := grid.OrientationOf(u, d)
	for _, a := range s.Mesh.Axes() {
		if u.Axis(a) == d.Axis(a) {
			continue
		}
		v := orient.Ahead(u, a)
		if s.Mesh.InBounds(v) && !c.Has(v) && s.Blocked(c, v, d) {
			return true
		}
	}
	return false
}
