package region

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/meshtest"
	"mccmesh/internal/minimal"
	"mccmesh/internal/rng"
)

func figure5Mesh() *mesh.Mesh {
	m := mesh.New3D(10, 10, 10)
	m.AddFaults(
		grid.Point{X: 5, Y: 5, Z: 6}, grid.Point{X: 6, Y: 5, Z: 5}, grid.Point{X: 5, Y: 6, Z: 5},
		grid.Point{X: 6, Y: 7, Z: 5}, grid.Point{X: 7, Y: 6, Z: 5}, grid.Point{X: 5, Y: 4, Z: 7},
		grid.Point{X: 4, Y: 5, Z: 7}, grid.Point{X: 7, Y: 8, Z: 4},
	)
	return m
}

// TestFigure5Components reproduces Figure 5(b): two MCCs, one containing only
// the isolated fault (7,8,4) and the other containing the remaining seven
// faults plus the useless node (5,5,5) and the can't-reach node (5,5,7).
func TestFigure5Components(t *testing.T) {
	m := figure5Mesh()
	l := labeling.Compute(m, grid.PositiveOrientation)
	cs := FindMCCs(l)
	if cs.Len() != 2 {
		t.Fatalf("expected 2 MCCs, got %d", cs.Len())
	}
	big := cs.Largest()
	if big.Size() != 9 {
		t.Errorf("large MCC has %d nodes, want 9 (7 faults + 2 absorbed)", big.Size())
	}
	if big.NonFaulty() != 2 {
		t.Errorf("large MCC absorbed %d healthy nodes, want 2", big.NonFaulty())
	}
	small := cs.ComponentOf(grid.Point{X: 7, Y: 8, Z: 4})
	if small == nil || small.Size() != 1 || small.FaultyCount != 1 {
		t.Errorf("isolated fault should form its own single-node MCC, got %v", small)
	}
	if !big.Has(grid.Point{X: 5, Y: 5, Z: 5}) || !big.Has(grid.Point{X: 5, Y: 5, Z: 7}) {
		t.Error("absorbed healthy nodes missing from the large MCC")
	}
	if cs.TotalNonFaulty() != 2 {
		t.Errorf("TotalNonFaulty = %d, want 2", cs.TotalNonFaulty())
	}
	if cs.TotalNodes() != 10 {
		t.Errorf("TotalNodes = %d, want 10", cs.TotalNodes())
	}
}

func TestComponentOfSafeNode(t *testing.T) {
	m := figure5Mesh()
	cs := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	if cs.ComponentOf(grid.Point{X: 0, Y: 0, Z: 0}) != nil {
		t.Error("safe node assigned to a component")
	}
	if cs.ComponentOf(grid.Point{X: -1, Y: 0, Z: 0}) != nil {
		t.Error("out-of-bounds point assigned to a component")
	}
}

func TestFindFaultClusters(t *testing.T) {
	m := mesh.New2D(8, 8)
	m.AddFaults(grid.Point{X: 1, Y: 1}, grid.Point{X: 1, Y: 2}, grid.Point{X: 5, Y: 5})
	cs := FindFaultClusters(m)
	if cs.Len() != 2 {
		t.Fatalf("expected 2 fault clusters, got %d", cs.Len())
	}
	if cs.TotalNonFaulty() != 0 {
		t.Error("fault clusters contain only faulty nodes")
	}
}

// TestComponentsPartitionUnsafeNodes checks that the components exactly cover
// the unsafe nodes, are disjoint and are link-connected.
func TestComponentsPartitionUnsafeNodes(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		m := meshtest.Random3D(r, 8, 5+r.Intn(40))
		l := labeling.Compute(m, grid.PositiveOrientation)
		cs := FindMCCs(l)
		covered := make(map[grid.Point]int)
		for _, c := range cs.Components {
			for _, p := range c.Nodes {
				if !l.Unsafe(p) {
					t.Fatalf("component contains safe node %v", p)
				}
				if prev, dup := covered[p]; dup {
					t.Fatalf("node %v in two components (%d and %d)", p, prev, c.ID)
				}
				covered[p] = c.ID
			}
			if !componentConnected(m, c) {
				t.Fatalf("component %d is not link-connected", c.ID)
			}
		}
		if len(covered) != l.UnsafeCount() {
			t.Fatalf("components cover %d nodes, labelling has %d unsafe", len(covered), l.UnsafeCount())
		}
	}
}

func componentConnected(m *mesh.Mesh, c *Component) bool {
	if len(c.Nodes) == 0 {
		return true
	}
	visited := map[grid.Point]bool{c.Nodes[0]: true}
	stack := []grid.Point{c.Nodes[0]}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range c.Nodes {
			if !visited[q] && Adjacent(p, q) {
				visited[q] = true
				stack = append(stack, q)
			}
		}
	}
	return len(visited) == len(c.Nodes)
}

// TestBlockingUltimacy is the central correctness property of the MCC model
// (I3): for safe endpoints, the union of the fault regions blocks a pair iff
// the faulty nodes alone block it — absorbing useless/can't-reach nodes never
// destroys a feasible minimal path. It also checks that single-MCC blocking is
// a sound (if incomplete) explanation: whenever one MCC blocks, the union
// blocks too.
func TestBlockingUltimacy(t *testing.T) {
	r := rng.New(2025)
	checked := 0
	for trial := 0; trial < 120; trial++ {
		var m *mesh.Mesh
		if trial%2 == 0 {
			m = meshtest.Random2D(r, 11, 6+r.Intn(24))
		} else {
			m = meshtest.Random3D(r, 7, 6+r.Intn(40))
		}
		s, d, ok := meshtest.SafePair(r, m, 4)
		if !ok {
			continue
		}
		checked++
		l := labeling.Compute(m, grid.OrientationOf(s, d))
		cs := FindMCCs(l)

		byAny := cs.BlockedByAny(s, d)
		byUnion := cs.BlockedByUnion(s, d)
		byFaults := !minimal.Exists(m, minimal.AvoidFaulty(m), s, d)

		if byAny && !byUnion {
			t.Fatalf("trial %d: a single MCC blocks %v->%v but the union does not", trial, s, d)
		}
		if byUnion != byFaults {
			t.Fatalf("trial %d: unsafe-union blocking (%v) != fault blocking (%v) for %v->%v (ultimacy violated)",
				trial, byUnion, byFaults, s, d)
		}
	}
	if checked < 40 {
		t.Fatalf("only %d random pairs were checked; the generator is too restrictive", checked)
	}
}

func TestBlockedEndpointsInsideComponent(t *testing.T) {
	m := figure5Mesh()
	cs := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	big := cs.Largest()
	inside := grid.Point{X: 5, Y: 5, Z: 5}
	if !cs.Blocked(big, inside, grid.Point{X: 9, Y: 9, Z: 9}) {
		t.Error("a source inside the component is always blocked")
	}
	if !cs.Blocked(big, grid.Point{}, inside) {
		t.Error("a destination inside the component is always blocked")
	}
}

func TestBlockedFarComponentFastPath(t *testing.T) {
	m := mesh.New2D(20, 20)
	m.AddFaults(grid.Point{X: 15, Y: 15}, grid.Point{X: 15, Y: 16})
	cs := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	c := cs.Components[0]
	if cs.Blocked(c, grid.Point{}, grid.Point{X: 3, Y: 3}) {
		t.Error("a component outside the routing box can never block")
	}
}

func TestInForbiddenInCritical(t *testing.T) {
	// A 3-wide wall in a 2-D mesh: routing from below to above it.
	m := mesh.New2D(10, 10)
	m.AddFaults(grid.Point{X: 3, Y: 5}, grid.Point{X: 4, Y: 5}, grid.Point{X: 5, Y: 5})
	l := labeling.Compute(m, grid.PositiveOrientation)
	cs := FindMCCs(l)
	c := cs.Components[0]

	d := grid.Point{X: 4, Y: 9} // directly above the wall: inside Q'_Y
	u := grid.Point{X: 2, Y: 2} // below and left of the wall, not yet committed
	if !cs.InCritical(c, u, d) {
		t.Error("destination right above the wall should be critical as seen from below-left")
	}
	v := grid.Point{X: 4, Y: 4} // directly below the wall: forbidden for this destination
	if !cs.InForbidden(c, v, d) {
		t.Error("node right below the wall should be forbidden for a destination above it")
	}
	clear := grid.Point{X: 6, Y: 4} // right of the wall: allowed
	if cs.InForbidden(c, clear, d) {
		t.Error("node beside the wall should not be forbidden")
	}
	// A destination to the right of the wall is not critical.
	dRight := grid.Point{X: 9, Y: 4}
	if cs.InCritical(c, u, dRight) {
		t.Error("destination beside the wall should not be critical")
	}
}

func TestEdgeNodesSurroundComponent(t *testing.T) {
	m := mesh.New2D(10, 10)
	m.AddFaults(grid.Point{X: 4, Y: 4}, grid.Point{X: 5, Y: 4})
	cs := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	c := cs.Components[0]
	edges := cs.EdgeNodes(c)
	// A 2x1 block has 2*2 + 2*1 + ... its perimeter ring of safe nodes sharing
	// a link: left, right, and top/bottom rows = 2 + 2*2 = wait: nodes adjacent
	// via links: (3,4),(6,4),(4,3),(5,3),(4,5),(5,5) = 6.
	if len(edges) != 6 {
		t.Errorf("edge nodes = %d, want 6", len(edges))
	}
	for _, e := range edges {
		if c.Has(e) {
			t.Errorf("edge node %v belongs to the component", e)
		}
	}
}

func TestCorners2DRectangle(t *testing.T) {
	m := mesh.New2D(10, 10)
	m.AddFaults(
		grid.Point{X: 4, Y: 4}, grid.Point{X: 5, Y: 4},
		grid.Point{X: 4, Y: 5}, grid.Point{X: 5, Y: 5},
	)
	cs := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	c := cs.Components[0]
	corners := cs.Corners2D(c)
	if !corners.Found {
		t.Fatal("corners should exist for an interior rectangle")
	}
	if corners.Initialization != (grid.Point{X: 3, Y: 3}) {
		t.Errorf("initialization corner = %v, want (3,3)", corners.Initialization)
	}
	if corners.Opposite != (grid.Point{X: 6, Y: 6}) {
		t.Errorf("opposite corner = %v, want (6,6)", corners.Opposite)
	}
}

func TestCorners2DOrientationDependence(t *testing.T) {
	m := mesh.New2D(10, 10)
	m.AddFaults(grid.Point{X: 4, Y: 4}, grid.Point{X: 5, Y: 4})
	l := labeling.Compute(m, grid.Orientation{SX: -1, SY: -1, SZ: 1})
	cs := FindMCCs(l)
	corners := cs.Corners2D(cs.Components[0])
	if !corners.Found {
		t.Fatal("corners should exist")
	}
	// With the reversed orientation the initialization corner sits on the
	// other diagonal.
	if corners.Initialization != (grid.Point{X: 6, Y: 5}) {
		t.Errorf("initialization corner = %v, want (6,5)", corners.Initialization)
	}
	if corners.Opposite != (grid.Point{X: 3, Y: 3}) {
		t.Errorf("opposite corner = %v, want (3,3)", corners.Opposite)
	}
}

func TestIntermediateCornersLShape(t *testing.T) {
	m := mesh.New2D(12, 12)
	// An L-shaped fault region (already orthogonally convex for this
	// orientation, no absorption happens).
	m.AddFaults(
		grid.Point{X: 4, Y: 4}, grid.Point{X: 5, Y: 4}, grid.Point{X: 6, Y: 4},
		grid.Point{X: 4, Y: 5}, grid.Point{X: 4, Y: 6},
	)
	cs := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	c := cs.Components[0]
	inter := cs.IntermediateCorners2D(c)
	if len(inter) == 0 {
		t.Fatal("an L-shaped MCC must have intermediate corners")
	}
	corners := cs.Corners2D(c)
	for _, p := range inter {
		if p == corners.Initialization || p == corners.Opposite {
			t.Errorf("intermediate corner %v duplicates a primary corner", p)
		}
	}
}

func TestPerimeterRingVisitsAllEdges(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		m := meshtest.Random2D(r, 10, 4+r.Intn(12))
		cs := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
		for _, c := range cs.Components {
			edges := cs.EdgeNodes(c)
			ring := cs.PerimeterRing(c, grid.Point{X: -1, Y: -1})
			if len(ring) != len(edges) {
				t.Fatalf("ring visits %d nodes, expected %d", len(ring), len(edges))
			}
			seen := make(map[grid.Point]bool)
			for _, p := range ring {
				if seen[p] {
					t.Fatalf("ring visits %v twice", p)
				}
				seen[p] = true
			}
		}
	}
}

func TestSections3DFigure5(t *testing.T) {
	m := figure5Mesh()
	cs := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	big := cs.Largest()

	xy := cs.Sections(big, PlaneXY)
	// Levels present: z=5 (5 unsafe nodes), z=6 (1), z=7 (3).
	byLevel := map[int]int{}
	for _, s := range xy {
		byLevel[s.Level] += s.Size()
	}
	if byLevel[5] != 5 || byLevel[6] != 1 || byLevel[7] != 3 {
		t.Errorf("XY section sizes by level = %v, want 5/1/3 at z=5/6/7", byLevel)
	}
	for _, s := range xy {
		if s.Plane != PlaneXY || s.Component != big {
			t.Error("section metadata wrong")
		}
		for _, p := range s.Nodes {
			if p.Z != s.Level {
				t.Errorf("node %v not on level %d", p, s.Level)
			}
			if !big.Has(p) {
				t.Errorf("section node %v not in component", p)
			}
		}
	}

	yz := cs.Sections(big, PlaneYZ)
	if len(yz) == 0 {
		t.Fatal("no YZ sections found")
	}
	xz := cs.Sections(big, PlaneXZ)
	if len(xz) == 0 {
		t.Fatal("no XZ sections found")
	}
}

func TestSectionCornerAndEdges(t *testing.T) {
	m := figure5Mesh()
	cs := FindMCCs(labeling.Compute(m, grid.PositiveOrientation))
	big := cs.Largest()

	// At z=5 the component forms a single XY section of five nodes with a hole
	// at (6,6,5), exactly as drawn in Figure 5(b).
	xySections := cs.Sections(big, PlaneXY)
	var z5 *Section
	z5Count := 0
	for _, s := range xySections {
		if s.Level == 5 {
			z5Count++
			z5 = s
		}
	}
	if z5Count != 1 {
		t.Fatalf("z=5 splits into %d XY sections, want 1", z5Count)
	}
	if z5.Size() != 5 {
		t.Fatalf("z=5 section has %d nodes, want 5", z5.Size())
	}
	if z5.Has(grid.Point{X: 6, Y: 6, Z: 5}) {
		t.Error("the hole (6,6,5) must not be part of the section")
	}
	corner := cs.SectionCorner(z5, CornerKind{Major: grid.AxisY, Minor: grid.AxisX})
	if corner != (grid.Point{X: 6, Y: 7, Z: 5}) {
		t.Errorf("(+Y-X)-corner of the z=5 section = %v, want (6,7,5)", corner)
	}
	corner = cs.SectionCorner(z5, CornerKind{Major: grid.AxisX, Minor: grid.AxisY})
	if corner != (grid.Point{X: 7, Y: 6, Z: 5}) {
		t.Errorf("(+X-Y)-corner of the z=5 section = %v, want (7,6,5)", corner)
	}
	// The z=7 section is the connected trio {(5,4),(4,5),(5,5)}; its
	// (+Y-X)-corner is (4,5,7).
	var z7 *Section
	for _, s := range xySections {
		if s.Level == 7 {
			z7 = s
		}
	}
	if z7 == nil || z7.Size() != 3 {
		t.Fatalf("missing the 3-node section at z=7")
	}
	if got := cs.SectionCorner(z7, CornerKind{Major: grid.AxisY, Minor: grid.AxisX}); got != (grid.Point{X: 4, Y: 5, Z: 7}) {
		t.Errorf("(+Y-X)-corner of the z=7 section = %v, want (4,5,7)", got)
	}

	edges := cs.Edges(big)
	if len(edges) != 6 {
		t.Fatalf("expected 6 edges, got %d", len(edges))
	}
	for _, e := range edges {
		if len(e.Nodes) == 0 {
			t.Errorf("edge %v has no nodes", e.Kind)
		}
		for _, p := range e.Nodes {
			if !big.Has(p) {
				t.Errorf("edge node %v not in component", p)
			}
		}
	}
}

func TestPlaneHelpers(t *testing.T) {
	if PlaneXY.FixedAxis() != grid.AxisZ || PlaneYZ.FixedAxis() != grid.AxisX || PlaneXZ.FixedAxis() != grid.AxisY {
		t.Error("FixedAxis wrong")
	}
	for _, k := range CornerKinds {
		p := PlaneForCorner(k)
		a1, a2 := p.Axes()
		ok := func(a grid.Axis) bool { return a == a1 || a == a2 }
		if !ok(k.Major) || !ok(k.Minor) {
			t.Errorf("corner kind %v mapped to plane %v missing its axes", k, p)
		}
	}
}
