// Package simnet is a small discrete-event simulator for message passing on a
// mesh: each node runs a handler, messages travel only between neighbouring
// nodes with a configurable link delay, and delivery order is deterministic
// (time, then send sequence). The distributed protocols of package protocol —
// labelling, identification, boundary construction, detection and routing —
// run on top of it, and the experiments use its statistics to measure the
// information model's message overhead.
//
// # Fast path
//
// Internally the simulator is index-first: nodes are addressed by their dense
// mesh ID (int32), envelope kinds are interned to small integer KindIDs (the
// string-keyed Stats.ByKind map is materialised once when Stats is read), and
// the event queue is a calendar queue — a ring of per-tick buckets whose
// backing arrays are recycled across ticks, with a binary-heap fallback for
// far-future events (distant timers, Network.At control callbacks). Events are
// stored by value in the buckets, so the steady-state hot path of one event —
// enqueue, bucket append, dequeue, deliver — performs no allocation.
//
// Handlers that need the same discipline (the traffic engine) use the Ref
// fast path: Context.SendRef / Context.AfterRef carry an opaque int32 payload
// reference into the envelope instead of an `any` box, and the handler
// resolves the reference against its own typed pool.
package simnet

import (
	"errors"
	"fmt"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/telemetry"
)

// Time is simulated time in abstract ticks.
type Time int64

// KindID is an interned envelope kind. IDs are per-Network, dense and small;
// intern kinds once with Network.Kind and compare/switch on the ID instead of
// the string on hot paths.
type KindID int32

// NoRef is the Ref value of envelopes sent without a payload reference.
const NoRef int32 = -1

// ErrEventBudget is returned (wrapped) by Run and Drain when the configured
// MaxEvents budget is exhausted — almost always a protocol livelock or an
// undersized budget for the offered load.
var ErrEventBudget = errors.New("simnet: event budget exhausted")

// Envelope is a message in flight or being delivered.
type Envelope struct {
	// From and To are the sending and receiving nodes. Timer events have
	// From == To.
	From, To grid.Point
	// Kind classifies the message for statistics ("label", "detect", ...).
	Kind string
	// KindID is the interned form of Kind, stable within one Network.
	KindID KindID
	// Payload is the protocol-specific content.
	Payload any
	// Ref is the opaque payload reference of the zero-alloc fast path
	// (Context.SendRef / Context.AfterRef), or NoRef. The simulator never
	// interprets it; the sending handler resolves it against its own pool.
	Ref int32
	// SendTime and DeliverTime bracket the link traversal.
	SendTime, DeliverTime Time
}

// Handler is the per-node protocol logic. A single Handler value is shared by
// all nodes; the node identity arrives through the Context.
type Handler interface {
	// Init runs once per healthy node before any message is delivered.
	Init(ctx *Context)
	// Receive handles one delivered envelope. The envelope points into a
	// scratch slot the simulator reuses for the next delivery; handlers must
	// copy anything they keep past the call.
	Receive(ctx *Context, env *Envelope)
}

// Stats aggregates what happened during a run.
type Stats struct {
	// Delivered counts messages delivered to healthy nodes.
	Delivered int
	// Dropped counts messages addressed to faulty or out-of-mesh nodes.
	Dropped int
	// Timers counts self-scheduled events.
	Timers int
	// Control counts scheduled control callbacks (Network.At), e.g. the
	// mid-run fault injections of the traffic engine.
	Control int
	// ByKind breaks Delivered down by Envelope.Kind.
	ByKind map[string]int
	// FinalTime is the simulated time of the last processed event.
	FinalTime Time
	// Events is the total number of processed events.
	Events int
}

// Options configure a Network.
type Options struct {
	// LinkDelay is the delivery latency of one hop. Defaults to 1.
	LinkDelay Time
	// MaxEvents aborts runaway protocols. Defaults to 4_000_000.
	MaxEvents int
	// Telemetry, when non-nil, receives event-queue counters (heap-fallback
	// pushes, heap→ring migrations, bucket recycling, peak bucket occupancy).
	// Nil — the default — keeps every instrumentation point a predicted
	// nil-check branch.
	Telemetry *telemetry.Sink

	// farThreshold forces events further than this many ticks in the future
	// onto the heap fallback instead of the calendar ring. Zero selects the
	// ring width. It exists so tests can compare the calendar's event order
	// against the pure-heap reference; production code leaves it alone.
	farThreshold Time
}

// Network is the simulator instance.
type Network struct {
	mesh    *mesh.Mesh
	handler Handler
	opts    Options

	now   Time
	seq   int64
	queue calendarQueue
	stats Stats

	// env is the delivery scratch slot handed (by pointer) to Handler.Receive;
	// see process.
	env Envelope

	// kindIDs interns kind strings; kindNames and byKind are indexed by KindID.
	kindIDs   map[string]KindID
	kindNames []string
	byKind    []int

	// byKindCache is the materialised Stats.ByKind map, rebuilt only when a
	// delivery has landed since it was built (byKind changes exactly when
	// stats.Delivered does), so polling Stats per tick does not allocate.
	byKindCache map[string]int
	byKindAt    int

	// boxed holds `any` payloads and At callbacks outside the (pointer-free)
	// event queue; boxedFree is its slot free-list. Ref-based sends never
	// touch it.
	boxed     []any
	boxedFree []int32

	// shardLo/shardHi bound the node IDs this network owns when it runs as one
	// shard of a ShardedNetwork; events addressed outside the slab divert to
	// outbox (in send order) instead of the local queue, and the coordinator
	// exchanges them at the tick barrier. shardHi == 0 — the default — disables
	// the diversion entirely: a standalone Network owns every node.
	shardLo, shardHi int32
	outbox           []event

	store []map[string]any
	ctxs  []Context
}

// New creates a network over the mesh with the given handler.
func New(m *mesh.Mesh, handler Handler, opts ...Options) *Network {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.LinkDelay <= 0 {
		o.LinkDelay = 1
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 4_000_000
	}
	if o.farThreshold <= 0 || o.farThreshold > wheelSize {
		o.farThreshold = wheelSize
	}
	n := &Network{
		mesh:    m,
		handler: handler,
		opts:    o,
		kindIDs: make(map[string]KindID, 8),
		store:   make([]map[string]any, m.NodeCount()),
		ctxs:    make([]Context, m.NodeCount()),
	}
	n.queue.init()
	n.queue.tel = o.Telemetry
	// KindID 0 is reserved for control events so Stats never reports them as
	// deliveries of a user kind.
	n.intern("control")
	for i := range n.ctxs {
		n.ctxs[i] = Context{net: n, self: m.Point(i), selfID: int32(i)}
	}
	return n
}

const kindControl KindID = 0

// box parks a payload (or control callback) in the side table and returns its
// slot, reusing freed slots. nil payloads are not boxed.
func (n *Network) box(v any) int32 {
	if v == nil {
		return noBox
	}
	if k := len(n.boxedFree); k > 0 {
		idx := n.boxedFree[k-1]
		n.boxedFree = n.boxedFree[:k-1]
		n.boxed[idx] = v
		return idx
	}
	n.boxed = append(n.boxed, v)
	return int32(len(n.boxed) - 1)
}

// unbox retrieves and releases a boxed payload.
func (n *Network) unbox(idx int32) any {
	if idx == noBox {
		return nil
	}
	v := n.boxed[idx]
	n.boxed[idx] = nil
	n.boxedFree = append(n.boxedFree, idx)
	return v
}

// intern returns the stable KindID of name, allocating one on first use.
func (n *Network) intern(name string) KindID {
	if id, ok := n.kindIDs[name]; ok {
		return id
	}
	id := KindID(len(n.kindNames))
	n.kindIDs[name] = id
	n.kindNames = append(n.kindNames, name)
	n.byKind = append(n.byKind, 0)
	return id
}

// Kind interns an envelope kind and returns its dense ID. Handlers on the
// fast path intern their kinds once (at Init) and pass the IDs to SendRef,
// SendDirRef and AfterRef.
func (n *Network) Kind(name string) KindID { return n.intern(name) }

// KindName returns the string form of an interned kind.
func (n *Network) KindName(id KindID) string { return n.kindNames[id] }

// Mesh returns the underlying mesh.
func (n *Network) Mesh() *mesh.Mesh { return n.mesh }

// Now returns the current simulated time.
func (n *Network) Now() Time { return n.now }

// Stats returns a copy of the accumulated statistics. The ByKind map is
// materialised from the interned per-kind counters and cached until the next
// delivery, so repeated polling (progress observers) costs no allocation;
// callers must treat the map as read-only.
func (n *Network) Stats() Stats {
	s := n.stats
	if n.byKindCache == nil || n.byKindAt != n.stats.Delivered {
		cache := make(map[string]int, len(n.byKind))
		for id, count := range n.byKind {
			if count > 0 {
				cache[n.kindNames[id]] = count
			}
		}
		n.byKindCache = cache
		n.byKindAt = n.stats.Delivered
	}
	s.ByKind = n.byKindCache
	return s
}

// Store returns the local key/value store of node p (creating it on demand).
// Protocol handlers use it for per-node state; tests use it to inspect the
// final distributed state.
func (n *Network) Store(p grid.Point) map[string]any {
	idx := n.mesh.Index(p)
	if n.store[idx] == nil {
		n.store[idx] = make(map[string]any)
	}
	return n.store[idx]
}

// ContextOf returns the per-node context of the node with dense ID id.
// Control callbacks (Network.At) use it to act on behalf of a node — e.g. the
// traffic engine's churn handler re-arms a repaired node's injection timer,
// whose previous instance was dropped while the node was faulty.
func (n *Network) ContextOf(id int32) *Context { return &n.ctxs[id] }

// Post injects an external event addressed to node p at the current time
// (plus one link delay), e.g. the arrival of a routing request at the source.
func (n *Network) Post(p grid.Point, kind string, payload any) {
	id := n.mesh.ID(p)
	n.enqueue(event{
		time: n.now, sendTime: n.now,
		from: id, to: id,
		kind: n.intern(kind), ref: NoRef,
		box: n.box(payload),
	})
}

// At schedules fn to run at simulated time t (or at the current time if t has
// already passed), interleaved deterministically with message deliveries: among
// events with equal times, scheduling order wins. Control callbacks may mutate
// the mesh — the traffic engine uses them to inject faults mid-run.
func (n *Network) At(t Time, fn func()) {
	if t < n.now {
		t = n.now
	}
	n.enqueue(event{
		time: t, sendTime: n.now,
		from: mesh.NoNeighbor, to: mesh.NoNeighbor,
		kind: kindControl, ref: NoRef,
		box: n.box(fn), ctrl: true,
	})
}

// Run initialises every healthy node and processes events until the network
// is quiescent. It returns the final statistics, and a non-nil error wrapping
// ErrEventBudget if the event budget was exhausted before quiescence.
func (n *Network) Run() (Stats, error) {
	for i := 0; i < n.mesh.NodeCount(); i++ {
		if n.mesh.FaultyAt(i) {
			continue
		}
		n.handler.Init(&n.ctxs[i])
	}
	return n.Drain()
}

// Drain processes queued events without re-initialising nodes. It is used to
// continue a simulation after posting additional external events. When the
// event budget runs out it stops and returns the statistics so far together
// with an error wrapping ErrEventBudget.
func (n *Network) Drain() (Stats, error) {
	for n.queue.pending() {
		if err := n.runTick(n.queue.nextTime(n.now)); err != nil {
			return n.Stats(), err
		}
	}
	return n.Stats(), nil
}

// runTick processes every event scheduled at exactly tick t — the per-tick
// unit a ShardedNetwork drives under its barrier; Drain is the degenerate
// single-shard loop over it. The caller guarantees t is the earliest queued
// tick (or that the tick is empty, which is a no-op).
func (n *Network) runTick(t Time) error {
	n.queue.migrate(t, n.opts.farThreshold)
	bucket := &n.queue.ring[t&wheelMask]
	// The bucket may grow while it is drained: same-tick events appended
	// during processing (After(0), At(now), Post) carry larger sequence
	// numbers and belong at the tail, so re-reading len each iteration
	// preserves the (time, seq) order exactly.
	for i := 0; i < len(*bucket); i++ {
		if n.stats.Events >= n.opts.MaxEvents {
			// Drop the processed prefix so a (hypothetical) further Drain
			// does not replay it.
			n.queue.consume(bucket, i)
			return fmt.Errorf("%w: budget %d at t=%d (protocol livelock or undersized MaxEvents?)",
				ErrEventBudget, n.opts.MaxEvents, n.now)
		}
		ev := (*bucket)[i] // copy: the append above may move the slice
		n.now = t
		n.stats.Events++
		n.stats.FinalTime = t
		n.process(&ev)
	}
	n.queue.consume(bucket, len(*bucket))
	return nil
}

// peekTime returns the earliest queued tick without consuming anything; ok is
// false when the queue is empty.
func (n *Network) peekTime() (t Time, ok bool) {
	if !n.queue.pending() {
		return 0, false
	}
	return n.queue.nextTime(n.now), true
}

// advanceTo moves the clock forward to t without processing — an idle shard
// keeping pace with the barrier. The caller guarantees no queued event is
// earlier than t, so the ring's [now, now+window) invariant is preserved.
func (n *Network) advanceTo(t Time) {
	if t > n.now {
		n.now = t
	}
}

// process dispatches one dequeued event.
func (n *Network) process(ev *event) {
	if ev.ctrl {
		n.stats.Control++
		n.unbox(ev.box).(func())()
		return
	}
	if ev.to == mesh.NoNeighbor || n.mesh.FaultyAt(int(ev.to)) {
		n.stats.Dropped++
		n.unbox(ev.box) // release the payload of the dropped message
		return
	}
	n.stats.Delivered++
	n.byKind[ev.kind]++
	// env is a reusable scratch slot, not a fresh value: passing a pointer
	// through the Handler interface would otherwise heap-allocate an Envelope
	// per delivery, and it is filled field by field — a composite literal here
	// compiles to a build-then-copy of the whole struct. Receive must not
	// retain it.
	env := &n.env
	env.From = n.pointOf(ev.from)
	env.To = n.mesh.Point(int(ev.to))
	env.Kind = n.kindNames[ev.kind]
	env.KindID = ev.kind
	env.Payload = n.unbox(ev.box)
	env.Ref = ev.ref
	env.SendTime = ev.sendTime
	env.DeliverTime = ev.time
	n.handler.Receive(&n.ctxs[ev.to], env)
}

// pointOf maps a dense ID back to coordinates, tolerating the out-of-mesh
// marker (control events, senders of dropped posts).
func (n *Network) pointOf(id int32) grid.Point {
	if id == mesh.NoNeighbor {
		return grid.Point{}
	}
	return n.mesh.Point(int(id))
}

// enqueue assigns the next sequence number and buckets the event. In sharded
// mode, events addressed to a node outside this shard's slab are diverted to
// the outbox instead; the coordinator re-enqueues them into the owning shard
// at the tick barrier (which assigns that shard's own sequence numbers, so
// destination buckets stay seq-sorted).
func (n *Network) enqueue(ev event) {
	n.seq++
	ev.seq = n.seq
	if n.shardHi != 0 && ev.to != mesh.NoNeighbor && (ev.to < n.shardLo || ev.to >= n.shardHi) {
		n.outbox = append(n.outbox, ev)
		return
	}
	n.queue.push(ev, n.now, n.opts.farThreshold)
}

// Context gives a handler access to its node's identity, local store and
// communication primitives.
type Context struct {
	net    *Network
	self   grid.Point
	selfID int32
}

// Self returns the node this context belongs to.
func (c *Context) Self() grid.Point { return c.self }

// SelfID returns the dense mesh ID of the node this context belongs to.
func (c *Context) SelfID() int32 { return c.selfID }

// Time returns the current simulated time.
func (c *Context) Time() Time { return c.net.now }

// Mesh exposes the topology (a real node knows its own coordinates and the
// mesh dimensions; it must not use the mesh to inspect distant fault status —
// protocols gather that through messages).
func (c *Context) Mesh() *mesh.Mesh { return c.net.mesh }

// Store returns this node's local key/value store.
func (c *Context) Store() map[string]any { return c.net.Store(c.self) }

// NeighborFaulty reports whether the neighbour in direction dir is faulty or
// missing. Nodes are assumed to know the liveness of their direct neighbours
// (the paper's base assumption).
func (c *Context) NeighborFaulty(dir grid.Direction) bool {
	q := c.net.mesh.NeighborID(c.selfID, dir)
	if q == mesh.NoNeighbor {
		return true
	}
	return c.net.mesh.FaultyAt(int(q))
}

// Send transmits a message to a neighbouring node. It panics if to is not a
// mesh neighbour of the sender, keeping protocols honest about locality.
func (c *Context) Send(to grid.Point, kind string, payload any) {
	if grid.Manhattan(c.self, to) != 1 {
		panic(fmt.Sprintf("simnet: %v attempted a non-local send to %v", c.self, to))
	}
	c.net.enqueue(event{
		time: c.net.now + c.net.opts.LinkDelay, sendTime: c.net.now,
		from: c.selfID, to: c.net.mesh.ID(to),
		kind: c.net.intern(kind), ref: NoRef,
		box: c.net.box(payload),
	})
}

// SendDir transmits a message to the neighbour in the given direction and
// reports whether such a neighbour exists.
func (c *Context) SendDir(dir grid.Direction, kind string, payload any) bool {
	to := c.net.mesh.NeighborID(c.selfID, dir)
	if to == mesh.NoNeighbor {
		return false
	}
	c.net.enqueue(event{
		time: c.net.now + c.net.opts.LinkDelay, sendTime: c.net.now,
		from: c.selfID, to: to,
		kind: c.net.intern(kind), ref: NoRef,
		box: c.net.box(payload),
	})
	return true
}

// SendRef transmits a payload reference to the neighbour in the given
// direction and reports whether such a neighbour exists. It is the zero-alloc
// fast path: kind must be interned with Network.Kind, and ref is an opaque
// handle the receiving handler resolves against its own pool (it arrives in
// Envelope.Ref; Envelope.Payload stays nil).
func (c *Context) SendRef(dir grid.Direction, kind KindID, ref int32) bool {
	to := c.net.mesh.NeighborID(c.selfID, dir)
	if to == mesh.NoNeighbor {
		return false
	}
	c.net.enqueue(event{
		time: c.net.now + c.net.opts.LinkDelay, sendTime: c.net.now,
		from: c.selfID, to: to,
		kind: kind, ref: ref, box: noBox,
	})
	return true
}

// Broadcast sends the message to every in-bounds neighbour and returns how
// many copies were sent.
func (c *Context) Broadcast(kind string, payload any) int {
	sent := 0
	for _, dir := range c.net.mesh.Directions() {
		if c.SendDir(dir, kind, payload) {
			sent++
		}
	}
	return sent
}

// After schedules a local timer event delivered to this node after delay.
func (c *Context) After(delay Time, kind string, payload any) {
	c.after(delay, c.net.intern(kind), NoRef, payload)
}

// AfterRef schedules a local timer carrying a payload reference instead of a
// boxed payload — the timer counterpart of SendRef.
func (c *Context) AfterRef(delay Time, kind KindID, ref int32) {
	c.after(delay, kind, ref, nil)
}

func (c *Context) after(delay Time, kind KindID, ref int32, payload any) {
	if delay < 0 {
		delay = 0
	}
	c.net.stats.Timers++
	c.net.enqueue(event{
		time: c.net.now + delay, sendTime: c.net.now,
		from: c.selfID, to: c.selfID,
		kind: kind, ref: ref,
		box: c.net.box(payload),
	})
}
