// Package simnet is a small discrete-event simulator for message passing on a
// mesh: each node runs a handler, messages travel only between neighbouring
// nodes with a configurable link delay, and delivery order is deterministic
// (time, then send sequence). The distributed protocols of package protocol —
// labelling, identification, boundary construction, detection and routing —
// run on top of it, and the experiments use its statistics to measure the
// information model's message overhead.
package simnet

import (
	"container/heap"
	"fmt"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// Time is simulated time in abstract ticks.
type Time int64

// Envelope is a message in flight or being delivered.
type Envelope struct {
	// From and To are the sending and receiving nodes. Timer events have
	// From == To.
	From, To grid.Point
	// Kind classifies the message for statistics ("label", "detect", ...).
	Kind string
	// Payload is the protocol-specific content.
	Payload any
	// SendTime and DeliverTime bracket the link traversal.
	SendTime, DeliverTime Time
	// Hop is the hop index of the message within its protocol flow, if the
	// sender sets it (diagnostic only).
	Hop int
}

// Handler is the per-node protocol logic. A single Handler value is shared by
// all nodes; the node identity arrives through the Context.
type Handler interface {
	// Init runs once per healthy node before any message is delivered.
	Init(ctx *Context)
	// Receive handles one delivered envelope.
	Receive(ctx *Context, env Envelope)
}

// Stats aggregates what happened during a run.
type Stats struct {
	// Delivered counts messages delivered to healthy nodes.
	Delivered int
	// Dropped counts messages addressed to faulty or out-of-mesh nodes.
	Dropped int
	// Timers counts self-scheduled events.
	Timers int
	// Control counts scheduled control callbacks (Network.At), e.g. the
	// mid-run fault injections of the traffic engine.
	Control int
	// ByKind breaks Delivered down by Envelope.Kind.
	ByKind map[string]int
	// FinalTime is the simulated time of the last processed event.
	FinalTime Time
	// Events is the total number of processed events.
	Events int
}

// Options configure a Network.
type Options struct {
	// LinkDelay is the delivery latency of one hop. Defaults to 1.
	LinkDelay Time
	// MaxEvents aborts runaway protocols. Defaults to 4_000_000.
	MaxEvents int
}

// Network is the simulator instance.
type Network struct {
	mesh    *mesh.Mesh
	handler Handler
	opts    Options

	now   Time
	seq   int64
	queue eventQueue
	stats Stats
	store []map[string]any
	ctxs  []Context
}

// New creates a network over the mesh with the given handler.
func New(m *mesh.Mesh, handler Handler, opts ...Options) *Network {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.LinkDelay <= 0 {
		o.LinkDelay = 1
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 4_000_000
	}
	n := &Network{
		mesh:    m,
		handler: handler,
		opts:    o,
		stats:   Stats{ByKind: make(map[string]int)},
		store:   make([]map[string]any, m.NodeCount()),
		ctxs:    make([]Context, m.NodeCount()),
	}
	for i := range n.ctxs {
		n.ctxs[i] = Context{net: n, self: m.Point(i)}
	}
	return n
}

// Mesh returns the underlying mesh.
func (n *Network) Mesh() *mesh.Mesh { return n.mesh }

// Now returns the current simulated time.
func (n *Network) Now() Time { return n.now }

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats {
	s := n.stats
	s.ByKind = make(map[string]int, len(n.stats.ByKind))
	for k, v := range n.stats.ByKind {
		s.ByKind[k] = v
	}
	return s
}

// Store returns the local key/value store of node p (creating it on demand).
// Protocol handlers use it for per-node state; tests use it to inspect the
// final distributed state.
func (n *Network) Store(p grid.Point) map[string]any {
	idx := n.mesh.Index(p)
	if n.store[idx] == nil {
		n.store[idx] = make(map[string]any)
	}
	return n.store[idx]
}

// Post injects an external event addressed to node p at the current time
// (plus one link delay), e.g. the arrival of a routing request at the source.
func (n *Network) Post(p grid.Point, kind string, payload any) {
	n.enqueue(Envelope{
		From: p, To: p, Kind: kind, Payload: payload,
		SendTime: n.now, DeliverTime: n.now,
	})
}

// At schedules fn to run at simulated time t (or at the current time if t has
// already passed), interleaved deterministically with message deliveries: among
// events with equal times, scheduling order wins. Control callbacks may mutate
// the mesh — the traffic engine uses them to inject faults mid-run.
func (n *Network) At(t Time, fn func()) {
	if t < n.now {
		t = n.now
	}
	n.seq++
	heap.Push(&n.queue, &event{
		env: Envelope{Kind: "control", SendTime: n.now, DeliverTime: t},
		seq: n.seq,
		fn:  fn,
	})
}

// Run initialises every healthy node and processes events until the network is
// quiescent or the event budget is exhausted. It returns the final statistics.
func (n *Network) Run() Stats {
	for i := 0; i < n.mesh.NodeCount(); i++ {
		if n.mesh.FaultyAt(i) {
			continue
		}
		n.handler.Init(&n.ctxs[i])
	}
	return n.Drain()
}

// Drain processes queued events without re-initialising nodes. It is used to
// continue a simulation after posting additional external events.
func (n *Network) Drain() Stats {
	for len(n.queue) > 0 {
		if n.stats.Events >= n.opts.MaxEvents {
			panic(fmt.Sprintf("simnet: event budget %d exhausted (protocol livelock?)", n.opts.MaxEvents))
		}
		ev := heap.Pop(&n.queue).(*event)
		n.now = ev.env.DeliverTime
		n.stats.Events++
		n.stats.FinalTime = n.now
		if ev.fn != nil {
			n.stats.Control++
			ev.fn()
			continue
		}
		to := ev.env.To
		if !n.mesh.InBounds(to) || n.mesh.IsFaulty(to) {
			n.stats.Dropped++
			continue
		}
		n.stats.Delivered++
		n.stats.ByKind[ev.env.Kind]++
		n.handler.Receive(&n.ctxs[n.mesh.Index(to)], ev.env)
	}
	return n.Stats()
}

func (n *Network) enqueue(env Envelope) {
	n.seq++
	heap.Push(&n.queue, &event{env: env, seq: n.seq})
}

// Context gives a handler access to its node's identity, local store and
// communication primitives.
type Context struct {
	net  *Network
	self grid.Point
}

// Self returns the node this context belongs to.
func (c *Context) Self() grid.Point { return c.self }

// Time returns the current simulated time.
func (c *Context) Time() Time { return c.net.now }

// Mesh exposes the topology (a real node knows its own coordinates and the
// mesh dimensions; it must not use the mesh to inspect distant fault status —
// protocols gather that through messages).
func (c *Context) Mesh() *mesh.Mesh { return c.net.mesh }

// Store returns this node's local key/value store.
func (c *Context) Store() map[string]any { return c.net.Store(c.self) }

// NeighborFaulty reports whether the neighbour in direction dir is faulty or
// missing. Nodes are assumed to know the liveness of their direct neighbours
// (the paper's base assumption).
func (c *Context) NeighborFaulty(dir grid.Direction) bool {
	q := grid.Step(c.self, dir)
	if !c.net.mesh.InBounds(q) {
		return true
	}
	return c.net.mesh.IsFaulty(q)
}

// Send transmits a message to a neighbouring node. It panics if to is not a
// mesh neighbour of the sender, keeping protocols honest about locality.
func (c *Context) Send(to grid.Point, kind string, payload any) {
	if grid.Manhattan(c.self, to) != 1 {
		panic(fmt.Sprintf("simnet: %v attempted a non-local send to %v", c.self, to))
	}
	c.net.enqueue(Envelope{
		From: c.self, To: to, Kind: kind, Payload: payload,
		SendTime: c.net.now, DeliverTime: c.net.now + c.net.opts.LinkDelay,
	})
}

// SendDir transmits a message to the neighbour in the given direction and
// reports whether such a neighbour exists.
func (c *Context) SendDir(dir grid.Direction, kind string, payload any) bool {
	q := grid.Step(c.self, dir)
	if !c.net.mesh.InBounds(q) {
		return false
	}
	c.Send(q, kind, payload)
	return true
}

// Broadcast sends the message to every in-bounds neighbour and returns how
// many copies were sent.
func (c *Context) Broadcast(kind string, payload any) int {
	sent := 0
	for _, dir := range c.net.mesh.Directions() {
		if c.SendDir(dir, kind, payload) {
			sent++
		}
	}
	return sent
}

// After schedules a local timer event delivered to this node after delay.
func (c *Context) After(delay Time, kind string, payload any) {
	if delay < 0 {
		delay = 0
	}
	c.net.stats.Timers++
	c.net.enqueue(Envelope{
		From: c.self, To: c.self, Kind: kind, Payload: payload,
		SendTime: c.net.now, DeliverTime: c.net.now + delay,
	})
}

// --- event queue -------------------------------------------------------------

type event struct {
	env Envelope
	seq int64
	// fn, when non-nil, marks a control event: Drain runs it instead of
	// delivering env to a node.
	fn func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].env.DeliverTime != q[j].env.DeliverTime {
		return q[i].env.DeliverTime < q[j].env.DeliverTime
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
