package simnet

import (
	"fmt"
	"runtime/debug"
	"sync"

	"mccmesh/internal/mesh"
	"mccmesh/internal/telemetry"
)

// ShardedNetwork runs one simulation spatially sharded: the mesh is split
// into contiguous dense-ID slabs (see mesh.SlabPartition), each shard owns a
// private Network — its own calendar queue, sequence counter and handler
// state — and the shards advance in lock step, one tick per barrier round.
//
// The synchronisation is conservative with lookahead equal to the link delay:
// every cross-shard message sent at tick t is delivered no earlier than t+1,
// so within one tick the shards are causally independent and may process
// their buckets in parallel. At the barrier the coordinator exchanges the
// shards' outboxes in canonical (shard, send order) sequence, which pins the
// destination-side sequence numbers — the sharded run processes exactly the
// event set of the sequential run, with every per-node event order preserved
// (nodes live in exactly one shard), so handlers whose observable results
// depend only on per-node order and on barrier-synchronised shared state
// produce bit-identical results at any shard count.
//
// Control callbacks (At) are coordinator-owned and run at the start of their
// tick, before any shard processes it — the same "control before same-tick
// deliveries" order a standalone Network guarantees via setup-time sequence
// numbers. They are the one place shared state (the mesh's fault set, the
// handlers' models) may be mutated.
type ShardedNetwork struct {
	mesh  *mesh.Mesh
	slabs []mesh.IDRange
	nets  []*Network
	opts  ShardedOptions

	now     Time
	final   Time
	ctrl    ctrlHeap
	ctrlSeq int64
	control int // control callbacks run (the coordinator's share of Events)

	// Worker machinery: one persistent goroutine per shard, fed ticks over
	// start and reporting back over done, so the per-tick cost is two channel
	// operations per active shard rather than a goroutine spawn.
	start   []chan Time
	done    chan shardDone
	workers sync.WaitGroup
}

// ShardedOptions configure a ShardedNetwork.
type ShardedOptions struct {
	// LinkDelay is the delivery latency of one hop (default 1). It is also the
	// conservative lookahead: the barrier protocol requires at least 1.
	LinkDelay Time
	// MaxEvents aborts runaway protocols, counted across all shards plus
	// control callbacks (default 4_000_000). The budget is checked at every
	// tick barrier, so the abort lands on a deterministic tick — though not
	// necessarily on the exact event index a sequential run would abort at.
	MaxEvents int
	// Telemetry optionally supplies one counter sink per shard (len must match
	// the slab count); each shard's queue counters land in its own sink so the
	// parallel tick processing never contends on a shared one.
	Telemetry []*telemetry.Sink
	// MigrateRef rewrites an envelope payload reference when an event crosses
	// shards at the barrier exchange: handlers that resolve Envelope.Ref
	// against per-shard pools (the traffic engine) move the payload from the
	// source shard's pool to the destination's here. It runs single-threaded
	// on the coordinator. Required when handlers use SendRef across slab
	// boundaries; boxed payloads migrate automatically.
	MigrateRef func(from, to int, kind KindID, ref int32) int32
}

// ctrlEvent is one scheduled control callback; ctrlHeap orders them by
// (time, seq) exactly as the sequential queue would.
type ctrlEvent struct {
	time Time
	seq  int64
	fn   func()
}

type ctrlHeap []ctrlEvent

func (h ctrlHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *ctrlHeap) push(ev ctrlEvent) {
	*h = append(*h, ev)
	for i := len(*h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *ctrlHeap) pop() ctrlEvent {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old = old[:n]
	*h = old
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && old.less(l, smallest) {
			smallest = l
		}
		if r < n && old.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
	return top
}

// shardDone is one worker's report for one tick.
type shardDone struct {
	shard    int
	err      error
	panicked any
}

// NewSharded creates a sharded network: one sub-network per slab, each
// running handlers[i] over the shared mesh. Handlers typically share
// read-only configuration but must keep mutable per-node state private to the
// owning shard; shared mutable state may only change inside At callbacks.
// len(handlers) must equal len(slabs), and the slabs must be the contiguous
// ascending cover mesh.SlabPartition produces.
func NewSharded(m *mesh.Mesh, handlers []Handler, slabs []mesh.IDRange, opts ShardedOptions) *ShardedNetwork {
	if len(handlers) != len(slabs) {
		panic(fmt.Sprintf("simnet: %d handlers for %d shards", len(handlers), len(slabs)))
	}
	if opts.Telemetry != nil && len(opts.Telemetry) != len(slabs) {
		panic(fmt.Sprintf("simnet: %d telemetry sinks for %d shards", len(opts.Telemetry), len(slabs)))
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 4_000_000
	}
	sn := &ShardedNetwork{mesh: m, slabs: slabs, opts: opts}
	for s, slab := range slabs {
		var sink *telemetry.Sink
		if opts.Telemetry != nil {
			sink = opts.Telemetry[s]
		}
		// Each shard keeps the full MaxEvents as its own bound: it is only the
		// same-tick livelock backstop (After(0) loops); the real cross-shard
		// budget is enforced at the barrier.
		net := New(m, handlers[s], Options{LinkDelay: opts.LinkDelay, MaxEvents: opts.MaxEvents, Telemetry: sink})
		net.shardLo, net.shardHi = slab.Lo, slab.Hi
		sn.nets = append(sn.nets, net)
	}
	return sn
}

// Shards returns the number of shards.
func (sn *ShardedNetwork) Shards() int { return len(sn.nets) }

// ShardOf returns the index of the shard owning the dense node ID.
func (sn *ShardedNetwork) ShardOf(id int32) int {
	for s, slab := range sn.slabs {
		if slab.Contains(id) {
			return s
		}
	}
	panic(fmt.Sprintf("simnet: node %d outside every shard slab", id))
}

// Mesh returns the shared mesh.
func (sn *ShardedNetwork) Mesh() *mesh.Mesh { return sn.mesh }

// Now returns the current simulated time (the barrier tick).
func (sn *ShardedNetwork) Now() Time { return sn.now }

// Kind interns an envelope kind in every shard and returns its dense ID. The
// shards intern in the same order, so the IDs agree; a divergence (a handler
// interning shard-locally first) panics rather than silently mis-dispatching.
func (sn *ShardedNetwork) Kind(name string) KindID {
	id := sn.nets[0].Kind(name)
	for _, net := range sn.nets[1:] {
		if got := net.Kind(name); got != id {
			panic(fmt.Sprintf("simnet: kind %q interned as %d and %d across shards", name, id, got))
		}
	}
	return id
}

// ContextOf returns the per-node context of node id, bound to its owning
// shard — timers armed through it land in that shard's queue.
func (sn *ShardedNetwork) ContextOf(id int32) *Context {
	return sn.nets[sn.ShardOf(id)].ContextOf(id)
}

// At schedules fn to run on the coordinator at the start of tick t, before
// any shard processes that tick; among same-tick callbacks, scheduling order
// wins. This is the only place shared mutable state (the mesh's fault set)
// may change, which is what keeps every shard's view of it tick-consistent.
func (sn *ShardedNetwork) At(t Time, fn func()) {
	if t < sn.now {
		t = sn.now
	}
	sn.ctrlSeq++
	sn.ctrl.push(ctrlEvent{time: t, seq: sn.ctrlSeq, fn: fn})
}

// Run initialises every healthy node (in dense-ID order, exactly as a
// standalone Network would) and drives the barrier loop to quiescence.
func (sn *ShardedNetwork) Run() (Stats, error) {
	for s, net := range sn.nets {
		slab := sn.slabs[s]
		for i := slab.Lo; i < slab.Hi; i++ {
			if sn.mesh.FaultyAt(int(i)) {
				continue
			}
			net.handler.Init(&net.ctxs[i])
		}
	}
	return sn.drain()
}

// drain is the conservative barrier loop: pick the globally earliest tick,
// run its control callbacks, let every shard with events at that tick process
// them in parallel, then exchange the cross-shard sends (which all target
// t+LinkDelay or later) and repeat.
func (sn *ShardedNetwork) drain() (Stats, error) {
	sn.startWorkers()
	defer sn.stopWorkers()
	sn.exchange() // flush Init-time cross-shard sends
	active := make([]int, 0, len(sn.nets))
	for {
		t, ok := sn.nextTick()
		if !ok {
			return sn.Stats(), nil
		}
		sn.now, sn.final = t, t
		active = active[:0]
		for s, net := range sn.nets {
			net.advanceTo(t)
			if pt, ok := net.peekTime(); ok && pt == t {
				active = append(active, s)
			}
		}
		// Control callbacks first: they run single-threaded, in scheduling
		// order, against a quiescent tick — matching the sequential rule that
		// setup-enqueued control events precede same-tick deliveries.
		ranCtrl := false
		for len(sn.ctrl) > 0 && sn.ctrl[0].time == t {
			ev := sn.ctrl.pop()
			sn.control++
			ev.fn()
			ranCtrl = true
		}
		if ranCtrl {
			// A callback may have armed same-tick work on a previously idle
			// shard (e.g. re-arming a repaired node's timer); rebuild the
			// active set so that work runs this tick, not never.
			active = active[:0]
			for s, net := range sn.nets {
				if pt, ok := net.peekTime(); ok && pt == t {
					active = append(active, s)
				}
			}
		}
		if err := sn.runTicks(active, t); err != nil {
			return sn.Stats(), err
		}
		sn.exchange()
		if total := sn.totalEvents(); total >= sn.opts.MaxEvents {
			return sn.Stats(), fmt.Errorf("%w: budget %d at t=%d across %d shards (protocol livelock or undersized MaxEvents?)",
				ErrEventBudget, sn.opts.MaxEvents, t, len(sn.nets))
		}
	}
}

// runTicks processes tick t on every active shard — in parallel when more
// than one is active, inline otherwise. A shard panic is re-raised on the
// coordinator goroutine so callers' existing recover boundaries see it; a
// shard error (per-shard budget backstop) is reported in ascending shard
// order for determinism.
func (sn *ShardedNetwork) runTicks(active []int, t Time) error {
	if len(active) == 1 {
		return sn.nets[active[0]].runTick(t)
	}
	for _, s := range active {
		sn.start[s] <- t
	}
	var firstErr error
	firstShard := len(sn.nets)
	var panicked any
	for range active {
		d := <-sn.done
		if d.panicked != nil && panicked == nil {
			panicked = d.panicked
		}
		if d.err != nil && d.shard < firstShard {
			firstErr, firstShard = d.err, d.shard
		}
	}
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}

// startWorkers launches one persistent goroutine per shard.
func (sn *ShardedNetwork) startWorkers() {
	if sn.start != nil {
		return
	}
	sn.start = make([]chan Time, len(sn.nets))
	sn.done = make(chan shardDone, len(sn.nets))
	for s := range sn.nets {
		sn.start[s] = make(chan Time, 1)
		sn.workers.Add(1)
		go func(s int) {
			defer sn.workers.Done()
			for t := range sn.start[s] {
				sn.runOneTick(s, t)
			}
		}(s)
	}
}

// runOneTick runs one shard tick on a worker goroutine, converting a panic
// into a report the coordinator re-raises (a bare panic in a worker would
// kill the process past every caller's recover).
func (sn *ShardedNetwork) runOneTick(s int, t Time) {
	d := shardDone{shard: s}
	defer func() {
		if p := recover(); p != nil {
			d.panicked = fmt.Sprintf("%v\n%s", p, debug.Stack())
		}
		sn.done <- d
	}()
	d.err = sn.nets[s].runTick(t)
}

func (sn *ShardedNetwork) stopWorkers() {
	for _, ch := range sn.start {
		close(ch)
	}
	sn.workers.Wait()
	sn.start, sn.done = nil, nil
}

// nextTick returns the earliest tick with pending work — a queued event in
// any shard or a scheduled control callback.
func (sn *ShardedNetwork) nextTick() (Time, bool) {
	var best Time
	ok := false
	if len(sn.ctrl) > 0 {
		best, ok = sn.ctrl[0].time, true
	}
	for _, net := range sn.nets {
		if t, pending := net.peekTime(); pending && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// exchange drains every shard's outbox in canonical order — shards ascending,
// each outbox in send order — re-enqueueing each event into its destination
// shard. The double loop is single-threaded at the barrier, so the
// destination sequence numbers (and with them every bucket's delivery order)
// are deterministic. Boxed payloads move between the side tables here;
// reference payloads move through the MigrateRef hook.
func (sn *ShardedNetwork) exchange() {
	for s, src := range sn.nets {
		for i := range src.outbox {
			ev := src.outbox[i]
			if ev.time <= sn.now {
				// A zero-lookahead send (Post across slabs, a zero LinkDelay)
				// would have to be delivered into a tick that may already be
				// processing; the conservative barrier cannot order it.
				panic(fmt.Sprintf("simnet: cross-shard event for t=%d at barrier t=%d (zero-lookahead send)", ev.time, sn.now))
			}
			d := sn.ShardOf(ev.to)
			dst := sn.nets[d]
			if ev.kind != kindControl {
				// Kind IDs are per-shard interning tables. Handlers that intern
				// through ShardedNetwork.Kind get identical IDs everywhere and
				// this re-intern is a map hit returning ev.kind unchanged; for
				// lazily interned kinds (string-based Send) it translates the
				// source shard's ID into the destination's.
				ev.kind = dst.intern(src.kindNames[ev.kind])
			}
			if ev.box != noBox {
				ev.box = dst.box(src.unbox(ev.box))
			}
			if ev.ref != NoRef && sn.opts.MigrateRef != nil {
				ev.ref = sn.opts.MigrateRef(s, d, ev.kind, ev.ref)
			}
			dst.enqueue(ev)
		}
		src.outbox = src.outbox[:0]
	}
}

// totalEvents sums the processed-event counters across shards and control.
func (sn *ShardedNetwork) totalEvents() int {
	total := sn.control
	for _, net := range sn.nets {
		total += net.stats.Events
	}
	return total
}

// Stats merges the per-shard statistics: counters sum, ByKind merges by kind
// name, FinalTime is the latest processed tick (control callbacks included).
// Events covers deliveries, drops, control callbacks — the same population a
// sequential run counts, and the same totals.
func (sn *ShardedNetwork) Stats() Stats {
	merged := Stats{ByKind: make(map[string]int)}
	for _, net := range sn.nets {
		s := net.Stats()
		merged.Delivered += s.Delivered
		merged.Dropped += s.Dropped
		merged.Timers += s.Timers
		merged.Events += s.Events
		if s.FinalTime > merged.FinalTime {
			merged.FinalTime = s.FinalTime
		}
		for k, v := range s.ByKind {
			merged.ByKind[k] += v
		}
	}
	merged.Control = sn.control
	merged.Events += sn.control
	if sn.final > merged.FinalTime {
		merged.FinalTime = sn.final
	}
	return merged
}
