package simnet

import "mccmesh/internal/telemetry"

// The event queue of the simulator: a calendar queue (timing wheel) of
// per-tick buckets for the near future, with a plain binary heap of events as
// the fallback for the far future.
//
// Design notes, because determinism is load-bearing here:
//
//   - The wheel covers the half-open window [now, now+wheelSize). Within the
//     window, tick t maps to ring slot t & wheelMask — unique, because the
//     window is exactly one ring revolution — so a bucket only ever holds
//     events of a single tick.
//   - Sequence numbers increase monotonically, so appending to a bucket keeps
//     it sorted by seq, and draining a bucket front to back reproduces the
//     (time, seq) order of the binary-heap scheduler it replaced.
//   - Far-future events (beyond the window — distant timers, At callbacks)
//     go to the heap, which pops in (time, seq) order. Whenever the clock
//     advances to t, every heap event with time < t+window migrates into its
//     ring slot *before* any new event can be enqueued for those ticks, so
//     migrated events (small seq) land ahead of later direct appends (large
//     seq) and bucket order stays seq-sorted. The target slots are free at
//     migration time: they correspond to ticks that were drained before t.
//   - Drained buckets are reset to length zero but keep their backing arrays
//     (the free-list), so steady-state enqueue/dequeue allocates nothing.
type calendarQueue struct {
	ring  [][]event
	count int // events resident in the ring
	far   farHeap
	// spare and spareBig are the free-lists of drained bucket arrays, split at
	// bigBucketCap. A run shorter than one ring revolution touches every slot
	// at most once, so in-place slot reuse alone would allocate a fresh array
	// per tick; handing drained arrays to the next tick that needs one keeps
	// the working set at roughly the number of simultaneously non-empty
	// buckets. The size split matters because bucket sizes are bimodal: each
	// tick has one big delivery bucket and dozens of near-empty timer buckets.
	// A single mixed free-list hands the delivery bucket a tiny array and lets
	// append realloc-and-discard its way up the doubling ladder every tick;
	// keeping the big arrays apart lets growth jump straight onto one.
	spare    [][]event
	spareBig [][]event
	// arena is the current storage chunk bucket growth carves from. The spare
	// free-lists bound the steady state, but the ramp-up still used to pay one
	// allocator round trip per doubling of every bucket that grows before the
	// spare population catches up — a couple of thousand small allocations per
	// run. Carving doubled arrays out of chunk-sized slabs instead collapses
	// the ramp to a handful of chunk allocations; outgrown fragments are
	// parked on the free-lists and serve other slots, so the waste is bounded
	// by roughly twice the peak ring occupancy for the lifetime of the run.
	arena []event
	// tel receives queue counters (heap fallbacks, migrations, bucket reuse,
	// peak occupancy); nil — the default — costs one predicted branch per hook.
	tel *telemetry.Sink
}

const (
	// bigBucketCap splits the spare free-lists: drained arrays at or beyond it
	// are parked separately so bucket growth can adopt one directly.
	bigBucketCap = 256

	// arenaChunk is the carving granularity of the bucket-storage arena, in
	// events: large enough that a run's ramp-up costs a handful of chunk
	// allocations, small enough that the last partially-used chunk wastes
	// little.
	arenaChunk = 4096

	wheelBits = 11
	// wheelSize is the width of the calendar window in ticks. Link delays are
	// tiny and traffic timers are geometric with means well under this, so in
	// practice only far-tail timers and At control events hit the heap.
	wheelSize = Time(1) << wheelBits
	wheelMask = wheelSize - 1
)

// event is one scheduled occurrence, stored by value in the queue. It is
// deliberately pointer-free: boxed payloads and control callbacks live in the
// Network's side table (event.box indexes it), so the garbage collector never
// scans the queue and drained buckets need no zeroing.
type event struct {
	time     Time
	seq      int64
	sendTime Time
	from, to int32 // dense node IDs; mesh.NoNeighbor for control/off-mesh
	kind     KindID
	ref      int32 // payload reference (SendRef/AfterRef), or NoRef
	box      int32 // index into Network.boxed, or noBox
	// ctrl marks a control event: Drain runs the boxed callback instead of
	// delivering the envelope to a node.
	ctrl bool
}

// noBox marks an event without a boxed payload.
const noBox int32 = -1

func (q *calendarQueue) init() {
	q.ring = make([][]event, wheelSize)
}

// pending reports whether any event is queued.
func (q *calendarQueue) pending() bool { return q.count > 0 || len(q.far) > 0 }

// push buckets an event: ring when it falls within the window (measured from
// now), heap otherwise. threshold is the effective window width (tests shrink
// it to force heap traffic; it never exceeds wheelSize).
func (q *calendarQueue) push(ev event, now, threshold Time) {
	if ev.time < now+threshold {
		q.append(ev.time&wheelMask, ev)
	} else {
		q.tel.Inc(telemetry.SimHeapEvents)
		q.far.push(ev)
	}
}

// append adds an event to a ring slot, seeding empty slots from the spare
// free-list and switching a slot that outgrows a small array onto a drained
// big one (parking the small array back) so the per-tick delivery bucket
// never realloc-discards its way up the append doubling ladder. Growth the
// free-lists cannot serve carves a doubled array from the arena instead of
// going to the allocator.
func (q *calendarQueue) append(slot Time, ev event) {
	b := q.ring[slot]
	if b == nil {
		if k := len(q.spare); k > 0 {
			b = q.spare[k-1]
			q.spare = q.spare[:k-1]
			q.tel.Inc(telemetry.SimBucketReuses)
		}
	}
	if len(b) == cap(b) {
		if cap(b) < bigBucketCap {
			if k := len(q.spareBig); k > 0 {
				nb := q.spareBig[k-1][:len(b)]
				q.spareBig = q.spareBig[:k-1]
				copy(nb, b)
				q.park(b)
				b = nb
				q.tel.Inc(telemetry.SimBucketReuses)
			}
		}
		if len(b) == cap(b) {
			nb := q.carve(growCap(cap(b)))[:len(b)]
			copy(nb, b)
			q.park(b)
			b = nb
		}
	}
	b = append(b, ev)
	q.ring[slot] = b
	q.count++
	q.tel.Max(telemetry.SimBucketPeak, int64(len(b)))
}

// growCap doubles a bucket capacity, seeding empty buckets at a size that
// holds a slot's typical timer population without an immediate regrow.
func growCap(c int) int {
	if c == 0 {
		return 8
	}
	return 2 * c
}

// carve cuts an n-event array out of the arena, starting a fresh chunk when
// the current one cannot fit it. The three-index slice caps the result at
// exactly n, so a bucket appending at capacity can never spill into storage
// carved for another slot.
func (q *calendarQueue) carve(n int) []event {
	if len(q.arena)+n > cap(q.arena) {
		size := arenaChunk
		if n > size {
			size = n
		}
		q.arena = make([]event, 0, size)
	}
	off := len(q.arena)
	q.arena = q.arena[:off+n]
	return q.arena[off : off : off+n]
}

// park returns a drained (or outgrown) backing array to its free-list.
func (q *calendarQueue) park(b []event) {
	if cap(b) >= bigBucketCap {
		q.spareBig = append(q.spareBig, b[:0])
	} else if cap(b) > 0 {
		q.spare = append(q.spare, b[:0])
	}
}

// nextTime returns the tick of the earliest queued event. The caller
// guarantees pending(). Ring events always precede heap events (the heap only
// holds times at or beyond the window), so the ring is scanned first.
func (q *calendarQueue) nextTime(now Time) Time {
	if q.count > 0 {
		for t := now; ; t++ {
			if len(q.ring[t&wheelMask]) > 0 {
				return t
			}
		}
	}
	return q.far[0].time
}

// migrate moves every heap event with time < t+threshold into its ring slot.
// Called exactly when the clock advances to t, before processing: the slots
// involved were drained earlier, and heap pops arrive in (time, seq) order,
// so every bucket stays seq-sorted.
func (q *calendarQueue) migrate(t, threshold Time) {
	for len(q.far) > 0 && q.far[0].time < t+threshold {
		ev := q.far.pop()
		q.tel.Inc(telemetry.SimHeapMigrations)
		q.append(ev.time&wheelMask, ev)
	}
}

// consume removes the first n events of a drained bucket, recycling the
// backing array when the bucket is fully processed. Events are pointer-free,
// so no zeroing is needed.
func (q *calendarQueue) consume(bucket *[]event, n int) {
	q.count -= n
	if n == len(*bucket) {
		q.park(*bucket)
		*bucket = nil
		return
	}
	// Partial consumption only happens on event-budget abort.
	*bucket = (*bucket)[n:]
}

// farHeap is a binary min-heap of events ordered by (time, seq), implemented
// directly on the slice to avoid container/heap's interface boxing.
type farHeap []event

func (h farHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *farHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *farHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old = old[:n]
	*h = old
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && old.less(l, smallest) {
			smallest = l
		}
		if r < n && old.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
	return top
}
