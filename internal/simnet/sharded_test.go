package simnet

import (
	"reflect"
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// floodStats runs the flood protocol over a fresh faulted mesh, sequentially
// (shards <= 1) or sharded, and returns the merged statistics plus every
// node's first-seen time keyed by dense ID.
func floodStats(t *testing.T, shards int) (Stats, map[int]Time) {
	t.Helper()
	m := mesh.New3D(6, 6, 6)
	m.AddFaults(grid.Point{X: 1, Y: 1, Z: 1}, grid.Point{X: 4, Y: 2, Z: 3})

	seen := make(map[int]Time)
	collect := func(net *Network) {
		m.ForEach(func(p grid.Point) {
			if at, ok := net.Store(p)["seen"]; ok {
				seen[int(m.ID(p))] = at.(Time)
			}
		})
	}

	if shards <= 1 {
		net := New(m, floodHandler{})
		net.Post(grid.Point{}, "flood", "token")
		stats := mustRun(t, net)
		collect(net)
		return stats, seen
	}

	slabs := mesh.SlabPartition(m, shards)
	handlers := make([]Handler, len(slabs))
	for i := range handlers {
		handlers[i] = floodHandler{}
	}
	sn := NewSharded(m, handlers, slabs, ShardedOptions{})
	origin := sn.nets[sn.ShardOf(0)]
	origin.Post(grid.Point{}, "flood", "token")
	stats, err := sn.Run()
	if err != nil {
		t.Fatalf("sharded Run: %v", err)
	}
	for _, net := range sn.nets {
		collect(net)
	}
	return stats, seen
}

// TestShardedFloodMatchesSequential is the engine-level parity check: the
// flood protocol — every delivery, every drop, every per-node first-seen time
// — is bit-identical between one Network and a ShardedNetwork at several
// shard counts. Sharding must change wall-clock behaviour only.
func TestShardedFloodMatchesSequential(t *testing.T) {
	wantStats, wantSeen := floodStats(t, 1)
	if wantStats.Delivered == 0 {
		t.Fatal("sequential flood delivered nothing; the reference is broken")
	}
	for _, shards := range []int{2, 3, 6} {
		gotStats, gotSeen := floodStats(t, shards)
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Errorf("%d shards: stats = %+v, want %+v", shards, gotStats, wantStats)
		}
		if !reflect.DeepEqual(gotSeen, wantSeen) {
			t.Errorf("%d shards: per-node first-seen times diverge from the sequential run", shards)
		}
	}
}

// TestShardedControlOrdering pins the coordinator's control contract: At
// callbacks fire at their tick in scheduling order, before that tick's
// deliveries, and are counted into Stats (Control and Events) exactly as a
// sequential Network counts its own control events.
func TestShardedControlOrdering(t *testing.T) {
	m := mesh.New3D(4, 4, 4)
	slabs := mesh.SlabPartition(m, 2)
	sn := NewSharded(m, []Handler{floodHandler{}, floodHandler{}}, slabs, ShardedOptions{})

	var order []int
	sn.At(5, func() { order = append(order, 1) })
	sn.At(3, func() { order = append(order, 0) })
	sn.At(5, func() { order = append(order, 2) })
	sn.nets[0].Post(grid.Point{}, "flood", "x")

	stats, err := sn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(order, want) {
		t.Errorf("control callbacks ran in order %v, want %v (time first, then scheduling order)", order, want)
	}
	if stats.Control != 3 {
		t.Errorf("Stats.Control = %d, want 3", stats.Control)
	}
	if stats.Events != stats.Delivered+stats.Dropped+stats.Control {
		t.Errorf("Events = %d, want Delivered(%d) + Dropped(%d) + Control(%d)",
			stats.Events, stats.Delivered, stats.Dropped, stats.Control)
	}
}

// TestShardedZeroLookaheadGuard: the barrier cannot order a cross-shard event
// landing at the current tick, so the exchange must fail loudly instead of
// silently reordering it.
func TestShardedZeroLookaheadGuard(t *testing.T) {
	m := mesh.New3D(4, 4, 4)
	slabs := mesh.SlabPartition(m, 2)
	sn := NewSharded(m, []Handler{floodHandler{}, floodHandler{}}, slabs, ShardedOptions{})
	// Forge a same-tick cross-shard event: Post is self-addressed, so reach
	// into the outbox machinery directly with a doctored destination.
	sn.nets[0].outbox = append(sn.nets[0].outbox, event{time: 0, to: slabs[1].Lo})
	defer func() {
		if recover() == nil {
			t.Error("exchange of a same-tick cross-shard event did not panic")
		}
	}()
	sn.exchange()
}
