package simnet

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/telemetry"
)

// mustRun drains a network in a test that does not expect budget exhaustion.
func mustRun(t *testing.T, net *Network) Stats {
	t.Helper()
	stats, err := net.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

// floodHandler floods a token to every node and records the hop distance at
// which each node first saw it.
type floodHandler struct{}

func (floodHandler) Init(ctx *Context) {}

func (floodHandler) Receive(ctx *Context, env *Envelope) {
	if _, seen := ctx.Store()["seen"]; seen {
		return
	}
	ctx.Store()["seen"] = ctx.Time()
	ctx.Broadcast("flood", env.Payload)
}

func TestFloodReachesEveryHealthyNode(t *testing.T) {
	m := mesh.New3D(4, 4, 4)
	m.AddFaults(grid.Point{X: 1, Y: 1, Z: 1})
	net := New(m, floodHandler{})
	net.Post(grid.Point{}, "flood", "token")
	stats := mustRun(t, net)

	reached := 0
	m.ForEach(func(p grid.Point) {
		if m.IsFaulty(p) {
			return
		}
		if _, ok := net.Store(p)["seen"]; ok {
			reached++
		}
	})
	if reached != m.NodeCount()-1 {
		t.Errorf("flood reached %d healthy nodes, want %d", reached, m.NodeCount()-1)
	}
	if stats.Delivered == 0 || stats.ByKind["flood"] != stats.Delivered {
		t.Error("statistics not recorded")
	}
	if stats.Dropped == 0 {
		t.Error("messages to the faulty node should have been dropped")
	}
}

func TestFloodTimeEqualsDistance(t *testing.T) {
	m := mesh.New2D(5, 5)
	net := New(m, floodHandler{})
	src := grid.Point{}
	net.Post(src, "flood", nil)
	mustRun(t, net)
	m.ForEach(func(p grid.Point) {
		seen, ok := net.Store(p)["seen"].(Time)
		if !ok {
			t.Fatalf("node %v never saw the token", p)
		}
		// With unit link delay, the first arrival time is the hop distance
		// (the initial Post is delivered at time 0).
		if int(seen) != grid.Manhattan(src, p) {
			t.Errorf("node %v first saw the token at %d, want %d", p, seen, grid.Manhattan(src, p))
		}
	})
}

// pingPong bounces a counter between a node and its +X neighbour a limited
// number of times.
type pingPong struct{ limit int }

func (pingPong) Init(ctx *Context) {}

func (h pingPong) Receive(ctx *Context, env *Envelope) {
	switch env.Kind {
	case "start":
		ctx.SendDir(grid.XPos, "pong", 0)
	case "pong":
		n := env.Payload.(int)
		if n >= h.limit {
			return
		}
		ctx.Send(env.From, "pong", n+1)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	run := func() Stats {
		m := mesh.New2D(3, 3)
		net := New(m, pingPong{limit: 10})
		net.Post(grid.Point{X: 1, Y: 1}, "start", nil)
		return mustRun(t, net)
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.FinalTime != b.FinalTime || a.Events != b.Events {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
	if a.ByKind["pong"] != 11 {
		t.Errorf("pong count = %d, want 11", a.ByKind["pong"])
	}
}

func TestSendRejectsNonNeighbors(t *testing.T) {
	m := mesh.New2D(4, 4)
	net := New(m, floodHandler{})
	ctx := &Context{net: net, self: grid.Point{}, selfID: 0}
	defer func() {
		if recover() == nil {
			t.Error("Send to a non-neighbour should panic")
		}
	}()
	ctx.Send(grid.Point{X: 3, Y: 3}, "bad", nil)
}

func TestSendDirOffMesh(t *testing.T) {
	m := mesh.New2D(3, 3)
	net := New(m, floodHandler{})
	ctx := &Context{net: net, self: grid.Point{}, selfID: 0}
	if ctx.SendDir(grid.XNeg, "x", nil) {
		t.Error("SendDir off the mesh should report false")
	}
	if !ctx.SendDir(grid.XPos, "x", nil) {
		t.Error("SendDir to a valid neighbour should report true")
	}
}

type timerHandler struct{ fired *int }

func (timerHandler) Init(ctx *Context) {}

func (h timerHandler) Receive(ctx *Context, env *Envelope) {
	if env.Kind == "start" {
		ctx.After(5, "timer", nil)
		return
	}
	*h.fired++
}

func TestTimers(t *testing.T) {
	m := mesh.New2D(3, 3)
	fired := 0
	net := New(m, timerHandler{fired: &fired})
	net.Post(grid.Point{X: 1, Y: 1}, "start", nil)
	stats := mustRun(t, net)
	if fired != 1 {
		t.Errorf("timer fired %d times, want 1", fired)
	}
	if stats.FinalTime != 5 {
		t.Errorf("final time = %d, want 5", stats.FinalTime)
	}
	if stats.Timers != 1 {
		t.Errorf("timer count = %d, want 1", stats.Timers)
	}
}

func TestAtRunsControlCallbacksInTimeOrder(t *testing.T) {
	m := mesh.New2D(3, 3)
	net := New(m, pingPong{limit: 10})
	var times []Time
	net.At(3, func() { times = append(times, net.Now()) })
	net.At(7, func() {
		times = append(times, net.Now())
		// Control callbacks may mutate the mesh mid-run.
		m.SetFaulty(grid.Point{X: 2, Y: 1}, true)
	})
	net.Post(grid.Point{X: 1, Y: 1}, "start", nil)
	stats := mustRun(t, net)
	if len(times) != 2 || times[0] != 3 || times[1] != 7 {
		t.Errorf("control callbacks ran at %v, want [3 7]", times)
	}
	if stats.Control != 2 {
		t.Errorf("control count = %d, want 2", stats.Control)
	}
	if !m.IsFaulty(grid.Point{X: 2, Y: 1}) {
		t.Error("mesh mutation from control callback lost")
	}
	// The ping-pong bounces between (1,1) and (2,1); once (2,1) turns faulty
	// at t=7 the remaining pongs are dropped.
	if stats.Dropped == 0 {
		t.Error("messages to the mid-run fault should have been dropped")
	}
}

func TestAtClampsPastTimes(t *testing.T) {
	m := mesh.New2D(2, 2)
	net := New(m, floodHandler{})
	fired := false
	net.At(-5, func() { fired = true })
	mustRun(t, net)
	if !fired {
		t.Error("control callback scheduled in the past should still run")
	}
}

func TestNeighborFaulty(t *testing.T) {
	m := mesh.New2D(3, 3)
	m.AddFaults(grid.Point{X: 1, Y: 0})
	net := New(m, floodHandler{})
	ctx := &Context{net: net, self: grid.Point{}, selfID: 0}
	if !ctx.NeighborFaulty(grid.XPos) {
		t.Error("faulty neighbour not reported")
	}
	if !ctx.NeighborFaulty(grid.YNeg) {
		t.Error("missing neighbour should count as faulty")
	}
	if ctx.NeighborFaulty(grid.YPos) {
		t.Error("healthy neighbour misreported")
	}
}

func TestEventBudgetReturnsError(t *testing.T) {
	m := mesh.New2D(3, 3)
	net := New(m, pingPong{limit: 1 << 30}, Options{MaxEvents: 100})
	net.Post(grid.Point{X: 1, Y: 1}, "start", nil)
	stats, err := net.Run()
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("Run error = %v, want ErrEventBudget", err)
	}
	if stats.Events != 100 {
		t.Errorf("processed %d events before aborting, want exactly the budget 100", stats.Events)
	}
}

// --- equal-time ordering and calendar/heap equivalence -----------------------

// order is one recorded delivery/control occurrence.
type order struct {
	T    Time
	Kind string
	Node grid.Point
	Seq  int // payload sequence stamped by the sender
}

// mixHandler exercises every scheduling surface at once: sends, zero-delay
// timers, same-tick posts and far-future timers, each stamped so the exact
// interleave is observable.
type mixHandler struct {
	log *[]order
	n   int
}

func (h *mixHandler) Init(ctx *Context) {}

func (h *mixHandler) Receive(ctx *Context, env *Envelope) {
	*h.log = append(*h.log, order{T: ctx.Time(), Kind: env.Kind, Node: ctx.Self(), Seq: env.Payload.(int)})
	if len(*h.log) > 400 {
		return
	}
	h.n++
	// Deterministic pseudo-random fan-out: a mix of near sends, equal-time
	// timers and far-future timers (beyond the calendar window, to force the
	// heap fallback and its migration path).
	switch h.n % 4 {
	case 0:
		ctx.SendDir(grid.Direction(h.n%4), "send", h.n)
		ctx.After(0, "zero-timer", h.n)
	case 1:
		ctx.After(Time(h.n%7), "timer", h.n)
	case 2:
		ctx.SendDir(grid.Direction((h.n+1)%4), "send", h.n)
		ctx.SendDir(grid.Direction((h.n+2)%4), "send", h.n)
	case 3:
		ctx.After(wheelSize+Time(h.n%500), "far-timer", h.n)
	}
}

// runMix drives the mix workload over a network with the given options and
// returns the recorded event order.
func runMix(t *testing.T, opts Options) []order {
	t.Helper()
	m := mesh.New2D(4, 4)
	var log []order
	net := New(m, &mixHandler{log: &log}, opts)
	net.Post(grid.Point{X: 1, Y: 1}, "start", 0)
	net.Post(grid.Point{X: 2, Y: 2}, "start", 0)
	net.At(2, func() { log = append(log, order{T: net.Now(), Kind: "control", Seq: -1}) })
	net.At(wheelSize+100, func() { log = append(log, order{T: net.Now(), Kind: "control", Seq: -2}) })
	if _, err := net.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return log
}

// TestCalendarMatchesHeapOrder is the scheduler-equivalence regression test:
// the calendar queue must reproduce, event for event, the order produced by
// the pure binary-heap scheduler (farThreshold: 1 sends every event through
// the heap fallback, which pops in exactly the old heap's (time, seq) order).
func TestCalendarMatchesHeapOrder(t *testing.T) {
	calendar := runMix(t, Options{})
	heap := runMix(t, Options{farThreshold: 1})
	if len(calendar) == 0 {
		t.Fatal("workload recorded no events")
	}
	if !reflect.DeepEqual(calendar, heap) {
		for i := range calendar {
			if i >= len(heap) || calendar[i] != heap[i] {
				t.Fatalf("event %d diverges: calendar=%+v heap=%+v", i, calendar[i], heap[i])
			}
		}
		t.Fatalf("calendar recorded %d events, heap %d", len(calendar), len(heap))
	}
}

// seqHandler records the interleave of equal-time events.
type seqHandler struct{ log *[]string }

func (seqHandler) Init(ctx *Context) {}

func (h seqHandler) Receive(ctx *Context, env *Envelope) {
	*h.log = append(*h.log, fmt.Sprintf("%s@%d", env.Kind, ctx.Time()))
	if env.Kind == "start" {
		// All three of these land on the same future tick; among equal times,
		// scheduling order must win regardless of event class.
		ctx.SendDir(grid.XPos, "send-a", nil) // scheduled 1st, t+1
		ctx.After(1, "timer-b", nil)          // scheduled 2nd, t+1
		ctx.SendDir(grid.YPos, "send-c", nil) // scheduled 3rd, t+1
	}
}

// TestEqualTimeOrderingAcrossEventClasses pins the tie-break discipline the
// paper experiments rely on: time first, then scheduling sequence — with At
// control callbacks interleaved by the same rule.
func TestEqualTimeOrderingAcrossEventClasses(t *testing.T) {
	m := mesh.New2D(3, 3)
	var log []string
	net := New(m, seqHandler{log: &log})
	net.Post(grid.Point{}, "start", nil)
	// Control callback scheduled after Post but before the handler runs: at
	// t=1 it must therefore run before the handler's three t=1 events... no —
	// it is scheduled second overall (seq 2), after the Post (seq 1), while
	// the sends are scheduled during delivery of the Post (seq 3..5).
	net.At(1, func() { log = append(log, fmt.Sprintf("control@%d", net.Now())) })
	if _, err := net.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"start@0", "control@1", "send-a@1", "timer-b@1", "send-c@1"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("equal-time order = %v, want %v", log, want)
	}
}

// refHandler exercises the SendRef/AfterRef fast path.
type refHandler struct {
	kind  KindID
	seen  *[]int32
	limit int
}

func (h *refHandler) Init(ctx *Context) {}

func (h *refHandler) Receive(ctx *Context, env *Envelope) {
	if env.KindID != h.kind {
		return
	}
	*h.seen = append(*h.seen, env.Ref)
	if len(*h.seen) >= h.limit {
		return
	}
	ctx.SendRef(grid.XPos, h.kind, env.Ref+1)
}

func TestSendRefCarriesReferences(t *testing.T) {
	m := mesh.New2D(8, 1)
	var seen []int32
	h := &refHandler{seen: &seen, limit: 5}
	net := New(m, h)
	h.kind = net.Kind("ref")
	ctx := &Context{net: net, self: grid.Point{}, selfID: 0}
	if !ctx.SendRef(grid.XPos, h.kind, 7) {
		t.Fatal("SendRef to a valid neighbour should succeed")
	}
	stats := mustRun(t, net)
	want := []int32{7, 8, 9, 10, 11}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("refs = %v, want %v", seen, want)
	}
	if stats.ByKind["ref"] != 5 {
		t.Errorf("ByKind[ref] = %d, want 5 (interned kinds must materialise in Stats)", stats.ByKind["ref"])
	}
}

func TestKindInterning(t *testing.T) {
	m := mesh.New2D(2, 2)
	net := New(m, floodHandler{})
	a := net.Kind("alpha")
	if net.Kind("alpha") != a {
		t.Error("interning the same kind twice must return the same ID")
	}
	if net.KindName(a) != "alpha" {
		t.Errorf("KindName(%d) = %q, want alpha", a, net.KindName(a))
	}
	if b := net.Kind("beta"); b == a {
		t.Error("distinct kinds must get distinct IDs")
	}
}

func TestStatsByKindIsCached(t *testing.T) {
	m := mesh.New2D(3, 3)
	net := New(m, pingPong{limit: 10})
	net.Post(grid.Point{X: 1, Y: 1}, "start", nil)
	mustRun(t, net)
	a := net.Stats()
	b := net.Stats()
	if reflect.ValueOf(a.ByKind).Pointer() != reflect.ValueOf(b.ByKind).Pointer() {
		t.Error("Stats() rebuilt ByKind with no deliveries in between")
	}
	if a.ByKind["pong"] != 11 {
		t.Errorf("ByKind[pong] = %d, want 11", a.ByKind["pong"])
	}
	// Mid-run polling must see fresh counts once deliveries advance.
	m2 := mesh.New2D(3, 3)
	net2 := New(m2, pingPong{limit: 10})
	net2.Post(grid.Point{X: 1, Y: 1}, "start", nil)
	var mid, end int
	net2.At(3, func() { mid = net2.Stats().ByKind["pong"] })
	mustRun(t, net2)
	end = net2.Stats().ByKind["pong"]
	if mid == 0 || mid >= end {
		t.Errorf("mid-run ByKind[pong] = %d, end = %d; cache must refresh as deliveries advance", mid, end)
	}
}

func TestQueueTelemetryCounters(t *testing.T) {
	m := mesh.New2D(4, 4)
	var log []order
	sink := telemetry.NewSink()
	net := New(m, &mixHandler{log: &log}, Options{Telemetry: sink})
	net.Post(grid.Point{X: 1, Y: 1}, "start", 0)
	mustRun(t, net)
	// The mix workload schedules far-future timers beyond the calendar window,
	// so both the heap fallback and its migration path must have fired.
	if sink.Get(telemetry.SimHeapEvents) == 0 {
		t.Error("SimHeapEvents = 0; far timers should have hit the heap fallback")
	}
	if sink.Get(telemetry.SimHeapMigrations) == 0 {
		t.Error("SimHeapMigrations = 0; heap events should have migrated into the ring")
	}
	if sink.Get(telemetry.SimBucketReuses) == 0 {
		t.Error("SimBucketReuses = 0; drained buckets should have been recycled")
	}
	if sink.Get(telemetry.SimBucketPeak) < 1 {
		t.Error("SimBucketPeak gauge never recorded an occupied bucket")
	}
}
