package simnet

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// floodHandler floods a token to every node and records the hop distance at
// which each node first saw it.
type floodHandler struct{}

func (floodHandler) Init(ctx *Context) {}

func (floodHandler) Receive(ctx *Context, env Envelope) {
	if _, seen := ctx.Store()["seen"]; seen {
		return
	}
	ctx.Store()["seen"] = ctx.Time()
	ctx.Broadcast("flood", env.Payload)
}

func TestFloodReachesEveryHealthyNode(t *testing.T) {
	m := mesh.New3D(4, 4, 4)
	m.AddFaults(grid.Point{X: 1, Y: 1, Z: 1})
	net := New(m, floodHandler{})
	net.Post(grid.Point{}, "flood", "token")
	stats := net.Run()

	reached := 0
	m.ForEach(func(p grid.Point) {
		if m.IsFaulty(p) {
			return
		}
		if _, ok := net.Store(p)["seen"]; ok {
			reached++
		}
	})
	if reached != m.NodeCount()-1 {
		t.Errorf("flood reached %d healthy nodes, want %d", reached, m.NodeCount()-1)
	}
	if stats.Delivered == 0 || stats.ByKind["flood"] != stats.Delivered {
		t.Error("statistics not recorded")
	}
	if stats.Dropped == 0 {
		t.Error("messages to the faulty node should have been dropped")
	}
}

func TestFloodTimeEqualsDistance(t *testing.T) {
	m := mesh.New2D(5, 5)
	net := New(m, floodHandler{})
	src := grid.Point{}
	net.Post(src, "flood", nil)
	net.Run()
	m.ForEach(func(p grid.Point) {
		seen, ok := net.Store(p)["seen"].(Time)
		if !ok {
			t.Fatalf("node %v never saw the token", p)
		}
		// With unit link delay, the first arrival time is the hop distance
		// (the initial Post is delivered at time 0).
		if int(seen) != grid.Manhattan(src, p) {
			t.Errorf("node %v first saw the token at %d, want %d", p, seen, grid.Manhattan(src, p))
		}
	})
}

// pingPong bounces a counter between a node and its +X neighbour a limited
// number of times.
type pingPong struct{ limit int }

func (pingPong) Init(ctx *Context) {}

func (h pingPong) Receive(ctx *Context, env Envelope) {
	switch env.Kind {
	case "start":
		ctx.SendDir(grid.XPos, "pong", 0)
	case "pong":
		n := env.Payload.(int)
		if n >= h.limit {
			return
		}
		ctx.Send(env.From, "pong", n+1)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	run := func() Stats {
		m := mesh.New2D(3, 3)
		net := New(m, pingPong{limit: 10})
		net.Post(grid.Point{X: 1, Y: 1}, "start", nil)
		return net.Run()
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.FinalTime != b.FinalTime || a.Events != b.Events {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
	if a.ByKind["pong"] != 11 {
		t.Errorf("pong count = %d, want 11", a.ByKind["pong"])
	}
}

func TestSendRejectsNonNeighbors(t *testing.T) {
	m := mesh.New2D(4, 4)
	net := New(m, floodHandler{})
	ctx := &Context{net: net, self: grid.Point{}}
	defer func() {
		if recover() == nil {
			t.Error("Send to a non-neighbour should panic")
		}
	}()
	ctx.Send(grid.Point{X: 3, Y: 3}, "bad", nil)
}

func TestSendDirOffMesh(t *testing.T) {
	m := mesh.New2D(3, 3)
	net := New(m, floodHandler{})
	ctx := &Context{net: net, self: grid.Point{}}
	if ctx.SendDir(grid.XNeg, "x", nil) {
		t.Error("SendDir off the mesh should report false")
	}
	if !ctx.SendDir(grid.XPos, "x", nil) {
		t.Error("SendDir to a valid neighbour should report true")
	}
}

type timerHandler struct{ fired *int }

func (timerHandler) Init(ctx *Context) {}

func (h timerHandler) Receive(ctx *Context, env Envelope) {
	if env.Kind == "start" {
		ctx.After(5, "timer", nil)
		return
	}
	*h.fired++
}

func TestTimers(t *testing.T) {
	m := mesh.New2D(3, 3)
	fired := 0
	net := New(m, timerHandler{fired: &fired})
	net.Post(grid.Point{X: 1, Y: 1}, "start", nil)
	stats := net.Run()
	if fired != 1 {
		t.Errorf("timer fired %d times, want 1", fired)
	}
	if stats.FinalTime != 5 {
		t.Errorf("final time = %d, want 5", stats.FinalTime)
	}
	if stats.Timers != 1 {
		t.Errorf("timer count = %d, want 1", stats.Timers)
	}
}

func TestAtRunsControlCallbacksInTimeOrder(t *testing.T) {
	m := mesh.New2D(3, 3)
	net := New(m, pingPong{limit: 10})
	var times []Time
	net.At(3, func() { times = append(times, net.Now()) })
	net.At(7, func() {
		times = append(times, net.Now())
		// Control callbacks may mutate the mesh mid-run.
		m.SetFaulty(grid.Point{X: 2, Y: 1}, true)
	})
	net.Post(grid.Point{X: 1, Y: 1}, "start", nil)
	stats := net.Run()
	if len(times) != 2 || times[0] != 3 || times[1] != 7 {
		t.Errorf("control callbacks ran at %v, want [3 7]", times)
	}
	if stats.Control != 2 {
		t.Errorf("control count = %d, want 2", stats.Control)
	}
	if !m.IsFaulty(grid.Point{X: 2, Y: 1}) {
		t.Error("mesh mutation from control callback lost")
	}
	// The ping-pong bounces between (1,1) and (2,1); once (2,1) turns faulty
	// at t=7 the remaining pongs are dropped.
	if stats.Dropped == 0 {
		t.Error("messages to the mid-run fault should have been dropped")
	}
}

func TestAtClampsPastTimes(t *testing.T) {
	m := mesh.New2D(2, 2)
	net := New(m, floodHandler{})
	fired := false
	net.At(-5, func() { fired = true })
	net.Run()
	if !fired {
		t.Error("control callback scheduled in the past should still run")
	}
}

func TestNeighborFaulty(t *testing.T) {
	m := mesh.New2D(3, 3)
	m.AddFaults(grid.Point{X: 1, Y: 0})
	net := New(m, floodHandler{})
	ctx := &Context{net: net, self: grid.Point{}}
	if !ctx.NeighborFaulty(grid.XPos) {
		t.Error("faulty neighbour not reported")
	}
	if !ctx.NeighborFaulty(grid.YNeg) {
		t.Error("missing neighbour should count as faulty")
	}
	if ctx.NeighborFaulty(grid.YPos) {
		t.Error("healthy neighbour misreported")
	}
}

func TestEventBudgetPanics(t *testing.T) {
	m := mesh.New2D(3, 3)
	net := New(m, pingPong{limit: 1 << 30}, Options{MaxEvents: 100})
	net.Post(grid.Point{X: 1, Y: 1}, "start", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected the event budget to abort the runaway protocol")
		}
	}()
	net.Run()
}
