package simnet

// Benchmarks for the event core: the calendar queue and the dense-ID delivery
// path, isolated from routing and traffic logic. The `events/sec` metric is
// the repository's north-star unit (see PERFORMANCE.md).

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// chainHandler forwards a reference along +X, wrapping to the next row via a
// timer, for a fixed number of hops — pure event churn on the Ref fast path.
type chainHandler struct {
	kind  KindID
	hops  int
	limit int
}

func (h *chainHandler) Init(ctx *Context) {}

func (h *chainHandler) Receive(ctx *Context, env *Envelope) {
	h.hops++
	if h.hops >= h.limit {
		return
	}
	if !ctx.SendRef(grid.XPos, h.kind, env.Ref) {
		ctx.AfterRef(3, h.kind, env.Ref) // bounce off the wall after a pause
	}
}

// BenchmarkEventChurnRef measures raw enqueue/dequeue/deliver throughput of
// the calendar queue with value events and no payload boxing.
func BenchmarkEventChurnRef(b *testing.B) {
	m := mesh.New2D(64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := &chainHandler{limit: 100_000}
		net := New(m, h, Options{MaxEvents: 200_000})
		h.kind = net.Kind("chain")
		net.Post(grid.Point{}, "chain", nil)
		stats, err := net.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Events), "events/op")
	}
}

// broadcastHandler floods boxed payloads — the slow (protocol) path with `any`
// boxing through the side table.
type broadcastHandler struct{ rounds int }

func (broadcastHandler) Init(ctx *Context) {}

func (h broadcastHandler) Receive(ctx *Context, env *Envelope) {
	n := env.Payload.(int)
	if n >= h.rounds {
		return
	}
	ctx.Broadcast("wave", n+1)
}

// BenchmarkEventChurnBoxed measures the boxed-payload path protocols use.
func BenchmarkEventChurnBoxed(b *testing.B) {
	m := mesh.New3D(8, 8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := New(m, broadcastHandler{rounds: 6}, Options{MaxEvents: 2_000_000})
		net.Post(grid.Point{X: 4, Y: 4, Z: 4}, "wave", 0)
		stats, err := net.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Events), "events/op")
	}
}

// timerHeavyHandler schedules far-future timers so the heap fallback and its
// migration path are exercised, not just the ring.
type timerHeavyHandler struct{ fired, limit int }

func (h *timerHeavyHandler) Init(ctx *Context) {}

func (h *timerHeavyHandler) Receive(ctx *Context, env *Envelope) {
	h.fired++
	if h.fired >= h.limit {
		return
	}
	// Alternate near ring hits and far heap hits.
	if h.fired%2 == 0 {
		ctx.After(5, "t", nil)
	} else {
		ctx.After(wheelSize+100, "t", nil)
	}
}

// BenchmarkFarTimerMigration measures the heap-fallback round trip.
func BenchmarkFarTimerMigration(b *testing.B) {
	m := mesh.New2D(2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := &timerHeavyHandler{limit: 20_000}
		net := New(m, h, Options{MaxEvents: 100_000})
		net.Post(grid.Point{}, "t", nil)
		if _, err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
