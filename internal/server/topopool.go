package server

import (
	"sync"
	"sync/atomic"

	"mccmesh/internal/mesh"
	"mccmesh/internal/scenario"
)

// TopoPool is the shared-topology layer of the scenario-execution server:
// jobs whose mesh/fault configuration hash (scenario.Spec.TopoKey) is equal
// draw their trial meshes from one immutable prototype instead of each
// rebuilding the topology tables. A prototype is a fault-free mesh that is
// never handed out or mutated — trials receive Clones, which share the
// read-only neighbour/point tables and copy only the fault bitset, so
// concurrent jobs (and the parallel trial workers inside each job) run
// re-entrantly over shared read-only state.
type TopoPool struct {
	mu      sync.Mutex
	max     int
	entries map[string]*topoEntry
	order   []string // insertion order, for FIFO eviction of idle entries
	shares  int64    // Source calls answered by an existing prototype
	retired int64    // clones handed out by since-evicted entries
}

// topoEntry is one pooled prototype. clones is read/written atomically: the
// source closure runs on job goroutines while Stats reads from HTTP handlers.
type topoEntry struct {
	key    string
	proto  *mesh.Mesh
	active int32 // jobs currently holding a source over this prototype
	clones int64
}

// NewTopoPool returns a pool retaining at most max distinct topologies
// (max <= 0 selects 64). Idle entries past the cap are evicted FIFO; entries
// with active jobs are never evicted.
func NewTopoPool(max int) *TopoPool {
	if max <= 0 {
		max = 64
	}
	return &TopoPool{max: max, entries: make(map[string]*topoEntry)}
}

// Source returns a trial-mesh factory for the spec (the function installed
// via scenario.Scenario.SetMeshSource) and a release to call when the job
// ends. The factory is safe for concurrent use: it clones the pooled
// prototype, which is immutable for the pool's lifetime.
func (p *TopoPool) Source(spec scenario.Spec) (src func() *mesh.Mesh, release func()) {
	key := spec.TopoKey()
	p.mu.Lock()
	e := p.entries[key]
	if e == nil {
		e = &topoEntry{key: key, proto: spec.Mesh.New()}
		p.entries[key] = e
		p.order = append(p.order, key)
		p.evictLocked()
	} else {
		p.shares++
	}
	atomic.AddInt32(&e.active, 1)
	p.mu.Unlock()
	return func() *mesh.Mesh {
			atomic.AddInt64(&e.clones, 1)
			return e.proto.Clone()
		}, func() {
			atomic.AddInt32(&e.active, -1)
		}
}

// evictLocked drops the oldest idle entries until the pool is within its cap.
// An entry that was evicted while a job still held its source stays usable —
// the closure owns the prototype — it just stops being shared with new jobs.
func (p *TopoPool) evictLocked() {
	for len(p.entries) > p.max {
		evicted := false
		for i, key := range p.order {
			e := p.entries[key]
			if e != nil && atomic.LoadInt32(&e.active) > 0 {
				continue
			}
			p.retired += atomic.LoadInt64(&e.clones)
			delete(p.entries, key)
			p.order = append(p.order[:i], p.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return // every entry is active; the cap yields rather than break jobs
		}
	}
}

// TopoStats is the pool's observable state (the /v1/stats payload).
type TopoStats struct {
	// Entries is the number of pooled prototypes; Shares counts jobs that
	// reused an existing prototype; Clones counts trial meshes handed out.
	Entries int   `json:"entries"`
	Shares  int64 `json:"shares"`
	Clones  int64 `json:"clones"`
}

// Stats returns a snapshot of the pool counters.
func (p *TopoPool) Stats() TopoStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := TopoStats{Entries: len(p.entries), Shares: p.shares, Clones: p.retired}
	for _, e := range p.entries {
		st.Clones += atomic.LoadInt64(&e.clones)
	}
	return st
}
