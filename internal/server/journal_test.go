package server

import (
	"os"
	"path/filepath"
	"testing"
)

// TestJournalTornTailTolerated pins crash tolerance on the read side: a
// half-written final line (the append the crash interrupted) ends the replay
// cleanly, keeping everything before it.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	content := `{"op":"submit","id":"j0001","spec":{"seed":1}}
{"op":"seal","id":"j0001","status":"done"}
{"op":"submit","id":"j0002","spec":{"seed":2}}
{"op":"submit","id":"j00`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pending, maxID, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != "j0002" {
		t.Fatalf("pending = %+v, want just j0002", pending)
	}
	if maxID != 2 {
		t.Errorf("maxID = %d, want 2 (the torn record must not count)", maxID)
	}

	// The journal opens for appending right past the torn tail.
	jnl, pending2, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.close()
	if len(pending2) != 1 {
		t.Fatalf("openJournal pending = %+v", pending2)
	}
	if err := jnl.append(journalRecord{Op: "seal", ID: "j0002", Status: "done"}); err != nil {
		t.Fatal(err)
	}
}

// TestJournalSealWithoutSubmit covers out-of-order and duplicate seals: they
// must be ignored rather than corrupt the pending set.
func TestJournalSealWithoutSubmit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	content := `{"op":"seal","id":"j0009","status":"done"}
{"op":"submit","id":"j0010","spec":{}}
{"op":"seal","id":"j0010","status":"done"}
{"op":"seal","id":"j0010","status":"canceled"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pending, maxID, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Errorf("pending = %+v, want none", pending)
	}
	if maxID != 10 {
		t.Errorf("maxID = %d, want 10", maxID)
	}
}

func TestIDSeq(t *testing.T) {
	for id, want := range map[string]int{"j0042": 42, "j1": 1, "weird": 0, "": 0, "j-3": 0} {
		if got := idSeq(id); got != want {
			t.Errorf("idSeq(%q) = %d, want %d", id, got, want)
		}
	}
}
