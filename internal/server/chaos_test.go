package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"mccmesh/internal/scenario"
)

// slowSpec is a job far too large to finish on its own within a test,
// used to pin a worker or fill the queue.
func slowSpec(seed uint64) scenario.Spec {
	spec := testSpec()
	spec.Mesh = scenario.Cube(9)
	spec.Measure.Window = 200000
	spec.Trials = 64
	spec.Seed = seed
	return spec
}

// TestPanicIsolation proves the tentpole's first claim: a panic inside a job
// seals that job as FAILED with the captured stack and the daemon keeps
// serving — the next submission runs to done on the same process.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	s.InjectFault(ChaosRun, ChaosRule{Panic: true, Times: 1})

	info, _ := submitSpec(t, ts, specJSON(t, testSpec()))
	done := waitTerminal(t, ts, info.ID)
	if done.Status != StatusFailed {
		t.Fatalf("panicked job: status %q (err %q), want failed", done.Status, done.Error)
	}
	if !strings.Contains(done.Error, "panic: chaos: injected panic") {
		t.Errorf("error = %q, want the recovered panic value", done.Error)
	}
	if !strings.Contains(done.Stack, "runScenario") {
		t.Errorf("job detail carries no captured stack:\n%s", done.Stack)
	}

	// The process survived: the same spec (the failed run cached nothing)
	// completes on the next attempt.
	second, _ := submitSpec(t, ts, specJSON(t, testSpec()))
	if got := waitTerminal(t, ts, second.ID); got.Status != StatusDone {
		t.Fatalf("post-panic submission: status %q (err %q), want done", got.Status, got.Error)
	}

	counters := s.Counters()
	if counters["server.panics"] != 1 {
		t.Errorf("server.panics = %d, want 1", counters["server.panics"])
	}
	if counters["server.jobs_failed"] != 1 {
		t.Errorf("server.jobs_failed = %d, want 1", counters["server.jobs_failed"])
	}
}

// TestJobTimeout pins the deadline path: a spec-level timeout seals the job
// as TIMEOUT, keeps the completed cells in the report, and marks the
// interrupted cell.
func TestJobTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	// Many fast cells so the deadline reliably lands between trials (trial
	// granularity is where cancellation is observed).
	spec := testSpec()
	spec.Workload.Rates = []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06}
	spec.Measure.Window = 2000
	spec.Trials = 8
	spec.Timeout = 0.25

	info, _ := submitSpec(t, ts, specJSON(t, spec))
	done := waitTerminal(t, ts, info.ID)
	if done.Status != StatusTimeout {
		t.Fatalf("status = %q (err %q), want timeout", done.Status, done.Error)
	}
	if !strings.Contains(done.Error, "deadline exceeded") {
		t.Errorf("error = %q, want a deadline message", done.Error)
	}
	if done.Report == nil || len(done.Report.Cells) == 0 {
		t.Fatal("timed-out job lost its completed-prefix report")
	}
	last := done.Report.Cells[len(done.Report.Cells)-1]
	if !strings.Contains(strings.Join(last.Row, " "), "TIMEOUT") {
		t.Errorf("interrupted cell not marked TIMEOUT: %v", last.Row)
	}
	if got := s.Counters()["server.timeouts"]; got != 1 {
		t.Errorf("server.timeouts = %d, want 1", got)
	}

	// The timeout knob is an execution detail: it must not split the digest
	// (and therefore the result cache) from the untimed spec.
	untimed := spec
	untimed.Timeout = 0
	if spec.Digest() != untimed.Digest() {
		t.Error("timeout changes the spec digest; cache sharing is broken")
	}
}

// TestServerJobTimeoutCapsSpec proves the server-wide -job-timeout bounds
// specs that ask for more (or for no deadline at all).
func TestServerJobTimeoutCapsSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1, JobTimeout: 250 * time.Millisecond})
	spec := testSpec()
	spec.Workload.Rates = []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06}
	spec.Measure.Window = 2000
	spec.Trials = 8
	// The spec asks for an hour; the server cap wins.
	spec.Timeout = 3600

	info, _ := submitSpec(t, ts, specJSON(t, spec))
	done := waitTerminal(t, ts, info.ID)
	if done.Status != StatusTimeout {
		t.Fatalf("status = %q (err %q), want timeout from the server cap", done.Status, done.Error)
	}
}

// TestDrainEvictsQueuedJobs pins graceful degradation: after BeginDrain, new
// submissions bounce with a structured 503 + Retry-After, the running job is
// left to finish (here: cancelled to unblock the worker), and the queued job
// is sealed EVICTED rather than silently dropped.
func TestDrainEvictsQueuedJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	blocker, _ := submitSpec(t, ts, specJSON(t, slowSpec(100)))
	waitRunning(t, ts, blocker.ID)
	queued, _ := submitSpec(t, ts, specJSON(t, slowSpec(200)))

	s.BeginDrain()

	// Admission is closed: a structured 503 with both the header and the
	// mirrored body field.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(specJSON(t, slowSpec(300))))
	if err != nil {
		t.Fatal(err)
	}
	var payload apiError
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: status %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if payload.Status != http.StatusServiceUnavailable || payload.RetryAfterSec < 1 {
		t.Errorf("structured 503 body = %+v", payload)
	}
	if !strings.Contains(payload.Error, "draining") {
		t.Errorf("503 body error = %q, want a draining message", payload.Error)
	}

	// Unblock the single worker; it then reaches the queued job and evicts it.
	http.Post(ts.URL+"/v1/jobs/"+blocker.ID+"/cancel", "", nil) //nolint:errcheck
	done := waitTerminal(t, ts, queued.ID)
	if done.Status != StatusEvicted {
		t.Fatalf("queued job after drain: status %q, want evicted", done.Status)
	}
	if got := s.Counters()["server.jobs_evicted"]; got != 1 {
		t.Errorf("server.jobs_evicted = %d, want 1", got)
	}
}

// TestJournalReplayAfterCrash is the kill-and-restart gate, with the crash
// injected at the journal-seal point: server A runs a job but "dies" before
// sealing it durably; server B on the same state dir resubmits it and runs it
// to done; server C sees a clean journal and replays nothing.
func TestJournalReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	specScenario := func() *scenario.Scenario {
		sc, err := scenario.New(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}

	a, err := New(Config{Jobs: 1, StateDir: dir, DrainTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Drop every seal append: the crash lands after admission, before the
	// outcome reaches disk.
	a.InjectFault(ChaosJournalSeal, ChaosRule{Err: errors.New("chaos: crash before seal")})
	jobA, err := a.submit(specScenario(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := waitJob(jobA); err != nil {
		t.Fatal(err)
	}
	a.Close() // the journal now holds a submit record with no seal

	b, err := New(Config{Jobs: 1, StateDir: dir, DrainTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	replayed := b.list()
	if len(replayed) != 1 {
		t.Fatalf("restart registered %d jobs, want 1 replayed", len(replayed))
	}
	job, _ := b.job(replayed[0].ID)
	if err := waitJob(job); err != nil {
		t.Fatalf("replayed job failed: %v", err)
	}
	if got := b.Counters()["server.jobs_replayed"]; got != 1 {
		t.Errorf("server.jobs_replayed = %d, want 1", got)
	}
	// The replay warmed the cache: a user resubmission of the same spec is a
	// free hit.
	hit, err := b.submit(specScenario(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Info(false).Cached {
		t.Error("resubmission after replay missed the cache")
	}
	b.Close() // seal records land this time

	c, err := New(Config{Jobs: 1, StateDir: dir, DrainTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n := len(c.list()); n != 0 {
		t.Errorf("second restart replayed %d jobs, want 0 (replay must not loop)", n)
	}
	if got := c.Counters()["server.jobs_replayed"]; got != 0 {
		t.Errorf("second restart: server.jobs_replayed = %d, want 0", got)
	}
}

// TestCancelRacesFinalSeal widens the window between a run completing and its
// seal landing (ChaosSeal delay), lands a DELETE inside it, and demands a
// consistent outcome: the completed run stays done, the API stays responsive,
// nothing deadlocks.
func TestCancelRacesFinalSeal(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	s.InjectFault(ChaosSeal, ChaosRule{Delay: 300 * time.Millisecond, Times: 1})
	info, _ := submitSpec(t, ts, specJSON(t, testSpec()))

	// The run has finished once the final cell's done event is in the log;
	// the seal is now sleeping in the chaos delay.
	deadline := time.Now().Add(30 * time.Second)
	for {
		job, _ := s.job(info.ID)
		if evs, _, _ := job.eventsFrom(0); len(evs) >= 4 { // 2 cells x (start+done)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never produced its events")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE during seal: status %d", resp.StatusCode)
	}

	done := waitTerminal(t, ts, info.ID)
	if done.Status != StatusDone {
		t.Fatalf("completed run lost to a late cancel: status %q", done.Status)
	}
	if done.Report == nil || len(done.Report.Cells) != 2 {
		t.Error("report corrupted by the cancel/seal race")
	}
}

// TestEventsFromPastEnd pins `?from=N` beyond the end of a terminal job's
// log: NDJSON returns an empty 200 body, SSE returns just the done frame.
func TestEventsFromPastEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	info, _ := submitSpec(t, ts, specJSON(t, testSpec()))
	waitTerminal(t, ts, info.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/events?from=999")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("from past end: status %d, want 200", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("NDJSON from past end returned %d bytes, want empty: %q", len(body), body)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+info.ID+"/events?from=999", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sse, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(sse), "event: done") {
		t.Errorf("SSE from past end = %q, want only the done frame", sse)
	}
}
