// Package server is the scenario-execution daemon behind `mcc serve`: an HTTP
// API that accepts the same JSON specs as `mcc run -spec`, validates them
// up front, runs them on a bounded worker pool, and exposes the job lifecycle
// (status, structured reports, cancellation, streamed progress events).
//
// Two layers keep repeated work cheap. A result cache keyed by the canonical
// spec digest answers resubmissions of byte-equal specs with the stored
// report — results are workers-invariant, so a cached report is bit-identical
// to a recompute. A shared-topology pool hands jobs whose mesh/fault
// configuration hashes equal Clones of one immutable mesh prototype, so
// concurrent jobs share the read-only topology tables and allocate only the
// per-trial fault state.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"mccmesh/internal/mesh"
	"mccmesh/internal/scenario"
	"mccmesh/internal/telemetry"
)

// Config sizes the server; zero values select the defaults.
type Config struct {
	// Jobs is the worker-pool size — the number of scenarios running
	// concurrently (default 4). Each job additionally shards its trials
	// across its spec's own Workers setting.
	Jobs int
	// Queue bounds the jobs waiting for a worker (default 64); submissions
	// beyond it are rejected with 503 rather than buffered without limit.
	Queue int
	// CacheSize bounds the result cache (default 128 reports).
	CacheSize int
	// Topos bounds the shared-topology pool (default 64 prototypes).
	Topos int
}

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 4
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Topos <= 0 {
		c.Topos = 64
	}
	return c
}

// Server is the daemon: an http.Handler plus the worker pool behind it.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *Job
	pool  *TopoPool
	cache *resultCache

	// baseCtx parents every job context; Close cancels it, aborting running
	// jobs before the worker goroutines are awaited.
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listings
	nextID int
	tel    *telemetry.Sink // guarded by mu: Sink itself is not goroutine-safe
	queued int             // jobs accepted but not yet claimed by a worker
}

// New returns a started server: workers are running and ServeHTTP is live.
// Call Close to drain it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.Queue),
		pool:    NewTopoPool(cfg.Topos),
		cache:   newResultCache(cfg.CacheSize),
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		tel:     telemetry.NewSink(),
	}
	s.mux = s.routes()
	for i := 0; i < cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops accepting queued work, cancels running jobs and waits for the
// workers to exit. In-flight jobs surface as canceled.
func (s *Server) Close() {
	s.stop()
	close(s.queue)
	s.wg.Wait()
}

// counter applies fn to the server's telemetry sink under the server lock
// (the Sink type itself is single-threaded by design).
func (s *Server) counter(fn func(*telemetry.Sink)) {
	s.mu.Lock()
	fn(s.tel)
	s.mu.Unlock()
}

// Counters returns a snapshot of the server's lifecycle counters.
func (s *Server) Counters() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tel.Snapshot()
}

// submit registers a validated scenario as a job. When the spec's digest is
// cached (and telemetry is off — telemetry changes report content), the job
// is sealed immediately from the cache; otherwise it is queued. The error is
// non-nil only when the queue is full.
func (s *Server) submit(sc *scenario.Scenario, withTelemetry bool) (*Job, error) {
	jobCtx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%04d", s.nextID)
	s.mu.Unlock()
	job := newJob(id, sc, cancel)
	job.telemetry = withTelemetry
	job.ctx = jobCtx

	if !withTelemetry {
		if e, ok := s.cache.get(job.digest); ok {
			job.fillCached(e.report, e.events)
			cancel()
			s.register(job)
			s.counter(func(t *telemetry.Sink) {
				t.Inc(telemetry.ServerJobsSubmitted)
				t.Inc(telemetry.ServerCacheHits)
			})
			return job, nil
		}
	}

	s.mu.Lock()
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("job queue full (%d waiting)", s.cfg.Queue)
	}
	s.queued++
	s.tel.Inc(telemetry.ServerJobsSubmitted)
	s.tel.Max(telemetry.ServerQueueDepth, int64(s.queued))
	s.mu.Unlock()
	s.register(job)
	return job, nil
}

// register indexes a job for the lookup and list endpoints.
func (s *Server) register(job *Job) {
	s.mu.Lock()
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.mu.Unlock()
}

// job looks a job up by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns every job's summary, in submission order.
func (s *Server) list() []JobInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	infos := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.job(id); ok {
			infos = append(infos, j.Info(false))
		}
	}
	return infos
}

// worker drains the queue, running one job at a time until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		s.runJob(job)
	}
}

// runJob executes one job: it wires the observer into the job's event log,
// installs a shared-topology mesh source, runs the scenario under the job
// context and seals the outcome. Successful telemetry-free runs populate the
// result cache.
func (s *Server) runJob(job *Job) {
	if !job.claim() { // cancelled while queued
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsCancelled) })
		return
	}
	sc := job.sc
	sc.Observe(job.appendEvent)
	src, release := s.pool.Source(sc.Spec())
	defer release()
	sc.SetMeshSource(func() *mesh.Mesh {
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerTopoClones) })
		return src()
	})

	rep, err := sc.Run(job.ctx)
	switch {
	case err == nil:
		job.finish(StatusDone, rep, "")
		if !job.telemetry {
			report, events := job.snapshot()
			s.cache.put(job.digest, &cacheEntry{report: report, events: events, jobID: job.id})
		}
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsCompleted) })
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		job.finish(StatusCanceled, rep, err.Error())
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsCancelled) })
	default:
		job.finish(StatusFailed, rep, err.Error())
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsFailed) })
	}
}

// Stats is the /v1/stats payload: job-lifecycle counters plus the cache and
// topology-pool snapshots.
type Stats struct {
	Jobs     map[string]int   `json:"jobs"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Cache    CacheStats       `json:"cache"`
	Topo     TopoStats        `json:"topo"`
}

// StatsSnapshot assembles the current server statistics.
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		Jobs:     make(map[string]int),
		Counters: s.Counters(),
		Cache:    s.cache.stats(),
		Topo:     s.pool.Stats(),
	}
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		st.Jobs[string(j.Info(false).Status)]++
	}
	return st
}
