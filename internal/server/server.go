// Package server is the scenario-execution daemon behind `mcc serve`: an HTTP
// API that accepts the same JSON specs as `mcc run -spec`, validates them
// up front, runs them on a bounded worker pool, and exposes the job lifecycle
// (status, structured reports, cancellation, streamed progress events).
//
// Two layers keep repeated work cheap. A result cache keyed by the canonical
// spec digest answers resubmissions of byte-equal specs with the stored
// report — results are workers-invariant, so a cached report is bit-identical
// to a recompute. A shared-topology pool hands jobs whose mesh/fault
// configuration hashes equal Clones of one immutable mesh prototype, so
// concurrent jobs share the read-only topology tables and allocate only the
// per-trial fault state.
//
// The daemon is built to outlive its jobs. A panic anywhere in a scenario run
// is recovered at the worker boundary and sealed as a FAILED job carrying the
// captured stack; a job deadline (spec timeout or the server-wide cap) seals
// the run as TIMEOUT with the completed cells preserved; SIGTERM drains
// gracefully (running jobs finish, queued jobs are EVICTED); and with a state
// directory configured, a crash-safe NDJSON journal resubmits whatever was in
// flight on the next start.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"mccmesh/internal/mesh"
	"mccmesh/internal/scenario"
	"mccmesh/internal/telemetry"
)

// Config sizes the server; zero values select the defaults.
type Config struct {
	// Jobs is the worker-pool size — the number of scenarios running
	// concurrently (default 4). Each job additionally shards its trials
	// across its spec's own Workers setting.
	Jobs int
	// Queue bounds the jobs waiting for a worker (default 64); submissions
	// beyond it are rejected with 503 rather than buffered without limit.
	Queue int
	// CacheSize bounds the result cache (default 128 reports).
	CacheSize int
	// Topos bounds the shared-topology pool (default 64 prototypes).
	Topos int
	// JobTimeout caps every job's wall-clock run time and is the default for
	// specs that set no timeout of their own (0 = unbounded). A spec timeout
	// above the cap is clamped to it.
	JobTimeout time.Duration
	// MaxShards caps the per-trial shard count a submitted spec may request
	// (its exec block's "shards"; 0 = uncapped). Requests above the cap are
	// clamped, mirroring JobTimeout — shards are an execution knob, so the
	// clamp changes resource use, never results or cache identity.
	MaxShards int
	// DrainTimeout is how long Close waits for running jobs to finish before
	// hard-cancelling them (default 5s; negative = hard-cancel immediately).
	DrainTimeout time.Duration
	// StateDir, when set, enables the crash-safe job journal: submitted specs
	// and terminal outcomes are appended to an NDJSON WAL there, and New
	// resubmits any job that was in flight when the previous process died.
	StateDir string
}

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 4
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Topos <= 0 {
		c.Topos = 64
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// Server is the daemon: an http.Handler plus the worker pool behind it.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *Job
	pool  *TopoPool
	cache *resultCache
	jnl   *journal // nil unless Config.StateDir is set
	chaos chaos    // test-harness fault injection; zero rules in production

	// baseCtx parents every job context; a hard stop cancels it, aborting
	// running jobs before the worker goroutines are awaited.
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listings
	nextID   int
	tel      *telemetry.Sink // guarded by mu: Sink itself is not goroutine-safe
	queued   int             // jobs accepted but not yet claimed by a worker
	draining bool            // BeginDrain called: refuse admission, evict queue
	svcEWMA  float64         // smoothed job service time (seconds), for Retry-After
}

// errDraining rejects submissions once a graceful shutdown has begun.
var errDraining = errors.New("server draining: not accepting new jobs")

// New returns a started server: workers are running and ServeHTTP is live.
// With Config.StateDir set it also opens the job journal and resubmits every
// job the journal shows as in flight (submitted, never sealed) — each replayed
// record is sealed as "replayed" pointing at its new job id, so a second
// restart never replays it again. Call Close to drain the server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.Queue),
		pool:    NewTopoPool(cfg.Topos),
		cache:   newResultCache(cfg.CacheSize),
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		tel:     telemetry.NewSink(),
	}
	var pending []journalRecord
	if cfg.StateDir != "" {
		jnl, recs, maxID, err := openJournal(cfg.StateDir)
		if err != nil {
			cancel()
			return nil, err
		}
		s.jnl = jnl
		s.nextID = maxID
		pending = recs
	}
	s.mux = s.routes()
	for i := 0; i < cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.replay(pending)
	return s, nil
}

// replay resubmits the journal's in-flight records under fresh job ids. Each
// old record is sealed either as "replayed" (with its new id) or — when the
// spec no longer validates or the queue cannot take it — as failed, so no
// record is ever replayed twice.
func (s *Server) replay(pending []journalRecord) {
	for _, rec := range pending {
		sc, err := scenario.Load(bytes.NewReader(rec.Spec))
		if err == nil {
			var job *Job
			if job, err = s.submit(sc, rec.Telemetry); err == nil {
				s.journalSeal(rec.ID, "replayed", "resubmitted as "+job.id)
				s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsReplayed) })
				continue
			}
		}
		s.journalSeal(rec.ID, string(StatusFailed), "replay: "+err.Error())
	}
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginDrain starts a graceful shutdown: admission stops (submissions are
// refused with 503), running jobs keep running, and jobs still queued are
// sealed EVICTED as workers reach them. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
}

// WaitDrain blocks until every worker has exited, hard-cancelling whatever is
// still running once grace expires (grace <= 0 hard-cancels immediately), then
// releases the journal. Call after BeginDrain.
func (s *Server) WaitDrain(grace time.Duration) {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	if grace > 0 {
		select {
		case <-done:
		case <-time.After(grace):
			s.stop()
			<-done
		}
	} else {
		s.stop()
		<-done
	}
	s.stop()
	s.jnl.close()
}

// Close shuts the server down gracefully: drain, wait up to the configured
// DrainTimeout for running jobs, then hard-cancel whatever remains.
func (s *Server) Close() {
	s.BeginDrain()
	s.WaitDrain(s.cfg.DrainTimeout)
}

// counter applies fn to the server's telemetry sink under the server lock
// (the Sink type itself is single-threaded by design).
func (s *Server) counter(fn func(*telemetry.Sink)) {
	s.mu.Lock()
	fn(s.tel)
	s.mu.Unlock()
}

// Counters returns a snapshot of the server's lifecycle counters.
func (s *Server) Counters() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tel.Snapshot()
}

// submit registers a validated scenario as a job. When the spec's digest is
// cached (and telemetry is off — telemetry changes report content), the job
// is sealed immediately from the cache; otherwise it is queued and journaled.
// The error is non-nil only when the queue is full or the server is draining.
func (s *Server) submit(sc *scenario.Scenario, withTelemetry bool) (*Job, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	s.nextID++
	id := fmt.Sprintf("j%04d", s.nextID)
	s.mu.Unlock()
	jobCtx, cancel := context.WithCancel(s.baseCtx)
	job := newJob(id, sc, cancel)
	job.telemetry = withTelemetry
	job.ctx = jobCtx

	if !withTelemetry {
		if e, ok := s.cache.get(job.digest); ok {
			// Answered without running: nothing in flight, nothing journaled.
			job.fillCached(e.report, e.events)
			cancel()
			s.register(job)
			s.counter(func(t *telemetry.Sink) {
				t.Inc(telemetry.ServerJobsSubmitted)
				t.Inc(telemetry.ServerCacheHits)
			})
			return job, nil
		}
	}

	s.mu.Lock()
	if s.draining {
		// Re-checked under the same lock BeginDrain closes the queue under,
		// so a send can never race the close.
		s.mu.Unlock()
		cancel()
		return nil, errDraining
	}
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("job queue full (%d waiting)", s.cfg.Queue)
	}
	s.queued++
	s.tel.Inc(telemetry.ServerJobsSubmitted)
	s.tel.Max(telemetry.ServerQueueDepth, int64(s.queued))
	s.mu.Unlock()
	s.register(job)
	s.journalSubmit(job)
	return job, nil
}

// journalSubmit appends a job's submit record (no-op without a journal). The
// chaos point simulates a crash between admission and the append.
func (s *Server) journalSubmit(job *Job) {
	if s.jnl == nil {
		return
	}
	if s.chaos.hit(ChaosJournalSubmit) != nil {
		return
	}
	spec, err := json.Marshal(job.sc.Spec())
	if err != nil {
		return
	}
	rec := journalRecord{Op: "submit", ID: job.id, Telemetry: job.telemetry, Spec: spec}
	s.jnl.append(rec) //nolint:errcheck // durability degrades, serving continues
}

// journalSeal appends a terminal-state record (no-op without a journal). The
// chaos point simulates a crash before the outcome was made durable — the
// record the restart replay then resubmits.
func (s *Server) journalSeal(id, status, errText string) {
	if s.jnl == nil {
		return
	}
	if s.chaos.hit(ChaosJournalSeal) != nil {
		return
	}
	rec := journalRecord{Op: "seal", ID: id, Status: status, Error: errText}
	s.jnl.append(rec) //nolint:errcheck // durability degrades, serving continues
}

// register indexes a job for the lookup and list endpoints.
func (s *Server) register(job *Job) {
	s.mu.Lock()
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.mu.Unlock()
}

// job looks a job up by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns every job's summary, in submission order.
func (s *Server) list() []JobInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	infos := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.job(id); ok {
			infos = append(infos, j.Info(false))
		}
	}
	return infos
}

// worker drains the queue, running one job at a time. Once a drain begins,
// jobs still queued are evicted instead of run.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.mu.Lock()
		s.queued--
		draining := s.draining
		s.mu.Unlock()
		if draining {
			s.evictJob(job)
			continue
		}
		s.runJob(job)
	}
}

// evictJob seals a still-queued job as EVICTED during a drain.
func (s *Server) evictJob(job *Job) {
	if !job.evict() {
		return // already cancelled or otherwise sealed
	}
	s.journalSeal(job.id, string(StatusEvicted), "evicted: server draining")
	s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsEvicted) })
}

// jobDeadline resolves a job's effective wall-clock budget: the spec's own
// timeout, defaulted and capped by the server-wide JobTimeout (0 = unbounded).
func (s *Server) jobDeadline(spec scenario.Spec) time.Duration {
	d := time.Duration(spec.TimeoutSeconds() * float64(time.Second))
	if lim := s.cfg.JobTimeout; lim > 0 && (d <= 0 || d > lim) {
		d = lim
	}
	return d
}

// panicError is a scenario panic recovered at the worker boundary, carrying
// the goroutine stack captured at the panic site.
type panicError struct {
	val   any
	stack string
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// runScenario executes the scenario under the run context with the worker
// goroutine shielded: a panic anywhere below becomes a *panicError instead of
// killing the process.
func (s *Server) runScenario(sc *scenario.Scenario, ctx context.Context) (rep *scenario.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			rep, err = nil, &panicError{val: p, stack: string(debug.Stack())}
		}
	}()
	if cerr := s.chaos.hit(ChaosRun); cerr != nil {
		return nil, cerr
	}
	return sc.Run(ctx)
}

// observeServiceTime folds a completed run into the smoothed service-time
// estimate behind Retry-After.
func (s *Server) observeServiceTime(d time.Duration) {
	sec := d.Seconds()
	s.mu.Lock()
	if s.svcEWMA == 0 {
		s.svcEWMA = sec
	} else {
		s.svcEWMA = 0.7*s.svcEWMA + 0.3*sec
	}
	s.mu.Unlock()
}

// retryAfterSeconds estimates when a rejected client should try again: the
// smoothed job service time scaled by the current queue pressure, clamped to
// [1s, 10min]. With no completed job yet the estimate is the 1s floor.
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	ewma, queued := s.svcEWMA, s.queued
	s.mu.Unlock()
	est := ewma * (float64(queued)/float64(s.cfg.Jobs) + 1)
	sec := int(math.Ceil(est))
	if sec < 1 {
		sec = 1
	}
	if sec > 600 {
		sec = 600
	}
	return sec
}

// sealJob records a job's terminal state and journals it. The chaos point
// sits before the seal so a Delay rule widens the cancel-vs-seal race window
// for the tests.
func (s *Server) sealJob(job *Job, st Status, rep *scenario.Report, errText string) {
	s.chaos.hit(ChaosSeal) //nolint:errcheck // only Delay rules are meaningful here
	job.finish(st, rep, errText)
	s.journalSeal(job.id, string(st), errText)
}

// runJob executes one job: it wires the observer into the job's event log,
// installs a shared-topology mesh source, runs the scenario under the job
// context (bounded by the effective deadline) and seals the outcome.
// Successful telemetry-free runs populate the result cache.
func (s *Server) runJob(job *Job) {
	if !job.claim() { // cancelled while queued
		s.journalSeal(job.id, string(StatusCanceled), context.Canceled.Error())
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsCancelled) })
		return
	}
	sc := job.sc
	sc.Observe(job.appendEvent)
	src, release := s.pool.Source(sc.Spec())
	defer release()
	sc.SetMeshSource(func() *mesh.Mesh {
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerTopoClones) })
		return src()
	})

	runCtx := job.ctx
	deadline := s.jobDeadline(sc.Spec())
	if deadline > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(job.ctx, deadline)
		defer cancel()
	}

	start := time.Now()
	rep, err := s.runScenario(sc, runCtx)
	var pe *panicError
	switch {
	case err == nil:
		s.observeServiceTime(time.Since(start))
		s.sealJob(job, StatusDone, rep, "")
		if !job.telemetry {
			report, events := job.snapshot()
			s.cache.put(job.digest, &cacheEntry{report: report, events: events, jobID: job.id})
		}
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsCompleted) })
	case errors.As(err, &pe):
		job.setStack(pe.stack)
		s.sealJob(job, StatusFailed, rep, pe.Error())
		s.counter(func(t *telemetry.Sink) {
			t.Inc(telemetry.ServerPanics)
			t.Inc(telemetry.ServerJobsFailed)
		})
	case errors.Is(err, context.DeadlineExceeded) && job.ctx.Err() == nil:
		// The per-job deadline fired (the client's own context is still live);
		// the report keeps every completed cell, with the interrupted cell
		// marked TIMEOUT by the scenario layer.
		s.sealJob(job, StatusTimeout, rep, fmt.Sprintf("deadline exceeded after %s", deadline))
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerTimeouts) })
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.sealJob(job, StatusCanceled, rep, err.Error())
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsCancelled) })
	default:
		s.sealJob(job, StatusFailed, rep, err.Error())
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerJobsFailed) })
	}
}

// Stats is the /v1/stats payload: job-lifecycle counters plus the cache and
// topology-pool snapshots.
type Stats struct {
	Jobs     map[string]int   `json:"jobs"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Cache    CacheStats       `json:"cache"`
	Topo     TopoStats        `json:"topo"`
}

// StatsSnapshot assembles the current server statistics.
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		Jobs:     make(map[string]int),
		Counters: s.Counters(),
		Cache:    s.cache.stats(),
		Topo:     s.pool.Stats(),
	}
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		st.Jobs[string(j.Info(false).Status)]++
	}
	return st
}
