package server

import (
	"context"
	"sync"

	"mccmesh/internal/scenario"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: accepted and waiting for a worker slot.
	StatusQueued Status = "queued"
	// StatusRunning: executing on the worker pool.
	StatusRunning Status = "running"
	// StatusDone: finished with a report (possibly straight from the cache).
	StatusDone Status = "done"
	// StatusFailed: the run returned a non-cancellation error.
	StatusFailed Status = "failed"
	// StatusCanceled: cancelled by the client (context.Canceled surfaced from
	// the run, or cancelled while still queued).
	StatusCanceled Status = "canceled"
	// StatusTimeout: the job's wall-clock deadline (spec timeout field or the
	// server's -job-timeout default/cap) expired; the report keeps the
	// completed cells with the interrupted cell marked TIMEOUT.
	StatusTimeout Status = "timeout"
	// StatusEvicted: sealed while still queued by a graceful drain — the job
	// never ran and the client should resubmit.
	StatusEvicted Status = "evicted"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCanceled, StatusTimeout, StatusEvicted:
		return true
	}
	return false
}

// JobEvent is the wire form of one scenario progress event, streamed over
// /v1/jobs/{id}/events as NDJSON or SSE. It mirrors scenario.Event field for
// field; the stream is workers-invariant because the underlying observer
// stream is (pinned by the scenario package's tests).
type JobEvent struct {
	Measure  string           `json:"measure"`
	Cell     int              `json:"cell"`
	Total    int              `json:"total"`
	Label    string           `json:"label"`
	Done     bool             `json:"done,omitempty"`
	Row      []string         `json:"row,omitempty"`
	Progress bool             `json:"progress,omitempty"`
	Trial    int              `json:"trial,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// wireEvent converts a scenario observer event to its wire form.
func wireEvent(ev scenario.Event) JobEvent {
	return JobEvent{
		Measure: ev.Measure, Cell: ev.Cell, Total: ev.Total, Label: ev.Label,
		Done: ev.Done, Row: ev.Row,
		Progress: ev.Progress, Trial: ev.Trial, Counters: ev.Counters,
	}
}

// Job is one submitted scenario execution. The immutable identity fields are
// set at submit time; everything behind mu changes as the job advances and is
// read by the HTTP handlers.
type Job struct {
	id     string
	digest string
	topo   string
	name   string // spec name, for listings
	sc     *scenario.Scenario
	ctx    context.Context // the run context; cancel aborts it
	cancel context.CancelFunc
	// telemetry marks a run with counters enabled; such jobs bypass the
	// result cache (telemetry changes report content, not the digest).
	telemetry bool

	mu      sync.Mutex
	status  Status
	cached  bool
	errText string
	stack   string // captured goroutine stack of a recovered panic
	report  *scenario.Report
	events  []JobEvent
	// changed is closed and replaced whenever events grow or the status turns
	// terminal, waking every streaming subscriber without a subscriber list.
	changed chan struct{}
}

func newJob(id string, sc *scenario.Scenario, cancel context.CancelFunc) *Job {
	spec := sc.Spec()
	return &Job{
		id: id, digest: spec.Digest(), topo: spec.TopoKey(), name: spec.Name,
		sc: sc, cancel: cancel,
		status: StatusQueued, changed: make(chan struct{}),
	}
}

// wakeLocked signals every waiter; callers hold j.mu.
func (j *Job) wakeLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendEvent records one observer event (called synchronously from the
// measure goroutine via the installed observer).
func (j *Job) appendEvent(ev scenario.Event) {
	j.mu.Lock()
	j.events = append(j.events, wireEvent(ev))
	j.wakeLocked()
	j.mu.Unlock()
}

// setStatus transitions the job; terminal transitions wake subscribers.
func (j *Job) setStatus(st Status) {
	j.mu.Lock()
	j.status = st
	j.wakeLocked()
	j.mu.Unlock()
}

// finish seals the job with its outcome.
func (j *Job) finish(st Status, rep *scenario.Report, errText string) {
	j.mu.Lock()
	j.status = st
	j.report = rep
	j.errText = errText
	j.wakeLocked()
	j.mu.Unlock()
}

// setStack records the captured stack of a recovered panic.
func (j *Job) setStack(stack string) {
	j.mu.Lock()
	j.stack = stack
	j.mu.Unlock()
}

// evict seals a still-queued job as EVICTED (graceful drain); it refuses
// once the job has been claimed or sealed, and reports whether it sealed.
func (j *Job) evict() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusEvicted
	j.errText = "evicted: server draining; resubmit the spec"
	j.wakeLocked()
	return true
}

// fillCached seals a job as answered from the result cache: the report and
// the replayed event log come from the job that originally computed them.
func (j *Job) fillCached(rep *scenario.Report, events []JobEvent) {
	j.mu.Lock()
	j.status = StatusDone
	j.cached = true
	j.report = rep
	j.events = events
	j.wakeLocked()
	j.mu.Unlock()
}

// Cancel asks the job to stop: a queued job is sealed immediately, a running
// one has its context cancelled (the run surfaces context.Canceled and the
// worker seals it). Terminal jobs are left untouched. It reports whether the
// call changed anything.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	st := j.status
	if st == StatusQueued {
		j.status = StatusCanceled
		j.errText = context.Canceled.Error()
		j.wakeLocked()
	}
	j.mu.Unlock()
	switch st {
	case StatusQueued:
		j.cancel()
		return true
	case StatusRunning:
		j.cancel()
		return true
	default:
		return false
	}
}

// claim moves a queued job to running; a job cancelled while queued refuses.
func (j *Job) claim() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.wakeLocked()
	return true
}

// eventsFrom returns the events at index >= from, whether the job is
// terminal, and — when there is nothing new yet — a channel that closes on
// the next change. Exactly one of (progress, wait) is meaningful: a non-nil
// wait means "nothing new, block on this".
func (j *Job) eventsFrom(from int) (evs []JobEvent, terminal bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		evs = make([]JobEvent, len(j.events)-from)
		copy(evs, j.events[from:])
		return evs, j.status.Terminal(), nil
	}
	if j.status.Terminal() {
		return nil, true, nil
	}
	return nil, false, j.changed
}

// Info is the job's JSON summary (list and detail endpoints). The report is
// attached only for terminal jobs and only when withReport is set.
func (j *Job) Info(withReport bool) JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID: j.id, Name: j.name, Digest: j.digest, TopoKey: j.topo,
		Status: j.status, Cached: j.cached, Error: j.errText, Stack: j.stack,
		Events: len(j.events),
	}
	if withReport && j.status.Terminal() {
		info.Report = j.report
	}
	return info
}

// snapshot returns the terminal report and event log (for cache insertion).
func (j *Job) snapshot() (*scenario.Report, []JobEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	evs := make([]JobEvent, len(j.events))
	copy(evs, j.events)
	return j.report, evs
}

// JobInfo is the wire form of a job's state.
type JobInfo struct {
	// ID addresses the job (/v1/jobs/{id}); Name echoes the spec's name.
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Digest is the canonical spec digest (the result-cache key and the ETag
	// of the job's report); TopoKey hashes the mesh/fault configuration that
	// selects the shared-topology prototype.
	Digest  string `json:"digest"`
	TopoKey string `json:"topo"`
	// Status is the lifecycle state; Cached marks a submission answered from
	// the result cache without recompute.
	Status Status `json:"status"`
	Cached bool   `json:"cached,omitempty"`
	// Error carries the failure (or cancellation) message of a terminal job.
	Error string `json:"error,omitempty"`
	// Stack is the captured goroutine stack of a job failed by a recovered
	// panic — the daemon survives; the evidence lands here.
	Stack string `json:"stack,omitempty"`
	// Events is the current event-log length (what /events would replay).
	Events int `json:"events"`
	// Report is the final structured report, attached on detail requests once
	// the job is terminal.
	Report *scenario.Report `json:"report,omitempty"`
}
