package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// journalFile is the WAL's name inside the -state directory.
const journalFile = "journal.ndjson"

// journalRecord is one NDJSON line of the crash-safe job journal. Submit
// records carry the job's spec (the canonical JSON `mcc run -spec` reads);
// seal records carry the terminal status. A job whose submit record has no
// later seal record was in flight when the process died and is resubmitted
// on restart.
type journalRecord struct {
	// Op is "submit" or "seal".
	Op string `json:"op"`
	// ID is the job id the record belongs to.
	ID string `json:"id"`
	// Telemetry marks a submit record whose run had counters enabled.
	Telemetry bool `json:"telemetry,omitempty"`
	// Spec is the submitted scenario spec (submit records only).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Status is the terminal state (seal records only). Beyond the job
	// lifecycle states it can be "replayed": the job was resubmitted under a
	// new id after a restart.
	Status string `json:"status,omitempty"`
	// Error carries the terminal error text, if any.
	Error string `json:"error,omitempty"`
}

// journal is the append-only NDJSON WAL behind `mcc serve -state`. Appends
// are serialised and fsynced one record at a time — jobs are heavyweight
// (whole scenario runs), so durability costs nothing measurable, and the
// happy path of a stateless server never constructs one.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (creating if needed) the journal under dir and replays
// its records: it returns the journal ready for appends, the submit records
// without a terminal seal (in submission order), and the highest job-id
// sequence number seen — the restart's starting point for fresh ids.
//
// The read side is crash-tolerant: a torn final line (the append the crash
// interrupted) ends the replay cleanly instead of failing it.
func openJournal(dir string) (*journal, []journalRecord, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	pending, maxID, err := readJournal(path)
	if err != nil {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	return &journal{f: f}, pending, maxID, nil
}

// readJournal scans an existing journal and returns the unsealed submit
// records in order plus the highest id sequence number.
func readJournal(path string) (pending []journalRecord, maxID int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	open := make(map[string]int) // id -> index into pending, -1 = sealed
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if json.Unmarshal([]byte(line), &rec) != nil {
			// A torn tail from the interrupted final append: everything
			// before it is intact, so stop here rather than fail.
			break
		}
		if n := idSeq(rec.ID); n > maxID {
			maxID = n
		}
		switch rec.Op {
		case "submit":
			open[rec.ID] = len(pending)
			pending = append(pending, rec)
		case "seal":
			if i, ok := open[rec.ID]; ok && i >= 0 {
				pending[i].Op = "" // tombstone; compacted below
				open[rec.ID] = -1
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	out := pending[:0]
	for _, rec := range pending {
		if rec.Op == "submit" {
			out = append(out, rec)
		}
	}
	return out, maxID, nil
}

// idSeq extracts the numeric sequence of a "j0042"-style job id (0 when the
// id has another shape).
func idSeq(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// append writes one record and syncs it to disk. Append errors are returned
// for the caller to count; they never fail the job itself — a full disk must
// degrade durability, not serving.
func (j *journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal closed")
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// close releases the journal's file handle.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close() //nolint:errcheck // records are synced per append
		j.f = nil
	}
}
