package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"mccmesh/internal/scenario"
	"mccmesh/internal/telemetry"
)

// maxSpecBytes bounds a submitted spec document; real specs are a few KB.
const maxSpecBytes = 4 << 20

// routes builds the API mux. Method and path-wildcard matching come from the
// standard library's pattern syntax — no routing dependency.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// apiError is the uniform structured error payload: every 4xx/5xx body
// carries the message, the HTTP status it rode in on, and — for backpressure
// rejections — the same retry hint as the Retry-After header, so clients
// parsing only the body still see it.
type apiError struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	// RetryAfterSec mirrors the Retry-After header on 503 responses: the
	// server's estimate (from observed job service times and queue pressure)
	// of when a resubmission could be admitted.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client disconnects surface on the conn
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Status: status})
}

// writeUnavailable rejects with 503, a Retry-After header and the mirrored
// body field — the graceful-degradation contract for a full queue or a
// draining server.
func writeUnavailable(w http.ResponseWriter, retryAfterSec int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	writeJSON(w, http.StatusServiceUnavailable, apiError{
		Error:         fmt.Sprintf(format, args...),
		Status:        http.StatusServiceUnavailable,
		RetryAfterSec: retryAfterSec,
	})
}

// handleSubmit accepts a scenario spec (the exact JSON `mcc run -spec`
// reads), validates it, and either answers from the result cache (200,
// X-Cache: hit) or enqueues a job (202). `?telemetry=1` enables per-trial
// counters for the run — such jobs bypass the cache in both directions.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if n, err := strconv.Atoi(r.Header.Get("X-Mcc-Retry")); err == nil && n > 0 {
		// A backoff-aware client re-sending after a 503; count it so the
		// operator can see retry pressure in /v1/stats.
		s.counter(func(t *telemetry.Sink) { t.Inc(telemetry.ServerRetriesObserved) })
	}
	body := http.MaxBytesReader(w, r.Body, maxSpecBytes)
	sc, err := scenario.Load(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	withTelemetry := false
	if v := r.URL.Query().Get("telemetry"); v != "" {
		withTelemetry, err = strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "telemetry: %v", err)
			return
		}
	}
	if withTelemetry {
		sc.EnableTelemetry()
	}
	if lim := s.cfg.MaxShards; lim > 0 {
		// Clamp, don't reject: shards are an execution knob (digest-excluded),
		// so the clamped job still answers the submitted spec exactly.
		if spec := sc.Spec(); spec.ShardCount() > lim {
			sc.SetShards(lim)
		}
	}
	job, err := s.submit(sc, withTelemetry)
	if err != nil {
		writeUnavailable(w, s.retryAfterSeconds(), "%v", err)
		return
	}
	info := job.Info(false)
	w.Header().Set("ETag", etagOf(info.Digest))
	w.Header().Set("Location", "/v1/jobs/"+info.ID)
	if info.Cached {
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusOK, info)
		return
	}
	w.Header().Set("X-Cache", "miss")
	writeJSON(w, http.StatusAccepted, info)
}

// handleList returns every job's summary in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.list()})
}

// etagOf wraps the spec digest as a strong validator: the digest names the
// result content (reports are deterministic per digest), which is exactly the
// ETag contract.
func etagOf(digest string) string { return `"` + digest + `"` }

// handleGet returns one job's state; terminal jobs carry the report inline.
// If-None-Match against the digest ETag short-circuits with 304 once the job
// is done.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	info := job.Info(true)
	etag := etagOf(info.Digest)
	w.Header().Set("ETag", etag)
	if info.Status == StatusDone && r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleCancel cancels a queued or running job (idempotent on terminal ones).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	changed := job.Cancel()
	info := job.Info(false)
	if changed && info.Status == StatusCanceled {
		// Sealed while still queued: the worker never sees it, so the seal is
		// journaled here (duplicate seals from the worker path are harmless).
		s.journalSeal(info.ID, string(StatusCanceled), info.Error)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": r.PathValue("id"), "cancelled": changed, "status": info.Status,
	})
}

// handleEvents streams the job's progress events from the beginning: the
// recorded log replays first, then live events follow until the job turns
// terminal or the client disconnects. The default framing is NDJSON (one
// event object per line); `Accept: text/event-stream` selects SSE, where each
// event arrives as a `data:` line and the stream ends with `event: done`.
// `?from=N` resumes after the first N events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "from: want a non-negative integer, got %q", v)
			return
		}
		from = n
	}
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	for {
		evs, terminal, wait := job.eventsFrom(from)
		for _, ev := range evs {
			if sse {
				fmt.Fprint(w, "data: ")
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if sse {
				fmt.Fprint(w, "\n")
			}
		}
		from += len(evs)
		flush()
		if terminal {
			if sse {
				fmt.Fprintf(w, "event: done\ndata: %q\n\n", job.Info(false).Status)
				flush()
			}
			return
		}
		if wait != nil {
			select {
			case <-wait:
			case <-r.Context().Done():
				return
			}
		}
	}
}

// handleReport returns a terminal job's report. `?format=` selects the
// rendering: "json" (default) is the structured report, "text" is the exact
// bytes `mcc run -spec` prints for the same spec, "csv" the `-csv` form —
// both for byte-for-byte diffing against local runs.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	info := job.Info(true)
	if !info.Status.Terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; report not ready", info.ID, info.Status)
		return
	}
	if info.Report == nil {
		writeError(w, http.StatusNotFound, "job %s (%s) produced no report", info.ID, info.Status)
		return
	}
	w.Header().Set("ETag", etagOf(info.Digest))
	if info.Cached {
		w.Header().Set("X-Cache", "hit")
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, info.Report)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, info.Report.Table.Render())
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		fmt.Fprint(w, info.Report.Table.CSV())
	default:
		writeError(w, http.StatusBadRequest, "format: want json, text or csv, got %q", format)
	}
}

// handleHealth is the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStats reports the lifecycle counters, cache and topology-pool state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}
