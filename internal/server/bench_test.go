package server

import (
	"testing"
)

// BenchmarkSubmitCold measures end-to-end cold submissions: every iteration
// computes (distinct seeds defeat the cache), through the full HTTP handler
// path of an in-process server.
func BenchmarkSubmitCold(b *testing.B) {
	s, err := New(Config{Jobs: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	spec := ServeBenchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := runSubmissions(s, spec, b.N, true); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSubmitCached measures pure cache-hit submissions: one primed
// digest answered without recompute.
func BenchmarkSubmitCached(b *testing.B) {
	s, err := New(Config{Jobs: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	spec := ServeBenchSpec()
	if _, err := runSubmissions(s, spec, 1, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := runSubmissions(s, spec, b.N, false); err != nil {
		b.Fatal(err)
	}
}

func TestBenchServeProducesCells(t *testing.T) {
	cells, table, err := BenchServe(Config{Jobs: 2}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Scenario != "serve-cold" || cells[1].Scenario != "serve-cached" {
		t.Errorf("cell scenarios = %q, %q", cells[0].Scenario, cells[1].Scenario)
	}
	for _, c := range cells {
		if c.JobsPerSec <= 0 {
			t.Errorf("%s: jobs/sec = %v, want > 0", c.Scenario, c.JobsPerSec)
		}
		if c.EventsPerSec != 0 {
			t.Errorf("%s: events/sec = %v, want 0 (server cells stay outside the event-core gates)", c.Scenario, c.EventsPerSec)
		}
	}
	if cells[0].Key() == cells[1].Key() {
		t.Error("cold and cached cells share a baseline key")
	}
	if cells[1].JobsPerSec <= cells[0].JobsPerSec {
		t.Errorf("cached (%.1f jobs/s) not faster than cold (%.1f jobs/s)",
			cells[1].JobsPerSec, cells[0].JobsPerSec)
	}
	if table == nil || len(table.Rows) != 2 {
		t.Error("bench table missing or wrong shape")
	}
}
