package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"mccmesh/internal/scenario"
	"mccmesh/internal/stats"
)

// ServeBenchSpec returns the workload of the server throughput benchmark: the
// CI smoke shape shrunk to one cell, small enough that a cold job completes
// in a fraction of a second — the benchmark prices the serving pipeline
// (HTTP, validation, queueing, topology pool, cache), not the simulator.
func ServeBenchSpec() scenario.Spec {
	return scenario.Spec{
		Name:   "serve",
		Mesh:   scenario.Cube(7),
		Faults: scenario.FaultSpec{Inject: scenario.C("uniform"), Counts: []int{10}},
		Models: scenario.ComponentsOf("mcc"),
		Workload: scenario.WorkloadSpec{
			Patterns: scenario.ComponentsOf("uniform"),
			Rates:    []float64{0.01},
		},
		Measure: scenario.MeasureSpec{Kind: scenario.MeasureTraffic, Warmup: 20, Window: 80},
		Seed:    7,
		Trials:  2,
	}
}

// BenchServe measures end-to-end submission throughput of an in-process
// server: `cold` jobs with distinct seeds (every submission computes) and
// `cached` resubmissions of one digest (every submission is answered from the
// result cache). It returns one BenchResult per mode — scenario "serve-cold"
// and "serve-cached", JobsPerSec as the headline rate — plus a rendered
// table for the bench output.
func BenchServe(cfg Config, cold, cached int) ([]scenario.BenchResult, *stats.Table, error) {
	if cold <= 0 {
		cold = 8
	}
	if cached <= 0 {
		cached = 64
	}
	cfg = cfg.withDefaults()
	s, err := New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("server bench: %w", err)
	}
	defer s.Close()

	spec := ServeBenchSpec()
	coldElapsed, err := runSubmissions(s, spec, cold, true)
	if err != nil {
		return nil, nil, fmt.Errorf("server bench (cold): %w", err)
	}
	// Prime the cache with the unmodified spec, then time pure hits.
	if _, err := runSubmissions(s, spec, 1, false); err != nil {
		return nil, nil, fmt.Errorf("server bench (prime): %w", err)
	}
	cachedElapsed, err := runSubmissions(s, spec, cached, false)
	if err != nil {
		return nil, nil, fmt.Errorf("server bench (cached): %w", err)
	}

	cells := []scenario.BenchResult{
		serveCell("serve-cold", spec, cold, coldElapsed),
		serveCell("serve-cached", spec, cached, cachedElapsed),
	}
	t := &stats.Table{
		Title: fmt.Sprintf("bench: serve throughput (%s mesh, %d job workers, warmup %d + window %d ticks)",
			spec.Mesh, cfg.Jobs, spec.Measure.Warmup, spec.Measure.Window),
		Columns: []string{"mode", "jobs", "elapsed", "jobs/sec"},
	}
	for _, c := range cells {
		t.AddRow(strings.TrimPrefix(c.Scenario, "serve-"),
			fmt.Sprintf("%d", c.Trials),
			fmt.Sprintf("%.3fs", c.ElapsedSec),
			fmt.Sprintf("%.1f", c.JobsPerSec))
	}
	t.AddNote("cold: distinct seeds, every submission computes; cached: one digest, every submission is a cache hit.")
	return cells, t, nil
}

// serveCell shapes one throughput measurement as a benchmark cell. The spec's
// workload fields keep the cell key unique next to the event-core cells.
func serveCell(name string, spec scenario.Spec, jobs int, elapsed time.Duration) scenario.BenchResult {
	res := scenario.BenchResult{
		Scenario: name,
		Mesh:     spec.Mesh.String(),
		Pattern:  spec.Workload.Patterns[0].Name,
		Model:    spec.Models[0].Name,
		Rate:     spec.Workload.Rates[0],
		Faults:   spec.Faults.Counts[0],
		Warmup:   spec.Measure.Warmup,
		Window:   spec.Measure.Window,
		Trials:   jobs,
		Seed:     spec.Seed,
	}
	res.ElapsedSec = elapsed.Seconds()
	if res.ElapsedSec > 0 {
		res.JobsPerSec = float64(jobs) / res.ElapsedSec
	}
	return res
}

// runSubmissions pushes n submissions through the full HTTP handler path and
// waits for all of them to reach a terminal state, returning the wall-clock
// total. distinctSeeds defeats the result cache (each job computes); without
// it every submission shares one digest.
func runSubmissions(s *Server, spec scenario.Spec, n int, distinctSeeds bool) (time.Duration, error) {
	start := time.Now()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		submitSpec := spec
		if distinctSeeds {
			submitSpec.Seed = spec.Seed + 1000 + uint64(i)
		}
		body, err := json.Marshal(submitSpec)
		if err != nil {
			return 0, err
		}
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted && rec.Code != http.StatusOK {
			return 0, fmt.Errorf("submission %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		var info JobInfo
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			return 0, err
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		job, ok := s.job(id)
		if !ok {
			return 0, fmt.Errorf("job %s vanished", id)
		}
		if err := waitJob(job); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// waitJob blocks until a job is terminal, failing on anything but done.
func waitJob(j *Job) error {
	from := 0
	for {
		evs, terminal, wait := j.eventsFrom(from)
		from += len(evs)
		if terminal {
			info := j.Info(false)
			if info.Status != StatusDone {
				return fmt.Errorf("job %s: %s (%s)", info.ID, info.Status, info.Error)
			}
			return nil
		}
		if wait != nil {
			<-wait
		}
	}
}
