package server

import (
	"fmt"
	"sync"
	"time"
)

// ChaosPoint names one fault-injection site in the serving path. The seam
// exists for the chaos tests (and any future operational fault drills): a
// rule installed at a point makes the server panic, stall or drop an
// operation exactly where a real fault would land, so every recovery path is
// drivable from a `-race` test without timing luck.
type ChaosPoint string

const (
	// ChaosRun fires on the worker goroutine immediately before a claimed
	// job's scenario executes — inside the job-runner recover, so a Panic
	// rule here proves panic isolation end to end.
	ChaosRun ChaosPoint = "job.run"
	// ChaosSeal fires immediately before a job's terminal state is recorded;
	// a Delay rule widens the window for cancel/DELETE racing the final seal.
	ChaosSeal ChaosPoint = "job.seal"
	// ChaosJournalSubmit fires before a submit record is appended to the
	// journal; an Err rule drops the record (a crash between admission and
	// the journal write).
	ChaosJournalSubmit ChaosPoint = "journal.submit"
	// ChaosJournalSeal fires before a seal record is appended to the journal;
	// an Err rule drops the record, simulating a crash after the job was
	// admitted but before its outcome was made durable — the journal-replay
	// path on restart.
	ChaosJournalSeal ChaosPoint = "journal.seal"
)

// ChaosRule is what happens when execution crosses an armed ChaosPoint.
// Delay applies first, then Panic, then Err.
type ChaosRule struct {
	// Delay stalls the crossing goroutine before anything else.
	Delay time.Duration
	// Panic panics at the point (recovered wherever production recovers).
	Panic bool
	// Err is returned to the point's caller; for journal points a non-nil
	// Err drops the record.
	Err error
	// Times arms the rule for this many crossings (0 = until removed).
	Times int
}

// chaos holds the armed rules; the zero value (no rules) is the production
// state and costs one mutex acquisition per job-granularity crossing — the
// packet-level hot path never crosses a chaos point.
type chaos struct {
	mu    sync.Mutex
	rules map[ChaosPoint]*ChaosRule
}

// InjectFault arms a chaos rule at a point, replacing any existing rule
// there. Test-harness API: production servers never call it.
func (s *Server) InjectFault(p ChaosPoint, r ChaosRule) {
	s.chaos.mu.Lock()
	defer s.chaos.mu.Unlock()
	if s.chaos.rules == nil {
		s.chaos.rules = make(map[ChaosPoint]*ChaosRule)
	}
	rule := r
	s.chaos.rules[p] = &rule
}

// ClearFaults disarms every chaos rule.
func (s *Server) ClearFaults() {
	s.chaos.mu.Lock()
	defer s.chaos.mu.Unlock()
	s.chaos.rules = nil
}

// hit crosses a chaos point: it applies the armed rule (if any) and returns
// the rule's error. A Panic rule panics here, on the crossing goroutine.
func (c *chaos) hit(p ChaosPoint) error {
	c.mu.Lock()
	r, ok := c.rules[p]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	rule := *r
	if r.Times > 0 {
		r.Times--
		if r.Times == 0 {
			delete(c.rules, p)
		}
	}
	c.mu.Unlock()
	if rule.Delay > 0 {
		time.Sleep(rule.Delay)
	}
	if rule.Panic {
		panic(fmt.Sprintf("chaos: injected panic at %s", p))
	}
	return rule.Err
}
