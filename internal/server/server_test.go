package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mccmesh/internal/scenario"
)

// testSpec is a fast two-cell traffic scenario; variants derive from it by
// patching fields before marshalling.
func testSpec() scenario.Spec {
	return scenario.Spec{
		Name:   "server-test",
		Mesh:   scenario.Cube(5),
		Faults: scenario.FaultSpec{Inject: scenario.C("uniform"), Counts: []int{4}},
		Models: scenario.ComponentsOf("mcc"),
		Workload: scenario.WorkloadSpec{
			Patterns: scenario.ComponentsOf("uniform"),
			Rates:    []float64{0.02, 0.04},
		},
		Measure: scenario.MeasureSpec{Kind: scenario.MeasureTraffic, Warmup: 5, Window: 30},
		Seed:    11,
		Trials:  2,
		Workers: 2,
	}
}

func specJSON(t *testing.T, spec scenario.Spec) string {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = -1 // tests hard-cancel on Close unless they opt in
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func decodeInfo(t *testing.T, r io.Reader) JobInfo {
	t.Helper()
	var info JobInfo
	if err := json.NewDecoder(r).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// submitSpec posts a spec and returns the response info plus headers.
func submitSpec(t *testing.T, ts *httptest.Server, body string) (JobInfo, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	return decodeInfo(t, resp.Body), resp
}

// waitTerminal polls a job until it leaves the queue/run states.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		info := decodeInfo(t, resp.Body)
		resp.Body.Close()
		if info.Status.Terminal() {
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobInfo{}
}

// waitRunning polls a job until a worker has claimed it.
func waitRunning(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeInfo(t, resp.Body).Status
		resp.Body.Close()
		if st == StatusRunning {
			return
		}
		if st.Terminal() {
			t.Fatalf("job %s reached %q before running", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

func TestSubmitRunsToDone(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 2})
	info, resp := submitSpec(t, ts, specJSON(t, testSpec()))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: status %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	if info.Status != StatusQueued && info.Status != StatusRunning {
		t.Errorf("fresh job status = %q", info.Status)
	}
	done := waitTerminal(t, ts, info.ID)
	if done.Status != StatusDone {
		t.Fatalf("status = %q (err %q), want done", done.Status, done.Error)
	}
	if done.Report == nil || len(done.Report.Cells) != 2 {
		t.Fatalf("report missing or wrong shape: %+v", done.Report)
	}
	if done.Cached {
		t.Error("first run marked cached")
	}
	if done.Events == 0 {
		t.Error("no observer events recorded")
	}
}

func TestResubmissionHitsCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 2})
	body := specJSON(t, testSpec())
	first, _ := submitSpec(t, ts, body)
	firstDone := waitTerminal(t, ts, first.ID)

	// Resubmit with a different worker count: the digest ignores the
	// execution knob, so this must still hit.
	spec := testSpec()
	spec.Workers = 7
	second, resp := submitSpec(t, ts, specJSON(t, spec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submission: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q, want hit", got)
	}
	if resp.Header.Get("ETag") != etagOf(first.Digest) {
		t.Errorf("ETag = %q, want %q", resp.Header.Get("ETag"), etagOf(first.Digest))
	}
	if !second.Cached || second.Status != StatusDone {
		t.Fatalf("cached job: %+v", second)
	}
	secondDone := waitTerminal(t, ts, second.ID)

	repA, _ := json.Marshal(firstDone.Report)
	repB, _ := json.Marshal(secondDone.Report)
	if string(repA) != string(repB) {
		t.Errorf("cached report differs from computed report:\n%s\n%s", repA, repB)
	}
	if secondDone.Events != firstDone.Events {
		t.Errorf("cached event log length %d != original %d", secondDone.Events, firstDone.Events)
	}
	counters := s.Counters()
	if counters["server.jobs_completed"] != 1 {
		t.Errorf("jobs_completed = %d, want 1 (cache hit must not recompute)", counters["server.jobs_completed"])
	}
	if counters["server.cache_hits"] != 1 {
		t.Errorf("cache_hits = %d, want 1", counters["server.cache_hits"])
	}
}

func TestConditionalGetReturns304(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	info, _ := submitSpec(t, ts, specJSON(t, testSpec()))
	waitTerminal(t, ts, info.ID)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+info.ID, nil)
	req.Header.Set("If-None-Match", etagOf(info.Digest))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: status %d, want 304", resp.StatusCode)
	}
}

// TestConcurrentJobsShareTopology is the acceptance gate: >= 4 jobs in
// flight at once over the same topology, race-clean (go test -race covers
// this test), every report identical to a direct sequential run.
func TestConcurrentJobsShareTopology(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 4})

	// The reference report: the same spec run directly, no server involved.
	ref, err := scenario.New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(refRep.Cells)

	// Distinct seeds defeat the result cache so all jobs really execute;
	// mesh and faults stay equal so the topology pool is shared. Job 0 keeps
	// the reference seed for the equality check.
	const n = 6
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := testSpec()
			spec.Seed += uint64(i)
			info, _ := submitSpec(t, ts, specJSON(t, spec))
			ids[i] = info.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		done := waitTerminal(t, ts, id)
		if done.Status != StatusDone {
			t.Fatalf("job %d (%s): status %q, err %q", i, id, done.Status, done.Error)
		}
		if i == 0 {
			got, _ := json.Marshal(done.Report.Cells)
			if string(got) != string(refJSON) {
				t.Errorf("served report differs from direct run:\n%s\n%s", got, refJSON)
			}
		}
	}
	topo := s.pool.Stats()
	if topo.Entries != 1 {
		t.Errorf("topology pool entries = %d, want 1 (all jobs share one prototype)", topo.Entries)
	}
	if topo.Shares != n-1 {
		t.Errorf("topology shares = %d, want %d", topo.Shares, n-1)
	}
	if topo.Clones == 0 {
		t.Error("no clones recorded: jobs did not draw from the pool")
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	// A long spec: plenty of cells and window so cancellation lands mid-run.
	spec := testSpec()
	spec.Workload.Rates = []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06}
	spec.Measure.Window = 2000
	spec.Trials = 8
	info, _ := submitSpec(t, ts, specJSON(t, spec))
	waitRunning(t, ts, info.ID)
	resp, err := http.Post(ts.URL+"/v1/jobs/"+info.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done := waitTerminal(t, ts, info.ID)
	if done.Status != StatusCanceled {
		t.Fatalf("status = %q (err %q), want canceled", done.Status, done.Error)
	}
	if !strings.Contains(done.Error, "context canceled") {
		t.Errorf("error = %q, want a context.Canceled message", done.Error)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	// Fill the single worker with a job far too large to finish before the
	// cancel below lands, then queue a second and cancel it before it runs.
	slow := testSpec()
	slow.Mesh = scenario.Cube(9)
	slow.Measure.Window = 200000
	slow.Trials = 64
	blocker, _ := submitSpec(t, ts, specJSON(t, slow))
	waitRunning(t, ts, blocker.ID)

	queued := testSpec()
	queued.Seed = 999
	info, _ := submitSpec(t, ts, specJSON(t, queued))
	resp, err := http.Post(ts.URL+"/v1/jobs/"+info.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done := waitTerminal(t, ts, info.ID)
	if done.Status != StatusCanceled {
		t.Fatalf("queued-then-cancelled job: status %q, want canceled", done.Status)
	}
	if done.Report != nil {
		t.Error("cancelled-while-queued job has a report")
	}
	// Unblock the worker so Cleanup does not wait on the slow job.
	http.Post(ts.URL+"/v1/jobs/"+blocker.ID+"/cancel", "", nil) //nolint:errcheck
}

// TestEventStreamMatchesDirectRun pins the streamed NDJSON event sequence to
// the observer stream of a direct run — the server adds transport, never
// content. The direct run uses a different worker count: the stream is
// workers-invariant end to end.
func TestEventStreamMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	info, _ := submitSpec(t, ts, specJSON(t, testSpec()))
	waitTerminal(t, ts, info.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var streamed []JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		streamed = append(streamed, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	spec := testSpec()
	spec.Workers = 4
	var direct []JobEvent
	dsc, err := scenario.New(spec, scenario.WithObserver(func(ev scenario.Event) {
		direct = append(direct, wireEvent(ev))
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dsc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	a, _ := json.Marshal(streamed)
	b, _ := json.Marshal(direct)
	if string(a) != string(b) {
		t.Errorf("streamed events differ from direct observer stream:\n%s\n%s", a, b)
	}
}

// TestEventStreamLive attaches to the stream before the job finishes and
// reads through to EOF, exercising the wait/wake path.
func TestEventStreamLive(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	info, _ := submitSpec(t, ts, specJSON(t, testSpec()))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("live stream delivered no events")
	}
	done := waitTerminal(t, ts, info.ID)
	if done.Events != lines {
		t.Errorf("streamed %d events, job recorded %d", lines, done.Events)
	}
}

// TestReportTextMatchesDirectRender pins the text rendering to the bytes
// `mcc run -spec` prints, enabling byte-for-byte CI diffs.
func TestReportTextMatchesDirectRender(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	info, _ := submitSpec(t, ts, specJSON(t, testSpec()))
	waitTerminal(t, ts, info.ID)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/report?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	sc, err := scenario.New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := rep.Table.Render() + "\n"
	if string(body) != want {
		t.Errorf("served text report differs from direct render:\n--- served\n%s\n--- direct\n%s", body, want)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed", `{"mesh": `},
		{"unknown field", `{"mesh": {"x": 5, "y": 5, "z": 5}, "meshes": 3}`},
		{"invalid component", `{"mesh": {"x": 5, "y": 5, "z": 5}, "model": ["nope"]}`},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr apiError
		json.NewDecoder(resp.Body).Decode(&apiErr) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if apiErr.Error == "" {
			t.Errorf("%s: empty error payload", tc.name)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	info, _ := submitSpec(t, ts, specJSON(t, testSpec()))
	waitTerminal(t, ts, info.ID)

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Jobs["done"] != 1 {
		t.Errorf("stats jobs = %v, want 1 done", st.Jobs)
	}
	if st.Counters["server.jobs_submitted"] != 1 {
		t.Errorf("counters = %v", st.Counters)
	}
	if st.Topo.Entries != 1 || st.Topo.Clones == 0 {
		t.Errorf("topo stats = %+v", st.Topo)
	}
}

func TestTelemetryJobBypassesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	body := specJSON(t, testSpec())
	plain, _ := submitSpec(t, ts, body)
	waitTerminal(t, ts, plain.ID)

	resp, err := http.Post(ts.URL+"/v1/jobs?telemetry=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	telInfo := decodeInfo(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("telemetry submission: status %d, want 202 (must not be served from cache)", resp.StatusCode)
	}
	done := waitTerminal(t, ts, telInfo.ID)
	if done.Status != StatusDone {
		t.Fatalf("telemetry job: %q (%s)", done.Status, done.Error)
	}
	if done.Report.Telemetry == nil {
		t.Error("telemetry job report has no counter section")
	}
	// The telemetry run must not have poisoned the cache for plain jobs.
	third, resp3 := submitSpec(t, ts, body)
	if resp3.Header.Get("X-Cache") != "hit" {
		t.Error("plain resubmission missed the cache after a telemetry run")
	}
	done3 := waitTerminal(t, ts, third.ID)
	if done3.Report.Telemetry != nil {
		t.Error("cached plain report carries telemetry")
	}
	if got := s.Counters()["server.jobs_completed"]; got != 2 {
		t.Errorf("jobs_completed = %d, want 2", got)
	}
}

func TestQueueFullReturns503(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1, Queue: 1})
	slow := testSpec()
	slow.Mesh = scenario.Cube(9)
	slow.Measure.Window = 200000
	slow.Trials = 64
	// One running + one queued fills the server; the third must bounce. The
	// first submission must be claimed before the second lands, or the second
	// would itself see a full queue.
	ids := []string{}
	for i := 0; i < 2; i++ {
		spec := slow
		spec.Seed = uint64(100 + i)
		info, _ := submitSpec(t, ts, specJSON(t, spec))
		ids = append(ids, info.ID)
		if i == 0 {
			waitRunning(t, ts, info.ID)
		}
	}
	spec := slow
	spec.Seed = 300
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(specJSON(t, spec)))
	if err != nil {
		t.Fatal(err)
	}
	var payload apiError
	json.NewDecoder(resp.Body).Decode(&payload) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submission: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 503 carries no Retry-After header")
	}
	if payload.Status != http.StatusServiceUnavailable || payload.RetryAfterSec < 1 {
		t.Errorf("queue-full structured body = %+v", payload)
	}
	for _, id := range ids {
		http.Post(ts.URL+"/v1/jobs/"+id+"/cancel", "", nil) //nolint:errcheck
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events", "/v1/jobs/nope/report"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestSSEFraming(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	info, _ := submitSpec(t, ts, specJSON(t, testSpec()))
	waitTerminal(t, ts, info.ID)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+info.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "data: {") {
		t.Error("SSE stream has no data frames")
	}
	if !strings.HasSuffix(text, fmt.Sprintf("event: done\ndata: %q\n\n", StatusDone)) {
		t.Errorf("SSE stream does not end with the done event:\n%s", text[max(0, len(text)-200):])
	}
}
