package server

import (
	"sync"

	"mccmesh/internal/scenario"
)

// resultCache is the server's report cache, keyed by the canonical spec
// digest: a resubmission of a byte-equal spec (after normalisation, and
// ignoring the exec block — workers, shards, timeout; see
// scenario.Spec.Digest) is answered with the stored report and replayed event
// log instead of recomputing. Results are workers- and shards-invariant by
// construction, so a cached report is bit-identical to what a fresh run would
// produce. Only telemetry-free runs
// are cached: telemetry changes report content without changing the digest.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	order   []string // LRU order, oldest first
	hits    int64
	misses  int64
}

// cacheEntry stores one completed job's outcome. The report and events are
// treated as immutable once inserted; handlers serialise them without copying.
type cacheEntry struct {
	report *scenario.Report
	events []JobEvent
	jobID  string // the job that computed the result, echoed to clients
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 128
	}
	return &resultCache{max: max, entries: make(map[string]*cacheEntry)}
}

// get returns the cached outcome for a digest, refreshing its LRU position.
func (c *resultCache) get(digest string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[digest]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.touchLocked(digest)
	return e, true
}

// put stores a completed job's outcome, evicting the least recently used
// entry when full.
func (c *resultCache) put(digest string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[digest]; ok {
		c.entries[digest] = e
		c.touchLocked(digest)
		return
	}
	c.entries[digest] = e
	c.order = append(c.order, digest)
	for len(c.entries) > c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
}

// touchLocked moves a digest to the most-recently-used end; callers hold mu.
func (c *resultCache) touchLocked(digest string) {
	for i, d := range c.order {
		if d == digest {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, digest)
}

// CacheStats is the cache's observable state (the /v1/stats payload).
type CacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}
