package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"mccmesh/internal/mesh"
)

// TestCheckedInSpecDigests pins the digest of every checked-in spec. A
// failure here means the canonical dump format (or the spec itself) changed —
// which silently invalidates every `mcc serve` cache and every digest
// recorded in CI logs — so the change must be deliberate: update the spec of
// record and these constants together.
func TestCheckedInSpecDigests(t *testing.T) {
	want := map[string]string{
		"e7.json":    "8b97ad38a4487ab154bba61b6569345ec01ee528368097810c4d274c5e84ce3e",
		"churn.json": "d9844167b114667720d27a682d77f42c60203db94ef4e616d1a8e31504d3b106",
		"smoke.json": "ff23801c8abcd402c0d3e82c757bd4482ed2e78e8b22a4e1d837a8ebef12e788",
	}
	for file, digest := range want {
		fh, err := os.Open("../../specs/" + file)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Load(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if got := sc.Digest(); got != digest {
			t.Errorf("%s: digest %s, want %s (canonical dump changed?)", file, got, digest)
		}
	}
}

func TestDigestIgnoresWorkers(t *testing.T) {
	a := tinySpec()
	b := tinySpec()
	b.Workers = 16
	if a.Digest() != b.Digest() {
		t.Error("digests differ across worker counts: the cache would miss on an execution knob")
	}
	c := tinySpec()
	c.Seed++
	if a.Digest() == c.Digest() {
		t.Error("digest ignored a seed change")
	}
}

func TestDigestAppliesDefaults(t *testing.T) {
	// A sparse spec and its explicit normal form are the same experiment.
	sparse := Spec{Mesh: Cube(7)}
	full := sparse.withDefaults()
	if sparse.Digest() != full.Digest() {
		t.Error("defaults-filled spec digests differently from its sparse form")
	}
}

func TestTopoKeyCoversMeshAndFaultsOnly(t *testing.T) {
	a := tinySpec()

	b := tinySpec() // workload/measure/seed changes keep the topology shared
	b.Seed++
	b.Workload.Rates = []float64{0.5}
	b.Measure.Window = 999
	if a.TopoKey() != b.TopoKey() {
		t.Error("topo key varies with non-topology fields")
	}

	c := tinySpec()
	c.Mesh = Cube(9)
	if a.TopoKey() == c.TopoKey() {
		t.Error("topo key ignored the mesh extents")
	}

	d := tinySpec()
	d.Faults.Counts = []int{25}
	if a.TopoKey() == d.TopoKey() {
		t.Error("topo key ignored the fault counts")
	}
}

// TestRunCancellationIsDistinguishable pins the cancel contract `mcc serve`
// job control relies on: cancelling the context mid-run surfaces an error
// satisfying errors.Is(err, context.Canceled), the partial report marks the
// interrupted cell CANCELLED (not FAILED), and the completed prefix of the
// sweep survives in the report.
func TestRunCancellationIsDistinguishable(t *testing.T) {
	spec := tinySpec() // 4 cells
	ctx, cancel := context.WithCancel(context.Background())
	sc, err := New(spec, WithObserver(func(ev Event) {
		if !ev.Done && ev.Cell == 1 {
			cancel() // cancel as the second cell starts
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if rep == nil {
		t.Fatal("cancelled run returned no partial report")
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("partial report has %d cells, want 2 (completed prefix + cancelled cell)", len(rep.Cells))
	}
	if rep.Cells[0].Err != "" {
		t.Errorf("completed cell carries error %q", rep.Cells[0].Err)
	}
	last := rep.Cells[1]
	if !strings.Contains(last.Err, "context canceled") {
		t.Errorf("interrupted cell error = %q, want a context-canceled message", last.Err)
	}
	for _, cell := range rep.Cells {
		for _, f := range cell.Row {
			if strings.HasPrefix(f, "FAILED") {
				t.Errorf("cancellation rendered as FAILED: %v", cell.Row)
			}
		}
	}
	if !strings.HasPrefix(last.Row[3], "CANCELLED") {
		t.Errorf("interrupted cell row = %v, want CANCELLED marker", last.Row)
	}
}

// TestConcurrentRunsOverSharedTopology is the re-entrancy gate behind the
// `mcc serve` topology pool: many scenarios running concurrently, all drawing
// trial meshes as Clones of one shared immutable prototype, must produce
// reports bit-identical to isolated sequential runs. `go test -race` proves
// the sharing is sound.
func TestConcurrentRunsOverSharedTopology(t *testing.T) {
	const n = 8
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = tinySpec()
		specs[i].Seed = uint64(100 + i) // distinct experiments, same topology
		specs[i].Workers = 2            // parallel trials inside each run too
	}

	// Sequential reference: each spec run in isolation, building its own mesh.
	want := make([]string, n)
	for i, spec := range specs {
		sc, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		cells, _ := json.Marshal(rep.Cells)
		want[i] = rep.Table.CSV() + string(cells)
	}

	// Concurrent: one fault-free prototype, every trial of every run clones it.
	proto := specs[0].Mesh.New()
	var wg sync.WaitGroup
	got := make([]string, n)
	errs := make([]error, n)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc, err := New(specs[i], WithMeshSource(func() *mesh.Mesh { return proto.Clone() }))
			if err != nil {
				errs[i] = err
				return
			}
			rep, err := sc.Run(context.Background())
			if err != nil {
				errs[i] = err
				return
			}
			cells, _ := json.Marshal(rep.Cells)
			got[i] = rep.Table.CSV() + string(cells)
		}(i)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("run %d over shared topology diverged from its isolated run:\n--- shared\n%s\n--- isolated\n%s",
				i, got[i], want[i])
		}
	}
}

// TestMeshSourceFeedsTrials pins that an installed mesh source is actually
// what trials consume (a broken seam would silently fall back to spec.Mesh.New
// and the topology pool would share nothing).
func TestMeshSourceFeedsTrials(t *testing.T) {
	spec := tinySpec()
	proto := spec.Mesh.New()
	var mu sync.Mutex
	calls := 0
	sc, err := New(spec, WithMeshSource(func() *mesh.Mesh {
		mu.Lock()
		calls++
		mu.Unlock()
		return proto.Clone()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantMin := spec.Trials * 4 // 4 cells, one mesh per trial
	if calls < wantMin {
		t.Errorf("mesh source called %d times, want >= %d", calls, wantMin)
	}
}
