// Package scenario is the declarative experiment API: one JSON-serialisable
// Spec describes a mesh, a fault workload, the information models under test,
// a traffic workload and a measurement; a Scenario validates the spec against
// the component registries (fault.Injectors, traffic.Models,
// traffic.Patterns, scenario.Measures) and runs it to a structured Report.
//
// Every experiment of the evaluation harness (E1–E7) is a thin driver over
// this package, every `mcc` subcommand parses and emits the same spec format,
// and trial seeds derive purely from (spec seed, cell, trial), so a spec file
// reproduces its tables bit-identically at any worker count.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"mccmesh/internal/core"
	"mccmesh/internal/mesh"
	"mccmesh/internal/stats"
	"mccmesh/internal/telemetry"
)

// Scenario is a validated, runnable spec.
type Scenario struct {
	spec     Spec
	observer Observer

	// Telemetry knobs are execution state, not Spec fields: enabling counters
	// or tracing changes what a run reports, never what the spec means, so
	// spec files round-trip byte-identically with telemetry on or off (the
	// same treatment as the -workers override).
	telemetry            bool
	traceEvery, traceCap int

	// meshSource overrides how trial meshes are built (nil = spec.Mesh.New).
	// It is called concurrently from trial workers, so an implementation must
	// be safe for concurrent use; the meshes it returns become trial-private
	// mutable state. `mcc serve` installs a source cloning from a shared
	// immutable topology prototype here.
	meshSource func() *mesh.Mesh
}

// SetMeshSource installs a trial-mesh factory: every trial of the run draws
// its mesh from fn instead of building one from the spec's extents. fn must
// return a fresh fault-free mesh of the spec's topology each call and must be
// safe for concurrent use (trials run on parallel workers). The canonical
// source is a shared-topology pool handing out Clones of one immutable
// prototype, so concurrent jobs over the same topology share the read-only
// neighbour/point tables and clone only the mutable fault state.
func (sc *Scenario) SetMeshSource(fn func() *mesh.Mesh) { sc.meshSource = fn }

// newMesh builds one trial's mesh: the installed source, or the spec's own
// constructor.
func (sc *Scenario) newMesh() *mesh.Mesh {
	if sc.meshSource != nil {
		return sc.meshSource()
	}
	return sc.spec.Mesh.New()
}

// EnableTelemetry turns on the counter sink for every trial of the run: each
// cell's merged counter snapshot lands in Report.Telemetry and per-trial
// Progress events stream to the observer.
func (sc *Scenario) EnableTelemetry() { sc.telemetry = true }

// EnableTracing samples one packet in every n for hop-by-hop tracing (and
// implies EnableTelemetry); traces land in the report for WriteTracesJSONL.
func (sc *Scenario) EnableTracing(n int) {
	if n <= 0 {
		n = 64
	}
	sc.telemetry = true
	sc.traceEvery = n
	if sc.traceCap == 0 {
		sc.traceCap = 256
	}
}

// SetShards overrides the resolved per-trial shard count of a validated
// scenario — the hook `mcc serve -max-shards` uses to clamp what submitted
// specs request. Shards are digest-excluded, so the override never changes
// the scenario's identity or its results.
func (sc *Scenario) SetShards(n int) { sc.spec.SetShards(n) }

// Option configures a Scenario under construction; see the With* functions.
type Option func(*Scenario)

// New validates spec (after applying opts and filling defaults) and returns
// the runnable scenario.
func New(spec Spec, opts ...Option) (*Scenario, error) {
	sc := &Scenario{spec: spec}
	for _, opt := range opts {
		opt(sc)
	}
	sc.spec = sc.spec.withDefaults()
	if err := sc.spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return sc, nil
}

// Build constructs a scenario from options alone (the functional-options
// entrypoint behind mccmesh.NewScenario).
func Build(opts ...Option) (*Scenario, error) { return New(Spec{}, opts...) }

// Load reads a JSON spec and returns the validated scenario. Unknown JSON
// fields are rejected so a misspelt key fails instead of silently running the
// default.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	// A spec file is exactly one JSON document. Silently ignoring trailing
	// content would half-read e.g. a concatenation of several dumped specs.
	if dec.More() {
		return nil, fmt.Errorf("scenario: spec carries trailing content after the first JSON document (one spec per file)")
	}
	return New(spec)
}

// Spec returns the normalised spec (defaults filled in).
func (sc *Scenario) Spec() Spec { return sc.spec }

// WriteSpec pretty-prints the normalised spec as JSON, the exact format Load
// accepts (`mcc ... -dump-spec`).
func (sc *Scenario) WriteSpec(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc.spec)
}

// Observe installs an observer that streams per-cell progress during Run.
func (sc *Scenario) Observe(f Observer) { sc.observer = f }

// Run executes the scenario's measure and returns the structured report. The
// context is checked between cells and between trials; cancelling it abandons
// the run and returns an error satisfying errors.Is(err, ctx.Err()) — job
// runners distinguish cancellation from failure that way. Measures that can
// return the completed prefix of a cancelled sweep do (the traffic measure
// marks the interrupted cell CANCELLED in Cell.Err), so the report may be
// non-nil alongside the error.
func (sc *Scenario) Run(ctx context.Context) (*Report, error) {
	e, err := Measures.Lookup(sc.spec.Measure.Kind)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	rep, err := e.New(ctx, sc)
	if rep != nil {
		rep.Spec = sc.spec
		rep.Measure = e.Name
	}
	return rep, err
}

// Report is the structured outcome of one scenario run: the rendered table
// plus one Cell of raw values per sweep point.
type Report struct {
	// Spec is the normalised spec that produced the report.
	Spec Spec `json:"spec"`
	// Measure is the canonical measure name that ran.
	Measure string `json:"measure"`
	// Table is the experiment table, ready for Render or CSV.
	Table *stats.Table `json:"table"`
	// Cells are the per-sweep-point results in table-row order.
	Cells []Cell `json:"cells,omitempty"`
	// Telemetry holds one merged counter snapshot per cell, in cell order;
	// nil unless the run enabled telemetry.
	Telemetry []CellTelemetry `json:"telemetry,omitempty"`
	// bench holds the machine-readable results of the bench measure (see
	// BenchResults); other measures leave it nil.
	bench []BenchResult
	// traces holds the sampled packet traces of a tracing-enabled run, in
	// (cell, trial, packet) order.
	traces []TraceRecord
}

// CellTelemetry is the merged counter snapshot of one sweep cell.
type CellTelemetry struct {
	// Cell is the cell's index (matches Cell.Index); Label identifies it.
	Cell  int    `json:"cell"`
	Label string `json:"label"`
	// Counters maps counter names to merged values (counts sum across trials,
	// gauges take the max); zero-valued counters are omitted.
	Counters map[string]int64 `json:"counters"`
}

// TraceRecord is one sampled packet trace tagged with the cell and trial that
// produced it.
type TraceRecord struct {
	Cell  int `json:"cell"`
	Trial int `json:"trial"`
	telemetry.Trace
}

// Traces returns the sampled packet traces of a tracing-enabled run, in
// (cell, trial, packet) order; nil otherwise.
func (rep *Report) Traces() []TraceRecord { return rep.traces }

// WriteTracesJSONL writes the report's sampled packet traces as JSON Lines,
// one trace per line (`mcc run -trace out.jsonl`).
func (rep *Report) WriteTracesJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range rep.traces {
		if err := enc.Encode(&rep.traces[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetricsJSON writes the telemetry sections of one or more reports as one
// indented JSON document (`mcc run -metrics out.json`): a list of per-cell
// counter snapshots under "cells".
func WriteMetricsJSON(w io.Writer, reps ...*Report) error {
	cells := make([]CellTelemetry, 0, len(reps))
	for _, rep := range reps {
		cells = append(cells, rep.Telemetry...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"cells": cells})
}

// Cell is one sweep point of a report: the labels that identify it, the
// formatted table row and (where the measure provides them) raw numeric
// values keyed by metric name.
type Cell struct {
	// Index is the cell's position in the sweep (and in Table.Rows).
	Index int `json:"index"`
	// Pattern, Model and Rate identify a traffic cell.
	Pattern string  `json:"pattern,omitempty"`
	Model   string  `json:"model,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	// Faults identifies a fault-count-sweep cell.
	Faults int `json:"faults,omitempty"`
	// Row is the formatted table row of the cell.
	Row []string `json:"row,omitempty"`
	// Values are raw (unformatted) metrics keyed by name.
	Values map[string]float64 `json:"values,omitempty"`
	// Err is set when the cell failed (e.g. a trial exhausted the simulator's
	// event budget); the rest of the sweep still runs.
	Err string `json:"error,omitempty"`
}

// Event is one progress notification streamed to the observer: a cell is
// about to run (Done == false) or has finished (Done == true, Row filled).
type Event struct {
	// Measure is the running measure's canonical name.
	Measure string
	// Cell and Total locate the cell within the sweep.
	Cell, Total int
	// Label identifies the cell ("uniform/mcc/0.010", "faults=50").
	Label string
	// Done distinguishes cell completion from cell start.
	Done bool
	// Row is the cell's formatted table row (completion events only).
	Row []string
	// Progress marks a per-trial telemetry event (telemetry-enabled runs
	// only): Trial is the trial index within the cell and Counters its
	// counter snapshot. Progress events stream in trial order between a
	// cell's start and Done events, identically at any worker count.
	Progress bool
	Trial    int
	Counters map[string]int64
}

// Observer receives progress events during Run. Observers run synchronously
// on the measure goroutine: keep them fast.
type Observer func(Event)

// emit sends an event to the observer, if any.
func (sc *Scenario) emit(ev Event) {
	if sc.observer != nil {
		ev.Measure = sc.spec.Measure.Kind
		sc.observer(ev)
	}
}

// probeModel wraps a probe mesh for registry validation.
func probeModel(m *mesh.Mesh) *core.Model { return core.NewModel(m) }
