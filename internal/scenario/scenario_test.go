package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mccmesh/internal/registry"
	"mccmesh/internal/traffic"
)

// tinySpec is a fast multi-cell traffic scenario exercising parameterised
// components and a mid-run fault schedule.
func tinySpec() Spec {
	return Spec{
		Name:   "tiny",
		Mesh:   Cube(7),
		Faults: FaultSpec{Inject: C("uniform"), Counts: []int{10}},
		Models: ComponentsOf("mcc", "rfb"),
		Workload: WorkloadSpec{
			Patterns: Components{
				C("uniform"),
				{Name: "hotspot", Params: map[string]any{"fraction": 0.2}},
			},
			Rates: []float64{0.02},
		},
		Measure: MeasureSpec{Kind: MeasureTraffic, Warmup: 10, Window: 60},
		Seed:    42,
		Trials:  3,
		Workers: 1,
	}
}

func mustRun(t *testing.T, sc *Scenario) *Report {
	t.Helper()
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestTrafficReportShape(t *testing.T) {
	sc, err := New(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, sc)
	if rep.Measure != MeasureTraffic {
		t.Errorf("measure = %q", rep.Measure)
	}
	wantCells := 2 * 2 * 1 // patterns × models × rates
	if len(rep.Cells) != wantCells || len(rep.Table.Rows) != wantCells {
		t.Fatalf("got %d cells / %d rows, want %d", len(rep.Cells), len(rep.Table.Rows), wantCells)
	}
	for i, c := range rep.Cells {
		if c.Index != i || c.Pattern == "" || c.Model == "" || c.Rate == 0 {
			t.Errorf("cell %d incomplete: %+v", i, c)
		}
		if c.Values["throughput"] <= 0 {
			t.Errorf("cell %d: no traffic flowed: %v", i, c.Values)
		}
		if len(c.Row) != len(rep.Table.Columns) {
			t.Errorf("cell %d: row width %d != %d columns", i, len(c.Row), len(rep.Table.Columns))
		}
	}
}

// TestJSONRoundTripIdenticalReport is the scenario-API contract: a spec
// survives encode → decode and the decoded spec reproduces the identical
// report, regardless of the worker count.
func TestJSONRoundTripIdenticalReport(t *testing.T) {
	orig, err := New(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteSpec(&buf); err != nil {
		t.Fatal(err)
	}
	encoded := buf.String()

	decoded, err := Load(strings.NewReader(encoded))
	if err != nil {
		t.Fatalf("round-trip decode failed: %v\nspec:\n%s", err, encoded)
	}
	// Workers is part of the spec but must not be part of the result:
	// run the original serially and the decoded copy on eight workers.
	decoded.spec.SetWorkers(8)

	repA := mustRun(t, orig)
	repB := mustRun(t, decoded)
	if repA.Table.CSV() != repB.Table.CSV() {
		t.Errorf("round-tripped spec produced a different table:\n--- original (workers=1)\n%s\n--- decoded (workers=8)\n%s",
			repA.Table.CSV(), repB.Table.CSV())
	}
	cellsA, _ := json.Marshal(repA.Cells)
	cellsB, _ := json.Marshal(repB.Cells)
	if string(cellsA) != string(cellsB) {
		t.Errorf("round-tripped spec produced different cells:\n%s\n%s", cellsA, cellsB)
	}
	// A second encode of the decoded scenario is byte-identical: the dump
	// format is canonical.
	var buf2 bytes.Buffer
	if err := decoded.WriteSpec(&buf2); err != nil {
		t.Fatal(err)
	}
	reEncoded := strings.ReplaceAll(buf2.String(), `"workers": 8`, `"workers": 1`)
	if reEncoded != encoded {
		t.Errorf("dump is not canonical:\n--- first\n%s\n--- second\n%s", encoded, buf2.String())
	}
}

func TestFaultScheduleRuns(t *testing.T) {
	spec := tinySpec()
	spec.Faults.Schedule = []ScheduledFault{
		{At: 30, Inject: Component{Name: "clustered", Params: map[string]any{"count": 5, "size": 5}}},
	}
	sc, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, sc)
	if len(rep.Cells) == 0 {
		t.Fatal("no cells")
	}
	// The schedule must change the outcome relative to the static run.
	static := mustRun(t, mustNew(t, tinySpec()))
	if rep.Table.CSV() == static.Table.CSV() {
		t.Error("mid-run fault schedule had no effect on the table")
	}
}

func mustNew(t *testing.T, spec Spec, opts ...Option) *Scenario {
	t.Helper()
	sc, err := New(spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestRoutingMeasuresFromSpec(t *testing.T) {
	for _, kind := range []string{MeasureAbsorption, MeasureSuccess, MeasureOverhead, MeasureAblation} {
		sc := mustNew(t, Spec{
			Mesh:    Cube(6),
			Faults:  FaultSpec{Inject: C("uniform"), Counts: []int{4, 12}},
			Measure: MeasureSpec{Kind: kind, Pairs: 3, MinDistance: 5},
			Seed:    7,
			Trials:  2,
		})
		rep := mustRun(t, sc)
		if len(rep.Table.Rows) != 2 {
			t.Errorf("%s: got %d rows, want one per fault count", kind, len(rep.Table.Rows))
		}
		if rep.Cells[0].Faults != 4 || rep.Cells[1].Faults != 12 {
			t.Errorf("%s: cells mislabelled: %+v", kind, rep.Cells)
		}
	}
	for _, kind := range []string{MeasureDistance, MeasureAdaptivity} {
		sc := mustNew(t, Spec{
			Mesh:    Cube(6),
			Faults:  FaultSpec{Inject: C("uniform"), Counts: []int{10}},
			Measure: MeasureSpec{Kind: kind, Pairs: 3, MinDistance: 5},
			Seed:    7,
			Trials:  2,
		})
		rep := mustRun(t, sc)
		if len(rep.Table.Rows) == 0 {
			t.Errorf("%s: empty table", kind)
		}
	}
}

func TestMeasureAliases(t *testing.T) {
	sc := mustNew(t, Spec{
		Mesh:    Cube(6),
		Faults:  FaultSpec{Inject: C("uniform"), Counts: []int{4}},
		Measure: MeasureSpec{Kind: "e1"},
		Trials:  1,
	})
	rep := mustRun(t, sc)
	if rep.Measure != MeasureAbsorption {
		t.Errorf("alias e1 resolved to %q", rep.Measure)
	}
}

func TestDefaultsFill(t *testing.T) {
	sc := mustNew(t, Spec{Mesh: Cube(5)})
	spec := sc.Spec()
	if spec.Measure.Kind != MeasureTraffic || spec.Trials != 1 {
		t.Errorf("defaults not applied: %+v", spec.Measure)
	}
	if len(spec.Models) != 1 || spec.Models[0].Name != "mcc" {
		t.Errorf("default model: %v", spec.Models)
	}
	if len(spec.Workload.Patterns) != 1 || spec.Workload.Patterns[0].Name != "uniform" {
		t.Errorf("default pattern: %v", spec.Workload.Patterns)
	}
	if len(spec.Workload.Rates) != 1 || spec.Workload.Rates[0] != 0.01 {
		t.Errorf("default rates: %v", spec.Workload.Rates)
	}
	if spec.Faults.Inject.Name != "uniform" || len(spec.Faults.Counts) != 1 || spec.Faults.Counts[0] != 0 {
		t.Errorf("default faults: %+v", spec.Faults)
	}
	if spec.Measure.Window != 256 {
		t.Errorf("default window: %d", spec.Measure.Window)
	}
}

// TestCountFreeInjectors covers injectors whose schema has no "count"
// parameter: they must be usable as a scenario's static fault workload with
// their params passed verbatim.
func TestCountFreeInjectors(t *testing.T) {
	sc := mustNew(t, Spec{
		Mesh:    Cube(6),
		Faults:  FaultSpec{Inject: Component{Name: "rate", Params: map[string]any{"p": 0.08}}},
		Measure: MeasureSpec{Kind: MeasureAbsorption},
		Seed:    3,
		Trials:  2,
	})
	rep := mustRun(t, sc)
	if len(rep.Table.Rows) != 1 {
		t.Fatalf("rate-injector scenario produced %d rows", len(rep.Table.Rows))
	}
	sc = mustNew(t, Spec{
		Mesh: Cube(6),
		Faults: FaultSpec{Inject: Component{Name: "block", Params: map[string]any{
			"min": []any{1, 1, 1}, "max": []any{2, 2, 2},
		}}},
		Measure: MeasureSpec{Kind: MeasureAbsorption},
		Trials:  1,
	})
	mustRun(t, sc)
}

// TestMalformedInjectorCountIsRejected: a bad "count" on the injector must
// fail validation, not silently produce an empty sweep.
func TestMalformedInjectorCountIsRejected(t *testing.T) {
	_, err := New(Spec{
		Mesh:    Cube(6),
		Faults:  FaultSpec{Inject: Component{Name: "uniform", Params: map[string]any{"count": 5.5}}},
		Measure: MeasureSpec{Kind: MeasureAbsorption},
	})
	if err == nil || !strings.Contains(err.Error(), "not an integer") {
		t.Errorf("fractional count should fail validation: %v", err)
	}
}

// TestDistanceMeasureHonoursMinDistance: the spec field must change the
// sampling (with a floor of 2 so distance buckets stay valid).
func TestDistanceMeasureHonoursMinDistance(t *testing.T) {
	run := func(minDist int) string {
		sc := mustNew(t, Spec{
			Mesh:    Cube(6),
			Faults:  FaultSpec{Inject: C("uniform"), Counts: []int{8}},
			Measure: MeasureSpec{Kind: MeasureDistance, Pairs: 6, MinDistance: minDist},
			Seed:    5,
			Trials:  4,
		})
		return mustRun(t, sc).Table.CSV()
	}
	if run(2) == run(14) {
		t.Error("mindistance had no effect on the distance measure")
	}
	if run(0) != run(2) {
		t.Error("mindistance below the floor should behave like the floor")
	}
}

func TestCountFromInjectorParams(t *testing.T) {
	sc := mustNew(t, Spec{
		Mesh:   Cube(6),
		Faults: FaultSpec{Inject: Component{Name: "uniform", Params: map[string]any{"count": 9}}},
	})
	if got := sc.Spec().Faults.Counts; len(got) != 1 || got[0] != 9 {
		t.Errorf("count not derived from injector params: %v", got)
	}
}

func TestValidationErrorsAreActionable(t *testing.T) {
	base := tinySpec()

	bad := base
	bad.Workload.Patterns = ComponentsOf("hotpsot")
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), `did you mean "hotspot"?`) {
		t.Errorf("pattern typo: %v", err)
	}

	bad = base
	bad.Models = ComponentsOf("mc")
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), `did you mean "mcc"?`) {
		t.Errorf("model typo: %v", err)
	}

	bad = base
	bad.Faults.Inject = C("unifrom")
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), `did you mean "uniform"?`) {
		t.Errorf("injector typo: %v", err)
	}

	bad = base
	bad.Measure.Kind = "trafic"
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), `did you mean "traffic"?`) {
		t.Errorf("measure typo: %v", err)
	}

	bad = base
	bad.Workload.Patterns = Components{{Name: "hotspot", Params: map[string]any{"fractoin": 0.5}}}
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), `did you mean "fraction"?`) {
		t.Errorf("param typo: %v", err)
	}

	bad = base
	bad.Workload.Rates = []float64{1.5}
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "(0,1]") {
		t.Errorf("bad rate: %v", err)
	}

	bad = base
	bad.Mesh = MeshSpec{X: 1, Y: 5}
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "extents") {
		t.Errorf("bad mesh: %v", err)
	}

	bad = base
	bad.Faults.Counts = []int{10_000}
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("bad count: %v", err)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"mesh": {"x": 5, "y": 5}, "mush": 3}`))
	if err == nil || !strings.Contains(err.Error(), "mush") {
		t.Errorf("unknown field should be rejected: %v", err)
	}
	// The strictness must survive the component custom unmarshaler too:
	// "parms" inside an inject object is a silent no-op unless rejected.
	_, err = Load(strings.NewReader(`{"mesh": {"x": 5, "y": 5}, "faults": {"inject": {"name": "clustered", "parms": {"size": 10}}}}`))
	if err == nil || !strings.Contains(err.Error(), "parms") {
		t.Errorf("unknown component key should be rejected: %v", err)
	}
}

// TestCountFreeInjectorLabels: tables for rate/block workloads must not claim
// a fault count of 0.
func TestCountFreeInjectorLabels(t *testing.T) {
	sc := mustNew(t, Spec{
		Mesh:    Cube(6),
		Faults:  FaultSpec{Inject: Component{Name: "rate", Params: map[string]any{"p": 0.1}}},
		Measure: MeasureSpec{Kind: MeasureAbsorption},
		Seed:    3,
		Trials:  2,
	})
	rep := mustRun(t, sc)
	row := rep.Table.Rows[0]
	if row[0] != "rate{p=0.1}" || row[1] != "n/a" {
		t.Errorf("count-free workload mislabelled: %v", row[:2])
	}
	if !strings.Contains(mustRun(t, mustNew(t, Spec{
		Mesh:    Cube(6),
		Faults:  FaultSpec{Inject: Component{Name: "rate", Params: map[string]any{"p": 0.1}}},
		Measure: MeasureSpec{Kind: MeasureTraffic, Window: 40},
		Trials:  1,
	})).Table.Title, "rate{p=0.1} faults") {
		t.Error("traffic title should name the count-free injector")
	}
}

// TestPatternComponentsCaseInsensitive: the legacy -hotspot knob attaches for
// any casing, matching the case-insensitive registry lookup.
func TestPatternComponentsCaseInsensitive(t *testing.T) {
	cs := PatternComponents([]string{"Hotspot", "uniform"}, 0.4)
	if cs[0].Params["fraction"] != 0.4 {
		t.Errorf("fraction dropped for cased name: %+v", cs[0])
	}
	if cs[1].Params != nil {
		t.Errorf("fraction leaked onto uniform: %+v", cs[1])
	}
}

func TestComponentJSONForms(t *testing.T) {
	var cs Components
	if err := json.Unmarshal([]byte(`"uniform"`), &cs); err != nil || len(cs) != 1 || cs[0].Name != "uniform" {
		t.Errorf("bare string: %v %v", cs, err)
	}
	if err := json.Unmarshal([]byte(`["uniform", {"name": "hotspot", "params": {"fraction": 0.3}}]`), &cs); err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[1].Params["fraction"] != 0.3 {
		t.Errorf("mixed array: %+v", cs)
	}
	out, err := json.Marshal(cs)
	if err != nil || string(out) != `["uniform",{"name":"hotspot","params":{"fraction":0.3}}]` {
		t.Errorf("marshal: %s %v", out, err)
	}
}

func TestObserverStreamsProgress(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	sc := mustNew(t, tinySpec(), WithObserver(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	rep := mustRun(t, sc)
	wantCells := len(rep.Cells)
	if len(events) != 2*wantCells {
		t.Fatalf("got %d events, want %d (start+done per cell)", len(events), 2*wantCells)
	}
	for i := 0; i < wantCells; i++ {
		start, done := events[2*i], events[2*i+1]
		if start.Done || !done.Done {
			t.Errorf("cell %d: event order wrong: %+v %+v", i, start, done)
		}
		if start.Label == "" || start.Total != wantCells {
			t.Errorf("cell %d: bad start event: %+v", i, start)
		}
		if len(done.Row) == 0 {
			t.Errorf("cell %d: done event missing row", i)
		}
	}
}

// TestObserverStreamWorkersInvariant pins the full event stream — including
// the per-trial telemetry Progress events — as deterministic and identical at
// any worker count: Progress events are emitted in trial order after the
// sharded trials complete, never from the worker goroutines.
func TestObserverStreamWorkersInvariant(t *testing.T) {
	stream := func(workers int) []Event {
		var mu sync.Mutex
		var events []Event
		sc := mustNew(t, tinySpec(),
			WithWorkers(workers),
			WithTelemetry(),
			WithTracing(16),
			WithObserver(func(ev Event) {
				mu.Lock()
				events = append(events, ev)
				mu.Unlock()
			}))
		mustRun(t, sc)
		return events
	}
	one, eight := stream(1), stream(8)
	if !reflect.DeepEqual(one, eight) {
		if len(one) != len(eight) {
			t.Fatalf("event stream length differs: %d at workers=1, %d at workers=8", len(one), len(eight))
		}
		for i := range one {
			if !reflect.DeepEqual(one[i], eight[i]) {
				t.Fatalf("event %d differs:\nworkers=1: %+v\nworkers=8: %+v", i, one[i], eight[i])
			}
		}
	}
	var progress, withCounters int
	for _, ev := range one {
		if ev.Progress {
			progress++
			if ev.Counters != nil {
				withCounters++
			}
			if ev.Done {
				t.Errorf("Progress event also marked Done: %+v", ev)
			}
		}
	}
	if progress == 0 || withCounters != progress {
		t.Fatalf("want per-trial Progress events carrying counters, got %d (%d with counters)", progress, withCounters)
	}
}

// TestTelemetryReportSections checks the run-report pipeline end to end: a
// telemetry-enabled traffic run fills Report.Telemetry per cell, collects
// traces for WriteTracesJSONL and round-trips through WriteMetricsJSON.
func TestTelemetryReportSections(t *testing.T) {
	sc := mustNew(t, tinySpec(), WithTelemetry(), WithTracing(8))
	rep := mustRun(t, sc)
	if len(rep.Telemetry) != len(rep.Cells) {
		t.Fatalf("Report.Telemetry has %d entries, want one per cell (%d)", len(rep.Telemetry), len(rep.Cells))
	}
	for i, ct := range rep.Telemetry {
		if ct.Cell != i || ct.Label == "" || len(ct.Counters) == 0 {
			t.Errorf("cell %d telemetry malformed: %+v", i, ct)
		}
		if ct.Counters["traffic.injected"] == 0 {
			t.Errorf("cell %d counted no injected packets: %v", i, ct.Counters)
		}
	}
	if len(rep.Traces()) == 0 {
		t.Fatal("tracing-enabled run collected no traces")
	}
	var buf bytes.Buffer
	if err := rep.WriteTracesJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rep.Traces()) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), len(rep.Traces()))
	}
	for _, line := range lines {
		var tr TraceRecord
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("trace line is not valid JSON: %v\n%s", err, line)
		}
	}
	buf.Reset()
	if err := WriteMetricsJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cells []CellTelemetry `json:"cells"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON malformed: %v", err)
	}
	if len(doc.Cells) != len(rep.Telemetry) {
		t.Errorf("metrics JSON has %d cells, want %d", len(doc.Cells), len(rep.Telemetry))
	}
}

// TestTelemetryLeavesSpecAlone pins the spec byte-stability contract:
// telemetry knobs are execution state, so a telemetry-enabled scenario dumps
// exactly the same spec JSON as a plain one.
func TestTelemetryLeavesSpecAlone(t *testing.T) {
	plain := mustNew(t, tinySpec())
	instrumented := mustNew(t, tinySpec(), WithTelemetry(), WithTracing(8))
	var a, b bytes.Buffer
	if err := plain.WriteSpec(&a); err != nil {
		t.Fatal(err)
	}
	if err := instrumented.WriteSpec(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("enabling telemetry changed the dumped spec")
	}
}

func TestRunHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := mustNew(t, tinySpec())
	if _, err := sc.Run(ctx); err == nil {
		t.Error("cancelled context should abort the run")
	}
}

func TestOptionsBuildScenario(t *testing.T) {
	sc, err := Build(
		WithName("opt"),
		WithCube(7),
		WithFaults("clustered", Params{"size": 4}),
		WithFaultCounts(8),
		WithFaultSchedule(40, "uniform", Params{"count": 3}),
		WithModels("mcc"),
		WithModel("rfb"),
		WithPatterns("uniform"),
		WithPattern("hotspot", Params{"fraction": 0.15}),
		WithRates(0.02),
		WithMeasure("traffic"),
		WithWarmup(10),
		WithWindow(50),
		WithSeed(9),
		WithTrials(2),
		WithWorkers(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := sc.Spec()
	if spec.Name != "opt" || spec.Mesh != Cube(7) || spec.Seed != 9 || spec.Trials != 2 || spec.WorkerCount() != 3 {
		t.Errorf("scalar options not applied: %+v", spec)
	}
	if spec.Faults.Inject.Name != "clustered" || len(spec.Faults.Schedule) != 1 {
		t.Errorf("fault options not applied: %+v", spec.Faults)
	}
	if len(spec.Models) != 2 || len(spec.Workload.Patterns) != 2 {
		t.Errorf("component options not applied: %+v", spec)
	}
	rep := mustRun(t, sc)
	if len(rep.Cells) != 4 {
		t.Errorf("got %d cells, want 4", len(rep.Cells))
	}
}

// TestCheckedInSpecsLoad guards the spec files shipped in specs/: they must
// stay loadable, and the smoke spec must reproduce identically across worker
// counts through the exact path `mcc run -spec` uses.
func TestCheckedInSpecsLoad(t *testing.T) {
	load := func(path string, workers int) *Scenario {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sc, err := Load(f)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		spec := sc.Spec()
		spec.Workers = workers
		return mustNew(t, spec)
	}

	// e7.json is the canonical default E7 experiment; running it takes
	// minutes, so assert its shape rather than its table.
	e7 := load("../../specs/e7.json", 0)
	spec := e7.Spec()
	if spec.Measure.Kind != MeasureTraffic || spec.Mesh != Cube(10) || spec.Trials != 30 {
		t.Errorf("specs/e7.json drifted from the canonical E7 config: %+v", spec)
	}
	if len(spec.Workload.Patterns)*len(spec.Models)*len(spec.Workload.Rates) != 18 {
		t.Errorf("specs/e7.json should describe 18 cells: %+v", spec)
	}

	// smoke.json is small enough to run: identical tables at 1 and 8 workers.
	repA := mustRun(t, load("../../specs/smoke.json", 1))
	repB := mustRun(t, load("../../specs/smoke.json", 8))
	if repA.Table.CSV() != repB.Table.CSV() {
		t.Errorf("specs/smoke.json not worker-count invariant:\n%s\n%s", repA.Table.CSV(), repB.Table.CSV())
	}
	if len(repA.Cells) != 8 { // 2 patterns × 2 models × 2 rates
		t.Errorf("smoke spec produced %d cells, want 8", len(repA.Cells))
	}
}

// TestBuiltinRegistriesRejectDuplicates registers a colliding name against
// the real component registries and expects the panic that keeps the
// component namespace unambiguous.
func TestBuiltinRegistriesRejectDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a built-in pattern should panic")
		}
	}()
	traffic.Patterns.Register(registry.Entry[traffic.PatternCtor]{Name: "uniform"})
}

// TestTimelineSpecValidation: churn-timeline mistakes must fail fast with
// actionable messages, and a valid timeline must survive defaulting (shape
// "point", until = warmup + window).
func TestTimelineSpecValidation(t *testing.T) {
	base := func() Spec {
		return Spec{
			Mesh:   Cube(6),
			Faults: FaultSpec{Inject: C("uniform"), Counts: []int{5}, Timeline: &TimelineSpec{MTTF: 20, MTTR: 50}},
			Measure: MeasureSpec{
				Kind: MeasureTraffic, Warmup: 10, Window: 90,
			},
			Trials: 1,
		}
	}

	sc := mustNew(t, base())
	tl := sc.Spec().Faults.Timeline
	if tl.Shape.Name != "point" || tl.Until != 100 {
		t.Fatalf("timeline defaults not applied: %+v", tl)
	}

	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"routing measure", func(s *Spec) { s.Measure.Kind = MeasureSuccess }, "churn timeline needs"},
		{"unknown shape", func(s *Spec) { s.Faults.Timeline.Shape = C("regoin") }, "did you mean"},
		{"negative mttf", func(s *Spec) { s.Faults.Timeline.MTTF = -1 }, "non-negative"},
		{"empty timeline", func(s *Spec) { s.Faults.Timeline.MTTF = 0 }, "empty"},
		{"bad fixed injector", func(s *Spec) {
			s.Faults.Timeline.Fixed = []FixedChurn{{At: 5, Inject: C("nope")}}
		}, "unknown fault injector"},
		{"until before start", func(s *Spec) {
			s.Faults.Timeline.Start = 200
			s.Faults.Timeline.Until = 100
		}, "must exceed"},
	}
	for _, tc := range cases {
		spec := base()
		tc.mutate(&spec)
		_, err := New(spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want it to mention %q", tc.name, err, tc.want)
		}
	}
}

// TestTimelineDefaultsUnderMeasureAlias: a spec naming the measure by alias
// ("e7" for traffic) must default its timeline exactly like the canonical
// name — shape "point", until = warmup + window.
func TestTimelineDefaultsUnderMeasureAlias(t *testing.T) {
	sc := mustNew(t, Spec{
		Mesh:    Cube(6),
		Faults:  FaultSpec{Inject: C("uniform"), Counts: []int{5}, Timeline: &TimelineSpec{MTTF: 20, MTTR: 50}},
		Measure: MeasureSpec{Kind: "e7", Warmup: 10, Window: 90},
		Trials:  1,
	})
	tl := sc.Spec().Faults.Timeline
	if tl.Shape.Name != "point" || tl.Until != 100 {
		t.Fatalf("timeline defaults not applied under measure alias: %+v", tl)
	}
	if sc.Spec().Measure.Kind != "e7" {
		t.Fatalf("the alias the user wrote must be preserved, got %q", sc.Spec().Measure.Kind)
	}
}

// TestLoadRejectsTrailingContent: a spec file is one JSON document; a
// concatenation of several dumped specs must error instead of silently
// running only the first.
func TestLoadRejectsTrailingContent(t *testing.T) {
	doc := `{"mesh": {"x": 6, "y": 6, "z": 6}, "trials": 1}`
	if _, err := Load(strings.NewReader(doc + "\n" + doc)); err == nil ||
		!strings.Contains(err.Error(), "trailing content") {
		t.Fatalf("two concatenated specs should be rejected, got %v", err)
	}
	if _, err := Load(strings.NewReader(doc + "\n\n  \n")); err != nil {
		t.Fatalf("trailing whitespace must stay legal: %v", err)
	}
}
