package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"mccmesh/internal/core"
	"mccmesh/internal/registry"
	"mccmesh/internal/rng"
	"mccmesh/internal/simnet"
	"mccmesh/internal/stats"
	"mccmesh/internal/traffic"
)

// MeasureBench is the canonical name of the benchmark measure.
const MeasureBench = "bench"

func init() {
	Measures.Register(registry.Entry[MeasureFn]{
		Name: MeasureBench, Aliases: []string{"perf"},
		Doc: "event-core benchmark: events/sec, ns/packet and allocs/packet over a traffic run",
		New: measureBench,
	})
}

// BenchResult is the machine-readable outcome of one benchmark cell, the
// schema of BENCH_traffic.json. Rates are averaged over the spec's trials;
// alloc counts come from runtime.MemStats deltas around the timed runs, so a
// benchmark process should keep concurrent allocation noise (parallel
// workers, other goroutines) out of the measurement — the measure therefore
// always runs its trials sequentially, ignoring Spec.Workers.
type BenchResult struct {
	// Scenario names the benchmark spec the cell came from; empty for the
	// default reference workload, "churn" for the fault-churn workload. It
	// distinguishes cells whose mesh/pattern/model/rate would otherwise
	// collide in baseline matching.
	Scenario string `json:"scenario,omitempty"`
	// Mesh, Pattern, Model and Rate echo the benchmarked configuration.
	Mesh    string  `json:"mesh"`
	Pattern string  `json:"pattern"`
	Model   string  `json:"model"`
	Rate    float64 `json:"rate"`
	// Faults is the static fault count; Warmup/Window the simulated timeline.
	Faults int    `json:"faults"`
	Warmup int    `json:"warmup"`
	Window int    `json:"window"`
	Trials int    `json:"trials"`
	Seed   uint64 `json:"seed"`
	// Events and Packets total the simulator events and delivered packets of
	// the timed runs; ElapsedSec is their wall-clock total.
	Events     int     `json:"events"`
	Packets    int     `json:"packets"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// EventsPerSec, NsPerPacket and AllocsPerPacket are the headline rates:
	// simulator events processed per wall-clock second, wall-clock
	// nanoseconds per delivered packet (all of its hops included), and heap
	// allocations per delivered packet (amortising the per-trial setup).
	EventsPerSec    float64 `json:"events_per_sec"`
	NsPerPacket     float64 `json:"ns_per_packet"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	// JobsPerSec is the headline rate of the server throughput cells
	// (scenario "serve-cold"/"serve-cached"): spec submissions completed per
	// wall-clock second through the `mcc serve` HTTP pipeline. Zero for
	// event-core cells; server cells leave the event-core rates zero, which
	// keeps them outside the events/sec and allocs/packet baseline gates
	// (wall-clock job throughput on shared runners is informational only).
	JobsPerSec float64 `json:"jobs_per_sec,omitempty"`
	// Informational marks cells whose wall-clock rates are tracked but never
	// gated by the baseline comparison: sharded cells (Shards > 1 in the
	// spec's exec block) measure parallel speed-up, which moves with the
	// runner's core count and load, exactly like the JobsPerSec server cells.
	Informational bool `json:"informational,omitempty"`
	// Telemetry is the counter snapshot of one untimed probe trial (trial 0's
	// configuration with the counters live), run after the timed loop so the
	// headline rates stay telemetry-off. Baseline deltas compare it to spot
	// behavioural drift — e.g. a cache-hit-rate collapse — that wall-clock
	// rates alone would attribute to noise.
	Telemetry map[string]int64 `json:"telemetry,omitempty"`
}

// BenchFile is the on-disk shape of BENCH_traffic.json: one entry per
// benchmark cell, in sweep order.
type BenchFile struct {
	Cells []BenchResult `json:"cells"`
}

// ReadBenchJSON parses a BENCH_traffic.json file (the BenchFile schema), e.g.
// the committed baseline the CI bench job prints deltas against.
func ReadBenchJSON(r io.Reader) (*BenchFile, error) {
	var f BenchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: parsing benchmark baseline: %w", err)
	}
	return &f, nil
}

// Key identifies a benchmark cell for baseline matching: same scenario, mesh,
// pattern, model and rate compare; everything measured may differ. Cells from
// the unnamed default workload keep their historical key format.
func (b BenchResult) Key() string {
	if b.Scenario == "" {
		return fmt.Sprintf("%s/%s/%s/%g", b.Mesh, b.Pattern, b.Model, b.Rate)
	}
	return fmt.Sprintf("%s:%s/%s/%s/%g", b.Scenario, b.Mesh, b.Pattern, b.Model, b.Rate)
}

// WriteBenchJSON writes the benchmark cells of a report (which must come from
// the bench measure) as indented JSON, the BENCH_traffic.json format.
func WriteBenchJSON(w io.Writer, rep *Report) error {
	if len(rep.bench) == 0 {
		return fmt.Errorf("scenario: report of measure %q carries no benchmark results (want the %q measure)", rep.Measure, MeasureBench)
	}
	return WriteBenchCellsJSON(w, rep.bench)
}

// WriteBenchCellsJSON writes benchmark cells — e.g. the merged cells of
// several bench specs — as indented JSON, the BENCH_traffic.json format.
func WriteBenchCellsJSON(w io.Writer, cells []BenchResult) error {
	if len(cells) == 0 {
		return fmt.Errorf("scenario: no benchmark cells to write")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BenchFile{Cells: cells})
}

// BenchResults returns the per-cell benchmark results of a report produced by
// the bench measure, in cell order.
func (rep *Report) BenchResults() []BenchResult { return rep.bench }

// measureBench times the continuous-traffic hot path — the same engine, model
// and pattern construction as the traffic measure — and reports wall-clock
// rates instead of simulated-traffic statistics. One cell per pattern × model
// × rate combination.
func measureBench(ctx context.Context, sc *Scenario) (*Report, error) {
	spec := sc.spec
	faults := sc.firstCount()
	t := &stats.Table{
		Title: fmt.Sprintf("bench: event-core throughput (%s mesh, %s faults, %d trials, warmup %d + window %d ticks)",
			spec.Mesh, sc.faultLabel(faults), spec.Trials, spec.Measure.Warmup, spec.Measure.Window),
		Columns: []string{"pattern", "model", "rate", "events", "packets", "events/sec", "ns/packet", "allocs/packet"},
	}
	rep := &Report{Table: t}
	injector := sc.injectorFor(faults)
	timeline, err := spec.Faults.Timeline.Build()
	if err != nil {
		return nil, err // unreachable after Validate
	}
	total := len(spec.Workload.Patterns) * len(spec.Models) * len(spec.Workload.Rates)
	cell := 0
	for _, pattern := range spec.Workload.Patterns {
		for _, model := range spec.Models {
			for _, rate := range spec.Workload.Rates {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				label := fmt.Sprintf("%s/%s/%.3f", pattern.Name, model.Name, rate)
				sc.emit(Event{Cell: cell, Total: total, Label: label})
				cellSeed := rng.Derive(spec.Seed, uint64(cell))

				res := BenchResult{
					Scenario: spec.Name,
					Mesh:     spec.Mesh.String(), Pattern: pattern.Name, Model: model.Name,
					Rate: rate, Faults: faults,
					Warmup: spec.Measure.Warmup, Window: spec.Measure.Window,
					Trials: spec.Trials, Seed: spec.Seed,
					// Sharded cells measure parallel speed-up, a property of the
					// runner as much as of the code — never gate on them.
					Informational: spec.ShardCount() > 1,
				}
				var ms0, ms1 runtime.MemStats
				runtime.ReadMemStats(&ms0)
				start := time.Now()
				for trial := 0; trial < spec.Trials; trial++ {
					seed := rng.Derive(cellSeed, uint64(trial))
					m := sc.newMesh()
					injector.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
					im, err := traffic.BuildModel(model.Name, core.NewModel(m), model.Args())
					if err != nil {
						return nil, err // unreachable after Validate
					}
					p, err := traffic.BuildPattern(pattern.Name, m, pattern.Args())
					if err != nil {
						return nil, err // unreachable after Validate
					}
					e := traffic.NewEngine(m, im, p, traffic.Options{
						Rate:      rate,
						Warmup:    simnet.Time(spec.Measure.Warmup),
						Window:    simnet.Time(spec.Measure.Window),
						LinkDelay: simnet.Time(spec.Measure.LinkDelay),
						MaxEvents: spec.Measure.MaxEvents,
						Timeline:  timeline,
						Shards:    spec.ShardCount(),
						ShardModel: func() (traffic.InfoModel, error) {
							return traffic.BuildModel(model.Name, core.NewModel(m), model.Args())
						},
					})
					r := e.Run(seed)
					if r.Err != nil {
						return nil, fmt.Errorf("bench cell %s: %w", label, r.Err)
					}
					res.Events += r.Events
					res.Packets += r.Delivered
				}
				elapsed := time.Since(start)
				runtime.ReadMemStats(&ms1)

				// Untimed probe trial: re-run trial 0's configuration with the
				// counters live. The timed loop above stays telemetry-off, so
				// the headline rates price the disabled path — the probe only
				// feeds the counter snapshot of the cell.
				{
					seed := rng.Derive(cellSeed, 0)
					m := sc.newMesh()
					injector.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
					im, err := traffic.BuildModel(model.Name, core.NewModel(m), model.Args())
					if err != nil {
						return nil, err // unreachable after Validate
					}
					p, err := traffic.BuildPattern(pattern.Name, m, pattern.Args())
					if err != nil {
						return nil, err // unreachable after Validate
					}
					e := traffic.NewEngine(m, im, p, traffic.Options{
						Rate:      rate,
						Warmup:    simnet.Time(spec.Measure.Warmup),
						Window:    simnet.Time(spec.Measure.Window),
						LinkDelay: simnet.Time(spec.Measure.LinkDelay),
						MaxEvents: spec.Measure.MaxEvents,
						Timeline:  timeline,
						Telemetry: true,
						Shards:    spec.ShardCount(),
						ShardModel: func() (traffic.InfoModel, error) {
							return traffic.BuildModel(model.Name, core.NewModel(m), model.Args())
						},
					})
					if r := e.Run(seed); r.Err == nil && r.Telemetry != nil {
						res.Telemetry = r.Telemetry.Snapshot()
					}
				}

				res.ElapsedSec = elapsed.Seconds()
				if res.ElapsedSec > 0 {
					res.EventsPerSec = float64(res.Events) / res.ElapsedSec
				}
				if res.Packets > 0 {
					res.NsPerPacket = float64(elapsed.Nanoseconds()) / float64(res.Packets)
					res.AllocsPerPacket = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Packets)
				}
				row := []string{
					pattern.Name, model.Name, fmt.Sprintf("%.3f", rate),
					fmt.Sprintf("%d", res.Events),
					fmt.Sprintf("%d", res.Packets),
					fmt.Sprintf("%.0f", res.EventsPerSec),
					fmt.Sprintf("%.0f", res.NsPerPacket),
					fmt.Sprintf("%.2f", res.AllocsPerPacket),
				}
				t.AddRow(row...)
				rep.Cells = append(rep.Cells, Cell{
					Index: cell, Pattern: pattern.Name, Model: model.Name, Rate: rate, Faults: faults, Row: row,
					Values: map[string]float64{
						"events":            float64(res.Events),
						"packets":           float64(res.Packets),
						"events_per_sec":    res.EventsPerSec,
						"ns_per_packet":     res.NsPerPacket,
						"allocs_per_packet": res.AllocsPerPacket,
					},
				})
				rep.bench = append(rep.bench, res)
				if res.Telemetry != nil {
					rep.Telemetry = append(rep.Telemetry, CellTelemetry{
						Cell: cell, Label: label, Counters: res.Telemetry,
					})
				}
				sc.emit(Event{Cell: cell, Total: total, Label: label, Done: true, Row: row})
				cell++
			}
		}
	}
	t.AddNote("wall-clock rates; trial results (simulated traffic) are identical to the traffic measure for the same spec.")
	t.AddNote("allocs/packet amortises per-trial setup (mesh, model, engine) over the delivered packets of the cell.")
	return rep, nil
}

// BenchSpec returns the default benchmark spec: the 16x16x16 hotspot
// reference workload PERFORMANCE.md tracks, one cell per information model —
// the paper's MCC model, the local-greedy floor (event core + engine
// overhead) and the labels-only middle ground — so the trajectory shows the
// model gap, not just one number. Callers override it via -spec. The spec is
// unnamed so its cells keep the historical baseline keys.
func BenchSpec() Spec {
	return Spec{
		Mesh: Cube(16),
		Faults: FaultSpec{
			Inject: C("uniform"),
			Counts: []int{120},
		},
		Models: Components{C("mcc"), C("local"), C("labels")},
		Workload: WorkloadSpec{
			Patterns: Components{C("hotspot")},
			Rates:    []float64{0.02},
		},
		Measure: MeasureSpec{
			Kind:      MeasureBench,
			Warmup:    50,
			Window:    500,
			MaxEvents: 50_000_000,
		},
		Seed:   20050507,
		Trials: 3,
	}
}

// ChurnBenchSpec returns the fault-churn benchmark spec: the same reference
// mesh and traffic as BenchSpec under a stochastic fail/repair timeline
// (region-shaped failures, MTTF 40, MTTR 100), one MCC cell. It prices the
// whole repair path — incremental un-relabel, in-place region refresh, epoch
// bumps — in events/sec and allocs/packet next to the churn-free cells.
func ChurnBenchSpec() Spec {
	return Spec{
		Name: "churn",
		Mesh: Cube(16),
		Faults: FaultSpec{
			Inject: C("uniform"),
			Counts: []int{120},
			Timeline: &TimelineSpec{
				MTTF:  40,
				MTTR:  100,
				Shape: Component{Name: "region", Params: map[string]any{"size": 3}},
			},
		},
		Models: Components{C("mcc")},
		Workload: WorkloadSpec{
			Patterns: Components{C("hotspot")},
			Rates:    []float64{0.02},
		},
		Measure: MeasureSpec{
			Kind:      MeasureBench,
			Warmup:    50,
			Window:    500,
			MaxEvents: 50_000_000,
		},
		Seed:   20050507,
		Trials: 3,
	}
}

// ShardedBenchSpec returns the sharded-execution benchmark spec
// (Hotspot32MCCShards4): one MCC hotspot cell on a 32x32x32 mesh with the
// trial split across 4 slab shards. Its events/sec is the parallel speed-up
// PR 10 targets (>= 2x the sequential 32-cube rate at 4 shards); the cell is
// informational in `-baseline` — speed-up moves with the runner's cores, so
// it is tracked, never gated.
func ShardedBenchSpec() Spec {
	return Spec{
		Name: "shards4",
		Mesh: Cube(32),
		Faults: FaultSpec{
			Inject: C("uniform"),
			Counts: []int{400},
		},
		Models: Components{C("mcc")},
		Workload: WorkloadSpec{
			Patterns: Components{C("hotspot")},
			Rates:    []float64{0.02},
		},
		Measure: MeasureSpec{
			Kind:      MeasureBench,
			Warmup:    50,
			Window:    200,
			MaxEvents: 100_000_000,
		},
		Seed:   20050507,
		Trials: 1,
		Exec:   &ExecSpec{Shards: 4},
	}
}

// BenchSpecs returns the benchmark specs `mcc bench -json` runs by default,
// in output order: the churn-free reference workload, the churn workload and
// the sharded-execution workload.
func BenchSpecs() []Spec {
	return []Spec{BenchSpec(), ChurnBenchSpec(), ShardedBenchSpec()}
}
