package scenario

import (
	"os"
	"testing"
)

// TestE7GoldenOutput is the scheduler-order regression run: specs/e7.json
// must reproduce testdata/e7_golden.csv byte for byte, at any worker count.
// The golden file was captured before the index-first decision-stack refactor
// (PR 4), so any change to event order, provider decisions, labelling
// results or RNG consumption — however subtle — fails here. It runs the full
// 18-cell × 30-trial experiment (~4 s per worker sweep), so -short skips it.
func TestE7GoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second full E7 run")
	}
	golden, err := os.ReadFile("testdata/e7_golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	// The sweep crosses trial-level parallelism (workers) with intra-trial
	// spatial sharding (PR 10): every combination must reproduce the same
	// bytes the sequential single-worker run produces.
	for _, exec := range []struct{ workers, shards int }{
		{1, 1}, {3, 1}, {3, 2}, {1, 8},
	} {
		f, err := os.Open("../../specs/e7.json")
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Load(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		spec := sc.Spec()
		spec.SetWorkers(exec.workers)
		spec.SetShards(exec.shards)
		rep := mustRun(t, mustNew(t, spec))
		if got := rep.Table.CSV(); got != string(golden) {
			t.Errorf("specs/e7.json output drifted from the pre-refactor golden at %d workers, %d shards:\n--- got\n%s--- want\n%s",
				exec.workers, exec.shards, got, golden)
		}
	}
}
