package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Digest returns the canonical identity of the spec: the hex SHA-256 of its
// canonical byte-stable dump (the normalised, defaults-filled spec encoded
// exactly as WriteSpec / `-dump-spec` emit it). Two specs share a digest if
// and only if they describe the same experiment, so the digest keys the
// `mcc serve` result cache and tags every job.
//
// The exec block is cleared before hashing (execExcluded): workers, shards
// and timeout are execution knobs, not part of the result — the same spec
// produces bit-identical reports at any worker or shard count, and a deadline
// changes when a run is abandoned, never what a completed run reports — so
// submissions differing only in those knobs must share a cache entry.
func (s Spec) Digest() string {
	s = execExcluded(s.withDefaults())
	return hexSHA256(canonicalDump(s))
}

// execExcluded strips every execution-resource knob — the exec block and its
// deprecated top-level spellings — from a copy of the spec. It is the single
// definition of "digest-excluded": anything an ExecSpec carries is out.
func execExcluded(s Spec) Spec {
	s.Exec = nil
	s.Workers = 0
	s.Timeout = 0
	return s
}

// TopoKey returns the hash identifying the spec's mesh/fault configuration:
// jobs with equal TopoKeys run over structurally identical topologies and
// fault workloads, so a scenario-execution server lets them share one
// immutable topology prototype (see the server's topology pool). The key
// covers the mesh extents and the whole fault block — injector, counts,
// schedule and churn timeline — but none of the workload, measure or seed.
func (s Spec) TopoKey() string {
	s = s.withDefaults()
	key := struct {
		Mesh   MeshSpec  `json:"mesh"`
		Faults FaultSpec `json:"faults"`
	}{s.Mesh, s.Faults}
	b, err := json.Marshal(key)
	if err != nil {
		panic(fmt.Sprintf("scenario: topo key encoding failed: %v", err))
	}
	return hexSHA256(b)
}

// Digest returns the spec digest of the validated scenario (see Spec.Digest).
func (sc *Scenario) Digest() string { return sc.spec.Digest() }

// canonicalDump renders the spec exactly as WriteSpec does (two-space indent,
// trailing newline) — the byte-stable form the specs/ round-trip CI step
// pins, and therefore the bytes the digest is defined over.
func canonicalDump(s Spec) []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// A Spec is plain data: the only way Marshal can fail is a Params map
		// holding an unencodable value, which Validate's registry construction
		// would have rejected first.
		panic(fmt.Sprintf("scenario: canonical dump failed: %v", err))
	}
	return append(b, '\n')
}

func hexSHA256(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
