package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// tinyBenchSpec is a fast bench-measure scenario.
func tinyBenchSpec() Spec {
	return Spec{
		Name:     "tiny-bench",
		Mesh:     Cube(6),
		Faults:   FaultSpec{Inject: C("uniform"), Counts: []int{8}},
		Models:   ComponentsOf("local"),
		Workload: WorkloadSpec{Patterns: ComponentsOf("uniform"), Rates: []float64{0.05}},
		Measure:  MeasureSpec{Kind: MeasureBench, Warmup: 10, Window: 60},
		Seed:     99,
		Trials:   2,
	}
}

func TestBenchMeasureProducesRates(t *testing.T) {
	sc, err := New(tinyBenchSpec())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	results := rep.BenchResults()
	if len(results) != 1 {
		t.Fatalf("got %d bench results, want 1", len(results))
	}
	r := results[0]
	if r.Events <= 0 || r.Packets <= 0 {
		t.Fatalf("bench cell measured nothing: %+v", r)
	}
	if r.EventsPerSec <= 0 || r.NsPerPacket <= 0 {
		t.Errorf("rates not computed: %+v", r)
	}
	if r.Mesh != "6x6x6" || r.Pattern != "uniform" || r.Model != "local" {
		t.Errorf("configuration echo wrong: %+v", r)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].Values["events"] != float64(r.Events) {
		t.Errorf("report cells out of sync with bench results: %+v", rep.Cells)
	}
}

func TestWriteBenchJSONRoundTrips(t *testing.T) {
	sc, err := New(tinyBenchSpec())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("BENCH json does not parse: %v", err)
	}
	if len(file.Cells) != 1 || file.Cells[0].Events != rep.BenchResults()[0].Events {
		t.Fatalf("round-trip lost data: %+v", file)
	}
	for _, key := range []string{"events_per_sec", "ns_per_packet", "allocs_per_packet"} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("BENCH json misses %q", key)
		}
	}
}

func TestWriteBenchJSONRejectsOtherMeasures(t *testing.T) {
	sc, err := New(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchJSON(&bytes.Buffer{}, rep); err == nil {
		t.Fatal("WriteBenchJSON should reject a traffic-measure report")
	}
}

// TestBenchSpecValid pins the default benchmark configuration: it must
// validate (CI runs it head-less) and aim at the reference workload.
func TestBenchSpecValid(t *testing.T) {
	sc, err := New(BenchSpec())
	if err != nil {
		t.Fatalf("default bench spec does not validate: %v", err)
	}
	spec := sc.Spec()
	if spec.Mesh != Cube(16) || spec.Measure.Kind != MeasureBench {
		t.Errorf("reference workload drifted: %+v", spec)
	}
}

// TestTrafficCellSurvivesEventBudget: a cell whose trials exhaust the event
// budget must fail that cell (visible row + Cell.Err) without failing the
// report, the sweep, or the process.
func TestTrafficCellSurvivesEventBudget(t *testing.T) {
	spec := tinySpec()
	spec.Measure.MaxEvents = 50 // guaranteed exhaustion
	sc, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatalf("budget exhaustion must not fail the run: %v", err)
	}
	if len(rep.Cells) == 0 {
		t.Fatal("no cells reported")
	}
	for _, c := range rep.Cells {
		if c.Err == "" {
			t.Errorf("cell %d should carry the budget error", c.Index)
		}
		if len(c.Row) > 3 && !strings.Contains(c.Row[3], "FAILED") {
			t.Errorf("cell %d row should read FAILED: %v", c.Index, c.Row)
		}
	}
	if !strings.Contains(rep.Table.Render(), "event budget exhausted") {
		t.Error("table should mention the budget error")
	}
}
