package scenario

import "mccmesh/internal/mesh"

// The With* functions are the functional-options vocabulary behind
// mccmesh.NewScenario: each one sets one part of the Spec (or installs an
// observer) and they may be combined in any order. Options are applied before
// defaulting and validation, so an invalid combination surfaces as an error
// from New/Build, never as a panic at run time.

// WithName labels the scenario.
func WithName(name string) Option {
	return func(sc *Scenario) { sc.spec.Name = name }
}

// WithMesh selects a 3-D mesh with the given extents.
func WithMesh(x, y, z int) Option {
	return func(sc *Scenario) { sc.spec.Mesh = MeshSpec{X: x, Y: y, Z: z} }
}

// WithMesh2D selects a 2-D mesh with the given extents.
func WithMesh2D(x, y int) Option {
	return func(sc *Scenario) { sc.spec.Mesh = MeshSpec{X: x, Y: y} }
}

// WithCube selects a k × k × k mesh.
func WithCube(k int) Option {
	return func(sc *Scenario) { sc.spec.Mesh = Cube(k) }
}

// WithFaults selects the static fault injector by registry name with optional
// parameters (see fault.Injectors), e.g. WithFaults("clustered", Params{"size": 5}).
func WithFaults(name string, params ...Params) Option {
	return func(sc *Scenario) { sc.spec.Faults.Inject = component(name, params) }
}

// WithFaultCounts sets the fault-count sweep (one cell per count for the
// routing measures; the first count is the traffic measure's static fault
// set).
func WithFaultCounts(counts ...int) Option {
	return func(sc *Scenario) { sc.spec.Faults.Counts = counts }
}

// WithFaultSchedule appends a mid-run fault event: the named injector fires
// at simulated tick `at` while traffic is in flight.
func WithFaultSchedule(at int, name string, params ...Params) Option {
	return func(sc *Scenario) {
		sc.spec.Faults.Schedule = append(sc.spec.Faults.Schedule, ScheduledFault{At: at, Inject: component(name, params)})
	}
}

// WithFaultTimeline runs a stochastic fault-churn process while traffic is
// in flight: failure groups of the named shape ("point", "region", or any
// registered injector; "" selects the default point shape) arrive with mean
// gap mttf ticks and are repaired after a mean delay of mttr ticks (0 =
// never repaired). The churn horizon defaults to warmup + window; for fixed
// fail/repair entries or a custom horizon, set FaultSpec.Timeline through
// WithSpec.
func WithFaultTimeline(mttf, mttr float64, shape string, params ...Params) Option {
	return func(sc *Scenario) {
		sc.spec.Faults.Timeline = &TimelineSpec{MTTF: mttf, MTTR: mttr, Shape: component(shape, params)}
	}
}

// WithModels names the information models under test (see traffic.Models).
func WithModels(names ...string) Option {
	return func(sc *Scenario) { sc.spec.Models = ComponentsOf(names...) }
}

// WithModel appends one information model with optional parameters.
func WithModel(name string, params ...Params) Option {
	return func(sc *Scenario) { sc.spec.Models = append(sc.spec.Models, component(name, params)) }
}

// WithPatterns names the traffic patterns to sweep (see traffic.Patterns).
func WithPatterns(names ...string) Option {
	return func(sc *Scenario) { sc.spec.Workload.Patterns = ComponentsOf(names...) }
}

// WithPattern appends one traffic pattern with optional parameters, e.g.
// WithPattern("hotspot", Params{"fraction": 0.2}).
func WithPattern(name string, params ...Params) Option {
	return func(sc *Scenario) {
		sc.spec.Workload.Patterns = append(sc.spec.Workload.Patterns, component(name, params))
	}
}

// WithRates sets the injection-rate sweep (packets per node per tick).
func WithRates(rates ...float64) Option {
	return func(sc *Scenario) { sc.spec.Workload.Rates = rates }
}

// WithMeasure selects the measurement by registry name (see Measures):
// absorption, success, distance, overhead, ablation, adaptivity or traffic.
func WithMeasure(kind string) Option {
	return func(sc *Scenario) { sc.spec.Measure.Kind = kind }
}

// WithPairs sets the source/destination pairs sampled per trial (routing
// measures).
func WithPairs(pairs int) Option {
	return func(sc *Scenario) { sc.spec.Measure.Pairs = pairs }
}

// WithMinDistance sets the minimum Manhattan distance between sampled pairs.
func WithMinDistance(d int) Option {
	return func(sc *Scenario) { sc.spec.Measure.MinDistance = d }
}

// WithWarmup sets the traffic warmup in ticks (packets routed, not measured).
func WithWarmup(ticks int) Option {
	return func(sc *Scenario) { sc.spec.Measure.Warmup = ticks }
}

// WithWindow sets the traffic measurement window in ticks.
func WithWindow(ticks int) Option {
	return func(sc *Scenario) { sc.spec.Measure.Window = ticks }
}

// WithSeed sets the scenario seed; every trial seed derives from it.
func WithSeed(seed uint64) Option {
	return func(sc *Scenario) { sc.spec.Seed = seed }
}

// WithTrials sets the number of random fault configurations per cell.
func WithTrials(trials int) Option {
	return func(sc *Scenario) { sc.spec.Trials = trials }
}

// Execution resources. WithWorkers, WithShards and WithTimeout set the
// spec's exec block — how a scenario runs, never what it computes. All three
// are digest-excluded and results are bit-identical for any values.

// WithWorkers fans trials out across goroutines (<= 0 selects GOMAXPROCS).
func WithWorkers(workers int) Option {
	return func(sc *Scenario) { sc.spec.SetWorkers(workers) }
}

// WithShards splits every single trial spatially into up to n slab shards,
// each with its own event queue and packet pool, synchronised at a per-tick
// barrier (traffic measure; 0 or 1 runs the sequential engine). Composes
// with WithWorkers: workers × shards goroutines at peak.
func WithShards(n int) Option {
	return func(sc *Scenario) { sc.spec.SetShards(n) }
}

// WithTimeout bounds the run's wall-clock time in seconds (0 = unbounded);
// runners enforce it via context cancellation.
func WithTimeout(secs float64) Option {
	return func(sc *Scenario) { sc.spec.SetTimeout(secs) }
}

// WithMeshSource installs a trial-mesh factory (see Scenario.SetMeshSource):
// trials draw their meshes from fn — typically Clones of a shared immutable
// topology prototype — instead of constructing them from the spec extents.
// fn must be safe for concurrent use.
func WithMeshSource(fn func() *mesh.Mesh) Option {
	return func(sc *Scenario) { sc.meshSource = fn }
}

// WithObserver installs a progress observer (see Observer).
func WithObserver(f Observer) Option {
	return func(sc *Scenario) { sc.observer = f }
}

// WithTelemetry enables the counter sink for every trial (see
// Scenario.EnableTelemetry).
func WithTelemetry() Option {
	return func(sc *Scenario) { sc.EnableTelemetry() }
}

// WithTracing samples one packet in every n for hop-by-hop tracing (see
// Scenario.EnableTracing); implies WithTelemetry.
func WithTracing(n int) Option {
	return func(sc *Scenario) { sc.EnableTracing(n) }
}

// WithSpec replaces the whole spec, letting later options patch it.
func WithSpec(spec Spec) Option {
	return func(sc *Scenario) { sc.spec = spec }
}

// Params carries component parameters for the With* options.
type Params map[string]any

// component folds the optional params variadic into a Component.
func component(name string, params []Params) Component {
	c := Component{Name: name}
	if len(params) > 0 {
		c.Params = map[string]any{}
		for _, p := range params {
			for k, v := range p {
				c.Params[k] = v
			}
		}
	}
	return c
}
