package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestChurnGoldenOutput pins specs/churn.json — the fault-churn scenario with
// a stochastic fail/repair timeline — to its captured golden table, at any
// worker count: the churn engine's event order, incremental repair path and
// RNG stream layout must stay bit-stable.
func TestChurnGoldenOutput(t *testing.T) {
	golden, err := os.ReadFile("testdata/churn_golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	// Full cross of trial workers × intra-trial shards: churn events run at
	// the shard barrier (coordinator side), so this pins the sharded engine's
	// churn ordering against the sequential golden too.
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 2, 8} {
			f, err := os.Open("../../specs/churn.json")
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Load(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			spec := sc.Spec()
			spec.SetWorkers(workers)
			spec.SetShards(shards)
			rep := mustRun(t, mustNew(t, spec))
			if got := rep.Table.CSV(); got != string(golden) {
				t.Errorf("specs/churn.json output drifted from the golden at %d workers, %d shards:\n--- got\n%s--- want\n%s",
					workers, shards, got, golden)
			}
		}
	}
}

// TestChurnSpecRoundTripsByteStable: the checked-in churn spec must be in
// canonical dumped form — loading it and re-marshalling (what `mcc run
// -dump-spec` does) reproduces the file byte for byte, the invariant the CI
// spec-validation step enforces for every file in specs/.
func TestChurnSpecRoundTripsByteStable(t *testing.T) {
	raw, err := os.ReadFile("../../specs/churn.json")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc.Spec()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(raw) {
		t.Errorf("specs/churn.json is not in canonical dumped form:\n--- dumped\n%s--- file\n%s", buf.String(), raw)
	}
}
