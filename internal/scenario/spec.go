package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"mccmesh/internal/fault"
	"mccmesh/internal/mesh"
	"mccmesh/internal/registry"
	"mccmesh/internal/traffic"
)

// Spec is the declarative, JSON-serialisable description of one experiment:
// a mesh, a fault workload, the information models under test, a traffic
// workload, a measurement and the reproducibility knobs. Every experiment in
// the repository (E1–E7) is expressible as a Spec, every `mcc` subcommand
// parses and emits the same format, and a Spec run at workers=1 produces the
// same Report as at workers=64.
type Spec struct {
	// Name optionally labels the scenario (echoed in reports and progress).
	Name string `json:"name,omitempty"`
	// Mesh is the topology under test.
	Mesh MeshSpec `json:"mesh"`
	// Faults describes the fault workload: the injector, the fault-count
	// sweep and an optional mid-run schedule.
	Faults FaultSpec `json:"faults,omitempty"`
	// Models names the fault-information models under test (see the
	// traffic.Models registry). Defaults to ["mcc"].
	Models Components `json:"model,omitempty"`
	// Workload is the traffic workload (patterns × injection rates), used by
	// the "traffic" measure.
	Workload WorkloadSpec `json:"workload,omitempty"`
	// Measure selects what to measure and its parameters.
	Measure MeasureSpec `json:"measure,omitempty"`
	// Seed makes the whole scenario reproducible: every trial seed derives
	// purely from (Seed, cell index, trial index).
	Seed uint64 `json:"seed"`
	// Trials is the number of random fault configurations per cell.
	Trials int `json:"trials"`
	// Exec groups the execution-resource knobs: workers, shards and timeout.
	// None of them affects the measured result — results are bit-identical
	// for any values — so the whole block is digest-excluded (execExcluded).
	// Normalisation (withDefaults, hence New, Load and every dump) folds the
	// deprecated top-level fields below into this block; read the resolved
	// values through WorkerCount, ShardCount and TimeoutSeconds.
	Exec *ExecSpec `json:"exec,omitempty"`
	// Workers is the deprecated top-level spelling of Exec.Workers; it still
	// parses and canonicalises into the exec block on dump. When both are
	// set, the exec block wins.
	Workers int `json:"workers,omitempty"`
	// Timeout is the deprecated top-level spelling of Exec.Timeout, with the
	// same fold-into-exec behaviour as Workers.
	Timeout float64 `json:"timeout,omitempty"`
}

// ExecSpec is the execution-resource block of a spec: how a scenario runs,
// never what it computes. Every field is digest-excluded.
type ExecSpec struct {
	// Workers fans trials out across goroutines where the measure supports it
	// (<= 0 selects GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Shards splits each single trial spatially into up to Shards slab shards
	// (see mesh.SlabPartition), each with its own event queue and packet
	// pool, synchronised at a per-tick barrier (traffic measure; meshes with
	// fewer layers than shards split per layer). 0 or 1 runs the sequential
	// engine. Composes with Workers: Workers × Shards goroutines at peak.
	Shards int `json:"shards,omitempty"`
	// Timeout bounds the run's wall-clock time in seconds (0 = unbounded).
	// Runners enforce it via context.WithTimeout — `mcc serve` seals an
	// expired job as TIMEOUT with its completed cells preserved (`mcc serve
	// -job-timeout` supplies the default and caps spec-requested values).
	Timeout float64 `json:"timeout,omitempty"`
}

// zero reports whether the block carries no information (and is therefore
// normalised away to keep dumps minimal).
func (e *ExecSpec) zero() bool {
	return e == nil || (e.Workers == 0 && e.Shards == 0 && e.Timeout == 0)
}

// WorkerCount returns the resolved worker count, honouring both the exec
// block and the deprecated top-level field (exec wins).
func (s *Spec) WorkerCount() int {
	if s.Exec != nil && s.Exec.Workers != 0 {
		return s.Exec.Workers
	}
	return s.Workers
}

// ShardCount returns the resolved per-trial shard count (0 = sequential).
func (s *Spec) ShardCount() int {
	if s.Exec != nil {
		return s.Exec.Shards
	}
	return 0
}

// TimeoutSeconds returns the resolved wall-clock budget in seconds
// (0 = unbounded), honouring both spellings (exec wins).
func (s *Spec) TimeoutSeconds() float64 {
	if s.Exec != nil && s.Exec.Timeout != 0 {
		return s.Exec.Timeout
	}
	return s.Timeout
}

// execPatch applies fn to a copy of the exec block and installs it, clearing
// the deprecated spellings so there is exactly one place the value lives.
func (s *Spec) execPatch(fn func(*ExecSpec)) {
	e := ExecSpec{Workers: s.WorkerCount(), Shards: s.ShardCount(), Timeout: s.TimeoutSeconds()}
	fn(&e)
	s.Workers, s.Timeout = 0, 0
	if e.zero() {
		s.Exec = nil
		return
	}
	s.Exec = &e
}

// SetWorkers sets the resolved worker count (canonicalising into Exec).
func (s *Spec) SetWorkers(n int) { s.execPatch(func(e *ExecSpec) { e.Workers = n }) }

// SetShards sets the resolved shard count (canonicalising into Exec).
func (s *Spec) SetShards(n int) { s.execPatch(func(e *ExecSpec) { e.Shards = n }) }

// SetTimeout sets the resolved timeout in seconds (canonicalising into Exec).
func (s *Spec) SetTimeout(secs float64) { s.execPatch(func(e *ExecSpec) { e.Timeout = secs }) }

// MeshSpec names a 2-D or 3-D mesh topology. Z == 0 selects a 2-D mesh.
type MeshSpec struct {
	X int `json:"x"`
	Y int `json:"y"`
	Z int `json:"z,omitempty"`
}

// Cube returns the spec of a k × k × k mesh.
func Cube(k int) MeshSpec { return MeshSpec{X: k, Y: k, Z: k} }

// Square returns the spec of a k × k 2-D mesh.
func Square(k int) MeshSpec { return MeshSpec{X: k, Y: k} }

// Is2D reports whether the spec names a 2-D mesh.
func (m MeshSpec) Is2D() bool { return m.Z == 0 }

// String renders the topology as "10x10x10" / "16x16".
func (m MeshSpec) String() string {
	if m.Is2D() {
		return fmt.Sprintf("%dx%d", m.X, m.Y)
	}
	return fmt.Sprintf("%dx%dx%d", m.X, m.Y, m.Z)
}

// New builds a fresh fault-free mesh of this topology.
func (m MeshSpec) New() *mesh.Mesh {
	if m.Is2D() {
		return mesh.New2D(m.X, m.Y)
	}
	return mesh.New3D(m.X, m.Y, m.Z)
}

// NodeCount returns the number of nodes of the topology.
func (m MeshSpec) NodeCount() int {
	if m.Is2D() {
		return m.X * m.Y
	}
	return m.X * m.Y * m.Z
}

func (m MeshSpec) validate() error {
	if m.X < 2 || m.Y < 2 || (m.Z != 0 && m.Z < 2) {
		return fmt.Errorf("mesh: invalid extents %s (want every extent >= 2; omit z for 2-D)", m)
	}
	return nil
}

// Component names one pluggable piece — a traffic pattern, an information
// model or a fault injector — together with its parameters. In JSON it is
// either a bare string ("hotspot") or an object
// ({"name": "hotspot", "params": {"fraction": 0.2}}).
type Component struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params,omitempty"`
}

// C is a convenience constructor for a parameterless component.
func C(name string) Component { return Component{Name: name} }

// Args returns the component's parameters as registry arguments.
func (c Component) Args() registry.Args { return registry.Args(c.Params) }

// String renders the component compactly, e.g. `hotspot{fraction=0.2}`.
func (c Component) String() string {
	if len(c.Params) == 0 {
		return c.Name
	}
	keys := make([]string, 0, len(c.Params))
	for k := range c.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, c.Params[k])
	}
	return c.Name + "{" + strings.Join(parts, ",") + "}"
}

// MarshalJSON emits the compact bare-string form when there are no
// parameters, so dumped specs stay readable.
func (c Component) MarshalJSON() ([]byte, error) {
	if len(c.Params) == 0 {
		return json.Marshal(c.Name)
	}
	type raw Component
	return json.Marshal(raw(c))
}

// UnmarshalJSON accepts a bare string or the full object form. Unknown keys
// in the object form are rejected — a custom unmarshaler does not inherit the
// outer decoder's DisallowUnknownFields, so the strictness Load promises is
// re-established here.
func (c *Component) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		*c = Component{Name: name}
		return nil
	}
	type raw Component
	var r raw
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("component: want a name string or {\"name\": ..., \"params\": ...}: %w", err)
	}
	*c = Component(r)
	return nil
}

// Components is a list of components. In JSON it is a single component (bare
// string or object) or an array of them.
type Components []Component

// Names returns the component names in order.
func (cs Components) Names() []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// ComponentsOf builds a parameterless component list from names.
func ComponentsOf(names ...string) Components {
	cs := make(Components, len(names))
	for i, n := range names {
		cs[i] = C(n)
	}
	return cs
}

// PatternComponents builds traffic-pattern components from names, attaching
// the positional hotspot fraction (when non-zero) to the hotspot pattern —
// the bridge from legacy flag surfaces (-hotspot) to parameterised
// components.
func PatternComponents(names []string, hotspotFraction float64) Components {
	cs := ComponentsOf(names...)
	for i, c := range cs {
		// Name matching is case-insensitive everywhere else (registry
		// lookups fold case), so the knob must attach for any casing too.
		if strings.EqualFold(c.Name, "hotspot") && hotspotFraction != 0 {
			cs[i].Params = map[string]any{"fraction": hotspotFraction}
		}
	}
	return cs
}

// UnmarshalJSON accepts a single component or an array of components.
func (cs *Components) UnmarshalJSON(data []byte) error {
	var one Component
	if err := json.Unmarshal(data, &one); err == nil {
		*cs = Components{one}
		return nil
	}
	type raw Components
	var r raw
	if err := json.Unmarshal(data, &r); err != nil {
		return err
	}
	*cs = Components(r)
	return nil
}

// FaultSpec describes the fault workload of a scenario.
type FaultSpec struct {
	// Inject is the injector applied before the run (see the fault.Injectors
	// registry). Defaults to "uniform". Its "count" parameter is overridden
	// per cell by Counts.
	Inject Component `json:"inject,omitempty"`
	// Counts is the fault-count sweep. Routing measures produce one cell per
	// count; the traffic measure uses the first count as its static fault
	// set. When empty it is derived from Inject's "count" parameter.
	Counts []int `json:"counts,omitempty"`
	// Schedule injects additional faults at fixed simulated times while
	// traffic is in flight ("traffic" measure only). Scheduled faults are
	// never repaired; for fail/repair churn use Timeline.
	Schedule []ScheduledFault `json:"schedule,omitempty"`
	// Timeline runs a stochastic fault-churn process — failure groups
	// arriving with mean gap MTTF, each repaired after a mean delay MTTR —
	// while traffic is in flight ("traffic" and "bench" measures only).
	Timeline *TimelineSpec `json:"timeline,omitempty"`
}

// TimelineSpec is the declarative form of the fault-churn timeline
// (fault.Timeline): a seeded arrival/repair process plus optional fixed
// entries. All times are simulated ticks.
type TimelineSpec struct {
	// Start is the earliest stochastic arrival; Until the exclusive horizon
	// of all churn (0 defaults to warmup + window). Failures whose repair
	// would land past Until stay down for the rest of the run.
	Start int `json:"start,omitempty"`
	Until int `json:"until,omitempty"`
	// MTTF is the mean gap between failure groups in ticks (0 = only the
	// fixed entries fire); MTTR the mean delay until a group's repair
	// (0 = never repaired).
	MTTF float64 `json:"mttf,omitempty"`
	MTTR float64 `json:"mttr,omitempty"`
	// Shape places one failure group: "point" (one random node, the
	// default), "region" (a cluster of adjacent nodes, e.g.
	// {"name": "region", "params": {"size": 4}}) or any other registered
	// fault injector.
	Shape Component `json:"shape,omitempty"`
	// Fixed adds deterministic fail/repair entries to the stream.
	Fixed []FixedChurn `json:"fixed,omitempty"`
}

// FixedChurn is one deterministic churn entry: Inject fires at tick At and
// the nodes it placed are repaired RepairAfter ticks later (0 = never).
type FixedChurn struct {
	At          int       `json:"at"`
	Inject      Component `json:"inject"`
	RepairAfter int       `json:"repairafter,omitempty"`
}

// Build materialises the spec into the fault package's timeline engine,
// constructing the shape and fixed injectors through the fault-injector
// registry.
func (t *TimelineSpec) Build() (*fault.Timeline, error) {
	if t == nil {
		return nil, nil
	}
	tl := &fault.Timeline{
		Start: int64(t.Start),
		Until: int64(t.Until),
		MTTF:  t.MTTF,
		MTTR:  t.MTTR,
	}
	if t.MTTF > 0 {
		shape, err := fault.Build(t.Shape.Name, t.Shape.Args())
		if err != nil {
			return nil, fmt.Errorf("timeline shape: %w", err)
		}
		tl.Shape = shape
	}
	for i, fx := range t.Fixed {
		inj, err := fault.Build(fx.Inject.Name, fx.Inject.Args())
		if err != nil {
			return nil, fmt.Errorf("timeline fixed[%d]: %w", i, err)
		}
		tl.Fixed = append(tl.Fixed, fault.FixedEvent{
			At: int64(fx.At), Inject: inj, RepairAfter: int64(fx.RepairAfter),
		})
	}
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	return tl, nil
}

// ScheduledFault is one mid-run fault event.
type ScheduledFault struct {
	// At is the simulated tick of the injection.
	At int `json:"at"`
	// Inject is the injector to run (its "count" parameter is taken from its
	// own params, e.g. {"name": "clustered", "params": {"count": 5}}).
	Inject Component `json:"inject"`
}

// CountFree reports whether the static injector takes no "count" parameter
// (rate, block): the number of faults is then decided by the injector itself
// and Counts only sizes the sweep, so tables must not present its values as
// fault counts.
func (f FaultSpec) CountFree() bool {
	e, err := fault.Injectors.Lookup(f.Inject.Name)
	return err == nil && !e.HasParam("count")
}

// Injector builds the static injector for a cell with n faults. The cell
// count is passed to injectors that declare a "count" parameter (uniform,
// clustered, links); count-free injectors like rate and block take their
// parameters verbatim.
func (f FaultSpec) Injector(n int) (fault.Injector, error) {
	args := f.Inject.Args()
	if e, err := fault.Injectors.Lookup(f.Inject.Name); err == nil && e.HasParam("count") {
		args = args.With("count", n)
	}
	return fault.Build(f.Inject.Name, args)
}

// WorkloadSpec describes the traffic workload: which patterns inject packets
// and at which per-node rates. Only the "traffic" measure consumes it.
type WorkloadSpec struct {
	// Patterns names the traffic patterns (see the traffic.Patterns
	// registry). Defaults to ["uniform"].
	Patterns Components `json:"patterns,omitempty"`
	// Rates is the sweep over the injection probability per node per tick.
	// Defaults to [0.01].
	Rates []float64 `json:"rates,omitempty"`
}

// MeasureSpec selects the measurement and its parameters. Kind names an entry
// of the Measures registry; the remaining fields parameterise whichever
// measure is selected (unused fields are ignored).
type MeasureSpec struct {
	// Kind is the measure name: absorption, success, distance, overhead,
	// ablation, adaptivity or traffic (the default).
	Kind string `json:"kind"`
	// Pairs is the number of source/destination pairs sampled per trial
	// (routing measures). Defaults to 10.
	Pairs int `json:"pairs,omitempty"`
	// MinDistance is the minimum Manhattan distance between sampled pairs.
	MinDistance int `json:"mindistance,omitempty"`
	// Warmup and Window are the traffic measurement timeline in ticks.
	Warmup int `json:"warmup,omitempty"`
	Window int `json:"window,omitempty"`
	// LinkDelay and MaxEvents are passed to the simulator (traffic measure).
	LinkDelay int `json:"linkdelay,omitempty"`
	MaxEvents int `json:"maxevents,omitempty"`
}

// withDefaults returns a copy of the spec with every defaultable field
// filled, so a minimal hand-written spec runs and a dumped spec is explicit.
func (s Spec) withDefaults() Spec {
	// Canonicalise the execution knobs: the deprecated top-level spellings
	// fold into the exec block (exec wins on conflict), and an all-zero block
	// normalises away so minimal specs dump without an empty "exec": {}.
	s.execPatch(func(*ExecSpec) {})
	if s.Measure.Kind == "" {
		s.Measure.Kind = MeasureTraffic
	}
	if s.Trials <= 0 {
		s.Trials = 1
	}
	if s.Faults.Inject.Name == "" {
		s.Faults.Inject.Name = "uniform"
	}
	if len(s.Faults.Counts) == 0 {
		// A fixed count may live on the injector itself ("count" param).
		n, err := s.Faults.Inject.Args().Int("count", 0)
		if err == nil {
			s.Faults.Counts = []int{n}
		}
	}
	if len(s.Models) == 0 {
		s.Models = Components{C("mcc")}
	}
	// Branch on the canonical measure name so aliases ("e7" for traffic,
	// "perf" for bench) default exactly like the names they stand for. The
	// spec keeps the alias the user wrote.
	kind := s.Measure.Kind
	if e, err := Measures.Lookup(kind); err == nil {
		kind = e.Name
	}
	if kind == MeasureTraffic || kind == MeasureBench {
		if len(s.Workload.Patterns) == 0 {
			s.Workload.Patterns = Components{C("uniform")}
		}
		if len(s.Workload.Rates) == 0 {
			s.Workload.Rates = []float64{0.01}
		}
		if s.Measure.Window <= 0 {
			s.Measure.Window = 256 // the traffic engine's own default
		}
		if s.Measure.Warmup < 0 {
			s.Measure.Warmup = 0
		}
		if s.Faults.Timeline != nil {
			// Copy-on-default: the spec is a value, so the shared pointer
			// target must not be mutated in place.
			tl := *s.Faults.Timeline
			if tl.MTTF > 0 && tl.Shape.Name == "" {
				tl.Shape = C("point")
			}
			if tl.Until == 0 {
				tl.Until = s.Measure.Warmup + s.Measure.Window
			}
			s.Faults.Timeline = &tl
		}
	} else {
		if s.Measure.Pairs <= 0 {
			s.Measure.Pairs = 10
		}
		if s.Measure.MinDistance < 0 {
			s.Measure.MinDistance = 0
		}
	}
	return s
}

// Validate checks the spec against the component registries and value
// ranges, constructing every named component once on a probe mesh so a typo
// or a bad parameter fails fast with an actionable message instead of
// panicking inside a worker goroutine.
func (s Spec) Validate() error {
	if err := s.Mesh.validate(); err != nil {
		return err
	}
	if _, err := Measures.Lookup(s.Measure.Kind); err != nil {
		return err
	}
	// The inverted comparisons reject NaN, which satisfies neither bound.
	if secs := s.TimeoutSeconds(); !(secs >= 0) {
		return fmt.Errorf("exec: timeout %v out of range (want seconds >= 0)", secs)
	}
	if n := s.ShardCount(); n < 0 {
		return fmt.Errorf("exec: shards %d out of range (want >= 0; 0 or 1 runs sequentially)", n)
	}
	probe := s.Mesh.New()
	total := s.Mesh.NodeCount()
	if len(s.Faults.Counts) == 0 {
		// Counts can only be empty here when withDefaults failed to derive a
		// count from the injector's own params; building the injector
		// verbatim surfaces that malformed parameter.
		if _, err := fault.Build(s.Faults.Inject.Name, s.Faults.Inject.Args()); err != nil {
			return err
		}
	}
	for _, n := range s.Faults.Counts {
		if n < 0 || n >= total {
			return fmt.Errorf("faults: count %d out of range for a %s mesh (%d nodes)", n, s.Mesh, total)
		}
		if _, err := s.Faults.Injector(n); err != nil {
			return err
		}
	}
	for _, ev := range s.Faults.Schedule {
		if ev.At < 0 {
			return fmt.Errorf("faults: schedule time %d is negative", ev.At)
		}
		if _, err := fault.Build(ev.Inject.Name, ev.Inject.Args()); err != nil {
			return err
		}
	}
	for _, c := range s.Models {
		if _, err := traffic.BuildModel(c.Name, probeModel(probe), c.Args()); err != nil {
			return err
		}
	}
	// Resolve aliases (e.g. "e7") so the checks match the measure that will
	// actually run.
	kind := s.Measure.Kind
	if e, err := Measures.Lookup(kind); err == nil {
		kind = e.Name
	}
	if s.Faults.Timeline != nil && kind != MeasureTraffic && kind != MeasureBench {
		return fmt.Errorf("faults: a churn timeline needs the %q or %q measure (got %q)",
			MeasureTraffic, MeasureBench, s.Measure.Kind)
	}
	if _, err := s.Faults.Timeline.Build(); err != nil {
		return err
	}
	if kind == MeasureTraffic || kind == MeasureBench {
		for _, c := range s.Workload.Patterns {
			if _, err := traffic.BuildPattern(c.Name, probe, c.Args()); err != nil {
				return err
			}
		}
		for _, r := range s.Workload.Rates {
			// The inverted comparison rejects NaN, which satisfies neither bound.
			if !(r > 0 && r <= 1) {
				return fmt.Errorf("workload: rate %v out of range (want a value in (0,1])", r)
			}
		}
	}
	return nil
}
