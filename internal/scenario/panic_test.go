package scenario

import (
	"context"
	"strings"
	"sync"
	"testing"

	"mccmesh/internal/core"
	"mccmesh/internal/grid"
	"mccmesh/internal/registry"
	"mccmesh/internal/routing"
	"mccmesh/internal/traffic"
)

// panickyModel constructs cleanly (Validate probes the ctor) but panics the
// moment the engine asks it to route — inside the trial worker goroutine, so
// it drives the per-trial recover boundary in measureTraffic exactly where a
// real model bug would land.
type panickyModel struct{}

func (panickyModel) Name() string { return "panicky" }
func (panickyModel) Provider(grid.Orientation) routing.Provider {
	panic("injected trial panic")
}
func (panickyModel) Invalidate() {}

var registerPanicky sync.Once

func panickySpec() Spec {
	registerPanicky.Do(func() {
		traffic.Models.Register(registry.Entry[traffic.ModelCtor]{
			Name: "panicky",
			Doc:  "test-only model that panics inside the trial worker",
			New: func(*core.Model, registry.Args) (traffic.InfoModel, error) {
				return panickyModel{}, nil
			},
		})
	})
	return Spec{
		Name:   "trial-panic-test",
		Mesh:   Cube(5),
		Faults: FaultSpec{Inject: C("uniform"), Counts: []int{4}},
		Models: ComponentsOf("mcc", "panicky"),
		Workload: WorkloadSpec{
			Patterns: ComponentsOf("uniform"),
			Rates:    []float64{0.02},
		},
		Measure: MeasureSpec{Kind: MeasureTraffic, Warmup: 5, Window: 30},
		Seed:    17,
		Trials:  2,
		Workers: 2,
	}
}

// TestTrialPanicFailsCellNotProcess pins panic isolation at the trial
// boundary: a model that panics inside its trial goroutine costs its own cell
// (FAILED, with the panic and stack in the cell error) while the rest of the
// sweep — and the process — survive.
func TestTrialPanicFailsCellNotProcess(t *testing.T) {
	sc, err := New(panickySpec())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatalf("a trial panic must not fail the run: %v", err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells, want 2 (one healthy, one failed)", len(rep.Cells))
	}
	healthy, failed := rep.Cells[0], rep.Cells[1]
	if healthy.Err != "" {
		t.Errorf("mcc cell failed: %s", healthy.Err)
	}
	if !strings.Contains(failed.Err, "panicked: injected trial panic") {
		t.Errorf("panicky cell error = %q, want the recovered panic", failed.Err)
	}
	if !strings.Contains(failed.Err, "goroutine") {
		t.Errorf("panicky cell error carries no stack:\n%s", failed.Err)
	}
	if !strings.Contains(strings.Join(failed.Row, " "), "FAILED") {
		t.Errorf("panicky cell row not marked FAILED: %v", failed.Row)
	}
}
