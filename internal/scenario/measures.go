package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"mccmesh/internal/block"
	"mccmesh/internal/core"
	"mccmesh/internal/fault"
	"mccmesh/internal/feasibility"
	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/mesh"
	"mccmesh/internal/minimal"
	"mccmesh/internal/protocol"
	"mccmesh/internal/region"
	"mccmesh/internal/registry"
	"mccmesh/internal/rng"
	"mccmesh/internal/routing"
	"mccmesh/internal/simnet"
	"mccmesh/internal/stats"
	"mccmesh/internal/traffic"
)

// Canonical measure names (the Measures registry accepts aliases too).
const (
	MeasureAbsorption = "absorption"
	MeasureSuccess    = "success"
	MeasureDistance   = "distance"
	MeasureOverhead   = "overhead"
	MeasureAblation   = "ablation"
	MeasureAdaptivity = "adaptivity"
	MeasureTraffic    = "traffic"
)

// MeasureFn runs one measurement over a validated scenario and returns the
// report body (Spec and Measure are filled in by Run).
type MeasureFn func(ctx context.Context, sc *Scenario) (*Report, error)

// Measures is the measurement registry. Each entry maps one experiment of the
// evaluation harness; third-party measures register the same way:
//
//	scenario.Measures.Register(registry.Entry[scenario.MeasureFn]{Name: "mine", New: ...})
var Measures = registry.New[MeasureFn]("measure")

func init() {
	Measures.Register(registry.Entry[MeasureFn]{
		Name: MeasureAbsorption, Aliases: []string{"e1"},
		Doc: "E1: healthy nodes absorbed by fault regions, MCC vs RFB",
		New: measureAbsorption,
	})
	Measures.Register(registry.Entry[MeasureFn]{
		Name: MeasureSuccess, Aliases: []string{"e2"},
		Doc: "E2: minimal-routing success rate per information model",
		New: measureSuccess,
	})
	Measures.Register(registry.Entry[MeasureFn]{
		Name: MeasureDistance, Aliases: []string{"e3"},
		Doc: "E3: success rate vs source–destination distance",
		New: measureDistance,
	})
	Measures.Register(registry.Entry[MeasureFn]{
		Name: MeasureOverhead, Aliases: []string{"e4"},
		Doc: "E4: messages used by the distributed information model",
		New: measureOverhead,
	})
	Measures.Register(registry.Entry[MeasureFn]{
		Name: MeasureAblation, Aliases: []string{"e5"},
		Doc: "E5: region sizes per model variant and border policy",
		New: measureAblation,
	})
	Measures.Register(registry.Entry[MeasureFn]{
		Name: MeasureAdaptivity, Aliases: []string{"e6"},
		Doc: "E6: routing flexibility left by each information model",
		New: measureAdaptivity,
	})
	Measures.Register(registry.Entry[MeasureFn]{
		Name: MeasureTraffic, Aliases: []string{"e7"},
		Doc: "E7: continuous-traffic throughput/latency per pattern, model and rate",
		New: measureTraffic,
	})
}

// samplePair draws a healthy source/destination pair with the configured
// minimum distance whose endpoints are safe under the pair's labelling.
func samplePair(r *rng.Rand, m *mesh.Mesh, minDist int) (grid.Point, grid.Point, *labeling.Labeling, bool) {
	for attempt := 0; attempt < 500; attempt++ {
		s := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		if grid.Manhattan(s, d) < minDist || m.IsFaulty(s) || m.IsFaulty(d) {
			continue
		}
		l := labeling.Compute(m, grid.OrientationOf(s, d))
		if l.Safe(s) && l.Safe(d) {
			return s, d, l, true
		}
	}
	return grid.Point{}, grid.Point{}, nil, false
}

// injectorFor resolves the static injector for a cell; validation already
// proved it constructible, so a failure here is a programming error.
func (sc *Scenario) injectorFor(n int) fault.Injector {
	inj, err := sc.spec.Faults.Injector(n)
	if err != nil {
		panic(err)
	}
	return inj
}

// firstCount returns the single fault count used by the fixed-count measures
// (distance, adaptivity, traffic).
func (sc *Scenario) firstCount() int {
	if len(sc.spec.Faults.Counts) == 0 {
		return 0
	}
	return sc.spec.Faults.Counts[0]
}

// faultLabel renders the fault workload of a cell for titles and row labels:
// the count, or the injector itself when its fault count is not statically
// known (count-free injectors like rate and block).
func (sc *Scenario) faultLabel(n int) string {
	if sc.spec.Faults.CountFree() {
		return sc.spec.Faults.Inject.String()
	}
	return fmt.Sprintf("%d", n)
}

// measureAbsorption is experiment E1: the average number of non-faulty nodes
// included in fault regions, comparing the MCC model against the two
// rectangular-faulty-block baselines.
func measureAbsorption(ctx context.Context, sc *Scenario) (*Report, error) {
	spec := sc.spec
	t := &stats.Table{
		Title:   fmt.Sprintf("E1: healthy nodes absorbed by fault regions (%s mesh, %s faults, %d trials)", spec.Mesh, spec.Faults.Inject.Name, spec.Trials),
		Columns: []string{"faults", "fault %", "MCC", "MCC regions", "RFB (bbox)", "FB (rule)", "MCC/RFB ratio"},
	}
	rep := &Report{Table: t}
	r := rng.New(spec.Seed)
	for i, n := range spec.Faults.Counts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc.emit(Event{Cell: i, Total: len(spec.Faults.Counts), Label: "faults=" + sc.faultLabel(n)})
		var mcc, mccRegions, rfb, rule stats.Summary
		for trial := 0; trial < spec.Trials; trial++ {
			m := sc.newMesh()
			sc.injectorFor(n).Inject(m, r)
			l := labeling.Compute(m, grid.PositiveOrientation)
			cs := region.FindMCCs(l)
			mcc.Add(float64(cs.TotalNonFaulty()))
			mccRegions.Add(float64(cs.Len()))
			rfb.Add(float64(block.Build(m, block.BoundingBox).TotalNonFaulty()))
			rule.Add(float64(block.Build(m, block.ConvexityRule).TotalNonFaulty()))
		}
		ratio := 0.0
		if rfb.Mean() > 0 {
			ratio = mcc.Mean() / rfb.Mean()
		}
		faultPct := "n/a" // a count-free injector's fault share is not known statically
		if !spec.Faults.CountFree() {
			faultPct = stats.Pct(float64(n) / float64(spec.Mesh.NodeCount()))
		}
		row := []string{
			sc.faultLabel(n),
			faultPct,
			stats.F(mcc.Mean()),
			stats.F(mccRegions.Mean()),
			stats.F(rfb.Mean()),
			stats.F(rule.Mean()),
			stats.F(ratio),
		}
		t.AddRow(row...)
		rep.Cells = append(rep.Cells, Cell{
			Index: i, Faults: n, Row: row,
			Values: map[string]float64{
				"mcc": mcc.Mean(), "mcc_regions": mccRegions.Mean(),
				"rfb": rfb.Mean(), "fb_rule": rule.Mean(), "ratio": ratio,
			},
		})
		sc.emit(Event{Cell: i, Total: len(spec.Faults.Counts), Label: "faults=" + sc.faultLabel(n), Done: true, Row: row})
	}
	t.AddNote("MCC counts useless + can't-reach nodes for the (+X,+Y,+Z) orientation; the paper's claim is MCC ≪ RFB.")
	return rep, nil
}

// measureSuccess is experiment E2: the percentage of source/destination pairs
// for which a minimal path can be routed, per information model.
func measureSuccess(ctx context.Context, sc *Scenario) (*Report, error) {
	spec := sc.spec
	t := &stats.Table{
		Title: fmt.Sprintf("E2: minimal-routing success rate (%s mesh, %s faults, %d trials x %d pairs)",
			spec.Mesh, spec.Faults.Inject.Name, spec.Trials, spec.Measure.Pairs),
		Columns: []string{"faults", "MCC model", "RFB (bbox)", "FB (rule)", "labels only", "local greedy", "optimal"},
	}
	rep := &Report{Table: t}
	r := rng.New(spec.Seed)
	for i, n := range spec.Faults.Counts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc.emit(Event{Cell: i, Total: len(spec.Faults.Counts), Label: "faults=" + sc.faultLabel(n)})
		var mcc, rfb, rule, labelsOnly, greedy, optimal stats.Summary
		for trial := 0; trial < spec.Trials; trial++ {
			m := sc.newMesh()
			sc.injectorFor(n).Inject(m, r)
			bb := block.Build(m, block.BoundingBox)
			cr := block.Build(m, block.ConvexityRule)
			for pair := 0; pair < spec.Measure.Pairs; pair++ {
				s, d, l, ok := samplePair(r, m, spec.Measure.MinDistance)
				if !ok {
					continue
				}
				cs := region.FindMCCs(l)
				feasible := feasibility.GroundTruth(cs, s, d)
				optimal.AddBool(feasible)

				// MCC model: feasibility check + routing (Algorithm 6).
				if feasibility.Theorem(cs, s, d) {
					tr := routing.New(m, &routing.MCC{Set: cs}, nil).Route(s, d)
					mcc.AddBool(tr.Succeeded())
				} else {
					mcc.AddBool(false)
				}

				// Rectangular faulty-block baselines: succeed when the block
				// regions leave a monotone path open.
				rfb.AddBool(!bb.Contains(s) && !bb.Contains(d) && !bb.BlockedByUnion(s, d))
				rule.AddBool(!cr.Contains(s) && !cr.Contains(d) && !cr.BlockedByUnion(s, d))

				// Labels only: avoid unsafe nodes with no region reasoning.
				labelsOnly.AddBool(routing.New(m, &routing.Labeled{Labeling: l}, nil).Route(s, d).Succeeded())

				// Local greedy floor baseline.
				greedy.AddBool(routing.New(m, routing.LocalGreedy{}, nil).Route(s, d).Succeeded())
			}
		}
		row := []string{
			sc.faultLabel(n),
			stats.Pct(mcc.Mean()),
			stats.Pct(rfb.Mean()),
			stats.Pct(rule.Mean()),
			stats.Pct(labelsOnly.Mean()),
			stats.Pct(greedy.Mean()),
			stats.Pct(optimal.Mean()),
		}
		t.AddRow(row...)
		rep.Cells = append(rep.Cells, Cell{
			Index: i, Faults: n, Row: row,
			Values: map[string]float64{
				"mcc": mcc.Mean(), "rfb": rfb.Mean(), "fb_rule": rule.Mean(),
				"labels": labelsOnly.Mean(), "local": greedy.Mean(), "optimal": optimal.Mean(),
			},
		})
		sc.emit(Event{Cell: i, Total: len(spec.Faults.Counts), Label: "faults=" + sc.faultLabel(n), Done: true, Row: row})
	}
	t.AddNote("'optimal' is the fraction of pairs with any minimal fault-free path; the MCC model is expected to match it.")
	return rep, nil
}

// measureDistance is experiment E3: how the success rate degrades with the
// source/destination distance at a fixed fault count.
func measureDistance(ctx context.Context, sc *Scenario) (*Report, error) {
	spec := sc.spec
	faults := sc.firstCount()
	t := &stats.Table{
		Title:   fmt.Sprintf("E3: success rate vs distance (%s mesh, %s faults)", spec.Mesh, sc.faultLabel(faults)),
		Columns: []string{"distance bucket", "pairs", "MCC model", "RFB (bbox)", "local greedy"},
	}
	rep := &Report{Table: t}
	sc.emit(Event{Cell: 0, Total: 1, Label: "faults=" + sc.faultLabel(faults)})
	r := rng.New(spec.Seed)
	diameter := sc.newMesh().Diameter()
	buckets := 4
	// The measure spans all distances, so the pair filter is only a floor:
	// at least 2 so a zero-distance pair can never produce a negative bucket.
	minDist := spec.Measure.MinDistance
	if minDist < 2 {
		minDist = 2
	}
	type acc struct{ mcc, rfb, greedy stats.Summary }
	accs := make([]acc, buckets)
	for trial := 0; trial < spec.Trials*spec.Measure.Pairs; trial++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := sc.newMesh()
		sc.injectorFor(faults).Inject(m, r)
		bb := block.Build(m, block.BoundingBox)
		s, d, l, ok := samplePair(r, m, minDist)
		if !ok {
			continue
		}
		dist := grid.Manhattan(s, d)
		bucket := (dist - 1) * buckets / diameter
		if bucket >= buckets {
			bucket = buckets - 1
		}
		cs := region.FindMCCs(l)
		accs[bucket].mcc.AddBool(feasibility.Theorem(cs, s, d))
		accs[bucket].rfb.AddBool(!bb.Contains(s) && !bb.Contains(d) && !bb.BlockedByUnion(s, d))
		accs[bucket].greedy.AddBool(routing.New(m, routing.LocalGreedy{}, nil).Route(s, d).Succeeded())
	}
	for i := range accs {
		lo := i*diameter/buckets + 1
		hi := (i + 1) * diameter / buckets
		cell := func(s *stats.Summary) string {
			if s.N() == 0 {
				return "n/a"
			}
			return stats.Pct(s.Mean())
		}
		row := []string{
			fmt.Sprintf("%d-%d", lo, hi),
			fmt.Sprintf("%d", accs[i].mcc.N()),
			cell(&accs[i].mcc),
			cell(&accs[i].rfb),
			cell(&accs[i].greedy),
		}
		t.AddRow(row...)
		rep.Cells = append(rep.Cells, Cell{Index: i, Faults: faults, Row: row})
	}
	sc.emit(Event{Cell: 0, Total: 1, Label: "faults=" + sc.faultLabel(faults), Done: true})
	return rep, nil
}

// measureOverhead is experiment E4: the number of messages the distributed
// information model exchanges.
func measureOverhead(ctx context.Context, sc *Scenario) (*Report, error) {
	spec := sc.spec
	t := &stats.Table{
		Title:   fmt.Sprintf("E4: information-model message overhead (%s mesh, %d trials)", spec.Mesh, spec.Trials),
		Columns: []string{"faults", "label msgs", "identify msgs", "boundary msgs", "detect msgs/pair", "info nodes"},
	}
	rep := &Report{Table: t}
	r := rng.New(spec.Seed)
	for i, n := range spec.Faults.Counts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc.emit(Event{Cell: i, Total: len(spec.Faults.Counts), Label: "faults=" + sc.faultLabel(n)})
		var label, ident, bound, detect, coverage stats.Summary
		for trial := 0; trial < spec.Trials; trial++ {
			m := sc.newMesh()
			sc.injectorFor(n).Inject(m, r)
			orient := grid.PositiveOrientation
			lr := protocol.RunLabeling(m, orient)
			label.Add(float64(lr.Stats.ByKind[protocol.KindLabel]))

			l := labeling.Compute(m, orient)
			cs := region.FindMCCs(l)
			info := protocol.RunInformationModel(m, l, cs)
			ident.Add(float64(info.IdentifyMessages))
			bound.Add(float64(info.BoundaryMessages))
			coverage.Add(float64(len(info.Records)))

			s, d, lab, ok := samplePair(r, m, spec.Measure.MinDistance)
			if !ok {
				continue
			}
			var det *protocol.DetectionResult
			if m.Is2D() {
				det = protocol.RunDetection2D(m, lab, s, d)
			} else {
				det = protocol.RunDetection3D(m, lab, s, d)
			}
			detect.Add(float64(det.ForwardHops + det.ReplyHops))
		}
		row := []string{
			sc.faultLabel(n),
			stats.F(label.Mean()),
			stats.F(ident.Mean()),
			stats.F(bound.Mean()),
			stats.F(detect.Mean()),
			stats.F(coverage.Mean()),
		}
		t.AddRow(row...)
		rep.Cells = append(rep.Cells, Cell{
			Index: i, Faults: n, Row: row,
			Values: map[string]float64{
				"label_msgs": label.Mean(), "identify_msgs": ident.Mean(),
				"boundary_msgs": bound.Mean(), "detect_msgs": detect.Mean(), "info_nodes": coverage.Mean(),
			},
		})
		sc.emit(Event{Cell: i, Total: len(spec.Faults.Counts), Label: "faults=" + sc.faultLabel(n), Done: true, Row: row})
	}
	t.AddNote("'info nodes' is the number of nodes holding at least one MCC record after boundary construction.")
	return rep, nil
}

// measureAblation is experiment E5: region sizes per border policy and block
// variant, and how often a single MCC explains an infeasible pair.
func measureAblation(ctx context.Context, sc *Scenario) (*Report, error) {
	spec := sc.spec
	t := &stats.Table{
		Title:   fmt.Sprintf("E5: region-size ablation (%s mesh, %d trials)", spec.Mesh, spec.Trials),
		Columns: []string{"faults", "MCC border-safe", "MCC border-blocked", "RFB (bbox)", "FB (rule)", "single-MCC infeasibility"},
	}
	rep := &Report{Table: t}
	r := rng.New(spec.Seed)
	for i, n := range spec.Faults.Counts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc.emit(Event{Cell: i, Total: len(spec.Faults.Counts), Label: "faults=" + sc.faultLabel(n)})
		var safe, blocked, rfb, rule, single stats.Summary
		for trial := 0; trial < spec.Trials; trial++ {
			m := sc.newMesh()
			sc.injectorFor(n).Inject(m, r)
			lSafe := labeling.Compute(m, grid.PositiveOrientation)
			lBlocked := labeling.Compute(m, grid.PositiveOrientation, labeling.Options{Border: labeling.BorderBlocked})
			safe.Add(float64(lSafe.NonFaultyUnsafeCount()))
			blocked.Add(float64(lBlocked.NonFaultyUnsafeCount()))
			rfb.Add(float64(block.Build(m, block.BoundingBox).TotalNonFaulty()))
			rule.Add(float64(block.Build(m, block.ConvexityRule).TotalNonFaulty()))

			s, d, l, ok := samplePair(r, m, spec.Measure.MinDistance)
			if !ok {
				continue
			}
			cs := region.FindMCCs(l)
			if !feasibility.GroundTruth(cs, s, d) {
				single.AddBool(feasibility.SingleMCCExplains(cs, s, d))
			}
		}
		singleCell := "n/a"
		if single.N() > 0 {
			singleCell = stats.Pct(single.Mean())
		}
		row := []string{
			sc.faultLabel(n),
			stats.F(safe.Mean()),
			stats.F(blocked.Mean()),
			stats.F(rfb.Mean()),
			stats.F(rule.Mean()),
			singleCell,
		}
		t.AddRow(row...)
		rep.Cells = append(rep.Cells, Cell{Index: i, Faults: n, Row: row})
		sc.emit(Event{Cell: i, Total: len(spec.Faults.Counts), Label: "faults=" + sc.faultLabel(n), Done: true, Row: row})
	}
	t.AddNote("'single-MCC infeasibility' = among infeasible pairs, how often one MCC alone blocks (the rest need merged boundary information); n/a when no infeasible pair was sampled.")
	t.AddNote("border-blocked treats missing neighbours as faults; the far corner then satisfies the useless rule vacuously and the labels cascade across the mesh, which is exactly why the paper's definition (border-safe) is used everywhere else.")
	return rep, nil
}

// measureAdaptivity is experiment E6: the routing flexibility each
// information model preserves.
func measureAdaptivity(ctx context.Context, sc *Scenario) (*Report, error) {
	spec := sc.spec
	faults := sc.firstCount()
	t := &stats.Table{
		Title:   fmt.Sprintf("E6: routing adaptivity (%s mesh, %s faults)", spec.Mesh, sc.faultLabel(faults)),
		Columns: []string{"metric", "fault-free", "MCC model", "RFB (bbox)"},
	}
	rep := &Report{Table: t}
	sc.emit(Event{Cell: 0, Total: 1, Label: "faults=" + sc.faultLabel(faults)})
	r := rng.New(spec.Seed)
	const pathCap = 1_000_000
	var freePaths, mccPaths, rfbPaths, mccMinCand stats.Summary
	for trial := 0; trial < spec.Trials*spec.Measure.Pairs; trial++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := sc.newMesh()
		sc.injectorFor(faults).Inject(m, r)
		s, d, l, ok := samplePair(r, m, spec.Measure.MinDistance)
		if !ok {
			continue
		}
		cs := region.FindMCCs(l)
		if !feasibility.Theorem(cs, s, d) {
			continue
		}
		bb := block.Build(m, block.BoundingBox)
		freePaths.Add(float64(minimal.CountPaths(m, minimal.AvoidNone, s, d, pathCap)))
		mccPaths.Add(float64(minimal.CountPaths(m, func(p grid.Point) bool { return l.Unsafe(p) }, s, d, pathCap)))
		rfbPaths.Add(float64(minimal.CountPaths(m, bb.Avoid(), s, d, pathCap)))
		tr := routing.New(m, &routing.MCC{Set: cs}, nil).Route(s, d)
		if tr.Succeeded() {
			mccMinCand.Add(float64(tr.MinAdaptivity()))
		}
	}
	rows := [][]string{
		{"distinct minimal paths (mean, capped)", stats.F(freePaths.Mean()), stats.F(mccPaths.Mean()), stats.F(rfbPaths.Mean())},
		{"pairs measured", fmt.Sprintf("%d", freePaths.N()), fmt.Sprintf("%d", mccPaths.N()), fmt.Sprintf("%d", rfbPaths.N())},
		{"min forwarding candidates on MCC route", "-", stats.F(mccMinCand.Mean()), "-"},
	}
	for i, row := range rows {
		t.AddRow(row...)
		rep.Cells = append(rep.Cells, Cell{Index: i, Faults: faults, Row: row})
	}
	t.AddNote("path counts are capped at 1e6; the MCC column keeps more minimal paths alive than the RFB column.")
	sc.emit(Event{Cell: 0, Total: 1, Label: "faults=" + sc.faultLabel(faults), Done: true})
	return rep, nil
}

// measureTraffic is experiment E7: sustained-load throughput, delivery ratio
// and latency percentiles for every pattern × information model × injection
// rate cell. Trials are sharded across parallel workers with per-trial
// derived seeds, so the same spec produces the same table at any worker
// count.
func measureTraffic(ctx context.Context, sc *Scenario) (*Report, error) {
	spec := sc.spec
	faults := sc.firstCount()
	timeline, err := spec.Faults.Timeline.Build()
	if err != nil {
		return nil, err // unreachable after Validate; kept for direct callers
	}
	title := fmt.Sprintf("E7: continuous-traffic throughput/latency (%s mesh, %s faults, %d trials, warmup %d + window %d ticks)",
		spec.Mesh, sc.faultLabel(faults), spec.Trials, spec.Measure.Warmup, spec.Measure.Window)
	columns := []string{"pattern", "model", "rate", "delivered", "throughput", "lat mean", "p50", "p95", "p99", "stuck", "lost"}
	if timeline != nil {
		title = fmt.Sprintf("E7: continuous-traffic under churn (%s mesh, %s faults, mttf %g / mttr %g, %d trials, warmup %d + window %d ticks)",
			spec.Mesh, sc.faultLabel(faults), timeline.MTTF, timeline.MTTR, spec.Trials, spec.Measure.Warmup, spec.Measure.Window)
		columns = append(columns, "fail/rep", "phase tp", "phase lat")
	}
	t := &stats.Table{Title: title, Columns: columns}
	rep := &Report{Table: t}
	injector := sc.injectorFor(faults)
	schedule := make([]traffic.FaultEvent, len(spec.Faults.Schedule))
	for i, ev := range spec.Faults.Schedule {
		inj, err := fault.Build(ev.Inject.Name, ev.Inject.Args())
		if err != nil {
			return nil, err // unreachable after Validate; kept for direct callers
		}
		schedule[i] = traffic.FaultEvent{At: simnet.Time(ev.At), Inject: inj}
	}
	total := len(spec.Workload.Patterns) * len(spec.Models) * len(spec.Workload.Rates)
	cell := 0
	for _, pattern := range spec.Workload.Patterns {
		for _, model := range spec.Models {
			for _, rate := range spec.Workload.Rates {
				// No early return on an expired context here: the trial-level
				// check below observes it, the cell is marked CANCELLED /
				// TIMEOUT, and the completed prefix survives in the report —
				// even when the deadline beats the very first cell.
				label := fmt.Sprintf("%s/%s/%.3f", pattern.Name, model.Name, rate)
				sc.emit(Event{Cell: cell, Total: total, Label: label})
				cellSeed := rng.Derive(spec.Seed, uint64(cell))
				results := traffic.RunTrials(spec.WorkerCount(), spec.Trials, cellSeed, func(trial int, seed uint64) (res *traffic.Result) {
					// A panicking trial must fail its cell, not the process:
					// trial goroutines are outside any caller's recover, so the
					// boundary recover lives here. The captured stack rides
					// Result.Err into the FAILED cell row.
					defer func() {
						if p := recover(); p != nil {
							res = &traffic.Result{Err: fmt.Errorf("trial %d panicked: %v\n%s", trial, p, debug.Stack())}
						}
					}()
					// Cancellation is checked per trial, not only per cell, so
					// a job cancel lands within one trial's runtime; the
					// context error flows into Result.Err and is surfaced as a
					// distinguishable CANCELLED cell below.
					if err := ctx.Err(); err != nil {
						return &traffic.Result{Err: err}
					}
					m := sc.newMesh()
					injector.Inject(m, rng.New(rng.Derive(seed, 1<<48)))
					im, err := traffic.BuildModel(model.Name, core.NewModel(m), model.Args())
					if err != nil {
						panic(err) // validated up front
					}
					p, err := traffic.BuildPattern(pattern.Name, m, pattern.Args())
					if err != nil {
						panic(err) // validated up front
					}
					e := traffic.NewEngine(m, im, p, traffic.Options{
						Rate:       rate,
						Warmup:     simnet.Time(spec.Measure.Warmup),
						Window:     simnet.Time(spec.Measure.Window),
						LinkDelay:  simnet.Time(spec.Measure.LinkDelay),
						MaxEvents:  spec.Measure.MaxEvents,
						Faults:     schedule,
						Timeline:   timeline,
						Telemetry:  sc.telemetry,
						TraceEvery: sc.traceEvery,
						TraceCap:   sc.traceCap,
						Shards:     spec.ShardCount(),
						ShardModel: func() (traffic.InfoModel, error) {
							return traffic.BuildModel(model.Name, core.NewModel(m), model.Args())
						},
					})
					return e.Run(seed)
				})
				agg := traffic.Collect(results)
				if sc.telemetry {
					// Per-trial Progress events stream in trial order after
					// the sharded trials complete, so the event stream is
					// identical at any worker count.
					for trial, r := range results {
						if r.Telemetry == nil {
							continue
						}
						sc.emit(Event{
							Cell: cell, Total: total, Label: label,
							Progress: true, Trial: trial, Counters: r.Telemetry.Snapshot(),
						})
						for _, tr := range r.Traces {
							rep.traces = append(rep.traces, TraceRecord{Cell: cell, Trial: trial, Trace: tr})
						}
					}
					if agg.Telemetry != nil {
						rep.Telemetry = append(rep.Telemetry, CellTelemetry{
							Cell: cell, Label: label, Counters: agg.Telemetry.Snapshot(),
						})
					}
				}
				if agg.Err != nil && (errors.Is(agg.Err, context.Canceled) || errors.Is(agg.Err, context.DeadlineExceeded)) {
					// The run was cancelled mid-cell. Mark the interrupted
					// cell distinguishably — Cell.Err carries the context
					// error, not a generic failure — and return the completed
					// prefix of the sweep with the context's error, so a job
					// runner reports "cancelled" (or "timeout" for an expired
					// deadline), never "failed".
					verdict := "CANCELLED"
					if errors.Is(agg.Err, context.DeadlineExceeded) {
						verdict = "TIMEOUT"
					}
					row := []string{
						pattern.Name, model.Name, fmt.Sprintf("%.3f", rate),
						fmt.Sprintf("%s: %v", verdict, agg.Err),
					}
					for len(row) < len(columns) {
						row = append(row, "-")
					}
					t.AddRow(row...)
					rep.Cells = append(rep.Cells, Cell{
						Index: cell, Pattern: pattern.Name, Model: model.Name, Rate: rate, Faults: faults, Row: row,
						Err: agg.Err.Error(),
					})
					sc.emit(Event{Cell: cell, Total: total, Label: label, Done: true, Row: row})
					return rep, agg.Err
				}
				if agg.Err != nil {
					// A trial aborted (event budget exhausted): fail this cell
					// visibly but keep the sweep alive — a runaway cell must
					// not cost the report its other cells, let alone the
					// process.
					row := []string{
						pattern.Name, model.Name, fmt.Sprintf("%.3f", rate),
						fmt.Sprintf("FAILED (%d/%d trials): %v", agg.Failed, agg.Trials, agg.Err),
						"-", "-", "-", "-", "-", "-", "-",
					}
					for len(row) < len(columns) {
						row = append(row, "-")
					}
					t.AddRow(row...)
					rep.Cells = append(rep.Cells, Cell{
						Index: cell, Pattern: pattern.Name, Model: model.Name, Rate: rate, Faults: faults, Row: row,
						Err: agg.Err.Error(),
					})
					sc.emit(Event{Cell: cell, Total: total, Label: label, Done: true, Row: row})
					cell++
					continue
				}
				row := []string{
					pattern.Name,
					model.Name,
					fmt.Sprintf("%.3f", rate),
					stats.Pct(agg.DeliveredRatio.Mean()),
					fmt.Sprintf("%.4f", agg.Throughput.Mean()),
					stats.F(agg.Latency.Mean()),
					fmt.Sprintf("%d", agg.Latency.Percentile(0.50)),
					fmt.Sprintf("%d", agg.Latency.Percentile(0.95)),
					fmt.Sprintf("%d", agg.Latency.Percentile(0.99)),
					fmt.Sprintf("%d", agg.Stuck),
					fmt.Sprintf("%d", agg.Lost),
				}
				values := map[string]float64{
					"delivered":  agg.DeliveredRatio.Mean(),
					"throughput": agg.Throughput.Mean(),
					"lat_mean":   agg.Latency.Mean(),
					"p50":        float64(agg.Latency.Percentile(0.50)),
					"p95":        float64(agg.Latency.Percentile(0.95)),
					"p99":        float64(agg.Latency.Percentile(0.99)),
					"stuck":      float64(agg.Stuck),
					"lost":       float64(agg.Lost),
				}
				if timeline != nil {
					// Per-phase resolution: the throughput/latency spread
					// across the inter-event phases of every trial shows the
					// degradation/recovery band, not just the window mean.
					row = append(row,
						fmt.Sprintf("%d/%d", agg.Failures, agg.Repairs),
						fmt.Sprintf("%.4f [%.4f..%.4f]", agg.PhaseThroughput.Mean(), agg.PhaseThroughput.Min(), agg.PhaseThroughput.Max()),
						fmt.Sprintf("%.1f [%.1f..%.1f]", agg.PhaseLatency.Mean(), agg.PhaseLatency.Min(), agg.PhaseLatency.Max()),
					)
					values["failures"] = float64(agg.Failures)
					values["repairs"] = float64(agg.Repairs)
					values["failed_nodes"] = float64(agg.FailedNodes)
					values["repaired_nodes"] = float64(agg.RepairedNodes)
					values["phase_tp_mean"] = agg.PhaseThroughput.Mean()
					values["phase_tp_min"] = agg.PhaseThroughput.Min()
					values["phase_tp_max"] = agg.PhaseThroughput.Max()
					values["phase_lat_mean"] = agg.PhaseLatency.Mean()
					values["phase_lat_min"] = agg.PhaseLatency.Min()
					values["phase_lat_max"] = agg.PhaseLatency.Max()
				}
				t.AddRow(row...)
				rep.Cells = append(rep.Cells, Cell{
					Index: cell, Pattern: pattern.Name, Model: model.Name, Rate: rate, Faults: faults, Row: row,
					Values: values,
				})
				sc.emit(Event{Cell: cell, Total: total, Label: label, Done: true, Row: row})
				cell++
			}
		}
	}
	t.AddNote("throughput is measured deliveries per healthy node per tick; latency percentiles are over packets injected inside the window.")
	t.AddNote("'stuck' packets ran out of allowed forwarding directions; 'lost' packets were dropped by a node that died mid-flight.")
	if timeline != nil {
		t.AddNote("'fail/rep' totals churn events across trials; 'phase tp'/'phase lat' give mean [min..max] over the inter-event phases of every trial.")
	}
	return rep, nil
}
