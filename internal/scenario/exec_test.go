package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// dumpJSON renders a scenario's canonical spec dump as a generic map for
// structural assertions.
func dumpJSON(t *testing.T, sc *Scenario) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := sc.WriteSpec(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestExecFoldsLegacyFields: the deprecated top-level workers/timeout fields
// still parse, but normalisation moves them into the exec block — the dump
// carries exec only, and the accessors resolve the same values either way.
func TestExecFoldsLegacyFields(t *testing.T) {
	raw := `{"mesh": {"x": 7, "y": 7, "z": 7}, "seed": 1, "trials": 1, "workers": 6, "timeout": 2.5}`
	sc, err := Load(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	spec := sc.Spec()
	if spec.Workers != 0 || spec.Timeout != 0 {
		t.Errorf("legacy fields survived normalisation: workers=%d timeout=%v", spec.Workers, spec.Timeout)
	}
	if got := spec.WorkerCount(); got != 6 {
		t.Errorf("WorkerCount = %d, want 6", got)
	}
	if got := spec.TimeoutSeconds(); got != 2.5 {
		t.Errorf("TimeoutSeconds = %v, want 2.5", got)
	}
	doc := dumpJSON(t, sc)
	if _, ok := doc["workers"]; ok {
		t.Error("dump still carries the deprecated top-level workers field")
	}
	if _, ok := doc["timeout"]; ok {
		t.Error("dump still carries the deprecated top-level timeout field")
	}
	exec, ok := doc["exec"].(map[string]any)
	if !ok {
		t.Fatalf("dump carries no exec block: %v", doc)
	}
	if exec["workers"] != 6.0 || exec["timeout"] != 2.5 {
		t.Errorf("exec block = %v, want workers=6 timeout=2.5", exec)
	}
}

// TestExecWinsOverLegacy: when a spec carries both spellings, the exec block
// is authoritative.
func TestExecWinsOverLegacy(t *testing.T) {
	spec := tinySpec()
	spec.Exec = &ExecSpec{Workers: 2, Timeout: 9}
	spec.Workers = 8
	spec.Timeout = 1
	norm := spec.withDefaults()
	if got := norm.WorkerCount(); got != 2 {
		t.Errorf("WorkerCount = %d, want 2 (exec over legacy)", got)
	}
	if got := norm.TimeoutSeconds(); got != 9 {
		t.Errorf("TimeoutSeconds = %v, want 9 (exec over legacy)", got)
	}
}

// TestExecBlockOmittedWhenZero: a spec without execution overrides dumps
// without an exec block at all, keeping minimal specs minimal (and keeping
// every checked-in spec byte-stable across the exec redesign).
func TestExecBlockOmittedWhenZero(t *testing.T) {
	sc := mustNew(t, Spec{Mesh: Cube(7)})
	if _, ok := dumpJSON(t, sc)["exec"]; ok {
		t.Error("zero exec block survived normalisation into the dump")
	}
	// Explicitly setting the knobs back to zero removes the block again.
	spec := tinySpec()
	spec.SetShards(4)
	spec.SetShards(0)
	spec.SetWorkers(0)
	if spec.Exec != nil {
		t.Errorf("all-zero exec block not normalised away: %+v", spec.Exec)
	}
}

// TestExecRoundTrip: a dumped spec with a full exec block loads back to the
// same resolved values, and re-dumping is byte-stable (the canonical-form
// invariant CI enforces for specs/).
func TestExecRoundTrip(t *testing.T) {
	spec := tinySpec()
	spec.SetWorkers(3)
	spec.SetShards(4)
	spec.SetTimeout(1.5)
	sc := mustNew(t, spec)

	var buf bytes.Buffer
	if err := sc.WriteSpec(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	sc2, err := Load(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	spec2 := sc2.Spec()
	if spec2.WorkerCount() != 3 || spec2.ShardCount() != 4 || spec2.TimeoutSeconds() != 1.5 {
		t.Errorf("round-trip lost exec values: workers=%d shards=%d timeout=%v",
			spec2.WorkerCount(), spec2.ShardCount(), spec2.TimeoutSeconds())
	}
	var buf2 bytes.Buffer
	if err := sc2.WriteSpec(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Errorf("dump not byte-stable across a load:\n--- first\n%s--- second\n%s", first, buf2.String())
	}
}

// TestDigestIgnoresExecBlock extends the workers-invariance digest contract
// to the whole exec block, in both spellings: execution resources never
// change a scenario's identity (or the `mcc serve` cache key).
func TestDigestIgnoresExecBlock(t *testing.T) {
	base := tinySpec().Digest()
	viaSetters := tinySpec()
	viaSetters.SetWorkers(16)
	viaSetters.SetShards(8)
	viaSetters.SetTimeout(30)
	if viaSetters.Digest() != base {
		t.Error("exec block changes the digest; the result cache would miss on an execution knob")
	}
	viaLegacy := tinySpec()
	viaLegacy.Workers = 16
	viaLegacy.Timeout = 30
	if viaLegacy.Digest() != base {
		t.Error("legacy workers/timeout spelling changes the digest")
	}
}

// TestExecValidation: negative shard counts and non-finite or negative
// timeouts are rejected at New time.
func TestExecValidation(t *testing.T) {
	bad := tinySpec()
	bad.SetShards(-2)
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Errorf("negative shards: err = %v, want a shards range error", err)
	}
	for _, secs := range []float64{-1, math.NaN()} {
		b := tinySpec()
		b.SetTimeout(secs)
		if _, err := New(b); err == nil || !strings.Contains(err.Error(), "timeout") {
			t.Errorf("timeout %v: err = %v, want a timeout range error", secs, err)
		}
	}
}

// TestExecOptions: the facade options write through to the resolved exec
// block.
func TestExecOptions(t *testing.T) {
	sc, err := Build(WithCube(7), WithWorkers(2), WithShards(3), WithTimeout(4.5))
	if err != nil {
		t.Fatal(err)
	}
	spec := sc.Spec()
	if spec.WorkerCount() != 2 || spec.ShardCount() != 3 || spec.TimeoutSeconds() != 4.5 {
		t.Errorf("options lost: workers=%d shards=%d timeout=%v",
			spec.WorkerCount(), spec.ShardCount(), spec.TimeoutSeconds())
	}
}

// TestTrafficShardsInvariantTelemetryAndCells: the scenario-level shards
// contract — cells, raw values and semantic telemetry counters are identical
// between a sequential and a sharded run of the same multi-cell spec.
// (Queue-shape counters are per-shard structures and legitimately differ;
// the semantic traffic/churn counters must not.)
func TestTrafficShardsInvariantTelemetryAndCells(t *testing.T) {
	run := func(shards int) *Report {
		spec := tinySpec()
		spec.SetShards(shards)
		return mustRun(t, mustNew(t, spec, WithTelemetry()))
	}
	want, got := run(1), run(4)
	if wantCSV, gotCSV := want.Table.CSV(), got.Table.CSV(); gotCSV != wantCSV {
		t.Errorf("table differs at 4 shards:\n--- sharded\n%s--- sequential\n%s", gotCSV, wantCSV)
	}
	wantCells, _ := json.Marshal(want.Cells)
	gotCells, _ := json.Marshal(got.Cells)
	if !bytes.Equal(wantCells, gotCells) {
		t.Errorf("raw cells differ at 4 shards:\n--- sharded\n%s\n--- sequential\n%s", gotCells, wantCells)
	}
	semantic := []string{
		"traffic.injected", "traffic.delivered", "traffic.stuck", "traffic.lost",
		"churn.failures", "churn.repairs",
	}
	for i := range want.Telemetry {
		for _, name := range semantic {
			if w, g := want.Telemetry[i].Counters[name], got.Telemetry[i].Counters[name]; w != g {
				t.Errorf("cell %d counter %s: %d at 4 shards, want %d", i, name, g, w)
			}
		}
	}
}
