package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"strings"
	"time"

	"mccmesh/internal/scenario"
)

// cmdRun runs one declarative scenario: loaded from -spec, or assembled from
// flags (the successor of the mcctraffic flag surface, generalised to every
// measure via -measure).
func cmdRun(args []string) int {
	fs := flag.NewFlagSet("mcc run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath = fs.String("spec", "", "scenario spec file to run (- = stdin); overrides the spec-building flags")
		dump     = fs.Bool("dump-spec", false, "print the normalised scenario spec and exit")
		measure  = fs.String("measure", "traffic", "measure to run: traffic (e7) or absorption, success, distance, overhead, ablation, adaptivity (e1..e6)")
		dim      = fs.Int("dim", 10, "mesh edge length")
		twoD     = fs.Bool("2d", false, "use a 2-D mesh instead of 3-D")
		faultsF  = fs.String("faults", "50", "comma separated fault counts (first count = traffic's static fault set)")
		clust    = fs.Bool("clustered", false, "inject clustered faults instead of uniform random faults")
		csize    = fs.Int("clustersize", 5, "faults per cluster when -clustered is set")
		seed     = fs.Uint64("seed", 20050500, "random seed")
		patterns = fs.String("patterns", "uniform,transpose,hotspot", "comma separated traffic patterns (see 'mcc list')")
		models   = fs.String("models", "mcc,rfb", "comma separated information models (see 'mcc list')")
		rates    = fs.String("rates", "0.005,0.01,0.02", "comma separated injection rates (packets per node per tick)")
		trials   = fs.Int("trials", 5, "fault configurations per sweep cell")
		pairs    = fs.Int("pairs", 10, "source/destination pairs per trial (routing measures)")
		minDist  = fs.Int("mindist", 10, "minimum Manhattan distance between pairs (routing measures)")
		warmup   = fs.Int("warmup", 50, "warmup ticks before measurement (traffic)")
		window   = fs.Int("window", 200, "measurement window in ticks (traffic)")
		workers  = fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS); any value gives identical tables")
		shards   = fs.Int("shards", 0, "spatial shards per trial (0/1 = sequential); any value gives identical tables")
		hotFrac  = fs.Float64("hotspot", 0, "hotspot traffic fraction (0 = pattern default)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		progress = fs.Bool("progress", false, "stream per-cell progress to stderr")
		metrics  = fs.String("metrics", "", "enable telemetry counters and write per-cell snapshots to this JSON file")
		trace    = fs.String("trace", "", "sample packet traces (1 in 64) and write them to this JSONL file")
		verbose  = fs.Bool("v", false, "enable telemetry counters and print a summary table after the run")
	)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, err := prof.start("run")
	if err != nil {
		return fail("run", err)
	}
	defer stopProf()

	var sc *scenario.Scenario
	if *specPath != "" {
		// With -spec, the scenario is the file; only execution/output flags
		// may be combined with it.
		if err := rejectFlagSpecClash(fs, "dump-spec", "workers", "shards", "csv", "progress",
			"metrics", "trace", "v", "cpuprofile", "memprofile"); err != nil {
			return fail("run", err)
		}
		sc, err = loadSpecWithExec(*specPath, fs, *workers, *shards)
	} else {
		sc, err = flagScenario(flagSpecInputs{
			measure: *measure, dim: *dim, twoD: *twoD, faults: *faultsF,
			clustered: *clust, csize: *csize, seed: *seed,
			patterns: *patterns, models: *models, rates: *rates,
			trials: *trials, pairs: *pairs, minDist: *minDist,
			warmup: *warmup, window: *window, workers: *workers, shards: *shards, hotFrac: *hotFrac,
		})
	}
	if err != nil {
		return fail("run", err)
	}
	if *dump {
		return dumpSpec(sc)
	}
	if *progress {
		sc.Observe(progressObserver())
	}
	if *metrics != "" || *verbose {
		sc.EnableTelemetry()
	}
	if *trace != "" {
		sc.EnableTracing(0) // default 1-in-64 sampling
	}
	ctx := context.Background()
	spec := sc.Spec()
	if secs := spec.TimeoutSeconds(); secs > 0 {
		// The spec's own wall-clock budget, honoured locally exactly as
		// `mcc serve` honours it: the run stops at the deadline with the
		// completed cells kept and the interrupted cell marked TIMEOUT.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(secs*float64(time.Second)))
		defer cancel()
	}
	rep, err := sc.Run(ctx)
	if err != nil {
		if rep != nil && errors.Is(err, context.DeadlineExceeded) {
			// Salvage the completed prefix before reporting the timeout.
			if *csv {
				fmt.Fprint(stdout, rep.Table.CSV())
			} else {
				fmt.Fprintln(stdout, rep.Table.Render())
			}
		}
		return fail("run", err)
	}
	if *csv {
		fmt.Fprint(stdout, rep.Table.CSV())
	} else {
		fmt.Fprintln(stdout, rep.Table.Render())
	}
	if *verbose {
		fmt.Fprintln(stdout, counterTable(rep).Render())
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, rep); err != nil {
			return fail("run", err)
		}
		fmt.Fprintf(stderr, "mcc run: wrote %s\n", *metrics)
	}
	if *trace != "" {
		if err := writeTraces(*trace, rep); err != nil {
			return fail("run", err)
		}
		fmt.Fprintf(stderr, "mcc run: wrote %s\n", *trace)
	}
	return 0
}

// flagSpecInputs carries the spec-building flag values of `mcc run`.
type flagSpecInputs struct {
	measure          string
	dim              int
	twoD             bool
	faults           string
	clustered        bool
	csize            int
	seed             uint64
	patterns, models string
	rates            string
	trials, pairs    int
	minDist          int
	warmup, window   int
	workers, shards  int
	hotFrac          float64
}

// flagScenario assembles a scenario spec from the run flag surface.
func flagScenario(in flagSpecInputs) (*scenario.Scenario, error) {
	counts, err := parseInts(in.faults)
	if err != nil {
		return nil, err
	}
	rates, err := parseRates(in.rates)
	if err != nil {
		return nil, err
	}
	// An explicitly empty list is a mistake, not a request for the defaults.
	if len(splitList(in.patterns)) == 0 || len(splitList(in.models)) == 0 || len(rates) == 0 {
		return nil, fmt.Errorf("-patterns, -models and -rates must each name at least one entry")
	}
	if in.hotFrac < 0 || in.hotFrac > 1 {
		return nil, fmt.Errorf("-hotspot must be in [0,1]")
	}
	inject := scenario.C("uniform")
	if in.clustered {
		inject = scenario.Component{Name: "clustered", Params: map[string]any{"size": in.csize}}
	}
	mesh := scenario.Cube(in.dim)
	if in.twoD {
		mesh = scenario.Square(in.dim)
	}
	spec := scenario.Spec{
		Mesh:   mesh,
		Faults: scenario.FaultSpec{Inject: inject, Counts: counts},
		Models: scenario.ComponentsOf(splitList(in.models)...),
		Workload: scenario.WorkloadSpec{
			Patterns: scenario.PatternComponents(splitList(in.patterns), in.hotFrac),
			Rates:    rates,
		},
		Measure: scenario.MeasureSpec{
			Kind:        in.measure,
			Pairs:       in.pairs,
			MinDistance: in.minDist,
			Warmup:      in.warmup,
			Window:      in.window,
		},
		Seed:   in.seed,
		Trials: in.trials,
	}
	spec.SetWorkers(in.workers)
	if in.shards != 0 {
		spec.SetShards(in.shards)
	}
	return scenario.New(spec)
}

// progressObserver streams cell progress lines to stderr.
func progressObserver() scenario.Observer {
	return func(ev scenario.Event) {
		if ev.Done {
			fmt.Fprintf(stderr, "[%d/%d] %s: %s\n", ev.Cell+1, ev.Total, ev.Label, strings.Join(ev.Row, "  "))
		} else {
			fmt.Fprintf(stderr, "[%d/%d] %s ...\n", ev.Cell+1, ev.Total, ev.Label)
		}
	}
}
