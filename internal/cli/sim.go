package cli

import (
	"flag"
	"fmt"

	"mccmesh/internal/block"
	"mccmesh/internal/core"
	"mccmesh/internal/grid"
)

// cmdSim runs a single fault-tolerant routing scenario end to end (the old
// mccsim): build a mesh, inject faults, construct the MCC fault-information
// model, check feasibility and route a message, reporting what every
// information model would have done.
func cmdSim(args []string) int {
	fs := flag.NewFlagSet("mcc sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	setup := addSetupFlags(fs, "10x10x10", 50)
	var (
		pairs   = fs.Int("pairs", 3, "number of source/destination pairs to route")
		minDist = fs.Int("mindist", 8, "minimum Manhattan distance between pairs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sc, err := setup.scenario("pairs", "mindist")
	if err != nil {
		return fail("sim", err)
	}
	if *setup.dump {
		return dumpSpec(sc)
	}
	m, r := materialize(sc)

	model := core.NewModel(m)
	spec := sc.Spec()
	fmt.Fprintf(stdout, "mesh %v: %d nodes, %d faulty (%s)\n", m.Dims(), m.NodeCount(), m.FaultCount(), spec.Faults.Inject.Name)
	sum := model.Summarize(grid.PositiveOrientation)
	fmt.Fprintf(stdout, "MCC model (+X,+Y,+Z): %d regions, %d healthy nodes absorbed (largest region %d nodes)\n",
		sum.Regions, sum.AbsorbedHealthy, sum.LargestRegion)
	fmt.Fprintf(stdout, "RFB baseline        : %d healthy nodes absorbed\n", model.Blocks(block.BoundingBox).TotalNonFaulty())

	routed := 0
	for routed < *pairs {
		s := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		if grid.Manhattan(s, d) < *minDist || m.IsFaulty(s) || m.IsFaulty(d) {
			continue
		}
		if model.Labeling(grid.OrientationOf(s, d)).Unsafe(s) || model.Labeling(grid.OrientationOf(s, d)).Unsafe(d) {
			continue
		}
		routed++
		fmt.Fprintf(stdout, "\npair %d: %v -> %v (distance %d)\n", routed, s, d, grid.Manhattan(s, d))
		feasible := model.Feasible(s, d)
		detect, hops := model.FeasibleByDetection(s, d)
		fmt.Fprintf(stdout, "  feasibility: theorem=%v detection=%v (%d detection hops)\n", feasible, detect, hops)
		for _, provider := range []string{core.ProviderMCC, core.ProviderRFB, core.ProviderLabels, core.ProviderLocal} {
			tr, err := model.RouteWith(provider, s, d)
			switch {
			case err != nil:
				fmt.Fprintf(stdout, "  %-12s: not attempted (%v)\n", provider, err)
			case tr.Succeeded():
				fmt.Fprintf(stdout, "  %-12s: delivered in %d hops (minimal), min candidates %d\n", provider, tr.Hops(), tr.MinAdaptivity())
			default:
				fmt.Fprintf(stdout, "  %-12s: FAILED (%v)\n", provider, tr.Err)
			}
		}
		if feasible {
			res := model.RouteDistributed(s, d)
			fmt.Fprintf(stdout, "  %-12s: delivered=%v minimal=%v, %d routing-message hops\n", "distributed", res.Delivered, res.Minimal, res.Hops)
		}
	}
	return 0
}
