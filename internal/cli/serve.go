package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mccmesh/internal/server"
)

// cmdServe runs the scenario-execution daemon: an HTTP API accepting the same
// JSON specs as `mcc run -spec`, executing them on a bounded worker pool with
// a spec-digest result cache and a shared-topology pool (see internal/server).
func cmdServe(args []string) int {
	fs := flag.NewFlagSet("mcc serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8322", "listen address")
		jobs       = fs.Int("jobs", 4, "concurrent scenario jobs (each shards trials across its own workers)")
		queue      = fs.Int("queue", 64, "queued jobs beyond the running set before submissions get 503")
		cache      = fs.Int("cache", 128, "result-cache capacity (reports, keyed by spec digest)")
		topos      = fs.Int("topos", 64, "shared-topology pool capacity (mesh prototypes)")
		jobTimeout = fs.Duration("job-timeout", 0, "wall-clock cap per job, and the default for specs without a timeout (0 = unbounded)")
		maxShards  = fs.Int("max-shards", 0, "clamp the per-trial shard count submitted specs may request (0 = unlimited); shards are digest-excluded, so clamping never changes results")
		drain      = fs.Duration("drain-timeout", 5*time.Second, "how long a shutdown lets running jobs finish before hard-cancelling them")
		state      = fs.String("state", "", "state directory for the crash-safe job journal; on restart, jobs in flight at the crash are resubmitted")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		return fail("serve", fmt.Errorf("unexpected argument %q", fs.Arg(0)))
	}
	srv, err := server.New(server.Config{
		Jobs: *jobs, Queue: *queue, CacheSize: *cache, Topos: *topos,
		JobTimeout: *jobTimeout, DrainTimeout: *drain, StateDir: *state,
		MaxShards: *maxShards,
	})
	if err != nil {
		return fail("serve", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail("serve", err)
	}
	httpSrv := &http.Server{Handler: srv}
	fmt.Fprintf(stderr, "mcc serve: listening on http://%s (%d job workers)\n", ln.Addr(), *jobs)

	// Serve until SIGINT/SIGTERM, then drain gracefully: admission stops
	// first (new submissions get 503 + Retry-After), running jobs get the
	// drain-timeout to finish, queued jobs are sealed EVICTED, and only then
	// is whatever still runs hard-cancelled.
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		return fail("serve", err)
	case s := <-sig:
		fmt.Fprintf(stderr, "mcc serve: %v, draining (up to %s)\n", s, *drain)
	}
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "mcc serve: shutdown: %v\n", err)
	}
	srv.Close()
	return 0
}
