package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mccmesh/internal/experiments"
	"mccmesh/internal/scenario"
	"mccmesh/internal/server"
	"mccmesh/internal/stats"
)

// cmdBench regenerates the evaluation tables E1–E7 (the old mccbench). It
// keeps the historical per-experiment seed streams, so tables produced before
// the scenario redesign still reproduce. With -dump-spec it emits the
// declarative spec of one experiment; with -spec it runs a spec file like
// `mcc run`. With -json it runs the event-core benchmark (the "bench"
// measure) and writes BENCH_traffic.json; -cpuprofile/-memprofile capture
// pprof profiles of whatever the invocation runs.
func cmdBench(args []string) int {
	fs := flag.NewFlagSet("mcc bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exps      = fs.String("exp", "all", "comma separated experiments to run: e1..e7 or all")
		dim       = fs.Int("dim", 10, "mesh edge length")
		twoD      = fs.Bool("2d", false, "use a 2-D mesh instead of 3-D")
		trials    = fs.Int("trials", 30, "fault configurations per data point")
		pairs     = fs.Int("pairs", 10, "source/destination pairs per configuration")
		seed      = fs.Uint64("seed", 20050500, "random seed")
		faultsF   = fs.String("faults", "", "comma separated fault counts (default depends on the mesh size)")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned text")
		clustered = fs.Bool("clustered", false, "inject clustered faults instead of uniform random faults")
		csize     = fs.Int("clustersize", 5, "faults per cluster when -clustered is set")
		workers   = fs.Int("workers", 0, "parallel trial workers for e7 (0 = GOMAXPROCS)")
		shards    = fs.Int("shards", 0, "with -spec: spatial shards per trial (0/1 = sequential); any value gives identical tables")
		specPath  = fs.String("spec", "", "run a scenario spec file instead (- = stdin)")
		dump      = fs.Bool("dump-spec", false, "print the spec of the selected experiment (requires exactly one -exp) and exit")
		jsonPath  = fs.String("json", "", "run the event-core benchmark (measure \"bench\") and write machine-readable results to this file, e.g. BENCH_traffic.json")
		baseline  = fs.String("baseline", "", "with -json: print per-cell events/sec and allocs/packet deltas against this committed BENCH_traffic.json")
		metrics   = fs.String("metrics", "", "with -json or -spec: write per-cell telemetry counter snapshots to this JSON file")
		verbose   = fs.Bool("v", false, "with -json or -spec: print a telemetry counter summary table after the run")
	)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := prof.start("bench")
	if err != nil {
		return fail("bench", err)
	}
	defer stopProf()

	if *jsonPath != "" {
		// The benchmark is defined by the (default or loaded) spec alone;
		// silently ignoring a table flag like -dim would misreport what ran.
		if err := rejectFlagClash(fs, "json", "benchmark settings come from -spec",
			"spec", "cpuprofile", "memprofile", "csv", "dump-spec", "baseline", "metrics", "v"); err != nil {
			return fail("bench", err)
		}
		// Without -spec the default suite runs: the churn-free reference
		// workload plus the fault-churn workload, merged into one cell list.
		var scs []*scenario.Scenario
		if *specPath != "" {
			sc, err := loadSpec(*specPath)
			if err != nil {
				return fail("bench", err)
			}
			scs = append(scs, sc)
		} else {
			for _, spec := range scenario.BenchSpecs() {
				sc, err := newScenario(spec)
				if err != nil {
					return fail("bench", err)
				}
				scs = append(scs, sc)
			}
		}
		// Fail fast on a non-bench spec: running a full traffic sweep only to
		// discover there are no benchmark results would waste the whole run
		// (and truncate the output file).
		for _, sc := range scs {
			if e, err := scenario.Measures.Lookup(sc.Spec().Measure.Kind); err != nil || e.Name != scenario.MeasureBench {
				return fail("bench", fmt.Errorf("-json needs a %q-measure spec, got measure %q", scenario.MeasureBench, sc.Spec().Measure.Kind))
			}
		}
		if *dump {
			// A dumped spec must load back via -spec, and a spec file is one
			// JSON document — so dumping the multi-spec default suite would
			// produce output nothing accepts.
			if len(scs) > 1 {
				return fail("bench", fmt.Errorf("-dump-spec emits exactly one spec, but the default -json suite runs %d (%s); pass -spec to dump a single spec",
					len(scs), suiteNames(scs)))
			}
			return dumpSpec(scs[0])
		}
		var cells []scenario.BenchResult
		var reps []*scenario.Report
		for _, sc := range scs {
			rep, err := sc.Run(context.Background())
			if err != nil {
				return fail("bench", err)
			}
			printTable(rep.Table, *csv)
			reps = append(reps, rep)
			cells = append(cells, rep.BenchResults()...)
		}
		// The default suite also prices the serving pipeline: jobs/s for cold
		// vs cached submissions through an in-process `mcc serve` (scenario
		// keys "serve-cold"/"serve-cached"; informational in baseline deltas).
		if *specPath == "" {
			serveCells, serveTable, err := server.BenchServe(server.Config{}, 0, 0)
			if err != nil {
				return fail("bench", err)
			}
			printTable(serveTable, *csv)
			cells = append(cells, serveCells...)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fail("bench", err)
		}
		defer f.Close()
		if err := scenario.WriteBenchCellsJSON(f, cells); err != nil {
			return fail("bench", err)
		}
		fmt.Fprintf(stderr, "mcc bench: wrote %s\n", *jsonPath)
		if *verbose {
			fmt.Fprintln(stdout, counterTable(reps...).Render())
		}
		if *metrics != "" {
			if err := writeMetrics(*metrics, reps...); err != nil {
				return fail("bench", err)
			}
			fmt.Fprintf(stderr, "mcc bench: wrote %s\n", *metrics)
		}
		if *baseline != "" {
			if err := printBenchDelta(cells, *baseline); err != nil {
				return fail("bench", err)
			}
		}
		return 0
	}
	if *baseline != "" {
		return fail("bench", fmt.Errorf("-baseline requires -json (it compares event-core benchmark cells)"))
	}

	if *specPath != "" {
		if err := rejectFlagSpecClash(fs, "dump-spec", "workers", "shards", "csv",
			"cpuprofile", "memprofile", "metrics", "v"); err != nil {
			return fail("bench", err)
		}
		sc, err := loadSpecWithExec(*specPath, fs, *workers, *shards)
		if err != nil {
			return fail("bench", err)
		}
		if *dump {
			return dumpSpec(sc)
		}
		if *metrics != "" || *verbose {
			sc.EnableTelemetry()
		}
		rep, err := sc.Run(context.Background())
		if err != nil {
			return fail("bench", err)
		}
		printTable(rep.Table, *csv)
		if *verbose {
			fmt.Fprintln(stdout, counterTable(rep).Render())
		}
		if *metrics != "" {
			if err := writeMetrics(*metrics, rep); err != nil {
				return fail("bench", err)
			}
			fmt.Fprintf(stderr, "mcc bench: wrote %s\n", *metrics)
		}
		return 0
	}
	if *metrics != "" || *verbose {
		return fail("bench", fmt.Errorf("-metrics and -v need -json or -spec (the historical tables carry no telemetry)"))
	}

	cfg := experiments.DefaultConfig()
	cfg.Dim = *dim
	cfg.TwoD = *twoD
	cfg.Trials = *trials
	cfg.Pairs = *pairs
	cfg.Seed = *seed
	cfg.Clustered = *clustered
	cfg.ClusterSize = *csize
	if *faultsF != "" {
		counts, err := parseInts(*faultsF)
		if err != nil || len(counts) == 0 {
			return fail("bench", fmt.Errorf("invalid -faults %q", *faultsF))
		}
		cfg.FaultCounts = counts
	}

	mid := cfg.FaultCounts[len(cfg.FaultCounts)/2]
	trafficCfg := func() experiments.TrafficConfig {
		tc := experiments.DefaultTrafficConfig()
		tc.Faults = mid
		tc.Trials = cfg.Trials
		tc.Workers = *workers
		return tc
	}
	run := map[string]func() (*stats.Table, error){
		"e1": func() (*stats.Table, error) { return experiments.E1NonFaultyInclusion(cfg), nil },
		"e2": func() (*stats.Table, error) { return experiments.E2SuccessRate(cfg), nil },
		"e3": func() (*stats.Table, error) { return experiments.E3SuccessByDistance(cfg, mid), nil },
		"e4": func() (*stats.Table, error) { return experiments.E4MessageOverhead(cfg), nil },
		"e5": func() (*stats.Table, error) { return experiments.E5RegionAblation(cfg), nil },
		"e6": func() (*stats.Table, error) { return experiments.E6Adaptivity(cfg, mid), nil },
		"e7": func() (*stats.Table, error) { return experiments.E7Throughput(cfg, trafficCfg()) },
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7"}

	want := map[string]bool{}
	if *exps == "all" {
		for _, k := range order {
			want[k] = true
		}
	} else {
		for _, part := range splitList(*exps) {
			k := strings.ToLower(part)
			if _, ok := run[k]; !ok {
				return fail("bench", fmt.Errorf("unknown experiment %q (want e1..e7 or all)", part))
			}
			want[k] = true
		}
	}

	if *dump {
		if len(want) != 1 {
			return fail("bench", fmt.Errorf("-dump-spec needs exactly one experiment, got -exp %q", *exps))
		}
		for k := range want {
			spec, err := experiments.SpecFor(k, cfg, trafficCfg())
			if err != nil {
				return fail("bench", err)
			}
			sc, err := newScenario(spec)
			if err != nil {
				return fail("bench", err)
			}
			return dumpSpec(sc)
		}
	}

	for _, k := range order {
		if !want[k] {
			continue
		}
		table, err := run[k]()
		if err != nil {
			return fail("bench", err)
		}
		printTable(table, *csv)
	}
	return 0
}

// suiteNames renders the spec names of a benchmark suite for error messages;
// the unnamed default workload reads as "default".
func suiteNames(scs []*scenario.Scenario) string {
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.Spec().Name
		if names[i] == "" {
			names[i] = "default"
		}
	}
	return strings.Join(names, ", ")
}

// printBenchDelta prints, per benchmark cell, how the fresh run compares to a
// committed baseline file (events/sec speedup, allocs/packet change,
// telemetry counter drift). Cells missing from the baseline — e.g. a model
// added to the default spec after the baseline was committed — are reported
// as new rather than failing the run, so the delta step keeps working across
// spec evolution.
//
// Two properties gate the run. Allocs/packet is deterministic: a cell whose
// allocs/packet regresses materially fails, so CI catches per-packet
// allocations creeping back into the hot path. Events/sec is noisy on shared
// runners, so only a drop past eventsFloor (beyond plausible runner jitter)
// fails; smaller rate deltas stay informational. Telemetry counter deltas are
// always informational — they explain a rate change (a collapsed cache hit
// rate, a heap-fallback storm) rather than gate it.
func printBenchDelta(cells []scenario.BenchResult, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := scenario.ReadBenchJSON(f)
	if err != nil {
		return err
	}
	byKey := make(map[string]scenario.BenchResult, len(base.Cells))
	for _, c := range base.Cells {
		byKey[c.Key()] = c
	}
	var regressed []string
	fmt.Fprintf(stdout, "delta vs %s:\n", path)
	for _, c := range cells {
		b, ok := byKey[c.Key()]
		if c.JobsPerSec > 0 {
			// Server throughput cells: wall-clock jobs/s is too noisy on
			// shared runners to gate, so the delta is informational only.
			if ok && b.JobsPerSec > 0 {
				fmt.Fprintf(stdout, "  %-38s %10.1f jobs/sec (%+.1f%%)\n",
					c.Key(), c.JobsPerSec, 100*(c.JobsPerSec-b.JobsPerSec)/b.JobsPerSec)
			} else {
				fmt.Fprintf(stdout, "  %-38s %10.1f jobs/sec  (no baseline cell)\n", c.Key(), c.JobsPerSec)
			}
			continue
		}
		if !ok || b.EventsPerSec <= 0 {
			fmt.Fprintf(stdout, "  %-38s %10.0f events/sec  %6.2f allocs/pkt  (no baseline cell)\n",
				c.Key(), c.EventsPerSec, c.AllocsPerPacket)
			continue
		}
		if c.Informational {
			// Sharded cells: tracked so scaling regressions are visible in the
			// delta, but never gated — multi-shard throughput depends on the
			// runner's free cores, which CI does not guarantee.
			fmt.Fprintf(stdout, "  %-38s %10.0f events/sec (%+.1f%%, %.2fx)  allocs/pkt %.2f -> %.2f  (informational)\n",
				c.Key(), c.EventsPerSec,
				100*(c.EventsPerSec-b.EventsPerSec)/b.EventsPerSec, c.EventsPerSec/b.EventsPerSec,
				b.AllocsPerPacket, c.AllocsPerPacket)
			printCounterDelta(b.Telemetry, c.Telemetry)
			continue
		}
		fmt.Fprintf(stdout, "  %-38s %10.0f events/sec (%+.1f%%, %.2fx)  allocs/pkt %.2f -> %.2f\n",
			c.Key(), c.EventsPerSec,
			100*(c.EventsPerSec-b.EventsPerSec)/b.EventsPerSec, c.EventsPerSec/b.EventsPerSec,
			b.AllocsPerPacket, c.AllocsPerPacket)
		printCounterDelta(b.Telemetry, c.Telemetry)
		if c.AllocsPerPacket > allocsBudget(b.AllocsPerPacket) {
			regressed = append(regressed, fmt.Sprintf("%s: allocs/packet %.2f -> %.2f (budget %.2f)",
				c.Key(), b.AllocsPerPacket, c.AllocsPerPacket, allocsBudget(b.AllocsPerPacket)))
		}
		if c.EventsPerSec < b.EventsPerSec*eventsFloor {
			regressed = append(regressed, fmt.Sprintf("%s: events/sec %.0f -> %.0f (floor %.0f)",
				c.Key(), b.EventsPerSec, c.EventsPerSec, b.EventsPerSec*eventsFloor))
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("regressed against %s:\n  %s", path, strings.Join(regressed, "\n  "))
	}
	return nil
}

// eventsFloor is the fraction of the baseline events/sec a cell must sustain:
// a drop of more than 10% is beyond runner jitter and fails the run.
const eventsFloor = 0.90

// printCounterDelta prints the telemetry counters that drifted between a
// baseline cell and a fresh one (both from the untimed probe trial, so the
// values are deterministic for a given code version). Unchanged counters are
// skipped to keep the delta readable.
func printCounterDelta(base, cur map[string]int64) {
	if len(base) == 0 || len(cur) == 0 {
		return
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if base[name] != cur[name] {
			fmt.Fprintf(stdout, "    %-36s %12d -> %d\n", name, base[name], cur[name])
		}
	}
}

// allocsBudget is the allocs/packet ceiling a cell may reach before the
// baseline comparison fails: 10% over the baseline plus a small absolute
// slack for accounting noise (GC bookkeeping, map growth timing).
func allocsBudget(baseline float64) float64 {
	return baseline*1.10 + 0.05
}

// printTable renders a table to stdout in the selected format.
func printTable(t *stats.Table, csv bool) {
	if csv {
		fmt.Fprint(stdout, t.CSV())
	} else {
		fmt.Fprintln(stdout, t.Render())
	}
}
