package cli

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mccmesh/internal/rng"
	"mccmesh/internal/scenario"
	"mccmesh/internal/server"
)

// TestRetryDelayDeterministicAndFloored pins the backoff schedule: seeded
// from the spec bytes it reproduces exactly, doubles per attempt within the
// jitter band, and never undercuts the server's Retry-After hint.
func TestRetryDelayDeterministicAndFloored(t *testing.T) {
	spec := []byte(`{"seed": 1}`)
	a, b := rng.New(fnvSeed(spec)), rng.New(fnvSeed(spec))
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		da := retryDelay(attempt, base, 0, a)
		db := retryDelay(attempt, base, 0, b)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %s then %s", attempt, da, db)
		}
		step := base << uint(attempt)
		if lo, hi := step/2, step+step/2; da < lo || da >= hi {
			t.Errorf("attempt %d: delay %s outside jitter band [%s, %s)", attempt, da, lo, hi)
		}
	}
	if d := retryDelay(0, 10*time.Millisecond, 2*time.Second, rng.New(1)); d < 2*time.Second {
		t.Errorf("delay %s undercuts the Retry-After floor", d)
	}
	if d := retryDelay(62, time.Second, 0, rng.New(1)); d >= 90*time.Second {
		t.Errorf("overflowed attempt count escaped the 60s ceiling: %s", d)
	}
}

// TestSubmitRetriesAfter503 drives the full client-side resilience loop: the
// daemon's queue is provably full when the submission starts, the first
// attempt bounces with 503 + Retry-After, and a later backoff attempt lands
// and runs to completion. The server counts the retry.
func TestSubmitRetriesAfter503(t *testing.T) {
	srv, err := server.New(server.Config{Jobs: 1, Queue: 1, DrainTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	addr := strings.TrimPrefix(ts.URL, "http://")

	// Moderate blockers: long enough to hold the worker and the queue slot
	// past the first attempt, short enough to finish within the backoff run.
	writeSpec := func(name string, seed uint64) string {
		t.Helper()
		spec := scenario.Spec{
			Name:   name,
			Mesh:   scenario.Cube(5),
			Faults: scenario.FaultSpec{Inject: scenario.C("uniform"), Counts: []int{4}},
			Models: scenario.ComponentsOf("mcc"),
			Workload: scenario.WorkloadSpec{
				Patterns: scenario.ComponentsOf("uniform"),
				Rates:    []float64{0.01, 0.02, 0.03},
			},
			Measure: scenario.MeasureSpec{Kind: scenario.MeasureTraffic, Warmup: 5, Window: 1500},
			Seed:    seed,
			Trials:  6,
		}
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), name+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	waitCount := func(status string, want int) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for srv.StatsSnapshot().Jobs[status] != want {
			if time.Now().After(deadline) {
				t.Fatalf("never saw %d %s job(s): %v", want, status, srv.StatsSnapshot().Jobs)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	if code, _, errOut := capture(t, "submit", "-addr", addr, "-wait=false", writeSpec("blocker1", 501)); code != 0 {
		t.Fatalf("blocker1: %s", errOut)
	}
	waitCount("running", 1)
	if code, _, errOut := capture(t, "submit", "-addr", addr, "-wait=false", writeSpec("blocker2", 502)); code != 0 {
		t.Fatalf("blocker2: %s", errOut)
	}
	waitCount("queued", 1) // queue (capacity 1) is now provably full

	code, _, errOut := capture(t, "submit", "-addr", addr,
		"-retries", "10", "-backoff", "100ms", writeSpec("target", 503))
	if code != 0 {
		t.Fatalf("submit with retries failed: %s", errOut)
	}
	if !strings.Contains(errOut, "retrying in") {
		t.Errorf("stderr shows no retry attempt:\n%s", errOut)
	}
	if got := srv.Counters()["server.retries_observed"]; got < 1 {
		t.Errorf("server.retries_observed = %d, want >= 1", got)
	}
}

// TestSubmitFailsFastWithoutRetries pins the default: one attempt, the 503
// surfaces immediately with the server's structured error.
func TestSubmitFailsFastWithoutRetries(t *testing.T) {
	srv, err := server.New(server.Config{Jobs: 1, DrainTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	srv.BeginDrain()
	path, _ := serveTestSpec(t)
	code, _, errOut := capture(t, "submit", "-addr", strings.TrimPrefix(ts.URL, "http://"), path)
	if code == 0 {
		t.Fatal("submission to a draining server succeeded")
	}
	if !strings.Contains(errOut, "draining") {
		t.Errorf("stderr = %q, want the server's draining error", errOut)
	}
}
