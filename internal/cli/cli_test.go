package cli

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs Main with stdout/stderr captured.
func capture(t *testing.T, args ...string) (code int, out, errOut string) {
	t.Helper()
	var bufOut, bufErr bytes.Buffer
	oldOut, oldErr := stdout, stderr
	stdout, stderr = &bufOut, &bufErr
	defer func() { stdout, stderr = oldOut, oldErr }()
	code = Main(args)
	return code, bufOut.String(), bufErr.String()
}

func TestUnknownSubcommand(t *testing.T) {
	code, _, errOut := capture(t, "frobnicate")
	if code != 2 || !strings.Contains(errOut, "unknown subcommand") {
		t.Errorf("code=%d err=%q", code, errOut)
	}
	if code, _, _ := capture(t, "help"); code != 0 {
		t.Errorf("help should exit 0, got %d", code)
	}
	if code, _, errOut := capture(t); code != 2 || !strings.Contains(errOut, "Usage") {
		t.Errorf("bare mcc should print usage and exit 2: %d %q", code, errOut)
	}
}

func TestListShowsRegistries(t *testing.T) {
	code, out, _ := capture(t, "list")
	if code != 0 {
		t.Fatalf("list exited %d", code)
	}
	for _, want := range []string{"hotspot", "fraction", "mcc", "clustered", "traffic pattern", "measure", "absorption"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

// TestBenchDumpSpecRoundTrip is the CLI half of the reproducibility
// guarantee: `bench -exp e7 -dump-spec` piped into `run -spec` yields the
// same table as running the experiment directly, at any worker count.
func TestBenchDumpSpecRoundTrip(t *testing.T) {
	benchArgs := []string{"bench", "-exp", "e7", "-dim", "6", "-trials", "2", "-faults", "8", "-csv"}
	code, direct, errOut := capture(t, benchArgs...)
	if code != 0 {
		t.Fatalf("bench failed: %s", errOut)
	}

	code, spec, errOut := capture(t, "bench", "-exp", "e7", "-dim", "6", "-trials", "2", "-faults", "8", "-dump-spec")
	if code != 0 {
		t.Fatalf("dump-spec failed: %s", errOut)
	}
	path := filepath.Join(t.TempDir(), "e7.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []string{"1", "5"} {
		code, out, errOut := capture(t, "run", "-spec", path, "-csv", "-workers", workers)
		if code != 0 {
			t.Fatalf("run -spec (workers=%s) failed: %s", workers, errOut)
		}
		if out != direct {
			t.Errorf("run -spec (workers=%s) differs from bench:\n--- bench\n%s\n--- run\n%s", workers, direct, out)
		}
	}
}

func TestRunFromFlags(t *testing.T) {
	code, out, errOut := capture(t, "run",
		"-measure", "absorption", "-dim", "6", "-faults", "4,10", "-trials", "2", "-csv")
	if code != 0 {
		t.Fatalf("run failed: %s", errOut)
	}
	if lines := strings.Count(out, "\n"); lines != 3 { // header + 2 rows
		t.Errorf("expected 3 CSV lines, got %d:\n%s", lines, out)
	}
}

func TestRunProgressStreams(t *testing.T) {
	code, _, errOut := capture(t, "run",
		"-dim", "6", "-faults", "6", "-patterns", "uniform", "-models", "mcc",
		"-rates", "0.02", "-trials", "1", "-warmup", "5", "-window", "30", "-progress")
	if code != 0 {
		t.Fatalf("run failed: %s", errOut)
	}
	if !strings.Contains(errOut, "[1/1] uniform/mcc/0.020") {
		t.Errorf("progress not streamed: %q", errOut)
	}
}

func TestRunRejectsFlagSpecConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(`{"mesh": {"x": 5, "y": 5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := capture(t, "run", "-spec", path, "-dim", "9")
	if code != 2 || !strings.Contains(errOut, "cannot be combined with -spec") {
		t.Errorf("run conflict not rejected: %d %q", code, errOut)
	}
	// bench must hold the same line: a silently ignored -trials would
	// misreport what ran.
	code, _, errOut = capture(t, "bench", "-spec", path, "-trials", "100")
	if code != 2 || !strings.Contains(errOut, "cannot be combined with -spec") {
		t.Errorf("bench conflict not rejected: %d %q", code, errOut)
	}
	// -workers/-csv are execution knobs, not scenario content: allowed.
	if code, _, errOut = capture(t, "bench", "-spec", path, "-workers", "2", "-csv"); code != 0 {
		t.Errorf("bench -spec -workers should run: %d %q", code, errOut)
	}
}

func TestRunActionableSpecErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"mesh": {"x": 6, "y": 6}, "workload": {"patterns": "hotpsot"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := capture(t, "run", "-spec", path)
	if code != 2 || !strings.Contains(errOut, `did you mean "hotspot"?`) {
		t.Errorf("typo in spec file not surfaced: %d %q", code, errOut)
	}
}

func TestInspectorSubcommands(t *testing.T) {
	if code, out, errOut := capture(t, "sim", "-dims", "7x7x7", "-faults", "12", "-pairs", "1"); code != 0 || !strings.Contains(out, "MCC model") {
		t.Errorf("sim: %d %q %q", code, out, errOut)
	}
	if code, out, errOut := capture(t, "viz", "-dims", "8x8", "-faults", "5"); code != 0 || !strings.Contains(out, "faults=5") {
		t.Errorf("viz: %d %q %q", code, out, errOut)
	}
	if code, out, errOut := capture(t, "proto", "-dims", "7x7x7", "-faults", "10", "-pairs", "1"); code != 0 || !strings.Contains(out, "information model") {
		t.Errorf("proto: %d %q %q", code, out, errOut)
	}
	// Every inspector dumps a loadable spec.
	code, spec, _ := capture(t, "viz", "-dims", "8x8", "-faults", "5", "-dump-spec")
	if code != 0 {
		t.Fatal("viz -dump-spec failed")
	}
	path := filepath.Join(t.TempDir(), "viz.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, errOut := capture(t, "viz", "-spec", path); code != 0 || !strings.Contains(out, "faults=5") {
		t.Errorf("viz -spec: %d %q %q", code, out, errOut)
	}
}

func TestInspectorsRejectFlagSpecConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(`{"mesh": {"x": 6, "y": 6}, "faults": {"inject": "uniform", "counts": [4]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"sim", "proto", "viz"} {
		code, _, errOut := capture(t, sub, "-spec", path, "-faults", "99")
		if code != 2 || !strings.Contains(errOut, "cannot be combined with -spec") {
			t.Errorf("%s: conflict not rejected: %d %q", sub, code, errOut)
		}
	}
	// Presentation flags stay allowed alongside -spec.
	if code, out, errOut := capture(t, "viz", "-spec", path, "-blocks"); code != 0 || !strings.Contains(out, "faults=4") {
		t.Errorf("viz -spec -blocks should run: %d %q %q", code, out, errOut)
	}
}

func TestSimClusteredSetup(t *testing.T) {
	code, out, _ := capture(t, "sim", "-dims", "7x7x7", "-cluster", "2", "-clustersize", "4", "-pairs", "1")
	if code != 0 || !strings.Contains(out, "clustered") {
		t.Errorf("clustered sim: %d %q", code, out)
	}
}

func TestBenchJSONWritesBenchFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(spec, []byte(`{
  "name": "tiny-bench",
  "mesh": {"x": 5, "y": 5, "z": 5},
  "faults": {"inject": "uniform", "counts": [5]},
  "model": "local",
  "workload": {"patterns": "uniform", "rates": [0.05]},
  "measure": {"kind": "bench", "warmup": 5, "window": 40},
  "seed": 3,
  "trials": 1
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_traffic.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, stdout, errOut := capture(t, "bench", "-spec", spec, "-json", out, "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("bench -json exited %d: %s", code, errOut)
	}
	if !strings.Contains(stdout, "events/sec") {
		t.Errorf("bench table missing from stdout: %q", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("BENCH file not written: %v", err)
	}
	for _, key := range []string{"events_per_sec", "ns_per_packet", "allocs_per_packet"} {
		if !strings.Contains(string(data), key) {
			t.Errorf("BENCH json misses %q", key)
		}
	}
	for _, prof := range []string{cpu, mem} {
		if st, err := os.Stat(prof); err != nil || st.Size() == 0 {
			t.Errorf("profile %s not written (err=%v)", prof, err)
		}
	}
}

func TestRunTelemetryOutputs(t *testing.T) {
	dir := t.TempDir()
	base := []string{"run",
		"-dim", "6", "-faults", "6", "-patterns", "uniform", "-models", "mcc",
		"-rates", "0.02", "-trials", "2", "-warmup", "5", "-window", "60"}

	// -v prints the counter summary table after the experiment table.
	code, out, errOut := capture(t, append(base, "-v")...)
	if code != 0 {
		t.Fatalf("run -v failed: %s", errOut)
	}
	for _, want := range []string{"Telemetry counters", "traffic.injected", "routing.decision_hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("run -v output missing %q:\n%s", want, out)
		}
	}

	// -metrics writes well-formed per-cell counter JSON; -trace writes JSONL
	// whose every line decodes. Both must be byte-identical at any -workers.
	var metricsRuns, traceRuns []string
	for _, workers := range []string{"1", "8"} {
		metrics := filepath.Join(dir, "metrics-"+workers+".json")
		trace := filepath.Join(dir, "trace-"+workers+".jsonl")
		args := append(base, "-metrics", metrics, "-trace", trace, "-workers", workers)
		if code, _, errOut := capture(t, args...); code != 0 {
			t.Fatalf("run -metrics -trace (workers=%s) failed: %s", workers, errOut)
		}
		m, err := os.ReadFile(metrics)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Cells []map[string]any `json:"cells"`
		}
		if err := json.Unmarshal(m, &doc); err != nil || len(doc.Cells) == 0 {
			t.Fatalf("metrics file malformed (err=%v): %s", err, m)
		}
		tr, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(tr)), "\n")
		if len(lines) == 0 || lines[0] == "" {
			t.Fatal("trace file is empty")
		}
		for _, line := range lines {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("trace line does not decode: %v\n%s", err, line)
			}
		}
		metricsRuns = append(metricsRuns, string(m))
		traceRuns = append(traceRuns, string(tr))
	}
	if metricsRuns[0] != metricsRuns[1] {
		t.Error("metrics output differs between -workers 1 and 8")
	}
	if traceRuns[0] != traceRuns[1] {
		t.Error("trace output differs between -workers 1 and 8")
	}
}

// TestBenchBaselineGatesEventsRate doctors a baseline so the fresh run sits
// more than 10% below it; the delta step must fail the run.
func TestBenchBaselineGatesEventsRate(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(spec, []byte(`{
  "name": "tiny-bench",
  "mesh": {"x": 5, "y": 5, "z": 5},
  "faults": {"inject": "uniform", "counts": [5]},
  "model": "local",
  "workload": {"patterns": "uniform", "rates": [0.05]},
  "measure": {"kind": "bench", "warmup": 5, "window": 40},
  "seed": 3,
  "trials": 1
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bench-out.json")
	if code, _, errOut := capture(t, "bench", "-spec", spec, "-json", out); code != 0 {
		t.Fatalf("bench -json failed: %s", errOut)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cells []map[string]any `json:"cells"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || len(doc.Cells) == 0 {
		t.Fatalf("bench json malformed (err=%v)", err)
	}
	// Real timing is too noisy to assert either direction against an honest
	// baseline, so doctor it: scaling the baseline rate far down (up) forces
	// the fresh run far above (below) the 10% floor deterministically.
	scaled := func(name string, factor float64) string {
		cells := make([]map[string]any, len(doc.Cells))
		for i, cell := range doc.Cells {
			c := make(map[string]any, len(cell))
			for k, v := range cell {
				c[k] = v
			}
			c["events_per_sec"] = c["events_per_sec"].(float64) * factor
			cells[i] = c
		}
		doctored, err := json.Marshal(map[string]any{"cells": cells})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, doctored, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if code, _, errOut := capture(t, "bench", "-spec", spec, "-json", filepath.Join(dir, "b1.json"), "-baseline", scaled("slow.json", 0.01)); code != 0 {
		t.Fatalf("bench -baseline against a slower baseline failed: %s", errOut)
	}
	code, stdout, errOut := capture(t, "bench", "-spec", spec, "-json", filepath.Join(dir, "b2.json"), "-baseline", scaled("fast.json", 100))
	if code == 0 || !strings.Contains(errOut, "events/sec") {
		t.Errorf("events/sec regression not gated: code=%d err=%q", code, errOut)
	}
	if !strings.Contains(stdout, "delta vs") {
		t.Errorf("delta table missing: %q", stdout)
	}
}

func TestBenchJSONRejectsTableFlags(t *testing.T) {
	code, _, errOut := capture(t, "bench", "-json", filepath.Join(t.TempDir(), "b.json"), "-dim", "12")
	if code == 0 || !strings.Contains(errOut, "-dim") {
		t.Errorf("bench -json -dim should be rejected: code=%d err=%q", code, errOut)
	}
}
